/**
 * @file
 * Session/Job API tests: JobBuilder subsumes RequestBuilder
 * validation, job keys dedupe across kinds, and runBatch over a
 * MIXED trace+analytical job vector is bit-for-bit identical for 1
 * and N threads, with and without the in-memory and persistent
 * caches attached -- and a second batch against a warm on-disk cache
 * performs zero trace replays.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "expect_identical.hpp"
#include "sim/sweep.hpp"

namespace vegeta::sim {
namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "vegeta_session" / name;
    fs::remove_all(dir);
    return dir.string();
}

/**
 * A mixed batch: trace simulations across engines/patterns (with
 * duplicates, so dedupe is exercised) interleaved with analytical
 * queries, including a parameterized Monte-Carlo one.
 */
std::vector<Job>
mixedBatch(const Session &session)
{
    std::vector<Job> jobs;
    auto sim_job = [&](const char *engine, u32 pattern, bool of) {
        auto builder = session.job()
                           .gemm(kernels::GemmDims{32, 32, 128})
                           .engine(engine)
                           .pattern(pattern)
                           .outputForwarding(of);
        auto job = builder.build();
        EXPECT_TRUE(job.has_value()) << builder.error();
        jobs.push_back(*job);
    };
    auto ana_job = [&](auto configure) {
        auto builder = session.job();
        configure(builder);
        auto job = builder.build();
        EXPECT_TRUE(job.has_value()) << builder.error();
        jobs.push_back(*job);
    };

    sim_job("VEGETA-D-1-2", 4, false);
    ana_job([](JobBuilder &b) { b.model("fig4-vector-vs-matrix"); });
    sim_job("VEGETA-S-2-2", 2, true);
    ana_job([](JobBuilder &b) {
        b.model("dynamic-sparsity")
            .param("registers", 16)
            .param("trials", 64)
            .param("density", 0.2);
    });
    sim_job("VEGETA-S-2-2", 2, true); // duplicate of job 2
    ana_job([](JobBuilder &b) {
        b.model("micro-latency").engine("VEGETA-S-16-2");
    });
    sim_job("VEGETA-S-16-2", 1, false);
    ana_job([](JobBuilder &b) {
        b.model("fig4-vector-vs-matrix"); // duplicate of job 1
    });
    return jobs;
}

// --- JobBuilder validation -------------------------------------------

TEST(JobBuilder, SimulationJobMatchesRequestBuilder)
{
    const Session session;
    auto jb = session.job()
                  .workload("BERT-L1")
                  .engine("VEGETA-S-16-2")
                  .pattern(2)
                  .outputForwarding(true);
    const auto job = jb.build();
    ASSERT_TRUE(job.has_value()) << jb.error();
    ASSERT_EQ(job->kind, JobKind::Simulation);

    auto rb = session.request()
                  .workload("BERT-L1")
                  .engine("VEGETA-S-16-2")
                  .pattern(2)
                  .outputForwarding(true);
    const auto request = rb.build();
    ASSERT_TRUE(request.has_value());
    // Same canonical key: the two builders describe identical work.
    EXPECT_EQ(cacheKey(job->simulation), cacheKey(*request));
}

TEST(JobBuilder, RejectsUnknownNamesEagerly)
{
    const Session session;
    {
        auto b = session.job().workload("NoSuchLayer");
        EXPECT_FALSE(b.build().has_value());
        EXPECT_NE(b.error().find("unknown workload"),
                  std::string::npos);
    }
    {
        auto b = session.job().engine("NOPE-9000");
        EXPECT_FALSE(b.build().has_value());
        EXPECT_NE(b.error().find("unknown engine"), std::string::npos);
    }
    {
        auto b = session.job().model("no-such-model");
        EXPECT_FALSE(b.build().has_value());
        EXPECT_NE(b.error().find("unknown analytical model"),
                  std::string::npos);
    }
    {
        auto b = session.job()
                     .workload("BERT-L1")
                     .engine("VEGETA-S-16-2")
                     .pattern(3);
        EXPECT_FALSE(b.build().has_value());
        EXPECT_NE(b.error().find("pattern"), std::string::npos);
    }
}

TEST(JobBuilder, RejectsCrossKindMixtures)
{
    const Session session;
    {
        // A pattern on an analytical job.
        auto b = session.job().model("fig3-roofline").pattern(2);
        EXPECT_FALSE(b.build().has_value());
        EXPECT_NE(b.error().find("simulation jobs"),
                  std::string::npos);
    }
    {
        // A param on a simulation job.
        auto b = session.job()
                     .workload("BERT-L1")
                     .engine("VEGETA-S-16-2")
                     .param("degree", 0.95);
        EXPECT_FALSE(b.build().has_value());
        EXPECT_NE(b.error().find("model"), std::string::npos);
    }
    {
        // Two engines on a simulation job (fine for analysis).
        auto b = session.job()
                     .workload("BERT-L1")
                     .engine("VEGETA-S-16-2")
                     .engine("VEGETA-D-1-2");
        EXPECT_FALSE(b.build().has_value());
        EXPECT_NE(b.error().find("exactly one engine"),
                  std::string::npos);
    }
    {
        auto b = session.job()
                     .model("fig14-area-power")
                     .engine("VEGETA-S-16-2")
                     .engine("VEGETA-D-1-2");
        const auto job = b.build();
        ASSERT_TRUE(job.has_value()) << b.error();
        EXPECT_EQ(job->kind, JobKind::Analysis);
        EXPECT_EQ(job->analysis.engines.size(), 2u);
    }
}

// --- Job keys --------------------------------------------------------

TEST(JobKey, DistinguishesKindsAndParameters)
{
    const Session session;
    const auto sim_job = session.job()
                             .workload("quick-small")
                             .engine("VEGETA-S-2-2")
                             .build();
    ASSERT_TRUE(sim_job.has_value());

    auto ana = session.job().model("fig15-unstructured");
    const auto ana_job = ana.build();
    ASSERT_TRUE(ana_job.has_value());
    EXPECT_NE(jobKey(*sim_job), jobKey(*ana_job));

    auto ana2 = session.job()
                    .model("fig15-unstructured")
                    .param("degree", 0.95);
    const auto ana_job2 = ana2.build();
    EXPECT_NE(jobKey(*ana_job), jobKey(*ana_job2));

    auto ana3 = session.job()
                    .model("fig15-unstructured")
                    .param("degree", 0.95);
    EXPECT_EQ(jobKey(*ana_job2), jobKey(*ana3.build()));
}

// --- Session::run(Job) -----------------------------------------------

TEST(Session, JobRunMatchesTypedEntryPoints)
{
    const Session session;
    const auto sim_job = session.job()
                             .workload("quick-small")
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    ASSERT_TRUE(sim_job.has_value());
    const auto via_job = session.run(*sim_job);
    ASSERT_EQ(via_job.kind, JobKind::Simulation);
    expectIdenticalSim(via_job.simulation,
                       session.run(sim_job->simulation));

    auto ana = session.job()
                   .model("fig14-area-power")
                   .engine("VEGETA-S-16-2");
    const auto ana_job = ana.build();
    ASSERT_TRUE(ana_job.has_value());
    const auto via_ana = session.run(*ana_job);
    ASSERT_EQ(via_ana.kind, JobKind::Analysis);
    expectIdenticalAnalysis(via_ana.analysis,
                            session.analyze(ana_job->analysis));
}

// --- runBatch --------------------------------------------------------

TEST(Session, MixedBatchBitIdenticalAcrossThreadsAndCaches)
{
    const Session plain;
    const auto jobs = mixedBatch(plain);
    const auto reference = plain.runBatch(jobs, 1);

    // Threads.
    expectIdenticalBatches(plain.runBatch(jobs, 4), reference);

    // In-memory cache.
    Session cached;
    cached.enableCache();
    expectIdenticalBatches(cached.runBatch(jobs, 1), reference);
    expectIdenticalBatches(cached.runBatch(jobs, 4), reference);

    // Persistent cache (cold, then warm, single- and multi-threaded).
    Session disk;
    disk.attachDiskCache(freshDir("mixed_batch"));
    ASSERT_TRUE(disk.diskCache()->ok());
    expectIdenticalBatches(disk.runBatch(jobs, 4), reference);
    expectIdenticalBatches(disk.runBatch(jobs, 1), reference);
}

TEST(Session, BatchDedupeRunsUniqueJobsOnce)
{
    Session session;
    const auto cache = session.enableCache();
    const auto jobs = mixedBatch(session);
    session.runBatch(jobs, 4);
    // mixedBatch holds 3 unique trace jobs (one duplicated): each
    // simulates exactly once.
    EXPECT_EQ(session.simulationsPerformed(), 3u);
    EXPECT_EQ(cache->stats().insertions, 3u);
}

TEST(Session, WarmDiskCacheSkipsEveryTraceReplay)
{
    const std::string dir = freshDir("warm_sweep");

    // Cold run: a first session populates the persistent cache.
    Session cold;
    cold.attachDiskCache(dir);
    ASSERT_TRUE(cold.diskCache()->ok());
    const auto jobs = mixedBatch(cold);
    const auto cold_results = cold.runBatch(jobs, 4);
    EXPECT_EQ(cold.simulationsPerformed(), 3u);
    EXPECT_EQ(cold.analysesPerformed(), 3u);

    // Warm run: a second session (fresh process in real life) runs
    // the same sweep against the same directory -- ZERO trace
    // replays, ZERO analytical backend evaluations, and bit-identical
    // output.
    Session warm;
    warm.attachDiskCache(dir);
    const auto warm_results = warm.runBatch(jobs, 4);
    expectIdenticalBatches(warm_results, cold_results);
    EXPECT_EQ(warm.simulationsPerformed(), 0u);
    EXPECT_EQ(warm.analysesPerformed(), 0u);
    const auto stats = warm.diskCache()->stats();
    EXPECT_EQ(stats.misses, 0u);
    // 3 unique trace jobs + 3 unique analytical jobs, all from disk.
    EXPECT_EQ(stats.hits, 6u);
}

TEST(Session, RequestOverloadMatchesSweepRunnerShim)
{
    const Session session;
    std::vector<SimulationRequest> requests;
    for (const char *engine : {"VEGETA-D-1-2", "VEGETA-S-2-2"}) {
        const auto request = session.request()
                                 .workload("quick-small")
                                 .engine(engine)
                                 .pattern(2)
                                 .build();
        ASSERT_TRUE(request.has_value());
        requests.push_back(*request);
    }
    const auto direct = session.runBatch(requests, 2);
    const auto shim = SweepRunner(session, 2).run(requests);
    ASSERT_EQ(direct.size(), shim.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        expectIdenticalSim(direct[i], shim[i]);
}

TEST(Session, JobErrorChecksBothKinds)
{
    const Session session;
    Job bad_sim;
    bad_sim.kind = JobKind::Simulation;
    bad_sim.simulation.engine = "NOPE-9000";
    bad_sim.simulation.gemm = {32, 32, 64};
    ASSERT_TRUE(session.jobError(bad_sim).has_value());

    Job bad_ana;
    bad_ana.kind = JobKind::Analysis;
    bad_ana.analysis.model = "no-such-model";
    ASSERT_TRUE(session.jobError(bad_ana).has_value());

    const auto good = session.job()
                          .gemm(kernels::GemmDims{32, 32, 64})
                          .engine("VEGETA-D-1-2")
                          .build();
    ASSERT_TRUE(good.has_value());
    EXPECT_FALSE(session.jobError(*good).has_value());
}

} // namespace
} // namespace vegeta::sim
