/**
 * @file
 * Dynamic-sparsity compaction model tests (paper Section VII).
 */

#include <gtest/gtest.h>

#include "model/dynamic_sparsity.hpp"

namespace vegeta::model {
namespace {

TEST(MergeProbability, ClosedFormBoundaries)
{
    EXPECT_DOUBLE_EQ(analyticMergeProbability(32, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(analyticMergeProbability(32, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(analyticMergeProbability(512, 0.0), 1.0);
}

TEST(MergeProbability, MoreLanesMeansMoreConflicts)
{
    for (double d : {0.05, 0.1, 0.2, 0.3})
        EXPECT_LT(analyticMergeProbability(kTileLanes, d),
                  analyticMergeProbability(kVectorLanes, d))
            << d;
}

TEST(MergeProbability, MonotoneInDensity)
{
    double prev = 1.0;
    for (double d : {0.01, 0.05, 0.1, 0.2, 0.4, 0.8}) {
        const double p = analyticMergeProbability(64, d);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST(MergeProbability, MonteCarloMatchesClosedForm)
{
    Rng rng(1);
    for (double d : {0.05, 0.10, 0.20}) {
        const double analytic =
            analyticMergeProbability(kVectorLanes, d);
        const double mc =
            monteCarloMergeProbability(kVectorLanes, d, 20000, rng);
        EXPECT_NEAR(mc, analytic, 0.02) << d;
    }
}

TEST(MergeProbability, TileMergesEssentiallyNever)
{
    // Section VII: "high probability of conflicts across different
    // tiles" -- at 10% dynamic density the tile merge probability is
    // below 1%.
    EXPECT_LT(analyticMergeProbability(kTileLanes, 0.10), 0.01);
    Rng rng(2);
    EXPECT_LT(monteCarloMergeProbability(kTileLanes, 0.10, 5000, rng),
              0.02);
}

TEST(Compaction, VectorBeatsTile)
{
    Rng rng(3);
    for (double d : {0.05, 0.10, 0.20}) {
        Rng rng_v(10 + static_cast<u64>(d * 100));
        Rng rng_t(20 + static_cast<u64>(d * 100));
        const double vec =
            greedyCompactionFactor(kVectorLanes, d, 512, rng_v);
        const double tile =
            greedyCompactionFactor(kTileLanes, d, 512, rng_t);
        EXPECT_GT(vec, tile) << d;
        EXPECT_GE(tile, 1.0);
    }
    (void)rng;
}

TEST(Compaction, DenseStreamDoesNotCompact)
{
    Rng rng(4);
    EXPECT_NEAR(greedyCompactionFactor(kTileLanes, 0.9, 128, rng), 1.0,
                0.05);
}

TEST(CompactionStudy, DefaultSweepShape)
{
    const auto series = compactionStudy();
    ASSERT_FALSE(series.empty());
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_LE(series[i].vectorMergeProb,
                  series[i - 1].vectorMergeProb);
        EXPECT_LE(series[i].tileMergeProb,
                  series[i - 1].tileMergeProb);
    }
    for (const auto &p : series)
        EXPECT_GE(p.vectorCompaction, p.tileCompaction * 0.99);
}

TEST(CompactionStudy, Deterministic)
{
    const auto a = compactionStudy({0.1}, 128, 1000, 42);
    const auto b = compactionStudy({0.1}, 128, 1000, 42);
    EXPECT_DOUBLE_EQ(a[0].vectorCompaction, b[0].vectorCompaction);
    EXPECT_DOUBLE_EQ(a[0].tileCompaction, b[0].tileCompaction);
}

} // namespace
} // namespace vegeta::model
