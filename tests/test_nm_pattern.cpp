/**
 * @file
 * N:M pattern analysis tests.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sparsity/nm_pattern.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta {
namespace {

TEST(NMPattern, BasicProperties)
{
    EXPECT_DOUBLE_EQ(pattern24().guaranteedSparsity(), 0.5);
    EXPECT_DOUBLE_EQ(pattern14().guaranteedSparsity(), 0.75);
    EXPECT_DOUBLE_EQ(pattern44().guaranteedSparsity(), 0.0);
    EXPECT_EQ(pattern24().toString(), "2:4");
}

TEST(NMPattern, LegalRowN)
{
    EXPECT_EQ(legalRowN(4), (std::vector<u32>{1, 2, 4}));
    EXPECT_EQ(legalRowN(16), (std::vector<u32>{1, 2, 4, 8, 16}));
}

TEST(NMPattern, RoundUpToLegalN)
{
    EXPECT_EQ(roundUpToLegalN(0, 4), 0u);
    EXPECT_EQ(roundUpToLegalN(1, 4), 1u);
    EXPECT_EQ(roundUpToLegalN(2, 4), 2u);
    EXPECT_EQ(roundUpToLegalN(3, 4), 4u);
    EXPECT_EQ(roundUpToLegalN(4, 4), 4u);
    EXPECT_EQ(roundUpToLegalN(5, 16), 8u);
}

TEST(NMPattern, BlockNonZeros)
{
    MatrixBF16 m(1, 8);
    m.at(0, 0) = BF16(1.0f);
    m.at(0, 2) = BF16(1.0f);
    m.at(0, 5) = BF16(1.0f);
    EXPECT_EQ(blockNonZeros(m, 0, 0), 2u);
    EXPECT_EQ(blockNonZeros(m, 0, 1), 1u);
}

TEST(NMPattern, MinimalRowN)
{
    MatrixBF16 m(3, 8);
    // Row 0: empty -> 0.
    // Row 1: one nz per block -> 1.
    m.at(1, 1) = BF16(1.0f);
    m.at(1, 6) = BF16(1.0f);
    // Row 2: three nz in one block -> rounds to 4.
    m.at(2, 0) = BF16(1.0f);
    m.at(2, 1) = BF16(1.0f);
    m.at(2, 2) = BF16(1.0f);
    EXPECT_EQ(minimalRowN(m, 0), 0u);
    EXPECT_EQ(minimalRowN(m, 1), 1u);
    EXPECT_EQ(minimalRowN(m, 2), 4u);
}

TEST(NMPattern, SatisfiesNM)
{
    Rng rng(10);
    MatrixBF16 pruned = randomNMMatrix(16, 64, pattern24(), rng);
    EXPECT_TRUE(satisfiesNM(pruned, pattern24()));
    EXPECT_TRUE(satisfiesNM(pruned, pattern44()));
    EXPECT_FALSE(satisfiesNM(randomMatrixBF16(16, 64, rng), pattern24()));
}

TEST(NMPattern, OneFourImpliesTwoFour)
{
    Rng rng(11);
    MatrixBF16 pruned = randomNMMatrix(16, 64, pattern14(), rng);
    EXPECT_TRUE(satisfiesNM(pruned, pattern14()));
    EXPECT_TRUE(satisfiesNM(pruned, pattern24()));
}

TEST(NMPattern, MinimalMatrixNIsMaxOfRows)
{
    MatrixBF16 m(2, 8);
    m.at(0, 0) = BF16(1.0f); // row 0 is 1:4
    m.at(1, 0) = BF16(1.0f);
    m.at(1, 1) = BF16(1.0f); // row 1 is 2:4
    EXPECT_EQ(minimalMatrixN(m), 2u);
    auto profile = rowNProfile(m);
    EXPECT_EQ(profile, (std::vector<u32>{1, 2}));
}

TEST(NMPattern, WidthMustBeBlockMultiple)
{
    MatrixBF16 m(1, 6);
    EXPECT_FALSE(satisfiesNM(m, pattern24()));
}

/** Property sweep: pruned matrices always satisfy their pattern. */
class PrunedPatternTest
    : public ::testing::TestWithParam<std::tuple<u32, u64>>
{
};

TEST_P(PrunedPatternTest, PrunedMatrixSatisfiesPattern)
{
    const auto [n, seed] = GetParam();
    Rng rng(seed);
    const NMPattern pattern{n, 4};
    MatrixBF16 pruned = randomNMMatrix(32, 128, pattern, rng);
    EXPECT_TRUE(satisfiesNM(pruned, pattern));
    EXPECT_LE(minimalMatrixN(pruned), n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrunedPatternTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

} // namespace
} // namespace vegeta
