/**
 * @file
 * End-to-end simulation-service tests: a real SimServer on an
 * ephemeral socket, real SimClient connections, and the contract that
 * matters -- remote batches are bit-for-bit identical to a local
 * Session::runBatch, a warm server answers repeats with zero
 * simulations, version mismatches and bad jobs fail cleanly without
 * killing the connection, and concurrent clients all get correct
 * results (in-process and pre-forked worker modes alike).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "expect_identical.hpp"
#include "sim/client.hpp"
#include "sim/server.hpp"
#include "sim/session.hpp"
#include "sim/telemetry.hpp"
#include "sim/wire.hpp"

namespace vegeta::sim {
namespace {

namespace fs = std::filesystem;

std::string
freshSocketDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "vegeta_service" / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

SimulationRequest
quickRequest(u32 k, const std::string &engine, u32 pattern)
{
    SimulationRequest request;
    request.gemm = {32, 32, k};
    request.engine = engine;
    request.patternN = pattern;
    return request;
}

/** A small mixed batch, including an intra-batch duplicate. */
std::vector<Job>
mixedBatch()
{
    std::vector<Job> jobs;
    jobs.push_back(Job::simulate(quickRequest(64, "VEGETA-D-1-2", 4)));
    jobs.push_back(Job::simulate(quickRequest(64, "VEGETA-S-1-2", 2)));
    jobs.push_back(Job::simulate(quickRequest(64, "VEGETA-D-1-2", 4)));
    AnalyticalRequest analysis;
    analysis.model = "fig3-roofline";
    jobs.push_back(Job::analyze(std::move(analysis)));
    return jobs;
}

struct ServerFixture
{
    ServerOptions options;
    std::unique_ptr<SimServer> server;
    std::string dir;

    explicit ServerFixture(const std::string &name, u32 workers = 0)
    {
        dir = freshSocketDir(name);
        options.socketPath = dir + "/sim.sock";
        options.serviceWorkers = workers;
        options.threads = 2;
        // Analytical results persist through the disk cache (the
        // in-memory cache covers simulations), so a server that
        // promises zero-work warm repeats for BOTH job kinds needs
        // a cache dir.
        options.cacheDir = dir + "/cache";
        server = std::make_unique<SimServer>(options);
        std::string error;
        EXPECT_TRUE(server->start(&error)) << error;
    }

    SimClient client() const
    {
        ClientOptions client_options;
        client_options.address = options.socketPath;
        return SimClient(client_options);
    }
};

void
expectRemoteMatchesLocal(u32 workers, const char *name)
{
    ServerFixture fixture(name, workers);
    const auto jobs = mixedBatch();

    Session local;
    local.enableCache();
    const auto expected = local.runBatch(jobs, 2);

    auto client = fixture.client();
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;

    const auto first = client.runBatch(jobs, &error);
    ASSERT_TRUE(first.has_value()) << error;
    expectIdenticalBatches(first->results, expected);
    EXPECT_GT(first->simulationsPerformed, 0u);
    EXPECT_GT(first->analysesPerformed, 0u);

    // Warm repeat: same bits, zero work performed by the server.
    const auto second = client.runBatch(jobs, &error);
    ASSERT_TRUE(second.has_value()) << error;
    expectIdenticalBatches(second->results, expected);
    EXPECT_EQ(second->simulationsPerformed, 0u);
    EXPECT_EQ(second->analysesPerformed, 0u);

    const auto stats = fixture.server->stats();
    EXPECT_EQ(stats.connections, 1u);
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.jobs, 2 * jobs.size());
    fixture.server->stop();
    EXPECT_FALSE(fixture.server->running());
}

TEST(Service, InProcessBatchIdenticalToLocalRunBatch)
{
    expectRemoteMatchesLocal(0, "inproc");
}

TEST(Service, WorkerModeBatchIdenticalToLocalRunBatch)
{
    expectRemoteMatchesLocal(2, "workers");
}

TEST(Service, BatchIdenticalToLocalWithTracingEnabled)
{
    // Byte-identity must survive armed span recording (--trace-out):
    // both execution modes, full warm-repeat contract included.
    telemetry::setTraceEnabled(true);
    telemetry::clearTrace();
    expectRemoteMatchesLocal(0, "traced-inproc");
    expectRemoteMatchesLocal(2, "traced-workers");
    telemetry::setTraceEnabled(false);
#ifndef VEGETA_NO_TELEMETRY
    EXPECT_GT(telemetry::traceSpanCount("service.dispatch"), 0u)
        << "an armed service run must record dispatch spans";
#endif
    telemetry::clearTrace();
}

TEST(Service, StatsFrameReportsLiveState)
{
    ServerFixture fixture("statsframe");
    const auto jobs = mixedBatch();
    auto client = fixture.client();
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;
    ASSERT_TRUE(client.runBatch(jobs, &error).has_value()) << error;

    const auto stats = client.fetchStats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    // One batch of four jobs from one live connection; the document
    // must carry every advertised section.
    EXPECT_NE(stats->find("\"batches\": 1"), std::string::npos)
        << *stats;
    EXPECT_NE(stats->find("\"jobs\": 4"), std::string::npos)
        << *stats;
    for (const char *key :
         {"\"uptime_s\"", "\"queue_depths\"", "\"jobs_per_s\"",
          "\"latency_ms\"", "\"dispatch\"", "\"queue_wait\"",
          "\"p50\"", "\"p99\"", "\"cache\"", "\"hit_rate\"",
          "\"workers\""})
        EXPECT_NE(stats->find(key), std::string::npos)
            << "missing " << key << " in:\n"
            << *stats;

    // The connection stays usable after a stats exchange.
    ASSERT_TRUE(client.runBatch(jobs, &error).has_value()) << error;
    fixture.server->stop();
}

TEST(Service, StatsFrameCountsPerWorkerJobs)
{
    ServerFixture fixture("statsworkers", 2);
    const auto jobs = mixedBatch();
    auto client = fixture.client();
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;
    ASSERT_TRUE(client.runBatch(jobs, &error).has_value()) << error;

    const auto stats = client.fetchStats(&error);
    ASSERT_TRUE(stats.has_value()) << error;
    EXPECT_NE(stats->find("\"workers\": {\"count\": 2"),
              std::string::npos)
        << *stats;
    EXPECT_NE(stats->find("\"per_worker\""), std::string::npos);
    fixture.server->stop();
}

TEST(Service, EphemeralTcpPortWorks)
{
    ServerOptions options;
    options.useTcp = true; // port 0 = kernel-assigned
    options.threads = 2;
    SimServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_GT(server.port(), 0u);
    EXPECT_EQ(server.address(),
              "tcp:127.0.0.1:" + std::to_string(server.port()));

    ClientOptions client_options;
    client_options.address = server.address();
    SimClient client(client_options);
    ASSERT_TRUE(client.connect(&error)) << error;
    const auto jobs = mixedBatch();
    const auto run = client.runBatch(jobs, &error);
    ASSERT_TRUE(run.has_value()) << error;

    Session local;
    local.enableCache();
    expectIdenticalBatches(run->results, local.runBatch(jobs, 2));
    server.stop();
}

TEST(Service, VersionMismatchRefusedBeforeAnyWork)
{
    ServerFixture fixture("mismatch");
    // Speak the raw wire with a wrong hello: the server must answer
    // with an Error frame naming the mismatch, not a HelloAck.
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  fixture.options.socketPath.c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    std::string error;
    ASSERT_TRUE(wire::writeFrame(fd, wire::FrameType::Hello,
                                 "vegeta-wire v0\tstale\tstale",
                                 &error))
        << error;
    wire::Frame reply;
    ASSERT_TRUE(wire::readFrame(fd, &reply, 5'000, &error)) << error;
    EXPECT_EQ(reply.type, wire::FrameType::Error);
    EXPECT_NE(reply.payload.find("version"), std::string::npos)
        << reply.payload;
    ::close(fd);

    // The refused handshake did not poison the server: a correct
    // client connects and runs fine afterwards.
    auto client = fixture.client();
    ASSERT_TRUE(client.connect(&error)) << error;
    EXPECT_TRUE(client.runBatch(mixedBatch(), &error).has_value())
        << error;
    const auto stats = fixture.server->stats();
    EXPECT_EQ(stats.protocolErrors, 1u);
}

TEST(Service, BadJobErrorsButConnectionSurvives)
{
    ServerFixture fixture("badjob");
    auto client = fixture.client();
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;

    std::vector<Job> bad;
    bad.push_back(
        Job::simulate(quickRequest(64, "NO-SUCH-ENGINE", 4)));
    EXPECT_FALSE(client.runBatch(bad, &error).has_value());
    EXPECT_NE(error.find("NO-SUCH-ENGINE"), std::string::npos)
        << error;

    // Same connection, valid batch: still works.
    const auto jobs = mixedBatch();
    const auto run = client.runBatch(jobs, &error);
    ASSERT_TRUE(run.has_value()) << error;
    Session local;
    local.enableCache();
    expectIdenticalBatches(run->results, local.runBatch(jobs, 2));
}

TEST(Service, ConcurrentClientsAllGetIdenticalResults)
{
    ServerFixture fixture("fairness");
    const auto jobs = mixedBatch();
    Session local;
    local.enableCache();
    const auto expected = local.runBatch(jobs, 2);

    constexpr int kClients = 4;
    constexpr int kIters = 3;
    std::vector<std::thread> threads;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c]() {
            ClientOptions client_options;
            client_options.address = fixture.options.socketPath;
            SimClient client(client_options);
            std::string error;
            if (!client.connect(&error)) {
                failures[c] = error;
                return;
            }
            for (int i = 0; i < kIters; ++i) {
                const auto run = client.runBatch(jobs, &error);
                if (!run) {
                    failures[c] = error;
                    return;
                }
                // Full field comparison happens on the main thread;
                // here a cheap size check keeps the loop tight.
                if (run->results.size() != expected.size()) {
                    failures[c] = "result size mismatch";
                    return;
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[c], "") << "client " << c;
    const auto stats = fixture.server->stats();
    EXPECT_EQ(stats.connections, kClients);
    EXPECT_EQ(stats.batches, u64(kClients) * kIters);

    // One final batch compared field-by-field.
    auto client = fixture.client();
    std::string error;
    ASSERT_TRUE(client.connect(&error)) << error;
    const auto run = client.runBatch(jobs, &error);
    ASSERT_TRUE(run.has_value()) << error;
    expectIdenticalBatches(run->results, expected);
    EXPECT_EQ(run->simulationsPerformed, 0u);
}

TEST(Service, StaleSocketFileIsReclaimed)
{
    const std::string dir = freshSocketDir("stale");
    const std::string path = dir + "/sim.sock";
    {
        // A dead server's leftover socket file.
        const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // closed without unlink: stale file remains
    }
    ASSERT_TRUE(fs::exists(path));
    ServerOptions options;
    options.socketPath = path;
    options.threads = 2;
    SimServer server(options);
    std::string error;
    EXPECT_TRUE(server.start(&error)) << error;
    server.stop();
    // A clean stop removes its socket file.
    EXPECT_FALSE(fs::exists(path));
}

TEST(Service, SecondServerOnLiveSocketRefusesToStart)
{
    ServerFixture fixture("occupied");
    ServerOptions options = fixture.options;
    SimServer second(options);
    std::string error;
    EXPECT_FALSE(second.start(&error));
    EXPECT_NE(error.find("already listening"), std::string::npos)
        << error;
    // The loser must not have unlinked the winner's socket.
    auto client = fixture.client();
    ASSERT_TRUE(client.connect(&error)) << error;
}

TEST(Service, ParseServerAddressForms)
{
    bool use_tcp = false;
    std::string host;
    u32 port = 0;
    std::string error;

    ASSERT_TRUE(parseServerAddress("unix:/tmp/x.sock", &use_tcp,
                                   &host, &port, &error));
    EXPECT_FALSE(use_tcp);
    EXPECT_EQ(host, "/tmp/x.sock");

    ASSERT_TRUE(parseServerAddress("tcp:127.0.0.1:9000", &use_tcp,
                                   &host, &port, &error));
    EXPECT_TRUE(use_tcp);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 9000u);

    ASSERT_TRUE(
        parseServerAddress("9000", &use_tcp, &host, &port, &error));
    EXPECT_TRUE(use_tcp);
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 9000u);

    ASSERT_TRUE(parseServerAddress("/var/run/sim.sock", &use_tcp,
                                   &host, &port, &error));
    EXPECT_FALSE(use_tcp);
    EXPECT_EQ(host, "/var/run/sim.sock");

    EXPECT_FALSE(parseServerAddress("tcp:localhost", &use_tcp, &host,
                                    &port, &error));
    EXPECT_FALSE(parseServerAddress("tcp:127.0.0.1:0", &use_tcp,
                                    &host, &port, &error));
    EXPECT_FALSE(parseServerAddress("tcp:127.0.0.1:99999", &use_tcp,
                                    &host, &port, &error));
    EXPECT_FALSE(
        parseServerAddress("", &use_tcp, &host, &port, &error));
}

} // namespace
} // namespace vegeta::sim
