/**
 * @file
 * bench/trajectory.hpp merge semantics: upsert appends, refreshes an
 * owned row family, is idempotent for identical values, and refuses
 * to clobber another bench's field with a conflicting value.
 */

#include <gtest/gtest.h>

#include "../bench/trajectory.hpp"

namespace vegeta::bench {
namespace {

const char kEntry[] =
    "{\"commit\": \"abc\", \"mode\": \"full\", "
    "\"service\": {\"p50_ms\": 1.5}}";

TEST(Trajectory, UpsertAppendsMissingField)
{
    std::string conflict;
    const std::string merged = upsertEntryField(
        kEntry, "tune", "{\"regret\": 0}", false, &conflict);
    EXPECT_TRUE(conflict.empty());
    EXPECT_NE(merged.find("\"tune\": {\"regret\": 0}}"),
              std::string::npos);
    // The existing fields are untouched.
    EXPECT_NE(merged.find("\"service\": {\"p50_ms\": 1.5}"),
              std::string::npos);
}

TEST(Trajectory, UpsertReplacesOwnedField)
{
    const std::string merged = upsertEntryField(
        kEntry, "service", "{\"p50_ms\": 2.5}", true, nullptr);
    EXPECT_NE(merged.find("\"service\": {\"p50_ms\": 2.5}"),
              std::string::npos);
    EXPECT_EQ(merged.find("1.5"), std::string::npos);
}

TEST(Trajectory, UpsertIdenticalValueIsIdempotent)
{
    std::string conflict;
    const std::string merged = upsertEntryField(
        kEntry, "service", "{\"p50_ms\": 1.5}", false, &conflict);
    EXPECT_TRUE(conflict.empty());
    EXPECT_EQ(merged, kEntry);
}

TEST(Trajectory, UpsertRefusesConflictingUnownedValue)
{
    std::string conflict;
    const std::string merged = upsertEntryField(
        kEntry, "service", "{\"p50_ms\": 9.9}", false, &conflict);
    // Nothing clobbered, and the collision names both values.
    EXPECT_EQ(merged, kEntry);
    ASSERT_FALSE(conflict.empty());
    EXPECT_NE(conflict.find("service"), std::string::npos);
    EXPECT_NE(conflict.find("1.5"), std::string::npos);
    EXPECT_NE(conflict.find("9.9"), std::string::npos);
}

TEST(Trajectory, ExtractRoundTripsNestedValues)
{
    EXPECT_EQ(extractEntryField(kEntry, "service"),
              "{\"p50_ms\": 1.5}");
    EXPECT_EQ(extractEntryField(kEntry, "mode"), "\"full\"");
    EXPECT_EQ(extractEntryField(kEntry, "absent"), "");
}

} // namespace
} // namespace vegeta::bench
