/**
 * @file
 * Table IV workload tests: every layer's GEMM dims and MAC count.
 */

#include <gtest/gtest.h>

#include "kernels/workloads.hpp"

namespace vegeta::kernels {
namespace {

TEST(Workloads, TableIVMacCountsExact)
{
    const struct
    {
        const char *name;
        u64 macs;
    } expect[] = {
        {"ResNet50-L1", 51'380'224},  {"ResNet50-L2", 115'605'504},
        {"ResNet50-L3", 51'380'224},  {"ResNet50-L4", 115'605'504},
        {"ResNet50-L5", 51'380'224},  {"ResNet50-L6", 115'605'504},
        {"BERT-L1", 301'989'888},     {"BERT-L2", 201'326'592},
        {"BERT-L3", 201'326'592},     {"GPT-L1", 134'217'728},
        {"GPT-L2", 536'870'912},      {"GPT-L3", 805'306'368},
    };
    const auto workloads = tableIVWorkloads();
    ASSERT_EQ(workloads.size(), std::size(expect));
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        EXPECT_EQ(workloads[i].name, expect[i].name);
        EXPECT_EQ(workloads[i].paperMacs, expect[i].macs)
            << workloads[i].name;
        EXPECT_EQ(workloads[i].gemm.macs(), expect[i].macs)
            << workloads[i].name;
    }
}

TEST(Workloads, Im2colDimsMapping)
{
    // ResNet50-L1: K=64, C=256, 1x1 on 56x56.
    const GemmDims l1 = im2colGemm({64, 256, 56, 56, 1, 1});
    EXPECT_EQ(l1.m, 64u);
    EXPECT_EQ(l1.k, 256u);
    EXPECT_EQ(l1.n, 56u * 56);

    // ResNet50-L2: K=64, C=64, 3x3 on 56x56.
    const GemmDims l2 = im2colGemm({64, 64, 56, 56, 3, 3});
    EXPECT_EQ(l2.m, 64u);
    EXPECT_EQ(l2.k, 64u * 9);
    EXPECT_EQ(l2.n, 56u * 56);
}

TEST(Workloads, BertAndGptAreRawGemms)
{
    const auto workloads = tableIVWorkloads();
    const auto &bert1 = workloads[6];
    EXPECT_EQ(bert1.name, "BERT-L1");
    EXPECT_EQ(bert1.gemm.m, 512u);
    EXPECT_EQ(bert1.gemm.n, 768u);
    EXPECT_EQ(bert1.gemm.k, 768u);
    const auto &gpt3 = workloads[11];
    EXPECT_EQ(gpt3.name, "GPT-L3");
    EXPECT_EQ(gpt3.gemm.k, 12288u);
}

TEST(Workloads, PrefixFilter)
{
    EXPECT_EQ(workloadsByPrefix("ResNet50").size(), 6u);
    EXPECT_EQ(workloadsByPrefix("BERT").size(), 3u);
    EXPECT_EQ(workloadsByPrefix("GPT").size(), 3u);
    EXPECT_TRUE(workloadsByPrefix("LLAMA").empty());
}

TEST(Workloads, QuickWorkloadsAreTileAligned)
{
    for (const auto &w : quickWorkloads()) {
        EXPECT_EQ(w.gemm.m % 16, 0u) << w.name;
        EXPECT_EQ(w.gemm.n % 16, 0u) << w.name;
        EXPECT_EQ(w.gemm.k % 128, 0u) << w.name;
    }
}

TEST(ConvDims, MacsFormula)
{
    const ConvDims conv{2, 3, 4, 5, 1, 1};
    EXPECT_EQ(conv.macs(), 2u * 3 * 4 * 5);
}

} // namespace
} // namespace vegeta::kernels
