/**
 * @file
 * Engine design-point tests: every Table III row must reproduce.
 */

#include <gtest/gtest.h>

#include "engine/config.hpp"

namespace vegeta::engine {
namespace {

struct TableIIIRow
{
    const char *name;
    u32 nrows, ncols, macs_per_pe, inputs_per_pe, alpha;
    Cycles drain;
    bool sparse;
};

// Table III of the paper, verbatim.
const TableIIIRow kTable[] = {
    {"VEGETA-D-1-1", 32, 16, 1, 1, 1, 16, false},
    {"VEGETA-D-1-2", 16, 16, 2, 2, 1, 16, false},
    {"VEGETA-D-16-1", 32, 1, 16, 1, 16, 1, false},
    {"VEGETA-S-1-2", 16, 16, 2, 8, 1, 16, true},
    {"VEGETA-S-2-2", 16, 8, 4, 8, 2, 8, true},
    {"VEGETA-S-4-2", 16, 4, 8, 8, 4, 4, true},
    {"VEGETA-S-8-2", 16, 2, 16, 8, 8, 2, true},
    {"VEGETA-S-16-2", 16, 1, 32, 8, 16, 2, true},
};

TEST(EngineConfig, TableIIIReproducesExactly)
{
    const auto configs = allTableIIIConfigs();
    ASSERT_EQ(configs.size(), std::size(kTable));
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto &cfg = configs[i];
        const auto &row = kTable[i];
        EXPECT_EQ(cfg.name, row.name);
        EXPECT_EQ(cfg.nRows(), row.nrows) << row.name;
        EXPECT_EQ(cfg.nCols(), row.ncols) << row.name;
        EXPECT_EQ(cfg.macsPerPe(), row.macs_per_pe) << row.name;
        EXPECT_EQ(cfg.inputsPerPe(), row.inputs_per_pe) << row.name;
        EXPECT_EQ(cfg.alpha, row.alpha) << row.name;
        EXPECT_EQ(cfg.drainLatency(), row.drain) << row.name;
        EXPECT_EQ(cfg.sparse, row.sparse) << row.name;
    }
}

TEST(EngineConfig, AllDesignsKeepTotalMacs)
{
    for (const auto &cfg : allEvaluatedConfigs())
        EXPECT_EQ(cfg.nRows() * cfg.nCols() * cfg.macsPerPe(), kTotalMacs)
            << cfg.name;
}

TEST(EngineConfig, SparseDesignsFixBetaTwo)
{
    // Section V-A: beta = M/2 so inputs feed a single row.
    for (const auto &cfg : allTableIIIConfigs())
        if (cfg.sparse)
            EXPECT_EQ(cfg.beta, 2u) << cfg.name;
}

TEST(EngineConfig, EffectiveNClampsToSupport)
{
    const auto dense = vegetaD12();
    EXPECT_EQ(dense.effectiveN(1), 4u);
    EXPECT_EQ(dense.effectiveN(2), 4u);
    EXPECT_EQ(dense.effectiveN(4), 4u);

    const auto stc = stcLike();
    EXPECT_EQ(stc.effectiveN(1), 2u); // 1:4 runs as 2:4 (Section VI-C)
    EXPECT_EQ(stc.effectiveN(2), 2u);
    EXPECT_EQ(stc.effectiveN(4), 4u);

    const auto full = vegetaS162();
    EXPECT_EQ(full.effectiveN(1), 1u);
    EXPECT_EQ(full.effectiveN(2), 2u);
}

TEST(EngineConfig, OpcodeSupport)
{
    using isa::Opcode;
    const auto dense = vegetaD11();
    EXPECT_TRUE(dense.supportsOpcode(Opcode::TileGemm));
    EXPECT_FALSE(dense.supportsOpcode(Opcode::TileSpmmU));
    EXPECT_FALSE(dense.supportsOpcode(Opcode::TileSpmmV));

    const auto stc = stcLike();
    EXPECT_TRUE(stc.supportsOpcode(Opcode::TileSpmmU));
    EXPECT_FALSE(stc.supportsOpcode(Opcode::TileSpmmV));
    EXPECT_FALSE(stc.supportsOpcode(Opcode::TileSpmmR));

    const auto full = vegetaS22();
    EXPECT_TRUE(full.supportsOpcode(Opcode::TileSpmmU));
    EXPECT_TRUE(full.supportsOpcode(Opcode::TileSpmmV));
    EXPECT_TRUE(full.supportsOpcode(Opcode::TileSpmmR));
}

TEST(EngineConfig, EvaluatedSetIncludesStcLike)
{
    const auto configs = allEvaluatedConfigs();
    EXPECT_EQ(configs.size(), 9u);
    bool found = false;
    for (const auto &cfg : configs)
        if (cfg.name == "STC-like")
            found = true;
    EXPECT_TRUE(found);
}

TEST(EngineConfig, LookupByName)
{
    auto cfg = configByName("VEGETA-S-4-2");
    ASSERT_TRUE(cfg.has_value());
    EXPECT_EQ(cfg->alpha, 4u);
    EXPECT_FALSE(configByName("VEGETA-X-9-9").has_value());
}

TEST(EngineConfig, ReductionDepth)
{
    EXPECT_EQ(vegetaD11().reductionDepth(), 0u);
    EXPECT_EQ(vegetaD12().reductionDepth(), 1u);
    EXPECT_EQ(vegetaS162().reductionDepth(), 1u);
}

TEST(EngineConfig, PriorWorkLabels)
{
    EXPECT_NE(vegetaD11().priorWorkLabel.find("RASA-SM"),
              std::string::npos);
    EXPECT_NE(vegetaD12().priorWorkLabel.find("RASA-DM"),
              std::string::npos);
    EXPECT_NE(vegetaD161().priorWorkLabel.find("TMUL"),
              std::string::npos);
}

} // namespace
} // namespace vegeta::engine
