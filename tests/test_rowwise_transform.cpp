/**
 * @file
 * Granularity-assignment tests (paper Sections III-D, V-E, VI-E).
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sparsity/pruning.hpp"
#include "sparsity/rowwise_transform.hpp"

namespace vegeta {
namespace {

MatrixBF16
unstructured(u32 rows, u32 cols, double degree, u64 seed)
{
    Rng rng(seed);
    return randomUnstructuredMatrix(rows, cols, degree, rng);
}

TEST(AssignCoveringN, DenseAssignsFour)
{
    auto m = unstructured(32, 64, 0.9, 1);
    auto a = assignCoveringN(m, SparsityGranularity::Dense);
    for (const auto &per_tile : a)
        for (u32 n : per_tile)
            EXPECT_EQ(n, 4u);
}

TEST(AssignCoveringN, LayerWiseIsUniform)
{
    auto m = unstructured(32, 128, 0.9, 2);
    auto a = assignCoveringN(m, SparsityGranularity::LayerWise);
    const u32 first = a[0][0];
    for (const auto &per_tile : a)
        for (u32 n : per_tile)
            EXPECT_EQ(n, first);
}

TEST(AssignCoveringN, AssignmentsCoverEveryNonZero)
{
    // The assertion inside assignCoveringN enforces covering; here we
    // double check externally for row-wise.
    auto m = unstructured(48, 128, 0.85, 3);
    auto a = assignCoveringN(m, SparsityGranularity::RowWise);
    for (u32 t = 0; t < a.size(); ++t) {
        for (u32 r = 0; r < m.rows(); ++r) {
            // Recompute the minimal covering N of the chunk.
            u32 worst = 0;
            for (u32 b = 0; b < 64 / 4; ++b) {
                u32 nnz = 0;
                for (u32 e = 0; e < 4; ++e)
                    if (!m.at(r, t * 64 + b * 4 + e).isZero())
                        ++nnz;
                worst = std::max(worst, nnz);
            }
            EXPECT_GE(a[t][r], roundUpToLegalN(worst, 4));
        }
    }
}

TEST(AssignCoveringN, PseudoRowWiseGroupsAligned)
{
    auto m = unstructured(64, 64, 0.9, 4);
    auto a = assignCoveringN(m, SparsityGranularity::PseudoRowWise);
    // Scan groups: 1:4 rows must come in quads, 2:4 rows in pairs.
    const auto &n = a[0];
    u32 r = 0;
    while (r < n.size()) {
        if (n[r] == 1) {
            ASSERT_LE(r + 4, n.size());
            for (u32 i = 0; i < 4; ++i)
                EXPECT_EQ(n[r + i], 1u);
            r += 4;
        } else if (n[r] == 2) {
            ASSERT_LE(r + 2, n.size());
            EXPECT_EQ(n[r + 1], 2u);
            r += 2;
        } else {
            EXPECT_EQ(n[r], 4u);
            r += 1;
        }
    }
}

TEST(GranularitySpeedup, OrderingHolds)
{
    // Finer granularity never loses to coarser granularity.
    for (u64 seed : {10u, 11u, 12u}) {
        auto m = unstructured(64, 256, 0.9, seed);
        const double layer =
            granularitySpeedup(m, SparsityGranularity::LayerWise);
        const double tile =
            granularitySpeedup(m, SparsityGranularity::TileWise);
        const double pseudo =
            granularitySpeedup(m, SparsityGranularity::PseudoRowWise);
        const double row =
            granularitySpeedup(m, SparsityGranularity::RowWise);
        EXPECT_GE(tile, layer);
        EXPECT_GE(row, pseudo);
        EXPECT_GE(row, tile);
        EXPECT_GE(layer, 0.99); // never slower than dense
        EXPECT_DOUBLE_EQ(
            granularitySpeedup(m, SparsityGranularity::Dense), 1.0);
    }
}

TEST(GranularitySpeedup, StructuredMatrixGetsFullBenefit)
{
    Rng rng(20);
    auto m = randomNMMatrix(32, 256, pattern14(), rng);
    // A 1:4 matrix is covered at N=1 by every granularity.
    EXPECT_DOUBLE_EQ(
        granularitySpeedup(m, SparsityGranularity::LayerWise), 4.0);
    EXPECT_DOUBLE_EQ(granularitySpeedup(m, SparsityGranularity::RowWise),
                     4.0);
}

TEST(GranularitySpeedup, RowWiseAt90And95MatchesPaperBand)
{
    // Section VI-E: row-wise achieves 2.36x at 90% and 3.28x at 95%.
    double sum90 = 0, sum95 = 0;
    const int trials = 4;
    for (int t = 0; t < trials; ++t) {
        Rng rng(30 + t);
        auto base = randomMatrixBF16(128, 512, rng);
        sum90 += granularitySpeedup(
            maskUnstructuredBernoulli(base, 0.90, rng),
            SparsityGranularity::RowWise);
        sum95 += granularitySpeedup(
            maskUnstructuredBernoulli(base, 0.95, rng),
            SparsityGranularity::RowWise);
    }
    EXPECT_NEAR(sum90 / trials, 2.36, 0.25);
    EXPECT_NEAR(sum95 / trials, 3.28, 0.30);
}

TEST(PartitionRowsByNBudget, RespectsBudget)
{
    std::vector<u32> row_n{4, 4, 4, 4, 2, 2, 2, 2, 1, 1, 1, 1,
                           1, 1, 1, 1, 4, 4, 4, 4, 4, 4, 4, 4};
    auto groups = partitionRowsByNBudget(row_n, 32);
    u32 covered = 0;
    for (auto [b, e] : groups) {
        EXPECT_EQ(b, covered);
        u32 sum = 0;
        for (u32 r = b; r < e; ++r)
            sum += row_n[r];
        EXPECT_LE(sum, 32u);
        covered = e;
    }
    EXPECT_EQ(covered, row_n.size());
}

TEST(PartitionRowsByNBudget, FullTilesWhenUniform)
{
    std::vector<u32> all_dense(16, 4); // 16 rows of 4:4
    auto groups = partitionRowsByNBudget(all_dense, 32);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (std::pair<u32, u32>{0, 8}));
    EXPECT_EQ(groups[1], (std::pair<u32, u32>{8, 16}));

    std::vector<u32> all_sparse(32, 1); // 32 rows of 1:4
    groups = partitionRowsByNBudget(all_sparse, 32);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0], (std::pair<u32, u32>{0, 32}));
}

TEST(RowWiseEngineCols, MatchesSectionVEFormula)
{
    // Ncols = N44 + N24/2 + N14/4.
    EXPECT_DOUBLE_EQ(rowWiseEngineCols({4, 4, 4, 4, 4, 4, 4, 4}), 8.0);
    EXPECT_DOUBLE_EQ(rowWiseEngineCols(std::vector<u32>(32, 1)), 8.0);
    // One 4:4 row (1 column) + two 2:4 rows (1) + four 1:4 rows (1).
    EXPECT_DOUBLE_EQ(rowWiseEngineCols({4, 2, 2, 1, 1, 1, 1}), 3.0);
}

TEST(TransformChunkToRowWise, Lossless)
{
    auto chunk = unstructured(24, 64, 0.92, 40);
    auto rwt = transformChunkToRowWise(chunk);
    EXPECT_EQ(rwt.decompress(), chunk);
}

TEST(GranularityName, AllNamed)
{
    EXPECT_STREQ(granularityName(SparsityGranularity::Dense), "dense");
    EXPECT_STREQ(granularityName(SparsityGranularity::RowWise),
                 "row-wise");
    EXPECT_STREQ(granularityName(SparsityGranularity::PseudoRowWise),
                 "pseudo-row-wise");
}

/** Property: speed-up grows with sparsity degree for row-wise. */
class DegreeMonotonicity : public ::testing::TestWithParam<u64>
{
};

TEST_P(DegreeMonotonicity, RowWiseSpeedupIncreasesWithDegree)
{
    Rng rng(GetParam());
    auto base = randomMatrixBF16(64, 256, rng);
    double prev = 0.0;
    for (double degree : {0.6, 0.75, 0.9, 0.97}) {
        Rng mask_rng(GetParam() * 31 + static_cast<u64>(degree * 100));
        auto m = maskUnstructuredBernoulli(base, degree, mask_rng);
        const double s =
            granularitySpeedup(m, SparsityGranularity::RowWise);
        EXPECT_GE(s, prev * 0.98); // allow tiny statistical noise
        prev = s;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DegreeMonotonicity,
                         ::testing::Values(50u, 51u, 52u, 53u));

} // namespace
} // namespace vegeta
