/**
 * @file
 * sim::Tuner and its search-space / cost-model helpers.
 *
 * Pins the funnel's contracts: the validity predicates are
 * conservative (they never reject a configuration the Figure 13 /
 * Table IV evaluation actually runs), budgets are strictly honored,
 * seeded search is bit-deterministic across thread and lane counts,
 * the capped-exhaustive strategy on the 45-point figure13 space finds
 * the same optimum as a full-replay sweep, and the ridge cost model
 * round-trips both a synthetic monotone space and a real cache record.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/cache.hpp"
#include "sim/cost_model.hpp"
#include "sim/session.hpp"
#include "sim/tune.hpp"

namespace vegeta::sim {
namespace {

std::vector<std::string>
tableIVNames(const Session &session)
{
    std::vector<std::string> names;
    for (const auto &w : session.workloads().group("tableIV"))
        names.push_back(w.name);
    return names;
}

std::string
reportJson(const TuneReport &report)
{
    std::ostringstream os;
    writeJson(os, report);
    return os.str();
}

// --- stage 1: validity predicates ------------------------------------

TEST(TuneSpace, PredicateNeverRejectsFigure13GridRequests)
{
    // Every request the paper-evaluation grid actually replays must be
    // scoreable: the predicates are conservative by contract.
    Session session;
    const auto workloads = tableIVNames(session);
    const auto engines = session.engines().names();
    const auto space = TuneSpace::figure13(session, workloads);
    const auto grid = figure13Grid(session, workloads, engines);
    ASSERT_FALSE(grid.empty());
    for (const auto &request : grid) {
        TunePoint point;
        point.workload = request.label;
        point.engine = request.engine;
        point.patternN = request.patternN;
        point.outputForwarding = request.outputForwarding;
        point.kernel = request.kernel;
        point.cBlocking = request.cBlocking;
        const auto reason = invalidReason(session, space, point);
        EXPECT_FALSE(reason) << tunePointKey(point) << " rejected: "
                             << reason.value_or("");
    }
}

TEST(TuneSpace, Figure13EnumerationAndRejectionCounts)
{
    Session session;
    const auto space = TuneSpace::figure13(session, {"quick-small"});
    const auto points = space.enumerate();
    EXPECT_EQ(points.size(), space.rawSize());

    u64 valid = 0;
    for (const auto &point : points) {
        const auto reason = invalidReason(session, space, point);
        if (!reason) {
            ++valid;
            continue;
        }
        EXPECT_FALSE(reason->empty()); // rejections carry a reason
    }
    // 9 engines x 3 patterns x 2 OF = 54 raw; OF on the dense design
    // is infeasible for all 3 patterns x 2 dense-capable engines.
    EXPECT_EQ(points.size(), 54u);
    EXPECT_EQ(valid, 45u);
}

TEST(TuneSpace, AreaBudgetRejectsLargeDesigns)
{
    Session session;
    auto space = TuneSpace::figure13(session, {"quick-small"});
    space.maxAreaUnits = 1e-6; // below every real design
    for (const auto &point : space.enumerate())
        EXPECT_TRUE(invalidReason(session, space, point));
}

// --- budget accounting -----------------------------------------------

TEST(Tuner, ReplayBudgetStrictlyHonored)
{
    Session session;
    session.enableCache();
    const auto space = TuneSpace::full(session, {"quick-small"});
    for (const auto strategy : {TuneStrategy::CappedExhaustive,
                                TuneStrategy::RandomHalving}) {
        for (const u32 replays : {1u, 3u, 5u, 8u}) {
            TuneOptions options;
            options.strategy = strategy;
            options.budget.replays = replays;
            options.threads = 1;
            const auto report = Tuner(session, options).run(space);
            SCOPED_TRACE(std::string(tuneStrategyName(strategy)) +
                         " budget " + std::to_string(replays));
            EXPECT_LE(report.replayedPoints, replays);
            EXPECT_GE(report.replayedPoints, 1u);
            EXPECT_EQ(report.confirmed.size(),
                      report.replayedPoints);
            EXPECT_EQ(report.rawPoints,
                      report.validPoints + report.rejectedPoints);
            ASSERT_NE(report.best(), nullptr);
            EXPECT_TRUE(report.best()->replayed);
        }
    }
}

TEST(Tuner, AnalysisBudgetCapsStageTwo)
{
    Session session;
    session.enableCache();
    const auto space = TuneSpace::full(session, {"quick-small"});
    TuneOptions options;
    options.budget.replays = 2;
    options.budget.analyses = 10;
    options.threads = 1;
    const auto report = Tuner(session, options).run(space);
    EXPECT_LE(report.analyzedPoints, 10u);
    EXPECT_LE(report.replayedPoints, 2u);
    ASSERT_NE(report.best(), nullptr);
}

// --- determinism -----------------------------------------------------

TEST(Tuner, SeededHalvingIdenticalAcrossThreadsAndLanes)
{
    const auto search = [](u32 threads, u32 lanes) {
        Session session; // fresh per run: equal cache state
        const auto space =
            TuneSpace::full(session, {"quick-small"});
        TuneOptions options;
        options.strategy = TuneStrategy::RandomHalving;
        options.budget.replays = 6;
        options.seed = 7;
        options.threads = threads;
        options.laneWidth = lanes;
        return reportJson(Tuner(session, options).run(space));
    };
    const auto baseline = search(1, 0);
    EXPECT_EQ(baseline, search(3, 0));
    EXPECT_EQ(baseline, search(2, 2));
}

TEST(Tuner, DifferentSeedsMayDrawDifferentPoolsButStayValid)
{
    Session session;
    session.enableCache();
    const auto space = TuneSpace::full(session, {"quick-small"});
    for (const u64 seed : {1u, 2u, 99u}) {
        TuneOptions options;
        options.strategy = TuneStrategy::RandomHalving;
        options.budget.replays = 3;
        options.seed = seed;
        options.threads = 1;
        const auto report = Tuner(session, options).run(space);
        ASSERT_NE(report.best(), nullptr);
        EXPECT_FALSE(
            invalidReason(session, space, report.best()->point));
    }
}

// --- search quality --------------------------------------------------

TEST(Tuner, CappedExhaustiveFindsFullSweepOptimum)
{
    Session session;
    session.enableCache(); // the sweep shares replays with the search
    const auto space =
        TuneSpace::figure13(session, {"quick-small"});

    TuneOptions sweep_options;
    sweep_options.budget.replays = u32(space.rawSize());
    sweep_options.threads = 1;
    const auto sweep = Tuner(session, sweep_options).run(space);
    ASSERT_NE(sweep.best(), nullptr);
    EXPECT_EQ(sweep.replayedPoints, sweep.validPoints); // all 45

    TuneOptions options;
    options.budget.replays = 8;
    options.threads = 1;
    const auto report = Tuner(session, options).run(space);
    ASSERT_NE(report.best(), nullptr);
    EXPECT_EQ(report.replayedPoints, 8u);
    EXPECT_EQ(tunePointKey(report.best()->point),
              tunePointKey(sweep.best()->point));
    EXPECT_EQ(report.best()->measuredCoreCycles,
              sweep.best()->measuredCoreCycles);
}

TEST(Tuner, ParetoFrontIsSortedAndNonDominated)
{
    Session session;
    session.enableCache();
    const auto space =
        TuneSpace::figure13(session, {"quick-small"});
    TuneOptions options;
    options.budget.replays = 12;
    options.threads = 1;
    const auto report = Tuner(session, options).run(space);
    ASSERT_FALSE(report.paretoFront.empty());
    for (std::size_t i = 1; i < report.paretoFront.size(); ++i) {
        // Ascending area, strictly improving cycles/MAC.
        EXPECT_GT(report.paretoFront[i].areaUnits,
                  report.paretoFront[i - 1].areaUnits);
        EXPECT_LT(report.paretoFront[i].measuredCyclesPerMac,
                  report.paretoFront[i - 1].measuredCyclesPerMac);
    }
    // The winner is on the front.
    const auto best_key = tunePointKey(report.best()->point);
    bool found = false;
    for (const auto &candidate : report.paretoFront)
        found = found || tunePointKey(candidate.point) == best_key;
    EXPECT_TRUE(found);
}

// --- cost model ------------------------------------------------------

TEST(CostModel, SyntheticMonotoneSpaceRoundTrips)
{
    // y = 2 + 0.5 * t: the fit must recover the line and predictions
    // must stay monotone in t.
    std::vector<CostSample> samples;
    for (u32 t = 0; t < 40; ++t) {
        CostSample sample;
        sample.features[0] = 1.0;
        sample.features[1] = double(t);
        sample.log2Cycles = 2.0 + 0.5 * double(t);
        samples.push_back(sample);
    }
    const auto model = CostModel::fit(samples);
    ASSERT_TRUE(model);
    EXPECT_EQ(model->sampleCount(), 40u);
    EXPECT_LT(model->trainRmse(), 1e-3);

    double previous = -1e300;
    for (u32 t = 0; t < 40; ++t) {
        const double predicted =
            model->predictLog2Cycles(samples[t].features);
        EXPECT_NEAR(predicted, samples[t].log2Cycles, 1e-2);
        EXPECT_GT(predicted, previous);
        previous = predicted;
    }

    // Closed-form fit: refitting the same data is bit-identical.
    const auto again = CostModel::fit(samples);
    ASSERT_TRUE(again);
    for (const auto &sample : samples)
        EXPECT_EQ(model->predictLog2Cycles(sample.features),
                  again->predictLog2Cycles(sample.features));
}

TEST(CostModel, FitRejectsDegenerateInputs)
{
    EXPECT_FALSE(CostModel::fit({}));
}

TEST(CostModel, CacheEntryRoundTripsThroughKey)
{
    Session session;
    auto request = session.request()
                       .workload("quick-small")
                       .engine("VEGETA-S-16-2")
                       .pattern(2)
                       .outputForwarding(true)
                       .cBlocking(2)
                       .build();
    ASSERT_TRUE(request);
    const auto result = session.run(*request);
    const auto sample = costSampleFromCacheEntry(
        session, cacheKey(*request), result);
    ASSERT_TRUE(sample);
    EXPECT_EQ(sample->features[0], 1.0); // bias term
    EXPECT_NEAR(sample->log2Cycles,
                std::log2(double(result.coreCycles)), 1e-12);

    // A corrupted key must be skipped, not mis-featurized.
    EXPECT_FALSE(costSampleFromCacheEntry(session, "v0|broken|key",
                                          result));
}

} // namespace
} // namespace vegeta::sim
