/**
 * @file
 * Roofline model tests (paper Figure 3).
 */

#include <gtest/gtest.h>

#include "model/roofline.hpp"

namespace vegeta::model {
namespace {

TEST(Roofline, AllEnginesCoincideAtFullDensity)
{
    // "For the 100% dense case, the dense matrix (vector) and sparse
    // matrix (vector) engines achieve the same compute throughput."
    auto series = figure3Series();
    const auto &full = series.back();
    ASSERT_DOUBLE_EQ(full.density, 1.0);
    EXPECT_NEAR(full.denseMatrixTflops, full.sparseMatrixTflops, 1e-9);
    EXPECT_NEAR(full.denseVectorTflops, full.sparseVectorTflops, 1e-9);
}

TEST(Roofline, SparseBeatsDenseBelowFullDensity)
{
    for (const auto &p : figure3Series()) {
        if (p.density < 1.0) {
            EXPECT_GE(p.sparseMatrixTflops, p.denseMatrixTflops);
            EXPECT_GE(p.sparseVectorTflops, p.denseVectorTflops);
        }
    }
}

TEST(Roofline, MatrixDominatesVectorWhenComputeBound)
{
    auto series = figure3Series();
    const auto &full = series.back();
    // 512 vs 64 GFLOPS: 8x gap at 100% density.
    EXPECT_NEAR(full.denseMatrixTflops / full.denseVectorTflops, 8.0,
                0.5);
}

TEST(Roofline, SparseMatrixPlateausAtPeak)
{
    // The sparse matrix engine stays compute bound at 0.512 TFLOPS
    // over the mid densities.
    RooflineParams params;
    for (double d : {0.4, 0.6, 0.8}) {
        const double t = effectiveTflops({64, 64, 56, 56, 3, 3}, d,
                                         params.matrixGflops, true,
                                         params);
        EXPECT_NEAR(t, 0.512, 0.01) << d;
    }
}

TEST(Roofline, SparseEnginesConvergeWhenMemoryBound)
{
    // "When memory bound, i.e., at extremely low density, ... a sparse
    // vector engine performs similar to a sparse matrix engine."
    auto series = figure3Series({}, {64, 64, 56, 56, 3, 3}, {0.001});
    const auto &p = series.front();
    EXPECT_NEAR(p.sparseVectorTflops, p.sparseMatrixTflops,
                0.05 * p.sparseMatrixTflops);
}

TEST(Roofline, DenseEffectiveThroughputScalesWithDensity)
{
    RooflineParams params;
    const kernels::ConvDims layer{64, 64, 56, 56, 3, 3};
    const double at_half =
        effectiveTflops(layer, 0.5, params.matrixGflops, false, params);
    const double at_full =
        effectiveTflops(layer, 1.0, params.matrixGflops, false, params);
    EXPECT_NEAR(at_half, at_full / 2.0, 1e-9);
}

TEST(Roofline, MonotonicInDensity)
{
    auto series = figure3Series();
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_GE(series[i].denseMatrixTflops,
                  series[i - 1].denseMatrixTflops - 1e-12);
        EXPECT_GE(series[i].sparseMatrixTflops,
                  series[i - 1].sparseMatrixTflops - 1e-12);
    }
}

TEST(Roofline, DefaultSeriesCoversPercentGrid)
{
    auto series = figure3Series();
    EXPECT_EQ(series.size(), 100u);
    EXPECT_DOUBLE_EQ(series.front().density, 0.01);
}

} // namespace
} // namespace vegeta::model
