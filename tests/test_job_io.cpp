/**
 * @file
 * Pool shard-file tests: every Job variant field round-trips through
 * the versioned job-file format bit-for-bit (same canonical key on
 * both sides), result files round-trip both result kinds exactly,
 * and corrupt or truncated files degrade to a clean error -- the
 * contract that a damaged shard can fail a worker but never produce
 * wrong or silently missing results.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/job_io.hpp"
#include "sim/session.hpp"

namespace vegeta::sim {
namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "vegeta_job_io" / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** A simulation job with every field away from its default. */
Job
fancySimulationJob()
{
    SimulationRequest request;
    request.label = "odd label\twith\ntabs%and newlines";
    request.gemm = {96, 64, 320};
    request.engine = "VEGETA-S-2-2";
    request.patternN = 1;
    request.outputForwarding = true;
    request.kernel = KernelVariant::Naive;
    request.cBlocking = 2;
    request.core.fetchWidth = 5;
    request.core.retireWidth = 3;
    request.core.robEntries = 41;
    request.core.loadBufferEntries = 17;
    request.core.frontEndDepth = 9;
    request.core.numAlus = 2;
    request.core.numLsuPorts = 1;
    request.core.numVectorFus = 3;
    request.core.vectorFmaLatency = 7;
    request.core.engineClockDivider = 2;
    request.core.outputForwarding = true;
    request.core.cache.lineBytes = 128;
    request.core.cache.l1Sets = 32;
    request.core.cache.l1Ways = 6;
    request.core.cache.l1Latency = 3;
    request.core.cache.l2Latency = 21;
    return Job::simulate(std::move(request));
}

/** An analysis job exercising lists, params, and odd options. */
Job
fancyAnalysisJob()
{
    AnalyticalRequest request;
    request.model = "fig15-unstructured";
    request.workloads = {"BERT-L1", "GPT-L1"};
    request.engines = {"VEGETA-S-16-2", "VEGETA-D-1-2"};
    request.params["degree"] = 0.1; // not exactly representable
    request.params["negative"] = -3.25e-17;
    request.params["zero"] = -0.0;
    request.options["note"] = "spaces, %percent,\ttab,\nnewline";
    request.options["plain"] = "value";
    return Job::analyze(std::move(request));
}

void
expectSameJob(const Job &a, const Job &b)
{
    ASSERT_EQ(a.kind, b.kind);
    // jobKey covers every canonical field of either kind...
    EXPECT_EQ(jobKey(a), jobKey(b));
    if (a.kind == JobKind::Simulation) {
        // ...and the non-key echo fields must survive too.
        EXPECT_EQ(a.simulation.label, b.simulation.label);
        const cpu::CoreConfig &x = a.simulation.core;
        const cpu::CoreConfig &y = b.simulation.core;
        EXPECT_EQ(x.fetchWidth, y.fetchWidth);
        EXPECT_EQ(x.retireWidth, y.retireWidth);
        EXPECT_EQ(x.robEntries, y.robEntries);
        EXPECT_EQ(x.loadBufferEntries, y.loadBufferEntries);
        EXPECT_EQ(x.frontEndDepth, y.frontEndDepth);
        EXPECT_EQ(x.numAlus, y.numAlus);
        EXPECT_EQ(x.numLsuPorts, y.numLsuPorts);
        EXPECT_EQ(x.numVectorFus, y.numVectorFus);
        EXPECT_EQ(x.vectorFmaLatency, y.vectorFmaLatency);
        EXPECT_EQ(x.engineClockDivider, y.engineClockDivider);
        EXPECT_EQ(x.outputForwarding, y.outputForwarding);
        EXPECT_EQ(x.cache.lineBytes, y.cache.lineBytes);
        EXPECT_EQ(x.cache.l1Sets, y.cache.l1Sets);
        EXPECT_EQ(x.cache.l1Ways, y.cache.l1Ways);
        EXPECT_EQ(x.cache.l1Latency, y.cache.l1Latency);
        EXPECT_EQ(x.cache.l2Latency, y.cache.l2Latency);
    } else {
        EXPECT_EQ(a.analysis.workloads, b.analysis.workloads);
        EXPECT_EQ(a.analysis.engines, b.analysis.engines);
        EXPECT_EQ(a.analysis.options, b.analysis.options);
        ASSERT_EQ(a.analysis.params.size(), b.analysis.params.size());
        for (const auto &[name, value] : a.analysis.params) {
            const auto it = b.analysis.params.find(name);
            ASSERT_NE(it, b.analysis.params.end()) << name;
            // bit-for-bit, including signed zero.
            EXPECT_EQ(std::signbit(value), std::signbit(it->second));
            EXPECT_EQ(value, it->second);
        }
    }
}

TEST(JobIo, SimulationJobRoundTripsEveryField)
{
    const Job job = fancySimulationJob();
    const auto parsed = parseJob(serializeJob(job));
    ASSERT_TRUE(parsed.has_value());
    expectSameJob(job, *parsed);
}

TEST(JobIo, AnalysisJobRoundTripsEveryField)
{
    const Job job = fancyAnalysisJob();
    const auto parsed = parseJob(serializeJob(job));
    ASSERT_TRUE(parsed.has_value());
    expectSameJob(job, *parsed);
}

TEST(JobIo, TamperedJobRecordIsRejected)
{
    std::string line = serializeJob(fancySimulationJob());
    // Flip one digit inside the record body: the checksum must
    // reject it rather than hand back a subtly different job.
    const auto pos = line.find("320");
    ASSERT_NE(pos, std::string::npos);
    line.replace(pos, 3, "321");
    EXPECT_FALSE(parseJob(line).has_value());
    EXPECT_FALSE(parseJob("").has_value());
    EXPECT_FALSE(parseJob("garbage").has_value());
}

TEST(JobIo, JobFileRoundTripsAMixedShard)
{
    const std::string dir = freshDir("shard");
    const std::string path = dir + "/shard.jobs";
    const std::vector<Job> jobs = {fancySimulationJob(),
                                   fancyAnalysisJob(),
                                   fancySimulationJob()};
    ASSERT_TRUE(writeJobFile(path, jobs));

    std::string error;
    const auto read = readJobFile(path, &error);
    ASSERT_TRUE(read.has_value()) << error;
    ASSERT_EQ(read->size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectSameJob(jobs[i], (*read)[i]);
}

TEST(JobIo, EmptyShardRoundTrips)
{
    const std::string dir = freshDir("empty");
    const std::string path = dir + "/empty.jobs";
    ASSERT_TRUE(writeJobFile(path, {}));
    std::string error;
    const auto read = readJobFile(path, &error);
    ASSERT_TRUE(read.has_value()) << error;
    EXPECT_TRUE(read->empty());
}

TEST(JobIo, CorruptShardFilesFailCleanly)
{
    const std::string dir = freshDir("corrupt");
    const std::string path = dir + "/shard.jobs";
    const std::vector<Job> jobs = {fancySimulationJob(),
                                   fancyAnalysisJob()};
    ASSERT_TRUE(writeJobFile(path, jobs));
    std::string text;
    {
        std::ifstream is(path);
        std::stringstream buffer;
        buffer << is.rdbuf();
        text = buffer.str();
    }

    auto write = [&](const std::string &name,
                     const std::string &content) {
        const std::string p = dir + "/" + name;
        std::ofstream os(p, std::ios::trunc | std::ios::binary);
        os << content;
        return p;
    };

    std::string error;
    // Missing file.
    EXPECT_FALSE(readJobFile(dir + "/nope.jobs", &error).has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos);
    // Wrong header.
    EXPECT_FALSE(
        readJobFile(write("header.jobs", "not a job file\n" + text),
                    &error)
            .has_value());
    // Truncated: cut before the footer.
    const auto last_line = text.rfind("end\t");
    ASSERT_NE(last_line, std::string::npos);
    EXPECT_FALSE(
        readJobFile(write("trunc.jobs", text.substr(0, last_line)),
                    &error)
            .has_value());
    EXPECT_NE(error.find("no footer"), std::string::npos);
    // Truncated mid-record (the cut record fails its checksum).
    EXPECT_FALSE(
        readJobFile(write("mid.jobs", text.substr(0, last_line - 10)),
                    &error)
            .has_value());
    // A record deleted but the footer count kept: count mismatch.
    {
        std::istringstream is(text);
        std::string line, kept;
        int line_no = 0;
        while (std::getline(is, line)) {
            if (++line_no != 2) // drop the first job record
                kept += line + "\n";
        }
        EXPECT_FALSE(
            readJobFile(write("count.jobs", kept), &error)
                .has_value());
        EXPECT_NE(error.find("count mismatch"), std::string::npos);
    }
    // Bit rot inside a record.
    {
        std::string rotten = text;
        const auto pos = rotten.find("VEGETA-S-2-2");
        ASSERT_NE(pos, std::string::npos);
        rotten.replace(pos, 12, "VEGETA-S-4-2");
        EXPECT_FALSE(readJobFile(write("rot.jobs", rotten), &error)
                         .has_value());
        EXPECT_NE(error.find("corrupt record"), std::string::npos);
    }
}

TEST(JobIo, ResultFileRoundTripsBothKindsBitExactly)
{
    const std::string dir = freshDir("results");
    const std::string path = dir + "/shard.results";

    // Real results from real runs, so the round trip is checked
    // against genuinely produced values (incl. macUtilization bits).
    const Session session;
    const auto sim_job = session.job()
                             .gemm(kernels::GemmDims{32, 32, 128})
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    ASSERT_TRUE(sim_job.has_value());
    auto ana_builder = session.job()
                           .model("fig15-unstructured")
                           .param("degree", 0.95);
    const auto ana_job = ana_builder.build();
    ASSERT_TRUE(ana_job.has_value());

    WorkerOutput output;
    output.results.emplace_back(jobKey(*sim_job),
                                session.run(*sim_job));
    output.results.emplace_back(jobKey(*ana_job),
                                session.run(*ana_job));
    output.simulationsPerformed = 1;
    output.analysesPerformed = 1;
    ASSERT_TRUE(writeResultFile(path, output));

    std::string error;
    const auto read = readResultFile(path, &error);
    ASSERT_TRUE(read.has_value()) << error;
    EXPECT_EQ(read->simulationsPerformed, 1u);
    EXPECT_EQ(read->analysesPerformed, 1u);
    ASSERT_EQ(read->results.size(), 2u);

    EXPECT_EQ(read->results[0].first, jobKey(*sim_job));
    const auto &sim_a = output.results[0].second.simulation;
    const auto &sim_b = read->results[0].second.simulation;
    EXPECT_EQ(sim_a.workload, sim_b.workload);
    EXPECT_EQ(sim_a.coreCycles, sim_b.coreCycles);
    EXPECT_EQ(sim_a.macUtilization, sim_b.macUtilization);
    EXPECT_EQ(sim_a.cacheHits, sim_b.cacheHits);
    EXPECT_EQ(sim_a.cacheMisses, sim_b.cacheMisses);

    EXPECT_EQ(read->results[1].first, jobKey(*ana_job));
    const auto &ana_a = output.results[1].second.analysis;
    const auto &ana_b = read->results[1].second.analysis;
    EXPECT_EQ(ana_a.model, ana_b.model);
    ASSERT_EQ(ana_a.columns, ana_b.columns);
    ASSERT_EQ(ana_a.rows.size(), ana_b.rows.size());
    for (std::size_t r = 0; r < ana_a.rows.size(); ++r) {
        ASSERT_EQ(ana_a.rows[r].size(), ana_b.rows[r].size());
        for (std::size_t c = 0; c < ana_a.rows[r].size(); ++c) {
            EXPECT_EQ(ana_a.rows[r][c].label, ana_b.rows[r][c].label);
            EXPECT_EQ(ana_a.rows[r][c].value, ana_b.rows[r][c].value);
            EXPECT_EQ(ana_a.rows[r][c].precision,
                      ana_b.rows[r][c].precision);
        }
    }
    EXPECT_EQ(ana_a.notes, ana_b.notes);
}

TEST(JobIo, TamperedResultFileFailsCleanly)
{
    const std::string dir = freshDir("bad_results");
    const std::string path = dir + "/shard.results";

    const Session session;
    const auto job = session.job()
                         .gemm(kernels::GemmDims{32, 32, 128})
                         .engine("VEGETA-D-1-2")
                         .build();
    ASSERT_TRUE(job.has_value());
    WorkerOutput output;
    output.results.emplace_back(jobKey(*job), session.run(*job));
    output.simulationsPerformed = 1;
    ASSERT_TRUE(writeResultFile(path, output));

    std::string text;
    {
        std::ifstream is(path);
        std::stringstream buffer;
        buffer << is.rdbuf();
        text = buffer.str();
    }
    // Tamper one cycle-count digit: checksum rejects the record and
    // the whole file fails (a pool worker error, not a wrong merge).
    const auto &result = output.results[0].second.simulation;
    const std::string cycles = std::to_string(result.coreCycles);
    const auto pos = text.find("\t" + cycles + "\t");
    ASSERT_NE(pos, std::string::npos);
    std::string rotten = text;
    rotten[pos + 1] = rotten[pos + 1] == '9' ? '8' : '9';
    {
        std::ofstream os(path, std::ios::trunc);
        os << rotten;
    }
    std::string error;
    EXPECT_FALSE(readResultFile(path, &error).has_value());
    EXPECT_NE(error.find("corrupt record"), std::string::npos);
}

} // namespace
} // namespace vegeta::sim
