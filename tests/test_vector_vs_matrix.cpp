/**
 * @file
 * Figure 4 study tests: instruction-count and runtime ratios of the
 * vector kernel over the matrix kernel.
 */

#include <gtest/gtest.h>

#include "kernels/vector_kernels.hpp"
#include "model/vector_vs_matrix.hpp"

namespace vegeta::model {
namespace {

TEST(VectorKernel, TraceComposition)
{
    const auto trace = kernels::generateVectorGemmTrace({32, 32, 32});
    // 32 rows x 2 strips x 16 k-pairs x (2 loads + 1 fma) dominates.
    const u64 fmas = countKind(trace, cpu::UopKind::VectorFma);
    EXPECT_EQ(fmas, 32u * 2 * 16);
    const u64 loads = countKind(trace, cpu::UopKind::Load);
    EXPECT_EQ(loads, 2 * fmas);
    EXPECT_EQ(countKind(trace, cpu::UopKind::Store), 32u * 2);
}

TEST(VectorKernel, ChainsAreDistinctPerStrip)
{
    const auto trace = kernels::generateVectorGemmTrace({4, 32, 8});
    u32 max_chain = 0;
    for (const auto &op : trace)
        if (op.kind == cpu::UopKind::VectorFma)
            max_chain = std::max(max_chain, op.chain);
    EXPECT_EQ(max_chain, 4u * 2); // m x n/16 strips
}

TEST(Figure4, InstructionRatioInPaperBand)
{
    // Paper: executed-instruction ratio roughly 20-60, growing with
    // the GEMM dimension.  Our register-blocked matrix kernel executes
    // slightly fewer instructions than the paper's (unspecified)
    // codegen, so the measured band sits a bit higher (~30-110); the
    // shape -- tens of times fewer instructions, growing with the
    // dimension -- is the reproduced claim (see EXPERIMENTS.md).
    const auto series = figure4Series();
    ASSERT_EQ(series.size(), 3u);
    for (const auto &p : series) {
        EXPECT_GT(p.instructionRatio(), 15.0) << p.dim;
        EXPECT_LT(p.instructionRatio(), 120.0) << p.dim;
    }
    EXPECT_LT(series[0].instructionRatio(), series[1].instructionRatio());
    EXPECT_LT(series[1].instructionRatio(), series[2].instructionRatio());
}

TEST(Figure4, RuntimeRatioGrowsWithDim)
{
    const auto series = figure4Series();
    EXPECT_GT(series.back().runtimeRatio(), 10.0);
    EXPECT_LT(series[0].runtimeRatio(), series[2].runtimeRatio());
    for (const auto &p : series)
        EXPECT_GT(p.runtimeRatio(), 1.0) << p.dim;
}

TEST(Figure4, MatrixExecutesFarFewerInstructions)
{
    const auto series = figure4Series({64});
    EXPECT_LT(series[0].matrixInstructions,
              series[0].vectorInstructions / 10);
}

TEST(VectorKernel, CountHelperMatchesTrace)
{
    const kernels::GemmDims dims{16, 32, 64};
    EXPECT_EQ(kernels::vectorGemmInstructionCount(dims),
              kernels::generateVectorGemmTrace(dims).size());
}

} // namespace
} // namespace vegeta::model
