/**
 * @file
 * Binary instruction encoding tests: round trips for every opcode and
 * rejection of malformed words.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hpp"

namespace vegeta::isa {
namespace {

std::vector<Instruction>
oneOfEach()
{
    return {
        makeTileLoadT(treg(3), 0x1000, 64),
        makeTileLoadU(ureg(1), 0x2000, 128),
        makeTileLoadV(vreg(1), 0x3000, 256),
        makeTileLoadM(6, 0x4000),
        makeTileStoreT(0x5000, 64, treg(7)),
        makeTileGemm(treg(5), treg(4), treg(0)),
        makeTileSpmmU(treg(5), treg(4), ureg(0)),
        makeTileSpmmV(treg(5), treg(4), vreg(0)),
        makeTileSpmmR(ureg(1), treg(4), ureg(0), 18),
    };
}

TEST(Encoding, RoundTripEveryOpcode)
{
    for (const auto &instr : oneOfEach()) {
        const auto enc = encode(instr);
        const auto back = decode(enc);
        ASSERT_TRUE(back.has_value()) << instr.toString();
        EXPECT_EQ(back->toString(), instr.toString());
        EXPECT_EQ(back->op, instr.op);
        EXPECT_EQ(back->dst, instr.dst);
        EXPECT_EQ(back->srcA, instr.srcA);
        EXPECT_EQ(back->srcB, instr.srcB);
        EXPECT_EQ(back->mreg, instr.mreg);
        EXPECT_EQ(back->rows, instr.rows);
        EXPECT_EQ(back->addr, instr.addr);
        EXPECT_EQ(back->stride, instr.stride);
    }
}

TEST(Encoding, StreamRoundTrip)
{
    const auto instrs = oneOfEach();
    const auto words = encodeStream(instrs);
    const auto back = decodeStream(words);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), instrs.size());
    for (std::size_t i = 0; i < instrs.size(); ++i)
        EXPECT_EQ((*back)[i].toString(), instrs[i].toString());
}

TEST(Encoding, RejectsBadOpcode)
{
    EncodedInstruction enc;
    enc.word = 0xf; // opcode 15
    EXPECT_FALSE(decode(enc).has_value());
}

TEST(Encoding, RejectsReservedBits)
{
    auto enc = encode(makeTileGemm(treg(5), treg(4), treg(0)));
    enc.word |= 1ull << 60;
    EXPECT_FALSE(decode(enc).has_value());
}

TEST(Encoding, RejectsBadRegisterClassCombination)
{
    // TILE_GEMM with a ureg B operand is illegal.
    auto enc = encode(makeTileGemm(treg(5), treg(4), treg(0)));
    // Flip srcB class bits (17-18) from Treg (0) to Ureg (1).
    enc.word |= 1ull << 17;
    EXPECT_FALSE(decode(enc).has_value());
}

TEST(Encoding, RejectsOutOfRangeRegisterIndex)
{
    // ureg index 5 does not exist (only 0-3).
    auto enc = encode(makeTileSpmmU(treg(5), treg(4), ureg(0)));
    enc.word |= 5ull << 14; // srcB index bits
    EXPECT_FALSE(decode(enc).has_value());
}

TEST(Encoding, RejectsBadSpmmRRows)
{
    auto enc = encode(makeTileSpmmR(ureg(1), treg(4), ureg(0), 8));
    enc.word &= ~(0x3full << 22); // rows := 0
    EXPECT_FALSE(decode(enc).has_value());
    enc.word |= 40ull << 22; // rows := 40 > 32
    EXPECT_FALSE(decode(enc).has_value());
}

TEST(Encoding, StreamRejectsOneBadElement)
{
    auto words = encodeStream(oneOfEach());
    words[3].word = 0xf;
    EXPECT_FALSE(decodeStream(words).has_value());
}

TEST(Encoding, AddressPreservedExactly)
{
    auto instr = makeTileLoadT(treg(0), 0xdeadbeefcafeull, 4096);
    auto back = decode(encode(instr));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->addr, 0xdeadbeefcafeull);
    EXPECT_EQ(back->stride, 4096u);
}

} // namespace
} // namespace vegeta::isa
