/**
 * @file
 * Pruning and synthetic sparsity tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta {
namespace {

TEST(MagnitudePrune, KeepsLargestPerBlock)
{
    MatrixBF16 m(1, 4);
    m.at(0, 0) = BF16(0.5f);
    m.at(0, 1) = BF16(-3.0f);
    m.at(0, 2) = BF16(1.0f);
    m.at(0, 3) = BF16(0.25f);
    auto pruned = magnitudePruneNM(m, pattern24());
    EXPECT_TRUE(pruned.at(0, 0).isZero());
    EXPECT_EQ(pruned.at(0, 1).toFloat(), -3.0f);
    EXPECT_EQ(pruned.at(0, 2).toFloat(), 1.0f);
    EXPECT_TRUE(pruned.at(0, 3).isZero());
}

TEST(MagnitudePrune, OneFourKeepsSingleMax)
{
    MatrixBF16 m(1, 4);
    m.at(0, 0) = BF16(0.5f);
    m.at(0, 1) = BF16(-3.0f);
    m.at(0, 2) = BF16(1.0f);
    m.at(0, 3) = BF16(0.25f);
    auto pruned = magnitudePruneNM(m, pattern14());
    EXPECT_EQ(countNonZeros(pruned), 1u);
    EXPECT_EQ(pruned.at(0, 1).toFloat(), -3.0f);
}

TEST(MagnitudePrune, DensePatternIsIdentity)
{
    Rng rng(1);
    MatrixBF16 m = randomMatrixBF16(8, 16, rng);
    EXPECT_EQ(magnitudePruneNM(m, pattern44()), m);
}

TEST(MagnitudePrune, ResultSatisfiesPattern)
{
    Rng rng(2);
    for (u32 n : {1u, 2u}) {
        MatrixBF16 m = randomMatrixBF16(16, 64, rng);
        auto pruned = magnitudePruneNM(m, {n, 4});
        EXPECT_TRUE(satisfiesNM(pruned, {n, 4}));
        EXPECT_EQ(countNonZeros(pruned), 16u * 16 * n);
    }
}

TEST(MagnitudePrune, SparsityDegreeMatchesPattern)
{
    Rng rng(3);
    MatrixBF16 m = randomMatrixBF16(32, 64, rng);
    EXPECT_DOUBLE_EQ(sparsityDegree(magnitudePruneNM(m, pattern24())),
                     0.5);
    EXPECT_DOUBLE_EQ(sparsityDegree(magnitudePruneNM(m, pattern14())),
                     0.75);
}

TEST(MaskUnstructuredExact, ExactDegree)
{
    Rng rng(4);
    MatrixBF16 m = randomMatrixBF16(40, 40, rng);
    for (double degree : {0.0, 0.25, 0.5, 0.9, 0.95, 1.0}) {
        auto masked = maskUnstructuredExact(m, degree, rng);
        const u64 zeros = masked.size() - countNonZeros(masked);
        EXPECT_EQ(zeros,
                  static_cast<u64>(std::llround(degree * m.size())))
            << degree;
    }
}

TEST(MaskUnstructuredExact, Deterministic)
{
    Rng rng_a(7), rng_b(7);
    MatrixBF16 m = randomMatrixBF16(16, 16, rng_a);
    Rng rng_c(7);
    MatrixBF16 m2 = randomMatrixBF16(16, 16, rng_c);
    EXPECT_EQ(maskUnstructuredExact(m, 0.5, rng_a),
              maskUnstructuredExact(m2, 0.5, rng_c));
    (void)rng_b;
}

TEST(MaskUnstructuredBernoulli, DegreeWithinTolerance)
{
    Rng rng(8);
    MatrixBF16 m = randomMatrixBF16(128, 128, rng);
    auto masked = maskUnstructuredBernoulli(m, 0.8, rng);
    EXPECT_NEAR(sparsityDegree(masked), 0.8, 0.02);
}

TEST(RandomUnstructuredMatrix, DegreeAndDims)
{
    Rng rng(9);
    auto m = randomUnstructuredMatrix(64, 64, 0.95, rng);
    EXPECT_EQ(m.rows(), 64u);
    EXPECT_EQ(m.cols(), 64u);
    // Exactly round(0.95 * 4096) zeros.
    const u64 zeros = m.size() - countNonZeros(m);
    EXPECT_EQ(zeros, static_cast<u64>(std::llround(0.95 * m.size())));
}

TEST(MagnitudePrune, PreservedValuesUnchanged)
{
    Rng rng(10);
    MatrixBF16 m = randomMatrixBF16(16, 32, rng);
    auto pruned = magnitudePruneNM(m, pattern24());
    for (u32 r = 0; r < m.rows(); ++r)
        for (u32 c = 0; c < m.cols(); ++c)
            if (!pruned.at(r, c).isZero())
                EXPECT_EQ(pruned.at(r, c), m.at(r, c));
}

} // namespace
} // namespace vegeta
