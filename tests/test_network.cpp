/**
 * @file
 * Network-level simulation tests.
 */

#include <gtest/gtest.h>

#include "kernels/network.hpp"

namespace vegeta::kernels {
namespace {

Network
tinyNetwork()
{
    Workload a;
    a.name = "tiny-a";
    a.gemm = {32, 32, 256};
    Workload b;
    b.name = "tiny-b";
    b.gemm = {32, 32, 512};
    Network net;
    net.name = "tiny";
    net.layers = {{a, 2}, {b, 1}};
    return net;
}

TEST(Network, TotalMacsSumsLayers)
{
    const auto net = tinyNetwork();
    EXPECT_EQ(net.totalMacs(),
              32ull * 32 * 256 + 32ull * 32 * 512);
}

TEST(Network, CyclesSumPerLayerMeasurements)
{
    const auto net = tinyNetwork();
    const auto m = simulateNetwork(net, engine::vegetaS162(),
                                   NetworkPolicy::LayerWise);
    ASSERT_EQ(m.perLayer.size(), 2u);
    EXPECT_EQ(m.totalCycles,
              m.perLayer[0].coreCycles + m.perLayer[1].coreCycles);
}

TEST(Network, LayerWiseBeatsNetworkWiseOnFlexibleHw)
{
    const auto net = tinyNetwork(); // patterns 2:4 and 1:4
    const auto lw = simulateNetwork(net, engine::vegetaS162(),
                                    NetworkPolicy::LayerWise);
    const auto nw = simulateNetwork(net, engine::vegetaS162(),
                                    NetworkPolicy::NetworkWise);
    // Network-wise must run the 1:4 layer at 2:4 (the densest layer).
    EXPECT_LT(lw.totalCycles, nw.totalCycles);
    EXPECT_EQ(nw.perLayer[1].executedN, 2u);
    EXPECT_EQ(lw.perLayer[1].executedN, 1u);
}

TEST(Network, PoliciesEqualWhenPatternsUniform)
{
    Network net = tinyNetwork();
    net.layers[1].layerN = 2; // both layers 2:4
    const auto lw = simulateNetwork(net, engine::vegetaS162(),
                                    NetworkPolicy::LayerWise);
    const auto nw = simulateNetwork(net, engine::vegetaS162(),
                                    NetworkPolicy::NetworkWise);
    EXPECT_EQ(lw.totalCycles, nw.totalCycles);
}

TEST(Network, DenseEngineIndifferentToPolicy)
{
    const auto net = tinyNetwork();
    const auto lw = simulateNetwork(net, engine::vegetaD12(),
                                    NetworkPolicy::LayerWise);
    const auto nw = simulateNetwork(net, engine::vegetaD12(),
                                    NetworkPolicy::NetworkWise);
    EXPECT_EQ(lw.totalCycles, nw.totalCycles);
}

TEST(Network, ReferenceNetworksBuild)
{
    const auto resnet = resnetFrontNetwork();
    EXPECT_EQ(resnet.layers.size(), 6u);
    const auto bert = bertEncoderNetwork();
    EXPECT_EQ(bert.layers.size(), 5u);
    for (const auto &l : bert.layers)
        EXPECT_TRUE(l.layerN == 1 || l.layerN == 2 || l.layerN == 4);
}

TEST(Network, EmptyNetworkRejected)
{
    setLoggingThrows(true);
    Network net;
    net.name = "empty";
    EXPECT_THROW(simulateNetwork(net, engine::vegetaS162(),
                                 NetworkPolicy::LayerWise),
                 std::logic_error);
    setLoggingThrows(false);
}

} // namespace
} // namespace vegeta::kernels
