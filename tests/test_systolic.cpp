/**
 * @file
 * Cycle-by-cycle systolic dataflow tests (paper Figures 8/9): the
 * detailed array must compute exactly what the functional emulator
 * computes (beta = 1) or within lane-reassociation rounding (beta = 2),
 * with cycle counts matching the closed-form stage model.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "engine/pipeline.hpp"
#include "engine/systolic.hpp"
#include "isa/emulator.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta::engine {
namespace {

/** Closed-form total cycles of the detailed array for one run. */
Cycles
detailedClosedForm(const EngineConfig &cfg)
{
    // Last input column (j = Tn - 1) enters the bottom PE row at
    // WL + (Tn - 1) + (Nrows - 1), reaches the last SPE column
    // (Ncols - 1) later, then passes the reduction pipe and one
    // write-back cycle.
    return cfg.nRows() + (kTileN - 1) + (cfg.nRows() - 1) +
           (cfg.nCols() - 1) + cfg.reductionDepth() + 1;
}

MatrixF
emulatorGemm(const MatrixBF16 &a, const MatrixBF16 &bt,
             const MatrixF &c0)
{
    isa::FlatMemory mem;
    isa::Emulator emu(mem);
    emu.writeTileBF16(isa::treg(4), a);
    emu.writeTileBF16(isa::treg(0), bt);
    emu.writeTileF32(isa::treg(5), c0);
    emu.execute(isa::makeTileGemm(isa::treg(5), isa::treg(4),
                                  isa::treg(0)));
    return emu.readTileF32(isa::treg(5), 16, 16);
}

MatrixF
emulatorSpmm(const CompressedTile &ct, const MatrixBF16 &bt,
             const MatrixF &c0)
{
    isa::FlatMemory mem;
    isa::Emulator emu(mem);
    emu.writeTileBF16(isa::treg(4), ct.values());
    emu.setMetadata(4, ct.packMetadata());
    emu.writeTileF32(isa::treg(5), c0);
    if (ct.pattern().n == 2) {
        emu.writeTileBF16(isa::ureg(0), bt);
        emu.execute(isa::makeTileSpmmU(isa::treg(5), isa::treg(4),
                                       isa::ureg(0)));
    } else {
        emu.writeTileBF16(isa::vreg(0), bt);
        emu.execute(isa::makeTileSpmmV(isa::treg(5), isa::treg(4),
                                       isa::vreg(0)));
    }
    return emu.readTileF32(isa::treg(5), 16, 16);
}

/** GEMM on every engine design vs the emulator. */
class SystolicGemm : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SystolicGemm, MatchesEmulator)
{
    auto cfg = configByName(GetParam());
    ASSERT_TRUE(cfg.has_value());
    Rng rng(42);
    const MatrixBF16 a = randomMatrixBF16(16, 32, rng);
    const MatrixBF16 bt = randomMatrixBF16(16, 32, rng);
    const MatrixF c0 = randomMatrixF(16, 16, rng);

    SystolicSimulator sim(*cfg);
    const SystolicResult result = sim.runGemm(a, bt, c0);
    const MatrixF want = emulatorGemm(a, bt, c0);

    if (cfg->beta == 1) {
        // Same accumulation order: bit exact.
        EXPECT_EQ(maxAbsDiff(result.c, want), 0.0f);
    } else {
        // Lane split reassociates the sum; bounded rounding drift.
        EXPECT_LT(maxAbsDiff(result.c, want), 1e-3f);
    }
}

TEST_P(SystolicGemm, CycleCountMatchesClosedForm)
{
    auto cfg = configByName(GetParam());
    ASSERT_TRUE(cfg.has_value());
    Rng rng(43);
    SystolicSimulator sim(*cfg);
    const auto result = sim.runGemm(randomMatrixBF16(16, 32, rng),
                                    randomMatrixBF16(16, 32, rng),
                                    MatrixF(16, 16));
    EXPECT_EQ(result.totalCycles, detailedClosedForm(*cfg));

    // The detailed count matches the abstract WL/FF/FS/DR stage model
    // to within the reduction-pipe depth (the abstract model folds the
    // final reduction into the drain stage, Table III).
    PipelineModel timing(*cfg);
    const Cycles abstract = timing.stages(isa::makeTileGemm(
        isa::treg(5), isa::treg(4), isa::treg(0))).total();
    const Cycles diff = result.totalCycles > abstract
                            ? result.totalCycles - abstract
                            : abstract - result.totalCycles;
    EXPECT_LE(diff, cfg->reductionDepth() + 1) << cfg->name;
}

TEST_P(SystolicGemm, EveryMacFires)
{
    auto cfg = configByName(GetParam());
    ASSERT_TRUE(cfg.has_value());
    Rng rng(44);
    SystolicSimulator sim(*cfg);
    const auto result = sim.runGemm(randomMatrixBF16(16, 32, rng),
                                    randomMatrixBF16(16, 32, rng),
                                    MatrixF(16, 16));
    // 16 output columns x 512 MACs each firing once per column.
    EXPECT_EQ(result.macFirings, 512ull * 16);
    EXPECT_GT(result.utilization(), 0.1);
    EXPECT_LE(result.utilization(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, SystolicGemm,
                         ::testing::Values("VEGETA-D-1-1", "VEGETA-D-1-2",
                                           "VEGETA-D-16-1",
                                           "VEGETA-S-1-2", "VEGETA-S-2-2",
                                           "VEGETA-S-4-2", "VEGETA-S-8-2",
                                           "VEGETA-S-16-2"));

/** SPMM on the sparse designs vs the emulator. */
class SystolicSpmm
    : public ::testing::TestWithParam<std::tuple<std::string, u32, u64>>
{
};

TEST_P(SystolicSpmm, MatchesEmulator)
{
    const auto [name, n, seed] = GetParam();
    auto cfg = configByName(name);
    ASSERT_TRUE(cfg.has_value());
    Rng rng(seed);
    const u32 eff_cols = 32 * 4 / n;
    const MatrixBF16 a_eff =
        randomNMMatrix(16, eff_cols, {n, 4}, rng);
    const auto ct = CompressedTile::compress(a_eff, {n, 4});
    const MatrixBF16 bt =
        randomMatrixBF16(eff_cols, 16, rng).transposed();
    const MatrixF c0 = randomMatrixF(16, 16, rng);

    SystolicSimulator sim(*cfg);
    const auto result = sim.runSpmm(ct, bt, c0);
    const MatrixF want = emulatorSpmm(ct, bt, c0);
    // beta = 2: lane reassociation rounding only.
    EXPECT_LT(maxAbsDiff(result.c, want), 1e-3f);

    EXPECT_EQ(result.totalCycles, detailedClosedForm(*cfg));
    EXPECT_EQ(result.macFirings, 512ull * 16);
}

INSTANTIATE_TEST_SUITE_P(
    SparseDesigns, SystolicSpmm,
    ::testing::Combine(::testing::Values("VEGETA-S-1-2", "VEGETA-S-2-2",
                                         "VEGETA-S-4-2", "VEGETA-S-8-2",
                                         "VEGETA-S-16-2"),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(7u, 8u, 9u)));

TEST(SystolicSpmm, StcLikeRuns24Only)
{
    Rng rng(50);
    const MatrixBF16 a24 = randomNMMatrix(16, 64, pattern24(), rng);
    const auto ct24 = CompressedTile::compress(a24, pattern24());
    const MatrixBF16 bt = randomMatrixBF16(64, 16, rng).transposed();

    SystolicSimulator sim(stcLike());
    EXPECT_NO_THROW(sim.runSpmm(ct24, bt, MatrixF(16, 16)));

    setLoggingThrows(true);
    const MatrixBF16 a14 = randomNMMatrix(16, 128, pattern14(), rng);
    const auto ct14 = CompressedTile::compress(a14, pattern14());
    const MatrixBF16 bt14 =
        randomMatrixBF16(128, 16, rng).transposed();
    EXPECT_THROW(sim.runSpmm(ct14, bt14, MatrixF(16, 16)),
                 std::logic_error);
    setLoggingThrows(false);
}

TEST(SystolicSpmm, DenseEngineRejectsSpmm)
{
    setLoggingThrows(true);
    Rng rng(51);
    const MatrixBF16 a = randomNMMatrix(16, 64, pattern24(), rng);
    const auto ct = CompressedTile::compress(a, pattern24());
    const MatrixBF16 bt = randomMatrixBF16(64, 16, rng).transposed();
    SystolicSimulator sim(vegetaD12());
    EXPECT_THROW(sim.runSpmm(ct, bt, MatrixF(16, 16)),
                 std::logic_error);
    setLoggingThrows(false);
}

/** Row-wise TILE_SPMM_R through the detailed array (Figure 11). */
class SystolicRowWise
    : public ::testing::TestWithParam<std::tuple<std::string, u64>>
{
  protected:
    /** Build a full row-wise tile (sum N = 32) with a mixed profile. */
    static RowWiseCompressedTile
    makeTile(u64 seed, MatrixBF16 &effective_out)
    {
        // 2 x 4:4 + 8 x 2:4 + 8 x 1:4 -> sum N = 32, R = 18.
        const u32 rows = 18;
        MatrixBF16 eff(rows, 64);
        std::vector<u32> row_n;
        Rng rng(seed);
        for (u32 r = 0; r < rows; ++r) {
            const u32 n = r < 2 ? 4 : (r < 10 ? 2 : 1);
            row_n.push_back(n);
            MatrixBF16 one = randomNMMatrix(1, 64, {n, 4}, rng);
            for (u32 c = 0; c < 64; ++c)
                eff.at(r, c) = one.at(0, c);
        }
        effective_out = eff;
        return RowWiseCompressedTile::compress(eff, row_n);
    }
};

TEST_P(SystolicRowWise, MatchesReferenceGemm)
{
    const auto [name, seed] = GetParam();
    auto cfg = configByName(name);
    ASSERT_TRUE(cfg.has_value());

    MatrixBF16 eff;
    const auto tile = makeTile(seed, eff);
    Rng rng(seed + 1);
    const MatrixBF16 b = randomMatrixBF16(64, 16, rng);
    const MatrixF c0 = randomMatrixF(tile.rows(), 16, rng);

    SystolicSimulator sim(*cfg);
    const auto result = sim.runSpmmRowWise(tile, b.transposed(), c0);

    MatrixF want = c0;
    referenceGemm(eff, b, want);
    // Per-row lane reduction reassociates the sum.
    EXPECT_LT(maxAbsDiff(result.c, want), 1e-3f);

    // Full utilization: every one of the 512 MACs fires for each of
    // the 16 output columns (Section V-E: "all columns fully
    // utilized").
    EXPECT_EQ(result.macFirings, 512ull * 16);
}

TEST_P(SystolicRowWise, PartialTileLeavesLanesIdle)
{
    const auto [name, seed] = GetParam();
    auto cfg = configByName(name);
    ASSERT_TRUE(cfg.has_value());

    // 4 rows of 2:4 -> sum N = 8 of 32 lanes used.
    MatrixBF16 eff(4, 64);
    Rng rng(seed);
    for (u32 r = 0; r < 4; ++r) {
        MatrixBF16 one = randomNMMatrix(1, 64, pattern24(), rng);
        for (u32 c = 0; c < 64; ++c)
            eff.at(r, c) = one.at(0, c);
    }
    const auto tile = RowWiseCompressedTile::compress(eff, {2, 2, 2, 2});
    const MatrixBF16 b = randomMatrixBF16(64, 16, rng);

    SystolicSimulator sim(*cfg);
    const auto result =
        sim.runSpmmRowWise(tile, b.transposed(), MatrixF(4, 16));
    MatrixF want(4, 16);
    referenceGemm(eff, b, want);
    EXPECT_LT(maxAbsDiff(result.c, want), 1e-3f);
    EXPECT_EQ(result.macFirings, 8ull * 16 * 16); // 8 lanes x 16 p x 16 j
}

INSTANTIATE_TEST_SUITE_P(
    SparseDesigns, SystolicRowWise,
    ::testing::Combine(::testing::Values("VEGETA-S-1-2", "VEGETA-S-2-2",
                                         "VEGETA-S-4-2", "VEGETA-S-8-2",
                                         "VEGETA-S-16-2"),
                       ::testing::Values(60u, 61u)));

TEST(SystolicRowWiseErrors, RejectsUnsupportedEngines)
{
    setLoggingThrows(true);
    Rng rng(70);
    MatrixBF16 eff = randomNMMatrix(8, 64, pattern24(), rng);
    const auto tile = RowWiseCompressedTile::compressAuto(eff);
    const MatrixBF16 bt = randomMatrixBF16(64, 16, rng).transposed();
    SystolicSimulator dense(vegetaD12());
    EXPECT_THROW(dense.runSpmmRowWise(tile, bt, MatrixF(8, 16)),
                 std::logic_error);
    SystolicSimulator stc(stcLike());
    EXPECT_THROW(stc.runSpmmRowWise(tile, bt, MatrixF(8, 16)),
                 std::logic_error);
    setLoggingThrows(false);
}

TEST(Systolic, SparseSkipsSameWorkAsDenseComputes)
{
    // A 2:4 effective tile needs two dense GEMMs (2 x 8192 MAC
    // firings) on a dense engine but one SPMM (8192 firings) on a
    // sparse engine: the 2x instruction reduction of Figure 5.
    Rng rng(52);
    const MatrixBF16 a_eff = randomNMMatrix(16, 64, pattern24(), rng);
    const auto ct = CompressedTile::compress(a_eff, pattern24());
    const MatrixBF16 b = randomMatrixBF16(64, 16, rng);

    SystolicSimulator sparse(vegetaS22());
    const auto spmm = sparse.runSpmm(ct, b.transposed(),
                                     MatrixF(16, 16));

    SystolicSimulator dense(vegetaD12());
    u64 dense_firings = 0;
    MatrixF c(16, 16);
    for (u32 half = 0; half < 2; ++half) {
        const auto r = dense.runGemm(
            a_eff.block(0, half * 32, 16, 32),
            b.block(half * 32, 0, 32, 16).transposed(), c);
        c = r.c;
        dense_firings += r.macFirings;
    }
    EXPECT_EQ(dense_firings, 2 * spmm.macFirings);
    EXPECT_LT(maxAbsDiff(c, spmm.c), 1e-3f);
}

} // namespace
} // namespace vegeta::engine
