/**
 * @file
 * Generalized block-size tests (paper Sections IV-C / V-D): the
 * library supports M = 2^m up to 16 for compression, coverage
 * analysis, and the physical model.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "engine/area_model.hpp"
#include "sparsity/compressed_tile.hpp"
#include "sparsity/pruning.hpp"
#include "sparsity/rowwise_transform.hpp"

namespace vegeta {
namespace {

TEST(PackCodes, RoundTripAllWidths)
{
    for (u32 bits : {1u, 2u, 3u, 4u, 5u, 8u}) {
        std::vector<u8> codes;
        Rng rng(bits);
        for (int i = 0; i < 100; ++i)
            codes.push_back(static_cast<u8>(
                rng.nextBelow(1ull << bits)));
        auto bytes = packCodes(codes, bits);
        EXPECT_EQ(bytes.size(), (codes.size() * bits + 7) / 8);
        EXPECT_EQ(unpackCodes(bytes, codes.size(), bits), codes);
    }
}

TEST(PackCodes, RejectsOutOfRange)
{
    setLoggingThrows(true);
    EXPECT_THROW(packCodes({4}, 2), std::logic_error);
    EXPECT_THROW(packCodes({16}, 4), std::logic_error);
    EXPECT_THROW(packCodes({0}, 0), std::logic_error);
    EXPECT_THROW(packCodes({0}, 9), std::logic_error);
    setLoggingThrows(false);
}

TEST(IndexBits, Log2OfBlockSize)
{
    EXPECT_EQ(indexBitsForBlockSize(2), 1u);
    EXPECT_EQ(indexBitsForBlockSize(4), 2u);
    EXPECT_EQ(indexBitsForBlockSize(8), 3u);
    EXPECT_EQ(indexBitsForBlockSize(16), 4u);
    setLoggingThrows(true);
    EXPECT_THROW(indexBitsForBlockSize(6), std::logic_error);
    EXPECT_THROW(indexBitsForBlockSize(32), std::logic_error);
    setLoggingThrows(false);
}

/** Compression round trip for larger blocks. */
class WideBlockRoundTrip
    : public ::testing::TestWithParam<std::tuple<u32, u32, u64>>
{
};

TEST_P(WideBlockRoundTrip, DecompressInvertsCompress)
{
    const auto [m, n, seed] = GetParam();
    if (n > m)
        GTEST_SKIP() << "N>M is not a pattern (combinatorial sweep)";
    Rng rng(seed);
    const NMPattern pattern{n, m};
    MatrixBF16 tile = magnitudePruneNM(
        randomMatrixBF16(16, m * 8, rng), pattern);
    auto ct = CompressedTile::compress(tile, pattern);
    EXPECT_EQ(ct.decompress(), tile);
    // Metadata footprint: log2(M) bits per stored value.
    const std::size_t stored = std::size_t{16} * 8 * n;
    EXPECT_EQ(ct.packMetadata().size(),
              (stored * indexBitsForBlockSize(m) + 7) / 8);
    // fromRaw inverts the packing.
    auto rebuilt = CompressedTile::fromRaw(ct.values(),
                                           ct.packMetadata(), pattern);
    EXPECT_EQ(rebuilt.decompress(), tile);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WideBlockRoundTrip,
    ::testing::Combine(::testing::Values(8u, 16u),
                       ::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(1u, 2u)));

TEST(BlockSizeCoverage, LargerMCoversTighter)
{
    // Section IV-C: larger M gives finer legal-N choices, so at a
    // fixed unstructured degree the covering speed-up grows with M.
    double means[3] = {0, 0, 0};
    const u32 ms[3] = {4, 8, 16};
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
        Rng rng(77 + t);
        auto mat = maskUnstructuredBernoulli(
            randomMatrixBF16(64, 1024, rng), 0.9, rng);
        for (int i = 0; i < 3; ++i)
            means[i] += rowWiseSpeedupForBlockSize(mat, ms[i]);
    }
    EXPECT_GT(means[1], means[0]);
    EXPECT_GT(means[2], means[1]);
}

TEST(BlockSizeCoverage, MatchesGranularityAnalysisAtM4)
{
    // The M = 4 chunk-wise coverage equals the RowWise granularity
    // assignment's work ratio (same 64-wide chunks, same legal N).
    Rng rng(123);
    auto mat = maskUnstructuredBernoulli(
        randomMatrixBF16(64, 512, rng), 0.9, rng);
    const double via_blocksize = rowWiseSpeedupForBlockSize(mat, 4);
    const double via_granularity = granularitySpeedup(
        mat, SparsityGranularity::RowWise);
    // RowWise granularity adds grouping promotions; coverage alone is
    // an upper bound and close to it.
    EXPECT_GE(via_blocksize, via_granularity - 1e-9);
    EXPECT_NEAR(via_blocksize, via_granularity,
                0.15 * via_blocksize);
}

TEST(BlockSizePhysical, HardwareCostGrowsWithM)
{
    const auto cfg = engine::vegetaS22();
    const auto m4 = engine::estimatePhysical(cfg, 4);
    const auto m8 = engine::estimatePhysical(cfg, 8);
    const auto m16 = engine::estimatePhysical(cfg, 16);
    EXPECT_LT(m4.areaUnits, m8.areaUnits);
    EXPECT_LT(m8.areaUnits, m16.areaUnits);
    EXPECT_LT(m4.powerUnits, m8.powerUnits);
    EXPECT_LT(m8.powerUnits, m16.powerUnits);
    EXPECT_GT(m4.maxFrequencyGhz, m8.maxFrequencyGhz);
    EXPECT_GT(m8.maxFrequencyGhz, m16.maxFrequencyGhz);
}

TEST(BlockSizePhysical, DenseEnginesUnaffectedByM)
{
    const auto cfg = engine::vegetaD12();
    const auto m4 = engine::estimatePhysical(cfg, 4);
    const auto m16 = engine::estimatePhysical(cfg, 16);
    EXPECT_DOUBLE_EQ(m4.areaUnits, m16.areaUnits);
    EXPECT_DOUBLE_EQ(m4.maxFrequencyGhz, m16.maxFrequencyGhz);
}

TEST(BlockSizePhysical, DefaultMatchesM4)
{
    const auto cfg = engine::vegetaS162();
    const auto def = engine::estimatePhysical(cfg);
    const auto m4 = engine::estimatePhysical(cfg, 4);
    EXPECT_DOUBLE_EQ(def.areaUnits, m4.areaUnits);
    EXPECT_DOUBLE_EQ(def.powerUnits, m4.powerUnits);
    EXPECT_DOUBLE_EQ(def.maxFrequencyGhz, m4.maxFrequencyGhz);
}

TEST(MinimalRowN, GeneralBlockSizes)
{
    MatrixBF16 m(1, 16);
    // 3 non-zeros in one 8-block -> N rounds to 4 for M = 8.
    m.at(0, 0) = BF16(1.0f);
    m.at(0, 3) = BF16(1.0f);
    m.at(0, 6) = BF16(1.0f);
    EXPECT_EQ(minimalRowN(m, 0, 8), 4u);
    EXPECT_EQ(minimalRowN(m, 0, 16), 4u);
    // For M = 4 the first block holds 2 -> N = 2.
    EXPECT_EQ(minimalRowN(m, 0, 4), 2u);
}

} // namespace
} // namespace vegeta
