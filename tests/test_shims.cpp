/**
 * @file
 * Deprecated-shim pins: `Simulator` and `SweepRunner` stay thin
 * wrappers that produce bit-identical results to the Session
 * spelling, and the single compile-time deprecation path
 * (sim/deprecated.hpp) can be silenced with one macro -- this TU
 * defines it, so building the shim-pinning tests emits no notes.
 */

#define VEGETA_SIM_SILENCE_DEPRECATION
#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include "expect_identical.hpp"

namespace vegeta::sim {
namespace {

// The alias must stay an alias: shim callers get the real Session,
// not a diverging copy of it.
static_assert(std::is_same_v<Simulator, Session>,
              "Simulator must remain an alias of Session");

std::vector<SimulationRequest>
smallGrid(const Session &session)
{
    std::vector<SimulationRequest> requests;
    for (const char *engine :
         {"VEGETA-D-1-2", "VEGETA-S-2-2", "VEGETA-S-16-2"}) {
        for (const u32 pattern : {4u, 2u}) {
            auto builder = session.request()
                               .gemm(kernels::GemmDims{32, 32, 128})
                               .engine(engine)
                               .pattern(pattern);
            const auto request = builder.build();
            EXPECT_TRUE(request.has_value()) << builder.error();
            requests.push_back(*request);
        }
    }
    return requests;
}

TEST(Shims, SimulatorRunsIdenticallyToSession)
{
    const Session session;
    const Simulator &simulator = session; // the alias IS the session
    const auto requests = smallGrid(session);
    for (const auto &request : requests)
        expectIdenticalSim(simulator.run(request),
                           session.run(request));
}

TEST(Shims, SweepRunnerMatchesRunBatchAtEveryThreadCount)
{
    const Session session;
    const auto requests = smallGrid(session);
    const auto reference = session.runBatch(requests, 1);
    for (const u32 threads : {1u, 2u, 5u}) {
        const auto shimmed =
            SweepRunner(session, threads).run(requests);
        ASSERT_EQ(shimmed.size(), reference.size());
        for (std::size_t i = 0; i < shimmed.size(); ++i)
            expectIdenticalSim(shimmed[i], reference[i]);
    }
}

TEST(Shims, SweepRunnerDefaultsToHardwareConcurrency)
{
    const Session session;
    EXPECT_GE(SweepRunner(session).threads(), 1u);
    EXPECT_EQ(SweepRunner(session, 3).threads(), 3u);
}

} // namespace
} // namespace vegeta::sim
