/**
 * @file
 * Trace-driven OOO core tests: front-end width, ROB occupancy, load
 * splitting, vector chains, and matrix-engine integration.
 */

#include <gtest/gtest.h>

#include "cpu/trace_cpu.hpp"
#include "engine/pipeline.hpp"

namespace vegeta::cpu {
namespace {

CoreConfig
fastCore()
{
    CoreConfig cfg;
    cfg.frontEndDepth = 0; // isolate the effect under test
    return cfg;
}

TEST(TraceCpu, EmptyTrace)
{
    TraceCpu cpu({}, engine::vegetaD12());
    EXPECT_EQ(cpu.run({}).totalCycles, 0u);
}

TEST(TraceCpu, FrontEndFillDelaysFirstOp)
{
    CoreConfig cfg;
    cfg.frontEndDepth = 16;
    TraceCpu cpu(cfg, engine::vegetaD12());
    auto res = cpu.run({TraceOp::alu()});
    EXPECT_EQ(res.totalCycles, 17u); // fill + 1-cycle ALU
}

TEST(TraceCpu, AluThroughputIsFetchWidth)
{
    TraceCpu cpu(fastCore(), engine::vegetaD12());
    Trace trace(400, TraceOp::alu());
    auto res = cpu.run(trace);
    // 4-wide fetch/retire, 4 ALUs: ~1 cycle per 4 ops.
    EXPECT_NEAR(static_cast<double>(res.totalCycles), 100.0, 3.0);
    EXPECT_EQ(res.retiredOps, 400u);
}

TEST(TraceCpu, RobLimitsInFlightWindow)
{
    // Long-latency load followed by many ALUs: the ROB (97) caps how
    // much younger work can proceed past an incomplete head... here we
    // check the analytic window: with loads that complete slowly, the
    // dispatch of op i waits for retirement of op i-97.
    CoreConfig cfg = fastCore();
    cfg.robEntries = 8;
    TraceCpu cpu(cfg, engine::vegetaD12());
    Trace trace;
    for (int i = 0; i < 64; ++i)
        trace.push_back(TraceOp::load(static_cast<Addr>(i) * 4096, 4));
    auto res_small = cpu.run(trace);

    CoreConfig big = fastCore();
    big.robEntries = 512;
    TraceCpu cpu_big(big, engine::vegetaD12());
    auto res_big = cpu_big.run(trace);
    EXPECT_GT(res_small.totalCycles, res_big.totalCycles);
}

TEST(TraceCpu, LoadLatencyFromCacheModel)
{
    TraceCpu cpu(fastCore(), engine::vegetaD12());
    Trace trace{TraceOp::load(0x1000, 4)};
    auto res = cpu.run(trace);
    // Cold load pays the L2 hit latency.
    EXPECT_GE(res.totalCycles, CoreConfig{}.cache.l2Latency);
    EXPECT_EQ(res.cacheMisses, 1u);
}

TEST(TraceCpu, TileLoadSplitsIntoSixteenLineAccesses)
{
    // "A TILE_LOAD_T will be converted into 16 memory requests, each
    // loading 64 bytes" (Section V-F).
    TraceCpu cpu(fastCore(), engine::vegetaD12());
    Trace trace{TraceOp::fromTileInstruction(
        isa::makeTileLoadT(isa::treg(0), 0x10000, 64))};
    auto res = cpu.run(trace);
    EXPECT_EQ(res.cacheMisses + res.cacheHits, 16u);
    // 2 LSU ports -> 8 cycles of issue + L2 latency tail.
    EXPECT_GE(res.totalCycles, 8u);
}

TEST(TraceCpu, TileLoadSizesByRegisterClass)
{
    TraceCpu cpu(fastCore(), engine::vegetaD12());
    Trace trace{TraceOp::fromTileInstruction(
        isa::makeTileLoadV(isa::vreg(0), 0x20000, 256))};
    auto res = cpu.run(trace);
    EXPECT_EQ(res.cacheMisses + res.cacheHits, 64u); // 4 KB
}

TEST(TraceCpu, MetadataLoadTouchesThreeLines)
{
    TraceCpu cpu(fastCore(), engine::vegetaD12());
    Trace trace{TraceOp::fromTileInstruction(
        isa::makeTileLoadM(0, 0x30000))};
    auto res = cpu.run(trace);
    EXPECT_EQ(res.cacheMisses + res.cacheHits, 3u); // 136 B
}

TEST(TraceCpu, SingleTileComputeLatency)
{
    CoreConfig cfg = fastCore();
    cfg.engineClockDivider = 4;
    TraceCpu cpu(cfg, engine::vegetaS162());
    Trace trace{TraceOp::fromTileInstruction(
        isa::makeTileGemm(isa::treg(5), isa::treg(4), isa::treg(0)))};
    auto res = cpu.run(trace);
    // Isolated latency 49 engine cycles x 4 core cycles each.
    EXPECT_GE(res.totalCycles, 49u * 4);
    EXPECT_EQ(res.engineInstructions, 1u);
}

TEST(TraceCpu, EngineClockDividerScalesRuntime)
{
    Trace trace;
    for (int i = 0; i < 32; ++i)
        trace.push_back(TraceOp::fromTileInstruction(isa::makeTileGemm(
            isa::treg(static_cast<u8>(i % 4)), isa::treg(4),
            isa::treg(5))));
    CoreConfig fast = fastCore();
    fast.engineClockDivider = 1;
    CoreConfig slow = fastCore();
    slow.engineClockDivider = 4;
    auto r_fast = TraceCpu(fast, engine::vegetaD12()).run(trace);
    auto r_slow = TraceCpu(slow, engine::vegetaD12()).run(trace);
    EXPECT_GT(r_slow.totalCycles, 3 * r_fast.totalCycles);
}

TEST(TraceCpu, DependentComputesStallWithoutOF)
{
    Trace trace;
    for (int i = 0; i < 16; ++i)
        trace.push_back(TraceOp::fromTileInstruction(isa::makeTileGemm(
            isa::treg(5), isa::treg(4), isa::treg(0))));

    CoreConfig cfg = fastCore();
    cfg.outputForwarding = false;
    auto res_no_of = TraceCpu(cfg, engine::vegetaS162()).run(trace);

    cfg.outputForwarding = true;
    auto res_of = TraceCpu(cfg, engine::vegetaS162()).run(trace);
    // Figure 10(c)/(d): OF substantially shortens dependent chains.
    EXPECT_LT(res_of.totalCycles, res_no_of.totalCycles);
}

TEST(TraceCpu, TileLoadBreaksEngineDependency)
{
    // compute -> load (renames C) -> compute: the second compute must
    // not wait for the first one's write-back beyond the load.
    auto compute = TraceOp::fromTileInstruction(
        isa::makeTileGemm(isa::treg(5), isa::treg(4), isa::treg(0)));
    auto load = TraceOp::fromTileInstruction(
        isa::makeTileLoadT(isa::treg(5), 0x40000, 64));

    CoreConfig cfg = fastCore();
    auto renamed =
        TraceCpu(cfg, engine::vegetaS162()).run({compute, load, compute});
    auto chained = TraceCpu(cfg, engine::vegetaS162())
                       .run({compute, compute, compute});
    EXPECT_LT(renamed.totalCycles, chained.totalCycles);
}

TEST(TraceCpu, VectorChainSerializesAtLatency)
{
    CoreConfig cfg = fastCore();
    cfg.vectorFmaLatency = 4;
    Trace chained;
    for (int i = 0; i < 64; ++i)
        chained.push_back(TraceOp::vectorFma(1));
    auto res_chained = TraceCpu(cfg, engine::vegetaD12()).run(chained);
    EXPECT_GE(res_chained.totalCycles, 64u * 4);

    Trace independent;
    for (int i = 0; i < 64; ++i)
        independent.push_back(
            TraceOp::vectorFma(static_cast<u32>(i + 1)));
    auto res_ind = TraceCpu(cfg, engine::vegetaD12()).run(independent);
    EXPECT_LT(res_ind.totalCycles, res_chained.totalCycles / 2);
}

TEST(TraceCpu, StoreToLoadDependenceEnforced)
{
    // A load of a line a prior store wrote must wait for the store.
    CoreConfig cfg = fastCore();
    Trace hit_after_store{
        TraceOp::store(0x8000, 64),
        TraceOp::load(0x8000, 4),
    };
    auto dependent = TraceCpu(cfg, engine::vegetaD12())
                         .run(hit_after_store);

    Trace unrelated{
        TraceOp::store(0x8000, 64),
        TraceOp::load(0x9000, 4),
    };
    auto independent =
        TraceCpu(cfg, engine::vegetaD12()).run(unrelated);
    EXPECT_GE(dependent.totalCycles, independent.totalCycles);
}

TEST(TraceCpu, NaiveCLoopSerializesThroughMemory)
{
    // Listing-1-style pattern: compute -> store C -> load C -> compute
    // on the same address chains through the store/load path.
    auto compute = TraceOp::fromTileInstruction(
        isa::makeTileGemm(isa::treg(5), isa::treg(4), isa::treg(0)));
    auto store_c = TraceOp::fromTileInstruction(
        isa::makeTileStoreT(0xa000, 64, isa::treg(5)));
    auto load_c = TraceOp::fromTileInstruction(
        isa::makeTileLoadT(isa::treg(5), 0xa000, 64));

    CoreConfig cfg = fastCore();
    Trace chained;
    for (int i = 0; i < 8; ++i) {
        chained.push_back(compute);
        chained.push_back(store_c); // writes 0xa000, read back below
        chained.push_back(load_c);
    }
    auto res_chained = TraceCpu(cfg, engine::vegetaS162()).run(chained);

    // Same loads (identical cache behaviour), but the stores go to an
    // unrelated region so no store-to-load dependence exists.
    Trace control;
    for (int i = 0; i < 8; ++i) {
        control.push_back(compute);
        auto st = store_c;
        st.tile.addr = 0x500000;
        control.push_back(st);
        control.push_back(load_c);
    }
    auto res_control = TraceCpu(cfg, engine::vegetaS162()).run(control);
    EXPECT_GT(res_chained.totalCycles, res_control.totalCycles);
}

TEST(TraceCpu, KindCountsReported)
{
    TraceCpu cpu(fastCore(), engine::vegetaD12());
    Trace trace{TraceOp::alu(), TraceOp::alu(), TraceOp::branch(),
                TraceOp::load(0, 4), TraceOp::store(0, 4)};
    auto res = cpu.run(trace);
    EXPECT_EQ(res.kindCounts.at(UopKind::Alu), 2u);
    EXPECT_EQ(res.kindCounts.at(UopKind::Branch), 1u);
    EXPECT_EQ(res.kindCounts.at(UopKind::Load), 1u);
    EXPECT_EQ(res.kindCounts.at(UopKind::Store), 1u);
}

TEST(TraceCpu, MacUtilizationBounded)
{
    Trace trace;
    for (int i = 0; i < 64; ++i)
        trace.push_back(TraceOp::fromTileInstruction(isa::makeTileGemm(
            isa::treg(static_cast<u8>(i % 4)), isa::treg(4),
            isa::treg(5))));
    auto res = TraceCpu(fastCore(), engine::vegetaD12()).run(trace);
    EXPECT_GT(res.macUtilization, 0.0);
    EXPECT_LE(res.macUtilization, 1.0);
}

} // namespace
} // namespace vegeta::cpu
