/**
 * @file
 * Result-cache and sweep-dedupe tests: caching and batch-level
 * deduplication must never change an answer -- results stay
 * bit-identical to the uncached, single-threaded path -- while each
 * unique request simulates exactly once.
 */

#include <gtest/gtest.h>

#include "sim/sweep.hpp"

namespace vegeta::sim {
namespace {

void
expectIdentical(const SimulationResult &a, const SimulationResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.layerN, b.layerN);
    EXPECT_EQ(a.executedN, b.executedN);
    EXPECT_EQ(a.outputForwarding, b.outputForwarding);
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.engineInstructions, b.engineInstructions);
    EXPECT_EQ(a.tileComputes, b.tileComputes);
    EXPECT_EQ(a.macUtilization, b.macUtilization);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
}

SimulationRequest
smallRequest(const Simulator &simulator, const std::string &engine,
             u32 pattern, bool of)
{
    auto builder = simulator.request()
                       .gemm(kernels::GemmDims{32, 32, 128})
                       .engine(engine)
                       .pattern(pattern)
                       .outputForwarding(of);
    const auto request = builder.build();
    EXPECT_TRUE(request.has_value()) << builder.error();
    return *request;
}

TEST(CacheKey, DistinguishesEveryRequestField)
{
    const Simulator simulator;
    const SimulationRequest base =
        smallRequest(simulator, "VEGETA-S-16-2", 2, false);

    SimulationRequest other = base;
    EXPECT_EQ(cacheKey(base), cacheKey(other));

    other = base;
    other.label = "renamed";
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.gemm.k = 256;
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.engine = "VEGETA-D-1-2";
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.patternN = 4;
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.outputForwarding = true;
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.kernel = KernelVariant::Naive;
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.cBlocking = 1;
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.core.robEntries = 64;
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.core.engineClockDivider = 1;
    EXPECT_NE(cacheKey(base), cacheKey(other));

    other = base;
    other.core.cache.l1Ways = 4;
    EXPECT_NE(cacheKey(base), cacheKey(other));
}

TEST(ResultCache, FindInsertAndStats)
{
    ResultCache cache(4);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.find("a").has_value());

    SimulationResult result;
    result.workload = "w";
    result.coreCycles = 42;
    cache.insert("a", result);
    EXPECT_EQ(cache.size(), 1u);

    const auto hit = cache.find("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->coreCycles, 42u);

    // First insert wins; re-inserting does not count.
    SimulationResult other = result;
    other.coreCycles = 43;
    cache.insert("a", other);
    EXPECT_EQ(cache.find("a")->coreCycles, 42u);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.insertions, 1u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, CachedRunsAreBitIdentical)
{
    Simulator uncached;
    Simulator cached;
    const auto stats_cache = cached.enableCache();

    const SimulationRequest request =
        smallRequest(cached, "VEGETA-S-2-2", 2, true);
    const auto first = cached.run(request);
    const auto second = cached.run(request); // cache hit
    const auto reference = uncached.run(request);

    expectIdentical(first, reference);
    expectIdentical(second, reference);
    EXPECT_EQ(stats_cache->stats().insertions, 1u);
    EXPECT_EQ(stats_cache->stats().hits, 1u);
}

TEST(ResultCache, TraceOutBypassesCacheButStaysIdentical)
{
    Simulator simulator;
    simulator.enableCache();
    const SimulationRequest request =
        smallRequest(simulator, "VEGETA-S-2-2", 2, false);

    const auto cached = simulator.run(request); // populates cache
    cpu::Trace trace;
    const auto with_trace = simulator.run(request, &trace);
    expectIdentical(cached, with_trace);
    EXPECT_FALSE(trace.empty());
}

TEST(SweepDedupe, DuplicateRequestsSimulateOnce)
{
    Simulator simulator;
    const auto cache = simulator.enableCache();

    // 3 unique requests, each repeated 3 times, shuffled.
    const SimulationRequest a =
        smallRequest(simulator, "VEGETA-D-1-2", 4, false);
    const SimulationRequest b =
        smallRequest(simulator, "VEGETA-S-2-2", 2, false);
    const SimulationRequest c =
        smallRequest(simulator, "VEGETA-S-2-2", 2, true);
    const std::vector<SimulationRequest> batch{a, b, c, c, a, b,
                                              b, c, a};

    const auto results = SweepRunner(simulator, 4).run(batch);
    ASSERT_EQ(results.size(), batch.size());

    // Each unique request ran exactly once...
    EXPECT_EQ(cache->stats().insertions, 3u);
    EXPECT_EQ(cache->stats().misses, 3u);

    // ...and duplicate slots carry the identical result.
    Simulator reference;
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectIdentical(results[i], reference.run(batch[i]));
}

TEST(SweepDedupe, CacheOnOffAndThreadCountsBitIdentical)
{
    const Simulator simulator;
    std::vector<SimulationRequest> batch;
    for (const char *engine :
         {"VEGETA-D-1-2", "VEGETA-S-1-2", "VEGETA-S-16-2"}) {
        for (u32 pattern : {4u, 2u, 1u}) {
            batch.push_back(
                smallRequest(simulator, engine, pattern, false));
            // Repeat a subset so the dedupe path is exercised.
            if (pattern == 2)
                batch.push_back(
                    smallRequest(simulator, engine, pattern, false));
        }
    }

    const auto reference = SweepRunner(simulator, 1).run(batch);

    Simulator cached_sim;
    cached_sim.enableCache();
    for (const u32 threads : {1u, 4u}) {
        const auto plain = SweepRunner(simulator, threads).run(batch);
        const auto cached =
            SweepRunner(cached_sim, threads).run(batch);
        ASSERT_EQ(plain.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
            expectIdentical(plain[i], reference[i]);
            expectIdentical(cached[i], reference[i]);
        }
    }
}

TEST(SweepDedupe, GeomeanSpeedupMatchesCachedSimulator)
{
    // geomeanSpeedup over a simulator with a warm cache must return
    // the exact same ratio as over a cold, uncached one.
    const std::vector<std::string> workloads{"BERT-L1"};

    Simulator cold;
    const double uncached = geomeanSpeedup(
        cold, workloads, 2, "VEGETA-S-16-2", true, "VEGETA-D-1-2", 1);

    Simulator warm;
    const auto cache = warm.enableCache();
    const double first = geomeanSpeedup(
        warm, workloads, 2, "VEGETA-S-16-2", true, "VEGETA-D-1-2", 2);
    const u64 simulations = cache->stats().insertions;
    const double second = geomeanSpeedup(
        warm, workloads, 2, "VEGETA-S-16-2", true, "VEGETA-D-1-2", 2);

    EXPECT_EQ(uncached, first);
    EXPECT_EQ(uncached, second);
    // The second call re-simulated nothing.
    EXPECT_EQ(cache->stats().insertions, simulations);
}

} // namespace
} // namespace vegeta::sim
