/**
 * @file
 * Streaming replay tests: step()-fed TraceCpu must be bit-identical
 * to batch run() on the same op stream, kernels must emit the same
 * stream into any sink, and the unaligned line-span accounting must
 * count every touched cache line.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/flat_map.hpp"
#include "cpu/lane_replayer.hpp"
#include "cpu/trace_cpu.hpp"
#include "cpu/trace_io.hpp"
#include "kernels/gemm_kernels.hpp"
#include "kernels/vector_kernels.hpp"

namespace vegeta::cpu {
namespace {

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.kindCounts, b.kindCounts);
    EXPECT_EQ(a.engineInstructions, b.engineInstructions);
    EXPECT_EQ(a.engineLastFinish, b.engineLastFinish);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.macUtilization, b.macUtilization);
}

SimResult
stepAll(TraceCpu &cpu, const Trace &trace)
{
    cpu.reset();
    for (const TraceOp &op : trace)
        cpu.step(op);
    return cpu.finish();
}

TEST(StreamingReplay, StepMatchesBatchAcrossClockDividers)
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto kernel =
        kernels::runSpmmKernel({64, 64, 256}, 2, opts);

    for (u32 divider : {1u, 2u, 4u}) {
        SCOPED_TRACE("engineClockDivider=" + std::to_string(divider));
        CoreConfig core;
        core.engineClockDivider = divider;
        TraceCpu batch(core, engine::vegetaS162());
        TraceCpu streamed(core, engine::vegetaS162());
        expectIdentical(stepAll(streamed, kernel.trace),
                        batch.run(kernel.trace));
    }
}

TEST(StreamingReplay, StepMatchesBatchOnVectorTrace)
{
    const auto trace =
        kernels::generateVectorGemmTrace({32, 64, 128}, {});
    TraceCpu cpu({}, engine::vegetaD12());
    const SimResult batch = cpu.run(trace);
    expectIdentical(stepAll(cpu, trace), batch);
    EXPECT_GT(batch.kindCounts.at(UopKind::VectorFma), 0u);
}

TEST(StreamingReplay, OneCpuIsReusableAcrossStreams)
{
    // finish() must leave the model cold: interleaving different
    // streams through one TraceCpu cannot leak state between them.
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto small = kernels::runSpmmKernel({32, 32, 128}, 4, opts);
    const auto big = kernels::runSpmmKernel({64, 64, 256}, 2, opts);

    TraceCpu cpu({}, engine::vegetaS162());
    const SimResult small_first = cpu.run(small.trace);
    const SimResult big_once = cpu.run(big.trace);
    const SimResult small_again = cpu.run(small.trace);
    expectIdentical(small_first, small_again);
    EXPECT_NE(big_once.totalCycles, small_first.totalCycles);
}

TEST(StreamingReplay, KernelEmitsIdenticalStreamIntoSink)
{
    // streamSpmmKernel -> TraceCpu must equal runSpmmKernel -> run(),
    // and report the same instruction mix.
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto batch = kernels::runSpmmKernel({64, 64, 256}, 1, opts);
    TraceCpu batch_cpu({}, engine::vegetaS162());
    const SimResult batch_result = batch_cpu.run(batch.trace);

    TraceCpu stream_cpu({}, engine::vegetaS162());
    const kernels::KernelStats stats =
        kernels::streamSpmmKernel({64, 64, 256}, 1, opts, stream_cpu);
    const SimResult stream_result = stream_cpu.finish();

    expectIdentical(stream_result, batch_result);
    EXPECT_EQ(stats.instructions, batch.trace.size());
    EXPECT_EQ(stats.tileComputes, batch.tileComputes);
    EXPECT_EQ(stats.tileLoads, batch.tileLoads);
    EXPECT_EQ(stats.tileStores, batch.tileStores);
}

TEST(StreamingReplay, SerializedTraceStreamsIntoSink)
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto kernel =
        kernels::runSpmmKernel({32, 32, 128}, 2, opts);
    std::stringstream buffer;
    writeTrace(buffer, kernel.trace);

    TraceCpu direct({}, engine::vegetaS162());
    const SimResult expected = direct.run(kernel.trace);

    TraceCpu streamed({}, engine::vegetaS162());
    streamed.reset();
    const auto count = streamTrace(buffer, streamed);
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(*count, kernel.trace.size());
    expectIdentical(streamed.finish(), expected);
}

TEST(StreamingReplay, TraceReaderReportsTruncation)
{
    Trace trace{TraceOp::alu(), TraceOp::load(0x1000, 64)};
    std::stringstream buffer;
    writeTrace(buffer, trace);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() - 5); // clip mid-op
    std::istringstream clipped(bytes);

    TraceCollector sink;
    EXPECT_FALSE(streamTrace(clipped, sink).has_value());
}

TEST(StreamingReplay, UnalignedLoadTouchesBothLines)
{
    // A 64 B load at line offset 32 spans two cache lines; the seed's
    // ceil(bytes / 64) accounting touched only one.
    CoreConfig core;
    core.frontEndDepth = 0;
    TraceCpu cpu(core, engine::vegetaD12());
    const SimResult unaligned =
        cpu.run({TraceOp::load(0x1020, 64)});
    EXPECT_EQ(unaligned.cacheMisses + unaligned.cacheHits, 2u);

    const SimResult aligned = cpu.run({TraceOp::load(0x1000, 64)});
    EXPECT_EQ(aligned.cacheMisses + aligned.cacheHits, 1u);
}

TEST(StreamingReplay, UnalignedStoreBlocksLoadsOfBothLines)
{
    // The store's second (straddled) line must carry the dependence.
    CoreConfig core;
    core.frontEndDepth = 0;
    TraceCpu cpu(core, engine::vegetaD12());
    const SimResult dependent = cpu.run({
        TraceOp::store(0x2020, 64), // lines 0x80 and 0x81
        TraceOp::load(0x2040, 4),   // line 0x81
    });
    const SimResult independent = cpu.run({
        TraceOp::store(0x2020, 64),
        TraceOp::load(0x3040, 4), // unrelated line
    });
    EXPECT_GE(dependent.totalCycles, independent.totalCycles);
}

// ---- LaneReplayer equivalence -------------------------------------
//
// Every test below pins the same contract from a different angle: a
// lane-batched replay is bit-identical to K sequential single-stream
// replays, because lanes share no state.

/** The per-lane single-stream reference for a lane-batched run. */
SimResult
singleReference(const LaneReplayer::LaneSpec &spec, const Trace &trace)
{
    TraceCpu cpu(spec.core, spec.engine);
    return cpu.run(trace);
}

TEST(LaneReplay, EveryWidthMatchesSingleStream)
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto kernel =
        kernels::runSpmmKernel({64, 64, 256}, 2, opts);

    for (u32 width : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("K=" + std::to_string(width));
        const std::vector<LaneReplayer::LaneSpec> specs(
            width, {{}, engine::vegetaS162()});
        LaneReplayer replayer(specs);
        const auto results = replayer.replay(
            std::vector<Trace>(width, kernel.trace));
        ASSERT_EQ(results.size(), width);
        const SimResult expected =
            singleReference(specs[0], kernel.trace);
        for (u32 lane = 0; lane < width; ++lane) {
            SCOPED_TRACE("lane " + std::to_string(lane));
            expectIdentical(results[lane], expected);
        }
    }
}

TEST(LaneReplay, MixedLengthLanesWithEarlyFinishers)
{
    // Lane trace lengths differ by more than an order of magnitude;
    // short lanes drop out of the rotation long before the long ones
    // finish, and that must not perturb any surviving lane.
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const std::vector<Trace> traces = {
        kernels::runSpmmKernel({64, 64, 256}, 2, opts).trace,
        {TraceOp::alu(), TraceOp::load(0x1000, 64)}, // 2 ops
        kernels::runSpmmKernel({32, 32, 128}, 4, opts).trace,
        kernels::runSpmmKernel({32, 32, 128}, 1, opts).trace,
        {},                                          // empty lane
        kernels::runSpmmKernel({64, 64, 256}, 1, opts).trace,
        {TraceOp::vectorFma(1), TraceOp::vectorFma(1)},
        kernels::runSpmmKernel({32, 64, 128}, 2, opts).trace,
    };
    const std::vector<LaneReplayer::LaneSpec> specs(
        traces.size(), {{}, engine::vegetaS162()});
    LaneReplayer replayer(specs);
    const auto results = replayer.replay(traces);
    ASSERT_EQ(results.size(), traces.size());
    for (std::size_t lane = 0; lane < traces.size(); ++lane) {
        SCOPED_TRACE("lane " + std::to_string(lane));
        expectIdentical(results[lane],
                        singleReference(specs[lane], traces[lane]));
    }
}

TEST(LaneReplay, HeterogeneousLaneConfigs)
{
    // Per-lane core AND engine configs differ; dense engines get
    // dense (N = 4) traces, sparse engines get sparse ones.
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const Trace dense =
        kernels::runSpmmKernel({32, 32, 128}, 4, opts).trace;
    const Trace sparse2 =
        kernels::runSpmmKernel({64, 64, 256}, 2, opts).trace;
    // N=1 programs use TILE_SPMM_V, which only the VEGETA sparse
    // engines support; STC-like lanes get the 2:4 trace instead.
    const Trace sparse1 =
        kernels::runSpmmKernel({32, 32, 128}, 1, opts).trace;
    const Trace stc_trace =
        kernels::runSpmmKernel({32, 32, 128}, 2, opts).trace;

    CoreConfig narrow;
    narrow.fetchWidth = 2;
    narrow.retireWidth = 2;
    narrow.robEntries = 32;
    narrow.loadBufferEntries = 16;
    CoreConfig divided;
    divided.engineClockDivider = 2;
    CoreConfig shallow;
    shallow.frontEndDepth = 0;
    shallow.numLsuPorts = 1;

    const std::vector<LaneReplayer::LaneSpec> specs = {
        {{}, engine::vegetaS162()},
        {narrow, engine::vegetaD12()},
        {divided, engine::vegetaS42()},
        {shallow, engine::stcLike()},
    };
    const std::vector<Trace> traces = {sparse1, dense, sparse2,
                                       stc_trace};
    LaneReplayer replayer(specs);
    const auto results = replayer.replay(traces);
    ASSERT_EQ(results.size(), specs.size());
    for (std::size_t lane = 0; lane < specs.size(); ++lane) {
        SCOPED_TRACE("lane " + std::to_string(lane));
        expectIdentical(results[lane],
                        singleReference(specs[lane], traces[lane]));
    }
}

TEST(LaneReplay, ScrambledSinkInterleavingIsOrderIndependent)
{
    // Feed lanes through their TraceSink facades in a deterministic
    // scramble (bursts of different sizes per lane) instead of
    // replay()'s round-robin; per-lane results must not change.
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const std::vector<Trace> traces = {
        kernels::runSpmmKernel({32, 32, 128}, 2, opts).trace,
        kernels::runSpmmKernel({64, 64, 256}, 4, opts).trace,
        kernels::runSpmmKernel({32, 32, 128}, 1, opts).trace,
    };
    const std::vector<LaneReplayer::LaneSpec> specs(
        traces.size(), {{}, engine::vegetaS162()});
    LaneReplayer replayer(specs);

    std::vector<std::size_t> cursor(traces.size(), 0);
    std::size_t remaining = 0;
    for (const Trace &t : traces)
        remaining += t.size();
    // Deterministic burst pattern: lane l emits (l * 3 + round) % 7 + 1
    // ops per visit, so the interleave never resembles round-robin.
    for (u64 round = 0; remaining > 0; ++round) {
        for (std::size_t lane = 0; lane < traces.size(); ++lane) {
            const std::size_t burst = (lane * 3 + round) % 7 + 1;
            for (std::size_t n = 0;
                 n < burst && cursor[lane] < traces[lane].size();
                 ++n) {
                replayer.sink(static_cast<u32>(lane))
                    .emit(traces[lane][cursor[lane]++]);
                --remaining;
            }
        }
    }
    for (std::size_t lane = 0; lane < traces.size(); ++lane) {
        SCOPED_TRACE("lane " + std::to_string(lane));
        expectIdentical(
            replayer.finishLane(static_cast<u32>(lane)),
            singleReference(specs[lane], traces[lane]));
    }
}

TEST(LaneReplay, LanesAreReusableAfterFinish)
{
    // finishLane leaves the lane cold: a second stream through the
    // same lane must match a cold single-stream run, even after other
    // lanes ran unrelated streams.
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const Trace small =
        kernels::runSpmmKernel({32, 32, 128}, 4, opts).trace;
    const Trace big =
        kernels::runSpmmKernel({64, 64, 256}, 2, opts).trace;

    const std::vector<LaneReplayer::LaneSpec> specs(
        2, {{}, engine::vegetaS162()});
    LaneReplayer replayer(specs);
    const auto first = replayer.replay(
        std::vector<const Trace *>{&small, &big});
    const auto second = replayer.replay(
        std::vector<const Trace *>{&big, &small});
    expectIdentical(first[0], second[1]);
    expectIdentical(first[1], second[0]);
    expectIdentical(first[0], singleReference(specs[0], small));
    expectIdentical(first[1], singleReference(specs[1], big));
}

TEST(FlatCycleMap, InsertFindGrowAndClear)
{
    FlatCycleMap map(16);
    EXPECT_EQ(map.find(0), nullptr);
    map.insertOrAssign(0, 7); // key 0 is a valid line index
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 7u);
    // Force several growths with sequential keys (line-index style).
    for (u64 k = 1; k <= 5000; ++k)
        map.insertOrAssign(k, k * 2);
    EXPECT_EQ(map.size(), 5001u);
    for (u64 k : {u64{1}, u64{2500}, u64{5000}})
        EXPECT_EQ(*map.find(k), k * 2);
    map.insertOrAssign(2500, 1);
    EXPECT_EQ(*map.find(2500), 1u);
    EXPECT_EQ(map.size(), 5001u);
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(2500), nullptr);
}

} // namespace
} // namespace vegeta::cpu
