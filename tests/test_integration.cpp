/**
 * @file
 * End-to-end integration tests: prune -> compress -> kernel -> trace
 * -> cycle simulation, cross-checked against the detailed systolic
 * dataflow, on a reduced BERT-like layer.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "engine/systolic.hpp"
#include "kernels/driver.hpp"
#include "kernels/gemm_kernels.hpp"
#include "kernels/im2col.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta {
namespace {

TEST(Integration, PrunedLayerEndToEnd)
{
    // A reduced transformer projection: prune dense weights to 2:4,
    // run the VEGETA kernel, compare against the dense reference on
    // the pruned weights.
    Rng rng(1);
    const kernels::GemmDims dims{64, 48, 256};
    const MatrixBF16 dense_w = randomMatrixBF16(dims.m, dims.k, rng);
    const MatrixBF16 pruned = magnitudePruneNM(dense_w, pattern24());
    const MatrixBF16 acts = randomMatrixBF16(dims.k, dims.n, rng);

    kernels::KernelOptions opts;
    const auto run =
        kernels::runSpmmKernel(dims, 2, opts, &pruned, &acts);

    MatrixF want(dims.m, dims.n);
    referenceGemm(pruned, acts, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);

    // The same trace drives the cycle model end to end.
    cpu::TraceCpu cpu_model({}, engine::vegetaS22());
    const auto sim = cpu_model.run(run.trace);
    EXPECT_GT(sim.totalCycles, 0u);
    EXPECT_EQ(sim.engineInstructions, run.tileComputes);
}

TEST(Integration, ConvLayerViaIm2col)
{
    // Small conv layer: im2col -> pruned GEMM -> compare with direct
    // conv on the pruned weights.
    Rng rng(2);
    const kernels::ConvDims conv{16, 8, 6, 6, 3, 3};
    const MatrixBF16 weights =
        magnitudePruneNM(randomMatrixBF16(conv.k, conv.c * 9, rng),
                         pattern24());
    const MatrixBF16 input =
        randomMatrixBF16(conv.c, conv.y * conv.x, rng);
    const MatrixBF16 patches = kernels::im2colPatches(input, conv);

    const kernels::GemmDims dims{conv.k, conv.y * conv.x, conv.c * 9};
    kernels::KernelOptions opts;
    const auto run =
        kernels::runSpmmKernel(dims, 2, opts, &weights, &patches);

    const MatrixF direct = kernels::directConv(weights, input, conv);
    EXPECT_EQ(maxAbsDiff(run.c, direct), 0.0f);
}

TEST(Integration, SystolicAgreesWithKernelTile)
{
    // One 2:4 tile executed (a) through the kernel/emulator and (b)
    // through the detailed systolic dataflow on VEGETA-S-2-2.
    Rng rng(3);
    const MatrixBF16 a_eff = randomNMMatrix(16, 64, pattern24(), rng);
    const MatrixBF16 b = randomMatrixBF16(64, 16, rng);

    kernels::KernelOptions opts;
    const auto run = kernels::runSpmmKernel({16, 16, 64}, 2, opts,
                                            &a_eff, &b);

    engine::SystolicSimulator sim(engine::vegetaS22());
    const auto ct = CompressedTile::compress(a_eff, pattern24());
    const auto result =
        sim.runSpmm(ct, b.transposed(), MatrixF(16, 16));
    EXPECT_LT(maxAbsDiff(result.c, run.c), 1e-3f);
}

TEST(Integration, SparsitySpeedupCarriesToFullStack)
{
    // The whole pipeline (kernel trace -> OOO core -> engine) shows
    // the Figure 13 effect: a 1:4 layer on VEGETA-S-16-2 with OF runs
    // ~3-4x faster than on the dense RASA-DM baseline.
    kernels::Workload w;
    w.name = "reduced-bert";
    w.gemm = {64, 64, 768};
    const double speedup = kernels::geomeanSpeedupVsDenseBaseline(
        {w}, 1, engine::vegetaS162(), true);
    EXPECT_GT(speedup, 2.5);
    EXPECT_LT(speedup, 5.0);
}

TEST(Integration, UnstructuredPathLossless)
{
    // Unstructured weights -> row-wise transform -> TILE_SPMM_R kernel
    // -> exact result.
    Rng rng(4);
    const MatrixBF16 w = randomUnstructuredMatrix(40, 192, 0.93, rng);
    const MatrixBF16 x = randomMatrixBF16(192, 24, rng);
    const auto run = kernels::runRowWiseSpmmKernel(w, x);
    MatrixF want(40, 24);
    referenceGemm(w, x, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
}

} // namespace
} // namespace vegeta
