/**
 * @file
 * Functional-emulator tests: every VEGETA instruction against the
 * reference GEMM oracle (exact equality; same accumulation order).
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "isa/emulator.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta::isa {
namespace {

class EmulatorTest : public ::testing::Test
{
  protected:
    FlatMemory mem;
};

TEST_F(EmulatorTest, TileLoadStoreRoundTrip)
{
    Emulator emu(mem);
    Rng rng(1);
    MatrixBF16 tile = randomMatrixBF16(16, 32, rng);
    storeMatrixBF16(mem, 0x1000, tile, 64);

    emu.execute(makeTileLoadT(treg(2), 0x1000, 64));
    EXPECT_EQ(emu.readTileBF16(treg(2), 16, 32), tile);

    emu.execute(makeTileStoreT(0x9000, 64, treg(2)));
    EXPECT_EQ(loadMatrixBF16(mem, 0x9000, 16, 32, 64), tile);
}

TEST_F(EmulatorTest, TileLoadRespectsStride)
{
    Emulator emu(mem);
    Rng rng(2);
    // A tile inside a larger row-major matrix: stride = full row bytes.
    MatrixBF16 big = randomMatrixBF16(16, 128, rng);
    storeMatrixBF16(mem, 0x2000, big, 256);
    // Columns 16..47 of the big matrix start 32 bytes into each row.
    emu.execute(makeTileLoadT(treg(0), 0x2000 + 16 * 2, 256));
    EXPECT_EQ(emu.readTileBF16(treg(0), 16, 32),
              big.block(0, 16, 16, 32));
}

TEST_F(EmulatorTest, TileLoadUAndVLoadWideTiles)
{
    Emulator emu(mem);
    Rng rng(3);
    MatrixBF16 wide = randomMatrixBF16(16, 128, rng);
    storeMatrixBF16(mem, 0x3000, wide, 256);
    emu.execute(makeTileLoadV(vreg(0), 0x3000, 256));
    EXPECT_EQ(emu.readTileBF16(vreg(0), 16, 128), wide);

    emu.execute(makeTileLoadU(ureg(1), 0x3000, 256));
    EXPECT_EQ(emu.readTileBF16(ureg(1), 16, 64),
              wide.block(0, 0, 16, 64));
}

TEST_F(EmulatorTest, TileLoadMLoadsBodyAndDescriptors)
{
    Emulator emu(mem);
    std::vector<u8> body(128);
    for (u32 i = 0; i < 128; ++i)
        body[i] = static_cast<u8>(255 - i);
    storeMetadata(mem, 0x4000, body, {0x12, 0x34});
    emu.execute(makeTileLoadM(6, 0x4000));
    EXPECT_EQ(emu.metadata().reg(6).body[0], 255);
    EXPECT_EQ(emu.metadata().reg(6).rowDesc[0], 0x12);
    EXPECT_EQ(emu.metadata().reg(6).rowDesc[1], 0x34);
}

TEST_F(EmulatorTest, TileGemmMatchesReference)
{
    Emulator emu(mem);
    Rng rng(4);
    MatrixBF16 a = randomMatrixBF16(16, 32, rng);
    MatrixBF16 b = randomMatrixBF16(32, 16, rng);
    MatrixF c0 = randomMatrixF(16, 16, rng);

    emu.writeTileBF16(treg(4), a);
    emu.writeTileBF16(treg(0), b.transposed());
    emu.writeTileF32(treg(5), c0);
    emu.execute(makeTileGemm(treg(5), treg(4), treg(0)));

    MatrixF want = c0;
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(emu.readTileF32(treg(5), 16, 16), want), 0.0f);
}

TEST_F(EmulatorTest, TileGemmAccumulatesAcrossCalls)
{
    Emulator emu(mem);
    Rng rng(5);
    MatrixBF16 a = randomMatrixBF16(16, 32, rng);
    MatrixBF16 b = randomMatrixBF16(32, 16, rng);
    emu.writeTileBF16(treg(4), a);
    emu.writeTileBF16(treg(0), b.transposed());
    emu.writeTileF32(treg(5), MatrixF(16, 16));

    emu.execute(makeTileGemm(treg(5), treg(4), treg(0)));
    emu.execute(makeTileGemm(treg(5), treg(4), treg(0)));

    MatrixF want(16, 16);
    referenceGemm(a, b, want);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(emu.readTileF32(treg(5), 16, 16), want), 0.0f);
}

TEST_F(EmulatorTest, TileSpmmUMatchesReference)
{
    Emulator emu(mem);
    Rng rng(6);
    MatrixBF16 a_eff = randomNMMatrix(16, 64, pattern24(), rng);
    MatrixBF16 b = randomMatrixBF16(64, 16, rng);
    MatrixF c0 = randomMatrixF(16, 16, rng);

    auto ct = CompressedTile::compress(a_eff, pattern24());
    emu.writeTileBF16(treg(4), ct.values());
    emu.setMetadata(4, ct.packMetadata());
    emu.writeTileBF16(ureg(0), b.transposed());
    emu.writeTileF32(treg(5), c0);
    emu.execute(makeTileSpmmU(treg(5), treg(4), ureg(0)));

    MatrixF want = c0;
    referenceGemm(a_eff, b, want);
    EXPECT_EQ(maxAbsDiff(emu.readTileF32(treg(5), 16, 16), want), 0.0f);
}

TEST_F(EmulatorTest, TileSpmmVMatchesReference)
{
    Emulator emu(mem);
    Rng rng(7);
    MatrixBF16 a_eff = randomNMMatrix(16, 128, pattern14(), rng);
    MatrixBF16 b = randomMatrixBF16(128, 16, rng);
    MatrixF c0 = randomMatrixF(16, 16, rng);

    auto ct = CompressedTile::compress(a_eff, pattern14());
    emu.writeTileBF16(treg(4), ct.values());
    emu.setMetadata(4, ct.packMetadata());
    emu.writeTileBF16(vreg(0), b.transposed());
    emu.writeTileF32(treg(5), c0);
    emu.execute(makeTileSpmmV(treg(5), treg(4), vreg(0)));

    MatrixF want = c0;
    referenceGemm(a_eff, b, want);
    EXPECT_EQ(maxAbsDiff(emu.readTileF32(treg(5), 16, 16), want), 0.0f);
}

TEST_F(EmulatorTest, TileSpmmRMatchesReference)
{
    Emulator emu(mem);
    Rng rng(8);
    // A row-wise tile: 4 rows 4:4, 8 rows 2:4, 16 rows... budget 32:
    // use 2 rows 4:4 + 8 rows 2:4 + 8 rows 1:4 (sum N = 32, R = 18).
    const u32 rows = 18;
    MatrixBF16 a_eff(rows, 64);
    std::vector<u32> row_n;
    Rng data_rng(9);
    for (u32 r = 0; r < rows; ++r) {
        const u32 n = r < 2 ? 4 : (r < 10 ? 2 : 1);
        row_n.push_back(n);
        MatrixBF16 one = randomNMMatrix(1, 64, {n, 4}, data_rng);
        for (u32 c = 0; c < 64; ++c)
            a_eff.at(r, c) = one.at(0, c);
    }
    auto rwt = RowWiseCompressedTile::compress(a_eff, row_n);
    ASSERT_EQ(rwt.totalValues(), 512u);

    MatrixBF16 stream_image(16, 32);
    for (u32 v = 0; v < rwt.totalValues(); ++v)
        stream_image.at(v / 32, v % 32) = rwt.value(v);
    emu.writeTileBF16(treg(4), stream_image);
    emu.setMetadata(4, rwt.packMetadata(), rwt.packRowDescriptors());

    MatrixBF16 b = randomMatrixBF16(64, 16, rng);
    emu.writeTileBF16(ureg(0), b.transposed());
    MatrixF c0 = randomMatrixF(rows, 16, rng);
    emu.writeTileF32Linear(ureg(1), c0);

    emu.execute(makeTileSpmmR(ureg(1), treg(4), ureg(0),
                              static_cast<u8>(rows)));

    MatrixF want = c0;
    referenceGemm(a_eff, b, want);
    EXPECT_EQ(maxAbsDiff(emu.readTileF32Linear(ureg(1), rows, 16), want),
              0.0f);
}

TEST_F(EmulatorTest, SparseAndDensePathsAgree)
{
    // A 2:4 tile executed via SPMM_U equals the dense GEMM over the
    // same effective tile split into two 16x32 dense chunks.
    Emulator emu(mem);
    Rng rng(10);
    MatrixBF16 a_eff = randomNMMatrix(16, 64, pattern24(), rng);
    MatrixBF16 b = randomMatrixBF16(64, 16, rng);

    auto ct = CompressedTile::compress(a_eff, pattern24());
    emu.writeTileBF16(treg(4), ct.values());
    emu.setMetadata(4, ct.packMetadata());
    emu.writeTileBF16(ureg(0), b.transposed());
    emu.writeTileF32(treg(5), MatrixF(16, 16));
    emu.execute(makeTileSpmmU(treg(5), treg(4), ureg(0)));
    MatrixF sparse_result = emu.readTileF32(treg(5), 16, 16);

    Emulator dense(mem);
    dense.writeTileF32(treg(5), MatrixF(16, 16));
    for (u32 half = 0; half < 2; ++half) {
        dense.writeTileBF16(treg(4), a_eff.block(0, half * 32, 16, 32));
        dense.writeTileBF16(
            treg(0),
            b.block(half * 32, 0, 32, 16).transposed());
        dense.execute(makeTileGemm(treg(5), treg(4), treg(0)));
    }
    // Same k order, zeros contribute nothing: results match to FP32
    // rounding (identical here because skipped terms are exact zeros).
    EXPECT_EQ(maxAbsDiff(sparse_result,
                         dense.readTileF32(treg(5), 16, 16)),
              0.0f);
}

TEST_F(EmulatorTest, SpmmRStreamOverflowRejected)
{
    // Malformed metadata: descriptors claim 32 rows of 4:4, which
    // would need 2048 stored values -- four times a treg.  The
    // emulator must refuse instead of reading garbage.
    setLoggingThrows(true);
    Emulator emu(mem);
    std::vector<u8> desc_codes(32,
                               static_cast<u8>(
                                   RowWiseCompressedTile::encodeRowN(4)));
    emu.setMetadata(4, std::vector<u8>(128, 0), pack2Bit(desc_codes));
    EXPECT_THROW(emu.execute(makeTileSpmmR(ureg(1), treg(4), ureg(0),
                                           32)),
                 std::logic_error);
    setLoggingThrows(false);
}

TEST_F(EmulatorTest, SpmmRGarbageDescriptorRejected)
{
    // Row-descriptor code 3 is not a legal N encoding.
    setLoggingThrows(true);
    Emulator emu(mem);
    emu.setMetadata(4, std::vector<u8>(128, 0), {0x03});
    EXPECT_THROW(emu.execute(makeTileSpmmR(ureg(1), treg(4), ureg(0),
                                           1)),
                 std::logic_error);
    setLoggingThrows(false);
}

TEST_F(EmulatorTest, InstructionCounters)
{
    Emulator emu(mem);
    emu.execute(makeTileLoadT(treg(0), 0, 64));
    emu.execute(makeTileLoadT(treg(1), 0, 64));
    emu.execute(makeTileGemm(treg(2), treg(0), treg(1)));
    EXPECT_EQ(emu.executed(Opcode::TileLoadT), 2u);
    EXPECT_EQ(emu.executed(Opcode::TileGemm), 1u);
    EXPECT_EQ(emu.executed(Opcode::TileSpmmU), 0u);
    EXPECT_EQ(emu.totalExecuted(), 3u);
    emu.resetCounts();
    EXPECT_EQ(emu.totalExecuted(), 0u);
}

/** Property sweep: SPMM_U/V equal the oracle across seeds. */
class SpmmOracle : public ::testing::TestWithParam<std::tuple<u32, u64>>
{
};

TEST_P(SpmmOracle, MatchesReference)
{
    const auto [n, seed] = GetParam();
    FlatMemory mem;
    Emulator emu(mem);
    Rng rng(seed);
    const u32 eff_cols = 32 * 4 / n;
    MatrixBF16 a_eff = randomNMMatrix(16, eff_cols, {n, 4}, rng);
    MatrixBF16 b = randomMatrixBF16(eff_cols, 16, rng);
    MatrixF c0 = randomMatrixF(16, 16, rng);

    auto ct = CompressedTile::compress(a_eff, {n, 4});
    emu.writeTileBF16(treg(4), ct.values());
    emu.setMetadata(4, ct.packMetadata());
    emu.writeTileF32(treg(5), c0);
    if (n == 2) {
        emu.writeTileBF16(ureg(0), b.transposed());
        emu.execute(makeTileSpmmU(treg(5), treg(4), ureg(0)));
    } else {
        emu.writeTileBF16(vreg(0), b.transposed());
        emu.execute(makeTileSpmmV(treg(5), treg(4), vreg(0)));
    }
    MatrixF want = c0;
    referenceGemm(a_eff, b, want);
    EXPECT_EQ(maxAbsDiff(emu.readTileF32(treg(5), 16, 16), want), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpmmOracle,
    ::testing::Combine(::testing::Values(1u, 2u),
                       ::testing::Values(20u, 21u, 22u, 23u, 24u, 25u,
                                         26u, 27u, 28u, 29u)));

} // namespace
} // namespace vegeta::isa
