/**
 * @file
 * vegeta::telemetry unit coverage: cross-thread counter merging,
 * timer statistics, snapshot absorption, span lifetimes (nesting,
 * early close, exception unwinding), and the two JSON serializers.
 *
 * Every test also compiles under VEGETA_NO_TELEMETRY -- the
 * recording API is then a no-op, so assertions on recorded values
 * are guarded while the API surface itself stays exercised (that a
 * no-telemetry build compiles this file IS the test).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/telemetry.hpp"

namespace vegeta::telemetry {
namespace {

TEST(Telemetry, CountersMergeAcrossThreads)
{
    resetMetrics();
    static const MetricId id = counterId("test.threads.counter");
    constexpr int kThreads = 8;
    constexpr u64 kAddsPerThread = 1000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([] {
            for (u64 i = 0; i < kAddsPerThread; ++i)
                add(id, 3);
        });
    for (auto &thread : threads)
        thread.join();
#ifndef VEGETA_NO_TELEMETRY
    // Every per-thread slab (all retired by join) merges into one
    // record.
    EXPECT_EQ(snapshot().counter("test.threads.counter"),
              kThreads * kAddsPerThread * 3);
#else
    EXPECT_EQ(snapshot().counter("test.threads.counter"), 0u);
#endif
}

TEST(Telemetry, TimerTracksCountSumMinMax)
{
    resetMetrics();
    static const MetricId id = timerId("test.timer");
    recordNs(id, 10);
    recordNs(id, 5);
    recordNs(id, 15);
#ifndef VEGETA_NO_TELEMETRY
    const MetricsSnapshot snap = snapshot();
    const MetricRecord *record = snap.find("test.timer");
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->kind, MetricKind::Timer);
    EXPECT_EQ(record->count, 3u);
    EXPECT_EQ(record->sumNs, 30u);
    EXPECT_EQ(record->minNs, 5u);
    EXPECT_EQ(record->maxNs, 15u);
#else
    EXPECT_EQ(snapshot().find("test.timer"), nullptr);
#endif
}

TEST(Telemetry, AbsorbFoldsExternalSnapshots)
{
    resetMetrics();
    static const MetricId counter = counterId("test.absorb.counter");
    static const MetricId timer = timerId("test.absorb.timer");
    add(counter, 5);
    recordNs(timer, 20);

    // A worker's shipped snapshot: the known counter, a widening
    // timer sample, and a name this process never recorded.
    std::vector<MetricRecord> external;
    external.push_back(
        {"test.absorb.counter", MetricKind::Counter, 7, 0, 0, 0});
    external.push_back(
        {"test.absorb.timer", MetricKind::Timer, 2, 60, 10, 50});
    external.push_back(
        {"test.absorb.fresh", MetricKind::Counter, 11, 0, 0, 0});
    absorb(external);

#ifndef VEGETA_NO_TELEMETRY
    const MetricsSnapshot snap = snapshot();
    EXPECT_EQ(snap.counter("test.absorb.counter"), 12u);
    EXPECT_EQ(snap.counter("test.absorb.fresh"), 11u);
    const MetricRecord *record = snap.find("test.absorb.timer");
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->count, 3u);
    EXPECT_EQ(record->sumNs, 80u);
    EXPECT_EQ(record->minNs, 10u);
    EXPECT_EQ(record->maxNs, 50u);
#else
    EXPECT_TRUE(snapshot().metrics.empty());
#endif
}

TEST(Telemetry, SpansNestAndCloseUnderExceptions)
{
    setTraceEnabled(true);
    clearTrace();
    try {
        Span outer("test.span.outer");
        {
            Span inner("test.span.inner");
        }
        throw std::runtime_error("unwind through the open span");
    } catch (const std::runtime_error &) {
        // The outer span must have been closed by unwinding.
    }
    setTraceEnabled(false);
#ifndef VEGETA_NO_TELEMETRY
    EXPECT_EQ(traceSpanCount("test.span.outer"), 1u);
    EXPECT_EQ(traceSpanCount("test.span.inner"), 1u);
    EXPECT_EQ(traceSpanCount(), 2u);
#else
    EXPECT_EQ(traceSpanCount(), 0u);
#endif
    clearTrace();
}

TEST(Telemetry, SpanCloseIsIdempotent)
{
    setTraceEnabled(true);
    clearTrace();
    {
        Span span("test.span.early", 42);
        span.close();
        span.close(); // second close and the destructor are no-ops
    }
    setTraceEnabled(false);
#ifndef VEGETA_NO_TELEMETRY
    EXPECT_EQ(traceSpanCount("test.span.early"), 1u);
#endif
    clearTrace();
}

TEST(Telemetry, DisarmedSpansRecordNothing)
{
    setTraceEnabled(false);
    clearTrace();
    {
        Span span("test.span.disarmed");
        ScopedTimer timer(timerId("test.scoped.timer"));
    }
    EXPECT_EQ(traceSpanCount("test.span.disarmed"), 0u);
}

TEST(Telemetry, TraceJsonContainsRecordedSpanNames)
{
    setTraceEnabled(true);
    clearTrace();
    {
        Span with_arg("test.json.span", 7);
        Span bare("test.json.other");
    }
    setTraceEnabled(false);
    std::ostringstream os;
    writeTraceJson(os);
    const std::string json = os.str();
    // Chrome trace_event envelope with complete ("X") events.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
#ifndef VEGETA_NO_TELEMETRY
    EXPECT_NE(json.find("\"name\": \"test.json.span\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test.json.other\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
#endif
    clearTrace();
}

TEST(Telemetry, MetricsJsonListsCountersAndTimers)
{
    resetMetrics();
    add(counterId("test.json.counter"), 9);
    recordNs(timerId("test.json.timer"), 123);
    std::ostringstream os;
    writeMetricsJson(os, snapshot());
    const std::string json = os.str();
    EXPECT_NE(json.find("\"metrics\""), std::string::npos);
#ifndef VEGETA_NO_TELEMETRY
    EXPECT_NE(json.find("\"name\": \"test.json.counter\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"counter\", \"value\": 9"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"test.json.timer\""),
              std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"timer\""), std::string::npos);
#endif
}

TEST(Telemetry, SnapshotIsSortedByName)
{
    resetMetrics();
    add(counterId("test.sort.zz"), 1);
    add(counterId("test.sort.aa"), 1);
    const MetricsSnapshot snap = snapshot();
    for (std::size_t i = 1; i < snap.metrics.size(); ++i)
        EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
}

} // namespace
} // namespace vegeta::telemetry
