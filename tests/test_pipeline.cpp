/**
 * @file
 * Pipeline timing-model tests: stage latencies, initiation intervals,
 * and the output-forwarding behaviour of Figure 10.
 */

#include <gtest/gtest.h>

#include "engine/pipeline.hpp"

namespace vegeta::engine {
namespace {

isa::Instruction
gemm(u8 c = 5, u8 a = 4, u8 b = 0)
{
    return isa::makeTileGemm(isa::treg(c), isa::treg(a), isa::treg(b));
}

isa::Instruction
spmmU(u8 c = 5, u8 a = 4, u8 b = 0)
{
    return isa::makeTileSpmmU(isa::treg(c), isa::treg(a), isa::ureg(b));
}

TEST(StageLatencies, FollowSectionVC)
{
    // WL = Nrows, FF = Tn = 16, FS = Nrows - 1, DR = Table III drain.
    PipelineModel d11(vegetaD11());
    auto lat = d11.stages(gemm());
    EXPECT_EQ(lat.wl, 32u);
    EXPECT_EQ(lat.ff, 16u);
    EXPECT_EQ(lat.fs, 31u);
    EXPECT_EQ(lat.dr, 16u);

    PipelineModel s162(vegetaS162());
    lat = s162.stages(gemm());
    EXPECT_EQ(lat.wl, 16u);
    EXPECT_EQ(lat.ff, 16u);
    EXPECT_EQ(lat.fs, 15u);
    EXPECT_EQ(lat.dr, 2u);
}

TEST(InitiationInterval, SixteenForBalancedDesigns)
{
    // Figure 10: the next instruction can start after 16 cycles for
    // both VEGETA-D-1-2 and VEGETA-S-16-2 (MAC-throughput bound).
    EXPECT_EQ(initiationInterval(vegetaD12()), 16u);
    EXPECT_EQ(initiationInterval(vegetaS162()), 16u);
    EXPECT_EQ(initiationInterval(vegetaS22()), 16u);
    // RASA-SM is stage-imbalanced: WL = 32 dominates.
    EXPECT_EQ(initiationInterval(vegetaD11()), 32u);
}

TEST(IsolatedLatency, SumOfStages)
{
    EXPECT_EQ(isolatedLatency(vegetaD11(), gemm()), 32u + 16 + 31 + 16);
    EXPECT_EQ(isolatedLatency(vegetaS162(), gemm()), 16u + 16 + 15 + 2);
    // Smaller arrays have lower single-instruction latency
    // (Section V-C: "the latency of each instruction for
    // VEGETA-S-16-2 is shorter than that of VEGETA-D-1-2").
    EXPECT_LT(isolatedLatency(vegetaS162(), gemm()),
              isolatedLatency(vegetaD12(), gemm()));
}

TEST(Pipelining, IndependentInstructionsOverlapAtII)
{
    PipelineModel model(vegetaS162());
    // Independent instructions: cycle over four C registers so no
    // accumulate dependency constrains the stream (isolated latency 49
    // < 4 x II = 64).
    const u8 dsts[4] = {1, 2, 3, 5};
    std::vector<isa::Instruction> stream;
    for (int i = 0; i < 8; ++i)
        stream.push_back(gemm(dsts[i % 4]));
    auto ops = model.scheduleAll(stream);
    for (std::size_t i = 1; i < ops.size(); ++i)
        EXPECT_EQ(ops[i].start - ops[i - 1].start, 16u) << i;
}

TEST(Pipelining, NoTwoInstructionsShareAStage)
{
    PipelineModel model(vegetaS22());
    auto l = model.stages(gemm());
    std::vector<isa::Instruction> stream;
    for (int i = 0; i < 6; ++i)
        stream.push_back(gemm(static_cast<u8>(i % 2 == 0 ? 5 : 6)));
    auto ops = model.scheduleAll(stream);
    for (std::size_t i = 1; i < ops.size(); ++i) {
        // Entry into each stage must be at or after the previous
        // instruction's exit from that stage.
        Cycles off = 0;
        const Cycles lens[4] = {l.wl, l.ff, l.fs, l.dr};
        for (int s = 0; s < 4; ++s) {
            const Cycles prev_exit = ops[i - 1].start + off + lens[s];
            const Cycles cur_entry = ops[i].start + off;
            EXPECT_GE(cur_entry, prev_exit) << "stage " << s;
            off += lens[s];
        }
    }
}

TEST(Dependencies, SameDestinationStallsWithoutOF)
{
    PipelineModel model(vegetaS162(), /*output_forwarding=*/false);
    auto first = model.issue(gemm(5), 0);
    auto second = model.issue(gemm(5), 0);
    // Without OF the dependent instruction cannot read C until the
    // producer has fully written it back; FF (C read) starts at
    // start + WL.
    EXPECT_GE(second.ffStart, first.finish);
}

TEST(Dependencies, OutputForwardingShortensStall)
{
    PipelineModel no_of(vegetaS162(), false);
    auto base_first = no_of.issue(gemm(5), 0);
    auto base_second = no_of.issue(gemm(5), 0);

    PipelineModel with_of(vegetaS162(), true);
    auto of_first = with_of.issue(gemm(5), 0);
    auto of_second = with_of.issue(gemm(5), 0);

    EXPECT_EQ(base_first.start, of_first.start);
    EXPECT_LT(of_second.finish, base_second.finish);
    // OF rule: dependent FF >= producer FF + Nrows + log2(beta).
    const Cycles of_delay = vegetaS162().nRows() + 1;
    EXPECT_GE(of_second.ffStart, of_first.ffStart + of_delay);
}

TEST(Dependencies, OFChainThroughputMatchesFigure10)
{
    // Figure 10(d): with OF, a chain of dependent instructions issues
    // at a steady interval of Nrows + log2(beta) once pipelined.
    PipelineModel model(vegetaS162(), true);
    std::vector<ScheduledOp> ops;
    for (int i = 0; i < 6; ++i)
        ops.push_back(model.issue(gemm(5), 0));
    const Cycles of_delay = vegetaS162().nRows() + 1; // 17
    for (std::size_t i = 2; i < ops.size(); ++i)
        EXPECT_EQ(ops[i].ffStart - ops[i - 1].ffStart, of_delay);
}

TEST(Dependencies, DifferentDestinationsDoNotStall)
{
    PipelineModel model(vegetaS162(), false);
    auto first = model.issue(gemm(5), 0);
    auto second = model.issue(gemm(6), 0);
    EXPECT_EQ(second.start - first.start, 16u);
}

TEST(Dependencies, ReadAfterWriteOnSources)
{
    PipelineModel model(vegetaS162(), false);
    // First writes treg5; second uses treg5 as its A operand.
    auto first = model.issue(gemm(5, 4, 0), 0);
    auto second = model.issue(gemm(6, 5, 0), 0);
    EXPECT_GE(second.start, first.finish);
}

TEST(Dependencies, InvalidateRegClearsStaleDependency)
{
    PipelineModel model(vegetaS162(), false);
    auto first = model.issue(gemm(5), 0);
    // A tile load renames treg5 (handled by the CPU model); the
    // engine must then not stall the next user on the old write.
    model.invalidateReg(5);
    auto second = model.issue(gemm(5), 0);
    EXPECT_EQ(second.start - first.start, 16u);
}

TEST(Dependencies, EarliestStartHonored)
{
    PipelineModel model(vegetaS162(), false);
    auto op = model.issue(gemm(5), 1000);
    EXPECT_EQ(op.start, 1000u);
    EXPECT_EQ(model.busyUntil(), op.finish);
}

TEST(Dependencies, MetadataDependencyTracked)
{
    PipelineModel model(vegetaS162(), false);
    auto op = model.issue(spmmU(), 0);
    auto reads = op.instr.readRegs();
    EXPECT_NE(std::find(reads.begin(), reads.end(), isa::mregDepId(4)),
              reads.end());
}

TEST(Dependencies, UnsupportedOpcodePanics)
{
    setLoggingThrows(true);
    PipelineModel model(vegetaD12());
    EXPECT_THROW(model.issue(spmmU(), 0), std::logic_error);
    setLoggingThrows(false);
}

TEST(Reset, ClearsAllState)
{
    PipelineModel model(vegetaS162(), false);
    model.issue(gemm(5), 0);
    model.reset();
    auto op = model.issue(gemm(5), 0);
    EXPECT_EQ(op.start, 0u);
}

/** Property: pipelined N-instruction stream beats serial execution. */
class ThroughputTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ThroughputTest, PipeliningBeatsSerialExecution)
{
    auto cfg = configByName(GetParam());
    ASSERT_TRUE(cfg.has_value());
    PipelineModel model(*cfg);
    const int count = 16;
    std::vector<isa::Instruction> stream;
    for (int i = 0; i < count; ++i)
        stream.push_back(gemm(static_cast<u8>(5 + i % 2)));
    auto ops = model.scheduleAll(stream);
    const Cycles pipelined = ops.back().finish;
    const Cycles serial = count * isolatedLatency(*cfg, gemm());
    EXPECT_LT(pipelined, serial);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThroughputTest,
                         ::testing::Values("VEGETA-D-1-1", "VEGETA-D-1-2",
                                           "VEGETA-D-16-1",
                                           "VEGETA-S-1-2", "VEGETA-S-2-2",
                                           "VEGETA-S-4-2", "VEGETA-S-8-2",
                                           "VEGETA-S-16-2"));

} // namespace
} // namespace vegeta::engine
