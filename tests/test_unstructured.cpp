/**
 * @file
 * Figure 15 study tests: granularity speed-ups at 60-95% unstructured
 * sparsity against the paper's reported shape.
 */

#include <gtest/gtest.h>

#include "model/unstructured_analysis.hpp"

namespace vegeta::model {
namespace {

std::vector<kernels::Workload>
smallSet()
{
    // A representative subset keeps the test fast; statistics converge
    // quickly at these matrix sizes.
    auto all = kernels::tableIVWorkloads();
    return {all[0], all[6], all[9]};
}

TEST(Figure15, GranularityOrderingAtEveryDegree)
{
    for (const auto &p : figure15Series(smallSet())) {
        EXPECT_GE(p.tileWise, p.layerWise) << p.degree;
        EXPECT_GE(p.pseudoRowWise, p.layerWise) << p.degree;
        EXPECT_GE(p.rowWise, p.pseudoRowWise) << p.degree;
        EXPECT_GE(p.rowWise, p.tileWise) << p.degree;
        EXPECT_DOUBLE_EQ(p.dense, 1.0);
    }
}

TEST(Figure15, LayerWiseBarelyHelpsOnUnstructured)
{
    // "It is unlikely that an entire unstructured sparse layer
    // exhibits a certain N:M sparsity; thus, layer-wise does not show
    // much performance improvement over dense."
    for (const auto &p : figure15Series(smallSet()))
        EXPECT_LT(p.layerWise, 1.35) << p.degree;
}

TEST(Figure15, RowWiseMatchesPaperAt90And95)
{
    // "Row-wise achieves 2.36x and 3.28x at 90% and 95%."
    const auto series =
        figure15Series(kernels::tableIVWorkloads(), {0.90, 0.95});
    ASSERT_EQ(series.size(), 2u);
    EXPECT_NEAR(series[0].rowWise, 2.36, 0.30);
    EXPECT_NEAR(series[1].rowWise, 3.28, 0.35);
}

TEST(Figure15, SigmaCrossoverNear95Percent)
{
    // SIGMA wins only at extreme sparsity (>~95%); it is inefficient
    // at modest degrees.
    const auto series = figure15Series(smallSet(), {0.60, 0.90, 0.95});
    EXPECT_LT(series[0].sigmaLike, series[0].rowWise);
    EXPECT_LT(series[1].sigmaLike, series[1].rowWise);
    EXPECT_NEAR(series[2].sigmaLike, series[2].rowWise,
                0.25 * series[2].rowWise);
}

TEST(Figure15, SpeedupsGrowWithDegree)
{
    const auto series = figure15Series(smallSet());
    for (std::size_t i = 1; i < series.size(); ++i) {
        EXPECT_GE(series[i].rowWise, series[i - 1].rowWise * 0.98);
        EXPECT_GE(series[i].sigmaLike, series[i - 1].sigmaLike);
    }
}

TEST(Figure15, DeterministicGivenSeed)
{
    const auto a = figure15Series(smallSet(), {0.9}, 123);
    const auto b = figure15Series(smallSet(), {0.9}, 123);
    EXPECT_DOUBLE_EQ(a[0].rowWise, b[0].rowWise);
    EXPECT_DOUBLE_EQ(a[0].tileWise, b[0].tileWise);
}

TEST(Figure15, DefaultGridIs60To95)
{
    const auto series = figure15Series(smallSet());
    ASSERT_EQ(series.size(), 8u);
    EXPECT_DOUBLE_EQ(series.front().degree, 0.60);
    EXPECT_DOUBLE_EQ(series.back().degree, 0.95);
}

} // namespace
} // namespace vegeta::model
