/**
 * @file
 * Edge-case tests for the shared record serialization (sim/serial):
 * hostile strings through escape/unescape, checksum rejection,
 * FieldReader short-read and sticky-fail behavior, and empty-record
 * round-trips.  These are the paths a corrupt cache file or a
 * truncated wire frame exercises, where the only acceptable outcomes
 * are "bit-identical value" or "clean failure".
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "sim/serial.hpp"

namespace vegeta::sim::serial {
namespace {

// --- escape / unescape ----------------------------------------------

TEST(SerialEscape, HostileStringsRoundTrip)
{
    const std::string hostile[] = {
        "",
        "plain value",
        "tab\there",
        "newline\nhere",
        "carriage\rreturn",
        "percent % sign",
        "back\\slash \\\\ doubled",
        "all\tof\nthem\r%\\together",
        "trailing tab\t",
        "\nleading newline",
        "%41 looks escaped but is literal",
        std::string("embedded\0null", 13),
    };
    for (const auto &text : hostile) {
        const std::string escaped = escape(text);
        // The escaped form must be safe to embed in a tab-separated,
        // newline-terminated record.
        EXPECT_EQ(escaped.find('\t'), std::string::npos) << text;
        EXPECT_EQ(escaped.find('\n'), std::string::npos) << text;
        EXPECT_EQ(escaped.find('\r'), std::string::npos) << text;
        std::string back;
        ASSERT_TRUE(unescape(escaped, &back)) << escaped;
        EXPECT_EQ(back, text);
    }
}

TEST(SerialEscape, MalformedPercentSequencesRejected)
{
    std::string out;
    EXPECT_FALSE(unescape("%", &out));
    EXPECT_FALSE(unescape("%0", &out));
    EXPECT_FALSE(unescape("trailing%", &out));
    EXPECT_FALSE(unescape("%zz", &out));
    EXPECT_FALSE(unescape("%0g", &out));
    EXPECT_FALSE(unescape("ok%then%", &out));
}

TEST(SerialEscape, EscapedFieldSurvivesRecordRoundTrip)
{
    // A field with every separator character travels through a full
    // FieldWriter record -> checkedFields -> FieldReader cycle.
    const std::string nasty = "a\tb\nc\rd%e\\f";
    FieldWriter writer;
    writer.raw("probe").str(nasty).num(7);
    const auto fields = checkedFields(writer.line());
    ASSERT_TRUE(fields.has_value());
    FieldReader reader(*fields);
    EXPECT_EQ(reader.raw(), "probe");
    EXPECT_EQ(reader.str(), nasty);
    EXPECT_EQ(reader.num(), 7u);
    EXPECT_TRUE(reader.done());
}

// --- checksums -------------------------------------------------------

TEST(SerialChecksum, SingleFlippedByteRejectsRecord)
{
    FieldWriter writer;
    writer.raw("rec").num(123456789).bits(0.1);
    const std::string line = writer.line();
    ASSERT_TRUE(checkedFields(line).has_value());
    for (std::size_t i = 0; i < line.size(); ++i) {
        std::string corrupt = line;
        corrupt[i] = corrupt[i] == 'x' ? 'y' : 'x';
        if (corrupt == line)
            continue;
        EXPECT_FALSE(checkedFields(corrupt).has_value())
            << "flip at " << i << " accepted: " << corrupt;
    }
}

TEST(SerialChecksum, MissingOrTruncatedChecksumRejected)
{
    FieldWriter writer;
    writer.raw("rec").num(42);
    const std::string line = writer.line();
    const auto last_tab = line.find_last_of('\t');
    ASSERT_NE(last_tab, std::string::npos);
    // Record body alone, without its checksum field.
    EXPECT_FALSE(checkedFields(line.substr(0, last_tab)).has_value());
    // Checksum field cut short mid-hex.
    EXPECT_FALSE(
        checkedFields(line.substr(0, line.size() - 3)).has_value());
    // Empty line and lone field.
    EXPECT_FALSE(checkedFields("").has_value());
    EXPECT_FALSE(checkedFields("solo").has_value());
}

TEST(SerialChecksum, ChecksumCoversFieldOrder)
{
    // Swapping two fields changes the checksum input, so a reordered
    // record must not validate against the original checksum.
    FieldWriter writer;
    writer.raw("a").raw("b");
    const std::string line = writer.line();
    const auto fields = splitTabs(line);
    ASSERT_EQ(fields.size(), 3u);
    const std::string swapped =
        fields[1] + "\t" + fields[0] + "\t" + fields[2];
    EXPECT_FALSE(checkedFields(swapped).has_value());
}

// --- FieldReader short reads and sticky failure ----------------------

TEST(SerialReader, ShortReadFailsEveryTypedAccessor)
{
    // Reading past the end must fail for each accessor type and
    // return a safe zero value, not throw or read garbage.
    {
        FieldReader reader({});
        EXPECT_EQ(reader.raw(), "");
        EXPECT_FALSE(reader.ok());
    }
    {
        FieldReader reader({});
        EXPECT_EQ(reader.str(), "");
        EXPECT_FALSE(reader.ok());
    }
    {
        FieldReader reader({});
        EXPECT_EQ(reader.num(), 0u);
        EXPECT_FALSE(reader.ok());
    }
    {
        FieldReader reader({});
        EXPECT_EQ(reader.signedNum(), 0);
        EXPECT_FALSE(reader.ok());
    }
    {
        FieldReader reader({});
        EXPECT_EQ(reader.hex(), 0u);
        EXPECT_FALSE(reader.ok());
    }
    {
        FieldReader reader({});
        EXPECT_EQ(reader.bits(), 0.0);
        EXPECT_FALSE(reader.ok());
    }
    {
        FieldReader reader({});
        EXPECT_EQ(reader.num32(), 0u);
        EXPECT_FALSE(reader.ok());
    }
}

TEST(SerialReader, FailureIsSticky)
{
    // One bad field poisons the reader: subsequent valid fields still
    // read as failed, so a caller checking ok() once at the end
    // cannot mistake a half-parsed record for a good one.
    FieldReader reader({"not-a-number", "17"});
    EXPECT_EQ(reader.num(), 0u);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.num(), 0u);
    EXPECT_FALSE(reader.ok());
    EXPECT_FALSE(reader.done());
}

TEST(SerialReader, TrailingFieldsFailDone)
{
    FieldReader reader({"a", "b"});
    EXPECT_EQ(reader.raw(), "a");
    EXPECT_TRUE(reader.ok());
    EXPECT_FALSE(reader.done());
    EXPECT_EQ(reader.remaining(), 1u);
}

TEST(SerialReader, StrictNumericParsers)
{
    u64 u = 0;
    EXPECT_FALSE(parseU64("", &u));
    EXPECT_FALSE(parseU64("+1", &u));
    EXPECT_FALSE(parseU64("-1", &u));
    EXPECT_FALSE(parseU64("1 ", &u));
    EXPECT_FALSE(parseU64("0x10", &u));
    EXPECT_TRUE(parseU64("18446744073709551615", &u));
    EXPECT_EQ(u, std::numeric_limits<u64>::max());
    // One past max must overflow-reject, not wrap.
    EXPECT_FALSE(parseU64("18446744073709551616", &u));

    i64 s = 0;
    EXPECT_FALSE(parseI64("", &s));
    EXPECT_FALSE(parseI64("-", &s));
    EXPECT_FALSE(parseI64("--1", &s));
    EXPECT_TRUE(parseI64("-42", &s));
    EXPECT_EQ(s, -42);

    u64 h = 0;
    EXPECT_FALSE(parseHexU64("", &h));
    EXPECT_FALSE(parseHexU64("xyz", &h));
    EXPECT_TRUE(parseHexU64("deadbeef", &h));
    EXPECT_EQ(h, 0xdeadbeefull);
}

TEST(SerialReader, Num32RejectsOverflow)
{
    FieldReader reader({"4294967296"}); // 2^32, one past u32 max
    EXPECT_EQ(reader.num32(), 0u);
    EXPECT_FALSE(reader.ok());

    FieldReader fits({"4294967295"});
    EXPECT_EQ(fits.num32(), 4294967295u);
    EXPECT_TRUE(fits.ok());
    EXPECT_TRUE(fits.done());
}

// --- doubles as raw bit patterns -------------------------------------

TEST(SerialDouble, BitExactRoundTripIncludingSpecials)
{
    const double values[] = {
        0.0,
        -0.0,
        0.1,
        -3.25e-17,
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
    };
    for (const double value : values) {
        double back = 1234.5;
        ASSERT_TRUE(parseDoubleBits(doubleBits(value), &back));
        EXPECT_EQ(std::memcmp(&back, &value, sizeof value), 0)
            << value;
    }
    // NaN round-trips to a NaN with the same payload bits.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    double back = 0;
    ASSERT_TRUE(parseDoubleBits(doubleBits(nan), &back));
    EXPECT_TRUE(std::isnan(back));
}

// --- empty records ---------------------------------------------------

TEST(SerialRecord, EmptyStringFieldsRoundTrip)
{
    // A record of nothing but empty strings still checksums and
    // round-trips: emptiness is data, not absence.
    FieldWriter writer;
    writer.str("").str("").str("");
    const auto fields = checkedFields(writer.line());
    ASSERT_TRUE(fields.has_value());
    FieldReader reader(*fields);
    EXPECT_EQ(reader.str(), "");
    EXPECT_EQ(reader.str(), "");
    EXPECT_EQ(reader.str(), "");
    EXPECT_TRUE(reader.done());
}

TEST(SerialRecord, EmptyResultVectorsRoundTrip)
{
    // An AnalyticalResult with empty collections survives the
    // count-prefixed encoding.
    AnalyticalResult original;
    original.model = "";
    FieldWriter writer;
    appendAnalyticalResult(writer, original);
    const auto fields = checkedFields(writer.line());
    ASSERT_TRUE(fields.has_value());
    FieldReader reader(*fields);
    AnalyticalResult decoded;
    decoded.model = "poison"; // must be overwritten by the read
    ASSERT_TRUE(readAnalyticalResult(reader, &decoded));
    EXPECT_TRUE(reader.done());
    EXPECT_EQ(decoded.model, "");
    EXPECT_TRUE(decoded.rows.empty());
}

TEST(SerialRecord, TruncatedSimulationResultFailsCleanly)
{
    SimulationResult result;
    result.workload = "wl";
    result.engine = "eng";
    result.macUtilization = 0.625;
    FieldWriter writer;
    appendSimulationResult(writer, result);
    const auto fields = checkedFields(writer.line());
    ASSERT_TRUE(fields.has_value());

    // Progressive truncation: every prefix must fail the read, never
    // yield a half-filled result that claims ok.
    for (std::size_t keep = 0; keep < fields->size(); ++keep) {
        std::vector<std::string> prefix(fields->begin(),
                                        fields->begin() + keep);
        FieldReader reader(std::move(prefix));
        SimulationResult out;
        EXPECT_FALSE(readSimulationResult(reader, &out))
            << "prefix of " << keep << " fields parsed";
    }
    FieldReader full(*fields);
    SimulationResult out;
    ASSERT_TRUE(readSimulationResult(full, &out));
    EXPECT_TRUE(full.done());
    EXPECT_EQ(out.workload, "wl");
    EXPECT_EQ(out.macUtilization, 0.625);
}

} // namespace
} // namespace vegeta::sim::serial
