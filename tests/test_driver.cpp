/**
 * @file
 * Experiment-driver tests: qualitative Figure 13 behaviours on
 * reduced-size workloads.
 */

#include <gtest/gtest.h>

#include "kernels/driver.hpp"

namespace vegeta::kernels {
namespace {

Workload
quick()
{
    Workload w;
    w.name = "quick";
    w.gemm = {64, 64, 512};
    return w;
}

TEST(Driver, DenseEngineIgnoresSparsity)
{
    // VEGETA-D engines "show the same performance with 2:4 and 1:4
    // structured sparsity" (Section VI-C).
    const auto w = quick();
    const auto d44 = simulateLayer(w, 4, engine::vegetaD12(), false);
    const auto d24 = simulateLayer(w, 2, engine::vegetaD12(), false);
    const auto d14 = simulateLayer(w, 1, engine::vegetaD12(), false);
    EXPECT_EQ(d44.coreCycles, d24.coreCycles);
    EXPECT_EQ(d24.coreCycles, d14.coreCycles);
    EXPECT_EQ(d24.executedN, 4u);
}

TEST(Driver, SparseEngineSkipsWork)
{
    const auto w = quick();
    const auto dense =
        simulateLayer(w, 4, engine::vegetaS162(), false);
    const auto s24 = simulateLayer(w, 2, engine::vegetaS162(), false);
    const auto s14 = simulateLayer(w, 1, engine::vegetaS162(), false);
    EXPECT_LT(s24.coreCycles, dense.coreCycles);
    EXPECT_LT(s14.coreCycles, s24.coreCycles);
    EXPECT_EQ(s24.tileComputes, dense.tileComputes / 2);
    EXPECT_EQ(s14.tileComputes, dense.tileComputes / 4);
}

TEST(Driver, StcLikeCannotExploitOneFour)
{
    // "The design with the STC-like config does not show better
    // performance [for 1:4] compared with 2:4" (Section VI-C).
    const auto w = quick();
    const auto s24 = simulateLayer(w, 2, engine::stcLike(), false);
    const auto s14 = simulateLayer(w, 1, engine::stcLike(), false);
    EXPECT_EQ(s14.coreCycles, s24.coreCycles);
    EXPECT_EQ(s14.executedN, 2u);
}

TEST(Driver, RasaSmSlowerThanRasaDm)
{
    // RASA-SM's imbalanced stages (II = 32 vs 16) hurt utilization.
    const auto w = quick();
    const auto sm = simulateLayer(w, 4, engine::vegetaD11(), false);
    const auto dm = simulateLayer(w, 4, engine::vegetaD12(), false);
    EXPECT_GT(sm.coreCycles, dm.coreCycles);
}

TEST(Driver, OutputForwardingHelpsDependentStreams)
{
    const auto w = quick();
    const auto no_of =
        simulateLayer(w, 2, engine::vegetaS162(), false);
    const auto with_of =
        simulateLayer(w, 2, engine::vegetaS162(), true);
    EXPECT_LE(with_of.coreCycles, no_of.coreCycles);
}

TEST(Driver, SpeedupOrderingAcrossPatterns)
{
    // Headline shape: 4:4 ~1x, 2:4 ~2x, 1:4 ~3-4x vs RASA-DM.
    const std::vector<Workload> ws{quick()};
    const double s44 = geomeanSpeedupVsDenseBaseline(
        ws, 4, engine::vegetaS162(), true);
    const double s24 = geomeanSpeedupVsDenseBaseline(
        ws, 2, engine::vegetaS162(), true);
    const double s14 = geomeanSpeedupVsDenseBaseline(
        ws, 1, engine::vegetaS162(), true);
    EXPECT_GT(s44, 0.9);
    EXPECT_GT(s24, 1.5);
    EXPECT_GT(s14, s24);
    EXPECT_LT(s14, 5.0);
}

TEST(Driver, SweepCoversAllCombinations)
{
    const std::vector<Workload> ws{quick()};
    const std::vector<engine::EngineConfig> engines{
        engine::vegetaD12(), engine::vegetaS162()};
    const auto ms = figure13Sweep(ws, engines, {4, 2});
    // Per (workload, pattern): dense 1 run, sparse 2 runs (OF off/on).
    EXPECT_EQ(ms.size(), 1u * 2 * (1 + 2));
    for (const auto &m : ms) {
        EXPECT_GT(m.coreCycles, 0u);
        EXPECT_GT(m.instructions, 0u);
    }
}

TEST(Driver, UtilizationWithinBounds)
{
    const auto m =
        simulateLayer(quick(), 4, engine::vegetaD12(), false);
    EXPECT_GT(m.macUtilization, 0.05);
    EXPECT_LE(m.macUtilization, 1.0);
}

} // namespace
} // namespace vegeta::kernels
