/**
 * @file
 * Tiled GEMM/SPMM kernel tests: functional results against the
 * reference oracle, naive (Listing 1) vs optimized equivalence, and
 * instruction-count accounting.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta::kernels {
namespace {

KernelOptions
functionalOpts(bool optimized = true)
{
    KernelOptions opts;
    opts.optimized = optimized;
    opts.traceOnly = false;
    return opts;
}

TEST(KTile, MatchesSectionIVB)
{
    EXPECT_EQ(kTileForN(4), 32u);
    EXPECT_EQ(kTileForN(2), 64u);
    EXPECT_EQ(kTileForN(1), 128u);
}

TEST(PadProblem, RoundsUpToTiles)
{
    const GemmDims dims{30, 33, 100};
    const GemmDims p4 = padProblem(dims, 4);
    EXPECT_EQ(p4.m, 32u);
    EXPECT_EQ(p4.n, 48u);
    EXPECT_EQ(p4.k, 128u);
    const GemmDims p1 = padProblem(dims, 1);
    EXPECT_EQ(p1.k, 128u);
    const GemmDims p2 = padProblem({64, 64, 576}, 1);
    EXPECT_EQ(p2.k, 640u); // ResNet50-L2's k=576 padded for 1:4
}

TEST(DenseKernel, MatchesReference)
{
    Rng rng(1);
    const GemmDims dims{32, 32, 64};
    const MatrixBF16 a = randomMatrixBF16(dims.m, dims.k, rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    const auto run = runSpmmKernel(dims, 4, functionalOpts(), &a, &b);

    MatrixF want(dims.m, dims.n);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
    EXPECT_EQ(run.tileComputes, 2u * 2 * 2);
}

TEST(DenseKernel, HandlesUnalignedDims)
{
    Rng rng(2);
    const GemmDims dims{20, 25, 50};
    const MatrixBF16 a = randomMatrixBF16(dims.m, dims.k, rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    const auto run = runSpmmKernel(dims, 4, functionalOpts(), &a, &b);
    MatrixF want(dims.m, dims.n);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
    EXPECT_EQ(run.c.rows(), dims.m);
    EXPECT_EQ(run.c.cols(), dims.n);
}

TEST(SparseKernel, TwoFourMatchesReference)
{
    Rng rng(3);
    const GemmDims dims{32, 32, 128};
    const MatrixBF16 a =
        randomNMMatrix(dims.m, dims.k, pattern24(), rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    const auto run = runSpmmKernel(dims, 2, functionalOpts(), &a, &b);
    MatrixF want(dims.m, dims.n);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
    // Half the k-tiles of the dense execution.
    EXPECT_EQ(run.tileComputes, 2u * 2 * 2);
}

TEST(SparseKernel, OneFourMatchesReference)
{
    Rng rng(4);
    const GemmDims dims{16, 16, 256};
    const MatrixBF16 a =
        randomNMMatrix(dims.m, dims.k, pattern14(), rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    const auto run = runSpmmKernel(dims, 1, functionalOpts(), &a, &b);
    MatrixF want(dims.m, dims.n);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
    EXPECT_EQ(run.tileComputes, 2u);
}

TEST(SparseKernel, OneFourTileRunsAsTwoFour)
{
    // Section VI-C: an STC-like engine executes 1:4 layers with 2:4
    // instructions -- the kernel must produce identical results.
    Rng rng(5);
    const GemmDims dims{16, 16, 128};
    const MatrixBF16 a =
        randomNMMatrix(dims.m, dims.k, pattern14(), rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    const auto as24 = runSpmmKernel(dims, 2, functionalOpts(), &a, &b);
    const auto as14 = runSpmmKernel(dims, 1, functionalOpts(), &a, &b);
    EXPECT_EQ(maxAbsDiff(as24.c, as14.c), 0.0f);
    EXPECT_EQ(as24.tileComputes, 2u * as14.tileComputes);
}

TEST(SparseKernel, DenseMatrixFailsSparsePattern)
{
    setLoggingThrows(true);
    Rng rng(6);
    const GemmDims dims{16, 16, 64};
    const MatrixBF16 a = randomMatrixBF16(dims.m, dims.k, rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    EXPECT_THROW(runSpmmKernel(dims, 2, functionalOpts(), &a, &b),
                 std::logic_error);
    setLoggingThrows(false);
}

TEST(Kernel, NaiveAndOptimizedProduceSameResult)
{
    Rng rng(7);
    const GemmDims dims{32, 16, 128};
    const MatrixBF16 a =
        randomNMMatrix(dims.m, dims.k, pattern24(), rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    const auto opt = runSpmmKernel(dims, 2, functionalOpts(true), &a, &b);
    const auto naive =
        runSpmmKernel(dims, 2, functionalOpts(false), &a, &b);
    EXPECT_EQ(maxAbsDiff(opt.c, naive.c), 0.0f);
    // Listing 1 re-loads and re-stores C every k iteration.
    EXPECT_GT(naive.tileLoads, opt.tileLoads);
    EXPECT_GT(naive.tileStores, opt.tileStores);
    EXPECT_EQ(naive.tileComputes, opt.tileComputes);
}

TEST(Kernel, TraceOnlyMatchesFunctionalTraceShape)
{
    Rng rng(8);
    const GemmDims dims{32, 32, 128};
    const MatrixBF16 a =
        randomNMMatrix(dims.m, dims.k, pattern24(), rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);

    const auto functional =
        runSpmmKernel(dims, 2, functionalOpts(), &a, &b);
    KernelOptions trace_opts;
    trace_opts.traceOnly = true;
    const auto trace_only = runSpmmKernel(dims, 2, trace_opts);

    ASSERT_EQ(trace_only.trace.size(), functional.trace.size());
    for (std::size_t i = 0; i < trace_only.trace.size(); ++i)
        EXPECT_EQ(trace_only.trace[i].kind, functional.trace[i].kind)
            << i;
    EXPECT_TRUE(trace_only.c.size() == 0);
}

TEST(Kernel, InstructionMixPerInnerIteration)
{
    // Optimized 2:4 kernel inner iteration: B load + A load + M load +
    // SPMM (+ scalar overhead); C load/store once per (i, j).
    KernelOptions opts;
    opts.traceOnly = true;
    const GemmDims dims{16, 16, 256}; // 1 output tile, 4 k-tiles
    const auto run = runSpmmKernel(dims, 2, opts);
    EXPECT_EQ(run.tileComputes, 4u);
    // 4 x (B + A + M) + 1 C load.
    EXPECT_EQ(run.tileLoads, 4u * 3 + 1);
    EXPECT_EQ(run.tileStores, 1u);
    EXPECT_EQ(static_cast<u64>(cpu::countKind(run.trace,
                                              cpu::UopKind::TileCompute)),
              run.tileComputes);
}

TEST(Kernel, DenseKernelEmitsNoMetadataLoads)
{
    KernelOptions opts;
    opts.traceOnly = true;
    const auto run = runSpmmKernel({32, 32, 64}, 4, opts);
    for (const auto &op : run.trace)
        if (op.kind == cpu::UopKind::TileLoad)
            EXPECT_NE(op.tile.op, isa::Opcode::TileLoadM);
}

TEST(Kernel, TraceInstructionCountScalesWithProblem)
{
    KernelOptions opts;
    opts.traceOnly = true;
    const auto small = runSpmmKernel({32, 32, 128}, 4, opts);
    const auto big = runSpmmKernel({64, 64, 128}, 4, opts);
    // 4x the output tiles -> ~4x the instructions (the fixed
    // prologue/epilogue and uneven j-unroll groups shave the ratio).
    const double ratio = static_cast<double>(big.trace.size()) /
                         static_cast<double>(small.trace.size());
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 4.5);
}

/** Oracle sweep across executed patterns and seeds. */
class KernelOracle
    : public ::testing::TestWithParam<std::tuple<u32, u64>>
{
};

TEST_P(KernelOracle, MatchesReference)
{
    const auto [n, seed] = GetParam();
    Rng rng(seed);
    const GemmDims dims{32, 48, 128};
    const MatrixBF16 a = randomNMMatrix(dims.m, dims.k, {n, 4}, rng);
    const MatrixBF16 b = randomMatrixBF16(dims.k, dims.n, rng);
    const auto run = runSpmmKernel(dims, n, functionalOpts(), &a, &b);
    MatrixF want(dims.m, dims.n);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelOracle,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(30u, 31u, 32u)));

} // namespace
} // namespace vegeta::kernels
