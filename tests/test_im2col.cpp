/**
 * @file
 * im2col correctness: GEMM over patches equals direct convolution.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "kernels/im2col.hpp"

namespace vegeta::kernels {
namespace {

TEST(Im2col, PatchDims)
{
    Rng rng(1);
    const ConvDims conv{4, 3, 8, 8, 3, 3};
    const MatrixBF16 input = randomMatrixBF16(3, 64, rng);
    const MatrixBF16 patches = im2colPatches(input, conv);
    EXPECT_EQ(patches.rows(), 3u * 9);
    EXPECT_EQ(patches.cols(), 64u);
}

TEST(Im2col, OneByOneConvIsIdentityLayout)
{
    Rng rng(2);
    const ConvDims conv{2, 5, 6, 6, 1, 1};
    const MatrixBF16 input = randomMatrixBF16(5, 36, rng);
    EXPECT_EQ(im2colPatches(input, conv), input);
}

TEST(Im2col, CenterTapMatchesInput)
{
    Rng rng(3);
    const ConvDims conv{1, 1, 4, 4, 3, 3};
    const MatrixBF16 input = randomMatrixBF16(1, 16, rng);
    const MatrixBF16 patches = im2colPatches(input, conv);
    // Tap (r=1, s=1) is the center: equals the unshifted input.
    for (u32 p = 0; p < 16; ++p)
        EXPECT_EQ(patches.at(4, p), input.at(0, p));
}

TEST(Im2col, PaddingReadsZero)
{
    const ConvDims conv{1, 1, 3, 3, 3, 3};
    MatrixBF16 input(1, 9);
    for (u32 i = 0; i < 9; ++i)
        input.at(0, i) = BF16(static_cast<float>(i + 1));
    const MatrixBF16 patches = im2colPatches(input, conv);
    // Tap (0,0) for output pixel (0,0) reads input (-1,-1): zero.
    EXPECT_TRUE(patches.at(0, 0).isZero());
    // Tap (2,2) for output pixel (2,2) reads input (3,3): zero.
    EXPECT_TRUE(patches.at(8, 8).isZero());
}

class Im2colGemmEquivalence : public ::testing::TestWithParam<u64>
{
};

TEST_P(Im2colGemmEquivalence, GemmOverPatchesEqualsDirectConv)
{
    Rng rng(GetParam());
    const ConvDims conv{8, 4, 6, 7, 3, 3};
    const MatrixBF16 weights =
        randomMatrixBF16(conv.k, conv.c * conv.r * conv.s, rng);
    const MatrixBF16 input =
        randomMatrixBF16(conv.c, conv.y * conv.x, rng);

    const MatrixBF16 patches = im2colPatches(input, conv);
    MatrixF via_gemm(conv.k, conv.y * conv.x);
    referenceGemm(weights, patches, via_gemm);

    const MatrixF direct = directConv(weights, input, conv);
    EXPECT_EQ(maxAbsDiff(via_gemm, direct), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Im2colGemmEquivalence,
                         ::testing::Values(10u, 11u, 12u, 13u));

TEST(Im2col, EvenFilterUsesFloorPadding)
{
    Rng rng(20);
    const ConvDims conv{1, 2, 5, 5, 1, 3};
    const MatrixBF16 weights = randomMatrixBF16(1, 6, rng);
    const MatrixBF16 input = randomMatrixBF16(2, 25, rng);
    MatrixF via_gemm(1, 25);
    referenceGemm(weights, im2colPatches(input, conv), via_gemm);
    EXPECT_EQ(maxAbsDiff(via_gemm, directConv(weights, input, conv)),
              0.0f);
}

} // namespace
} // namespace vegeta::kernels
