/**
 * @file
 * Randomized lane-vs-single cross-check.
 *
 * The equivalence tests pin hand-picked traces; this fuzz pass hammers
 * the same contract with deterministically seeded random streams --
 * random op mixes, aliasing load/store addresses crowded into a small
 * region, load-buffer pressure, random vector chains, random lane
 * counts and lengths -- and requires every lane of every round to be
 * bit-identical to its own sequential single-stream replay.  All
 * randomness draws from the library's audited common/Rng (the same
 * generator the tuner's random search uses), so a failure is a repro,
 * not a flake.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "cpu/lane_replayer.hpp"
#include "cpu/trace_cpu.hpp"
#include "kernels/gemm_kernels.hpp"

namespace vegeta::cpu {
namespace {

void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.kindCounts, b.kindCounts);
    EXPECT_EQ(a.engineInstructions, b.engineInstructions);
    EXPECT_EQ(a.engineLastFinish, b.engineLastFinish);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
    EXPECT_EQ(a.macUtilization, b.macUtilization);
}

/** One random scalar trace biased toward memory hazards. */
Trace
randomScalarTrace(Rng &rng)
{
    // A few KiB of addresses so loads and stores collide in both the
    // cache sets and the store-to-load dependence map.
    const auto addr = [&] {
        return Addr{0x1000} + rng.nextBelow(0x2001);
    };
    static constexpr u32 kBytes[] = {4, 8, 64, 256};

    Trace trace;
    const u64 n = 50 + rng.nextBelow(1951); // length in [50, 2000]
    trace.reserve(n);
    for (u64 i = 0; i < n; ++i) {
        switch (rng.nextBelow(10)) {
        case 0:
        case 1:
        case 2:
            trace.push_back(TraceOp::alu());
            break;
        case 3:
            trace.push_back(TraceOp::branch());
            break;
        case 4:
        case 5:
        case 6: // unaligned addresses exercise line straddles
            trace.push_back(
                TraceOp::load(addr(), kBytes[rng.nextBelow(4)]));
            break;
        case 7:
        case 8:
            trace.push_back(
                TraceOp::store(addr(), kBytes[rng.nextBelow(4)]));
            break;
        default:
            trace.push_back(
                TraceOp::vectorFma(u32(rng.nextBelow(4))));
            break;
        }
    }
    return trace;
}

TEST(ReplayFuzz, RandomScalarTracesMatchSingleStream)
{
    Rng rng(0x5ee7a11e5u); // fixed: failures must repro
    for (u32 round = 0; round < 12; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const u32 width = 1 + static_cast<u32>(rng.nextBelow(8));
        std::vector<Trace> traces;
        traces.reserve(width);
        for (u32 lane = 0; lane < width; ++lane)
            traces.push_back(randomScalarTrace(rng));

        const std::vector<LaneReplayer::LaneSpec> specs(
            width, {{}, engine::vegetaS162()});
        LaneReplayer replayer(specs);
        const auto results = replayer.replay(traces);
        ASSERT_EQ(results.size(), width);
        for (u32 lane = 0; lane < width; ++lane) {
            SCOPED_TRACE("lane " + std::to_string(lane) + " (K=" +
                         std::to_string(width) + ")");
            TraceCpu single(specs[lane].core, specs[lane].engine);
            expectIdentical(results[lane],
                            single.run(traces[lane]));
        }
    }
}

TEST(ReplayFuzz, RandomKernelTracesMatchSingleStream)
{
    // Random small GEMMs through the real kernel generator: tile
    // instructions, engine occupancy, and output forwarding all in
    // play.  Dense lanes (N = 4) ride alongside sparse ones.
    Rng rng(0xdecafbadu);
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    static constexpr u32 kPatterns[] = {1, 2, 4};

    for (u32 round = 0; round < 4; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        const u32 width = 2 + static_cast<u32>(rng.nextBelow(5));
        std::vector<Trace> traces;
        std::vector<LaneReplayer::LaneSpec> specs;
        for (u32 lane = 0; lane < width; ++lane) {
            const kernels::GemmDims dims{
                16 * (1 + static_cast<u32>(rng.nextBelow(3))),
                16 * (1 + static_cast<u32>(rng.nextBelow(3))),
                32 * (1 + static_cast<u32>(rng.nextBelow(4)))};
            const u32 pattern = kPatterns[rng.nextBelow(3)];
            traces.push_back(
                kernels::runSpmmKernel(dims, pattern, opts).trace);
            CoreConfig core;
            core.outputForwarding = rng.nextBelow(2) == 0;
            // Dense engines cannot execute sparse tile programs, so
            // only N = 4 lanes may draw the dense config.
            if (pattern == 4 && rng.nextBelow(2) == 0)
                specs.push_back({core, engine::vegetaD12()});
            else
                specs.push_back({core, engine::vegetaS162()});
        }
        LaneReplayer replayer(specs);
        const auto results = replayer.replay(traces);
        ASSERT_EQ(results.size(), width);
        for (u32 lane = 0; lane < width; ++lane) {
            SCOPED_TRACE("lane " + std::to_string(lane));
            TraceCpu single(specs[lane].core, specs[lane].engine);
            expectIdentical(results[lane],
                            single.run(traces[lane]));
        }
    }
}

} // namespace
} // namespace vegeta::cpu
