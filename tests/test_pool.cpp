/**
 * @file
 * Process-pool executor tests: a pooled batch merges bit-for-bit
 * identical to single-process runBatch at workers in {1, 2, 5}, a
 * warm shared cache directory makes a repeated pooled run perform
 * zero simulations across all workers, duplicate jobs fan out, and
 * worker failures surface as clean per-worker errors.
 *
 * This binary is its own pool worker: main() routes the hidden
 * "worker" argv token to poolWorkerMain before gtest ever runs,
 * exactly like simulate_cli's hidden subcommand -- so the tests fork
 * REAL worker processes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "expect_identical.hpp"
#include "sim/pool.hpp"
#include "sim/session.hpp"

namespace vegeta::sim {
namespace {

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "vegeta_pool" / name;
    fs::remove_all(dir);
    return dir.string();
}

/**
 * A mixed batch small enough to fork repeatedly: trace simulations
 * across engines/patterns (with a duplicate) plus analytical jobs.
 */
std::vector<Job>
mixedBatch(const Session &session)
{
    std::vector<Job> jobs;
    auto sim_job = [&](const char *engine, u32 pattern, bool of) {
        auto builder = session.job()
                           .gemm(kernels::GemmDims{32, 32, 128})
                           .engine(engine)
                           .pattern(pattern)
                           .outputForwarding(of);
        auto job = builder.build();
        EXPECT_TRUE(job.has_value()) << builder.error();
        jobs.push_back(*job);
    };
    sim_job("VEGETA-D-1-2", 4, false);
    sim_job("VEGETA-S-2-2", 2, true);
    {
        auto builder = session.job().model("fig4-vector-vs-matrix");
        auto job = builder.build();
        EXPECT_TRUE(job.has_value()) << builder.error();
        jobs.push_back(*job);
    }
    sim_job("VEGETA-S-2-2", 2, true); // duplicate of job 1
    sim_job("VEGETA-S-16-2", 1, false);
    {
        auto builder = session.job()
                           .model("fig15-unstructured")
                           .param("degree", 0.95);
        auto job = builder.build();
        EXPECT_TRUE(job.has_value()) << builder.error();
        jobs.push_back(*job);
    }
    sim_job("VEGETA-S-1-2", 2, false);
    return jobs;
}

TEST(ProcessPool, MergesBitIdenticalToSingleProcess)
{
    const Session session;
    const auto jobs = mixedBatch(session);
    const auto reference = session.runBatch(jobs, 1);

    for (const u32 workers : {1u, 2u, 5u}) {
        PoolOptions options;
        options.workers = workers;
        options.threadsPerWorker = 2;
        options.minPooledJobs = 1; // pin the REAL pool: this test
                                   // is about the sharded path
        const auto pooled = session.runBatchPooled(jobs, options);
        ASSERT_TRUE(pooled.ok) << pooled.error;
        EXPECT_TRUE(pooled.stats.usedProcessPool);
        EXPECT_EQ(pooled.stats.uniqueJobs, jobs.size() - 1);
        EXPECT_EQ(pooled.stats.workersSpawned,
                  std::min<u32>(workers, jobs.size() - 1));
        expectIdenticalBatches(pooled.results, reference);
    }
}

TEST(ProcessPool, WarmSharedCacheRunsZeroSimulations)
{
    const std::string cache_dir = freshDir("warm_cache");
    const Session session;
    const auto jobs = mixedBatch(session);

    PoolOptions options;
    options.workers = 2;
    options.cacheDir = cache_dir;
    options.minPooledJobs = 1; // exercise real multi-process sharing

    // Cold: every unique trace job simulates somewhere in the pool,
    // every unique analysis evaluates, and the shared dir fills up.
    const auto cold = session.runBatchPooled(jobs, options);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.stats.simulationsPerformed, 4u);
    EXPECT_EQ(cold.stats.analysesPerformed, 2u);

    // Warm, with a different worker count: zero replays, zero
    // backend evaluations, bit-identical merge.
    options.workers = 5;
    const auto warm = session.runBatchPooled(jobs, options);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.stats.simulationsPerformed, 0u);
    EXPECT_EQ(warm.stats.analysesPerformed, 0u);
    expectIdenticalBatches(warm.results, cold.results);
}

TEST(ProcessPool, PlannerFallsBackInProcessBelowCrossover)
{
    // 6 unique jobs is far below the measured fork/exec crossover:
    // the default planner must run the batch in-process -- same
    // results, zero worker processes.
    const Session session;
    const auto jobs = mixedBatch(session);
    const auto reference = session.runBatch(jobs, 1);

    PoolOptions options;
    options.workers = 4; // ignored by the fallback
    ASSERT_LT(jobs.size(), defaultPoolCrossoverJobs());
    const auto planned = session.runBatchPooled(jobs, options);
    ASSERT_TRUE(planned.ok) << planned.error;
    EXPECT_FALSE(planned.stats.usedProcessPool);
    EXPECT_EQ(planned.stats.workersSpawned, 0u);
    EXPECT_EQ(planned.stats.uniqueJobs, jobs.size() - 1);
    EXPECT_EQ(planned.stats.simulationsPerformed, 4u);
    EXPECT_EQ(planned.stats.analysesPerformed, 2u);
    expectIdenticalBatches(planned.results, reference);
}

TEST(ProcessPool, PlannerFallbackSharesTheDiskCacheBothWays)
{
    // A cache written by the in-process fallback warms a later true
    // pooled run, and vice versa: the planner changes WHERE the batch
    // executes, never what the shared cache contains.
    const std::string cache_dir = freshDir("planner_cache");
    const Session session;
    const auto jobs = mixedBatch(session);

    PoolOptions fallback;
    fallback.workers = 2;
    fallback.cacheDir = cache_dir;
    const auto cold = session.runBatchPooled(jobs, fallback);
    ASSERT_TRUE(cold.ok) << cold.error;
    ASSERT_FALSE(cold.stats.usedProcessPool);
    EXPECT_EQ(cold.stats.simulationsPerformed, 4u);

    PoolOptions pooled = fallback;
    pooled.minPooledJobs = 1;
    const auto warm = session.runBatchPooled(jobs, pooled);
    ASSERT_TRUE(warm.ok) << warm.error;
    ASSERT_TRUE(warm.stats.usedProcessPool);
    EXPECT_EQ(warm.stats.simulationsPerformed, 0u);
    EXPECT_EQ(warm.stats.analysesPerformed, 0u);
    expectIdenticalBatches(warm.results, cold.results);
}

TEST(ProcessPool, ExplicitMinPooledJobsThresholdRespected)
{
    const Session session;
    const auto jobs = mixedBatch(session); // 6 unique
    PoolOptions options;
    options.workers = 2;

    options.minPooledJobs = 7; // just above the unique count
    auto run = session.runBatchPooled(jobs, options);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_FALSE(run.stats.usedProcessPool);

    options.minPooledJobs = 6; // exactly the unique count: pool
    run = session.runBatchPooled(jobs, options);
    ASSERT_TRUE(run.ok) << run.error;
    EXPECT_TRUE(run.stats.usedProcessPool);
    EXPECT_EQ(run.stats.workersSpawned, 2u);
}

TEST(ProcessPool, EmptyBatchSpawnsNothing)
{
    const Session session;
    PoolOptions options;
    options.workers = 4;
    const auto pooled = session.runBatchPooled({}, options);
    ASSERT_TRUE(pooled.ok) << pooled.error;
    EXPECT_TRUE(pooled.results.empty());
    EXPECT_EQ(pooled.stats.workersSpawned, 0u);
}

TEST(ProcessPool, RejectsInvalidJobsBeforeSpawning)
{
    const Session session;
    Job bad;
    bad.kind = JobKind::Simulation;
    bad.simulation.engine = "NOPE-9000";
    bad.simulation.gemm = {32, 32, 64};
    PoolOptions options;
    options.workers = 2;
    const auto pooled = session.runBatchPooled({bad}, options);
    EXPECT_FALSE(pooled.ok);
    EXPECT_NE(pooled.error.find("unknown engine"), std::string::npos);
    EXPECT_EQ(pooled.stats.workersSpawned, 0u);
}

TEST(ProcessPool, FailedWorkerSurfacesACleanError)
{
    const Session session;
    const auto jobs = mixedBatch(session);
    PoolOptions options;
    options.workers = 2;
    options.minPooledJobs = 1; // force the pool so the fake worker runs
    // A "worker" that ignores its shard and exits non-zero.
    options.workerCommand = {"/bin/false"};
    const auto pooled = session.runBatchPooled(jobs, options);
    EXPECT_FALSE(pooled.ok);
    EXPECT_NE(pooled.error.find("worker"), std::string::npos);
    EXPECT_TRUE(pooled.results.empty());
}

TEST(ProcessPool, ZeroWorkersIsAnError)
{
    const Session session;
    const auto jobs = mixedBatch(session);
    PoolOptions options;
    options.workers = 0;
    const auto pooled = session.runBatchPooled(jobs, options);
    EXPECT_FALSE(pooled.ok);
}

TEST(PoolWorker, CorruptShardFileIsACleanWorkerError)
{
    const std::string dir = freshDir("corrupt_shard");
    fs::create_directories(dir);
    const std::string shard = dir + "/shard.jobs";
    {
        std::ofstream os(shard);
        os << "vegeta-job-file v1\nnot a record\n";
    }
    // The worker entry rejects the shard outright (exit code, no
    // result file) instead of running a partial batch.
    EXPECT_NE(poolWorkerMain({"--jobs", shard, "--out",
                              dir + "/shard.results"}),
              0);
    EXPECT_FALSE(fs::exists(dir + "/shard.results"));
}

TEST(PoolWorker, RejectsBadArguments)
{
    EXPECT_NE(poolWorkerMain({}), 0);
    EXPECT_NE(poolWorkerMain({"--jobs"}), 0);
    EXPECT_NE(poolWorkerMain({"--frobnicate"}), 0);
    EXPECT_NE(poolWorkerMain({"--jobs", "x", "--out", "y",
                              "--threads", "abc"}),
              0);
}

} // namespace
} // namespace vegeta::sim

int
main(int argc, char **argv)
{
    // The hidden pool-worker re-entry, exactly like simulate_cli's
    // hidden `worker` subcommand: the ProcessPool tests fork this
    // binary back into itself with "worker" as the first argument.
    if (argc > 1 && std::string(argv[1]) == "worker")
        return vegeta::sim::poolWorkerMain(
            std::vector<std::string>(argv + 2, argv + argc));

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
