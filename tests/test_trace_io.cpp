/**
 * @file
 * Trace serialization tests: generate-once / replay-anywhere, the
 * Pin-trace-file equivalent of the paper's methodology.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "cpu/trace_cpu.hpp"
#include "cpu/trace_io.hpp"
#include "kernels/gemm_kernels.hpp"

namespace vegeta::cpu {
namespace {

Trace
sampleTrace()
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    return kernels::runSpmmKernel({32, 32, 128}, 2, opts).trace;
}

TEST(TraceIo, StreamRoundTrip)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    const auto back = readTrace(buffer);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ((*back)[i].kind, trace[i].kind) << i;
        EXPECT_EQ((*back)[i].addr, trace[i].addr) << i;
        EXPECT_EQ((*back)[i].bytes, trace[i].bytes) << i;
        EXPECT_EQ((*back)[i].chain, trace[i].chain) << i;
        EXPECT_EQ((*back)[i].tile.toString(), trace[i].tile.toString())
            << i;
    }
}

TEST(TraceIo, ReplayedTraceSimulatesIdentically)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    const auto back = readTrace(buffer);
    ASSERT_TRUE(back.has_value());

    CoreConfig core;
    const auto direct =
        TraceCpu(core, engine::vegetaS162()).run(trace);
    const auto replayed =
        TraceCpu(core, engine::vegetaS162()).run(*back);
    EXPECT_EQ(direct.totalCycles, replayed.totalCycles);
    EXPECT_EQ(direct.retiredOps, replayed.retiredOps);
    EXPECT_EQ(direct.cacheMisses, replayed.cacheMisses);
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace trace = sampleTrace();
    const std::string path = "/tmp/vegeta_trace_test.vgtr";
    ASSERT_TRUE(writeTraceFile(path, trace));
    const auto back = readTraceFile(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), trace.size());
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "NOPE" << std::string(64, '\0');
    EXPECT_FALSE(readTrace(buffer).has_value());
}

TEST(TraceIo, RejectsTruncation)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    EXPECT_FALSE(readTrace(truncated).has_value());
}

TEST(TraceIo, RejectsWrongVersion)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    std::string bytes = buffer.str();
    bytes[4] = 99; // version field
    std::stringstream bad(bytes);
    EXPECT_FALSE(readTrace(bad).has_value());
}

TEST(TraceIo, RejectsCountLargerThanStream)
{
    // A corrupt header promising billions of ops must fail cleanly
    // before any element read -- and, critically, without reserving
    // a multi-GB vector for the lie.
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    std::string bytes = buffer.str();
    const u64 huge = u64(1) << 60;
    std::memcpy(&bytes[8], &huge, sizeof(huge)); // count field
    std::stringstream corrupt(bytes);
    EXPECT_FALSE(readTrace(corrupt).has_value());
}

TEST(TraceIo, RejectsCountBeyondTruncatedBody)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    std::string bytes = buffer.str();
    // Keep the header (magic + version + count) but drop most of the
    // body: the recorded count now exceeds the remaining bytes.
    bytes.resize(16 + 8);
    std::stringstream truncated(bytes);
    EXPECT_FALSE(readTrace(truncated).has_value());
}

TEST(TraceIo, RejectsOverCountedHeaderOnFile)
{
    const Trace trace = sampleTrace();
    const std::string path = "/tmp/vegeta_trace_corrupt.vgtr";
    ASSERT_TRUE(writeTraceFile(path, trace));

    std::fstream file(path, std::ios::in | std::ios::out |
                                std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(8);
    const u64 huge = u64(0xffffffffffff);
    file.write(reinterpret_cast<const char *>(&huge), sizeof(huge));
    file.close();

    EXPECT_FALSE(readTraceFile(path).has_value());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsNullopt)
{
    EXPECT_FALSE(
        readTraceFile("/tmp/definitely_not_here.vgtr").has_value());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    std::stringstream buffer;
    writeTrace(buffer, {});
    const auto back = readTrace(buffer);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

} // namespace
} // namespace vegeta::cpu
