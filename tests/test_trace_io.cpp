/**
 * @file
 * Trace serialization tests: generate-once / replay-anywhere, the
 * Pin-trace-file equivalent of the paper's methodology.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cpu/trace_cpu.hpp"
#include "cpu/trace_io.hpp"
#include "kernels/gemm_kernels.hpp"

namespace vegeta::cpu {
namespace {

Trace
sampleTrace()
{
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    return kernels::runSpmmKernel({32, 32, 128}, 2, opts).trace;
}

TEST(TraceIo, StreamRoundTrip)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    const auto back = readTrace(buffer);
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ((*back)[i].kind, trace[i].kind) << i;
        EXPECT_EQ((*back)[i].addr, trace[i].addr) << i;
        EXPECT_EQ((*back)[i].bytes, trace[i].bytes) << i;
        EXPECT_EQ((*back)[i].chain, trace[i].chain) << i;
        EXPECT_EQ((*back)[i].tile.toString(), trace[i].tile.toString())
            << i;
    }
}

TEST(TraceIo, ReplayedTraceSimulatesIdentically)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    const auto back = readTrace(buffer);
    ASSERT_TRUE(back.has_value());

    CoreConfig core;
    const auto direct =
        TraceCpu(core, engine::vegetaS162()).run(trace);
    const auto replayed =
        TraceCpu(core, engine::vegetaS162()).run(*back);
    EXPECT_EQ(direct.totalCycles, replayed.totalCycles);
    EXPECT_EQ(direct.retiredOps, replayed.retiredOps);
    EXPECT_EQ(direct.cacheMisses, replayed.cacheMisses);
}

TEST(TraceIo, FileRoundTrip)
{
    const Trace trace = sampleTrace();
    const std::string path = "/tmp/vegeta_trace_test.vgtr";
    ASSERT_TRUE(writeTraceFile(path, trace));
    const auto back = readTraceFile(path);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->size(), trace.size());
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic)
{
    std::stringstream buffer;
    buffer << "NOPE" << std::string(64, '\0');
    EXPECT_FALSE(readTrace(buffer).has_value());
}

TEST(TraceIo, RejectsTruncation)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    std::string bytes = buffer.str();
    bytes.resize(bytes.size() / 2);
    std::stringstream truncated(bytes);
    EXPECT_FALSE(readTrace(truncated).has_value());
}

TEST(TraceIo, RejectsWrongVersion)
{
    const Trace trace = sampleTrace();
    std::stringstream buffer;
    writeTrace(buffer, trace);
    std::string bytes = buffer.str();
    bytes[4] = 99; // version field
    std::stringstream bad(bytes);
    EXPECT_FALSE(readTrace(bad).has_value());
}

TEST(TraceIo, MissingFileReturnsNullopt)
{
    EXPECT_FALSE(
        readTraceFile("/tmp/definitely_not_here.vgtr").has_value());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    std::stringstream buffer;
    writeTrace(buffer, {});
    const auto back = readTrace(buffer);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->empty());
}

} // namespace
} // namespace vegeta::cpu
