/**
 * @file
 * Flat memory and matrix staging tests.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "isa/memory.hpp"

namespace vegeta::isa {
namespace {

TEST(FlatMemory, DefaultZero)
{
    FlatMemory mem;
    EXPECT_EQ(mem.readByte(0), 0);
    EXPECT_EQ(mem.readByte(0xdeadbeef), 0);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(FlatMemory, ByteReadWrite)
{
    FlatMemory mem;
    mem.writeByte(1234, 0x5a);
    EXPECT_EQ(mem.readByte(1234), 0x5a);
    EXPECT_EQ(mem.readByte(1235), 0x00);
    EXPECT_EQ(mem.residentPages(), 1u);
}

TEST(FlatMemory, CrossPageRange)
{
    FlatMemory mem;
    std::vector<u8> data(8192);
    Rng rng(1);
    for (auto &b : data)
        b = static_cast<u8>(rng.next());
    const Addr base = FlatMemory::kPageBytes - 100;
    mem.write(base, data);
    EXPECT_EQ(mem.read(base, data.size()), data);
    EXPECT_GE(mem.residentPages(), 3u);
}

TEST(FlatMemory, SparsePagesStaySparse)
{
    FlatMemory mem;
    mem.writeByte(0, 1);
    mem.writeByte(1ull << 40, 1);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(MatrixStaging, BF16RoundTrip)
{
    FlatMemory mem;
    Rng rng(2);
    MatrixBF16 m = randomMatrixBF16(16, 32, rng);
    storeMatrixBF16(mem, 0x1000, m, 64);
    EXPECT_EQ(loadMatrixBF16(mem, 0x1000, 16, 32, 64), m);
}

TEST(MatrixStaging, StrideSkipsGaps)
{
    FlatMemory mem;
    Rng rng(3);
    MatrixBF16 m = randomMatrixBF16(4, 4, rng);
    storeMatrixBF16(mem, 0x2000, m, 256);
    EXPECT_EQ(loadMatrixBF16(mem, 0x2000, 4, 4, 256), m);
    // The gap bytes stay zero.
    EXPECT_EQ(mem.readByte(0x2000 + 8), 0);
}

TEST(MatrixStaging, F32RoundTrip)
{
    FlatMemory mem;
    Rng rng(4);
    MatrixF m = randomMatrixF(16, 16, rng);
    storeMatrixF32(mem, 0x3000, m, 64);
    MatrixF back = loadMatrixF32(mem, 0x3000, 16, 16, 64);
    EXPECT_EQ(maxAbsDiff(m, back), 0.0f);
}

TEST(MatrixStaging, StrideTooSmallPanics)
{
    setLoggingThrows(true);
    FlatMemory mem;
    MatrixBF16 m(2, 32);
    EXPECT_THROW(storeMatrixBF16(mem, 0, m, 32), std::logic_error);
    setLoggingThrows(false);
}

TEST(MetadataStaging, BodyAndDescriptors)
{
    FlatMemory mem;
    std::vector<u8> body(128);
    for (u32 i = 0; i < 128; ++i)
        body[i] = static_cast<u8>(i);
    std::vector<u8> desc{0xaa, 0xbb};
    storeMetadata(mem, 0x4000, body, desc);
    EXPECT_EQ(mem.readByte(0x4000 + 5), 5);
    EXPECT_EQ(mem.readByte(0x4000 + 128), 0xaa);
    EXPECT_EQ(mem.readByte(0x4000 + 129), 0xbb);
    EXPECT_EQ(mem.readByte(0x4000 + 130), 0x00);
}

TEST(MetadataStaging, ShortBodyZeroPadded)
{
    FlatMemory mem;
    // Pre-fill with garbage to check zero padding.
    for (u32 i = 0; i < 136; ++i)
        mem.writeByte(0x5000 + i, 0xff);
    storeMetadata(mem, 0x5000, {0x01});
    EXPECT_EQ(mem.readByte(0x5000), 0x01);
    EXPECT_EQ(mem.readByte(0x5000 + 1), 0x00);
    EXPECT_EQ(mem.readByte(0x5000 + 135), 0x00);
}

} // namespace
} // namespace vegeta::isa
