/**
 * @file
 * Compression round-trip tests (paper Figure 2 format).
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sparsity/compressed_tile.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta {
namespace {

TEST(Pack2Bit, RoundTrip)
{
    std::vector<u8> codes{0, 1, 2, 3, 3, 2, 1, 0, 1};
    auto bytes = pack2Bit(codes);
    EXPECT_EQ(bytes.size(), 3u);
    EXPECT_EQ(unpack2Bit(bytes, codes.size()), codes);
}

TEST(Pack2Bit, LittleEndianWithinByte)
{
    // codes 1,2,3,0 -> byte 0b00'11'10'01 = 0x39.
    auto bytes = pack2Bit({1, 2, 3, 0});
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0x39);
}

TEST(CompressedTile, PaperFigure2Example)
{
    // The 8x8 2:4 example of Figure 2: values 1..32 at positions that
    // mirror the figure's indexes.
    MatrixBF16 tile(8, 8);
    const u32 positions[8][4] = {
        // per row: in-block positions of the two nz per block
        {0, 3, 0, 2}, {1, 2, 0, 1}, {2, 3, 0, 1}, {2, 3, 0, 3},
        {0, 2, 0, 3}, {0, 3, 0, 2}, {0, 3, 1, 2}, {0, 3, 2, 3},
    };
    float next = 1.0f;
    for (u32 r = 0; r < 8; ++r) {
        tile.at(r, positions[r][0]) = BF16(next++);
        tile.at(r, positions[r][1]) = BF16(next++);
        tile.at(r, 4 + positions[r][2]) = BF16(next++);
        tile.at(r, 4 + positions[r][3]) = BF16(next++);
    }

    auto ct = CompressedTile::compress(tile, pattern24());
    EXPECT_EQ(ct.rows(), 8u);
    EXPECT_EQ(ct.blocksPerRow(), 2u);
    EXPECT_EQ(ct.valuesPerRow(), 4u);
    // Non-zero values appear in order 1..32.
    float expect = 1.0f;
    for (u32 r = 0; r < 8; ++r)
        for (u32 v = 0; v < 4; ++v)
            EXPECT_EQ(ct.value(r, v).toFloat(), expect++);
    // Round trip.
    EXPECT_EQ(ct.decompress(), tile);
}

TEST(CompressedTile, PadsSparseBlocksWithZeros)
{
    MatrixBF16 tile(1, 4);
    tile.at(0, 2) = BF16(5.0f); // one nz, compressed as 2:4
    auto ct = CompressedTile::compress(tile, pattern24());
    EXPECT_EQ(ct.valuesPerRow(), 2u);
    EXPECT_EQ(ct.value(0, 0).toFloat(), 5.0f);
    EXPECT_TRUE(ct.value(0, 1).isZero());
    EXPECT_EQ(ct.decompress(), tile);
}

TEST(CompressedTile, MetadataImageSizeForTregTile)
{
    Rng rng(1);
    // A 16x64 effective 2:4 tile -> 16x32 stored values, 128 B meta.
    MatrixBF16 tile = randomNMMatrix(16, 64, pattern24(), rng);
    auto ct = CompressedTile::compress(tile, pattern24());
    EXPECT_EQ(ct.values().rows(), 16u);
    EXPECT_EQ(ct.values().cols(), 32u);
    EXPECT_EQ(ct.packMetadata().size(), 128u);
}

TEST(CompressedTile, FromRawInvertsPackMetadata)
{
    Rng rng(2);
    MatrixBF16 tile = randomNMMatrix(16, 128, pattern14(), rng);
    auto ct = CompressedTile::compress(tile, pattern14());
    auto rebuilt = CompressedTile::fromRaw(ct.values(),
                                           ct.packMetadata(),
                                           pattern14());
    EXPECT_EQ(rebuilt.decompress(), tile);
}

TEST(CompressedTile, RejectsViolatingTile)
{
    setLoggingThrows(true);
    Rng rng(3);
    MatrixBF16 dense = randomMatrixBF16(4, 8, rng);
    EXPECT_THROW(CompressedTile::compress(dense, pattern24()),
                 std::logic_error);
    setLoggingThrows(false);
}

/** Round-trip property over patterns and seeds. */
class CompressRoundTrip
    : public ::testing::TestWithParam<std::tuple<u32, u64>>
{
};

TEST_P(CompressRoundTrip, DecompressInvertsCompress)
{
    const auto [n, seed] = GetParam();
    Rng rng(seed);
    const NMPattern pattern{n, 4};
    const u32 effective_cols = 32 * 4 / n;
    MatrixBF16 tile = randomNMMatrix(16, effective_cols, pattern, rng);
    auto ct = CompressedTile::compress(tile, pattern);
    EXPECT_EQ(ct.decompress(), tile);
    // Stored footprint is always one treg worth of values.
    EXPECT_EQ(ct.values().cols() * ct.rows(), 512u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressRoundTrip,
    ::testing::Combine(::testing::Values(1u, 2u),
                       ::testing::Values(10u, 11u, 12u, 13u, 14u, 15u,
                                         16u, 17u)));

TEST(RowWiseCompressedTile, AutoPicksMinimalN)
{
    MatrixBF16 tile(3, 64);
    tile.at(0, 0) = BF16(1.0f);                      // 1:4 row
    tile.at(1, 0) = BF16(1.0f);
    tile.at(1, 1) = BF16(2.0f);                      // 2:4 row
    for (u32 c = 0; c < 4; ++c)
        tile.at(2, c) = BF16(static_cast<float>(c)); // wait: c=0 is 0.0
    tile.at(2, 0) = BF16(9.0f);                      // make it 4 nz
    auto rwt = RowWiseCompressedTile::compressAuto(tile);
    EXPECT_EQ(rwt.rowN(0), 1u);
    EXPECT_EQ(rwt.rowN(1), 2u);
    EXPECT_EQ(rwt.rowN(2), 4u);
    EXPECT_EQ(rwt.decompress(), tile);
}

TEST(RowWiseCompressedTile, ZeroRowStoredAsOneFour)
{
    MatrixBF16 tile(2, 64);
    tile.at(1, 5) = BF16(2.0f);
    auto rwt = RowWiseCompressedTile::compressAuto(tile);
    EXPECT_EQ(rwt.rowN(0), 1u);
    EXPECT_EQ(rwt.valuesInRow(0), 16u);
    EXPECT_EQ(rwt.decompress(), tile);
}

TEST(RowWiseCompressedTile, RowOffsetsAndTotals)
{
    MatrixBF16 tile(3, 64);
    tile.at(0, 0) = BF16(1.0f);
    tile.at(1, 0) = BF16(1.0f);
    tile.at(1, 1) = BF16(1.0f);
    tile.at(2, 0) = BF16(1.0f);
    auto rwt = RowWiseCompressedTile::compress(tile, {1, 2, 4});
    EXPECT_EQ(rwt.rowOffset(0), 0u);
    EXPECT_EQ(rwt.rowOffset(1), 16u);
    EXPECT_EQ(rwt.rowOffset(2), 48u);
    EXPECT_EQ(rwt.totalValues(), 16u + 32u + 64u);
}

TEST(RowWiseCompressedTile, RowDescriptorCodes)
{
    EXPECT_EQ(RowWiseCompressedTile::encodeRowN(1), 0u);
    EXPECT_EQ(RowWiseCompressedTile::encodeRowN(2), 1u);
    EXPECT_EQ(RowWiseCompressedTile::encodeRowN(4), 2u);
    for (u32 n : {1u, 2u, 4u})
        EXPECT_EQ(RowWiseCompressedTile::decodeRowN(
                      RowWiseCompressedTile::encodeRowN(n)),
                  n);
}

TEST(RowWiseCompressedTile, FromRawRoundTrip)
{
    Rng rng(20);
    // Build a full-treg tile: 8 rows of 4:4 -> 512 values.
    MatrixBF16 tile = randomMatrixBF16(8, 64, rng);
    auto rwt = RowWiseCompressedTile::compressAuto(tile);
    ASSERT_EQ(rwt.totalValues(), 512u);
    auto rebuilt = RowWiseCompressedTile::fromRaw(
        rwt.valueStream(), rwt.packMetadata(), rwt.packRowDescriptors(),
        rwt.rows(), rwt.effectiveCols());
    EXPECT_EQ(rebuilt.decompress(), tile);
}

/** Row-wise round trip on random unstructured chunks. */
class RowWiseRoundTrip : public ::testing::TestWithParam<u64>
{
};

TEST_P(RowWiseRoundTrip, LosslessOnUnstructured)
{
    Rng rng(GetParam());
    MatrixBF16 chunk = randomUnstructuredMatrix(24, 64, 0.9, rng);
    auto rwt = RowWiseCompressedTile::compressAuto(chunk);
    MatrixBF16 back = rwt.decompress();
    // Every non-zero of the original survives (lossless transform,
    // Section III-D).
    EXPECT_EQ(back, chunk);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RowWiseRoundTrip,
                         ::testing::Range<u64>(100, 112));

} // namespace
} // namespace vegeta
