/**
 * @file
 * BF16 numerics tests: conversion, rounding, MAC semantics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hpp"
#include "numerics/bf16.hpp"

namespace vegeta {
namespace {

TEST(BF16, ExactValuesRoundTrip)
{
    // Values whose significand fits 8 bits survive the round trip.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.5f, 256.0f,
                    0.15625f, -40.0f}) {
        EXPECT_EQ(BF16(v).toFloat(), v) << v;
    }
}

TEST(BF16, ZeroDetection)
{
    EXPECT_TRUE(BF16(0.0f).isZero());
    EXPECT_TRUE(BF16(-0.0f).isZero());
    EXPECT_FALSE(BF16(1.0f).isZero());
    EXPECT_FALSE(BF16(1e-30f).isZero());
}

TEST(BF16, RoundToNearestEven)
{
    // BF16 has an 8-bit significand, so ulp(1.0) = 2^-7.
    // 1.0 + 2^-8 is exactly between bf16(1.0) and the next value;
    // ties go to even (1.0).
    const float halfway = 1.0f + std::ldexp(1.0f, -8);
    EXPECT_EQ(BF16(halfway).toFloat(), 1.0f);

    // Just above the halfway point rounds up.
    const float above = 1.0f + std::ldexp(1.0f, -8) +
                        std::ldexp(1.0f, -12);
    EXPECT_EQ(BF16(above).toFloat(), 1.0f + std::ldexp(1.0f, -7));

    // Odd significand at halfway rounds up to even.
    const float odd = 1.0f + std::ldexp(1.0f, -7); // lsb set
    const float odd_halfway = odd + std::ldexp(1.0f, -8);
    EXPECT_EQ(BF16(odd_halfway).toFloat(),
              1.0f + std::ldexp(1.0f, -6));
}

TEST(BF16, RoundingErrorBounded)
{
    Rng rng(1234);
    for (int i = 0; i < 20000; ++i) {
        const float v = rng.nextFloat(-100.0f, 100.0f);
        const float back = BF16(v).toFloat();
        // Relative error bounded by 2^-8 (half ulp of an 8-bit
        // significand) for normal values.
        if (std::fabs(v) > 1e-30f)
            EXPECT_LE(std::fabs(back - v) / std::fabs(v),
                      std::ldexp(1.0f, -8))
                << v;
    }
}

TEST(BF16, InfinityPreserved)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(BF16(inf).toFloat(), inf);
    EXPECT_EQ(BF16(-inf).toFloat(), -inf);
}

TEST(BF16, NaNPreserved)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(BF16(nan).toFloat()));
}

TEST(BF16, LargeValuesSaturateToInfinity)
{
    // Rounding can push the max float over the exponent range.
    const float huge = std::numeric_limits<float>::max();
    const float converted = BF16(huge).toFloat();
    EXPECT_TRUE(std::isinf(converted) || converted > 3e38f);
}

TEST(BF16, BitsAccessors)
{
    const BF16 one(1.0f);
    EXPECT_EQ(one.bits(), 0x3f80);
    EXPECT_EQ(BF16::fromBits(0x3f80), one);
}

TEST(BF16, NegativePreservesSign)
{
    Rng rng(77);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.nextFloat(0.001f, 50.0f);
        EXPECT_EQ(BF16(-v).toFloat(), -BF16(v).toFloat());
    }
}

TEST(Mac, ExactWidening)
{
    // BF16 x BF16 products are exact in FP32: 8-bit x 8-bit
    // significands fit in 24 bits.
    const BF16 a(1.5f), b(2.5f);
    EXPECT_EQ(macBF16(0.0f, a, b), 3.75f);
}

TEST(Mac, AccumulatesInFp32)
{
    float acc = 0.0f;
    for (int i = 0; i < 256; ++i)
        acc = macBF16(acc, BF16(1.0f), BF16(1.0f));
    EXPECT_EQ(acc, 256.0f);
}

TEST(Mac, ZeroOperandIsIdentity)
{
    const float acc = 41.5f;
    EXPECT_EQ(macBF16(acc, BF16(0.0f), BF16(123.0f)), acc);
    EXPECT_EQ(macBF16(acc, BF16(123.0f), BF16(0.0f)), acc);
}

} // namespace
} // namespace vegeta
