/**
 * @file
 * Instruction definition tests (paper Table II semantics).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "isa/instructions.hpp"

namespace vegeta::isa {
namespace {

bool
contains(const std::vector<u32> &v, u32 x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isTileCompute(Opcode::TileGemm));
    EXPECT_TRUE(isTileCompute(Opcode::TileSpmmU));
    EXPECT_TRUE(isTileCompute(Opcode::TileSpmmV));
    EXPECT_TRUE(isTileCompute(Opcode::TileSpmmR));
    EXPECT_FALSE(isTileCompute(Opcode::TileLoadT));
    EXPECT_TRUE(isTileLoad(Opcode::TileLoadM));
    EXPECT_TRUE(isTileLoad(Opcode::TileLoadV));
    EXPECT_TRUE(isTileStore(Opcode::TileStoreT));
    EXPECT_FALSE(isTileStore(Opcode::TileLoadT));
}

TEST(Opcode, ComputeShapes)
{
    // Section IV-B: GEMM 16x16x32, SPMM_U 16x16x64, SPMM_V 16x16x128.
    auto g = computeShape(Opcode::TileGemm);
    EXPECT_EQ(g.m, 16u);
    EXPECT_EQ(g.n, 16u);
    EXPECT_EQ(g.k, 32u);
    EXPECT_EQ(computeShape(Opcode::TileSpmmU).k, 64u);
    EXPECT_EQ(computeShape(Opcode::TileSpmmV).k, 128u);
}

TEST(Opcode, EffectualMacsAreEqual)
{
    // "The number of useful MAC operations ... is the same (8192)".
    EXPECT_EQ(effectualMacs(Opcode::TileGemm), 8192u);
    EXPECT_EQ(effectualMacs(Opcode::TileSpmmU), 8192u);
    EXPECT_EQ(effectualMacs(Opcode::TileSpmmV), 8192u);
    EXPECT_EQ(effectualMacs(Opcode::TileSpmmR), 8192u);
}

TEST(Builders, ValidateOperandClasses)
{
    setLoggingThrows(true);
    EXPECT_THROW(makeTileLoadT(ureg(0), 0, 64), std::logic_error);
    EXPECT_THROW(makeTileLoadU(treg(0), 0, 128), std::logic_error);
    EXPECT_THROW(makeTileGemm(treg(0), ureg(0), treg(1)),
                 std::logic_error);
    EXPECT_THROW(makeTileSpmmU(treg(0), treg(1), treg(2)),
                 std::logic_error);
    EXPECT_THROW(makeTileSpmmV(treg(0), treg(1), ureg(1)),
                 std::logic_error);
    EXPECT_THROW(makeTileSpmmR(treg(0), treg(1), ureg(1), 8),
                 std::logic_error);
    EXPECT_THROW(makeTileSpmmR(ureg(1), treg(1), ureg(0), 33),
                 std::logic_error);
    setLoggingThrows(false);
}

TEST(Instruction, GemmRegisterSets)
{
    auto in = makeTileGemm(treg(5), treg(4), treg(0));
    auto reads = in.readRegs();
    // C is read (accumulation) as well as A and B.
    EXPECT_TRUE(contains(reads, 5));
    EXPECT_TRUE(contains(reads, 4));
    EXPECT_TRUE(contains(reads, 0));
    auto writes = in.writeRegs();
    EXPECT_EQ(writes, std::vector<u32>{5});
    EXPECT_EQ(in.accumulateRegs(), std::vector<u32>{5});
}

TEST(Instruction, SpmmUExpandsUregAlias)
{
    auto in = makeTileSpmmU(treg(5), treg(4), ureg(0));
    auto reads = in.readRegs();
    // ureg0 = tregs 0 and 1.
    EXPECT_TRUE(contains(reads, 0));
    EXPECT_TRUE(contains(reads, 1));
    // Paired metadata register of the A treg.
    EXPECT_TRUE(contains(reads, mregDepId(4)));
    EXPECT_EQ(in.mreg, 4);
}

TEST(Instruction, SpmmVExpandsVregAlias)
{
    auto in = makeTileSpmmV(treg(5), treg(4), vreg(0));
    auto reads = in.readRegs();
    for (u32 t = 0; t < 4; ++t)
        EXPECT_TRUE(contains(reads, t)) << t;
}

TEST(Instruction, SpmmRWritesUregPair)
{
    auto in = makeTileSpmmR(ureg(1), treg(4), ureg(0), 16);
    auto writes = in.writeRegs();
    EXPECT_TRUE(contains(writes, 2));
    EXPECT_TRUE(contains(writes, 3));
    EXPECT_EQ(in.rows, 16);
}

TEST(Instruction, LoadsWriteOnly)
{
    auto in = makeTileLoadV(vreg(1), 0x1000, 256);
    EXPECT_TRUE(in.readRegs().empty());
    auto writes = in.writeRegs();
    for (u32 t = 4; t < 8; ++t)
        EXPECT_TRUE(contains(writes, t));
    EXPECT_TRUE(in.accumulateRegs().empty());
}

TEST(Instruction, LoadMWritesMreg)
{
    auto in = makeTileLoadM(3, 0x2000);
    EXPECT_EQ(in.writeRegs(), std::vector<u32>{mregDepId(3)});
}

TEST(Instruction, StoreReadsOnly)
{
    auto in = makeTileStoreT(0x3000, 64, treg(2));
    EXPECT_EQ(in.readRegs(), std::vector<u32>{2});
    EXPECT_TRUE(in.writeRegs().empty());
}

TEST(Instruction, Disassembly)
{
    EXPECT_EQ(makeTileGemm(treg(5), treg(4), treg(0)).toString(),
              "TILE_GEMM treg5, treg4, treg0");
    EXPECT_EQ(makeTileSpmmU(treg(5), treg(4), ureg(0)).toString(),
              "TILE_SPMM_U treg5, treg4, ureg0");
    auto load = makeTileLoadT(treg(1), 0x100, 64);
    EXPECT_NE(load.toString().find("TILE_LOAD_T treg1"),
              std::string::npos);
    auto spmmr = makeTileSpmmR(ureg(1), treg(4), ureg(0), 12);
    EXPECT_NE(spmmr.toString().find("rows=12"), std::string::npos);
}

TEST(Instruction, OpcodeNamesMatchPaper)
{
    EXPECT_STREQ(opcodeName(Opcode::TileLoadT), "TILE_LOAD_T");
    EXPECT_STREQ(opcodeName(Opcode::TileSpmmV), "TILE_SPMM_V");
    EXPECT_STREQ(opcodeName(Opcode::TileSpmmR), "TILE_SPMM_R");
    EXPECT_STREQ(opcodeName(Opcode::TileStoreT), "TILE_STORE_T");
}

} // namespace
} // namespace vegeta::isa
