/**
 * @file
 * Tests for the vegeta::sim facade: request validation, registry
 * round-trips, facade/primitive equivalence, sweep determinism, and
 * result serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "kernels/driver.hpp"
#include "sim/sweep.hpp"

namespace vegeta::sim {
namespace {

// --- parseGemmSpec ----------------------------------------------------

TEST(GemmSpec, ParsesWellFormed)
{
    const auto dims = parseGemmSpec("256x256x2048");
    ASSERT_TRUE(dims.has_value());
    EXPECT_EQ(dims->m, 256u);
    EXPECT_EQ(dims->n, 256u);
    EXPECT_EQ(dims->k, 2048u);
}

TEST(GemmSpec, RejectsTrailingGarbage)
{
    EXPECT_FALSE(parseGemmSpec("256x256x2048x9").has_value());
    EXPECT_FALSE(parseGemmSpec("256x256x2048 ").has_value());
    EXPECT_FALSE(parseGemmSpec("256x256x2048abc").has_value());
}

TEST(GemmSpec, RejectsMalformed)
{
    EXPECT_FALSE(parseGemmSpec("").has_value());
    EXPECT_FALSE(parseGemmSpec("256x256").has_value());
    EXPECT_FALSE(parseGemmSpec("0x256x2048").has_value());
    EXPECT_FALSE(parseGemmSpec("ax bx c").has_value());
}

// --- RequestBuilder validation ---------------------------------------

TEST(RequestBuilder, BuildsValidRequest)
{
    const Simulator simulator;
    auto builder = simulator.request()
                       .workload("BERT-L1")
                       .engine("VEGETA-S-16-2")
                       .pattern(2)
                       .outputForwarding(true);
    const auto request = builder.build();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->label, "BERT-L1");
    EXPECT_EQ(request->engine, "VEGETA-S-16-2");
    EXPECT_EQ(request->patternN, 2u);
    EXPECT_TRUE(request->outputForwarding);
    EXPECT_TRUE(builder.error().empty());
}

TEST(RequestBuilder, RejectsUnknownEngine)
{
    const Simulator simulator;
    auto builder =
        simulator.request().workload("BERT-L1").engine("NOPE-9000");
    EXPECT_FALSE(builder.build().has_value());
    EXPECT_NE(builder.error().find("unknown engine"),
              std::string::npos);
}

TEST(RequestBuilder, RejectsUnknownWorkload)
{
    const Simulator simulator;
    auto builder =
        simulator.request().workload("NoSuchLayer").engine(
            "VEGETA-S-16-2");
    EXPECT_FALSE(builder.build().has_value());
    EXPECT_NE(builder.error().find("unknown workload"),
              std::string::npos);
}

TEST(RequestBuilder, RejectsBadPattern)
{
    const Simulator simulator;
    auto builder = simulator.request()
                       .workload("BERT-L1")
                       .engine("VEGETA-S-16-2")
                       .pattern(3);
    EXPECT_FALSE(builder.build().has_value());
    EXPECT_NE(builder.error().find("pattern"), std::string::npos);
}

TEST(RequestBuilder, RejectsBadBlocking)
{
    const Simulator simulator;
    auto builder = simulator.request()
                       .workload("BERT-L1")
                       .engine("VEGETA-S-16-2")
                       .cBlocking(7);
    EXPECT_FALSE(builder.build().has_value());
    EXPECT_NE(builder.error().find("cBlocking"), std::string::npos);
}

TEST(RequestBuilder, RejectsEmptyRequest)
{
    const Simulator simulator;
    auto builder = simulator.request();
    EXPECT_FALSE(builder.build().has_value());
    EXPECT_FALSE(builder.error().empty());
}

TEST(RequestBuilder, KeepsFirstError)
{
    const Simulator simulator;
    auto builder = simulator.request()
                       .workload("NoSuchLayer")
                       .engine("NOPE-9000")
                       .pattern(3);
    EXPECT_FALSE(builder.build().has_value());
    EXPECT_NE(builder.error().find("unknown workload"),
              std::string::npos);
}

// --- Registries -------------------------------------------------------

TEST(EngineRegistry, BuiltinRoundTrips)
{
    const auto reg = EngineRegistry::builtin();
    // Figure 13 engine set: eight Table III rows plus STC-like.
    EXPECT_EQ(reg.size(), 9u);
    EXPECT_EQ(reg.tableIIIConfigs().size(), 8u);
    for (const auto &name : reg.names()) {
        const auto cfg = reg.find(name);
        ASSERT_TRUE(cfg.has_value()) << name;
        EXPECT_EQ(cfg->name, name);
    }
    EXPECT_FALSE(reg.find("NOPE-9000").has_value());
}

TEST(EngineRegistry, BuiltinMatchesEvaluatedConfigOrder)
{
    const auto reg = EngineRegistry::builtin();
    const auto expected = engine::allEvaluatedConfigs();
    const auto actual = reg.configs();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(actual[i].name, expected[i].name);
}

TEST(EngineRegistry, AddAndReplace)
{
    EngineRegistry reg;
    auto custom = engine::vegetaS22();
    custom.name = "CUSTOM-1";
    reg.add(custom);
    ASSERT_TRUE(reg.contains("CUSTOM-1"));
    EXPECT_TRUE(reg.find("CUSTOM-1")->sparse);

    // Re-registering the name replaces the entry in place.
    auto replacement = engine::vegetaD12();
    replacement.name = "CUSTOM-1";
    reg.add(replacement);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_FALSE(reg.find("CUSTOM-1")->sparse);
}

TEST(WorkloadRegistry, BuiltinRoundTrips)
{
    const auto reg = WorkloadRegistry::builtin();
    EXPECT_EQ(reg.group("tableIV").size(), 12u);
    EXPECT_EQ(reg.group("quick").size(), 3u);
    for (const auto &name : reg.names()) {
        const auto w = reg.find(name);
        ASSERT_TRUE(w.has_value()) << name;
        EXPECT_EQ(w->name, name);
        EXPECT_GT(w->gemm.macs(), 0u);
    }
    EXPECT_FALSE(reg.find("NoSuchLayer").has_value());
}

TEST(WorkloadRegistry, AddAndGroup)
{
    WorkloadRegistry reg;
    kernels::Workload w;
    w.name = "mine";
    w.gemm = {64, 64, 256};
    reg.add(w, "mygroup");
    ASSERT_TRUE(reg.contains("mine"));
    EXPECT_EQ(reg.group("mygroup").size(), 1u);
    EXPECT_TRUE(reg.group("tableIV").empty());
}

// --- Simulator facade -------------------------------------------------

TEST(Simulator, MatchesSimulateLayerPrimitive)
{
    const Simulator simulator;
    const auto request = simulator.request()
                             .workload("quick-square")
                             .engine("VEGETA-S-16-2")
                             .pattern(2)
                             .outputForwarding(true)
                             .build();
    ASSERT_TRUE(request.has_value());
    const auto result = simulator.run(*request);

    kernels::Workload w =
        *simulator.workloads().find("quick-square");
    const auto reference = kernels::simulateLayer(
        w, 2, engine::vegetaS162(), /*output_forwarding=*/true);
    EXPECT_EQ(result.coreCycles, reference.coreCycles);
    EXPECT_EQ(result.instructions, reference.instructions);
    EXPECT_EQ(result.tileComputes, reference.tileComputes);
    EXPECT_EQ(result.executedN, reference.executedN);
    EXPECT_DOUBLE_EQ(result.macUtilization,
                     reference.macUtilization);
}

TEST(Simulator, ReplayMatchesGeneratedRun)
{
    const Simulator simulator;
    const auto request = simulator.request()
                             .gemm(kernels::GemmDims{64, 64, 256})
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    ASSERT_TRUE(request.has_value());

    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto engine = simulator.engines().find("VEGETA-S-2-2");
    const auto run = kernels::runSpmmKernel(
        request->gemm, engine->effectiveN(2), opts);

    const auto direct = simulator.run(*request);
    const auto replayed = simulator.replay(run.trace, *request);
    EXPECT_EQ(replayed.coreCycles, direct.coreCycles);
    EXPECT_EQ(replayed.instructions, direct.instructions);
    EXPECT_EQ(replayed.kernel, "replay");
}

TEST(Simulator, ReplayErrorOnIncompatibleEngine)
{
    const Simulator simulator;
    // A 2:4 trace contains TILE_SPMM_U ops; the dense RASA-DM engine
    // has no datapath for them.
    kernels::KernelOptions opts;
    opts.traceOnly = true;
    const auto run =
        kernels::runSpmmKernel({64, 64, 256}, /*executed_n=*/2, opts);

    const auto sparse_req = simulator.request()
                                .gemm(kernels::GemmDims{64, 64, 256})
                                .engine("VEGETA-S-2-2")
                                .build();
    const auto dense_req = simulator.request()
                               .gemm(kernels::GemmDims{64, 64, 256})
                               .engine("VEGETA-D-1-2")
                               .build();
    EXPECT_FALSE(
        simulator.replayError(run.trace, *sparse_req).has_value());
    const auto error = simulator.replayError(run.trace, *dense_req);
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("VEGETA-D-1-2"), std::string::npos);
}

TEST(Simulator, DenseEngineIgnoresOutputForwardingRequest)
{
    const Simulator simulator;
    const auto request = simulator.request()
                             .workload("quick-small")
                             .engine("VEGETA-D-1-2")
                             .pattern(2)
                             .outputForwarding(true)
                             .build();
    ASSERT_TRUE(request.has_value());
    EXPECT_FALSE(simulator.run(*request).outputForwarding);
}

// --- SweepRunner ------------------------------------------------------

std::vector<SimulationRequest>
fullQuickGrid(const Simulator &simulator)
{
    std::vector<std::string> workload_names;
    for (const auto &w : simulator.workloads().group("quick"))
        workload_names.push_back(w.name);
    return figure13Grid(simulator, workload_names,
                        simulator.engines().names(), {4, 2, 1});
}

TEST(SweepRunner, ParallelMatchesSingleThreadBitForBit)
{
    const Simulator simulator;
    const auto grid = fullQuickGrid(simulator);
    ASSERT_FALSE(grid.empty());

    const auto serial = SweepRunner(simulator, 1).run(grid);
    const auto parallel = SweepRunner(simulator, 4).run(grid);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        EXPECT_EQ(serial[i].engine, parallel[i].engine);
        EXPECT_EQ(serial[i].layerN, parallel[i].layerN);
        EXPECT_EQ(serial[i].executedN, parallel[i].executedN);
        EXPECT_EQ(serial[i].outputForwarding,
                  parallel[i].outputForwarding);
        EXPECT_EQ(serial[i].coreCycles, parallel[i].coreCycles);
        EXPECT_EQ(serial[i].instructions, parallel[i].instructions);
        EXPECT_EQ(serial[i].engineInstructions,
                  parallel[i].engineInstructions);
        EXPECT_EQ(serial[i].tileComputes, parallel[i].tileComputes);
        EXPECT_EQ(serial[i].cacheHits, parallel[i].cacheHits);
        EXPECT_EQ(serial[i].cacheMisses, parallel[i].cacheMisses);
        // bit-for-bit: exact double equality, not a tolerance.
        EXPECT_EQ(serial[i].macUtilization,
                  parallel[i].macUtilization);
    }
}

TEST(SweepRunner, MatchesLegacyFigure13Sweep)
{
    const Simulator simulator;
    const auto workloads = simulator.workloads().group("quick");
    const auto engines = simulator.engines().configs();
    const auto legacy = kernels::figure13Sweep(workloads, engines);

    const auto results =
        SweepRunner(simulator, 2).run(fullQuickGrid(simulator));
    ASSERT_EQ(results.size(), legacy.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].workload, legacy[i].workload);
        EXPECT_EQ(results[i].engine, legacy[i].engineName);
        EXPECT_EQ(results[i].layerN, legacy[i].layerN);
        EXPECT_EQ(results[i].coreCycles, legacy[i].coreCycles);
    }
}

TEST(SweepRunner, GeomeanSpeedupMatchesLegacy)
{
    const Simulator simulator;
    const auto workloads = simulator.workloads().group("quick");
    std::vector<std::string> names;
    for (const auto &w : workloads)
        names.push_back(w.name);

    for (const u32 layer_n : {4u, 2u, 1u}) {
        const double legacy = kernels::geomeanSpeedupVsDenseBaseline(
            workloads, layer_n, engine::vegetaS162(), true);
        const double sweep = geomeanSpeedup(
            simulator, names, layer_n, "VEGETA-S-16-2", true,
            "VEGETA-D-1-2", /*threads=*/3);
        EXPECT_DOUBLE_EQ(sweep, legacy) << layer_n;
    }
}

TEST(SweepRunner, EmptyBatch)
{
    const Simulator simulator;
    EXPECT_TRUE(SweepRunner(simulator, 4).run({}).empty());
}

// --- Result serialization --------------------------------------------

std::vector<SimulationResult>
sampleResults(const Simulator &simulator)
{
    const auto request = simulator.request()
                             .workload("quick-small")
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    return {simulator.run(*request)};
}

TEST(Results, CsvHasHeaderAndRow)
{
    const Simulator simulator;
    std::ostringstream os;
    writeCsv(os, sampleResults(simulator));
    const std::string text = os.str();
    EXPECT_NE(text.find("workload,engine,pattern"), std::string::npos);
    EXPECT_NE(text.find("quick-small,VEGETA-S-2-2,2:4"),
              std::string::npos);
}

TEST(Results, JsonIsWellFormedEnough)
{
    const Simulator simulator;
    std::ostringstream os;
    writeJson(os, sampleResults(simulator));
    const std::string text = os.str();
    EXPECT_EQ(text.front(), '[');
    EXPECT_NE(text.find("\"workload\": \"quick-small\""),
              std::string::npos);
    EXPECT_NE(text.find("\"core_cycles\": "), std::string::npos);
    EXPECT_EQ(text[text.size() - 2], ']');
}

TEST(Results, TableHasOneRowPerResult)
{
    const Simulator simulator;
    const auto results = sampleResults(simulator);
    EXPECT_EQ(resultsTable(results).numRows(), results.size());
}

} // namespace
} // namespace vegeta::sim
