/**
 * @file
 * Area/power/frequency model tests against the Section VI-D /
 * Figure 14 calibration targets.
 */

#include <gtest/gtest.h>

#include "engine/area_model.hpp"

namespace vegeta::engine {
namespace {

std::vector<NormalizedPhysical>
series()
{
    return figure14Series(allTableIIIConfigs());
}

const NormalizedPhysical &
row(const std::vector<NormalizedPhysical> &s, const std::string &name)
{
    for (const auto &r : s)
        if (r.name == name)
            return r;
    ADD_FAILURE() << "missing " << name;
    static NormalizedPhysical dummy;
    return dummy;
}

TEST(AreaModel, BaselineNormalizesToOne)
{
    auto s = series();
    EXPECT_DOUBLE_EQ(row(s, "VEGETA-D-1-1").normalizedArea, 1.0);
    EXPECT_DOUBLE_EQ(row(s, "VEGETA-D-1-1").normalizedPower, 1.0);
}

TEST(AreaModel, WorstSparseOverheadIsAboutSixPercent)
{
    // "The VEGETA-S design with the largest area overhead compared
    // with RASA-SM only causes 6% area overhead" (S-1-2).
    auto s = series();
    double worst = 0.0;
    for (const auto &r : s)
        worst = std::max(worst, r.normalizedArea);
    EXPECT_EQ(row(s, "VEGETA-S-1-2").normalizedArea, worst);
    EXPECT_NEAR(worst, 1.06, 0.02);
}

TEST(AreaModel, LargeAlphaSparseDesignsAreSmallerThanBaseline)
{
    // "VEGETA-S-8-2 and VEGETA-S-16-2 show lower area compared to
    // RASA-SM or ... RASA-DM."
    auto s = series();
    const double rasa_dm = row(s, "VEGETA-D-1-2").normalizedArea;
    EXPECT_LT(row(s, "VEGETA-S-8-2").normalizedArea, 1.0);
    EXPECT_LT(row(s, "VEGETA-S-16-2").normalizedArea, 1.0);
    EXPECT_LT(row(s, "VEGETA-S-16-2").normalizedArea, rasa_dm);
}

TEST(AreaModel, AreaDecreasesWithAlpha)
{
    auto s = series();
    const char *order[] = {"VEGETA-S-1-2", "VEGETA-S-2-2", "VEGETA-S-4-2",
                           "VEGETA-S-8-2", "VEGETA-S-16-2"};
    for (int i = 1; i < 5; ++i)
        EXPECT_LT(row(s, order[i]).normalizedArea,
                  row(s, order[i - 1]).normalizedArea)
            << order[i];
}

TEST(AreaModel, PowerOverheadsMatchPaperSequence)
{
    // Section VI-D: power overhead for VEGETA-S-alpha-2 is 17%, 8%,
    // 4%, 3%, 1% for alpha = 1, 2, 4, 8, 16 (vs RASA-SM).  The
    // component model reproduces the sequence within ~3 points.
    auto s = series();
    const struct
    {
        const char *name;
        double target;
    } expect[] = {
        {"VEGETA-S-1-2", 1.17}, {"VEGETA-S-2-2", 1.08},
        {"VEGETA-S-4-2", 1.04}, {"VEGETA-S-8-2", 1.03},
        {"VEGETA-S-16-2", 1.01},
    };
    for (const auto &e : expect)
        EXPECT_NEAR(row(s, e.name).normalizedPower, e.target, 0.03)
            << e.name;
}

TEST(AreaModel, PowerDecreasesWithAlpha)
{
    auto s = series();
    const char *order[] = {"VEGETA-S-1-2", "VEGETA-S-2-2", "VEGETA-S-4-2",
                           "VEGETA-S-8-2", "VEGETA-S-16-2"};
    for (int i = 1; i < 5; ++i)
        EXPECT_LT(row(s, order[i]).normalizedPower,
                  row(s, order[i - 1]).normalizedPower);
}

TEST(AreaModel, FrequencyDecreasesWithAlpha)
{
    // "Higher alpha limits maximum frequency due to the increased
    // wire length for broadcasting across PUs."
    auto s = series();
    EXPECT_GT(row(s, "VEGETA-S-1-2").maxFrequencyGhz,
              row(s, "VEGETA-S-2-2").maxFrequencyGhz);
    EXPECT_GT(row(s, "VEGETA-S-2-2").maxFrequencyGhz,
              row(s, "VEGETA-S-4-2").maxFrequencyGhz);
    EXPECT_GT(row(s, "VEGETA-S-8-2").maxFrequencyGhz,
              row(s, "VEGETA-S-16-2").maxFrequencyGhz);
    EXPECT_GT(row(s, "VEGETA-D-1-1").maxFrequencyGhz,
              row(s, "VEGETA-D-16-1").maxFrequencyGhz);
}

TEST(AreaModel, EveryDesignMeetsEvaluationClock)
{
    // Section VI-C: 0.5 GHz "met the timing for all matrix designs".
    for (const auto &r : series())
        EXPECT_GE(r.maxFrequencyGhz, kEvaluationFrequencyGhz) << r.name;
}

TEST(AreaModel, SparseMuxCostsFrequency)
{
    const auto dense = estimatePhysical(vegetaD12());
    const auto sparse = estimatePhysical(vegetaS12());
    EXPECT_GT(dense.maxFrequencyGhz, sparse.maxFrequencyGhz);
}

TEST(AreaModel, ComponentBreakdownSumsToTotal)
{
    for (const auto &cfg : allTableIIIConfigs()) {
        const auto est = estimatePhysical(cfg);
        EXPECT_NEAR(est.areaUnits,
                    est.macArea + est.peOverheadArea +
                        est.inputBufferArea + est.sparseExtrasArea,
                    1e-9)
            << cfg.name;
        EXPECT_GT(est.macArea, 0.0);
    }
}

TEST(AreaModel, DenseDesignsHaveNoSparseExtrasExceptReduction)
{
    const auto d11 = estimatePhysical(vegetaD11());
    EXPECT_DOUBLE_EQ(d11.sparseExtrasArea, 0.0);
    // D-1-2 has reduction adders (beta = 2) but no muxes/metadata.
    const auto d12 = estimatePhysical(vegetaD12());
    EXPECT_GT(d12.sparseExtrasArea, 0.0);
    const auto s12 = estimatePhysical(vegetaS12());
    EXPECT_GT(s12.sparseExtrasArea, d12.sparseExtrasArea);
}

} // namespace
} // namespace vegeta::engine
