/**
 * @file
 * Matrix container and reference-GEMM tests.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "numerics/matrix.hpp"

namespace vegeta {
namespace {

TEST(Matrix, ConstructionAndIndexing)
{
    MatrixF m(3, 4, 1.5f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    EXPECT_EQ(m.at(2, 3), 1.5f);
    m.at(1, 2) = 7.0f;
    EXPECT_EQ(m.at(1, 2), 7.0f);
}

TEST(Matrix, RowMajorLayout)
{
    MatrixF m(2, 3);
    for (u32 r = 0; r < 2; ++r)
        for (u32 c = 0; c < 3; ++c)
            m.at(r, c) = static_cast<float>(r * 3 + c);
    for (u32 i = 0; i < 6; ++i)
        EXPECT_EQ(m.data()[i], static_cast<float>(i));
}

TEST(Matrix, Transpose)
{
    Rng rng(1);
    MatrixF m = randomMatrixF(5, 7, rng);
    MatrixF t = m.transposed();
    ASSERT_EQ(t.rows(), 7u);
    ASSERT_EQ(t.cols(), 5u);
    for (u32 r = 0; r < 5; ++r)
        for (u32 c = 0; c < 7; ++c)
            EXPECT_EQ(m.at(r, c), t.at(c, r));
    EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, BlockExtractAndPaste)
{
    Rng rng(2);
    MatrixF m = randomMatrixF(8, 8, rng);
    MatrixF b = m.block(2, 3, 4, 5);
    ASSERT_EQ(b.rows(), 4u);
    ASSERT_EQ(b.cols(), 5u);
    for (u32 r = 0; r < 4; ++r)
        for (u32 c = 0; c < 5; ++c)
            EXPECT_EQ(b.at(r, c), m.at(2 + r, 3 + c));

    MatrixF target(8, 8);
    target.setBlock(2, 3, b);
    for (u32 r = 0; r < 4; ++r)
        for (u32 c = 0; c < 5; ++c)
            EXPECT_EQ(target.at(2 + r, 3 + c), m.at(2 + r, 3 + c));
    EXPECT_EQ(target.at(0, 0), 0.0f);
}

TEST(Matrix, CountNonZerosAndSparsity)
{
    MatrixBF16 m(4, 4);
    m.at(0, 0) = BF16(1.0f);
    m.at(3, 3) = BF16(-2.0f);
    EXPECT_EQ(countNonZeros(m), 2u);
    EXPECT_DOUBLE_EQ(sparsityDegree(m), 1.0 - 2.0 / 16.0);
}

TEST(Matrix, RandomHasNoZeros)
{
    Rng rng(3);
    MatrixBF16 m = randomMatrixBF16(16, 32, rng);
    EXPECT_EQ(countNonZeros(m), m.size());
}

TEST(Matrix, WidenNarrowRoundTrip)
{
    Rng rng(4);
    MatrixBF16 m = randomMatrixBF16(6, 6, rng);
    EXPECT_EQ(narrow(widen(m)), m);
}

TEST(ReferenceGemm, IdentityTimesMatrix)
{
    const u32 n = 8;
    MatrixBF16 eye(n, n), b(n, n);
    Rng rng(5);
    b = randomMatrixBF16(n, n, rng);
    for (u32 i = 0; i < n; ++i)
        eye.at(i, i) = BF16(1.0f);
    MatrixF c(n, n);
    referenceGemm(eye, b, c);
    EXPECT_EQ(maxAbsDiff(c, widen(b)), 0.0f);
}

TEST(ReferenceGemm, HandComputed2x2)
{
    MatrixBF16 a(2, 2), b(2, 2);
    a.at(0, 0) = BF16(1.0f);
    a.at(0, 1) = BF16(2.0f);
    a.at(1, 0) = BF16(3.0f);
    a.at(1, 1) = BF16(4.0f);
    b.at(0, 0) = BF16(5.0f);
    b.at(0, 1) = BF16(6.0f);
    b.at(1, 0) = BF16(7.0f);
    b.at(1, 1) = BF16(8.0f);
    MatrixF c(2, 2);
    referenceGemm(a, b, c);
    EXPECT_EQ(c.at(0, 0), 19.0f);
    EXPECT_EQ(c.at(0, 1), 22.0f);
    EXPECT_EQ(c.at(1, 0), 43.0f);
    EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(ReferenceGemm, AccumulatesIntoC)
{
    MatrixBF16 a(2, 2), b(2, 2);
    a.at(0, 0) = BF16(1.0f);
    b.at(0, 0) = BF16(1.0f);
    MatrixF c(2, 2, 10.0f);
    referenceGemm(a, b, c);
    EXPECT_EQ(c.at(0, 0), 11.0f);
    EXPECT_EQ(c.at(1, 1), 10.0f);
}

TEST(ReferenceGemm, ZeroATimesAnything)
{
    Rng rng(6);
    MatrixBF16 a(4, 8); // all zeros
    MatrixBF16 b = randomMatrixBF16(8, 4, rng);
    MatrixF c(4, 4);
    referenceGemm(a, b, c);
    EXPECT_EQ(maxAbsDiff(c, MatrixF(4, 4)), 0.0f);
}

TEST(MaxAbsDiff, DetectsDifference)
{
    MatrixF x(2, 2), y(2, 2);
    y.at(1, 0) = 0.25f;
    EXPECT_EQ(maxAbsDiff(x, y), 0.25f);
    EXPECT_EQ(maxAbsDiff(x, x), 0.0f);
}

} // namespace
} // namespace vegeta
