/**
 * @file
 * Tests for the common substrate: RNG determinism, statistics, tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace vegeta {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng rng(7);
    std::vector<int> seen(7, 0);
    for (int i = 0; i < 7000; ++i)
        ++seen[rng.nextBelow(7)];
    for (int count : seen)
        EXPECT_GT(count, 700);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng rng(11);
    int trues = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        if (rng.nextBool(0.3))
            ++trues;
    EXPECT_NEAR(static_cast<double>(trues) / trials, 0.3, 0.01);
}

TEST(Rng, ChooseReturnsSortedDistinct)
{
    Rng rng(5);
    auto picks = rng.choose(100, 30);
    ASSERT_EQ(picks.size(), 30u);
    for (std::size_t i = 1; i < picks.size(); ++i)
        EXPECT_LT(picks[i - 1], picks[i]);
    for (u32 p : picks)
        EXPECT_LT(p, 100u);
}

TEST(Rng, ChooseAllAndNone)
{
    Rng rng(5);
    EXPECT_EQ(rng.choose(10, 10).size(), 10u);
    EXPECT_TRUE(rng.choose(10, 0).empty());
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(9);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto original = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, original);
}

TEST(ScalarStat, TracksMoments)
{
    ScalarStat s;
    s.sample(1.0);
    s.sample(3.0);
    s.sample(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(StatGroup, DumpAlphabetized)
{
    StatGroup g("core");
    g.stat("zeta").increment();
    g.stat("alpha").increment(2.0);
    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_LT(text.find("core.alpha"), text.find("core.zeta"));
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 2.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({5.0}), 5.0);
}

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"name", "value"});
    t.row().cell("alpha").cell(1.5, 2);
    t.row().cell("b").cell(12LL);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
    EXPECT_NE(text.find("12"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.row().cell("x").cell("y");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Logging, AssertThrowsWhenConfigured)
{
    setLoggingThrows(true);
    EXPECT_THROW(
        { VEGETA_ASSERT(false, "intentional test failure"); },
        std::logic_error);
    setLoggingThrows(false);
}

TEST(Logging, FormatConcatenatesArguments)
{
    EXPECT_EQ(detail::format("a=", 1, " b=", 2.5), "a=1 b=2.5");
}

} // namespace
} // namespace vegeta
