/**
 * @file
 * Analytical-registry tests: the facade's analytical backends must
 * reproduce the direct src/model and src/engine calls they wrap, and
 * requests must validate against the registries.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "engine/area_model.hpp"
#include "engine/pipeline.hpp"
#include "kernels/network.hpp"
#include "model/dynamic_sparsity.hpp"
#include "model/vector_vs_matrix.hpp"
#include "sim/simulator.hpp"

namespace vegeta::sim {
namespace {

TEST(AnalyticalRegistry, BuiltinModelsRegistered)
{
    const auto registry = AnalyticalRegistry::builtin();
    for (const char *model :
         {"fig3-roofline", "fig4-vector-vs-matrix", "fig10-pipelining",
          "fig14-area-power", "fig14-area-breakdown",
          "fig15-unstructured", "blocksize-coverage",
          "blocksize-hardware"}) {
        EXPECT_TRUE(registry.contains(model)) << model;
        EXPECT_FALSE(registry.description(model).empty()) << model;
    }
    EXPECT_FALSE(registry.contains("no-such-model"));
    EXPECT_EQ(registry.find("no-such-model"), nullptr);
}

TEST(AnalyticalRegistry, AddReplacesByName)
{
    AnalyticalRegistry registry;
    registry.add("m", "first", [](const Simulator &,
                                  const AnalyticalRequest &) {
        return AnalyticalResult{};
    });
    registry.add("m", "second", [](const Simulator &,
                                   const AnalyticalRequest &) {
        return AnalyticalResult{};
    });
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.description("m"), "second");
}

TEST(Analytical, RequestValidation)
{
    const Simulator simulator;

    AnalyticalRequest request;
    request.model = "no-such-model";
    auto error = simulator.analyzeError(request);
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("no-such-model"), std::string::npos);

    request.model = "fig10-pipelining";
    request.engines = {"NOT-AN-ENGINE"};
    error = simulator.analyzeError(request);
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("NOT-AN-ENGINE"), std::string::npos);

    request.engines = {"VEGETA-S-16-2"};
    request.workloads = {"NOT-A-WORKLOAD"};
    error = simulator.analyzeError(request);
    ASSERT_TRUE(error.has_value());

    request.workloads = {"BERT-L1"};
    EXPECT_FALSE(simulator.analyzeError(request).has_value());
}

TEST(Analytical, VectorVsMatrixMatchesDirectModel)
{
    const Simulator simulator;
    AnalyticalRequest request;
    request.model = "fig4-vector-vs-matrix";
    const auto result = simulator.analyze(request);

    const auto direct = model::figure4Series({32, 64, 128});
    ASSERT_EQ(result.rows.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(result.number(i, "dim"), double(direct[i].dim));
        EXPECT_EQ(result.number(i, "vector_instrs"),
                  double(direct[i].vectorInstructions));
        EXPECT_EQ(result.number(i, "matrix_cycles"),
                  double(direct[i].matrixCycles));
    }
}

TEST(Analytical, AreaPowerMatchesDirectModel)
{
    const Simulator simulator;
    AnalyticalRequest request;
    request.model = "fig14-area-power";
    const auto result = simulator.analyze(request);

    const auto direct =
        engine::figure14Series(engine::allTableIIIConfigs());
    ASSERT_EQ(result.rows.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(result.text(i, "engine"), direct[i].name);
        EXPECT_NEAR(result.number(i, "norm_area"),
                    direct[i].normalizedArea, 1e-12);
        EXPECT_NEAR(result.number(i, "norm_power"),
                    direct[i].normalizedPower, 1e-12);
    }
    // Explicit engine selection narrows the series.
    request.engines = {"VEGETA-S-16-2"};
    const auto narrowed = simulator.analyze(request);
    ASSERT_EQ(narrowed.rows.size(), 1u);
    EXPECT_EQ(narrowed.text(0, "engine"), "VEGETA-S-16-2");
}

TEST(Analytical, PipeliningMatchesDirectSchedule)
{
    const Simulator simulator;
    AnalyticalRequest request;
    request.model = "fig10-pipelining";
    request.engines = {"VEGETA-S-16-2"};
    request.params["dependent"] = 1;
    request.params["output_forwarding"] = 1;
    const auto result = simulator.analyze(request);
    ASSERT_EQ(result.rows.size(), 4u);

    engine::PipelineModel model(engine::vegetaS162(), true);
    for (std::size_t i = 0; i < 4; ++i) {
        const auto op = model.issue(
            isa::makeTileGemm(isa::treg(5), isa::treg(4),
                              isa::treg(0)),
            0);
        EXPECT_EQ(result.number(i, "start"), double(op.start)) << i;
        EXPECT_EQ(result.number(i, "finish"), double(op.finish)) << i;
    }
}

TEST(Analytical, UnstructuredDegreeParamNarrowsSeries)
{
    const Simulator simulator;
    AnalyticalRequest request;
    request.model = "fig15-unstructured";
    request.workloads = {"BERT-L1", "BERT-L2"};
    request.params["degree"] = 0.95;
    const auto result = simulator.analyze(request);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.number(0, "degree_%"), 95.0);
    EXPECT_GT(result.number(0, "row-wise"), 1.0);
}

TEST(Analytical, BlockSizeBackendsProduceTradeoff)
{
    const Simulator simulator;

    AnalyticalRequest coverage;
    coverage.model = "blocksize-coverage";
    coverage.params["trials"] = 1;
    coverage.params["rows"] = 32;
    coverage.params["cols"] = 256;
    const auto cov = simulator.analyze(coverage);
    ASSERT_EQ(cov.rows.size(), 4u);
    // Larger M covers at least as tightly at every degree.
    for (std::size_t i = 0; i < cov.rows.size(); ++i)
        EXPECT_GE(cov.number(i, "M=16"), cov.number(i, "M=4")) << i;

    AnalyticalRequest hardware;
    hardware.model = "blocksize-hardware";
    const auto hw = simulator.analyze(hardware);
    ASSERT_EQ(hw.rows.size(), 3u);
    // ...but costs monotonically more area.
    EXPECT_LT(hw.number(0, "norm_area"), hw.number(1, "norm_area"));
    EXPECT_LT(hw.number(1, "norm_area"), hw.number(2, "norm_area"));
    EXPECT_EQ(hw.number(0, "metadata_bits/value"), 2.0);
    EXPECT_EQ(hw.number(2, "metadata_bits/value"), 4.0);
}

TEST(Analytical, ResultCellAccessorsAndTable)
{
    AnalyticalResult result;
    result.columns = {"name", "value"};
    auto &row = result.row();
    row.push_back(AnalyticalCell::text("alpha"));
    row.push_back(AnalyticalCell::number(1.25, 2));

    EXPECT_EQ(result.columnIndex("value"), 1u);
    EXPECT_EQ(result.text(0, "name"), "alpha");
    EXPECT_EQ(result.number(0, "value"), 1.25);
    EXPECT_EQ(result.rows[0][1].render(), "1.25");

    const Table table = result.table();
    EXPECT_EQ(table.numRows(), 1u);
}

TEST(Analytical, NetworkPolicyMatchesDirectModel)
{
    const Simulator simulator;
    AnalyticalRequest request;
    request.model = "network-policy";
    request.options["network"] = "resnet-front";
    request.engines = {"VEGETA-S-16-2"};
    const auto result = simulator.analyze(request);
    ASSERT_EQ(result.rows.size(), 1u);

    const auto net = kernels::resnetFrontNetwork();
    const auto config = simulator.engines().find("VEGETA-S-16-2");
    const auto lw = kernels::simulateNetwork(
        net, *config, kernels::NetworkPolicy::LayerWise);
    const auto nw = kernels::simulateNetwork(
        net, *config, kernels::NetworkPolicy::NetworkWise);
    EXPECT_EQ(result.number(0, "layer_wise_cycles"),
              double(lw.totalCycles));
    EXPECT_EQ(result.number(0, "network_wise_cycles"),
              double(nw.totalCycles));
    // Flexible hardware beats the network-wide pattern on a mixed net.
    EXPECT_GT(result.number(0, "network_wise_slowdown"), 1.0);
}

TEST(Analytical, DynamicSparsityMatchesDirectModel)
{
    const Simulator simulator;
    AnalyticalRequest request;
    request.model = "dynamic-sparsity";
    request.params["registers"] = 16;
    request.params["trials"] = 64;
    request.params["density"] = 0.2;
    const auto result = simulator.analyze(request);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.number(0, "density_%"), 20.0);

    const auto direct = model::compactionStudy({0.2}, 16, 64, 0xd15c0);
    ASSERT_EQ(direct.size(), 1u);
    EXPECT_EQ(result.number(0, "vector_merge_prob"),
              direct[0].vectorMergeProb);
    EXPECT_EQ(result.number(0, "tile_merge_prob"),
              direct[0].tileMergeProb);
    // Merging 32-lane registers stays practical far past the point
    // where 512-lane tiles stop merging (the Section VII argument).
    EXPECT_GT(result.number(0, "vector_merge_prob"),
              result.number(0, "tile_merge_prob"));
}

TEST(Analytical, JsonAndCsvWritersAreWellFormedEnough)
{
    AnalyticalResult result;
    result.model = "demo";
    result.columns = {"name", "value"};
    auto &row = result.row();
    row.push_back(AnalyticalCell::text("alpha \"quoted\""));
    row.push_back(AnalyticalCell::number(1.25, 2));
    result.notes = {"a note"};

    std::ostringstream json;
    writeJson(json, result);
    const std::string text = json.str();
    EXPECT_EQ(text.front(), '{');
    EXPECT_NE(text.find("\"model\": \"demo\""), std::string::npos);
    EXPECT_NE(text.find("\"name\": \"alpha \\\"quoted\\\"\""),
              std::string::npos);
    EXPECT_NE(text.find("\"value\": 1.25"), std::string::npos);
    EXPECT_NE(text.find("\"notes\": [\"a note\"]"), std::string::npos);

    std::ostringstream csv;
    writeCsv(csv, result);
    EXPECT_NE(csv.str().find("name,value"), std::string::npos);
}

TEST(Analytical, RooflineShapeChecks)
{
    const Simulator simulator;
    AnalyticalRequest request;
    request.model = "fig3-roofline";
    const auto result = simulator.analyze(request);
    ASSERT_GT(result.rows.size(), 0u);

    const std::size_t last = result.rows.size() - 1;
    // At 100% density, dense == sparse per engine class.
    EXPECT_EQ(result.number(last, "density_%"), 100.0);
    EXPECT_NEAR(result.number(last, "dense_matrix"),
                result.number(last, "sparse_matrix"), 1e-9);
    // At low density, sparse engines beat dense ones.
    EXPECT_GT(result.number(0, "sparse_matrix"),
              result.number(0, "dense_matrix"));
}

} // namespace
} // namespace vegeta::sim
