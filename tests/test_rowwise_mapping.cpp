/**
 * @file
 * Row-wise mapping tests (paper Section V-E, Figure 11).
 */

#include <gtest/gtest.h>

#include "engine/rowwise_mapping.hpp"

namespace vegeta::engine {
namespace {

TEST(RowWiseMapping, Figure11Example)
{
    // Figure 11: row 1 with 4:4, rows 2-3 with 2:4, last four rows
    // with 1:4 -- for a full tile: 4 rows 4:4 + 8 rows 2:4 + ... use
    // sum N = 32 combinations.
    const std::vector<u32> row_n = {4, 2, 2, 4, 4, 4, 2, 2, 1, 1, 1, 1};
    auto map = analyzeRowWiseMapping(row_n);
    EXPECT_EQ(map.rows, 12u);
    EXPECT_EQ(map.sumN, 4u * 4 + 4 * 2 + 4 * 1);
    EXPECT_DOUBLE_EQ(map.engineCols, 4 + 2 + 1);
}

TEST(RowWiseMapping, FullUtilizationAtBudget)
{
    EXPECT_TRUE(
        analyzeRowWiseMapping(std::vector<u32>(8, 4)).fullyUtilized);
    EXPECT_TRUE(
        analyzeRowWiseMapping(std::vector<u32>(16, 2)).fullyUtilized);
    EXPECT_TRUE(
        analyzeRowWiseMapping(std::vector<u32>(32, 1)).fullyUtilized);
    EXPECT_FALSE(
        analyzeRowWiseMapping(std::vector<u32>(7, 4)).fullyUtilized);
}

TEST(RowWiseMapping, HABoundsOfFullTiles)
{
    // HA varies from 8 (all 4:4) to 32 (all 1:4), Section V-E.
    EXPECT_EQ(analyzeRowWiseMapping(std::vector<u32>(8, 4)).rows,
              kRowWiseMinRows);
    EXPECT_EQ(analyzeRowWiseMapping(std::vector<u32>(32, 1)).rows,
              kRowWiseMaxRows);
}

TEST(RowWiseMapping, GroupAlignmentDetection)
{
    // 2:4 rows must come in pairs, 1:4 rows in quads.
    EXPECT_TRUE(analyzeRowWiseMapping({4, 2, 2, 1, 1, 1, 1})
                    .groupsAligned);
    EXPECT_FALSE(analyzeRowWiseMapping({2, 4, 2}).groupsAligned);
    EXPECT_FALSE(analyzeRowWiseMapping({1, 1, 1}).groupsAligned);
    EXPECT_FALSE(analyzeRowWiseMapping({1, 1, 2, 2, 1, 1})
                     .groupsAligned);
    EXPECT_TRUE(analyzeRowWiseMapping({2, 2, 1, 1, 1, 1, 4})
                    .groupsAligned);
}

TEST(RowWiseMapping, DmaReorderSortsDescending)
{
    const std::vector<u32> row_n = {1, 4, 2, 1, 4, 2};
    auto perm = dmaReorderPermutation(row_n);
    ASSERT_EQ(perm.size(), 6u);
    // Sorted values: 4, 4, 2, 2, 1, 1; stable within equal N.
    EXPECT_EQ(perm, (std::vector<u32>{1, 4, 2, 5, 0, 3}));
    std::vector<u32> sorted;
    for (u32 p : perm)
        sorted.push_back(row_n[p]);
    EXPECT_EQ(sorted, (std::vector<u32>{4, 4, 2, 2, 1, 1}));
}

TEST(RowWiseMapping, ReorderedTileIsAligned)
{
    const std::vector<u32> row_n = {1, 2, 1, 2, 1, 1, 4};
    auto perm = dmaReorderPermutation(row_n);
    std::vector<u32> sorted;
    for (u32 p : perm)
        sorted.push_back(row_n[p]);
    EXPECT_TRUE(analyzeRowWiseMapping(sorted).groupsAligned);
}

TEST(RowWiseMapping, RejectsIllegalN)
{
    setLoggingThrows(true);
    EXPECT_THROW(analyzeRowWiseMapping({3}), std::logic_error);
    EXPECT_THROW(analyzeRowWiseMapping({0}), std::logic_error);
    setLoggingThrows(false);
}

} // namespace
} // namespace vegeta::engine
