/**
 * @file
 * Golden-cycle regression matrix.
 *
 * Every value below was captured from the pre-streaming-refactor
 * replayer (full-trace vectors, unordered_map renaming, std::list
 * LRU) at commit 90d647f and is pinned exactly -- including the
 * macUtilization doubles, written as hex-float literals so the
 * comparison is bit-identical.  The streaming rewrite of TraceCpu is
 * required to be a pure performance change: any drift in totalCycles,
 * cache hits/misses, or utilization on this (engine, workload, N,
 * forwarding) matrix is a modeling regression, not noise.
 */

#include <gtest/gtest.h>

#include "sim/session.hpp"
#include "sim/simulator.hpp"
#include "sim/telemetry.hpp"

namespace vegeta::sim {
namespace {

struct GoldenPoint
{
    const char *engine;
    const char *workload;
    kernels::GemmDims dims;
    u32 patternN;
    bool outputForwarding;
    Cycles coreCycles;
    u64 instructions;
    u64 engineInstructions;
    u64 cacheHits;
    u64 cacheMisses;
    double macUtilization;
};

// Captured from the pre-refactor model (see file comment).
// clang-format off
const GoldenPoint kGolden[] = {
    {"VEGETA-D-1-2", "quick-small", {32, 32, 128}, 4, false, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"VEGETA-D-1-2", "quick-small", {32, 32, 128}, 4, true, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"VEGETA-D-1-2", "quick-small", {32, 32, 128}, 2, false, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"VEGETA-D-1-2", "quick-small", {32, 32, 128}, 2, true, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"VEGETA-D-1-2", "quick-small", {32, 32, 128}, 1, false, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"VEGETA-D-1-2", "quick-small", {32, 32, 128}, 1, true, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"VEGETA-D-1-2", "quick-square", {64, 64, 256}, 4, false, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"VEGETA-D-1-2", "quick-square", {64, 64, 256}, 4, true, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"VEGETA-D-1-2", "quick-square", {64, 64, 256}, 2, false, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"VEGETA-D-1-2", "quick-square", {64, 64, 256}, 2, true, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"VEGETA-D-1-2", "quick-square", {64, 64, 256}, 1, false, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"VEGETA-D-1-2", "quick-square", {64, 64, 256}, 1, true, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"VEGETA-S-16-2", "quick-small", {32, 32, 128}, 4, false, 1454, 223, 16, 192, 320, 0x1.68954dd2390bap-1},
    {"VEGETA-S-16-2", "quick-small", {32, 32, 128}, 4, true, 1430, 223, 16, 192, 320, 0x1.6ea28d118b474p-1},
    {"VEGETA-S-16-2", "quick-small", {32, 32, 128}, 2, false, 946, 179, 8, 192, 268, 0x1.151b9a3fdd5c9p-1},
    {"VEGETA-S-16-2", "quick-small", {32, 32, 128}, 2, true, 938, 179, 8, 192, 268, 0x1.1778a191bd684p-1},
    {"VEGETA-S-16-2", "quick-small", {32, 32, 128}, 1, false, 714, 149, 4, 192, 230, 0x1.6f26016f26017p-2},
    {"VEGETA-S-16-2", "quick-small", {32, 32, 128}, 1, true, 714, 149, 4, 192, 230, 0x1.6f26016f26017p-2},
    {"VEGETA-S-16-2", "quick-square", {64, 64, 256}, 4, false, 11602, 1071, 128, 1248, 2336, 0x1.6983fe694b81dp-1},
    {"VEGETA-S-16-2", "quick-square", {64, 64, 256}, 4, true, 9810, 1071, 128, 1248, 2336, 0x1.ab8dce001ab8ep-1},
    {"VEGETA-S-16-2", "quick-square", {64, 64, 256}, 2, false, 6474, 719, 64, 1832, 1336, 0x1.43ef3bde26c08p-1},
    {"VEGETA-S-16-2", "quick-square", {64, 64, 256}, 2, true, 5706, 719, 64, 1832, 1336, 0x1.6f88d6a26957ep-1},
    {"VEGETA-S-16-2", "quick-square", {64, 64, 256}, 1, false, 4010, 479, 32, 1944, 920, 0x1.057d829e119ebp-1},
    {"VEGETA-S-16-2", "quick-square", {64, 64, 256}, 1, true, 3754, 479, 32, 1944, 920, 0x1.175283c02ba4ep-1},
    {"VEGETA-S-1-2", "quick-small", {32, 32, 128}, 4, false, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"VEGETA-S-1-2", "quick-small", {32, 32, 128}, 4, true, 1542, 223, 16, 192, 320, 0x1.5401540154015p-1},
    {"VEGETA-S-1-2", "quick-small", {32, 32, 128}, 2, false, 1170, 179, 8, 192, 268, 0x1.c01c01c01c01cp-2},
    {"VEGETA-S-1-2", "quick-small", {32, 32, 128}, 2, true, 1050, 179, 8, 192, 268, 0x1.f3526859b8cecp-2},
    {"VEGETA-S-1-2", "quick-small", {32, 32, 128}, 1, false, 826, 149, 4, 192, 230, 0x1.3d5d991aa75c6p-2},
    {"VEGETA-S-1-2", "quick-small", {32, 32, 128}, 1, true, 826, 149, 4, 192, 230, 0x1.3d5d991aa75c6p-2},
    {"VEGETA-S-1-2", "quick-square", {64, 64, 256}, 4, false, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"VEGETA-S-1-2", "quick-square", {64, 64, 256}, 4, true, 10258, 1071, 128, 1248, 2336, 0x1.98e19a7a7c14fp-1},
    {"VEGETA-S-1-2", "quick-square", {64, 64, 256}, 2, false, 7594, 719, 64, 1832, 1336, 0x1.1428b90147f06p-1},
    {"VEGETA-S-1-2", "quick-square", {64, 64, 256}, 2, true, 6154, 719, 64, 1832, 1336, 0x1.54c7579b7f35bp-1},
    {"VEGETA-S-1-2", "quick-square", {64, 64, 256}, 1, false, 4682, 479, 32, 1944, 920, 0x1.bfeb00fbf4309p-2},
    {"VEGETA-S-1-2", "quick-square", {64, 64, 256}, 1, true, 4202, 479, 32, 1944, 920, 0x1.f315911e95625p-2},
    {"STC-like", "quick-small", {32, 32, 128}, 4, false, 1902, 223, 16, 192, 320, 0x1.13a6a0f9cf01ep-1},
    {"STC-like", "quick-small", {32, 32, 128}, 4, true, 1542, 223, 16, 192, 320, 0x1.5401540154015p-1},
    {"STC-like", "quick-small", {32, 32, 128}, 2, false, 1170, 179, 8, 192, 268, 0x1.c01c01c01c01cp-2},
    {"STC-like", "quick-small", {32, 32, 128}, 2, true, 1050, 179, 8, 192, 268, 0x1.f3526859b8cecp-2},
    {"STC-like", "quick-small", {32, 32, 128}, 1, false, 1170, 179, 8, 192, 268, 0x1.c01c01c01c01cp-2},
    {"STC-like", "quick-small", {32, 32, 128}, 1, true, 1050, 179, 8, 192, 268, 0x1.f3526859b8cecp-2},
    {"STC-like", "quick-square", {64, 64, 256}, 4, false, 13618, 1071, 128, 1248, 2336, 0x1.33ff3f80784fbp-1},
    {"STC-like", "quick-square", {64, 64, 256}, 4, true, 10258, 1071, 128, 1248, 2336, 0x1.98e19a7a7c14fp-1},
    {"STC-like", "quick-square", {64, 64, 256}, 2, false, 7594, 719, 64, 1832, 1336, 0x1.1428b90147f06p-1},
    {"STC-like", "quick-square", {64, 64, 256}, 2, true, 6154, 719, 64, 1832, 1336, 0x1.54c7579b7f35bp-1},
    {"STC-like", "quick-square", {64, 64, 256}, 1, false, 7594, 719, 64, 1832, 1336, 0x1.1428b90147f06p-1},
    {"STC-like", "quick-square", {64, 64, 256}, 1, true, 6154, 719, 64, 1832, 1336, 0x1.54c7579b7f35bp-1},
};
// clang-format on

TEST(GoldenCycles, MatrixIsBitIdenticalToPreRefactorModel)
{
    const Simulator simulator;
    for (const GoldenPoint &g : kGolden) {
        SCOPED_TRACE(std::string(g.engine) + " / " + g.workload +
                     " N=" + std::to_string(g.patternN) +
                     (g.outputForwarding ? " +OF" : ""));
        auto request = simulator.request()
                           .gemm(g.dims)
                           .engine(g.engine)
                           .pattern(g.patternN)
                           .outputForwarding(g.outputForwarding)
                           .build();
        ASSERT_TRUE(request.has_value());
        const SimulationResult result = simulator.run(*request);
        EXPECT_EQ(result.coreCycles, g.coreCycles);
        EXPECT_EQ(result.instructions, g.instructions);
        EXPECT_EQ(result.engineInstructions, g.engineInstructions);
        EXPECT_EQ(result.cacheHits, g.cacheHits);
        EXPECT_EQ(result.cacheMisses, g.cacheMisses);
        EXPECT_EQ(result.macUtilization, g.macUtilization)
            << "macUtilization must match bit for bit";
    }
}

TEST(GoldenCycles, NaiveKernelPoint)
{
    // Listing-1 kernel variant (C through memory inside the k loop),
    // captured from the same pre-refactor model.
    const Simulator simulator;
    auto request = simulator.request()
                       .gemm(kernels::GemmDims{32, 32, 128})
                       .engine("VEGETA-S-16-2")
                       .pattern(2)
                       .kernel(KernelVariant::Naive)
                       .build();
    ASSERT_TRUE(request.has_value());
    const SimulationResult result = simulator.run(*request);
    EXPECT_EQ(result.coreCycles, 2027u);
    EXPECT_EQ(result.instructions, 245u);
    EXPECT_EQ(result.cacheHits, 396u);
    EXPECT_EQ(result.cacheMisses, 268u);
    EXPECT_EQ(result.macUtilization, 0x1.02a6f64678fdap-2);
}

TEST(GoldenCycles, BatchReplayMatchesStreamingRun)
{
    // The facade's streaming path and a batch replay of the same
    // generated trace must agree on every golden point measurement.
    const Simulator simulator;
    const GoldenPoint &g = kGolden[20]; // S-16-2, quick-square, N=2
    auto request = simulator.request()
                       .gemm(g.dims)
                       .engine(g.engine)
                       .pattern(g.patternN)
                       .outputForwarding(g.outputForwarding)
                       .build();
    ASSERT_TRUE(request.has_value());
    cpu::Trace trace;
    simulator.run(*request, &trace); // batch path, trace captured
    const SimulationResult streamed = simulator.run(*request);
    const SimulationResult replayed =
        simulator.replay(trace, *request);
    EXPECT_EQ(replayed.coreCycles, g.coreCycles);
    EXPECT_EQ(streamed.coreCycles, replayed.coreCycles);
    EXPECT_EQ(streamed.cacheHits, replayed.cacheHits);
    EXPECT_EQ(streamed.cacheMisses, replayed.cacheMisses);
    EXPECT_EQ(streamed.macUtilization, replayed.macUtilization);
}

TEST(GoldenCycles, LanePackedBatchIsBitIdenticalForEveryWidth)
{
    // The whole golden matrix through Session::runBatch's lane packs:
    // every lane width must reproduce the pinned pre-refactor values
    // bit for bit, macUtilization included.  This is the end-to-end
    // pin of the LaneReplayer bit-exactness contract.
    std::vector<SimulationRequest> requests;
    requests.reserve(std::size(kGolden));
    {
        const Session session;
        for (const GoldenPoint &g : kGolden) {
            auto request = session.request()
                               .gemm(g.dims)
                               .engine(g.engine)
                               .pattern(g.patternN)
                               .outputForwarding(g.outputForwarding)
                               .build();
            ASSERT_TRUE(request.has_value());
            requests.push_back(*request);
        }
    }
    for (const u32 lanes : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("lane width " + std::to_string(lanes));
        // A fresh session per width: the in-memory result cache would
        // otherwise satisfy every later width without replaying.
        const Session session;
        const auto results = session.runBatch(requests, 1, lanes);
        ASSERT_EQ(results.size(), std::size(kGolden));
        for (std::size_t i = 0; i < results.size(); ++i) {
            const GoldenPoint &g = kGolden[i];
            SCOPED_TRACE(std::string(g.engine) + " / " + g.workload +
                         " N=" + std::to_string(g.patternN) +
                         (g.outputForwarding ? " +OF" : ""));
            EXPECT_EQ(results[i].coreCycles, g.coreCycles);
            EXPECT_EQ(results[i].instructions, g.instructions);
            EXPECT_EQ(results[i].engineInstructions,
                      g.engineInstructions);
            EXPECT_EQ(results[i].cacheHits, g.cacheHits);
            EXPECT_EQ(results[i].cacheMisses, g.cacheMisses);
            EXPECT_EQ(results[i].macUtilization, g.macUtilization)
                << "macUtilization must match bit for bit";
        }
    }
}

TEST(GoldenCycles, MatrixIsBitIdenticalWithTracingEnabled)
{
    // Telemetry observes and never steers: with span recording armed
    // (the --trace-out path), the batched golden matrix must still
    // match every pinned value bit for bit, and the run must actually
    // have recorded spans.
    telemetry::setTraceEnabled(true);
    telemetry::clearTrace();
    std::vector<SimulationRequest> requests;
    const Session session;
    for (const GoldenPoint &g : kGolden) {
        auto request = session.request()
                           .gemm(g.dims)
                           .engine(g.engine)
                           .pattern(g.patternN)
                           .outputForwarding(g.outputForwarding)
                           .build();
        ASSERT_TRUE(request.has_value());
        requests.push_back(*request);
    }
    const auto results = session.runBatch(requests, 2, 4);
    telemetry::setTraceEnabled(false);
    ASSERT_EQ(results.size(), std::size(kGolden));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const GoldenPoint &g = kGolden[i];
        SCOPED_TRACE(std::string(g.engine) + " / " + g.workload +
                     " N=" + std::to_string(g.patternN) +
                     (g.outputForwarding ? " +OF" : ""));
        EXPECT_EQ(results[i].coreCycles, g.coreCycles);
        EXPECT_EQ(results[i].instructions, g.instructions);
        EXPECT_EQ(results[i].cacheHits, g.cacheHits);
        EXPECT_EQ(results[i].cacheMisses, g.cacheMisses);
        EXPECT_EQ(results[i].macUtilization, g.macUtilization)
            << "macUtilization must match bit for bit";
    }
#ifndef VEGETA_NO_TELEMETRY
    EXPECT_GT(telemetry::traceSpanCount("session.batch.plan"), 0u)
        << "an armed golden batch must record its planning span";
    EXPECT_GT(telemetry::traceSpanCount("lane.replay"), 0u)
        << "an armed lane-packed batch must record replay spans";
#endif
    telemetry::clearTrace();
}

TEST(GoldenCycles, LanePacksAreThreadCountIndependent)
{
    // Lane packs and worker threads compose: any (threads, lanes)
    // combination is bit-identical to the serial single-stream batch.
    std::vector<SimulationRequest> requests;
    const Session builder;
    for (const GoldenPoint &g : kGolden) {
        auto request = builder.request()
                           .gemm(g.dims)
                           .engine(g.engine)
                           .pattern(g.patternN)
                           .outputForwarding(g.outputForwarding)
                           .build();
        ASSERT_TRUE(request.has_value());
        requests.push_back(*request);
    }
    const auto baseline = Session{}.runBatch(requests, 1, 1);
    const auto packed = Session{}.runBatch(requests, 3, 4);
    ASSERT_EQ(packed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(packed[i].coreCycles, baseline[i].coreCycles);
        EXPECT_EQ(packed[i].macUtilization,
                  baseline[i].macUtilization);
        EXPECT_EQ(packed[i].cacheHits, baseline[i].cacheHits);
        EXPECT_EQ(packed[i].cacheMisses, baseline[i].cacheMisses);
    }
}

} // namespace
} // namespace vegeta::sim
