/**
 * @file
 * Wire-framing tests (sim/wire): frames round-trip over real pipes,
 * every corruption mode (bad magic, unknown type, garbage length,
 * oversize length, checksum mismatch, truncated payload) parses to a
 * clean error, EOF before the first header byte is distinguishable
 * from damage, and the handshake payload pins the wire AND record
 * format versions.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include <unistd.h>

#include "sim/job_io.hpp"
#include "sim/wire.hpp"

namespace vegeta::sim::wire {
namespace {

/** A pipe pair that closes whatever is still open at scope exit. */
struct Pipe
{
    int fds[2] = {-1, -1};

    Pipe() { EXPECT_EQ(pipe(fds), 0); }

    ~Pipe()
    {
        closeRead();
        closeWrite();
    }

    void closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }

    void closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

void
writeRaw(int fd, const std::string &bytes)
{
    ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
}

TEST(Wire, FramesRoundTripOverAPipe)
{
    Pipe p;
    const std::string payloads[] = {
        "",
        "short",
        std::string("binary\0бинарный\tstuff\n", 28),
        std::string(70'000, 'x'), // bigger than one pipe buffer
    };
    const FrameType types[] = {FrameType::Hello, FrameType::Batch,
                               FrameType::Results, FrameType::Bye};
    // Writer thread: a >64KiB payload cannot fit the pipe buffer, so
    // write and read must proceed concurrently.
    std::thread writer([&]() {
        for (std::size_t i = 0; i < std::size(payloads); ++i) {
            std::string error;
            EXPECT_TRUE(
                writeFrame(p.fds[1], types[i], payloads[i], &error))
                << error;
        }
        p.closeWrite();
    });
    for (std::size_t i = 0; i < std::size(payloads); ++i) {
        Frame frame;
        std::string error;
        ASSERT_TRUE(readFrame(p.fds[0], &frame, 5'000, &error))
            << error;
        EXPECT_EQ(frame.type, types[i]);
        EXPECT_EQ(frame.payload, payloads[i]);
    }
    // After the last frame the writer closed: clean EOF, not damage.
    Frame frame;
    std::string error;
    bool clean_eof = false;
    EXPECT_FALSE(
        readFrame(p.fds[0], &frame, 5'000, &error, &clean_eof));
    EXPECT_TRUE(clean_eof);
    writer.join();
}

TEST(Wire, CorruptHeadersRejectCleanly)
{
    const std::string good = encodeFrame(FrameType::Batch, "payload");
    const std::string corrupt[] = {
        "xgw1 batch 7 0000000000000000\n" + good.substr(good.find('\n') + 1),
        "vgw1 frobnicate 7 0000000000000000\npayload",
        "vgw1 batch seven 0000000000000000\npayload",
        "vgw1 batch -7 0000000000000000\npayload",
        "vgw1 batch 7 zzzz\npayload",
        "vgw1 batch 7\npayload",                       // missing field
        "vgw1 batch 7 0000000000000000 extra\npayload", // trailing junk
    };
    for (const auto &bytes : corrupt) {
        Pipe p;
        writeRaw(p.fds[1], bytes);
        p.closeWrite();
        Frame frame;
        std::string error;
        bool clean_eof = false;
        EXPECT_FALSE(
            readFrame(p.fds[0], &frame, 1'000, &error, &clean_eof))
            << bytes;
        EXPECT_FALSE(clean_eof) << bytes;
        EXPECT_FALSE(error.empty()) << bytes;
    }
}

TEST(Wire, OversizePayloadLengthRejectedBeforeReading)
{
    // A garbage length far past kMaxFramePayload must be rejected
    // from the header alone -- no attempt to allocate or read it.
    Pipe p;
    writeRaw(p.fds[1], "vgw1 batch 999999999999 0000000000000000\n");
    p.closeWrite();
    Frame frame;
    std::string error;
    EXPECT_FALSE(readFrame(p.fds[0], &frame, 1'000, &error));
    EXPECT_NE(error.find("length"), std::string::npos) << error;
}

TEST(Wire, ChecksumMismatchRejects)
{
    std::string bytes = encodeFrame(FrameType::Results, "payload");
    // Flip one payload byte after the header line: the checksum in
    // the (untouched) header no longer matches.
    bytes.back() = bytes.back() == 'd' ? 'D' : 'd';
    Pipe p;
    writeRaw(p.fds[1], bytes);
    p.closeWrite();
    Frame frame;
    std::string error;
    EXPECT_FALSE(readFrame(p.fds[0], &frame, 1'000, &error));
    EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(Wire, TruncatedPayloadIsErrorNotCleanEof)
{
    const std::string good = encodeFrame(FrameType::Batch, "payload");
    Pipe p;
    writeRaw(p.fds[1], good.substr(0, good.size() - 3));
    p.closeWrite();
    Frame frame;
    std::string error;
    bool clean_eof = false;
    EXPECT_FALSE(
        readFrame(p.fds[0], &frame, 1'000, &error, &clean_eof));
    EXPECT_FALSE(clean_eof);
}

TEST(Wire, ReadTimesOutOnASilentPeer)
{
    Pipe p; // nothing ever written
    Frame frame;
    std::string error;
    bool clean_eof = false;
    EXPECT_FALSE(
        readFrame(p.fds[0], &frame, 50, &error, &clean_eof));
    EXPECT_FALSE(clean_eof);
    EXPECT_NE(error.find("timed out"), std::string::npos) << error;
}

TEST(Wire, ReadStopsExactlyAtFrameBoundary)
{
    // Two frames written back-to-back: reading the first must not
    // consume a single byte of the second.
    Pipe p;
    writeRaw(p.fds[1], encodeFrame(FrameType::Batch, "first") +
                           encodeFrame(FrameType::Results, "second"));
    p.closeWrite();
    Frame frame;
    std::string error;
    ASSERT_TRUE(readFrame(p.fds[0], &frame, 1'000, &error)) << error;
    EXPECT_EQ(frame.payload, "first");
    ASSERT_TRUE(readFrame(p.fds[0], &frame, 1'000, &error)) << error;
    EXPECT_EQ(frame.type, FrameType::Results);
    EXPECT_EQ(frame.payload, "second");
}

TEST(Wire, HelloPayloadPinsWireAndRecordVersions)
{
    // The handshake must change whenever the wire revision OR either
    // record format revs: that is the property that keeps mismatched
    // builds from silently misreading each other's records.
    const std::string hello = helloPayload();
    EXPECT_NE(hello.find("vegeta-wire"), std::string::npos);
    EXPECT_NE(hello.find(jobFileHeader()), std::string::npos);
    EXPECT_NE(hello.find(resultFileHeader()), std::string::npos);
}

TEST(Wire, FrameTypeNamesAreDistinct)
{
    const FrameType all[] = {FrameType::Hello,   FrameType::HelloAck,
                             FrameType::Batch,   FrameType::Results,
                             FrameType::Error,   FrameType::Bye};
    for (const auto a : all) {
        for (const auto b : all) {
            if (a != b) {
                EXPECT_STRNE(frameTypeName(a), frameTypeName(b));
            }
        }
    }
}

} // namespace
} // namespace vegeta::sim::wire
