/**
 * @file
 * Tile/metadata register file tests, especially the treg/ureg/vreg
 * aliasing of Figure 6.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "isa/registers.hpp"

namespace vegeta::isa {
namespace {

TEST(RegClass, Geometry)
{
    EXPECT_EQ(regClassRowBytes(RegClass::Treg), 64u);
    EXPECT_EQ(regClassRowBytes(RegClass::Ureg), 128u);
    EXPECT_EQ(regClassRowBytes(RegClass::Vreg), 256u);
    EXPECT_EQ(regClassBytes(RegClass::Treg), 1024u);
    EXPECT_EQ(regClassBytes(RegClass::Ureg), 2048u);
    EXPECT_EQ(regClassBytes(RegClass::Vreg), 4096u);
    EXPECT_EQ(regClassCount(RegClass::Treg), 8u);
    EXPECT_EQ(regClassCount(RegClass::Ureg), 4u);
    EXPECT_EQ(regClassCount(RegClass::Vreg), 2u);
}

TEST(TileReg, BackingTregs)
{
    EXPECT_EQ(ureg(1).firstTreg(), 2u);
    EXPECT_EQ(ureg(1).numTregs(), 2u);
    EXPECT_EQ(vreg(1).firstTreg(), 4u);
    EXPECT_EQ(vreg(1).numTregs(), 4u);
    EXPECT_EQ(treg(5).firstTreg(), 5u);
    EXPECT_EQ(treg(5).toString(), "treg5");
    EXPECT_EQ(vreg(0).toString(), "vreg0");
}

TEST(TileRegisterFile, ByteReadWrite)
{
    TileRegisterFile rf;
    rf.writeByte(treg(3), 5, 17, 0xab);
    EXPECT_EQ(rf.readByte(treg(3), 5, 17), 0xab);
    EXPECT_EQ(rf.readByte(treg(3), 5, 18), 0x00);
}

TEST(TileRegisterFile, UregAliasesTwoTregs)
{
    TileRegisterFile rf;
    // ureg0 row r = treg0 row r (bytes 0-63) ++ treg1 row r (64-127).
    rf.writeByte(treg(0), 2, 10, 0x11);
    rf.writeByte(treg(1), 2, 10, 0x22);
    EXPECT_EQ(rf.readByte(ureg(0), 2, 10), 0x11);
    EXPECT_EQ(rf.readByte(ureg(0), 2, 64 + 10), 0x22);

    rf.writeByte(ureg(0), 7, 100, 0x33);
    EXPECT_EQ(rf.readByte(treg(1), 7, 36), 0x33);
}

TEST(TileRegisterFile, VregAliasesFourTregs)
{
    TileRegisterFile rf;
    rf.writeByte(treg(4), 0, 0, 0xa1);
    rf.writeByte(treg(5), 0, 0, 0xa2);
    rf.writeByte(treg(6), 0, 0, 0xa3);
    rf.writeByte(treg(7), 0, 0, 0xa4);
    EXPECT_EQ(rf.readByte(vreg(1), 0, 0), 0xa1);
    EXPECT_EQ(rf.readByte(vreg(1), 0, 64), 0xa2);
    EXPECT_EQ(rf.readByte(vreg(1), 0, 128), 0xa3);
    EXPECT_EQ(rf.readByte(vreg(1), 0, 192), 0xa4);
}

TEST(TileRegisterFile, BF16Elements)
{
    TileRegisterFile rf;
    rf.writeBF16(treg(2), 3, 17, BF16(1.5f));
    EXPECT_EQ(rf.readBF16(treg(2), 3, 17).toFloat(), 1.5f);
    // A treg row holds 32 BF16, a ureg row 64, a vreg row 128.
    rf.writeBF16(ureg(1), 0, 63, BF16(-2.0f));
    EXPECT_EQ(rf.readBF16(ureg(1), 0, 63).toFloat(), -2.0f);
    rf.writeBF16(vreg(0), 15, 127, BF16(3.0f));
    EXPECT_EQ(rf.readBF16(vreg(0), 15, 127).toFloat(), 3.0f);
}

TEST(TileRegisterFile, F32Elements)
{
    TileRegisterFile rf;
    rf.writeF32(treg(0), 1, 15, 3.14159f);
    EXPECT_EQ(rf.readF32(treg(0), 1, 15), 3.14159f);
}

TEST(TileRegisterFile, F32LinearSpansBackingTregs)
{
    TileRegisterFile rf;
    // Element 300 of a ureg: byte offset 1200 -> logical row 9,
    // byte 48 -> within treg 2k (first half of the row).
    rf.writeF32Linear(ureg(1), 300, 42.0f);
    EXPECT_EQ(rf.readF32Linear(ureg(1), 300), 42.0f);
    EXPECT_EQ(rf.readF32(treg(2), 9, 12), 42.0f);

    // Element 500: byte offset 2000 -> row 15, byte 80 -> second treg.
    rf.writeF32Linear(ureg(1), 500, -7.0f);
    EXPECT_EQ(rf.readF32(treg(3), 15, (2000 % 128 - 64) / 4), -7.0f);
}

TEST(TileRegisterFile, ReadWriteAllRoundTrip)
{
    TileRegisterFile rf;
    Rng rng(1);
    std::vector<u8> image(2048);
    for (auto &b : image)
        b = static_cast<u8>(rng.next());
    rf.writeAll(ureg(2), image);
    EXPECT_EQ(rf.readAll(ureg(2)), image);
    // And the aliased tregs see the interleaved halves.
    auto t4 = rf.readAll(treg(4));
    EXPECT_EQ(t4[0], image[0]);
    auto t5 = rf.readAll(treg(5));
    EXPECT_EQ(t5[0], image[64]);
}

TEST(TileRegisterFile, OutOfRangePanics)
{
    setLoggingThrows(true);
    TileRegisterFile rf;
    EXPECT_THROW(rf.readByte(treg(8), 0, 0), std::logic_error);
    EXPECT_THROW(rf.readByte(treg(0), 16, 0), std::logic_error);
    EXPECT_THROW(rf.readByte(treg(0), 0, 64), std::logic_error);
    EXPECT_THROW(rf.readByte(ureg(4), 0, 0), std::logic_error);
    EXPECT_THROW(rf.readByte(vreg(2), 0, 0), std::logic_error);
    setLoggingThrows(false);
}

TEST(MetadataReg, CodeAccessors)
{
    MetadataReg m;
    m.setCode(0, 3);
    m.setCode(1, 1);
    m.setCode(511, 2);
    EXPECT_EQ(m.code(0), 3u);
    EXPECT_EQ(m.code(1), 1u);
    EXPECT_EQ(m.code(2), 0u);
    EXPECT_EQ(m.code(511), 2u);
    // Codes pack 4 per byte, little-endian.
    EXPECT_EQ(m.body[0], 0x07);
}

TEST(MetadataReg, RowDescriptors)
{
    MetadataReg m;
    m.rowDesc[0] = 0b10'01'00'10; // rows 0..3: codes 2,0,1,2
    EXPECT_EQ(m.rowDescCode(0), 2u);
    EXPECT_EQ(m.rowDescCode(1), 0u);
    EXPECT_EQ(m.rowDescCode(2), 1u);
    EXPECT_EQ(m.rowDescCode(3), 2u);
}

TEST(MetadataRegisterFile, EightRegisters)
{
    MetadataRegisterFile mrf;
    mrf.reg(7).setCode(3, 2);
    EXPECT_EQ(mrf.reg(7).code(3), 2u);
    EXPECT_EQ(mrf.reg(0).code(3), 0u);
    setLoggingThrows(true);
    EXPECT_THROW(mrf.reg(8), std::logic_error);
    setLoggingThrows(false);
}

} // namespace
} // namespace vegeta::isa
