/**
 * @file
 * Persistent result-cache tests: round-trips are bit-identical,
 * a version-mismatched file is invalidated wholesale, corrupt or
 * truncated records degrade to misses (never wrong results), and two
 * sequential Sessions share results through the same cache directory.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "expect_identical.hpp"
#include "sim/session.hpp"

namespace vegeta::sim {
namespace {

namespace fs = std::filesystem;

/** A fresh (empty) cache directory under the test temp dir. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "vegeta_disk_cache" / name;
    fs::remove_all(dir);
    return dir.string();
}

SimulationResult
sampleResult(const std::string &tag, double util)
{
    SimulationResult result;
    result.workload = tag;
    result.engine = "VEGETA-S-2-2";
    result.layerN = 2;
    result.executedN = 2;
    result.outputForwarding = true;
    result.kernel = "optimized";
    result.coreCycles = 12345;
    result.instructions = 678;
    result.engineInstructions = 90;
    result.tileComputes = 12;
    result.macUtilization = util;
    result.cacheHits = 3;
    result.cacheMisses = 4;
    return result;
}

TEST(DiskCache, RoundTripsAcrossInstances)
{
    const std::string dir = freshDir("roundtrip");
    // 0.1 has no exact double representation: the bit-pattern
    // serialization must still round-trip it exactly.
    const SimulationResult original = sampleResult("w", 0.1);
    {
        DiskResultCache cache(dir);
        ASSERT_TRUE(cache.ok());
        EXPECT_FALSE(cache.find("key-a").has_value());
        cache.insert("key-a", original);
        EXPECT_EQ(cache.size(), 1u);
    }
    DiskResultCache reopened(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.stats().loaded, 1u);
    const auto hit = reopened.find("key-a");
    ASSERT_TRUE(hit.has_value());
    expectIdenticalSim(*hit, original);
    EXPECT_EQ(reopened.stats().hits, 1u);
}

TEST(DiskCache, FirstInsertWins)
{
    const std::string dir = freshDir("first_wins");
    DiskResultCache cache(dir);
    cache.insert("k", sampleResult("first", 0.5));
    cache.insert("k", sampleResult("second", 0.75));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_EQ(cache.find("k")->workload, "first");
}

TEST(DiskCache, VersionMismatchInvalidatesWholeFile)
{
    const std::string dir = freshDir("version");
    {
        DiskResultCache cache(dir);
        cache.insert("k", sampleResult("w", 0.5));
    }
    // Rewrite the header to a future version: every record after it
    // must be ignored (a format change never risks misreads).
    const fs::path file = fs::path(dir) / "results.vgc";
    std::string text;
    {
        std::ifstream is(file);
        std::stringstream buffer;
        buffer << is.rdbuf();
        text = buffer.str();
    }
    text.replace(text.find("v2"), 2, "v9");
    {
        std::ofstream os(file, std::ios::trunc);
        os << text;
    }

    DiskResultCache reopened(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 0u);
    EXPECT_TRUE(reopened.stats().versionMismatch);
    EXPECT_FALSE(reopened.find("k").has_value());

    // The next insert rewrites the file under the current header...
    reopened.insert("k2", sampleResult("w2", 0.25));
    DiskResultCache third(dir);
    EXPECT_FALSE(third.stats().versionMismatch);
    EXPECT_EQ(third.size(), 1u);
    ASSERT_TRUE(third.find("k2").has_value());
}

TEST(DiskCache, TruncatedAndCorruptRecordsDegradeToMisses)
{
    const std::string dir = freshDir("corrupt");
    const SimulationResult good = sampleResult("good", 0.5);
    {
        DiskResultCache cache(dir);
        cache.insert("good-key", good);
        cache.insert("rotten-key", sampleResult("rotten", 0.25));
    }
    const fs::path file = fs::path(dir) / "results.vgc";
    std::string text;
    {
        std::ifstream is(file);
        std::stringstream buffer;
        buffer << is.rdbuf();
        text = buffer.str();
    }
    // Silent bit rot inside a value field: tamper the coreCycles
    // digits of the second record without touching its shape.  The
    // per-record checksum must reject it (a miss, not a wrong hit).
    const auto rotten = text.find("\t12345\t", text.find("rotten"));
    ASSERT_NE(rotten, std::string::npos);
    text.replace(rotten, 7, "\t19345\t");
    {
        // Plus a field-count-corrupt record, a number-corrupt record,
        // and a truncated tail (no newline, cut mid-record).
        std::ofstream os(file, std::ios::trunc);
        os << text;
        os << "short-key\tonly\tthree\n";
        os << "bad-num\tw\te\tNaN\t2\t1\topt\t1\t1\t1\t1\tzz\t0\t0\n";
        os << "trunc-key\tw\te\t2";
    }
    DiskResultCache reopened(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.stats().loaded, 1u);
    EXPECT_EQ(reopened.stats().rejected, 4u);
    const auto hit = reopened.find("good-key");
    ASSERT_TRUE(hit.has_value());
    expectIdenticalSim(*hit, good);
    EXPECT_FALSE(reopened.find("rotten-key").has_value());
    EXPECT_FALSE(reopened.find("trunc-key").has_value());
}

TEST(DiskCache, LegacyV1FileIsInvalidatedWholesale)
{
    const std::string dir = freshDir("legacy_v1");
    fs::create_directories(dir);
    {
        // A file exactly as the pre-analytical v1 build wrote it
        // (no type tag, checksum over the old record shape).  The
        // version bump must invalidate it wholesale rather than
        // guess at its records.
        std::ofstream os(fs::path(dir) / "results.vgc");
        os << "vegeta-result-cache v1\n";
        os << "some-key\tw\tVEGETA-S-2-2\t2\t2\t1\toptimized\t12345"
              "\t678\t90\t12\t3fb999999999999a\t3\t4\t"
              "0123456789abcdef\n";
    }
    DiskResultCache cache(dir);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.stats().versionMismatch);
    EXPECT_FALSE(cache.find("some-key").has_value());
    // The next insert rewrites the file under the v2 header.
    cache.insert("k", sampleResult("w", 0.5));
    DiskResultCache reopened(dir);
    EXPECT_FALSE(reopened.stats().versionMismatch);
    EXPECT_EQ(reopened.size(), 1u);
}

AnalyticalResult
sampleAnalysis(const std::string &model)
{
    AnalyticalResult result;
    result.model = model;
    result.columns = {"design", "value"};
    auto &first = result.row();
    first.push_back(AnalyticalCell::text("VEGETA-S-16-2"));
    // 0.1 exercises the bit-pattern round trip; precision -1 the
    // signed field.
    first.push_back(AnalyticalCell::number(0.1, 4));
    auto &second = result.row();
    second.push_back(AnalyticalCell::text("odd\ttext %25\nlines"));
    second.push_back(AnalyticalCell::number(-3.25e-17, 0));
    result.notes = {"a note", "another\twith tabs"};
    return result;
}

TEST(DiskCache, AnalyticalResultsRoundTripAcrossInstances)
{
    const std::string dir = freshDir("analytical");
    const AnalyticalResult original = sampleAnalysis("fig15");
    {
        DiskResultCache cache(dir);
        ASSERT_TRUE(cache.ok());
        EXPECT_FALSE(cache.findAnalysis("ana-key").has_value());
        cache.insertAnalysis("ana-key", original);
        // Simulation and analysis entries coexist in one file and
        // never collide, even under the same key text.
        cache.insert("ana-key", sampleResult("sim-under-same-key",
                                             0.5));
        EXPECT_EQ(cache.size(), 2u);
    }
    DiskResultCache reopened(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.stats().loaded, 2u);
    EXPECT_EQ(reopened.stats().simulationEntries, 1u);
    EXPECT_EQ(reopened.stats().analysisEntries, 1u);
    const auto hit = reopened.findAnalysis("ana-key");
    ASSERT_TRUE(hit.has_value());
    expectIdenticalAnalysis(*hit, original);
    EXPECT_EQ(reopened.find("ana-key")->workload,
              "sim-under-same-key");
}

TEST(DiskCache, MergeFromUnionsFirstInsertWins)
{
    const std::string dst_dir = freshDir("merge_dst");
    const std::string src_dir = freshDir("merge_src");
    {
        DiskResultCache dst(dst_dir);
        dst.insert("shared", sampleResult("dst-version", 0.25));
        dst.insert("dst-only", sampleResult("dst", 0.5));
    }
    {
        DiskResultCache src(src_dir);
        src.insert("shared", sampleResult("src-version", 0.75));
        src.insert("src-only", sampleResult("src", 0.1));
        src.insertAnalysis("src-analysis", sampleAnalysis("fig15"));
    }

    DiskResultCache dst(dst_dir);
    DiskResultCache src(src_dir);
    const auto merge = dst.mergeFrom(src);
    EXPECT_EQ(merge.added, 2u);   // src-only + src-analysis
    EXPECT_EQ(merge.skipped, 1u); // "shared": dst already has it
    EXPECT_EQ(dst.size(), 4u);
    // First insert wins across caches too: the destination's value
    // survives the merge.
    EXPECT_EQ(dst.find("shared")->workload, "dst-version");
    EXPECT_EQ(dst.find("src-only")->workload, "src");
    ASSERT_TRUE(dst.findAnalysis("src-analysis").has_value());

    // The union persisted: a reopened destination sees everything,
    // bit-identical, and the source is untouched.
    DiskResultCache reopened(dst_dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.stats().loaded, 4u);
    expectIdenticalSim(*reopened.find("src-only"),
                       *src.find("src-only"));
    expectIdenticalAnalysis(*reopened.findAnalysis("src-analysis"),
                            *src.findAnalysis("src-analysis"));
    DiskResultCache src_reopened(src_dir);
    EXPECT_EQ(src_reopened.size(), 3u);
    EXPECT_EQ(src_reopened.find("shared")->workload, "src-version");
}

TEST(DiskCache, MergeFromEmptySourceAddsNothing)
{
    const std::string dst_dir = freshDir("merge_empty_dst");
    const std::string src_dir = freshDir("merge_empty_src");
    DiskResultCache dst(dst_dir);
    dst.insert("k", sampleResult("w", 0.5));
    DiskResultCache src(src_dir);
    const auto merge = dst.mergeFrom(src);
    EXPECT_EQ(merge.added, 0u);
    EXPECT_EQ(merge.skipped, 0u);
    EXPECT_EQ(dst.size(), 1u);
}

TEST(DiskCache, MergeChainsAcrossSeveralSources)
{
    // The CLI's `cache merge DST SRC...` shape: fold several sweep
    // shards into one, then merge the union into a populated cache.
    const std::string a_dir = freshDir("merge_chain_a");
    const std::string b_dir = freshDir("merge_chain_b");
    const std::string dst_dir = freshDir("merge_chain_dst");
    {
        DiskResultCache a(a_dir);
        a.insert("ka", sampleResult("a", 0.1));
        a.insert("shared", sampleResult("a-shared", 0.2));
        DiskResultCache b(b_dir);
        b.insert("kb", sampleResult("b", 0.3));
        b.insert("shared", sampleResult("b-shared", 0.4));
    }
    DiskResultCache dst(dst_dir);
    DiskResultCache a(a_dir);
    DiskResultCache b(b_dir);
    const auto first = dst.mergeFrom(a);
    EXPECT_EQ(first.added, 2u);
    const auto second = dst.mergeFrom(b);
    EXPECT_EQ(second.added, 1u);
    EXPECT_EQ(second.skipped, 1u); // "shared" came from a first
    EXPECT_EQ(dst.find("shared")->workload, "a-shared");
    DiskResultCache reopened(dst_dir);
    EXPECT_EQ(reopened.size(), 3u);
}

TEST(DiskCache, SessionPersistsAnalyticalResults)
{
    const std::string dir = freshDir("session_analytical");

    Session first;
    first.attachDiskCache(dir);
    auto builder = first.job()
                       .model("fig15-unstructured")
                       .param("degree", 0.95);
    const auto job = builder.build();
    ASSERT_TRUE(job.has_value()) << builder.error();
    const auto cold = first.run(*job).analysis;
    EXPECT_EQ(first.analysesPerformed(), 1u);

    // A second session on the same directory serves the analysis
    // from disk without evaluating the backend.
    Session second;
    second.attachDiskCache(dir);
    const auto warm = second.run(*job).analysis;
    expectIdenticalAnalysis(warm, cold);
    EXPECT_EQ(second.analysesPerformed(), 0u);
    EXPECT_EQ(second.diskCache()->stats().hits, 1u);
}

TEST(DiskCache, PruneKeepsTheMostRecentlyAppendedEntries)
{
    const std::string dir = freshDir("prune_entries");
    DiskResultCache cache(dir);
    for (int i = 0; i < 6; ++i)
        cache.insert("k" + std::to_string(i),
                     sampleResult("w" + std::to_string(i), 0.5));
    cache.insertAnalysis("a0", sampleAnalysis("m0"));

    const auto pruned = cache.prune(std::nullopt, 3);
    EXPECT_EQ(pruned.kept, 3u);
    EXPECT_EQ(pruned.dropped, 4u);
    EXPECT_GT(pruned.fileBytes, 0u);

    // Most-recently-appended survive: k4, k5, and the analysis.
    EXPECT_FALSE(cache.find("k0").has_value());
    EXPECT_FALSE(cache.find("k3").has_value());
    EXPECT_TRUE(cache.find("k4").has_value());
    EXPECT_TRUE(cache.find("k5").has_value());
    EXPECT_TRUE(cache.findAnalysis("a0").has_value());

    // The compaction persisted: a reopen sees only the kept set.
    DiskResultCache reopened(dir);
    EXPECT_EQ(reopened.size(), 3u);
    EXPECT_FALSE(reopened.find("k0").has_value());
    EXPECT_TRUE(reopened.findAnalysis("a0").has_value());
}

TEST(DiskCache, PruneByBytesBoundsTheFile)
{
    const std::string dir = freshDir("prune_bytes");
    DiskResultCache cache(dir);
    for (int i = 0; i < 8; ++i)
        cache.insert("k" + std::to_string(i),
                     sampleResult("w" + std::to_string(i), 0.25));
    const u64 before = cache.stats().fileBytes;
    ASSERT_GT(before, 0u);

    const u64 budget = before / 2;
    const auto pruned = cache.prune(budget, std::nullopt);
    EXPECT_LE(pruned.fileBytes, budget);
    EXPECT_EQ(pruned.fileBytes, cache.stats().fileBytes);
    EXPECT_GT(pruned.kept, 0u);
    EXPECT_EQ(pruned.kept + pruned.dropped, 8u);
    // Newest survive, oldest go.
    EXPECT_TRUE(cache.find("k7").has_value());
    EXPECT_FALSE(cache.find("k0").has_value());

    // A no-op prune (already under budget) drops nothing.
    const auto again = cache.prune(before, 8u);
    EXPECT_EQ(again.dropped, 0u);
    EXPECT_EQ(again.kept, pruned.kept);
}

TEST(DiskCache, HitRateTracksTraffic)
{
    const std::string dir = freshDir("hit_rate");
    DiskResultCache cache(dir);
    EXPECT_EQ(cache.stats().hitRate(), 0.0); // no traffic yet
    cache.insert("k", sampleResult("w", 0.5));
    EXPECT_TRUE(cache.find("k").has_value());  // hit
    EXPECT_FALSE(cache.find("x").has_value()); // miss
    EXPECT_FALSE(cache.find("y").has_value()); // miss
    const DiskCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 1.0 / 3.0);
}

TEST(DiskCache, LastPruneBytesPersistsAcrossProcesses)
{
    const std::string dir = freshDir("last_prune");
    u64 reclaimed = 0;
    {
        DiskResultCache cache(dir);
        for (int i = 0; i < 8; ++i)
            cache.insert("k" + std::to_string(i),
                         sampleResult("w" + std::to_string(i), 0.25));
        EXPECT_EQ(cache.stats().lastPruneBytes, 0u);
        const auto pruned = cache.prune(std::nullopt, 2u);
        reclaimed = pruned.reclaimedBytes;
        ASSERT_GT(reclaimed, 0u);
        EXPECT_EQ(cache.stats().lastPruneBytes, reclaimed);
    }
    // A fresh instance (a new process in real life) reads the
    // persisted prune note back from the cache directory.
    DiskResultCache reopened(dir);
    EXPECT_EQ(reopened.stats().lastPruneBytes, reclaimed);
}

TEST(DiskCache, PruneCompactsDuplicateAndGarbageLines)
{
    const std::string dir = freshDir("prune_compact");
    std::string duplicate;
    {
        DiskResultCache cache(dir);
        cache.insert("k0", sampleResult("w0", 0.5));
        cache.insert("k1", sampleResult("w1", 0.5));
    }
    const fs::path file = fs::path(dir) / "results.vgc";
    {
        // Simulate a concurrent writer appending the same key again
        // (load dedupes it, but the line stays on disk) plus a
        // rejected garbage line.
        std::ifstream is(file);
        std::string header, record;
        std::getline(is, header);
        std::getline(is, record);
        duplicate = record;
    }
    {
        std::ofstream os(file, std::ios::app);
        os << duplicate << "\n";
        os << "garbage line that fails its checksum\n";
    }

    DiskResultCache cache(dir);
    EXPECT_EQ(cache.size(), 2u);
    const u64 bloated = cache.stats().fileBytes;

    // Nothing needs dropping under this budget, but the file itself
    // is over it: prune must still compact the dup/garbage away.
    const auto pruned = cache.prune(bloated - 1, std::nullopt);
    EXPECT_EQ(pruned.dropped, 0u);
    EXPECT_EQ(pruned.kept, 2u);
    EXPECT_LT(pruned.fileBytes, bloated);
    EXPECT_TRUE(cache.find("k0").has_value());
    EXPECT_TRUE(cache.find("k1").has_value());
    DiskResultCache reopened(dir);
    EXPECT_EQ(reopened.size(), 2u);
    EXPECT_EQ(reopened.stats().rejected, 0u);
}

TEST(DiskCache, GarbageFileIsAnEmptyCache)
{
    const std::string dir = freshDir("garbage");
    fs::create_directories(dir);
    {
        std::ofstream os(fs::path(dir) / "results.vgc",
                         std::ios::binary);
        os << "\x7f\x45\x4c\x46 not a cache at all\n\x00\x01\x02";
    }
    DiskResultCache cache(dir);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.stats().versionMismatch);
    // Still usable: inserts repair the file.
    cache.insert("k", sampleResult("w", 1.0));
    DiskResultCache reopened(dir);
    EXPECT_EQ(reopened.size(), 1u);
}

TEST(DiskCache, ClearTruncatesTheFile)
{
    const std::string dir = freshDir("clear");
    {
        DiskResultCache cache(dir);
        cache.insert("k", sampleResult("w", 0.5));
        cache.clear();
        EXPECT_EQ(cache.size(), 0u);
    }
    DiskResultCache reopened(dir);
    EXPECT_EQ(reopened.size(), 0u);
    EXPECT_FALSE(reopened.stats().versionMismatch);
}

TEST(DiskCache, TraceOutRunsStillWarmTheCache)
{
    const std::string dir = freshDir("trace_out");

    Session first;
    first.attachDiskCache(dir);
    const auto request = first.request()
                             .gemm(kernels::GemmDims{32, 32, 128})
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    ASSERT_TRUE(request.has_value());
    cpu::Trace trace;
    const auto with_trace = first.run(*request, &trace);
    EXPECT_FALSE(trace.empty());

    // The trace-saving run paid the generation pass, but its result
    // still landed in the persistent cache.
    Session second;
    second.attachDiskCache(dir);
    const auto warm = second.run(*request);
    expectIdenticalSim(warm, with_trace);
    EXPECT_EQ(second.simulationsPerformed(), 0u);
}

TEST(DiskCache, TwoSequentialSessionsShareResults)
{
    const std::string dir = freshDir("sessions");

    Session first;
    first.attachDiskCache(dir);
    const auto request = first.request()
                             .gemm(kernels::GemmDims{32, 32, 128})
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    ASSERT_TRUE(request.has_value());
    const auto cold = first.run(*request);
    EXPECT_EQ(first.simulationsPerformed(), 1u);

    // A second Session (a "second process") on the same directory
    // serves the request from disk without simulating anything.
    Session second;
    second.attachDiskCache(dir);
    const auto warm = second.run(*request);
    expectIdenticalSim(warm, cold);
    EXPECT_EQ(second.simulationsPerformed(), 0u);
    EXPECT_EQ(second.diskCache()->stats().hits, 1u);
}

} // namespace
} // namespace vegeta::sim
