/**
 * @file
 * Persistent result-cache tests: round-trips are bit-identical,
 * a version-mismatched file is invalidated wholesale, corrupt or
 * truncated records degrade to misses (never wrong results), and two
 * sequential Sessions share results through the same cache directory.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/session.hpp"

namespace vegeta::sim {
namespace {

namespace fs = std::filesystem;

/** A fresh (empty) cache directory under the test temp dir. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir =
        fs::path(::testing::TempDir()) / "vegeta_disk_cache" / name;
    fs::remove_all(dir);
    return dir.string();
}

SimulationResult
sampleResult(const std::string &tag, double util)
{
    SimulationResult result;
    result.workload = tag;
    result.engine = "VEGETA-S-2-2";
    result.layerN = 2;
    result.executedN = 2;
    result.outputForwarding = true;
    result.kernel = "optimized";
    result.coreCycles = 12345;
    result.instructions = 678;
    result.engineInstructions = 90;
    result.tileComputes = 12;
    result.macUtilization = util;
    result.cacheHits = 3;
    result.cacheMisses = 4;
    return result;
}

void
expectIdentical(const SimulationResult &a, const SimulationResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.layerN, b.layerN);
    EXPECT_EQ(a.executedN, b.executedN);
    EXPECT_EQ(a.outputForwarding, b.outputForwarding);
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.engineInstructions, b.engineInstructions);
    EXPECT_EQ(a.tileComputes, b.tileComputes);
    // bit-for-bit: exact double equality, not a tolerance.
    EXPECT_EQ(a.macUtilization, b.macUtilization);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
}

TEST(DiskCache, RoundTripsAcrossInstances)
{
    const std::string dir = freshDir("roundtrip");
    // 0.1 has no exact double representation: the bit-pattern
    // serialization must still round-trip it exactly.
    const SimulationResult original = sampleResult("w", 0.1);
    {
        DiskResultCache cache(dir);
        ASSERT_TRUE(cache.ok());
        EXPECT_FALSE(cache.find("key-a").has_value());
        cache.insert("key-a", original);
        EXPECT_EQ(cache.size(), 1u);
    }
    DiskResultCache reopened(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.stats().loaded, 1u);
    const auto hit = reopened.find("key-a");
    ASSERT_TRUE(hit.has_value());
    expectIdentical(*hit, original);
    EXPECT_EQ(reopened.stats().hits, 1u);
}

TEST(DiskCache, FirstInsertWins)
{
    const std::string dir = freshDir("first_wins");
    DiskResultCache cache(dir);
    cache.insert("k", sampleResult("first", 0.5));
    cache.insert("k", sampleResult("second", 0.75));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_EQ(cache.find("k")->workload, "first");
}

TEST(DiskCache, VersionMismatchInvalidatesWholeFile)
{
    const std::string dir = freshDir("version");
    {
        DiskResultCache cache(dir);
        cache.insert("k", sampleResult("w", 0.5));
    }
    // Rewrite the header to a future version: every record after it
    // must be ignored (a format change never risks misreads).
    const fs::path file = fs::path(dir) / "results.vgc";
    std::string text;
    {
        std::ifstream is(file);
        std::stringstream buffer;
        buffer << is.rdbuf();
        text = buffer.str();
    }
    text.replace(text.find("v1"), 2, "v9");
    {
        std::ofstream os(file, std::ios::trunc);
        os << text;
    }

    DiskResultCache reopened(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 0u);
    EXPECT_TRUE(reopened.stats().versionMismatch);
    EXPECT_FALSE(reopened.find("k").has_value());

    // The next insert rewrites the file under the current header...
    reopened.insert("k2", sampleResult("w2", 0.25));
    DiskResultCache third(dir);
    EXPECT_FALSE(third.stats().versionMismatch);
    EXPECT_EQ(third.size(), 1u);
    ASSERT_TRUE(third.find("k2").has_value());
}

TEST(DiskCache, TruncatedAndCorruptRecordsDegradeToMisses)
{
    const std::string dir = freshDir("corrupt");
    const SimulationResult good = sampleResult("good", 0.5);
    {
        DiskResultCache cache(dir);
        cache.insert("good-key", good);
        cache.insert("rotten-key", sampleResult("rotten", 0.25));
    }
    const fs::path file = fs::path(dir) / "results.vgc";
    std::string text;
    {
        std::ifstream is(file);
        std::stringstream buffer;
        buffer << is.rdbuf();
        text = buffer.str();
    }
    // Silent bit rot inside a value field: tamper the coreCycles
    // digits of the second record without touching its shape.  The
    // per-record checksum must reject it (a miss, not a wrong hit).
    const auto rotten = text.find("\t12345\t", text.find("rotten"));
    ASSERT_NE(rotten, std::string::npos);
    text.replace(rotten, 7, "\t19345\t");
    {
        // Plus a field-count-corrupt record, a number-corrupt record,
        // and a truncated tail (no newline, cut mid-record).
        std::ofstream os(file, std::ios::trunc);
        os << text;
        os << "short-key\tonly\tthree\n";
        os << "bad-num\tw\te\tNaN\t2\t1\topt\t1\t1\t1\t1\tzz\t0\t0\n";
        os << "trunc-key\tw\te\t2";
    }
    DiskResultCache reopened(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.stats().loaded, 1u);
    EXPECT_EQ(reopened.stats().rejected, 4u);
    const auto hit = reopened.find("good-key");
    ASSERT_TRUE(hit.has_value());
    expectIdentical(*hit, good);
    EXPECT_FALSE(reopened.find("rotten-key").has_value());
    EXPECT_FALSE(reopened.find("trunc-key").has_value());
}

TEST(DiskCache, GarbageFileIsAnEmptyCache)
{
    const std::string dir = freshDir("garbage");
    fs::create_directories(dir);
    {
        std::ofstream os(fs::path(dir) / "results.vgc",
                         std::ios::binary);
        os << "\x7f\x45\x4c\x46 not a cache at all\n\x00\x01\x02";
    }
    DiskResultCache cache(dir);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_TRUE(cache.stats().versionMismatch);
    // Still usable: inserts repair the file.
    cache.insert("k", sampleResult("w", 1.0));
    DiskResultCache reopened(dir);
    EXPECT_EQ(reopened.size(), 1u);
}

TEST(DiskCache, ClearTruncatesTheFile)
{
    const std::string dir = freshDir("clear");
    {
        DiskResultCache cache(dir);
        cache.insert("k", sampleResult("w", 0.5));
        cache.clear();
        EXPECT_EQ(cache.size(), 0u);
    }
    DiskResultCache reopened(dir);
    EXPECT_EQ(reopened.size(), 0u);
    EXPECT_FALSE(reopened.stats().versionMismatch);
}

TEST(DiskCache, TraceOutRunsStillWarmTheCache)
{
    const std::string dir = freshDir("trace_out");

    Session first;
    first.attachDiskCache(dir);
    const auto request = first.request()
                             .gemm(kernels::GemmDims{32, 32, 128})
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    ASSERT_TRUE(request.has_value());
    cpu::Trace trace;
    const auto with_trace = first.run(*request, &trace);
    EXPECT_FALSE(trace.empty());

    // The trace-saving run paid the generation pass, but its result
    // still landed in the persistent cache.
    Session second;
    second.attachDiskCache(dir);
    const auto warm = second.run(*request);
    expectIdentical(warm, with_trace);
    EXPECT_EQ(second.simulationsPerformed(), 0u);
}

TEST(DiskCache, TwoSequentialSessionsShareResults)
{
    const std::string dir = freshDir("sessions");

    Session first;
    first.attachDiskCache(dir);
    const auto request = first.request()
                             .gemm(kernels::GemmDims{32, 32, 128})
                             .engine("VEGETA-S-2-2")
                             .pattern(2)
                             .build();
    ASSERT_TRUE(request.has_value());
    const auto cold = first.run(*request);
    EXPECT_EQ(first.simulationsPerformed(), 1u);

    // A second Session (a "second process") on the same directory
    // serves the request from disk without simulating anything.
    Session second;
    second.attachDiskCache(dir);
    const auto warm = second.run(*request);
    expectIdentical(warm, cold);
    EXPECT_EQ(second.simulationsPerformed(), 0u);
    EXPECT_EQ(second.diskCache()->stats().hits, 1u);
}

} // namespace
} // namespace vegeta::sim
