/**
 * @file
 * Shared bit-identity assertions for result types.
 *
 * Several suites pin the facade's determinism guarantee -- equal
 * inputs produce bit-for-bit equal results across threads, caches,
 * processes, and shims -- and they must all compare EVERY field, so
 * the field lists live here once: a new SimulationResult or
 * AnalyticalCell field only needs to be added in this header for all
 * of them to start asserting it.
 */

#ifndef VEGETA_TESTS_EXPECT_IDENTICAL_HPP
#define VEGETA_TESTS_EXPECT_IDENTICAL_HPP

#include <gtest/gtest.h>

#include "sim/job.hpp"

namespace vegeta::sim {

inline void
expectIdenticalSim(const SimulationResult &a, const SimulationResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.layerN, b.layerN);
    EXPECT_EQ(a.executedN, b.executedN);
    EXPECT_EQ(a.outputForwarding, b.outputForwarding);
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.coreCycles, b.coreCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.engineInstructions, b.engineInstructions);
    EXPECT_EQ(a.tileComputes, b.tileComputes);
    // bit-for-bit: exact double equality, not a tolerance.
    EXPECT_EQ(a.macUtilization, b.macUtilization);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.cacheMisses, b.cacheMisses);
}

inline void
expectIdenticalAnalysis(const AnalyticalResult &a,
                        const AnalyticalResult &b)
{
    EXPECT_EQ(a.model, b.model);
    ASSERT_EQ(a.columns, b.columns);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (std::size_t r = 0; r < a.rows.size(); ++r) {
        ASSERT_EQ(a.rows[r].size(), b.rows[r].size());
        for (std::size_t c = 0; c < a.rows[r].size(); ++c) {
            EXPECT_EQ(a.rows[r][c].label, b.rows[r][c].label);
            // bit-for-bit: exact double equality.
            EXPECT_EQ(a.rows[r][c].value, b.rows[r][c].value);
            EXPECT_EQ(a.rows[r][c].precision, b.rows[r][c].precision);
        }
    }
    EXPECT_EQ(a.notes, b.notes);
}

inline void
expectIdenticalBatches(const std::vector<JobResult> &a,
                       const std::vector<JobResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].kind, b[i].kind) << i;
        if (a[i].kind == JobKind::Simulation)
            expectIdenticalSim(a[i].simulation, b[i].simulation);
        else
            expectIdenticalAnalysis(a[i].analysis, b[i].analysis);
    }
}

} // namespace vegeta::sim

#endif // VEGETA_TESTS_EXPECT_IDENTICAL_HPP
