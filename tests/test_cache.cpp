/**
 * @file
 * Cache latency-model tests.
 */

#include <gtest/gtest.h>

#include "cpu/cache.hpp"

namespace vegeta::cpu {
namespace {

TEST(Cache, FirstTouchPaysL2)
{
    CacheModel cache;
    EXPECT_EQ(cache.accessLine(0x1000), cache.config().l2Latency);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, ReReferenceHitsL1)
{
    CacheModel cache;
    cache.accessLine(0x1000);
    EXPECT_EQ(cache.accessLine(0x1000), cache.config().l1Latency);
    EXPECT_EQ(cache.accessLine(0x1010), cache.config().l1Latency)
        << "same 64 B line";
    EXPECT_EQ(cache.hits(), 2u);
}

TEST(Cache, DistinctLinesMissSeparately)
{
    CacheModel cache;
    cache.accessLine(0);
    cache.accessLine(64);
    cache.accessLine(128);
    EXPECT_EQ(cache.misses(), 3u);
}

TEST(Cache, LruEvictionWithinSet)
{
    CacheConfig cfg;
    cfg.l1Sets = 1;
    cfg.l1Ways = 2;
    CacheModel cache(cfg);
    cache.accessLine(0);        // miss, {0}
    cache.accessLine(64);       // miss, {64, 0}
    cache.accessLine(0);        // hit,  {0, 64}
    cache.accessLine(128);      // miss, evicts 64
    EXPECT_EQ(cache.accessLine(0), cfg.l1Latency);
    EXPECT_EQ(cache.accessLine(64), cfg.l2Latency) << "was evicted";
}

TEST(Cache, RangeAccessTouchesEveryLine)
{
    CacheModel cache;
    auto range = cache.accessRange(0x2000, 1024);
    EXPECT_EQ(range.lines, 16u); // a 1 KB tile = 16 cache lines
    EXPECT_EQ(range.maxLatency, cache.config().l2Latency);
    EXPECT_EQ(cache.misses(), 16u);
    // Re-access: every line hits, so the aggregate is the L1 latency.
    auto again = cache.accessRange(0x2000, 1024);
    EXPECT_EQ(again.maxLatency, cache.config().l1Latency);
    EXPECT_EQ(cache.hits(), 16u);
    // Unaligned range straddles one extra line.
    auto unaligned = cache.accessRange(0x5020, 128);
    EXPECT_EQ(unaligned.lines, 3u);
}

TEST(Cache, ResetClearsState)
{
    CacheModel cache;
    cache.accessLine(0);
    cache.reset();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.accessLine(0), cache.config().l2Latency);
}

TEST(Cache, WorkingSetLargerThanL1Thrashes)
{
    CacheConfig cfg;
    CacheModel cache(cfg);
    const u32 lines = cfg.l1Sets * cfg.l1Ways * 2;
    for (u32 pass = 0; pass < 2; ++pass)
        for (u32 l = 0; l < lines; ++l)
            cache.accessLine(static_cast<Addr>(l) * cfg.lineBytes);
    // Sequential sweep over 2x capacity with LRU never hits.
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 2ull * lines);
}

} // namespace
} // namespace vegeta::cpu
