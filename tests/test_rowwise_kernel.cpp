/**
 * @file
 * Row-wise SPMM kernel tests (TILE_SPMM_R end to end): the lossless
 * unstructured -> row-wise N:4 path of Sections III-D / V-E.
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sparsity/pruning.hpp"

namespace vegeta::kernels {
namespace {

TEST(RowWiseKernel, DenseInputMatchesReference)
{
    Rng rng(1);
    const MatrixBF16 a = randomMatrixBF16(16, 64, rng);
    const MatrixBF16 b = randomMatrixBF16(64, 16, rng);
    const auto run = runRowWiseSpmmKernel(a, b);
    MatrixF want(16, 16);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
}

TEST(RowWiseKernel, UnstructuredMatchesReference)
{
    Rng rng(2);
    const MatrixBF16 a = randomUnstructuredMatrix(48, 128, 0.9, rng);
    const MatrixBF16 b = randomMatrixBF16(128, 32, rng);
    const auto run = runRowWiseSpmmKernel(a, b);
    MatrixF want(48, 32);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
}

TEST(RowWiseKernel, MixedRowPatterns)
{
    // Explicit mix: dense rows, 2:4 rows, 1:4 rows, zero rows.
    Rng rng(3);
    MatrixBF16 a(12, 64);
    Rng data_rng(4);
    for (u32 r = 0; r < 4; ++r) {
        MatrixBF16 one = randomMatrixBF16(1, 64, data_rng);
        for (u32 c = 0; c < 64; ++c)
            a.at(r, c) = one.at(0, c);
    }
    for (u32 r = 4; r < 8; ++r) {
        MatrixBF16 one = randomNMMatrix(1, 64, pattern24(), data_rng);
        for (u32 c = 0; c < 64; ++c)
            a.at(r, c) = one.at(0, c);
    }
    for (u32 r = 8; r < 11; ++r) {
        MatrixBF16 one = randomNMMatrix(1, 64, pattern14(), data_rng);
        for (u32 c = 0; c < 64; ++c)
            a.at(r, c) = one.at(0, c);
    }
    // Row 11 stays all-zero.
    const MatrixBF16 b = randomMatrixBF16(64, 16, rng);
    const auto run = runRowWiseSpmmKernel(a, b);
    MatrixF want(12, 16);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
}

TEST(RowWiseKernel, SparserInputUsesFewerComputes)
{
    Rng rng(5);
    const MatrixBF16 base = randomMatrixBF16(64, 128, rng);
    const MatrixBF16 b = randomMatrixBF16(128, 16, rng);

    Rng mask_rng(6);
    const auto dense_run = runRowWiseSpmmKernel(base, b);
    const auto sparse_run = runRowWiseSpmmKernel(
        maskUnstructuredBernoulli(base, 0.95, mask_rng), b);
    // Sparser rows -> smaller per-row N -> more rows per tile ->
    // fewer TILE_SPMM_R instructions.
    EXPECT_LT(sparse_run.tileComputes, dense_run.tileComputes);
}

TEST(RowWiseKernel, UnalignedDimsArePadded)
{
    Rng rng(7);
    const MatrixBF16 a = randomUnstructuredMatrix(10, 100, 0.8, rng);
    const MatrixBF16 b = randomMatrixBF16(100, 20, rng);
    const auto run = runRowWiseSpmmKernel(a, b);
    ASSERT_EQ(run.c.rows(), 10u);
    ASSERT_EQ(run.c.cols(), 20u);
    MatrixF want(10, 20);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
}

/** Oracle property over degrees and seeds. */
class RowWiseOracle
    : public ::testing::TestWithParam<std::tuple<double, u64>>
{
};

TEST_P(RowWiseOracle, MatchesReference)
{
    const auto [degree, seed] = GetParam();
    Rng rng(seed);
    const MatrixBF16 a = randomUnstructuredMatrix(32, 128, degree, rng);
    const MatrixBF16 b = randomMatrixBF16(128, 16, rng);
    const auto run = runRowWiseSpmmKernel(a, b);
    MatrixF want(32, 16);
    referenceGemm(a, b, want);
    EXPECT_EQ(maxAbsDiff(run.c, want), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RowWiseOracle,
    ::testing::Combine(::testing::Values(0.5, 0.75, 0.9, 0.95),
                       ::testing::Values(40u, 41u)));

} // namespace
} // namespace vegeta::kernels
