/**
 * @file
 * Command-line front end of the vegeta::sim Session -- the "release
 * binary" of the repository, organized as subcommands so both halves
 * of the evaluation (trace simulation and the analytical models) are
 * reachable from the shell:
 *
 *   simulate_cli run     one trace simulation (or trace replay)
 *   simulate_cli analyze one analytical model evaluation
 *   simulate_cli sweep   a (workload x pattern x engine) grid batch
 *   simulate_cli tune    budgeted design-space search (sim/tune.hpp)
 *   simulate_cli serve   the long-lived simulation service daemon
 *   simulate_cli list    registered workloads/engines/models
 *   simulate_cli cache   persistent result-cache stats/clear/merge
 *
 * `run` and `sweep` accept --cache-dir DIR to attach the Session's
 * persistent result cache; `cache stats` prints its counters as JSON
 * and `cache prune` bounds the file under --max-bytes/--max-entries.
 * `sweep --workers N` shards the grid over N forked worker processes
 * (sim/pool.hpp) that re-enter this binary through the hidden
 * `worker` subcommand and share the --cache-dir; the merged output
 * is byte-identical to the single-process sweep.  Every numeric flag
 * goes through the strict sim parsers (parseU32 / parseGemmSpec):
 * garbage or negative values are errors, never silently-zero atoi
 * results.
 *
 * `serve` keeps one warm Session (and optional pre-forked persistent
 * workers) behind a unix/TCP socket; `run --connect ADDR` and `sweep
 * --connect ADDR` send the same work there instead of simulating
 * locally, with byte-identical stdout (sim/server, sim/client).
 *
 * Flag-style invocations without a subcommand (`simulate_cli
 * --workload ...`) are deprecated but still route to `run`.
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cpu/trace_io.hpp"
#include "sim/client.hpp"
#include "sim/pool.hpp"
#include "sim/serial.hpp"
#include "sim/server.hpp"
#include "sim/session.hpp"
#include "sim/telemetry.hpp"
#include "sim/tune.hpp"

namespace {

using namespace vegeta;

enum class OutputFormat
{
    Text,
    Csv,
    Json,
};

void
usage(std::ostream &os)
{
    os << "vegeta simulate_cli <command> [options]\n"
          "\n"
          "commands:\n"
          "  run      simulate one workload/GEMM, or replay a trace\n"
          "  analyze  evaluate an analytical model\n"
          "  sweep    run a workload x pattern x engine grid\n"
          "  tune     budgeted design-space search (analytical\n"
          "           prefilter + replay confirmation)\n"
          "  serve    run the long-lived simulation service daemon\n"
          "  stats    live stats of a running serve daemon\n"
          "  list     list workloads, engines, and models\n"
          "  cache    persistent-cache maintenance "
          "(stats|clear|prune|merge)\n"
          "\n"
          "run options:\n"
          "  --workload NAME     a Table IV layer (default GPT-L1)\n"
          "  --gemm MxNxK        explicit GEMM dimensions\n"
          "  --engine NAME       engine (default VEGETA-S-16-2)\n"
          "  --pattern N         layer-wise N:4 (1/2/4, default 2)\n"
          "  --no-of             disable output forwarding\n"
          "  --naive             Listing 1 kernel (no C blocking)\n"
          "  --cblocking N       C tile registers (1..3)\n"
          "  --trace-out FILE    save the generated trace\n"
          "  --trace-in FILE     replay a saved trace\n"
          "  --lanes N           lane-batched replay width (N >= 1;\n"
          "                      default measured per host)\n"
          "  --cache-dir DIR     attach the persistent result cache\n"
          "  --connect ADDR      run on a serve daemon instead of\n"
          "                      locally (byte-identical output)\n"
          "  --metrics-out FILE  write telemetry metrics JSON\n"
          "  --csv | --json      machine-readable output\n"
          "\n"
          "analyze options:\n"
          "  MODEL               analytical model name (see list)\n"
          "  --workload NAME     narrow to a workload (repeatable)\n"
          "  --engine NAME       narrow to an engine (repeatable)\n"
          "  --param K=V         numeric model parameter\n"
          "  --option K=V        string model option\n"
          "  --csv | --json      machine-readable output\n"
          "\n"
          "sweep options:\n"
          "  --quick             quick workload group (default "
          "tableIV)\n"
          "  --workload NAME     explicit workload (repeatable)\n"
          "  --engine NAME       explicit engine (repeatable, default "
          "all)\n"
          "  --pattern N         layer pattern (repeatable, default "
          "4 2 1)\n"
          "  --threads N         worker threads (default hardware)\n"
          "  --workers N         shard over N worker processes\n"
          "                      (byte-identical to single-process)\n"
          "  --lanes N           lane-batched replay width (N >= 1;\n"
          "                      byte-identical for any width)\n"
          "  --cache-dir DIR     attach the persistent result cache\n"
          "                      (shared by all pool workers)\n"
          "  --connect ADDR      run on a serve daemon instead of\n"
          "                      locally (byte-identical output)\n"
          "  --trace-out FILE    write a Chrome trace_event span\n"
          "                      trace of the sweep\n"
          "  --metrics-out FILE  write telemetry metrics JSON\n"
          "  --csv | --json      machine-readable output\n"
          "\n"
          "tune options:\n"
          "  --quick             quick workload group (default "
          "tableIV)\n"
          "  --workload NAME     explicit workload (repeatable)\n"
          "  --engine NAME       explicit engine (repeatable, default "
          "all)\n"
          "  --space NAME        search axes: full (default; adds the\n"
          "                      C-blocking axis) or figure13\n"
          "  --strategy NAME     exhaustive (default) or halving\n"
          "  --budget N          replay confirmations (default 8,\n"
          "                      strictly honored)\n"
          "  --analyses N        analytical scorings (0 = every valid\n"
          "                      point, the default)\n"
          "  --seed N            search seed (halving pool sampling)\n"
          "  --max-area X        reject designs above X area units\n"
          "  --candidates        widen the engine axis with parametric\n"
          "                      512-MAC design candidates\n"
          "  --no-cost-model     ignore the cache-trained cost model\n"
          "  --threads N         replay batch threads\n"
          "  --lanes N           lane-batched replay width\n"
          "  --cache-dir DIR     persistent cache (also the cost\n"
          "                      model's training corpus)\n"
          "  --connect ADDR      confirm replays on a serve daemon\n"
          "  --trace-out FILE    write a Chrome trace_event span\n"
          "                      trace of the search\n"
          "  --metrics-out FILE  write telemetry metrics JSON\n"
          "  --csv | --json      machine-readable report\n"
          "\n"
          "serve options:\n"
          "  --socket PATH       listen on a unix-domain socket\n"
          "  --port N            listen on 127.0.0.1:N (0 = pick an\n"
          "                      ephemeral port)\n"
          "  --service-workers K persistent pre-forked worker\n"
          "                      processes (default 0 = in-process)\n"
          "  --threads N         simulation threads (per worker)\n"
          "  --queue-depth N     pending batches per client before\n"
          "                      backpressure (default 4)\n"
          "  --cache-dir DIR     persistent result cache for the\n"
          "                      service\n"
          "\n"
          "  ADDR for --connect is unix:PATH, tcp:HOST:PORT, a bare\n"
          "  port number (127.0.0.1), or a bare socket path.\n"
          "\n"
          "stats options:\n"
          "  --connect ADDR      the serve daemon to query (required);\n"
          "                      prints its live stats JSON\n"
          "\n"
          "cache options:\n"
          "  stats | clear | prune   action (needs --cache-dir)\n"
          "  merge DST SRC...    fold SRC cache dirs into DST\n"
          "                      (first insert wins)\n"
          "  --cache-dir DIR     cache directory (required)\n"
          "  --max-bytes N       prune: keep newest entries <= N "
          "bytes\n"
          "  --max-entries N     prune: keep at most N newest "
          "entries\n"
          "  --json              stats: extend the JSON with hit_rate,\n"
          "                      last_prune_bytes, and entries_by_type\n"
          "                      (the plain output stays stable)\n";
}

/** Strict double parse: the whole string must be one number. */
std::optional<double>
parseDouble(const std::string &text)
{
    if (text.empty())
        return std::nullopt;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return std::nullopt;
    return value;
}

/** Split "key=value" ("" key or missing '=' is an error). */
std::optional<std::pair<std::string, std::string>>
parseKeyValue(const std::string &text)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return std::nullopt;
    return std::make_pair(text.substr(0, eq), text.substr(eq + 1));
}

/** Simple arg cursor with fatal-on-missing value access. */
struct Args
{
    std::vector<std::string> argv;
    std::size_t next = 0;

    bool done() const { return next >= argv.size(); }
    const std::string &peek() const { return argv[next]; }
    std::string take() { return argv[next++]; }

    /** The value of a --flag VALUE pair, or exit(1). */
    std::string value(const std::string &flag)
    {
        if (done()) {
            std::cerr << "error: " << flag << " needs a value\n";
            std::exit(1);
        }
        return take();
    }
};

u32
parseLanesFlag(Args &args)
{
    const std::string text = args.value("--lanes");
    const auto parsed = sim::parseU32(text);
    if (!parsed || *parsed == 0) {
        std::cerr << "error: --lanes expects a positive integer, "
                     "got '"
                  << text << "'\n";
        std::exit(1);
    }
    return *parsed;
}

u32
parsePatternFlag(Args &args)
{
    const std::string text = args.value("--pattern");
    const auto parsed = sim::parseU32(text);
    if (!parsed) {
        std::cerr << "error: --pattern expects 1, 2, or 4, got '"
                  << text << "'\n";
        std::exit(1);
    }
    return *parsed;
}

void
reportText(const sim::SimulationResult &result)
{
    std::cout << "workload:           " << result.workload << "\n"
              << "engine:             " << result.engine << "\n"
              << "pattern:            " << result.layerN
              << ":4 (executes " << result.executedN
              << ":4 on this engine)\n"
              << "kernel:             " << result.kernel << "\n"
              << "output forwarding:  "
              << (result.outputForwarding ? "on" : "off") << "\n"
              << "retired ops:        " << result.instructions << "\n"
              << "core cycles:        " << result.coreCycles << "\n"
              << "runtime @ 2 GHz:    " << result.runtimeMs()
              << " ms\n"
              << "engine instrs:      " << result.engineInstructions
              << "\n"
              << "MAC utilization:    " << result.macUtilization * 100.0
              << " %\n"
              << "L1 hits / misses:   " << result.cacheHits << " / "
              << result.cacheMisses << "\n";
}

/** Print persistent-cache traffic (to stderr; stdout stays data). */
void
reportDiskCache(const sim::Session &session)
{
    if (const auto &disk = session.diskCache()) {
        const auto stats = disk->stats();
        std::cerr << "persistent cache: " << stats.hits << " hits, "
                  << stats.misses << " misses, " << stats.insertions
                  << " new entries (" << disk->size() << " total in "
                  << disk->directory() << ")\n";
    }
}

/**
 * Run a batch on a serve daemon at @p address; nullopt (with the
 * reason already printed) when the server is unreachable, refuses
 * the batch, or answers with a different wire version.
 */
std::optional<sim::ClientRun>
runOnServer(const std::string &address,
            const std::vector<sim::Job> &jobs)
{
    sim::ClientOptions options;
    options.address = address;
    sim::SimClient client(options);
    std::string error;
    if (!client.connect(&error)) {
        std::cerr << "error: " << error << "\n";
        return std::nullopt;
    }
    auto run = client.runBatch(jobs, &error);
    if (!run) {
        std::cerr << "error: " << error << "\n";
        return std::nullopt;
    }
    return run;
}

/**
 * Flush telemetry output files ("" skips one).  Returns 0, or 2 when
 * a file cannot be written.  In a VEGETA_NO_TELEMETRY build the files
 * still appear, with empty metric/span lists.
 */
int
writeTelemetryFiles(const std::string &metrics_out,
                    const std::string &span_trace_out)
{
    if (!metrics_out.empty() &&
        !telemetry::writeMetricsFile(metrics_out)) {
        std::cerr << "cannot write metrics file: " << metrics_out
                  << "\n";
        return 2;
    }
    if (!span_trace_out.empty() &&
        !telemetry::writeTraceFile(span_trace_out)) {
        std::cerr << "cannot write trace file: " << span_trace_out
                  << "\n";
        return 2;
    }
    return 0;
}

int
cmdRun(Args args)
{
    std::string workload_name, gemm_text;
    bool have_workload = false, have_gemm = false;
    std::string engine_name = "VEGETA-S-16-2";
    std::string trace_out, trace_in, cache_dir, connect_addr;
    std::string metrics_out;
    u32 pattern = 2;
    u32 cblocking = 3;
    u32 lanes = 0;
    bool of = true;
    bool naive = false;
    OutputFormat format = OutputFormat::Text;

    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--workload") {
            workload_name = args.value(arg);
            have_workload = true;
        } else if (arg == "--gemm") {
            gemm_text = args.value(arg);
            have_gemm = true;
        } else if (arg == "--engine") {
            engine_name = args.value(arg);
        } else if (arg == "--pattern") {
            pattern = parsePatternFlag(args);
        } else if (arg == "--cblocking") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed) {
                std::cerr << "error: --cblocking expects 1..3, got '"
                          << text << "'\n";
                return 1;
            }
            cblocking = *parsed;
        } else if (arg == "--no-of") {
            of = false;
        } else if (arg == "--naive") {
            naive = true;
        } else if (arg == "--csv") {
            format = OutputFormat::Csv;
        } else if (arg == "--json") {
            format = OutputFormat::Json;
        } else if (arg == "--trace-out") {
            trace_out = args.value(arg);
        } else if (arg == "--trace-in") {
            trace_in = args.value(arg);
        } else if (arg == "--lanes") {
            lanes = parseLanesFlag(args);
        } else if (arg == "--cache-dir") {
            cache_dir = args.value(arg);
        } else if (arg == "--connect") {
            connect_addr = args.value(arg);
        } else if (arg == "--metrics-out") {
            metrics_out = args.value(arg);
        } else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "error: unknown run option " << arg << "\n";
            return 1;
        }
    }

    if (lanes > 0 &&
        (!connect_addr.empty() || !trace_in.empty() ||
         !trace_out.empty())) {
        std::cerr << "error: --lanes applies to local batch "
                     "execution; it cannot be combined with "
                     "--connect/--trace-in/--trace-out\n";
        return 1;
    }

    if (!connect_addr.empty() &&
        (!trace_in.empty() || !trace_out.empty() ||
         !cache_dir.empty())) {
        std::cerr << "error: --connect cannot be combined with "
                     "--trace-in/--trace-out/--cache-dir (the server "
                     "owns traces and cache)\n";
        return 1;
    }

    sim::Session session;
    if (!cache_dir.empty()) {
        const auto disk = session.attachDiskCache(cache_dir);
        if (!disk->ok()) {
            std::cerr << "cannot open cache dir: " << cache_dir
                      << "\n";
            return 2;
        }
    }

    auto builder = session.job()
                       .engine(engine_name)
                       .pattern(pattern)
                       .outputForwarding(of)
                       .cBlocking(cblocking)
                       .kernel(naive ? sim::KernelVariant::Naive
                                     : sim::KernelVariant::Optimized);
    if (have_workload)
        builder.workload(workload_name);
    else if (have_gemm)
        builder.gemm(gemm_text);
    else
        builder.workload("GPT-L1"); // the seed's default layer

    auto job = builder.build();
    if (!job) {
        std::cerr << "error: " << builder.error()
                  << " (try 'simulate_cli list')\n";
        return 1;
    }

    sim::SimulationResult result;
    if (!connect_addr.empty()) {
        const auto remote = runOnServer(connect_addr, {*job});
        if (!remote)
            return 2;
        result = remote->results[0].simulation;
        std::cerr << "run: " << remote->simulationsPerformed
                  << " simulated by server\n";
    } else if (!trace_in.empty()) {
        const auto trace = cpu::readTraceFile(trace_in);
        if (!trace) {
            std::cerr << "cannot read trace: " << trace_in << "\n";
            return 2;
        }
        // The replayed trace, not the builder's default workload, is
        // what the result describes.
        job->simulation.label = "trace:" + trace_in;
        if (const auto error =
                session.replayError(*trace, job->simulation)) {
            std::cerr << "cannot replay on " << job->simulation.engine
                      << ": " << *error << "\n";
            return 1;
        }
        if (format == OutputFormat::Text)
            std::cout << "replaying " << trace->size() << " ops from "
                      << trace_in << "\n";
        result = session.replay(*trace, job->simulation);
    } else if (!trace_out.empty()) {
        // One generation pass: the facade hands back the exact trace
        // it measured so it can be replayed across engine configs.
        cpu::Trace trace;
        result = session.run(job->simulation, &trace);
        if (!cpu::writeTraceFile(trace_out, trace)) {
            std::cerr << "cannot write trace: " << trace_out << "\n";
            return 2;
        }
        if (format == OutputFormat::Text)
            std::cout << "trace saved:        " << trace_out << " ("
                      << trace.size() << " ops)\n";
    } else if (lanes > 0) {
        // Explicit lane width: route the single job through the
        // batch API's lane packs (a one-job pack replays exactly as
        // run() would, so the output is identical).
        result = session.runBatch(std::vector<sim::Job>{*job}, 1,
                                  lanes)[0]
                     .simulation;
    } else {
        result = session.run(*job).simulation;
    }

    switch (format) {
      case OutputFormat::Text:
        reportText(result);
        break;
      case OutputFormat::Csv:
        sim::writeCsv(std::cout, {result});
        break;
      case OutputFormat::Json:
        sim::writeJson(std::cout, {result});
        break;
    }
    reportDiskCache(session);
    return writeTelemetryFiles(metrics_out, "");
}

int
cmdAnalyze(Args args)
{
    std::string model;
    OutputFormat format = OutputFormat::Text;
    sim::Session session;
    auto builder = session.job();

    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--model") {
            model = args.value(arg);
        } else if (arg == "--workload") {
            builder.workload(args.value(arg));
        } else if (arg == "--engine") {
            builder.engine(args.value(arg));
        } else if (arg == "--param") {
            const std::string text = args.value(arg);
            const auto kv = parseKeyValue(text);
            if (!kv) {
                std::cerr << "error: --param expects KEY=VALUE, got '"
                          << text << "'\n";
                return 1;
            }
            const auto value = parseDouble(kv->second);
            if (!value) {
                std::cerr << "error: --param " << kv->first
                          << " expects a number, got '" << kv->second
                          << "'\n";
                return 1;
            }
            builder.param(kv->first, *value);
        } else if (arg == "--option") {
            const std::string text = args.value(arg);
            const auto kv = parseKeyValue(text);
            if (!kv) {
                std::cerr << "error: --option expects KEY=VALUE, got '"
                          << text << "'\n";
                return 1;
            }
            builder.option(kv->first, kv->second);
        } else if (arg == "--csv") {
            format = OutputFormat::Csv;
        } else if (arg == "--json") {
            format = OutputFormat::Json;
        } else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && model.empty()) {
            model = arg;
        } else {
            std::cerr << "error: unknown analyze option " << arg
                      << "\n";
            return 1;
        }
    }

    if (model.empty()) {
        std::cerr << "error: analyze needs a model name; registered "
                     "models:\n";
        for (const auto &name : session.analytics().names())
            std::cerr << "  " << name << "\n";
        return 1;
    }
    builder.model(model);

    const auto job = builder.build();
    if (!job) {
        std::cerr << "error: " << builder.error()
                  << " (try 'simulate_cli list models')\n";
        return 1;
    }

    const auto result = session.run(*job).analysis;
    switch (format) {
      case OutputFormat::Text:
        result.table().print(std::cout);
        for (const auto &note : result.notes)
            std::cout << "  " << note << "\n";
        break;
      case OutputFormat::Csv:
        sim::writeCsv(std::cout, result);
        break;
      case OutputFormat::Json:
        sim::writeJson(std::cout, result);
        break;
    }
    return 0;
}

int
cmdSweep(Args args)
{
    bool quick = false;
    std::vector<std::string> workload_names, engine_names;
    std::vector<u32> patterns;
    u32 threads = 0;
    u32 workers = 0;
    u32 lanes = 0;
    std::string cache_dir, connect_addr;
    std::string span_trace_out, metrics_out;
    OutputFormat format = OutputFormat::Text;

    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--workload") {
            workload_names.push_back(args.value(arg));
        } else if (arg == "--engine") {
            engine_names.push_back(args.value(arg));
        } else if (arg == "--pattern") {
            patterns.push_back(parsePatternFlag(args));
        } else if (arg == "--trace-out") {
            span_trace_out = args.value(arg);
        } else if (arg == "--metrics-out") {
            metrics_out = args.value(arg);
        } else if (arg == "--threads") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed || *parsed == 0) {
                std::cerr << "error: --threads expects a positive "
                             "integer, got '"
                          << text << "'\n";
                return 1;
            }
            threads = *parsed;
        } else if (arg == "--workers") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed || *parsed == 0) {
                std::cerr << "error: --workers expects a positive "
                             "integer, got '"
                          << text << "'\n";
                return 1;
            }
            workers = *parsed;
        } else if (arg == "--lanes") {
            lanes = parseLanesFlag(args);
        } else if (arg == "--cache-dir") {
            cache_dir = args.value(arg);
        } else if (arg == "--connect") {
            connect_addr = args.value(arg);
        } else if (arg == "--csv") {
            format = OutputFormat::Csv;
        } else if (arg == "--json") {
            format = OutputFormat::Json;
        } else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "error: unknown sweep option " << arg << "\n";
            return 1;
        }
    }

    if (!connect_addr.empty() &&
        (workers > 0 || threads > 0 || lanes > 0 ||
         !cache_dir.empty())) {
        std::cerr << "error: --connect cannot be combined with "
                     "--workers/--threads/--lanes/--cache-dir (the "
                     "server decides its own execution)\n";
        return 1;
    }

    sim::Session session;
    session.enableCache();
    if (!cache_dir.empty()) {
        if (workers > 0) {
            // Pooled mode: the WORKERS open the shared cache; the
            // parent only checks the directory is usable instead of
            // loading a potentially large file it would never read.
            std::error_code ec;
            std::filesystem::create_directories(cache_dir, ec);
            if (ec || !std::filesystem::is_directory(cache_dir)) {
                std::cerr << "cannot open cache dir: " << cache_dir
                          << "\n";
                return 2;
            }
        } else {
            const auto disk = session.attachDiskCache(cache_dir);
            if (!disk->ok()) {
                std::cerr << "cannot open cache dir: " << cache_dir
                          << "\n";
                return 2;
            }
        }
    }

    if (workload_names.empty())
        for (const auto &w : session.workloads().group(
                 quick ? "quick" : "tableIV"))
            workload_names.push_back(w.name);
    if (engine_names.empty())
        engine_names = session.engines().names();
    if (patterns.empty())
        patterns = {4, 2, 1};

    for (const auto &name : workload_names) {
        if (!session.workloads().contains(name)) {
            std::cerr << "error: unknown workload: " << name << "\n";
            return 1;
        }
    }
    for (const auto &name : engine_names) {
        if (!session.engines().contains(name)) {
            std::cerr << "error: unknown engine: " << name << "\n";
            return 1;
        }
    }
    for (const u32 pattern : patterns) {
        if (pattern != 1 && pattern != 2 && pattern != 4) {
            std::cerr << "error: pattern must be 1, 2, or 4 (got "
                      << pattern << ")\n";
            return 1;
        }
    }

    const auto grid = sim::figure13Grid(session, workload_names,
                                        engine_names, patterns);

    // Arm span recording only when a trace was asked for: disarmed
    // spans cost one relaxed load each.
    if (!span_trace_out.empty())
        telemetry::setTraceEnabled(true);

    std::vector<sim::SimulationResult> results;
    u64 simulated = 0;
    if (!connect_addr.empty()) {
        // Service path: ship the grid to a serve daemon.  Results
        // are bit-identical to the local batch, so stdout matches a
        // local sweep byte for byte.
        std::vector<sim::Job> jobs;
        jobs.reserve(grid.size());
        for (const auto &request : grid)
            jobs.push_back(sim::Job::simulate(request));
        const auto remote = runOnServer(connect_addr, jobs);
        if (!remote)
            return 2;
        results.reserve(remote->results.size());
        for (const auto &result : remote->results)
            results.push_back(result.simulation);
        simulated = remote->simulationsPerformed;
    } else if (workers > 0) {
        // Pooled path: shard the grid over forked worker processes
        // re-entering this binary via the hidden `worker` subcommand.
        // The merged batch is byte-identical to the in-process sweep.
        std::vector<sim::Job> jobs;
        jobs.reserve(grid.size());
        for (const auto &request : grid)
            jobs.push_back(sim::Job::simulate(request));
        sim::PoolOptions options;
        options.workers = workers;
        options.cacheDir = cache_dir;
        options.threadsPerWorker = threads;
        options.laneWidth = lanes;
        // An explicit --workers N is a demand, not a hint: bypass
        // the batch-size planner so small sweeps still shard exactly
        // as requested.
        options.minPooledJobs = 1;
        const auto pooled = session.runBatchPooled(jobs, options);
        if (!pooled.ok) {
            std::cerr << "error: pooled sweep failed: " << pooled.error
                      << "\n";
            return 2;
        }
        results.reserve(pooled.results.size());
        for (const auto &result : pooled.results)
            results.push_back(result.simulation);
        simulated = pooled.stats.simulationsPerformed;
    } else {
        results = session.runBatch(grid, threads, lanes);
        simulated = session.simulationsPerformed();
    }

    switch (format) {
      case OutputFormat::Text:
        sim::resultsTable(results).print(std::cout);
        break;
      case OutputFormat::Csv:
        sim::writeCsv(std::cout, results);
        break;
      case OutputFormat::Json:
        sim::writeJson(std::cout, results);
        break;
    }
    std::cerr << "sweep: " << grid.size() << " requests, " << simulated
              << " simulated";
    if (!connect_addr.empty())
        std::cerr << " by server";
    else if (workers > 0)
        std::cerr << " across " << workers << " workers";
    std::cerr << "\n";
    // In pooled/service mode the cache traffic happened elsewhere;
    // the parent's view would read 0/0 regardless, so say nothing.
    if (workers == 0 && connect_addr.empty())
        reportDiskCache(session);
    return writeTelemetryFiles(metrics_out, span_trace_out);
}

int
cmdTune(Args args)
{
    bool quick = false;
    bool candidates = false;
    bool cost_model = true;
    std::vector<std::string> workload_names, engine_names;
    std::string space_name = "full";
    std::string cache_dir, connect_addr;
    std::string span_trace_out, metrics_out;
    sim::TuneOptions options;
    std::optional<double> max_area;
    OutputFormat format = OutputFormat::Text;

    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--workload") {
            workload_names.push_back(args.value(arg));
        } else if (arg == "--engine") {
            engine_names.push_back(args.value(arg));
        } else if (arg == "--space") {
            space_name = args.value(arg);
            if (space_name != "full" && space_name != "figure13") {
                std::cerr << "error: --space expects full or "
                             "figure13, got '"
                          << space_name << "'\n";
                return 1;
            }
        } else if (arg == "--strategy") {
            const std::string text = args.value(arg);
            const auto strategy = sim::parseTuneStrategy(text);
            if (!strategy) {
                std::cerr << "error: --strategy expects exhaustive "
                             "or halving, got '"
                          << text << "'\n";
                return 1;
            }
            options.strategy = *strategy;
        } else if (arg == "--budget") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed || *parsed == 0) {
                std::cerr << "error: --budget expects a positive "
                             "integer of replays, got '"
                          << text << "'\n";
                return 1;
            }
            options.budget.replays = *parsed;
        } else if (arg == "--analyses") {
            const std::string text = args.value(arg);
            u64 parsed;
            if (!sim::serial::parseU64(text, &parsed)) {
                std::cerr << "error: --analyses expects a "
                             "non-negative integer, got '"
                          << text << "'\n";
                return 1;
            }
            options.budget.analyses = parsed;
        } else if (arg == "--seed") {
            const std::string text = args.value(arg);
            u64 parsed;
            if (!sim::serial::parseU64(text, &parsed)) {
                std::cerr << "error: --seed expects a non-negative "
                             "integer, got '"
                          << text << "'\n";
                return 1;
            }
            options.seed = parsed;
        } else if (arg == "--max-area") {
            const std::string text = args.value(arg);
            const auto parsed = parseDouble(text);
            if (!parsed || *parsed <= 0.0) {
                std::cerr << "error: --max-area expects a positive "
                             "number, got '"
                          << text << "'\n";
                return 1;
            }
            max_area = *parsed;
        } else if (arg == "--candidates") {
            candidates = true;
        } else if (arg == "--no-cost-model") {
            cost_model = false;
        } else if (arg == "--threads") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed || *parsed == 0) {
                std::cerr << "error: --threads expects a positive "
                             "integer, got '"
                          << text << "'\n";
                return 1;
            }
            options.threads = *parsed;
        } else if (arg == "--lanes") {
            options.laneWidth = parseLanesFlag(args);
        } else if (arg == "--cache-dir") {
            cache_dir = args.value(arg);
        } else if (arg == "--connect") {
            connect_addr = args.value(arg);
        } else if (arg == "--trace-out") {
            span_trace_out = args.value(arg);
        } else if (arg == "--metrics-out") {
            metrics_out = args.value(arg);
        } else if (arg == "--csv") {
            format = OutputFormat::Csv;
        } else if (arg == "--json") {
            format = OutputFormat::Json;
        } else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "error: unknown tune option " << arg << "\n";
            return 1;
        }
    }

    if (!connect_addr.empty() &&
        (options.threads > 0 || options.laneWidth > 0)) {
        std::cerr << "error: --connect cannot be combined with "
                     "--threads/--lanes (the server decides its own "
                     "execution)\n";
        return 1;
    }
    if (!connect_addr.empty() && candidates) {
        std::cerr << "error: --connect cannot be combined with "
                     "--candidates (the server only knows the "
                     "builtin engine registry)\n";
        return 1;
    }
    options.connectAddress = connect_addr;
    options.useCostModel = cost_model;

    // The candidate axis extends the registry BEFORE the session is
    // built so the analytical prefilter and the replay path resolve
    // the same names.
    auto engines = sim::EngineRegistry::builtin();
    if (candidates)
        for (const auto &config : sim::candidateEngineConfigs())
            engines.add(config);
    sim::Session session(std::move(engines),
                         sim::WorkloadRegistry::builtin());
    if (!cache_dir.empty()) {
        const auto disk = session.attachDiskCache(cache_dir);
        if (!disk->ok()) {
            std::cerr << "cannot open cache dir: " << cache_dir
                      << "\n";
            return 2;
        }
    }

    if (workload_names.empty())
        for (const auto &w : session.workloads().group(
                 quick ? "quick" : "tableIV"))
            workload_names.push_back(w.name);
    for (const auto &name : workload_names) {
        if (!session.workloads().contains(name)) {
            std::cerr << "error: unknown workload: " << name << "\n";
            return 1;
        }
    }
    for (const auto &name : engine_names) {
        if (!session.engines().contains(name)) {
            std::cerr << "error: unknown engine: " << name << "\n";
            return 1;
        }
    }

    auto space =
        space_name == "figure13"
            ? sim::TuneSpace::figure13(session, workload_names)
            : sim::TuneSpace::full(session, workload_names);
    if (!engine_names.empty())
        space.engines = engine_names;
    space.maxAreaUnits = max_area;

    if (!span_trace_out.empty())
        telemetry::setTraceEnabled(true);

    const sim::Tuner tuner(session, options);
    const auto report = tuner.run(space);

    switch (format) {
      case OutputFormat::Text: {
        std::cout << "strategy:        "
                  << sim::tuneStrategyName(report.strategy)
                  << " (seed " << report.seed << ")\n"
                  << "search space:    " << report.rawPoints
                  << " raw, " << report.validPoints << " valid, "
                  << report.rejectedPoints << " rejected\n"
                  << "funnel:          " << report.analyzedPoints
                  << " analyzed -> " << report.replayedPoints
                  << " replayed\n"
                  << "cost model:      "
                  << (report.costModelUsed ? "trained" : "unused")
                  << " (" << report.costModelSamples
                  << " cached samples)\n";
        if (const auto *best = report.best()) {
            std::cout << "best:            "
                      << sim::tunePointKey(best->point) << "\n"
                      << "  cycles/MAC     "
                      << best->measuredCyclesPerMac << " measured ("
                      << best->estCyclesPerMac << " estimated)\n"
                      << "  core cycles    " << best->measuredCoreCycles
                      << "\n"
                      << "  area units     " << best->areaUnits << "\n";
        } else {
            std::cout << "best:            none (nothing replayed)\n";
        }
        std::cout << "pareto front:    " << report.paretoFront.size()
                  << " point(s)\n";
        for (const auto &c : report.paretoFront)
            std::cout << "  " << sim::tunePointKey(c.point)
                      << "  cycles/MAC " << c.measuredCyclesPerMac
                      << "  area " << c.areaUnits << "\n";
        break;
      }
      case OutputFormat::Csv:
        sim::writeCsv(std::cout, report);
        break;
      case OutputFormat::Json:
        sim::writeJson(std::cout, report);
        break;
    }
    std::cerr << "tune: " << report.analyzedPoints << " analyzed, "
              << report.replayedPoints << " replayed";
    if (!connect_addr.empty())
        std::cerr << " (confirmations by server)";
    std::cerr << "\n";
    reportDiskCache(session);
    return writeTelemetryFiles(metrics_out, span_trace_out);
}

int
cmdServe(Args args)
{
    sim::ServerOptions options;
    bool have_socket = false;

    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--socket") {
            options.socketPath = args.value(arg);
            have_socket = true;
        } else if (arg == "--port") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed || *parsed > 65535) {
                std::cerr << "error: --port expects 0..65535, got '"
                          << text << "'\n";
                return 1;
            }
            options.port = *parsed;
            options.useTcp = true;
        } else if (arg == "--service-workers") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed) {
                std::cerr << "error: --service-workers expects a "
                             "non-negative integer, got '"
                          << text << "'\n";
                return 1;
            }
            options.serviceWorkers = *parsed;
        } else if (arg == "--threads") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed || *parsed == 0) {
                std::cerr << "error: --threads expects a positive "
                             "integer, got '"
                          << text << "'\n";
                return 1;
            }
            options.threads = *parsed;
        } else if (arg == "--queue-depth") {
            const std::string text = args.value(arg);
            const auto parsed = sim::parseU32(text);
            if (!parsed || *parsed == 0) {
                std::cerr << "error: --queue-depth expects a positive "
                             "integer, got '"
                          << text << "'\n";
                return 1;
            }
            options.queueDepth = *parsed;
        } else if (arg == "--cache-dir") {
            options.cacheDir = args.value(arg);
        } else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "error: unknown serve option " << arg << "\n";
            return 1;
        }
    }

    if (have_socket && options.useTcp) {
        std::cerr << "error: serve listens on --socket PATH or "
                     "--port N, not both\n";
        return 1;
    }
    if (!have_socket && !options.useTcp) {
        std::cerr << "error: serve needs --socket PATH or --port N "
                     "(--port 0 picks an ephemeral port)\n";
        return 1;
    }
    return sim::SimServer::serveMain(options);
}

int
cmdStats(Args args)
{
    std::string connect_addr;
    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--connect") {
            connect_addr = args.value(arg);
        } else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "error: unknown stats option " << arg
                      << "\n";
            return 1;
        }
    }
    if (connect_addr.empty()) {
        std::cerr << "error: stats needs --connect ADDR (the serve "
                     "daemon to query)\n";
        return 1;
    }

    sim::ClientOptions options;
    options.address = connect_addr;
    sim::SimClient client(options);
    std::string error;
    if (!client.connect(&error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    const auto stats = client.fetchStats(&error);
    if (!stats) {
        std::cerr << "error: " << error << "\n";
        return 2;
    }
    std::cout << *stats;
    return 0;
}

int
cmdList(Args args)
{
    std::string what = "all";
    bool json = false;
    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--json")
            json = true;
        else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && what == "all")
            what = arg;
        else {
            std::cerr << "error: unknown list option " << arg << "\n";
            return 1;
        }
    }
    if (what != "all" && what != "workloads" && what != "engines" &&
        what != "models") {
        std::cerr << "error: list expects workloads, engines, or "
                     "models (got '"
                  << what << "')\n";
        return 1;
    }

    const sim::Session session;
    if (json) {
        std::cout << "{";
        bool first_section = true;
        if (what == "all" || what == "workloads") {
            std::cout << "\n  \"workloads\": [";
            bool first = true;
            for (const auto &w : session.workloads().workloads()) {
                std::cout << (first ? "" : ", ")
                          << "\n    {\"name\": \""
                          << sim::jsonEscape(w.name)
                          << "\", \"m\": " << w.gemm.m
                          << ", \"n\": " << w.gemm.n
                          << ", \"k\": " << w.gemm.k << "}";
                first = false;
            }
            std::cout << "\n  ]";
            first_section = false;
        }
        if (what == "all" || what == "engines") {
            std::cout << (first_section ? "" : ",")
                      << "\n  \"engines\": [";
            bool first = true;
            for (const auto &name : session.engines().names()) {
                std::cout << (first ? "" : ", ") << "\""
                          << sim::jsonEscape(name) << "\"";
                first = false;
            }
            std::cout << "]";
            first_section = false;
        }
        if (what == "all" || what == "models") {
            std::cout << (first_section ? "" : ",")
                      << "\n  \"models\": [";
            bool first = true;
            for (const auto &name : session.analytics().names()) {
                std::cout << (first ? "" : ", ")
                          << "\n    {\"name\": \""
                          << sim::jsonEscape(name)
                          << "\", \"description\": \""
                          << sim::jsonEscape(
                                 session.analytics().description(name))
                          << "\"}";
                first = false;
            }
            std::cout << "\n  ]";
        }
        std::cout << "\n}\n";
        return 0;
    }

    if (what == "all" || what == "workloads") {
        std::cout << "workloads:\n";
        for (const auto &w : session.workloads().workloads())
            std::cout << "  " << w.name << " (" << w.gemm.m << "x"
                      << w.gemm.n << "x" << w.gemm.k << ")\n";
    }
    if (what == "all" || what == "engines") {
        std::cout << "engines:\n";
        for (const auto &name : session.engines().names())
            std::cout << "  " << name << "\n";
    }
    if (what == "all" || what == "models") {
        std::cout << "models:\n";
        for (const auto &name : session.analytics().names())
            std::cout << "  " << name << " -- "
                      << session.analytics().description(name) << "\n";
    }
    return 0;
}

int
cmdCache(Args args)
{
    std::string action, cache_dir;
    std::vector<std::string> merge_dirs;
    std::optional<u64> max_bytes, max_entries;
    bool extended_json = false;
    while (!args.done()) {
        const std::string arg = args.take();
        if (arg == "--cache-dir") {
            cache_dir = args.value(arg);
        } else if (arg == "--max-bytes" || arg == "--max-entries") {
            const std::string text = args.value(arg);
            // Full u64 range: a multi-GiB byte budget is reasonable
            // for a grow-forever cache file.
            u64 parsed;
            if (!sim::serial::parseU64(text, &parsed)) {
                std::cerr << "error: " << arg
                          << " expects a non-negative integer, got '"
                          << text << "'\n";
                return 1;
            }
            (arg == "--max-bytes" ? max_bytes : max_entries) = parsed;
        } else if (arg == "--json") {
            // stats output is already JSON; --json opts into the
            // extended fields while the plain document stays stable
            // for existing scripted callers.
            extended_json = true;
        } else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && action.empty()) {
            action = arg;
        } else if (!arg.empty() && arg[0] != '-' &&
                   action == "merge") {
            merge_dirs.push_back(arg);
        } else {
            std::cerr << "error: unknown cache option " << arg << "\n";
            return 1;
        }
    }
    if (action != "stats" && action != "clear" && action != "prune" &&
        action != "merge") {
        std::cerr << "error: cache expects 'stats', 'clear', "
                     "'prune', or 'merge' (got '"
                  << action << "')\n";
        return 1;
    }

    if (action == "merge") {
        if (!cache_dir.empty()) {
            std::cerr << "error: cache merge takes positional "
                         "directories (merge DST SRC...), not "
                         "--cache-dir\n";
            return 1;
        }
        if (merge_dirs.size() < 2) {
            std::cerr << "error: cache merge needs a destination and "
                         "at least one source: merge DST SRC...\n";
            return 1;
        }
        // Sources must already exist: merging FROM a typo'd path
        // must not silently create an empty cache and "succeed".
        for (std::size_t i = 1; i < merge_dirs.size(); ++i) {
            if (!std::filesystem::is_directory(merge_dirs[i])) {
                std::cerr << "error: source cache dir does not "
                             "exist: "
                          << merge_dirs[i] << "\n";
                return 2;
            }
        }
        sim::DiskResultCache dst(merge_dirs[0]);
        if (!dst.ok()) {
            std::cerr << "cannot open cache dir: " << merge_dirs[0]
                      << "\n";
            return 2;
        }
        u64 added = 0, skipped = 0;
        for (std::size_t i = 1; i < merge_dirs.size(); ++i) {
            const sim::DiskResultCache src(merge_dirs[i]);
            if (!src.ok()) {
                std::cerr << "cannot open cache dir: "
                          << merge_dirs[i] << "\n";
                return 2;
            }
            const auto merged = dst.mergeFrom(src);
            added += merged.added;
            skipped += merged.skipped;
        }
        std::cout << "{\"path\": \""
                  << sim::jsonEscape(dst.filePath())
                  << "\", \"sources\": " << merge_dirs.size() - 1
                  << ", \"added_entries\": " << added
                  << ", \"skipped_entries\": " << skipped
                  << ", \"total_entries\": " << dst.size() << "}\n";
        return 0;
    }

    if (cache_dir.empty()) {
        std::cerr << "error: cache needs --cache-dir DIR\n";
        return 1;
    }
    if (action == "prune" && !max_bytes && !max_entries) {
        std::cerr << "error: cache prune needs --max-bytes and/or "
                     "--max-entries\n";
        return 1;
    }

    // `stats` and `prune` inspect an EXISTING cache; creating an
    // empty one at a mistyped path and reporting zero entries would
    // hide the typo.  (`clear` keeps its create-then-empty behavior:
    // clearing a cache that never existed is a legitimate no-op.)
    if (action == "stats" || action == "prune") {
        std::error_code ec;
        const auto status = std::filesystem::status(cache_dir, ec);
        if (ec || !std::filesystem::exists(status)) {
            std::cerr << "error: cache dir does not exist: "
                      << cache_dir
                      << " (a run/sweep with --cache-dir creates "
                         "it)\n";
            return 2;
        }
        if (!std::filesystem::is_directory(status)) {
            std::cerr << "error: not a directory: " << cache_dir
                      << "\n";
            return 2;
        }
        const auto file =
            std::filesystem::path(cache_dir) / "results.vgc";
        if (std::filesystem::exists(file) &&
            ::access(file.c_str(), R_OK) != 0) {
            std::cerr << "error: cache file not readable: "
                      << file.string() << "\n";
            return 2;
        }
    }

    sim::DiskResultCache cache(cache_dir);
    if (!cache.ok()) {
        std::cerr << "cannot open cache dir: " << cache_dir << "\n";
        return 2;
    }
    if (action == "clear") {
        const std::size_t dropped = cache.size();
        cache.clear();
        std::cout << "{\"path\": \""
                  << sim::jsonEscape(cache.filePath())
                  << "\", \"cleared_entries\": " << dropped << "}\n";
        return 0;
    }
    if (action == "prune") {
        const auto pruned = cache.prune(max_bytes, max_entries);
        std::cout << "{\"path\": \""
                  << sim::jsonEscape(cache.filePath())
                  << "\", \"kept_entries\": " << pruned.kept
                  << ", \"dropped_entries\": " << pruned.dropped
                  << ", \"file_bytes\": " << pruned.fileBytes << "}\n";
        return 0;
    }
    const auto stats = cache.stats();
    std::cout << "{\"path\": \"" << sim::jsonEscape(cache.filePath())
              << "\", \"entries\": " << cache.size()
              << ", \"simulation_entries\": " << stats.simulationEntries
              << ", \"analysis_entries\": " << stats.analysisEntries
              << ", \"file_bytes\": " << stats.fileBytes
              << ", \"loaded\": " << stats.loaded
              << ", \"rejected_records\": " << stats.rejected
              << ", \"version_mismatch\": "
              << (stats.versionMismatch ? "true" : "false");
    if (extended_json) {
        // Extended fields ride behind --json only: the plain document
        // above is pinned byte-for-byte by the CLI tests.
        std::cout << ", \"hit_rate\": " << stats.hitRate()
                  << ", \"last_prune_bytes\": " << stats.lastPruneBytes
                  << ", \"entries_by_type\": {\"simulation\": "
                  << stats.simulationEntries
                  << ", \"analysis\": " << stats.analysisEntries
                  << "}";
    }
    std::cout << "}\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i)
        args.argv.emplace_back(argv[i]);

    if (args.done()) {
        usage(std::cerr);
        return 1;
    }

    const std::string command = args.take();
    if (command == "worker") {
        // Hidden: the process-pool re-enters this binary here with a
        // shard file written by `sweep --workers` (sim/pool.hpp).
        return sim::poolWorkerMain(args.argv.size() > 1
                                       ? std::vector<std::string>(
                                             args.argv.begin() + 1,
                                             args.argv.end())
                                       : std::vector<std::string>{});
    }
    if (command == "run")
        return cmdRun(std::move(args));
    if (command == "analyze")
        return cmdAnalyze(std::move(args));
    if (command == "sweep")
        return cmdSweep(std::move(args));
    if (command == "tune")
        return cmdTune(std::move(args));
    if (command == "serve")
        return cmdServe(std::move(args));
    if (command == "stats")
        return cmdStats(std::move(args));
    if (command == "list")
        return cmdList(std::move(args));
    if (command == "cache")
        return cmdCache(std::move(args));
    if (command == "--help" || command == "help") {
        usage(std::cout);
        return 0;
    }
    if (command == "--list") {
        // Deprecated flag spelling of `list`.
        std::cerr << "note: '--list' is deprecated; use "
                     "'simulate_cli list'\n";
        return cmdList(std::move(args));
    }
    if (!command.empty() && command[0] == '-') {
        // Deprecated flag-style invocation: route to `run`.
        std::cerr << "note: flag-style invocation is deprecated; use "
                     "'simulate_cli run ...'\n";
        args.next = 0;
        return cmdRun(std::move(args));
    }
    std::cerr << "error: unknown command '" << command << "'\n\n";
    usage(std::cerr);
    return 1;
}
