/**
 * @file
 * Command-line simulator front end — the "release binary" of the
 * repository, now a thin shell over the vegeta::sim facade: pick a
 * Table IV workload (or give explicit GEMM dims), an engine, a
 * sparsity pattern, and simulate; optionally write or replay a trace
 * file, or emit the result as CSV/JSON.
 *
 * Usage:
 *   simulate_cli --workload BERT-L1 --engine VEGETA-S-16-2 \
 *                --pattern 2 [--no-of] [--naive] [--trace-out f.vgtr]
 *   simulate_cli --gemm 256x256x2048 --engine VEGETA-D-1-2 --pattern 4
 *   simulate_cli --trace-in f.vgtr --engine VEGETA-S-2-2
 *   simulate_cli --list
 */

#include <iostream>
#include <string>

#include "cpu/trace_io.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace vegeta;

enum class OutputFormat
{
    Text,
    Csv,
    Json,
};

void
usage()
{
    std::cout
        << "vegeta simulate_cli\n"
           "  --list                     list workloads and engines\n"
           "  --workload NAME            a Table IV layer\n"
           "  --gemm MxNxK               explicit GEMM dimensions\n"
           "  --engine NAME              engine (default "
           "VEGETA-S-16-2)\n"
           "  --pattern N                layer-wise N:4 (1/2/4, "
           "default 2)\n"
           "  --no-of                    disable output forwarding\n"
           "  --naive                    Listing 1 kernel (no C "
           "blocking)\n"
           "  --csv | --json             machine-readable output\n"
           "  --trace-out FILE           save the generated trace\n"
           "  --trace-in FILE            replay a saved trace\n";
}

void
report(const sim::SimulationResult &result)
{
    std::cout << "workload:           " << result.workload << "\n"
              << "engine:             " << result.engine << "\n"
              << "pattern:            " << result.layerN
              << ":4 (executes " << result.executedN
              << ":4 on this engine)\n"
              << "kernel:             " << result.kernel << "\n"
              << "output forwarding:  "
              << (result.outputForwarding ? "on" : "off") << "\n"
              << "retired ops:        " << result.instructions << "\n"
              << "core cycles:        " << result.coreCycles << "\n"
              << "runtime @ 2 GHz:    " << result.runtimeMs()
              << " ms\n"
              << "engine instrs:      " << result.engineInstructions
              << "\n"
              << "MAC utilization:    " << result.macUtilization * 100.0
              << " %\n"
              << "L1 hits / misses:   " << result.cacheHits << " / "
              << result.cacheMisses << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name;
    std::string gemm_text;
    bool have_workload = false;
    bool have_gemm = false;
    std::string engine_name = "VEGETA-S-16-2";
    std::string trace_out, trace_in;
    u32 pattern = 2;
    bool of = true;
    bool naive = false;
    OutputFormat format = OutputFormat::Text;

    const sim::Simulator simulator;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--list") {
            std::cout << "workloads:\n";
            for (const auto &w : simulator.workloads().workloads())
                std::cout << "  " << w.name << " (" << w.gemm.m << "x"
                          << w.gemm.n << "x" << w.gemm.k << ")\n";
            std::cout << "engines:\n";
            for (const auto &name : simulator.engines().names())
                std::cout << "  " << name << "\n";
            return 0;
        } else if (arg == "--workload") {
            workload_name = next();
            have_workload = true;
        } else if (arg == "--gemm") {
            gemm_text = next();
            have_gemm = true;
        } else if (arg == "--engine") {
            engine_name = next();
        } else if (arg == "--pattern") {
            // Strict parse: atoi would fold garbage and negatives to
            // silent wrong patterns; the builder then checks 1/2/4.
            const std::string text = next();
            const auto parsed = sim::parseU32(text);
            if (!parsed) {
                std::cerr << "error: --pattern expects 1, 2, or 4, "
                             "got '"
                          << text << "'\n";
                return 1;
            }
            pattern = *parsed;
        } else if (arg == "--no-of") {
            of = false;
        } else if (arg == "--naive") {
            naive = true;
        } else if (arg == "--csv") {
            format = OutputFormat::Csv;
        } else if (arg == "--json") {
            format = OutputFormat::Json;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-in") {
            trace_in = next();
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    auto builder = simulator.request()
                       .engine(engine_name)
                       .pattern(pattern)
                       .outputForwarding(of)
                       .kernel(naive ? sim::KernelVariant::Naive
                                     : sim::KernelVariant::Optimized);
    if (have_workload)
        builder.workload(workload_name);
    else if (have_gemm)
        builder.gemm(gemm_text);
    else
        builder.workload("GPT-L1"); // the seed's default layer

    auto request = builder.build();
    if (!request) {
        std::cerr << "error: " << builder.error() << " (try --list)\n";
        return 1;
    }

    sim::SimulationResult result;
    if (!trace_in.empty()) {
        const auto trace = cpu::readTraceFile(trace_in);
        if (!trace) {
            std::cerr << "cannot read trace: " << trace_in << "\n";
            return 1;
        }
        // The replayed trace, not the builder's default workload, is
        // what the result describes.
        request->label = "trace:" + trace_in;
        if (const auto error = simulator.replayError(*trace, *request)) {
            std::cerr << "cannot replay on " << request->engine << ": "
                      << *error << "\n";
            return 1;
        }
        if (format == OutputFormat::Text)
            std::cout << "replaying " << trace->size() << " ops from "
                      << trace_in << "\n";
        result = simulator.replay(*trace, *request);
    } else if (!trace_out.empty()) {
        // One generation pass: the facade hands back the exact trace
        // it measured so it can be replayed across engine configs.
        cpu::Trace trace;
        result = simulator.run(*request, &trace);
        if (!cpu::writeTraceFile(trace_out, trace)) {
            std::cerr << "cannot write trace: " << trace_out << "\n";
            return 1;
        }
        if (format == OutputFormat::Text)
            std::cout << "trace saved:        " << trace_out << " ("
                      << trace.size() << " ops)\n";
    } else {
        result = simulator.run(*request);
    }

    switch (format) {
      case OutputFormat::Text:
        report(result);
        break;
      case OutputFormat::Csv:
        sim::writeCsv(std::cout, {result});
        break;
      case OutputFormat::Json:
        sim::writeJson(std::cout, {result});
        break;
    }
    return 0;
}
