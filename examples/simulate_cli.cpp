/**
 * @file
 * Command-line simulator front end — the "release binary" of the
 * repository: pick a Table IV workload (or give explicit GEMM dims),
 * an engine, a sparsity pattern, and simulate; optionally write or
 * replay a trace file.
 *
 * Usage:
 *   simulate_cli --workload BERT-L1 --engine VEGETA-S-16-2 \
 *                --pattern 2 [--no-of] [--naive] [--trace-out f.vgtr]
 *   simulate_cli --gemm 256x256x2048 --engine VEGETA-D-1-2 --pattern 4
 *   simulate_cli --trace-in f.vgtr --engine VEGETA-S-2-2
 *   simulate_cli --list
 */

#include <cstring>
#include <iostream>
#include <string>

#include "cpu/trace_io.hpp"
#include "kernels/driver.hpp"
#include "kernels/network.hpp"

namespace {

using namespace vegeta;
using namespace vegeta::kernels;

void
usage()
{
    std::cout
        << "vegeta simulate_cli\n"
           "  --list                     list workloads and engines\n"
           "  --workload NAME            a Table IV layer\n"
           "  --gemm MxNxK               explicit GEMM dimensions\n"
           "  --engine NAME              engine (default "
           "VEGETA-S-16-2)\n"
           "  --pattern N                layer-wise N:4 (1/2/4, "
           "default 2)\n"
           "  --no-of                    disable output forwarding\n"
           "  --naive                    Listing 1 kernel (no C "
           "blocking)\n"
           "  --trace-out FILE           save the generated trace\n"
           "  --trace-in FILE            replay a saved trace\n";
}

bool
parseGemm(const std::string &text, GemmDims &dims)
{
    unsigned m = 0, n = 0, k = 0;
    if (std::sscanf(text.c_str(), "%ux%ux%u", &m, &n, &k) != 3)
        return false;
    if (m == 0 || n == 0 || k == 0)
        return false;
    dims = {m, n, k};
    return true;
}

void
report(const cpu::SimResult &sim, const engine::EngineConfig &engine,
       bool of)
{
    std::cout << "engine:             " << engine.toString() << "\n"
              << "output forwarding:  " << (of ? "on" : "off") << "\n"
              << "retired ops:        " << sim.retiredOps << "\n"
              << "core cycles:        " << sim.totalCycles << "\n"
              << "runtime @ 2 GHz:    "
              << static_cast<double>(sim.totalCycles) / 2e9 * 1e3
              << " ms\n"
              << "engine instrs:      " << sim.engineInstructions << "\n"
              << "MAC utilization:    " << sim.macUtilization * 100.0
              << " %\n"
              << "L1 hits / misses:   " << sim.cacheHits << " / "
              << sim.cacheMisses << "\n";
    for (const auto &[kind, count] : sim.kindCounts)
        std::cout << "  " << cpu::uopKindName(kind) << ": " << count
                  << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name;
    std::string gemm_text;
    std::string engine_name = "VEGETA-S-16-2";
    std::string trace_out, trace_in;
    u32 pattern = 2;
    bool of = true;
    bool naive = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (arg == "--list") {
            std::cout << "workloads:\n";
            for (const auto &w : tableIVWorkloads())
                std::cout << "  " << w.name << " (" << w.gemm.m << "x"
                          << w.gemm.n << "x" << w.gemm.k << ")\n";
            std::cout << "engines:\n";
            for (const auto &e : engine::allEvaluatedConfigs())
                std::cout << "  " << e.name << "\n";
            return 0;
        } else if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--gemm") {
            gemm_text = next();
        } else if (arg == "--engine") {
            engine_name = next();
        } else if (arg == "--pattern") {
            pattern = static_cast<u32>(std::atoi(next()));
        } else if (arg == "--no-of") {
            of = false;
        } else if (arg == "--naive") {
            naive = true;
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-in") {
            trace_in = next();
        } else {
            usage();
            return arg == "--help" ? 0 : 1;
        }
    }

    const auto engine = engine::configByName(engine_name);
    if (!engine) {
        std::cerr << "unknown engine: " << engine_name << "\n";
        return 1;
    }
    if (pattern != 1 && pattern != 2 && pattern != 4) {
        std::cerr << "pattern must be 1, 2, or 4\n";
        return 1;
    }

    cpu::Trace trace;
    if (!trace_in.empty()) {
        auto loaded = cpu::readTraceFile(trace_in);
        if (!loaded) {
            std::cerr << "cannot read trace: " << trace_in << "\n";
            return 1;
        }
        trace = std::move(*loaded);
        std::cout << "replaying " << trace.size() << " ops from "
                  << trace_in << "\n";
    } else {
        GemmDims dims{256, 256, 2048};
        std::string label = "GPT-L1 (default)";
        if (!workload_name.empty()) {
            bool found = false;
            for (const auto &w : tableIVWorkloads()) {
                if (w.name == workload_name) {
                    dims = w.gemm;
                    label = w.name;
                    found = true;
                }
            }
            if (!found) {
                std::cerr << "unknown workload: " << workload_name
                          << " (try --list)\n";
                return 1;
            }
        } else if (!gemm_text.empty()) {
            if (!parseGemm(gemm_text, dims)) {
                std::cerr << "bad --gemm format, expected MxNxK\n";
                return 1;
            }
            label = gemm_text;
        }

        const u32 executed_n = engine->effectiveN(pattern);
        KernelOptions opts;
        opts.optimized = !naive;
        opts.traceOnly = true;
        const auto run = runSpmmKernel(dims, executed_n, opts);
        trace = std::move(run.trace);
        std::cout << "workload:           " << label << "\n"
                  << "pattern:            " << pattern << ":4 (executes "
                  << executed_n << ":4 on this engine)\n";
        if (!trace_out.empty()) {
            if (!cpu::writeTraceFile(trace_out, trace)) {
                std::cerr << "cannot write trace: " << trace_out << "\n";
                return 1;
            }
            std::cout << "trace saved:        " << trace_out << " ("
                      << trace.size() << " ops)\n";
        }
    }

    cpu::CoreConfig core;
    core.outputForwarding = of && engine->sparse;
    cpu::TraceCpu cpu_model(core, *engine);
    report(cpu_model.run(trace), *engine, core.outputForwarding);
    return 0;
}
