/**
 * @file
 * Design-space exploration example: performance (cycle model), area,
 * power, and frequency for every Table III engine on one workload --
 * the trade-off study of paper Sections VI-C / VI-D in one table,
 * driven entirely through the vegeta::sim facade (trace requests for
 * the cycle numbers, the fig14-area-power analytical backend for the
 * physical numbers).
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "sim/session.hpp"

int
main()
{
    using namespace vegeta;

    const char *workload = "GPT-L1";
    sim::Session simulator;
    simulator.enableCache();

    const auto layer = simulator.workloads().find(workload);
    if (!layer) {
        std::cerr << "unknown workload: " << workload << "\n";
        return 1;
    }
    std::cout << "Design-space exploration on " << layer->name << " ("
              << layer->gemm.m << "x" << layer->gemm.n << "x"
              << layer->gemm.k << "), 2:4 layer-wise sparsity\n\n";

    // Physical numbers from the analytical registry.
    sim::AnalyticalRequest physical_request;
    physical_request.model = "fig14-area-power";
    const auto physical = simulator.analyze(physical_request);

    // Cycle numbers from one deduplicated parallel sweep: each Table
    // III engine (OF on the sparse ones) plus the RASA-DM baseline.
    const auto configs = simulator.engines().tableIIIConfigs();
    std::vector<sim::SimulationRequest> requests;
    auto build = [&](const std::string &engine, bool of) {
        auto builder = simulator.request()
                           .workload(workload)
                           .engine(engine)
                           .pattern(2)
                           .outputForwarding(of);
        const auto request = builder.build();
        if (!request) {
            std::cerr << "bad request: " << builder.error() << "\n";
            std::exit(1);
        }
        requests.push_back(*request);
    };
    build("VEGETA-D-1-2", false); // baseline first
    for (const auto &cfg : configs)
        build(cfg.name, cfg.sparse);
    const auto results = simulator.runBatch(requests);
    const Cycles baseline_cycles = results[0].coreCycles;

    Table table({"engine", "cycles", "speedup", "norm_area",
                 "norm_power", "max_GHz", "perf/area"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto &cfg = configs[i];
        const auto &m = results[i + 1];
        const double speedup =
            static_cast<double>(baseline_cycles) /
            static_cast<double>(m.coreCycles);
        double area = 1.0, power = 1.0, freq = 0.0;
        for (std::size_t r = 0; r < physical.rows.size(); ++r) {
            if (physical.text(r, "engine") == cfg.name) {
                area = physical.number(r, "norm_area");
                power = physical.number(r, "norm_power");
                freq = physical.number(r, "max_freq_GHz");
            }
        }
        table.row()
            .cell(cfg.name + (cfg.sparse ? " +OF" : ""))
            .cell(static_cast<unsigned long long>(m.coreCycles))
            .cell(speedup, 2)
            .cell(area, 3)
            .cell(power, 3)
            .cell(freq, 2)
            .cell(speedup / area, 2);
    }
    table.print(std::cout);

    std::cout << "\nVEGETA-S-8-2 / S-16-2 pair the full sparse "
                 "speed-up with *less* area than the dense baseline "
                 "(Section VI-D) -- the paper's recommended design "
                 "points.\n";
    return 0;
}
