/**
 * @file
 * Design-space exploration example: performance (cycle model), area,
 * power, and frequency for every Table III engine on one workload --
 * the trade-off study of paper Sections VI-C / VI-D in one table.
 */

#include <iostream>

#include "common/table.hpp"
#include "engine/area_model.hpp"
#include "kernels/driver.hpp"

int
main()
{
    using namespace vegeta;
    using namespace vegeta::kernels;

    Workload layer;
    layer.name = "GPT-L1";
    layer.gemm = {256, 256, 2048};

    std::cout << "Design-space exploration on " << layer.name << " ("
              << layer.gemm.m << "x" << layer.gemm.n << "x"
              << layer.gemm.k << "), 2:4 layer-wise sparsity\n\n";

    const auto physical =
        engine::figure14Series(engine::allTableIIIConfigs());
    const auto baseline =
        simulateLayer(layer, 2, engine::vegetaD12(), false);

    Table table({"engine", "cycles", "speedup", "norm_area",
                 "norm_power", "max_GHz", "perf/area"});
    for (const auto &cfg : engine::allTableIIIConfigs()) {
        const auto m = simulateLayer(layer, 2, cfg, cfg.sparse);
        const double speedup =
            static_cast<double>(baseline.coreCycles) /
            static_cast<double>(m.coreCycles);
        double area = 1.0, power = 1.0, freq = 0.0;
        for (const auto &p : physical) {
            if (p.name == cfg.name) {
                area = p.normalizedArea;
                power = p.normalizedPower;
                freq = p.maxFrequencyGhz;
            }
        }
        table.row()
            .cell(cfg.name + (cfg.sparse ? " +OF" : ""))
            .cell(static_cast<unsigned long long>(m.coreCycles))
            .cell(speedup, 2)
            .cell(area, 3)
            .cell(power, 3)
            .cell(freq, 2)
            .cell(speedup / area, 2);
    }
    table.print(std::cout);

    std::cout << "\nVEGETA-S-8-2 / S-16-2 pair the full sparse "
                 "speed-up with *less* area than the dense baseline "
                 "(Section VI-D) -- the paper's recommended design "
                 "points.\n";
    return 0;
}
