/**
 * @file
 * Quickstart: the smallest end-to-end VEGETA flow.
 *
 * 1. Build a random weight tile and prune it to 2:4 structured
 *    sparsity.
 * 2. Compress it (non-zero values + 2-bit metadata, paper Figure 2).
 * 3. Execute one TILE_SPMM_U on the functional emulator.
 * 4. Check the result against a plain dense GEMM.
 * 5. Ask the facade's pipelining backend what the instruction costs
 *    on a VEGETA-S-16-2 vs the dense RASA-DM baseline.
 */

#include <iostream>

#include "common/random.hpp"
#include "isa/emulator.hpp"
#include "sim/session.hpp"
#include "sparsity/pruning.hpp"

int
main()
{
    using namespace vegeta;

    // --- 1. Weights: a 16x64 tile pruned to 2:4 ---------------------
    Rng rng(2024);
    const MatrixBF16 dense_weights = randomMatrixBF16(16, 64, rng);
    const MatrixBF16 weights =
        magnitudePruneNM(dense_weights, pattern24());
    std::cout << "Pruned weight tile: " << weights.rows() << "x"
              << weights.cols() << ", sparsity "
              << sparsityDegree(weights) * 100 << "%\n";

    // --- 2. Compress: 16x32 values + 128 B metadata ------------------
    const auto compressed =
        CompressedTile::compress(weights, pattern24());
    std::cout << "Compressed: " << compressed.values().rows() << "x"
              << compressed.values().cols() << " values ("
              << compressed.values().size() * 2 << " B) + "
              << compressed.packMetadata().size() << " B metadata\n";

    // --- 3. Execute TILE_SPMM_U on the emulator ----------------------
    isa::FlatMemory memory;
    isa::Emulator emu(memory);
    const MatrixBF16 inputs = randomMatrixBF16(64, 16, rng);

    emu.writeTileBF16(isa::treg(4), compressed.values());
    emu.setMetadata(4, compressed.packMetadata());
    emu.writeTileBF16(isa::ureg(0), inputs.transposed());
    emu.writeTileF32(isa::treg(5), MatrixF(16, 16));

    const auto spmm =
        isa::makeTileSpmmU(isa::treg(5), isa::treg(4), isa::ureg(0));
    std::cout << "Executing: " << spmm.toString() << "\n";
    emu.execute(spmm);

    // --- 4. Verify ---------------------------------------------------
    MatrixF expected(16, 16);
    referenceGemm(weights, inputs, expected);
    const float err =
        maxAbsDiff(emu.readTileF32(isa::treg(5), 16, 16), expected);
    std::cout << "Max abs error vs dense reference: " << err
              << (err == 0.0f ? " (bit exact)\n" : "\n");

    // --- 5. Timing: one instruction on two engines -------------------
    const sim::Session simulator;
    sim::AnalyticalRequest timing;
    timing.model = "fig10-pipelining";
    timing.engines = {"VEGETA-S-16-2"};
    timing.params["instructions"] = 1;
    timing.options["op"] = "spmm_u";
    const auto sparse_schedule = simulator.analyze(timing);
    const Cycles sparse_cycles =
        static_cast<Cycles>(sparse_schedule.number(0, "finish"));

    // The dense baseline needs two TILE_GEMMs for the same effective
    // 16x64 tile (no zero skipping) -- a dependent 2-instruction
    // stream accumulating into the same C tile.
    timing.engines = {"VEGETA-D-1-2"};
    timing.params["instructions"] = 2;
    timing.params["dependent"] = 1;
    timing.options["op"] = "gemm";
    const auto dense_schedule = simulator.analyze(timing);
    const Cycles dense_cycles =
        static_cast<Cycles>(dense_schedule.number(1, "finish"));

    std::cout << "VEGETA-S-16-2: 1 TILE_SPMM_U in " << sparse_cycles
              << " engine cycles\n"
              << "RASA-DM:       2 TILE_GEMMs in " << dense_cycles
              << " engine cycles (same effective tile)\n";
    return err == 0.0f ? 0 : 1;
}
