/**
 * @file
 * Unstructured sparsity example (paper Sections III-D / V-E): take a
 * weight matrix with random unstructured sparsity, losslessly
 * transform it to row-wise N:4, execute it with TILE_SPMM_R, and
 * compare the achievable speed-up across sparsity granularities.
 */

#include <iostream>

#include "common/random.hpp"
#include "common/table.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sparsity/pruning.hpp"
#include "sparsity/rowwise_transform.hpp"

int
main()
{
    using namespace vegeta;

    const double degree = 0.93;
    Rng rng(11);
    const MatrixBF16 weights =
        randomUnstructuredMatrix(96, 256, degree, rng);
    const MatrixBF16 acts = randomMatrixBF16(256, 32, rng);

    std::cout << "Unstructured weights: " << weights.rows() << "x"
              << weights.cols() << " at "
              << sparsityDegree(weights) * 100 << "% sparsity\n\n";

    // --- Row-wise profile of the first column chunk ------------------
    const MatrixBF16 chunk = weights.block(0, 0, weights.rows(), 64);
    auto profile = rowNProfile(chunk);
    u32 histogram[5] = {0, 0, 0, 0, 0};
    for (u32 n : profile)
        ++histogram[n];
    std::cout << "Per-row covering N in the first 64-wide chunk: "
              << histogram[0] << " empty, " << histogram[1] << " x 1:4, "
              << histogram[2] << " x 2:4, " << histogram[4]
              << " x 4:4\n\n";

    // --- Lossless execution through TILE_SPMM_R ----------------------
    const auto run = kernels::runRowWiseSpmmKernel(weights, acts);
    MatrixF want(weights.rows(), acts.cols());
    referenceGemm(weights, acts, want);
    std::cout << "TILE_SPMM_R kernel: " << run.tileComputes
              << " tile computes, max abs error vs dense reference "
              << maxAbsDiff(run.c, want) << " (lossless transform)\n\n";

    // --- Granularity comparison (miniature Figure 15) ----------------
    std::cout << "Speed-up over a dense engine by granularity:\n\n";
    Table table({"granularity", "speedup"});
    for (auto g : {SparsityGranularity::LayerWise,
                   SparsityGranularity::TileWise,
                   SparsityGranularity::PseudoRowWise,
                   SparsityGranularity::RowWise}) {
        table.row()
            .cell(granularityName(g))
            .cell(granularitySpeedup(weights, g), 2);
    }
    table.print(std::cout);

    std::cout << "\nRow-wise N:4 covers every non-zero (no accuracy "
                 "loss) while skipping most of the work layer-wise "
                 "hardware cannot.\n";
    return 0;
}
