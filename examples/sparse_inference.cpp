/**
 * @file
 * Sparse DNN inference example: a transformer projection layer
 * (reduced BERT shape) pruned to each supported N:4 pattern, executed
 * with the VEGETA kernels, verified against the dense reference, and
 * timed on the full engine sweep -- a miniature Figure 13.
 */

#include <iostream>

#include "common/random.hpp"
#include "common/table.hpp"
#include "kernels/driver.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sparsity/pruning.hpp"

int
main()
{
    using namespace vegeta;
    using namespace vegeta::kernels;

    // Reduced BERT-L2-like projection: Y = W x X.
    const GemmDims dims{128, 128, 768};
    Rng rng(7);
    const MatrixBF16 dense_w = randomMatrixBF16(dims.m, dims.k, rng);
    const MatrixBF16 acts = randomMatrixBF16(dims.k, dims.n, rng);

    std::cout << "Layer: " << dims.m << "x" << dims.n << "x" << dims.k
              << " (" << dims.macs() << " MACs)\n\n";

    // --- Functional pass per pattern ---------------------------------
    std::cout << "Functional verification (kernel vs reference):\n";
    for (u32 n : {4u, 2u, 1u}) {
        const MatrixBF16 w =
            n == 4 ? dense_w : magnitudePruneNM(dense_w, {n, 4});
        KernelOptions opts;
        const auto run = runSpmmKernel(dims, n, opts, &w, &acts);
        MatrixF want(dims.m, dims.n);
        referenceGemm(w, acts, want);
        std::cout << "  " << n << ":4 -> " << run.tileComputes
                  << " tile computes, max abs error "
                  << maxAbsDiff(run.c, want) << "\n";
    }

    // --- Cycle-level sweep (miniature Figure 13) ---------------------
    std::cout << "\nSimulated runtime (core cycles, engines at "
                 "0.5 GHz):\n\n";
    Workload layer;
    layer.name = "bert-reduced";
    layer.gemm = dims;

    Table table({"engine", "4:4", "2:4", "1:4", "2:4 speedup"});
    const auto baseline =
        simulateLayer(layer, 2, engine::vegetaD12(), false);
    for (const auto &cfg : engine::allEvaluatedConfigs()) {
        const bool of = cfg.sparse;
        const auto d = simulateLayer(layer, 4, cfg, of);
        const auto s24 = simulateLayer(layer, 2, cfg, of);
        const auto s14 = simulateLayer(layer, 1, cfg, of);
        table.row()
            .cell(cfg.name + (of ? " +OF" : ""))
            .cell(static_cast<unsigned long long>(d.coreCycles))
            .cell(static_cast<unsigned long long>(s24.coreCycles))
            .cell(static_cast<unsigned long long>(s14.coreCycles))
            .cell(static_cast<double>(baseline.coreCycles) /
                      static_cast<double>(s24.coreCycles),
                  2);
    }
    table.print(std::cout);
    std::cout << "\n(2:4 speedup is vs RASA-DM running the same "
                 "pruned layer densely.)\n";
    return 0;
}
