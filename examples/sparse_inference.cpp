/**
 * @file
 * Sparse DNN inference example: a transformer projection layer
 * (reduced BERT shape) pruned to each supported N:4 pattern, executed
 * with the VEGETA kernels, verified against the dense reference, and
 * timed on the full engine sweep -- a miniature Figure 13 expressed
 * as one deduplicated vegeta::sim request batch.
 */

#include <cstdlib>
#include <iostream>

#include "common/random.hpp"
#include "common/table.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sim/session.hpp"
#include "sparsity/pruning.hpp"

int
main()
{
    using namespace vegeta;
    using namespace vegeta::kernels;

    // Reduced BERT-L2-like projection: Y = W x X.
    const GemmDims dims{128, 128, 768};
    Rng rng(7);
    const MatrixBF16 dense_w = randomMatrixBF16(dims.m, dims.k, rng);
    const MatrixBF16 acts = randomMatrixBF16(dims.k, dims.n, rng);

    std::cout << "Layer: " << dims.m << "x" << dims.n << "x" << dims.k
              << " (" << dims.macs() << " MACs)\n\n";

    // --- Functional pass per pattern ---------------------------------
    std::cout << "Functional verification (kernel vs reference):\n";
    for (u32 n : {4u, 2u, 1u}) {
        const MatrixBF16 w =
            n == 4 ? dense_w : magnitudePruneNM(dense_w, {n, 4});
        KernelOptions opts;
        const auto run = runSpmmKernel(dims, n, opts, &w, &acts);
        MatrixF want(dims.m, dims.n);
        referenceGemm(w, acts, want);
        std::cout << "  " << n << ":4 -> " << run.tileComputes
                  << " tile computes, max abs error "
                  << maxAbsDiff(run.c, want) << "\n";
    }

    // --- Cycle-level sweep (miniature Figure 13) ---------------------
    std::cout << "\nSimulated runtime (core cycles, engines at "
                 "0.5 GHz):\n\n";
    const sim::Session simulator;

    // One batch: every evaluated engine x each pattern (OF on sparse
    // engines), plus the RASA-DM 2:4 baseline -- which duplicates a
    // grid entry, so the sweep's dedupe runs it only once.
    const auto engines = simulator.engines().names();
    std::vector<sim::SimulationRequest> requests;
    auto build = [&](const std::string &engine, u32 pattern, bool of) {
        auto builder = simulator.request()
                           .gemm(dims)
                           .engine(engine)
                           .pattern(pattern)
                           .outputForwarding(of);
        const auto request = builder.build();
        if (!request) {
            std::cerr << "bad request: " << builder.error() << "\n";
            std::exit(1);
        }
        requests.push_back(*request);
    };
    build("VEGETA-D-1-2", 2, false); // speed-up baseline
    for (const auto &name : engines) {
        const bool of = simulator.engines().find(name)->sparse;
        for (u32 pattern : {4u, 2u, 1u})
            build(name, pattern, of);
    }
    const auto results = simulator.runBatch(requests);
    const Cycles baseline_cycles = results[0].coreCycles;

    Table table({"engine", "4:4", "2:4", "1:4", "2:4 speedup"});
    for (std::size_t e = 0; e < engines.size(); ++e) {
        const bool of = simulator.engines().find(engines[e])->sparse;
        const auto &d = results[1 + e * 3];
        const auto &s24 = results[1 + e * 3 + 1];
        const auto &s14 = results[1 + e * 3 + 2];
        table.row()
            .cell(engines[e] + (of ? " +OF" : ""))
            .cell(static_cast<unsigned long long>(d.coreCycles))
            .cell(static_cast<unsigned long long>(s24.coreCycles))
            .cell(static_cast<unsigned long long>(s14.coreCycles))
            .cell(static_cast<double>(baseline_cycles) /
                      static_cast<double>(s24.coreCycles),
                  2);
    }
    table.print(std::cout);
    std::cout << "\n(2:4 speedup is vs RASA-DM running the same "
                 "pruned layer densely.)\n";
    return 0;
}
