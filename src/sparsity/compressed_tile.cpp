#include "sparsity/compressed_tile.hpp"

#include <numeric>

namespace vegeta {

namespace {

/**
 * Collect the stored (value, in-block position) pairs for one block:
 * the block's non-zeros in position order, padded with zeros at the
 * remaining positions (ascending) up to exactly n entries.
 */
void
compressBlock(const MatrixBF16 &mat, u32 r, u32 b, u32 n, u32 m,
              std::vector<BF16> &values, std::vector<u8> &indices)
{
    std::vector<u8> taken;
    for (u32 e = 0; e < m; ++e) {
        if (!mat.at(r, b * m + e).isZero()) {
            values.push_back(mat.at(r, b * m + e));
            indices.push_back(static_cast<u8>(e));
            taken.push_back(static_cast<u8>(e));
        }
    }
    VEGETA_ASSERT(taken.size() <= n, "block (", r, ",", b, ") has ",
                  taken.size(), " non-zeros > N=", n);
    // Pad with explicit zeros at unused positions (ascending).
    u32 needed = n - static_cast<u32>(taken.size());
    for (u32 e = 0; e < m && needed > 0; ++e) {
        bool used = false;
        for (u8 t : taken)
            if (t == e)
                used = true;
        if (!used) {
            values.push_back(BF16(0.0f));
            indices.push_back(static_cast<u8>(e));
            --needed;
        }
    }
    VEGETA_ASSERT(needed == 0, "could not pad block to N entries");
}

} // namespace

std::vector<u8>
packCodes(const std::vector<u8> &codes, u32 bits)
{
    VEGETA_ASSERT(bits >= 1 && bits <= 8, "unsupported code width: ",
                  bits);
    const u32 mask = (1u << bits) - 1;
    std::vector<u8> bytes((codes.size() * bits + 7) / 8, 0);
    std::size_t bit_cursor = 0;
    for (std::size_t i = 0; i < codes.size(); ++i) {
        VEGETA_ASSERT((codes[i] & ~mask) == 0, "code out of range: ",
                      static_cast<int>(codes[i]), " for width ", bits);
        // Little-endian bit order, codes may straddle byte boundaries
        // (e.g. 3-bit indices for M = 8).
        u32 value = codes[i];
        u32 remaining = bits;
        while (remaining > 0) {
            const std::size_t byte = bit_cursor / 8;
            const u32 offset = bit_cursor % 8;
            const u32 take = std::min(remaining, 8 - offset);
            bytes[byte] |= static_cast<u8>(
                (value & ((1u << take) - 1)) << offset);
            value >>= take;
            remaining -= take;
            bit_cursor += take;
        }
    }
    return bytes;
}

std::vector<u8>
unpackCodes(const std::vector<u8> &bytes, std::size_t count, u32 bits)
{
    VEGETA_ASSERT(bits >= 1 && bits <= 8, "unsupported code width: ",
                  bits);
    VEGETA_ASSERT(bytes.size() * 8 >= count * bits,
                  "metadata too short: ", bytes.size(), " bytes for ",
                  count, " codes of ", bits, " bits");
    std::vector<u8> codes(count);
    std::size_t bit_cursor = 0;
    for (std::size_t i = 0; i < count; ++i) {
        u32 value = 0;
        u32 got = 0;
        while (got < bits) {
            const std::size_t byte = bit_cursor / 8;
            const u32 offset = bit_cursor % 8;
            const u32 take = std::min(bits - got, 8 - offset);
            value |= ((bytes[byte] >> offset) & ((1u << take) - 1))
                     << got;
            got += take;
            bit_cursor += take;
        }
        codes[i] = static_cast<u8>(value);
    }
    return codes;
}

u32
indexBitsForBlockSize(u32 m)
{
    VEGETA_ASSERT(m >= 2 && m <= 16 && (m & (m - 1)) == 0,
                  "block size must be a power of two in [2, 16], got ",
                  m);
    u32 bits = 0;
    while ((1u << bits) < m)
        ++bits;
    return bits;
}

std::vector<u8>
pack2Bit(const std::vector<u8> &codes)
{
    return packCodes(codes, 2);
}

std::vector<u8>
unpack2Bit(const std::vector<u8> &bytes, std::size_t count)
{
    return unpackCodes(bytes, count, 2);
}

// ---------------------------------------------------------------------
// CompressedTile
// ---------------------------------------------------------------------

CompressedTile
CompressedTile::compress(const MatrixBF16 &effective, NMPattern pattern)
{
    // Any power-of-two M up to 16 (Section IV-C generalization); the
    // shipped ISA configuration uses M = 4.
    (void)indexBitsForBlockSize(pattern.m);
    VEGETA_ASSERT(effective.cols() % pattern.m == 0,
                  "effective width not a multiple of M");
    VEGETA_ASSERT(satisfiesNM(effective, pattern), "tile violates ",
                  pattern.toString(), " sparsity");

    CompressedTile tile;
    tile.pattern_ = pattern;
    tile.rows_ = effective.rows();
    tile.blocks_per_row_ = effective.cols() / pattern.m;

    std::vector<BF16> values;
    std::vector<u8> indices;
    values.reserve(std::size_t{tile.rows_} * tile.valuesPerRow());
    for (u32 r = 0; r < tile.rows_; ++r)
        for (u32 b = 0; b < tile.blocks_per_row_; ++b)
            compressBlock(effective, r, b, pattern.n, pattern.m, values,
                          indices);

    tile.values_ = MatrixBF16(tile.rows_, tile.valuesPerRow());
    for (u32 r = 0; r < tile.rows_; ++r)
        for (u32 v = 0; v < tile.valuesPerRow(); ++v)
            tile.values_.at(r, v) =
                values[std::size_t{r} * tile.valuesPerRow() + v];
    tile.indices_ = std::move(indices);
    return tile;
}

MatrixBF16
CompressedTile::decompress() const
{
    MatrixBF16 dense(rows_, effectiveCols());
    for (u32 r = 0; r < rows_; ++r) {
        for (u32 v = 0; v < valuesPerRow(); ++v) {
            u32 block = v / pattern_.n;
            u32 pos = index(r, v);
            dense.at(r, block * pattern_.m + pos) = value(r, v);
        }
    }
    return dense;
}

BF16
CompressedTile::value(u32 r, u32 v) const
{
    return values_.at(r, v);
}

u32
CompressedTile::index(u32 r, u32 v) const
{
    VEGETA_ASSERT(r < rows_ && v < valuesPerRow(), "index out of range");
    return indices_[std::size_t{r} * valuesPerRow() + v];
}

std::vector<u8>
CompressedTile::packMetadata() const
{
    return packCodes(indices_, indexBitsForBlockSize(pattern_.m));
}

CompressedTile
CompressedTile::fromRaw(const MatrixBF16 &values,
                        const std::vector<u8> &metadata, NMPattern pattern)
{
    CompressedTile tile;
    tile.pattern_ = pattern;
    tile.rows_ = values.rows();
    VEGETA_ASSERT(values.cols() % pattern.n == 0,
                  "stored width not a multiple of N");
    tile.blocks_per_row_ = values.cols() / pattern.n;
    tile.values_ = values;
    tile.indices_ =
        unpackCodes(metadata, std::size_t{tile.rows_} * values.cols(),
                    indexBitsForBlockSize(pattern.m));
    return tile;
}

// ---------------------------------------------------------------------
// RowWiseCompressedTile
// ---------------------------------------------------------------------

RowWiseCompressedTile
RowWiseCompressedTile::compress(const MatrixBF16 &effective,
                                const std::vector<u32> &row_n)
{
    VEGETA_ASSERT(effective.cols() % kBlockSize == 0,
                  "effective width not a multiple of M=4");
    VEGETA_ASSERT(row_n.size() == effective.rows(),
                  "row N profile size mismatch");

    RowWiseCompressedTile tile;
    tile.effective_cols_ = effective.cols();
    tile.row_n_ = row_n;

    const u32 blocks = effective.cols() / kBlockSize;
    for (u32 r = 0; r < effective.rows(); ++r) {
        const u32 n = row_n[r];
        VEGETA_ASSERT(n == 1 || n == 2 || n == 4,
                      "illegal row N=", n, " (must be 1, 2, or 4)");
        VEGETA_ASSERT(minimalRowN(effective, r) <= n ||
                          minimalRowN(effective, r) == 0,
                      "row ", r, " does not satisfy ", n, ":4");
        for (u32 b = 0; b < blocks; ++b)
            compressBlock(effective, r, b, n, kBlockSize, tile.values_,
                          tile.indices_);
    }
    return tile;
}

RowWiseCompressedTile
RowWiseCompressedTile::compressAuto(const MatrixBF16 &effective)
{
    std::vector<u32> row_n(effective.rows());
    for (u32 r = 0; r < effective.rows(); ++r) {
        u32 n = minimalRowN(effective, r);
        row_n[r] = n == 0 ? 1 : n; // fully-zero rows stored as 1:4
    }
    return compress(effective, row_n);
}

MatrixBF16
RowWiseCompressedTile::decompress() const
{
    MatrixBF16 dense(rows(), effective_cols_);
    const u32 blocks = effective_cols_ / kBlockSize;
    u32 cursor = 0;
    for (u32 r = 0; r < rows(); ++r) {
        const u32 n = row_n_[r];
        for (u32 b = 0; b < blocks; ++b) {
            for (u32 v = 0; v < n; ++v) {
                u32 pos = indices_[cursor];
                dense.at(r, b * kBlockSize + pos) = values_[cursor];
                ++cursor;
            }
        }
    }
    return dense;
}

u32
RowWiseCompressedTile::valuesInRow(u32 r) const
{
    return row_n_.at(r) * (effective_cols_ / kBlockSize);
}

u32
RowWiseCompressedTile::rowOffset(u32 r) const
{
    VEGETA_ASSERT(r < rows(), "row out of range");
    u32 offset = 0;
    for (u32 i = 0; i < r; ++i)
        offset += valuesInRow(i);
    return offset;
}

u32
RowWiseCompressedTile::totalValues() const
{
    return static_cast<u32>(values_.size());
}

BF16
RowWiseCompressedTile::value(u32 linear) const
{
    VEGETA_ASSERT(linear < values_.size(), "value index out of range");
    return values_[linear];
}

u32
RowWiseCompressedTile::index(u32 linear) const
{
    VEGETA_ASSERT(linear < indices_.size(), "index out of range");
    return indices_[linear];
}

std::vector<u8>
RowWiseCompressedTile::packMetadata() const
{
    return pack2Bit(indices_);
}

u32
RowWiseCompressedTile::encodeRowN(u32 n)
{
    switch (n) {
      case 1:
        return 0;
      case 2:
        return 1;
      case 4:
        return 2;
      default:
        VEGETA_PANIC("illegal row N=", n);
    }
}

u32
RowWiseCompressedTile::decodeRowN(u32 code)
{
    switch (code) {
      case 0:
        return 1;
      case 1:
        return 2;
      case 2:
        return 4;
      default:
        VEGETA_PANIC("illegal row-N code=", code);
    }
}

std::vector<u8>
RowWiseCompressedTile::packRowDescriptors() const
{
    std::vector<u8> codes;
    codes.reserve(row_n_.size());
    for (u32 n : row_n_)
        codes.push_back(static_cast<u8>(encodeRowN(n)));
    return pack2Bit(codes);
}

RowWiseCompressedTile
RowWiseCompressedTile::fromRaw(const std::vector<BF16> &values,
                               const std::vector<u8> &metadata,
                               const std::vector<u8> &row_desc, u32 rows,
                               u32 effective_cols)
{
    RowWiseCompressedTile tile;
    tile.effective_cols_ = effective_cols;
    auto codes = unpack2Bit(row_desc, rows);
    tile.row_n_.reserve(rows);
    for (u8 code : codes)
        tile.row_n_.push_back(decodeRowN(code));

    u32 total = 0;
    for (u32 r = 0; r < rows; ++r)
        total += tile.valuesInRow(r);
    VEGETA_ASSERT(values.size() >= total, "value stream too short: ",
                  values.size(), " < ", total);
    tile.values_.assign(values.begin(), values.begin() + total);
    tile.indices_ = unpack2Bit(metadata, total);
    return tile;
}

} // namespace vegeta
