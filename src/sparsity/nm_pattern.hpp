/**
 * @file
 * N:M structured-sparsity patterns and pattern analysis.
 *
 * An N:M pattern means every aligned block of M consecutive elements
 * (along a row) holds at most N non-zeros (Section II-C of the paper).
 * VEGETA's detailed design uses M = 4 with N in {1, 2, 4}; the analysis
 * here is written for general power-of-two N <= M so the "Flexibility in
 * the Block Size M" discussion (Sections IV-C / V-D) is covered too.
 */

#ifndef VEGETA_SPARSITY_NM_PATTERN_HPP
#define VEGETA_SPARSITY_NM_PATTERN_HPP

#include <string>
#include <vector>

#include "numerics/matrix.hpp"

namespace vegeta {

/** An N:M structured sparsity pattern. */
struct NMPattern
{
    u32 n = 4; ///< max non-zeros per block
    u32 m = 4; ///< block size

    bool operator==(const NMPattern &) const = default;

    /** Fraction of elements guaranteed zero (1 - N/M). */
    double guaranteedSparsity() const { return 1.0 - double(n) / m; }

    /** Density upper bound N/M. */
    double density() const { return double(n) / m; }

    std::string toString() const;
};

/** The three patterns of VEGETA's detailed M=4 design. */
inline constexpr u32 kBlockSize = 4;

NMPattern pattern44();
NMPattern pattern24();
NMPattern pattern14();

/**
 * Legal per-row N values for block size m: powers of two up to m
 * (1, 2, 4 for m = 4).  These are the patterns the SPE muxing can map
 * (Figure 11 shows 4:4 -> SPE-1-4 column, 2:4 -> SPE-2-2, 1:4 -> SPE-4-1).
 */
std::vector<u32> legalRowN(u32 m = kBlockSize);

/** Round n up to the next legal per-row N for block size m. */
u32 roundUpToLegalN(u32 n, u32 m = kBlockSize);

/** Number of non-zeros in block b (size m) of row r. */
u32 blockNonZeros(const MatrixBF16 &mat, u32 r, u32 b, u32 m = kBlockSize);

/**
 * Minimal legal N such that row r satisfies N:m, i.e. the max block
 * non-zero count rounded up to a legal N.  A fully-zero row reports 0;
 * callers decide whether 0 is usable (skipped row) or must be promoted.
 */
u32 minimalRowN(const MatrixBF16 &mat, u32 r, u32 m = kBlockSize);

/** True iff every block of every row has at most pattern.n non-zeros. */
bool satisfiesNM(const MatrixBF16 &mat, NMPattern pattern);

/** Minimal legal N covering all rows of the matrix ("layer-wise" N). */
u32 minimalMatrixN(const MatrixBF16 &mat, u32 m = kBlockSize);

/** Per-row minimal legal N for all rows. */
std::vector<u32> rowNProfile(const MatrixBF16 &mat, u32 m = kBlockSize);

} // namespace vegeta

#endif // VEGETA_SPARSITY_NM_PATTERN_HPP
