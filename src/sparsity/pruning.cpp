#include "sparsity/pruning.hpp"

#include <algorithm>
#include <cmath>

namespace vegeta {

MatrixBF16
magnitudePruneNM(const MatrixBF16 &dense, NMPattern pattern)
{
    VEGETA_ASSERT(dense.cols() % pattern.m == 0,
                  "width not a multiple of M");
    MatrixBF16 pruned(dense.rows(), dense.cols());
    const u32 blocks = dense.cols() / pattern.m;
    std::vector<u32> order(pattern.m);
    for (u32 r = 0; r < dense.rows(); ++r) {
        for (u32 b = 0; b < blocks; ++b) {
            for (u32 e = 0; e < pattern.m; ++e)
                order[e] = e;
            std::stable_sort(order.begin(), order.end(),
                             [&](u32 x, u32 y) {
                                 float ax = std::fabs(
                                     dense.at(r, b * pattern.m + x)
                                         .toFloat());
                                 float ay = std::fabs(
                                     dense.at(r, b * pattern.m + y)
                                         .toFloat());
                                 return ax > ay;
                             });
            for (u32 k = 0; k < pattern.n; ++k) {
                u32 e = order[k];
                pruned.at(r, b * pattern.m + e) =
                    dense.at(r, b * pattern.m + e);
            }
        }
    }
    return pruned;
}

MatrixBF16
maskUnstructuredExact(const MatrixBF16 &dense, double degree, Rng &rng)
{
    VEGETA_ASSERT(degree >= 0.0 && degree <= 1.0, "degree out of [0,1]: ",
                  degree);
    const u32 total = dense.rows() * dense.cols();
    const u32 zeros = static_cast<u32>(
        std::llround(degree * static_cast<double>(total)));
    auto positions = rng.choose(total, zeros);

    MatrixBF16 masked = dense;
    for (u32 p : positions) {
        u32 r = p / dense.cols();
        u32 c = p % dense.cols();
        masked.at(r, c) = BF16(0.0f);
    }
    return masked;
}

MatrixBF16
maskUnstructuredBernoulli(const MatrixBF16 &dense, double degree, Rng &rng)
{
    VEGETA_ASSERT(degree >= 0.0 && degree <= 1.0, "degree out of [0,1]: ",
                  degree);
    MatrixBF16 masked = dense;
    for (u32 r = 0; r < dense.rows(); ++r)
        for (u32 c = 0; c < dense.cols(); ++c)
            if (rng.nextBool(degree))
                masked.at(r, c) = BF16(0.0f);
    return masked;
}

MatrixBF16
randomNMMatrix(u32 rows, u32 cols, NMPattern pattern, Rng &rng)
{
    return magnitudePruneNM(randomMatrixBF16(rows, cols, rng), pattern);
}

MatrixBF16
randomUnstructuredMatrix(u32 rows, u32 cols, double degree, Rng &rng)
{
    return maskUnstructuredExact(randomMatrixBF16(rows, cols, rng), degree,
                                 rng);
}

} // namespace vegeta
