#include "sparsity/nm_pattern.hpp"

#include <algorithm>

namespace vegeta {

std::string
NMPattern::toString() const
{
    return std::to_string(n) + ":" + std::to_string(m);
}

NMPattern
pattern44()
{
    return {4, 4};
}

NMPattern
pattern24()
{
    return {2, 4};
}

NMPattern
pattern14()
{
    return {1, 4};
}

std::vector<u32>
legalRowN(u32 m)
{
    VEGETA_ASSERT(m >= 1 && (m & (m - 1)) == 0,
                  "block size must be a power of two, got ", m);
    std::vector<u32> out;
    for (u32 n = 1; n <= m; n <<= 1)
        out.push_back(n);
    return out;
}

u32
roundUpToLegalN(u32 n, u32 m)
{
    VEGETA_ASSERT(n <= m, "cannot cover ", n, " non-zeros with block size ",
                  m);
    if (n == 0)
        return 0;
    u32 legal = 1;
    while (legal < n)
        legal <<= 1;
    return legal;
}

u32
blockNonZeros(const MatrixBF16 &mat, u32 r, u32 b, u32 m)
{
    u32 nnz = 0;
    for (u32 e = 0; e < m; ++e)
        if (!mat.at(r, b * m + e).isZero())
            ++nnz;
    return nnz;
}

u32
minimalRowN(const MatrixBF16 &mat, u32 r, u32 m)
{
    VEGETA_ASSERT(mat.cols() % m == 0, "matrix width ", mat.cols(),
                  " not a multiple of block size ", m);
    u32 worst = 0;
    for (u32 b = 0; b < mat.cols() / m; ++b)
        worst = std::max(worst, blockNonZeros(mat, r, b, m));
    return roundUpToLegalN(worst, m);
}

bool
satisfiesNM(const MatrixBF16 &mat, NMPattern pattern)
{
    if (mat.cols() % pattern.m != 0)
        return false;
    for (u32 r = 0; r < mat.rows(); ++r)
        for (u32 b = 0; b < mat.cols() / pattern.m; ++b)
            if (blockNonZeros(mat, r, b, pattern.m) > pattern.n)
                return false;
    return true;
}

u32
minimalMatrixN(const MatrixBF16 &mat, u32 m)
{
    u32 worst = 0;
    for (u32 r = 0; r < mat.rows(); ++r)
        worst = std::max(worst, minimalRowN(mat, r, m));
    return worst;
}

std::vector<u32>
rowNProfile(const MatrixBF16 &mat, u32 m)
{
    std::vector<u32> profile(mat.rows());
    for (u32 r = 0; r < mat.rows(); ++r)
        profile[r] = minimalRowN(mat, r, m);
    return profile;
}

} // namespace vegeta
