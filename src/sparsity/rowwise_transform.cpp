#include "sparsity/rowwise_transform.hpp"

#include <algorithm>
#include <array>

namespace vegeta {

namespace {

/**
 * Minimal covering N of row r restricted to columns
 * [c0, c0 + width) (0 means the chunk row is entirely zero).
 */
u32
chunkRowN(const MatrixBF16 &mat, u32 r, u32 c0, u32 width)
{
    u32 worst = 0;
    for (u32 b = 0; b < width / kBlockSize; ++b) {
        u32 nnz = 0;
        for (u32 e = 0; e < kBlockSize; ++e)
            if (!mat.at(r, c0 + b * kBlockSize + e).isZero())
                ++nnz;
        worst = std::max(worst, nnz);
    }
    return roundUpToLegalN(worst, kBlockSize);
}

/**
 * Group rows (already in processing order) into equal-N runs subject to
 * the alignment rule of Section V-E: a 1:4 group needs 4 consecutive
 * rows that are all 1:4-coverable, a 2:4 group needs 2 consecutive rows
 * that are 2:4-coverable; anything else is promoted to 4:4.  Greedy,
 * most-sparse-first at each position.
 */
void
applyGroupingInPlace(std::vector<u32> &n)
{
    const u32 rows = static_cast<u32>(n.size());
    u32 r = 0;
    while (r < rows) {
        bool quad_ok = r + 4 <= rows;
        for (u32 i = 0; quad_ok && i < 4; ++i)
            quad_ok = n[r + i] <= 1;
        if (quad_ok) {
            for (u32 i = 0; i < 4; ++i)
                n[r + i] = 1;
            r += 4;
            continue;
        }
        bool pair_ok = r + 2 <= rows && n[r] <= 2 && n[r + 1] <= 2;
        if (pair_ok) {
            n[r] = n[r + 1] = 2;
            r += 2;
            continue;
        }
        n[r] = 4;
        r += 1;
    }
}

} // namespace

const char *
granularityName(SparsityGranularity g)
{
    switch (g) {
      case SparsityGranularity::Dense:
        return "dense";
      case SparsityGranularity::LayerWise:
        return "layer-wise";
      case SparsityGranularity::TileWise:
        return "tile-wise";
      case SparsityGranularity::PseudoRowWise:
        return "pseudo-row-wise";
      case SparsityGranularity::RowWise:
        return "row-wise";
    }
    VEGETA_PANIC("unknown granularity");
}

std::vector<std::vector<u32>>
assignCoveringN(const MatrixBF16 &mat, SparsityGranularity g,
                TileGeometry geom, bool allow_empty_skip)
{
    VEGETA_ASSERT(geom.colTile % kBlockSize == 0,
                  "column tile must be a multiple of M");
    VEGETA_ASSERT(mat.cols() % geom.colTile == 0, "matrix width ",
                  mat.cols(), " not a multiple of column tile ",
                  geom.colTile);
    const u32 col_tiles = mat.cols() / geom.colTile;
    const u32 rows = mat.rows();

    // Raw minimal per-(column tile, row) covering N.
    std::vector<std::vector<u32>> minimal(col_tiles,
                                          std::vector<u32>(rows, 0));
    for (u32 t = 0; t < col_tiles; ++t)
        for (u32 r = 0; r < rows; ++r)
            minimal[t][r] = chunkRowN(mat, r, t * geom.colTile,
                                      geom.colTile);

    std::vector<std::vector<u32>> assigned = minimal;

    auto promote_empty = [&](u32 value) {
        for (auto &per_tile : assigned)
            for (auto &x : per_tile)
                if (x == 0)
                    x = value;
    };

    switch (g) {
      case SparsityGranularity::Dense: {
        for (auto &per_tile : assigned)
            std::fill(per_tile.begin(), per_tile.end(), kBlockSize);
        break;
      }
      case SparsityGranularity::LayerWise: {
        u32 layer_n = 0;
        for (const auto &per_tile : minimal)
            for (u32 x : per_tile)
                layer_n = std::max(layer_n, x);
        if (layer_n == 0)
            layer_n = 1;
        for (auto &per_tile : assigned)
            std::fill(per_tile.begin(), per_tile.end(), layer_n);
        break;
      }
      case SparsityGranularity::TileWise: {
        for (u32 t = 0; t < col_tiles; ++t) {
            for (u32 r0 = 0; r0 < rows; r0 += geom.rowTile) {
                const u32 r1 = std::min(rows, r0 + geom.rowTile);
                u32 tile_n = 0;
                for (u32 r = r0; r < r1; ++r)
                    tile_n = std::max(tile_n, minimal[t][r]);
                if (tile_n == 0 && !allow_empty_skip)
                    tile_n = 1;
                for (u32 r = r0; r < r1; ++r)
                    assigned[t][r] = tile_n;
            }
        }
        break;
      }
      case SparsityGranularity::PseudoRowWise: {
        if (!allow_empty_skip)
            promote_empty(1);
        for (auto &per_tile : assigned)
            applyGroupingInPlace(per_tile);
        break;
      }
      case SparsityGranularity::RowWise: {
        if (!allow_empty_skip)
            promote_empty(1);
        // Reordering: grouping applied to the sorted row order.  Since
        // the rows can be permuted arbitrarily, sorting by N and then
        // grouping yields the minimal promotions; we then map the
        // grouped Ns back to the original rows (cost is order
        // independent).
        for (auto &per_tile : assigned) {
            std::vector<u32> order(per_tile.size());
            for (u32 i = 0; i < order.size(); ++i)
                order[i] = i;
            std::stable_sort(order.begin(), order.end(),
                             [&](u32 x, u32 y) {
                                 return per_tile[x] < per_tile[y];
                             });
            std::vector<u32> sorted(per_tile.size());
            for (u32 i = 0; i < order.size(); ++i)
                sorted[i] = per_tile[order[i]];
            applyGroupingInPlace(sorted);
            for (u32 i = 0; i < order.size(); ++i)
                per_tile[order[i]] = sorted[i];
        }
        break;
      }
    }

    // Losslessness invariant: assigned N always covers the minimum.
    for (u32 t = 0; t < col_tiles; ++t)
        for (u32 r = 0; r < rows; ++r)
            VEGETA_ASSERT(assigned[t][r] >= minimal[t][r],
                          "assignment lost coverage at tile ", t, " row ",
                          r);
    return assigned;
}

u64
assignmentWork(const std::vector<std::vector<u32>> &assignment)
{
    u64 work = 0;
    for (const auto &per_tile : assignment)
        for (u32 n : per_tile)
            work += n;
    return work;
}

u64
denseWork(const MatrixBF16 &mat, TileGeometry geom)
{
    const u64 col_tiles = mat.cols() / geom.colTile;
    return col_tiles * mat.rows() * kBlockSize;
}

double
granularitySpeedup(const MatrixBF16 &mat, SparsityGranularity g,
                   TileGeometry geom, bool allow_empty_skip)
{
    auto assignment = assignCoveringN(mat, g, geom, allow_empty_skip);
    const u64 work = assignmentWork(assignment);
    const u64 dense = denseWork(mat, geom);
    VEGETA_ASSERT(work > 0, "assignment has zero work");
    return static_cast<double>(dense) / static_cast<double>(work);
}

RowWiseCompressedTile
transformChunkToRowWise(const MatrixBF16 &chunk)
{
    return RowWiseCompressedTile::compressAuto(chunk);
}

std::vector<std::pair<u32, u32>>
partitionRowsByNBudget(const std::vector<u32> &row_n, u32 n_budget)
{
    std::vector<std::pair<u32, u32>> ranges;
    u32 begin = 0;
    u32 sum = 0;
    for (u32 r = 0; r < row_n.size(); ++r) {
        VEGETA_ASSERT(row_n[r] >= 1 && row_n[r] <= n_budget,
                      "row N out of range: ", row_n[r]);
        if (sum + row_n[r] > n_budget) {
            ranges.emplace_back(begin, r);
            begin = r;
            sum = 0;
        }
        sum += row_n[r];
    }
    if (begin < row_n.size())
        ranges.emplace_back(begin, static_cast<u32>(row_n.size()));
    return ranges;
}

double
rowWiseSpeedupForBlockSize(const MatrixBF16 &mat, u32 m)
{
    // N is assigned per engine-tile-wide column chunk (WA = M * Nrows
    // = 16 * M effective columns, Section V-E), matching what one
    // TILE_SPMM_R instruction covers.
    const u32 chunk_cols = m * 16;
    VEGETA_ASSERT(mat.cols() % chunk_cols == 0, "matrix width ",
                  mat.cols(), " not a multiple of the engine tile "
                  "width ", chunk_cols);
    u64 covered = 0;
    for (u32 t = 0; t < mat.cols() / chunk_cols; ++t) {
        for (u32 r = 0; r < mat.rows(); ++r) {
            u32 worst = 0;
            for (u32 b = 0; b < 16; ++b) {
                u32 nnz = 0;
                for (u32 e = 0; e < m; ++e)
                    if (!mat.at(r, t * chunk_cols + b * m + e).isZero())
                        ++nnz;
                worst = std::max(worst, nnz);
            }
            u32 n = roundUpToLegalN(worst, m);
            if (n == 0)
                n = 1; // empty chunk rows still occupy a minimal slot
            covered += n;
        }
    }
    const u64 dense =
        static_cast<u64>(mat.rows()) * (mat.cols() / chunk_cols) * m;
    VEGETA_ASSERT(covered > 0, "degenerate coverage");
    return static_cast<double>(dense) / static_cast<double>(covered);
}

double
rowWiseEngineCols(const std::vector<u32> &row_n)
{
    std::array<u32, 3> counts = {0, 0, 0}; // N = 4, 2, 1
    for (u32 n : row_n) {
        switch (n) {
          case 4:
            ++counts[0];
            break;
          case 2:
            ++counts[1];
            break;
          case 1:
            ++counts[2];
            break;
          default:
            VEGETA_PANIC("illegal row N=", n);
        }
    }
    return counts[0] + counts[1] / 2.0 + counts[2] / 4.0;
}

} // namespace vegeta
