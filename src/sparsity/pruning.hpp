/**
 * @file
 * Weight pruning and synthetic sparsity generation.
 *
 * The paper evaluates DNN layers pruned to 1:4 / 2:4 / 4:4 structured
 * sparsity (Section VI-B) and layers with "random and unstructured
 * sparsity of varying degrees" (Section VI-E).  magnitudePruneNM
 * implements the standard magnitude-based N:M pruning used by N:M
 * sparsity work [52], [55]; maskUnstructured produces Bernoulli or
 * exact-count random masks.
 */

#ifndef VEGETA_SPARSITY_PRUNING_HPP
#define VEGETA_SPARSITY_PRUNING_HPP

#include "numerics/matrix.hpp"
#include "sparsity/nm_pattern.hpp"

namespace vegeta {

/**
 * Magnitude-prune each aligned block of M to keep its N largest-|v|
 * elements (ties broken toward lower position, deterministically).
 * The result satisfies pattern N:M by construction.
 */
MatrixBF16 magnitudePruneNM(const MatrixBF16 &dense, NMPattern pattern);

/**
 * Zero out a uniformly random subset so that exactly
 * round(degree * size) entries become zero.  Deterministic given rng.
 */
MatrixBF16 maskUnstructuredExact(const MatrixBF16 &dense, double degree,
                                 Rng &rng);

/** Zero each entry independently with probability degree (Bernoulli). */
MatrixBF16 maskUnstructuredBernoulli(const MatrixBF16 &dense, double degree,
                                     Rng &rng);

/** Random matrix already pruned to N:M (generate + prune convenience). */
MatrixBF16 randomNMMatrix(u32 rows, u32 cols, NMPattern pattern, Rng &rng);

/** Random matrix with exact unstructured sparsity degree. */
MatrixBF16 randomUnstructuredMatrix(u32 rows, u32 cols, double degree,
                                    Rng &rng);

} // namespace vegeta

#endif // VEGETA_SPARSITY_PRUNING_HPP
