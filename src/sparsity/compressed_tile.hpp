/**
 * @file
 * Compressed representations of N:M sparse tiles (paper Figure 2).
 *
 * A compressed tile stores, per row, exactly N non-zero values per block
 * of M, plus a 2-bit (log2 M-bit) index per stored value giving its
 * position inside its block.  Blocks with fewer than N non-zeros are
 * padded with explicit zero values at unused positions so the layout is
 * fixed-size -- exactly what the mreg / treg pairing of the VEGETA ISA
 * requires (Section IV-A).
 *
 * Two layouts are provided:
 *  - CompressedTile: uniform N:M over the whole tile (TILE_SPMM_U/V).
 *  - RowWiseCompressedTile: per-row N in {1, 2, 4} with linear packing
 *    (TILE_SPMM_R, Section V-E).
 */

#ifndef VEGETA_SPARSITY_COMPRESSED_TILE_HPP
#define VEGETA_SPARSITY_COMPRESSED_TILE_HPP

#include <vector>

#include "numerics/matrix.hpp"
#include "sparsity/nm_pattern.hpp"

namespace vegeta {

/**
 * A tile compressed with uniform N:M structured sparsity.
 *
 * The detailed VEGETA design fixes M = 4 (2-bit indices fitting the
 * 128 B mreg); the library supports any power-of-two M up to 16 so the
 * Section IV-C / V-D block-size generalization can be studied -- the
 * packed metadata simply grows to log2(M) bits per value, which for a
 * full treg tile at M = 16 needs a 256 B metadata register.
 */
class CompressedTile
{
  public:
    /**
     * Compress a dense effective tile that satisfies pattern N:M.
     * @param effective rows x (blocks * M) dense matrix
     * @param pattern the N:M pattern the tile satisfies
     */
    static CompressedTile compress(const MatrixBF16 &effective,
                                   NMPattern pattern);

    /** Reconstruct the dense effective tile. */
    MatrixBF16 decompress() const;

    NMPattern pattern() const { return pattern_; }
    u32 rows() const { return rows_; }
    u32 blocksPerRow() const { return blocks_per_row_; }
    u32 effectiveCols() const { return blocks_per_row_ * pattern_.m; }
    /** Stored (compressed) values per row: blocksPerRow * N. */
    u32 valuesPerRow() const { return blocks_per_row_ * pattern_.n; }

    /** Stored value v of row r. */
    BF16 value(u32 r, u32 v) const;
    /** In-block position (0..M-1) of stored value v of row r. */
    u32 index(u32 r, u32 v) const;

    /** Values as a rows x valuesPerRow matrix (what goes in the treg). */
    const MatrixBF16 &values() const { return values_; }

    /**
     * Metadata packed log2(M) bits per value, row-major, little-endian
     * within each byte -- the byte image loaded into an mreg by
     * TILE_LOAD_M (128 B for a 16x32 treg tile at M = 4).
     */
    std::vector<u8> packMetadata() const;

    /** Rebuild a tile from treg values + packed metadata. */
    static CompressedTile fromRaw(const MatrixBF16 &values,
                                  const std::vector<u8> &metadata,
                                  NMPattern pattern);

  private:
    NMPattern pattern_;
    u32 rows_ = 0;
    u32 blocks_per_row_ = 0;
    MatrixBF16 values_;          // rows x valuesPerRow
    std::vector<u8> indices_;    // rows * valuesPerRow in-block positions
};

/**
 * A tile compressed with row-wise N:M sparsity: each row r has its own
 * N_r in {1, 2, 4} (M = 4).  Values and 2-bit indices are packed
 * linearly row after row; an additional per-row descriptor (2 bits per
 * row, the "extra metadata, 32x2 bits, or 8 B, at most" of Sec. IV-B)
 * records each row's N.
 */
class RowWiseCompressedTile
{
  public:
    /**
     * Compress a dense effective tile of shape rows x 64 where row r
     * satisfies rowN[r]:4 sparsity (rowN values must be legal: 1, 2, 4).
     */
    static RowWiseCompressedTile compress(const MatrixBF16 &effective,
                                          const std::vector<u32> &row_n);

    /**
     * Analyze + compress in one step: pick the minimal legal N per row
     * (fully-zero rows are stored as 1:4).
     */
    static RowWiseCompressedTile compressAuto(const MatrixBF16 &effective);

    MatrixBF16 decompress() const;

    u32 rows() const { return static_cast<u32>(row_n_.size()); }
    u32 effectiveCols() const { return effective_cols_; }
    u32 rowN(u32 r) const { return row_n_.at(r); }
    const std::vector<u32> &rowNs() const { return row_n_; }

    /** Stored values for row r: rowN(r) * blocksPerRow values. */
    u32 valuesInRow(u32 r) const;
    /** Offset of row r's first value in the linear stream. */
    u32 rowOffset(u32 r) const;
    /** Total stored values (512 for a full treg). */
    u32 totalValues() const;

    BF16 value(u32 linear) const;
    u32 index(u32 linear) const;

    /** Linear value stream (what goes in the treg, row-packed). */
    const std::vector<BF16> &valueStream() const { return values_; }

    /** Packed 2-bit in-block indices (mreg body). */
    std::vector<u8> packMetadata() const;
    /** Packed 2-bit per-row N descriptors (mreg row-descriptor ext.). */
    std::vector<u8> packRowDescriptors() const;

    /** Decode a 2-bit row descriptor code back to N (0->1, 1->2, 2->4). */
    static u32 decodeRowN(u32 code);
    static u32 encodeRowN(u32 n);

    static RowWiseCompressedTile fromRaw(const std::vector<BF16> &values,
                                         const std::vector<u8> &metadata,
                                         const std::vector<u8> &row_desc,
                                         u32 rows, u32 effective_cols);

  private:
    u32 effective_cols_ = 0;
    std::vector<u32> row_n_;
    std::vector<BF16> values_;
    std::vector<u8> indices_;
};

/** Pack a stream of 2-bit codes into bytes (little-endian in each byte). */
std::vector<u8> pack2Bit(const std::vector<u8> &codes);
/** Unpack count 2-bit codes from bytes. */
std::vector<u8> unpack2Bit(const std::vector<u8> &bytes, std::size_t count);

/**
 * General fixed-width code packing (1/2/4/8 bits per code,
 * little-endian within each byte) -- used by block sizes M > 4, whose
 * in-block positions need log2(M) bits each (Section IV-C).
 */
std::vector<u8> packCodes(const std::vector<u8> &codes, u32 bits);
std::vector<u8> unpackCodes(const std::vector<u8> &bytes,
                            std::size_t count, u32 bits);

/** Metadata bits per stored value for block size m (log2(m)). */
u32 indexBitsForBlockSize(u32 m);

} // namespace vegeta

#endif // VEGETA_SPARSITY_COMPRESSED_TILE_HPP
