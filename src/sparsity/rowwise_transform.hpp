/**
 * @file
 * Transforming unstructured sparsity into structured N:M sparsity at
 * different granularities (paper Sections III-D, V-E, VI-E).
 *
 * Given an unstructured sparse matrix, each supported granularity picks
 * a legal N (per row / per tile / per layer) that *covers* every
 * non-zero, making the transformation lossless.  Smaller granularity
 * finds tighter N and therefore more skipped work:
 *
 *  - LayerWise:      one N for the whole matrix (S2TA-like).
 *  - TileWise:       one N per (rowTile x colTile) tile (enhanced S2TA).
 *  - PseudoRowWise:  per-row N, but rows keep their natural order and
 *                    must form aligned groups of equal N (2 rows for
 *                    2:4, 4 rows for 1:4) -- VEGETA-S without the DMA
 *                    reordering of Section V-E.
 *  - RowWise:        per-row N with reordering: rows may be permuted so
 *                    that equal-N rows group together; only leftover
 *                    rows that cannot fill a group are promoted.
 */

#ifndef VEGETA_SPARSITY_ROWWISE_TRANSFORM_HPP
#define VEGETA_SPARSITY_ROWWISE_TRANSFORM_HPP

#include <vector>

#include "sparsity/compressed_tile.hpp"
#include "sparsity/nm_pattern.hpp"

namespace vegeta {

/** Sparsity granularity options compared in Figure 15. */
enum class SparsityGranularity
{
    Dense,         ///< no sparsity exploitation (RASA-like)
    LayerWise,     ///< single N:M for the whole layer (S2TA-like)
    TileWise,      ///< N:M per tile (enhanced S2TA)
    PseudoRowWise, ///< row-wise N:M, natural order, aligned groups
    RowWise,       ///< row-wise N:M with row reordering
};

const char *granularityName(SparsityGranularity g);

/** Geometry of the engine-facing tiles used for the assignment. */
struct TileGeometry
{
    u32 rowTile = 16; ///< rows per tile (a treg holds 16 rows)
    u32 colTile = 64; ///< effective columns per tile (M x Nrows = 64)
};

/**
 * Per-row covering N for every (row, column-tile) of the matrix under a
 * granularity.  result[t][r] is the N assigned to row r within column
 * tile t.  All assignments are lossless: N >= the row's minimal
 * covering N inside that column tile.  Rows whose chunk is entirely
 * zero get N = 0 only if allow_empty_skip; otherwise they are assigned
 * like 1:4 rows.
 */
std::vector<std::vector<u32>> assignCoveringN(const MatrixBF16 &mat,
                                              SparsityGranularity g,
                                              TileGeometry geom = {},
                                              bool allow_empty_skip = false);

/**
 * Structured "work" of an assignment: the number of occupied SPU column
 * slots, sum over rows and column tiles of N.  Engine execution time is
 * proportional to work / (M * Ncols-equivalents); speed-ups are ratios
 * of work (Section V-E: Ncols = N44 + N24/2 + N14/4 per engine tile).
 */
u64 assignmentWork(const std::vector<std::vector<u32>> &assignment);

/** Dense work of the same matrix (every row costs M per column tile). */
u64 denseWork(const MatrixBF16 &mat, TileGeometry geom = {});

/**
 * Speed-up of a granularity over dense execution of the same matrix:
 * denseWork / assignmentWork (compute-bound engine model of Sec. VI-E).
 */
double granularitySpeedup(const MatrixBF16 &mat, SparsityGranularity g,
                          TileGeometry geom = {},
                          bool allow_empty_skip = false);

/**
 * The lossless unstructured -> row-wise N:4 transform of Section III-D
 * applied to one effective chunk (rows x 64): returns the row-wise
 * compressed tile covering every non-zero.  decompress() of the result
 * equals the input with sub-N zeros stored explicitly, i.e. no non-zero
 * is lost.
 */
RowWiseCompressedTile transformChunkToRowWise(const MatrixBF16 &chunk);

/**
 * Partition a row-wise-assigned chunk of R rows into engine tiles, each
 * holding rows whose total N sums to at most budget (32 for a 512-value
 * treg: sum of 16*N_r <= 512).  Rows are taken in the given order
 * (callers sort by N first to model the reordered mapping).
 * Returns the list of [begin, end) row ranges.
 */
std::vector<std::pair<u32, u32>>
partitionRowsByNBudget(const std::vector<u32> &row_n, u32 n_budget = 32);

/**
 * Engine-tile column count for a group of row-wise rows
 * (Ncols = N44 + N24/2 + N14/4, Section V-E).
 */
double rowWiseEngineCols(const std::vector<u32> &row_n);

/**
 * Row-wise covering speed-up for a generalized block size M = 2^m
 * (Sections IV-C / V-D): each row is covered by its minimal legal N
 * (powers of two up to M) and the compute-bound speed-up is
 * sum(M) / sum(N_r).  Larger M offers finer N choices and therefore
 * covers unstructured sparsity more tightly.
 */
double rowWiseSpeedupForBlockSize(const MatrixBF16 &mat, u32 m);

} // namespace vegeta

#endif // VEGETA_SPARSITY_ROWWISE_TRANSFORM_HPP
