/**
 * @file
 * Software bfloat16 (BF16), the input precision of VEGETA tiles.
 *
 * VEGETA targets mixed precision: A and B tiles are BF16, accumulation
 * and C tiles are FP32 (Section III-E of the paper).  BF16 is the top 16
 * bits of an IEEE-754 binary32; conversion from float rounds to nearest
 * even, matching the behaviour of Intel AVX512-BF16 / AMX hardware.
 */

#ifndef VEGETA_NUMERICS_BF16_HPP
#define VEGETA_NUMERICS_BF16_HPP

#include <cstring>

#include "common/types.hpp"

namespace vegeta {

/** A bfloat16 value stored as its 16 raw bits. */
class BF16
{
  public:
    BF16() = default;

    /** Construct from a float with round-to-nearest-even. */
    explicit BF16(float value) : bits_(fromFloatBits(value)) {}

    /** Reinterpret raw bits as a BF16 (no rounding). */
    static BF16
    fromBits(u16 bits)
    {
        BF16 b;
        b.bits_ = bits;
        return b;
    }

    u16 bits() const { return bits_; }

    /** Widen to float; exact (BF16 is a prefix of binary32). */
    float
    toFloat() const
    {
        u32 wide = static_cast<u32>(bits_) << 16;
        float f;
        std::memcpy(&f, &wide, sizeof(f));
        return f;
    }

    bool isZero() const { return (bits_ & 0x7fffu) == 0; }

    bool operator==(const BF16 &other) const = default;

  private:
    static u16 fromFloatBits(float value);

    u16 bits_ = 0;
};

static_assert(sizeof(BF16) == 2, "BF16 must be 2 bytes");

/**
 * One mixed-precision MAC as performed by a VEGETA PE:
 * acc (FP32) += a (BF16) * b (BF16), with the product computed exactly
 * in FP32 (BF16 x BF16 is exactly representable in binary32's 24-bit
 * significand) and a single FP32 rounding at the accumulate.
 */
inline float
macBF16(float acc, BF16 a, BF16 b)
{
    return acc + a.toFloat() * b.toFloat();
}

} // namespace vegeta

#endif // VEGETA_NUMERICS_BF16_HPP
