#include "numerics/matrix.hpp"

#include <cmath>

namespace vegeta {

u64
countNonZeros(const MatrixBF16 &m)
{
    u64 nnz = 0;
    for (u32 r = 0; r < m.rows(); ++r)
        for (u32 c = 0; c < m.cols(); ++c)
            if (!m.at(r, c).isZero())
                ++nnz;
    return nnz;
}

u64
countNonZeros(const MatrixF &m)
{
    u64 nnz = 0;
    for (u32 r = 0; r < m.rows(); ++r)
        for (u32 c = 0; c < m.cols(); ++c)
            if (m.at(r, c) != 0.0f)
                ++nnz;
    return nnz;
}

double
sparsityDegree(const MatrixBF16 &m)
{
    if (m.size() == 0)
        return 0.0;
    const u64 nnz = countNonZeros(m);
    return 1.0 - static_cast<double>(nnz) / static_cast<double>(m.size());
}

MatrixBF16
randomMatrixBF16(u32 rows, u32 cols, Rng &rng)
{
    MatrixBF16 m(rows, cols);
    for (u32 r = 0; r < rows; ++r) {
        for (u32 c = 0; c < cols; ++c) {
            // Avoid exact zeros so that sparsity is controlled solely by
            // the pruning / masking utilities.
            float v = 0.0f;
            while (v == 0.0f)
                v = rng.nextFloat(-1.0f, 1.0f);
            m.at(r, c) = BF16(v);
        }
    }
    return m;
}

MatrixF
randomMatrixF(u32 rows, u32 cols, Rng &rng)
{
    MatrixF m(rows, cols);
    for (u32 r = 0; r < rows; ++r)
        for (u32 c = 0; c < cols; ++c)
            m.at(r, c) = rng.nextFloat(-1.0f, 1.0f);
    return m;
}

MatrixF
widen(const MatrixBF16 &m)
{
    MatrixF f(m.rows(), m.cols());
    for (u32 r = 0; r < m.rows(); ++r)
        for (u32 c = 0; c < m.cols(); ++c)
            f.at(r, c) = m.at(r, c).toFloat();
    return f;
}

MatrixBF16
narrow(const MatrixF &m)
{
    MatrixBF16 b(m.rows(), m.cols());
    for (u32 r = 0; r < m.rows(); ++r)
        for (u32 c = 0; c < m.cols(); ++c)
            b.at(r, c) = BF16(m.at(r, c));
    return b;
}

void
referenceGemm(const MatrixBF16 &a, const MatrixBF16 &b, MatrixF &c)
{
    VEGETA_ASSERT(a.cols() == b.rows(), "GEMM inner dims mismatch: ",
                  a.cols(), " vs ", b.rows());
    VEGETA_ASSERT(c.rows() == a.rows() && c.cols() == b.cols(),
                  "GEMM output dims mismatch");
    for (u32 i = 0; i < a.rows(); ++i) {
        for (u32 j = 0; j < b.cols(); ++j) {
            float acc = c.at(i, j);
            for (u32 k = 0; k < a.cols(); ++k)
                acc = macBF16(acc, a.at(i, k), b.at(k, j));
            c.at(i, j) = acc;
        }
    }
}

float
maxAbsDiff(const MatrixF &x, const MatrixF &y)
{
    VEGETA_ASSERT(x.rows() == y.rows() && x.cols() == y.cols(),
                  "maxAbsDiff dims mismatch");
    float worst = 0.0f;
    for (u32 r = 0; r < x.rows(); ++r)
        for (u32 c = 0; c < x.cols(); ++c)
            worst = std::max(worst, std::fabs(x.at(r, c) - y.at(r, c)));
    return worst;
}

} // namespace vegeta
