#include "numerics/bf16.hpp"

#include <cmath>

namespace vegeta {

u16
BF16::fromFloatBits(float value)
{
    u32 bits;
    std::memcpy(&bits, &value, sizeof(bits));

    // NaN: preserve a quiet NaN with payload bit set so the narrowed
    // value is still a NaN after truncation.
    if (std::isnan(value))
        return static_cast<u16>((bits >> 16) | 0x0040u);

    // Round to nearest even on the 16 discarded bits.
    const u32 rounding_bias = 0x7fffu + ((bits >> 16) & 1u);
    bits += rounding_bias;
    return static_cast<u16>(bits >> 16);
}

} // namespace vegeta
