/**
 * @file
 * Row-major dense matrix container plus reference GEMM.
 *
 * Matrix<T> is the host-side representation used by the sparsity tools,
 * the functional emulator's test oracles, and the kernel drivers.  It is
 * deliberately simple (no expression templates) -- correctness oracle
 * first.
 */

#ifndef VEGETA_NUMERICS_MATRIX_HPP
#define VEGETA_NUMERICS_MATRIX_HPP

#include <vector>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/types.hpp"
#include "numerics/bf16.hpp"

namespace vegeta {

/** Dense row-major matrix. */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    Matrix(u32 rows, u32 cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(std::size_t{rows} * cols, fill)
    {}

    u32 rows() const { return rows_; }
    u32 cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    T &
    at(u32 r, u32 c)
    {
        VEGETA_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                      ") out of range (", rows_, ",", cols_, ")");
        return data_[std::size_t{r} * cols_ + c];
    }

    const T &
    at(u32 r, u32 c) const
    {
        VEGETA_ASSERT(r < rows_ && c < cols_, "matrix index (", r, ",", c,
                      ") out of range (", rows_, ",", cols_, ")");
        return data_[std::size_t{r} * cols_ + c];
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    T *rowPtr(u32 r) { return &at(r, 0); }
    const T *rowPtr(u32 r) const { return &at(r, 0); }

    bool operator==(const Matrix &other) const = default;

    /** Transpose into a new matrix. */
    Matrix
    transposed() const
    {
        Matrix t(cols_, rows_);
        for (u32 r = 0; r < rows_; ++r)
            for (u32 c = 0; c < cols_; ++c)
                t.at(c, r) = at(r, c);
        return t;
    }

    /** Copy the [r0, r0+h) x [c0, c0+w) sub-block. */
    Matrix
    block(u32 r0, u32 c0, u32 h, u32 w) const
    {
        VEGETA_ASSERT(r0 + h <= rows_ && c0 + w <= cols_,
                      "block out of range");
        Matrix b(h, w);
        for (u32 r = 0; r < h; ++r)
            for (u32 c = 0; c < w; ++c)
                b.at(r, c) = at(r0 + r, c0 + c);
        return b;
    }

    /** Paste a block at (r0, c0). */
    void
    setBlock(u32 r0, u32 c0, const Matrix &b)
    {
        VEGETA_ASSERT(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
                      "setBlock out of range");
        for (u32 r = 0; r < b.rows(); ++r)
            for (u32 c = 0; c < b.cols(); ++c)
                at(r0 + r, c0 + c) = b.at(r, c);
    }

  private:
    u32 rows_ = 0;
    u32 cols_ = 0;
    std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixBF16 = Matrix<BF16>;

/** Count of non-zero entries. */
u64 countNonZeros(const MatrixBF16 &m);
u64 countNonZeros(const MatrixF &m);

/** Fraction of zero entries in [0, 1]. */
double sparsityDegree(const MatrixBF16 &m);

/** Random dense matrix with entries drawn uniform in [-1, 1). */
MatrixBF16 randomMatrixBF16(u32 rows, u32 cols, Rng &rng);
MatrixF randomMatrixF(u32 rows, u32 cols, Rng &rng);

/** Widen / narrow between BF16 and float matrices. */
MatrixF widen(const MatrixBF16 &m);
MatrixBF16 narrow(const MatrixF &m);

/**
 * Reference GEMM oracle: C += A x B with BF16 inputs and FP32
 * accumulation in k-order, matching the PE-level MAC ordering used by
 * the functional emulator (so comparisons can be exact, not epsilon).
 */
void referenceGemm(const MatrixBF16 &a, const MatrixBF16 &b, MatrixF &c);

/** Max absolute elementwise difference. */
float maxAbsDiff(const MatrixF &x, const MatrixF &y);

} // namespace vegeta

#endif // VEGETA_NUMERICS_MATRIX_HPP
