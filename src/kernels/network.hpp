/**
 * @file
 * Network-level sparsity studies.
 *
 * VEGETA's design is motivated by layer-wise N:M sparsity: "adopting
 * layer-wise N:M sparsity shows better accuracy compared to
 * network-wise" (Section III-B, citing DominoSearch).  Hardware that
 * only supports one network-wide pattern (e.g. an STC-like 2:4 engine)
 * must run every layer at the densest pattern any layer needs; VEGETA
 * executes each layer at its own N.
 *
 * This module models a network as a sequence of layers with per-layer
 * patterns, simulates end-to-end inference on an engine, and compares
 * the layer-wise and network-wise execution policies.
 */

#ifndef VEGETA_KERNELS_NETWORK_HPP
#define VEGETA_KERNELS_NETWORK_HPP

#include "kernels/driver.hpp"

namespace vegeta::kernels {

/** One layer of a sparse network. */
struct NetworkLayer
{
    Workload workload;
    u32 layerN = 4; ///< the pattern this layer is pruned to (1/2/4)
};

/** A named network: an ordered list of sparse layers. */
struct Network
{
    std::string name;
    std::vector<NetworkLayer> layers;

    u64 totalMacs() const;
};

/** Execution policy for a network on N:M hardware. */
enum class NetworkPolicy
{
    /** Each layer runs at its own N (VEGETA, layer-wise HW). */
    LayerWise,
    /**
     * Every layer runs at the densest N any layer needs
     * (network-wise HW, e.g. a single-pattern engine).
     */
    NetworkWise,
};

/** End-to-end network measurement. */
struct NetworkMeasurement
{
    std::string network;
    std::string engineName;
    NetworkPolicy policy = NetworkPolicy::LayerWise;
    Cycles totalCycles = 0;
    std::vector<Measurement> perLayer;
};

/** Simulate a network on one engine under a policy. */
NetworkMeasurement simulateNetwork(const Network &network,
                                   const engine::EngineConfig &engine,
                                   NetworkPolicy policy,
                                   bool output_forwarding = true);

/**
 * Reference networks built from Table IV layers with the mixed
 * per-layer patterns a DominoSearch-style pruner would produce.
 */
Network resnetFrontNetwork();
Network bertEncoderNetwork();

} // namespace vegeta::kernels

#endif // VEGETA_KERNELS_NETWORK_HPP
