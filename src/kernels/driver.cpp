#include "kernels/driver.hpp"

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace vegeta::kernels {

Measurement
simulateLayer(const Workload &workload, u32 layer_n,
              const engine::EngineConfig &engine, bool output_forwarding,
              const cpu::CoreConfig &core)
{
    const u32 executed_n = engine.effectiveN(layer_n);

    KernelOptions opts;
    opts.traceOnly = true;
    const KernelRun run = runSpmmKernel(workload.gemm, executed_n, opts);

    cpu::CoreConfig core_cfg = core;
    core_cfg.outputForwarding = output_forwarding;
    cpu::TraceCpu cpu_model(core_cfg, engine);
    const cpu::SimResult sim = cpu_model.run(run.trace);

    Measurement m;
    m.workload = workload.name;
    m.engineName = engine.name;
    m.layerN = layer_n;
    m.executedN = executed_n;
    m.outputForwarding = output_forwarding;
    m.coreCycles = sim.totalCycles;
    m.instructions = sim.retiredOps;
    m.tileComputes = run.tileComputes;
    m.macUtilization = sim.macUtilization;
    return m;
}

std::vector<Measurement>
figure13Sweep(const std::vector<Workload> &workloads,
              const std::vector<engine::EngineConfig> &engines,
              const std::vector<u32> &layer_ns)
{
    std::vector<Measurement> out;
    for (const auto &workload : workloads) {
        for (u32 layer_n : layer_ns) {
            for (const auto &engine : engines) {
                out.push_back(simulateLayer(workload, layer_n, engine,
                                            /*output_forwarding=*/false));
                if (engine.sparse)
                    out.push_back(
                        simulateLayer(workload, layer_n, engine,
                                      /*output_forwarding=*/true));
            }
        }
    }
    return out;
}

double
geomeanSpeedupVsDenseBaseline(const std::vector<Workload> &workloads,
                              u32 layer_n,
                              const engine::EngineConfig &engine,
                              bool output_forwarding)
{
    const engine::EngineConfig baseline = engine::vegetaD12();
    std::vector<double> speedups;
    speedups.reserve(workloads.size());
    for (const auto &workload : workloads) {
        const Measurement base =
            simulateLayer(workload, layer_n, baseline, false);
        const Measurement test =
            simulateLayer(workload, layer_n, engine, output_forwarding);
        VEGETA_ASSERT(test.coreCycles > 0, "zero-cycle simulation");
        speedups.push_back(static_cast<double>(base.coreCycles) /
                           static_cast<double>(test.coreCycles));
    }
    return geomean(speedups);
}

} // namespace vegeta::kernels
