#include "kernels/driver.hpp"

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "sim/session.hpp"

namespace vegeta::kernels {

Measurement
simulateLayer(const Workload &workload, u32 layer_n,
              const engine::EngineConfig &engine, bool output_forwarding,
              const cpu::CoreConfig &core)
{
    const u32 executed_n = engine.effectiveN(layer_n);

    KernelOptions opts;
    opts.traceOnly = true;
    const KernelRun run = runSpmmKernel(workload.gemm, executed_n, opts);

    cpu::CoreConfig core_cfg = core;
    core_cfg.outputForwarding = output_forwarding;
    cpu::TraceCpu cpu_model(core_cfg, engine);
    const cpu::SimResult sim = cpu_model.run(run.trace);

    Measurement m;
    m.workload = workload.name;
    m.engineName = engine.name;
    m.layerN = layer_n;
    m.executedN = executed_n;
    m.outputForwarding = output_forwarding;
    m.coreCycles = sim.totalCycles;
    m.instructions = sim.retiredOps;
    m.tileComputes = run.tileComputes;
    m.macUtilization = sim.macUtilization;
    return m;
}

std::vector<Measurement>
figure13Sweep(const std::vector<Workload> &workloads,
              const std::vector<engine::EngineConfig> &engines,
              const std::vector<u32> &layer_ns)
{
    // Delegate to the sim facade: registries built from the caller's
    // sets, the grid in the paper's (workload, pattern, engine, OF)
    // order, executed on one parallel Session batch.
    sim::EngineRegistry engine_reg;
    std::vector<std::string> engine_names;
    for (const auto &engine : engines) {
        engine_reg.add(engine);
        engine_names.push_back(engine.name);
    }
    sim::WorkloadRegistry workload_reg;
    std::vector<std::string> workload_names;
    for (const auto &workload : workloads) {
        workload_reg.add(workload, "sweep");
        workload_names.push_back(workload.name);
    }

    const sim::Session session(std::move(engine_reg),
                               std::move(workload_reg));
    const auto grid = sim::figure13Grid(session, workload_names,
                                        engine_names, layer_ns);
    const auto results = session.runBatch(grid);

    std::vector<Measurement> out;
    out.reserve(results.size());
    for (const auto &r : results) {
        Measurement m;
        m.workload = r.workload;
        m.engineName = r.engine;
        m.layerN = r.layerN;
        m.executedN = r.executedN;
        m.outputForwarding = r.outputForwarding;
        m.coreCycles = r.coreCycles;
        m.instructions = r.instructions;
        m.tileComputes = r.tileComputes;
        m.macUtilization = r.macUtilization;
        out.push_back(m);
    }
    return out;
}

double
geomeanSpeedupVsDenseBaseline(const std::vector<Workload> &workloads,
                              u32 layer_n,
                              const engine::EngineConfig &engine,
                              bool output_forwarding)
{
    const engine::EngineConfig baseline = engine::vegetaD12();
    std::vector<double> speedups;
    speedups.reserve(workloads.size());
    for (const auto &workload : workloads) {
        const Measurement base =
            simulateLayer(workload, layer_n, baseline, false);
        const Measurement test =
            simulateLayer(workload, layer_n, engine, output_forwarding);
        VEGETA_ASSERT(test.coreCycles > 0, "zero-cycle simulation");
        speedups.push_back(static_cast<double>(base.coreCycles) /
                           static_cast<double>(test.coreCycles));
    }
    return geomean(speedups);
}

} // namespace vegeta::kernels
