#include "kernels/im2col.hpp"

#include "common/logging.hpp"

namespace vegeta::kernels {

namespace {

/** Input element (c, iy, ix) with zero padding outside the image. */
BF16
tapValue(const MatrixBF16 &input, const ConvDims &conv, u32 c, i64 iy,
         i64 ix)
{
    if (iy < 0 || iy >= static_cast<i64>(conv.y) || ix < 0 ||
        ix >= static_cast<i64>(conv.x))
        return BF16(0.0f);
    return input.at(c, static_cast<u32>(iy) * conv.x +
                           static_cast<u32>(ix));
}

} // namespace

MatrixBF16
im2colPatches(const MatrixBF16 &input, const ConvDims &conv)
{
    VEGETA_ASSERT(input.rows() == conv.c &&
                      input.cols() == conv.y * conv.x,
                  "input must be C x (Y*X)");
    MatrixBF16 patches(conv.c * conv.r * conv.s, conv.y * conv.x);
    const i64 pad_y = static_cast<i64>(conv.r) / 2;
    const i64 pad_x = static_cast<i64>(conv.s) / 2;
    for (u32 c = 0; c < conv.c; ++c) {
        for (u32 r = 0; r < conv.r; ++r) {
            for (u32 s = 0; s < conv.s; ++s) {
                const u32 row = (c * conv.r + r) * conv.s + s;
                for (u32 y = 0; y < conv.y; ++y) {
                    for (u32 x = 0; x < conv.x; ++x) {
                        const i64 iy = static_cast<i64>(y) + r - pad_y;
                        const i64 ix = static_cast<i64>(x) + s - pad_x;
                        patches.at(row, y * conv.x + x) =
                            tapValue(input, conv, c, iy, ix);
                    }
                }
            }
        }
    }
    return patches;
}

MatrixF
directConv(const MatrixBF16 &weights, const MatrixBF16 &input,
           const ConvDims &conv)
{
    VEGETA_ASSERT(weights.rows() == conv.k &&
                      weights.cols() == conv.c * conv.r * conv.s,
                  "weights must be K x (C*R*S)");
    MatrixF out(conv.k, conv.y * conv.x);
    const i64 pad_y = static_cast<i64>(conv.r) / 2;
    const i64 pad_x = static_cast<i64>(conv.s) / 2;
    for (u32 k = 0; k < conv.k; ++k) {
        for (u32 y = 0; y < conv.y; ++y) {
            for (u32 x = 0; x < conv.x; ++x) {
                float acc = 0.0f;
                for (u32 c = 0; c < conv.c; ++c) {
                    for (u32 r = 0; r < conv.r; ++r) {
                        for (u32 s = 0; s < conv.s; ++s) {
                            const u32 tap = (c * conv.r + r) * conv.s + s;
                            const i64 iy = static_cast<i64>(y) + r - pad_y;
                            const i64 ix = static_cast<i64>(x) + s - pad_x;
                            acc = macBF16(acc, weights.at(k, tap),
                                          tapValue(input, conv, c, iy,
                                                   ix));
                        }
                    }
                }
                out.at(k, y * conv.x + x) = acc;
            }
        }
    }
    return out;
}

} // namespace vegeta::kernels
