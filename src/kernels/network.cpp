#include "kernels/network.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::kernels {

u64
Network::totalMacs() const
{
    u64 total = 0;
    for (const auto &layer : layers)
        total += layer.workload.gemm.macs();
    return total;
}

NetworkMeasurement
simulateNetwork(const Network &network,
                const engine::EngineConfig &engine, NetworkPolicy policy,
                bool output_forwarding)
{
    VEGETA_ASSERT(!network.layers.empty(), "network has no layers");

    // Network-wise hardware runs everything at the densest pattern any
    // layer needs (the max N over layers).
    u32 network_n = 1;
    for (const auto &layer : network.layers)
        network_n = std::max(network_n, layer.layerN);

    NetworkMeasurement out;
    out.network = network.name;
    out.engineName = engine.name;
    out.policy = policy;
    for (const auto &layer : network.layers) {
        const u32 n = policy == NetworkPolicy::LayerWise ? layer.layerN
                                                         : network_n;
        const Measurement m = simulateLayer(
            layer.workload, n, engine,
            output_forwarding && engine.sparse);
        out.totalCycles += m.coreCycles;
        out.perLayer.push_back(m);
    }
    return out;
}

namespace {

NetworkLayer
layer(const std::string &name, u32 n)
{
    for (const auto &w : tableIVWorkloads())
        if (w.name == name)
            return {w, n};
    VEGETA_PANIC("unknown Table IV layer: ", name);
}

} // namespace

Network
resnetFrontNetwork()
{
    // A DominoSearch-style mix: early layers stay denser (accuracy
    // sensitive), deeper layers prune harder.
    Network net;
    net.name = "ResNet50-front";
    net.layers = {
        layer("ResNet50-L1", 4), layer("ResNet50-L2", 2),
        layer("ResNet50-L3", 2), layer("ResNet50-L4", 2),
        layer("ResNet50-L5", 1), layer("ResNet50-L6", 1),
    };
    return net;
}

Network
bertEncoderNetwork()
{
    // One encoder block: QKV + attention-out + FFN layers with the
    // FFN pruned harder than the attention projections.
    Network net;
    net.name = "BERT-encoder";
    net.layers = {
        layer("BERT-L1", 2), layer("BERT-L2", 2), layer("BERT-L3", 2),
        layer("BERT-L1", 1), layer("BERT-L3", 1),
    };
    return net;
}

} // namespace vegeta::kernels
