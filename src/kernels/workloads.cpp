#include "kernels/workloads.hpp"

#include "common/logging.hpp"

namespace vegeta::kernels {

GemmDims
im2colGemm(const ConvDims &conv)
{
    GemmDims dims;
    dims.m = conv.k;
    dims.k = conv.c * conv.r * conv.s;
    dims.n = conv.y * conv.x;
    return dims;
}

namespace {

Workload
convWorkload(const std::string &name, ConvDims conv)
{
    Workload w;
    w.name = name;
    w.gemm = im2colGemm(conv);
    w.paperMacs = conv.macs();
    VEGETA_ASSERT(w.gemm.macs() == w.paperMacs,
                  "im2col MAC mismatch for ", name);
    return w;
}

Workload
gemmWorkload(const std::string &name, GemmDims dims)
{
    Workload w;
    w.name = name;
    w.gemm = dims;
    w.paperMacs = dims.macs();
    return w;
}

} // namespace

std::vector<Workload>
tableIVWorkloads()
{
    return {
        convWorkload("ResNet50-L1", {64, 256, 56, 56, 1, 1}),
        convWorkload("ResNet50-L2", {64, 64, 56, 56, 3, 3}),
        convWorkload("ResNet50-L3", {256, 64, 56, 56, 1, 1}),
        convWorkload("ResNet50-L4", {128, 128, 28, 28, 3, 3}),
        convWorkload("ResNet50-L5", {512, 128, 28, 28, 1, 1}),
        convWorkload("ResNet50-L6", {256, 256, 14, 14, 3, 3}),
        gemmWorkload("BERT-L1", {512, 768, 768}),
        gemmWorkload("BERT-L2", {512, 512, 768}),
        gemmWorkload("BERT-L3", {512, 768, 512}),
        gemmWorkload("GPT-L1", {256, 256, 2048}),
        gemmWorkload("GPT-L2", {512, 512, 2048}),
        gemmWorkload("GPT-L3", {256, 256, 12288}),
    };
}

std::vector<Workload>
workloadsByPrefix(const std::string &prefix)
{
    std::vector<Workload> out;
    for (const auto &w : tableIVWorkloads())
        if (w.name.rfind(prefix, 0) == 0)
            out.push_back(w);
    return out;
}

std::vector<Workload>
quickWorkloads()
{
    return {
        gemmWorkload("quick-small", {32, 32, 128}),
        gemmWorkload("quick-square", {64, 64, 256}),
        gemmWorkload("quick-deep", {32, 32, 512}),
    };
}

} // namespace vegeta::kernels
