/**
 * @file
 * Functional im2col and a direct convolution reference.
 *
 * The evaluation converts convolutional layers to GEMMs via im2col
 * (Section VI-B).  Input activations are held channel-major
 * (C x (H*W)); the patch matrix has one row per (c, r, s) filter tap
 * and one column per output pixel, with stride-1 "same" zero padding
 * so the output is Y x X = H x W.
 */

#ifndef VEGETA_KERNELS_IM2COL_HPP
#define VEGETA_KERNELS_IM2COL_HPP

#include "kernels/workloads.hpp"
#include "numerics/matrix.hpp"

namespace vegeta::kernels {

/**
 * Build the (C*R*S) x (Y*X) patch matrix from a C x (Y*X) input.
 * Out-of-bounds taps read zero (same padding, stride 1).
 */
MatrixBF16 im2colPatches(const MatrixBF16 &input, const ConvDims &conv);

/**
 * Direct convolution reference: weights are K x (C*R*S) (a filter per
 * row, taps in (c, r, s) order); returns K x (Y*X) outputs in FP32.
 * Matches referenceGemm(weights, im2colPatches(input)) exactly
 * (same accumulation order).
 */
MatrixF directConv(const MatrixBF16 &weights, const MatrixBF16 &input,
                   const ConvDims &conv);

} // namespace vegeta::kernels

#endif // VEGETA_KERNELS_IM2COL_HPP
