#include "kernels/gemm_kernels.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "isa/memory.hpp"

namespace vegeta::kernels {

namespace {

// Fixed staging regions in the emulated flat memory.
constexpr Addr kBaseA = 0x1000'0000;
constexpr Addr kBaseMd = 0x2000'0000;
constexpr Addr kBaseB = 0x3000'0000;
constexpr Addr kBaseC = 0x4000'0000;

constexpr u32 kATileBytes = 1024; ///< values always fill one treg
constexpr u32 kMdTileBytes = 192; ///< 136 B image, padded for alignment
constexpr u32 kCTileBytes = 1024; ///< 16 x 16 FP32

/** Emits trace ops into a sink, optionally executing them. */
class Emitter
{
  public:
    Emitter(const KernelOptions &opts, isa::Emulator *emu,
            cpu::TraceSink &sink)
        : opts_(opts), emu_(emu), sink_(sink)
    {
    }

    void
    scalar(u32 count)
    {
        for (u32 i = 0; i < count; ++i)
            sink_.emit(cpu::TraceOp::alu());
        stats_.instructions += count;
    }

    void
    loopEnd()
    {
        scalar(opts_.loopOverheadAlu);
        sink_.emit(cpu::TraceOp::branch());
        ++stats_.instructions;
    }

    void
    tile(const isa::Instruction &in)
    {
        scalar(opts_.scalarOpsPerTileOp);
        sink_.emit(cpu::TraceOp::fromTileInstruction(in));
        ++stats_.instructions;
        if (isa::isTileCompute(in.op))
            ++stats_.tileComputes;
        else if (isa::isTileLoad(in.op))
            ++stats_.tileLoads;
        else
            ++stats_.tileStores;
        if (emu_ != nullptr)
            emu_->execute(in);
    }

    const KernelStats &stats() const { return stats_; }

  private:
    const KernelOptions &opts_;
    isa::Emulator *emu_;
    cpu::TraceSink &sink_;
    KernelStats stats_;
};

MatrixBF16
padMatrix(const MatrixBF16 &m, u32 rows, u32 cols)
{
    MatrixBF16 padded(rows, cols);
    padded.setBlock(0, 0, m);
    return padded;
}

} // namespace

u32
kTileForN(u32 executed_n)
{
    switch (executed_n) {
      case 4:
        return 32;
      case 2:
        return 64;
      case 1:
        return 128;
      default:
        VEGETA_PANIC("executed N must be 1, 2, or 4, got ", executed_n);
    }
}

GemmDims
padProblem(GemmDims dims, u32 executed_n)
{
    const u32 tk = kTileForN(executed_n);
    auto round_up = [](u32 v, u32 to) { return (v + to - 1) / to * to; };
    GemmDims padded;
    padded.m = round_up(dims.m, 16);
    padded.n = round_up(dims.n, 16);
    padded.k = round_up(dims.k, tk);
    return padded;
}

namespace {

/** Shared generator behind the batch and streaming entry points. */
KernelStats
spmmKernelImpl(GemmDims dims, u32 executed_n, const KernelOptions &opts,
               const MatrixBF16 *a, const MatrixBF16 *b,
               cpu::TraceSink &sink, MatrixF *c_out)
{
    const u32 tk = kTileForN(executed_n);
    const GemmDims p = padProblem(dims, executed_n);
    const u32 mt = p.m / 16, nt = p.n / 16, kt = p.k / tk;
    const u32 b_tile_bytes = tk * 32; // 16 rows x tk BF16

    auto addr_a = [&](u32 i, u32 kk) {
        return kBaseA + (std::size_t{i} * kt + kk) * kATileBytes;
    };
    auto addr_md = [&](u32 i, u32 kk) {
        return kBaseMd + (std::size_t{i} * kt + kk) * kMdTileBytes;
    };
    auto addr_b = [&](u32 j, u32 kk) {
        return kBaseB + (std::size_t{j} * kt + kk) * b_tile_bytes;
    };
    auto addr_c = [&](u32 i, u32 j) {
        return kBaseC + (std::size_t{i} * nt + j) * kCTileBytes;
    };

    isa::FlatMemory mem;
    std::optional<isa::Emulator> emu;

    if (!opts.traceOnly) {
        VEGETA_ASSERT(a != nullptr && b != nullptr,
                      "functional mode needs A and B matrices");
        VEGETA_ASSERT(a->rows() == dims.m && a->cols() == dims.k,
                      "A must be m x k");
        VEGETA_ASSERT(b->rows() == dims.k && b->cols() == dims.n,
                      "B must be k x n");
        const MatrixBF16 a_pad = padMatrix(*a, p.m, p.k);
        const MatrixBF16 b_pad = padMatrix(*b, p.k, p.n);
        VEGETA_ASSERT(satisfiesNM(a_pad, {executed_n, 4}),
                      "A does not satisfy the executed pattern ",
                      executed_n, ":4");

        for (u32 i = 0; i < mt; ++i) {
            for (u32 kk = 0; kk < kt; ++kk) {
                const MatrixBF16 chunk =
                    a_pad.block(i * 16, kk * tk, 16, tk);
                if (executed_n == 4) {
                    isa::storeMatrixBF16(mem, addr_a(i, kk), chunk, 64);
                } else {
                    const auto ct = CompressedTile::compress(
                        chunk, {executed_n, 4});
                    isa::storeMatrixBF16(mem, addr_a(i, kk), ct.values(),
                                         64);
                    isa::storeMetadata(mem, addr_md(i, kk),
                                       ct.packMetadata());
                }
            }
        }
        for (u32 j = 0; j < nt; ++j) {
            for (u32 kk = 0; kk < kt; ++kk) {
                const MatrixBF16 bt =
                    b_pad.block(kk * tk, j * 16, tk, 16).transposed();
                isa::storeMatrixBF16(mem, addr_b(j, kk), bt, tk * 2);
            }
        }
        emu.emplace(mem);
    }

    Emitter emit(opts, emu ? &*emu : nullptr, sink);

    // Register plan: B in treg0/ureg0/vreg0 (backing tregs 0-3), A
    // values treg4 (+mreg4), C tiles treg5-7.  The optimized kernel
    // unrolls the j loop over the three C registers so back-to-back
    // accumulations onto the same C tile are three engine
    // instructions apart -- enough to keep a stall-free pipeline on
    // every Table III design (gap 3 x II = 48 >= FF + FS + DR).
    const isa::TileReg a_reg = isa::treg(4);
    VEGETA_ASSERT(opts.cBlocking >= 1 && opts.cBlocking <= 3,
                  "cBlocking must be 1..3 (C tiles live in tregs 5-7)");
    const u32 unroll = opts.optimized ? opts.cBlocking : 1;

    auto c_reg = [](u32 slot) { return isa::treg(static_cast<u8>(5 + slot)); };

    auto emit_b_load = [&](u32 j, u32 kk) {
        switch (executed_n) {
          case 4:
            emit.tile(isa::makeTileLoadT(isa::treg(0), addr_b(j, kk), 64));
            break;
          case 2:
            emit.tile(isa::makeTileLoadU(isa::ureg(0), addr_b(j, kk),
                                         128));
            break;
          default:
            emit.tile(isa::makeTileLoadV(isa::vreg(0), addr_b(j, kk),
                                         256));
            break;
        }
    };
    auto emit_compute = [&](u32 slot) {
        switch (executed_n) {
          case 4:
            emit.tile(isa::makeTileGemm(c_reg(slot), a_reg,
                                        isa::treg(0)));
            break;
          case 2:
            emit.tile(isa::makeTileSpmmU(c_reg(slot), a_reg,
                                         isa::ureg(0)));
            break;
          default:
            emit.tile(isa::makeTileSpmmV(c_reg(slot), a_reg,
                                         isa::vreg(0)));
            break;
        }
    };

    emit.scalar(opts.prologueAlu);
    for (u32 i = 0; i < mt; ++i) {
        for (u32 j0 = 0; j0 < nt; j0 += unroll) {
            const u32 group = std::min(unroll, nt - j0);
            emit.scalar(opts.tileSetupAlu);
            if (opts.optimized)
                for (u32 s = 0; s < group; ++s)
                    emit.tile(isa::makeTileLoadT(
                        c_reg(s), addr_c(i, j0 + s), 64));
            for (u32 kk = 0; kk < kt; ++kk) {
                emit.tile(isa::makeTileLoadT(a_reg, addr_a(i, kk), 64));
                if (executed_n < 4)
                    emit.tile(isa::makeTileLoadM(4, addr_md(i, kk)));
                for (u32 s = 0; s < group; ++s) {
                    emit_b_load(j0 + s, kk);
                    if (!opts.optimized)
                        emit.tile(isa::makeTileLoadT(
                            c_reg(s), addr_c(i, j0 + s), 64));
                    emit_compute(s);
                    if (!opts.optimized)
                        emit.tile(isa::makeTileStoreT(
                            addr_c(i, j0 + s), 64, c_reg(s)));
                }
                emit.loopEnd();
            }
            if (opts.optimized)
                for (u32 s = 0; s < group; ++s)
                    emit.tile(isa::makeTileStoreT(addr_c(i, j0 + s), 64,
                                                  c_reg(s)));
            emit.loopEnd();
        }
        emit.loopEnd();
    }
    emit.scalar(opts.prologueAlu / 2); // epilogue

    if (!opts.traceOnly && c_out != nullptr) {
        MatrixF c_pad(p.m, p.n);
        for (u32 i = 0; i < mt; ++i)
            for (u32 j = 0; j < nt; ++j)
                c_pad.setBlock(i * 16, j * 16,
                               isa::loadMatrixF32(mem, addr_c(i, j), 16,
                                                  16, 64));
        *c_out = c_pad.block(0, 0, dims.m, dims.n);
    }
    return emit.stats();
}

} // namespace

KernelRun
runSpmmKernel(GemmDims dims, u32 executed_n, const KernelOptions &opts,
              const MatrixBF16 *a, const MatrixBF16 *b)
{
    cpu::TraceCollector collector;
    KernelRun run;
    const KernelStats stats = spmmKernelImpl(dims, executed_n, opts, a,
                                             b, collector, &run.c);
    run.trace = collector.take();
    run.tileComputes = stats.tileComputes;
    run.tileLoads = stats.tileLoads;
    run.tileStores = stats.tileStores;
    return run;
}

KernelStats
streamSpmmKernel(GemmDims dims, u32 executed_n,
                 const KernelOptions &opts, cpu::TraceSink &sink)
{
    VEGETA_ASSERT(opts.traceOnly,
                  "streaming kernel generation is trace-only (a "
                  "functional run returns C through runSpmmKernel)");
    return spmmKernelImpl(dims, executed_n, opts, nullptr, nullptr,
                          sink, nullptr);
}

KernelRun
runRowWiseSpmmKernel(const MatrixBF16 &a, const MatrixBF16 &b,
                     const KernelOptions &opts)
{
    VEGETA_ASSERT(!opts.traceOnly,
                  "row-wise kernel is functional only (Section VI-E "
                  "evaluates row-wise analytically)");
    VEGETA_ASSERT(a.cols() == b.rows(), "GEMM inner dims mismatch");

    const u32 m = a.rows();
    auto round_up = [](u32 v, u32 to) { return (v + to - 1) / to * to; };
    const u32 k_pad = round_up(a.cols(), 64);
    const u32 n_pad = round_up(b.cols(), 16);
    const MatrixBF16 a_pad = padMatrix(a, m, k_pad);
    const MatrixBF16 b_pad = padMatrix(b, k_pad, n_pad);
    const u32 kt = k_pad / 64;
    const u32 nt = n_pad / 16;

    isa::FlatMemory mem;
    isa::Emulator emu(mem);
    cpu::TraceCollector collector;
    Emitter emit(opts, &emu, collector);

    MatrixF c_host(m, n_pad);

    const isa::TileReg b_reg = isa::ureg(0);  // tregs 0-1
    const isa::TileReg c_ureg = isa::ureg(1); // tregs 2-3
    const isa::TileReg a_reg = isa::treg(4);

    emit.scalar(opts.prologueAlu);
    for (u32 kk = 0; kk < kt; ++kk) {
        const MatrixBF16 chunk = a_pad.block(0, kk * 64, m, 64);

        // Per-row covering N (fully-zero rows stored as 1:4), then the
        // DMA reordering of Section V-E: rows sorted by descending N so
        // equal-N rows form aligned groups.
        std::vector<u32> row_n(m);
        for (u32 r = 0; r < m; ++r) {
            const u32 n = minimalRowN(chunk, r);
            row_n[r] = n == 0 ? 1 : n;
        }
        std::vector<u32> perm(m);
        std::iota(perm.begin(), perm.end(), 0u);
        std::stable_sort(perm.begin(), perm.end(), [&](u32 x, u32 y) {
            return row_n[x] > row_n[y];
        });
        std::vector<u32> sorted_n(m);
        for (u32 r = 0; r < m; ++r)
            sorted_n[r] = row_n[perm[r]];
        const auto groups = partitionRowsByNBudget(sorted_n, 32);

        // Stage the B^T tiles of this chunk.
        for (u32 j = 0; j < nt; ++j) {
            const MatrixBF16 bt =
                b_pad.block(kk * 64, j * 16, 64, 16).transposed();
            isa::storeMatrixBF16(mem, kBaseB + j * 2048ull, bt, 128);
        }

        for (std::size_t g = 0; g < groups.size(); ++g) {
            const auto [g_begin, g_end] = groups[g];
            const u32 rows = g_end - g_begin;

            // Gather the group's effective rows and compress.
            MatrixBF16 group_a(rows, 64);
            std::vector<u32> group_n(rows);
            for (u32 r = 0; r < rows; ++r) {
                const u32 src = perm[g_begin + r];
                group_n[r] = row_n[src];
                for (u32 c = 0; c < 64; ++c)
                    group_a.at(r, c) = chunk.at(src, c);
            }
            const auto rwt =
                RowWiseCompressedTile::compress(group_a, group_n);

            // Stage the value stream as a 16 x 32 treg image.
            MatrixBF16 stream_image(16, 32);
            for (u32 v = 0; v < rwt.totalValues(); ++v)
                stream_image.at(v / 32, v % 32) = rwt.value(v);
            isa::storeMatrixBF16(mem, kBaseA, stream_image, 64);
            isa::storeMetadata(mem, kBaseMd, rwt.packMetadata(),
                               rwt.packRowDescriptors());

            emit.scalar(opts.tileSetupAlu);
            emit.tile(isa::makeTileLoadT(a_reg, kBaseA, 64));
            emit.tile(isa::makeTileLoadM(4, kBaseMd));
            for (u32 j = 0; j < nt; ++j) {
                // Input-DMA gather of the group's C rows (linear
                // R x 16 FP32 image).
                MatrixF c_gather(rows, 16);
                for (u32 r = 0; r < rows; ++r)
                    for (u32 c = 0; c < 16; ++c)
                        c_gather.at(r, c) =
                            c_host.at(perm[g_begin + r], j * 16 + c);
                isa::storeMatrixF32(mem, kBaseC, c_gather, 64);

                emit.tile(isa::makeTileLoadU(b_reg,
                                             kBaseB + j * 2048ull, 128));
                emit.tile(isa::makeTileLoadU(c_ureg, kBaseC, 128));
                emit.tile(isa::makeTileSpmmR(c_ureg, a_reg, b_reg,
                                             static_cast<u8>(rows)));
                // ureg1's logical rows are 128 B: the two backing
                // tregs hold the even/odd 64 B halves, stored with a
                // 128 B stride to reconstruct the linear image.
                emit.tile(isa::makeTileStoreT(kBaseC, 128,
                                              isa::treg(2)));
                emit.tile(isa::makeTileStoreT(kBaseC + 64, 128,
                                              isa::treg(3)));
                emit.loopEnd();

                // Output-DMA scatter back to original row order.
                const MatrixF c_out =
                    isa::loadMatrixF32(mem, kBaseC, rows, 16, 64);
                for (u32 r = 0; r < rows; ++r)
                    for (u32 c = 0; c < 16; ++c)
                        c_host.at(perm[g_begin + r], j * 16 + c) =
                            c_out.at(r, c);
            }
            emit.loopEnd();
        }
        emit.loopEnd();
    }

    KernelRun run;
    run.trace = collector.take();
    run.tileComputes = emit.stats().tileComputes;
    run.tileLoads = emit.stats().tileLoads;
    run.tileStores = emit.stats().tileStores;
    run.c = c_host.block(0, 0, m, b.cols());
    return run;
}

} // namespace vegeta::kernels
