#include "kernels/vector_kernels.hpp"

#include "common/logging.hpp"

namespace vegeta::kernels {

namespace {

constexpr Addr kVecBaseA = 0x5000'0000;
constexpr Addr kVecBaseB = 0x6000'0000;
constexpr Addr kVecBaseC = 0x7000'0000;

} // namespace

cpu::Trace
generateVectorGemmTrace(GemmDims dims, const VectorKernelOptions &opts)
{
    auto round_up = [](u32 v, u32 to) { return (v + to - 1) / to * to; };
    const u32 m = dims.m;
    const u32 n = round_up(dims.n, 16);
    const u32 k = round_up(dims.k, 2);
    const u32 n_strips = n / 16;
    const u32 k_pairs = k / 2;

    cpu::Trace trace;
    trace.reserve(std::size_t{m} * n_strips * (std::size_t{k_pairs} * 3 +
                                               8));

    for (u32 p = 0; p < opts.prologueAlu; ++p)
        trace.push_back(cpu::TraceOp::alu());

    u32 chain = 1;
    for (u32 i = 0; i < m; ++i) {
        for (u32 jb = 0; jb < n_strips; ++jb) {
            for (u32 s = 0; s < opts.stripSetupAlu; ++s)
                trace.push_back(cpu::TraceOp::alu());
            for (u32 kp = 0; kp < k_pairs; ++kp) {
                // B vector: 2 k-rows x 16 columns of BF16 = 64 B.
                const Addr b_addr =
                    kVecBaseB +
                    (std::size_t{kp} * n_strips + jb) * 64ull;
                trace.push_back(cpu::TraceOp::load(b_addr, 64));
                // A broadcast pair (one line touch per 32 pairs).
                const Addr a_addr =
                    kVecBaseA + (std::size_t{i} * k_pairs + kp) * 4ull;
                trace.push_back(cpu::TraceOp::load(a_addr, 4));
                trace.push_back(cpu::TraceOp::vectorFma(chain));
                if ((kp + 1) % opts.unrollFactor == 0) {
                    trace.push_back(cpu::TraceOp::alu());
                    trace.push_back(cpu::TraceOp::alu());
                    trace.push_back(cpu::TraceOp::branch());
                }
            }
            const Addr c_addr =
                kVecBaseC + (std::size_t{i} * n_strips + jb) * 64ull;
            trace.push_back(cpu::TraceOp::store(c_addr, 64));
            trace.push_back(cpu::TraceOp::alu());
            trace.push_back(cpu::TraceOp::branch());
            ++chain;
        }
    }
    return trace;
}

u64
vectorGemmInstructionCount(GemmDims dims, const VectorKernelOptions &opts)
{
    return generateVectorGemmTrace(dims, opts).size();
}

} // namespace vegeta::kernels
