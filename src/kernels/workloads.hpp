/**
 * @file
 * Evaluation workloads (paper Table IV): representative DNN layers
 * from ResNet50, BERT, and GPT-3, expressed as GEMM problems.
 * Convolutional layers are converted with the im2col mapping
 * (M = K_out, K = C*R*S, N = Y*X for stride-1 same-padding layers).
 */

#ifndef VEGETA_KERNELS_WORKLOADS_HPP
#define VEGETA_KERNELS_WORKLOADS_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace vegeta::kernels {

/** Convolution layer dimensions (Table IV naming). */
struct ConvDims
{
    u32 k = 1; ///< output channels
    u32 c = 1; ///< input channels
    u32 y = 1; ///< output height
    u32 x = 1; ///< output width
    u32 r = 1; ///< filter height
    u32 s = 1; ///< filter width

    u64
    macs() const
    {
        return u64{k} * c * y * x * r * s;
    }
};

/** GEMM problem dimensions: C (m x n) = A (m x k) x B (k x n). */
struct GemmDims
{
    u32 m = 1;
    u32 n = 1;
    u32 k = 1;

    u64
    macs() const
    {
        return u64{m} * n * k;
    }
};

/** im2col: a convolution as a GEMM over the patch matrix. */
GemmDims im2colGemm(const ConvDims &conv);

/** One named evaluation layer. */
struct Workload
{
    std::string name;
    GemmDims gemm;
    u64 paperMacs = 0; ///< "# of MACs" column of Table IV
};

/** All twelve Table IV layers. */
std::vector<Workload> tableIVWorkloads();

/** Subset by prefix ("ResNet50", "BERT", "GPT"). */
std::vector<Workload> workloadsByPrefix(const std::string &prefix);

/**
 * Reduced-size variants (dims scaled down, tile-aligned) for fast
 * regression tests and --quick benchmark runs.
 */
std::vector<Workload> quickWorkloads();

} // namespace vegeta::kernels

#endif // VEGETA_KERNELS_WORKLOADS_HPP
