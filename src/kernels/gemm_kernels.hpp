/**
 * @file
 * Tiled GEMM / SPMM kernels written against the VEGETA ISA.
 *
 * These are the software half of the paper: Listing 1's SPMM loop nest
 * (naive: C loaded/stored inside the k loop) and the optimized variant
 * used for the evaluation (C register-blocked across the k loop).  The
 * same generator runs in two modes:
 *
 *  - functional: data is staged into FlatMemory, every instruction also
 *    executes on the emulator, and the numeric result is returned;
 *  - trace-only: no data is touched, only the dynamic instruction trace
 *    is produced (what Pin hands to MacSim in the paper) -- this keeps
 *    full Table IV layers fast to simulate.
 *
 * Layer-wise N:4 execution: a layer pruned to N:4 runs with
 * executed N' = max(N, engine minimum), so a dense engine executes the
 * sparse layer as 4:4 and an STC-like engine executes 1:4 as 2:4 --
 * reproducing the Figure 13 behaviour.
 *
 * Register allocation (fixed): B tile in treg0 / ureg0 / vreg0
 * (tregs 0-3), A values in treg4 (paired metadata in mreg4), C in
 * treg5.  The row-wise kernel uses ureg1 (tregs 2-3) for its R x 16 C
 * tile.
 */

#ifndef VEGETA_KERNELS_GEMM_KERNELS_HPP
#define VEGETA_KERNELS_GEMM_KERNELS_HPP

#include <optional>

#include "cpu/trace_sink.hpp"
#include "cpu/uop.hpp"
#include "isa/emulator.hpp"
#include "kernels/workloads.hpp"
#include "numerics/matrix.hpp"
#include "sparsity/rowwise_transform.hpp"

namespace vegeta::kernels {

/** Kernel generation options. */
struct KernelOptions
{
    /** Hoist the C tile out of the k loop (false = Listing 1). */
    bool optimized = true;
    /**
     * C tile registers the optimized kernel blocks the j loop over
     * (1..3).  Three keeps every Table III design stall-free without
     * OF; one leaves the accumulate dependency exposed (the
     * dependence-limited stream OF is designed for).
     */
    u32 cBlocking = 3;
    /** Skip data staging / functional execution; trace only. */
    bool traceOnly = false;
    /** Scalar address-generation ops emitted per tile load/store. */
    u32 scalarOpsPerTileOp = 1;
    /** Scalar bookkeeping ops per loop iteration (+1 branch). */
    u32 loopOverheadAlu = 2;
    /** Per-(i,j) tile-pointer setup ops. */
    u32 tileSetupAlu = 8;
    /** One-time kernel prologue/epilogue ops. */
    u32 prologueAlu = 50;
};

/** Instruction-mix statistics of one generated kernel. */
struct KernelStats
{
    u64 instructions = 0; ///< total trace ops emitted
    u64 tileComputes = 0;
    u64 tileLoads = 0;
    u64 tileStores = 0;
};

/** Outcome of generating (and optionally executing) a kernel. */
struct KernelRun
{
    cpu::Trace trace;
    u64 tileComputes = 0;
    u64 tileLoads = 0;
    u64 tileStores = 0;
    /** Functional result (m x n, unpadded); empty in trace-only mode. */
    MatrixF c;
};

/** k-dimension tile size for an executed pattern N:4 (32 * 4 / N). */
u32 kTileForN(u32 executed_n);

/** Pad (m, n) to multiples of 16 and k to a multiple of kTileForN. */
GemmDims padProblem(GemmDims dims, u32 executed_n);

/**
 * Layer-wise N:4 SPMM kernel, C = A x B.
 *
 * @param dims        logical (unpadded) GEMM dimensions
 * @param executed_n  the N the engine executes (1, 2, or 4)
 * @param opts        generation options
 * @param a           m x k weights (required unless traceOnly); must
 *                    satisfy executed_n:4 sparsity
 * @param b           k x n inputs (required unless traceOnly)
 */
KernelRun runSpmmKernel(GemmDims dims, u32 executed_n,
                        const KernelOptions &opts,
                        const MatrixBF16 *a = nullptr,
                        const MatrixBF16 *b = nullptr);

/**
 * Streaming variant of runSpmmKernel: emit the dynamic uop trace
 * directly into @p sink, one op at a time, materializing no
 * cpu::Trace.  Requires opts.traceOnly (a functional run needs the
 * staged matrices and returns C, which only the batch entry point
 * carries).  Feeding a cpu::TraceCpu as the sink replays the kernel
 * with memory independent of trace length.
 */
KernelStats streamSpmmKernel(GemmDims dims, u32 executed_n,
                             const KernelOptions &opts,
                             cpu::TraceSink &sink);

/**
 * Row-wise N:4 SPMM kernel using TILE_SPMM_R (Section V-E): every
 * 64-wide column chunk of A is losslessly transformed to row-wise N:4,
 * rows are DMA-reordered by N, packed into full tiles (sum of N = 32),
 * and executed with full MAC-column utilization.  Functional only.
 */
KernelRun runRowWiseSpmmKernel(const MatrixBF16 &a, const MatrixBF16 &b,
                               const KernelOptions &opts = {});

} // namespace vegeta::kernels

#endif // VEGETA_KERNELS_GEMM_KERNELS_HPP
