/**
 * @file
 * Vector-engine GEMM kernel model (paper Section III-A, Figure 4).
 *
 * Models a straightforward AVX-512-BF16-style kernel the way a
 * compiler emits it: for each 16-wide FP32 output strip, one
 * accumulator register is updated by a chain of VDPBF16PS-like FMAs
 * (each consuming 32 BF16 B elements and a broadcast A pair), so
 * consecutive FMAs of a strip serialize at FMA latency.  Per k-pair
 * the kernel issues one B vector load, one A broadcast load, and one
 * FMA; loop overhead is unrolled 8x.
 *
 * The trace is consumed by the same TraceCpu model as the matrix
 * kernels, which is how the Figure 4 instruction-count and runtime
 * ratios are produced.
 */

#ifndef VEGETA_KERNELS_VECTOR_KERNELS_HPP
#define VEGETA_KERNELS_VECTOR_KERNELS_HPP

#include "cpu/uop.hpp"
#include "kernels/workloads.hpp"

namespace vegeta::kernels {

struct VectorKernelOptions
{
    u32 unrollFactor = 8;  ///< k-pairs per loop-overhead bundle
    u32 prologueAlu = 50;
    u32 stripSetupAlu = 2; ///< per output-strip pointer setup
};

/** Generate the vector GEMM trace for C (m x n) = A (m x k) x B. */
cpu::Trace generateVectorGemmTrace(GemmDims dims,
                                   const VectorKernelOptions &opts = {});

/** Closed-form executed-instruction count of the same kernel. */
u64 vectorGemmInstructionCount(GemmDims dims,
                               const VectorKernelOptions &opts = {});

} // namespace vegeta::kernels

#endif // VEGETA_KERNELS_VECTOR_KERNELS_HPP
