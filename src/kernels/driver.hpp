/**
 * @file
 * End-to-end experiment driver: workload -> kernel trace -> cycle-level
 * CPU simulation, the flow behind Figure 13 and the headline speed-ups.
 */

#ifndef VEGETA_KERNELS_DRIVER_HPP
#define VEGETA_KERNELS_DRIVER_HPP

#include <string>
#include <vector>

#include "cpu/trace_cpu.hpp"
#include "engine/config.hpp"
#include "kernels/gemm_kernels.hpp"
#include "kernels/workloads.hpp"

namespace vegeta::kernels {

/** One simulated (workload, sparsity, engine) measurement. */
struct Measurement
{
    std::string workload;
    std::string engineName;
    u32 layerN = 4;            ///< the layer's pruned pattern N:4
    u32 executedN = 4;         ///< N actually executed by the engine
    bool outputForwarding = false;
    Cycles coreCycles = 0;
    u64 instructions = 0;
    u64 tileComputes = 0;
    double macUtilization = 0.0;
};

/** Simulate one layer with layer-wise N:4 sparsity on one engine. */
Measurement simulateLayer(const Workload &workload, u32 layer_n,
                          const engine::EngineConfig &engine,
                          bool output_forwarding,
                          const cpu::CoreConfig &core = {});

/**
 * Figure 13 sweep: every evaluated engine x every workload x each
 * layer-wise pattern (4:4, 2:4, 1:4), with OF variants for the sparse
 * designs.  Runtime is reported in core cycles (2 GHz core, engines at
 * 0.5 GHz through the 4x clock divider).
 *
 * Legacy shim: delegates to sim::SweepRunner over ad-hoc registries
 * (an intentional upward dependency inside the single static
 * library).  New code should build a sim::figure13Grid directly.
 */
std::vector<Measurement>
figure13Sweep(const std::vector<Workload> &workloads,
              const std::vector<engine::EngineConfig> &engines,
              const std::vector<u32> &layer_ns = {4, 2, 1});

/**
 * Geometric-mean speed-up of `engine` (with optional OF) over the
 * RASA-DM dense baseline across the workloads at one layer pattern --
 * the abstract's 1.09x / 2.20x / 3.74x numbers.
 */
double geomeanSpeedupVsDenseBaseline(
    const std::vector<Workload> &workloads, u32 layer_n,
    const engine::EngineConfig &engine, bool output_forwarding);

} // namespace vegeta::kernels

#endif // VEGETA_KERNELS_DRIVER_HPP
