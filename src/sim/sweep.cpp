#include "sim/sweep.hpp"

#include <atomic>
#include <thread>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "sim/cache.hpp"

namespace vegeta::sim {

SweepRunner::SweepRunner(const Simulator &simulator, u32 threads)
    : simulator_(simulator), threads_(threads)
{
    if (threads_ == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw == 0 ? 1 : static_cast<u32>(hw);
    }
}

std::vector<SimulationResult>
SweepRunner::run(const std::vector<SimulationRequest> &requests) const
{
    std::vector<SimulationResult> results(requests.size());
    if (requests.empty())
        return results;

    // Batch-level dedupe before dispatch: requests with equal
    // canonical keys are guaranteed to produce bit-identical results,
    // so only the first occurrence simulates; duplicates copy its
    // slot afterwards.  The output is therefore identical to running
    // every request -- for any thread count, cache on or off.
    std::vector<std::size_t> unique;
    std::vector<std::size_t> source(requests.size());
    {
        std::unordered_map<std::string, std::size_t> first;
        first.reserve(requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const auto [it, inserted] =
                first.emplace(cacheKey(requests[i]), i);
            source[i] = it->second;
            if (inserted)
                unique.push_back(i);
        }
    }

    const u32 workers =
        std::min<u32>(threads_, static_cast<u32>(unique.size()));
    if (workers <= 1) {
        for (const std::size_t i : unique)
            results[i] = simulator_.run(requests[i]);
    } else {
        // Work-stealing by atomic index: each worker claims the next
        // unclaimed request and writes into its slot, so the result
        // vector is independent of scheduling.
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const std::size_t u =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (u >= unique.size())
                    return;
                const std::size_t i = unique[u];
                results[i] = simulator_.run(requests[i]);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (u32 t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    for (std::size_t i = 0; i < requests.size(); ++i)
        if (source[i] != i)
            results[i] = results[source[i]];
    return results;
}

std::vector<SimulationRequest>
figure13Grid(const Simulator &simulator,
             const std::vector<std::string> &workload_names,
             const std::vector<std::string> &engine_names,
             const std::vector<u32> &patterns)
{
    std::vector<SimulationRequest> grid;
    for (const auto &workload : workload_names) {
        for (const u32 pattern : patterns) {
            for (const auto &engine : engine_names) {
                const auto config = simulator.engines().find(engine);
                VEGETA_ASSERT(config.has_value(),
                              "unregistered engine ", engine);
                auto base = simulator.request()
                                .workload(workload)
                                .engine(engine)
                                .pattern(pattern);
                auto no_of = base;
                const auto request =
                    no_of.outputForwarding(false).build();
                VEGETA_ASSERT(request.has_value(), "bad grid request: ",
                              no_of.error());
                grid.push_back(*request);
                if (config->sparse) {
                    const auto of_request =
                        base.outputForwarding(true).build();
                    VEGETA_ASSERT(of_request.has_value(),
                                  "bad grid request: ", base.error());
                    grid.push_back(*of_request);
                }
            }
        }
    }
    return grid;
}

double
geomeanSpeedup(const Simulator &simulator,
               const std::vector<std::string> &workload_names,
               u32 layer_n, const std::string &engine_name,
               bool output_forwarding,
               const std::string &baseline_name, u32 threads)
{
    VEGETA_ASSERT(!workload_names.empty(),
                  "geomeanSpeedup over no workloads");

    // Baseline requests first, then the engine under test, so
    // results[i] / results[i + n] pair up per workload.
    std::vector<SimulationRequest> requests;
    requests.reserve(workload_names.size() * 2);
    for (const bool test : {false, true}) {
        for (const auto &workload : workload_names) {
            auto builder =
                simulator.request()
                    .workload(workload)
                    .engine(test ? engine_name : baseline_name)
                    .pattern(layer_n)
                    .outputForwarding(test && output_forwarding);
            const auto request = builder.build();
            VEGETA_ASSERT(request.has_value(),
                          "bad speedup request: ", builder.error());
            requests.push_back(*request);
        }
    }

    const auto results =
        SweepRunner(simulator, threads).run(requests);
    const std::size_t n = workload_names.size();
    std::vector<double> speedups;
    speedups.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        VEGETA_ASSERT(results[i + n].coreCycles > 0,
                      "zero-cycle simulation");
        speedups.push_back(
            static_cast<double>(results[i].coreCycles) /
            static_cast<double>(results[i + n].coreCycles));
    }
    return geomean(speedups);
}

} // namespace vegeta::sim
