// The shim's own implementation file is not a deprecated caller.
#define VEGETA_SIM_SILENCE_DEPRECATION
#include "sim/sweep.hpp"

#include <thread>

namespace vegeta::sim {

SweepRunner::SweepRunner(const Session &session, u32 threads)
    : session_(session), threads_(threads)
{
    if (threads_ == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads_ = hw == 0 ? 1 : static_cast<u32>(hw);
    }
}

std::vector<SimulationResult>
SweepRunner::run(const std::vector<SimulationRequest> &requests) const
{
    return session_.runBatch(requests, threads_);
}

} // namespace vegeta::sim
