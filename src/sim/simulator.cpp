#include "sim/simulator.hpp"

#include "common/logging.hpp"

namespace vegeta::sim {

Simulator::Simulator()
    : Simulator(EngineRegistry::builtin(), WorkloadRegistry::builtin())
{
}

Simulator::Simulator(EngineRegistry engines, WorkloadRegistry workloads)
    : Simulator(std::move(engines), std::move(workloads),
                AnalyticalRegistry::builtin())
{
}

Simulator::Simulator(EngineRegistry engines, WorkloadRegistry workloads,
                     AnalyticalRegistry analytics)
    : engines_(std::move(engines)), workloads_(std::move(workloads)),
      analytics_(std::move(analytics))
{
}

RequestBuilder
Simulator::request() const
{
    return RequestBuilder(engines_, workloads_);
}

void
Simulator::setCache(std::shared_ptr<ResultCache> cache)
{
    cache_ = std::move(cache);
}

std::shared_ptr<ResultCache>
Simulator::enableCache()
{
    cache_ = std::make_shared<ResultCache>();
    return cache_;
}

SimulationResult
Simulator::run(const SimulationRequest &request,
               cpu::Trace *trace_out) const
{
    // Callers wanting the generated trace always pay the generation
    // pass; a cache hit has no trace to hand back.
    if (!cache_ || trace_out)
        return runUncached(request, trace_out);

    const std::string key = cacheKey(request);
    if (auto hit = cache_->find(key))
        return *hit;
    const SimulationResult result = runUncached(request, nullptr);
    cache_->insert(key, result);
    return result;
}

SimulationResult
Simulator::runUncached(const SimulationRequest &request,
                       cpu::Trace *trace_out) const
{
    const auto engine = engines_.find(request.engine);
    VEGETA_ASSERT(engine.has_value(), "unregistered engine ",
                  request.engine);

    const u32 executed_n = engine->effectiveN(request.patternN);
    kernels::KernelOptions opts;
    opts.optimized = request.kernel == KernelVariant::Optimized;
    opts.cBlocking = request.cBlocking;
    opts.traceOnly = true;

    if (trace_out) {
        // The caller wants the trace itself (to save or replay), so
        // this path has to materialize it anyway -- but only once:
        // move it out instead of copying a potentially huge vector.
        kernels::KernelRun kernel_run =
            kernels::runSpmmKernel(request.gemm, executed_n, opts);
        *trace_out = std::move(kernel_run.trace);
        return measure(*trace_out, *engine, request,
                       kernelVariantName(request.kernel), executed_n,
                       kernel_run.tileComputes);
    }

    // Streaming replay: the kernel generator emits uops straight into
    // the scheduler, so peak memory is independent of trace length.
    cpu::TraceCpu cpu_model(coreFor(request, *engine), *engine);
    const kernels::KernelStats stats =
        kernels::streamSpmmKernel(request.gemm, executed_n, opts,
                                  cpu_model);
    return fromSimResult(cpu_model.finish(), *engine, request,
                         kernelVariantName(request.kernel), executed_n,
                         stats.tileComputes);
}

std::optional<std::string>
Simulator::replayError(const cpu::Trace &trace,
                       const SimulationRequest &request) const
{
    const auto engine = engines_.find(request.engine);
    if (!engine)
        return "unregistered engine: " + request.engine;
    for (const auto &op : trace) {
        if (op.kind == cpu::UopKind::TileCompute &&
            !engine->supportsOpcode(op.tile.op))
            return engine->name + " cannot execute " +
                   std::string(isa::opcodeName(op.tile.op));
    }
    return std::nullopt;
}

SimulationResult
Simulator::replay(const cpu::Trace &trace,
                  const SimulationRequest &request) const
{
    const auto engine = engines_.find(request.engine);
    VEGETA_ASSERT(engine.has_value(), "unregistered engine ",
                  request.engine);
    return measure(trace, *engine, request, "replay",
                   engine->effectiveN(request.patternN),
                   /*tile_computes=*/0);
}

std::optional<std::string>
Simulator::analyzeError(const AnalyticalRequest &request) const
{
    if (!analytics_.contains(request.model))
        return "unknown analytical model: " + request.model;
    for (const auto &name : request.engines)
        if (!engines_.contains(name))
            return "unknown engine: " + name;
    for (const auto &name : request.workloads)
        if (!workloads_.contains(name))
            return "unknown workload: " + name;
    return std::nullopt;
}

AnalyticalResult
Simulator::analyze(const AnalyticalRequest &request) const
{
    const auto error = analyzeError(request);
    VEGETA_ASSERT(!error.has_value(), "bad analytical request: ",
                  error.value_or(""));
    const AnalyticalRegistry::Backend *backend =
        analytics_.find(request.model);
    return (*backend)(*this, request);
}

cpu::CoreConfig
Simulator::coreFor(const SimulationRequest &request,
                   const engine::EngineConfig &engine)
{
    cpu::CoreConfig core = request.core;
    core.outputForwarding = request.outputForwarding && engine.sparse;
    return core;
}

SimulationResult
Simulator::measure(const cpu::Trace &trace,
                   const engine::EngineConfig &engine,
                   const SimulationRequest &request,
                   const char *kernel_label, u32 executed_n,
                   u64 tile_computes) const
{
    cpu::TraceCpu cpu_model(coreFor(request, engine), engine);
    return fromSimResult(cpu_model.run(trace), engine, request,
                         kernel_label, executed_n, tile_computes);
}

SimulationResult
Simulator::fromSimResult(const cpu::SimResult &sim,
                         const engine::EngineConfig &engine,
                         const SimulationRequest &request,
                         const char *kernel_label, u32 executed_n,
                         u64 tile_computes)
{
    SimulationResult result;
    result.workload = request.label;
    result.engine = engine.name;
    result.layerN = request.patternN;
    result.executedN = executed_n;
    result.outputForwarding =
        request.outputForwarding && engine.sparse;
    result.kernel = kernel_label;
    result.coreCycles = sim.totalCycles;
    result.instructions = sim.retiredOps;
    result.engineInstructions = sim.engineInstructions;
    result.tileComputes = tile_computes;
    result.macUtilization = sim.macUtilization;
    result.cacheHits = sim.cacheHits;
    result.cacheMisses = sim.cacheMisses;
    return result;
}

} // namespace vegeta::sim
