#include "sim/analytical.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "engine/area_model.hpp"
#include "engine/pipeline.hpp"
#include "kernels/network.hpp"
#include "model/dynamic_sparsity.hpp"
#include "model/roofline.hpp"
#include "model/unstructured_analysis.hpp"
#include "model/vector_vs_matrix.hpp"
#include "sim/session.hpp"
#include "sim/tune_space.hpp"
#include "sparsity/compressed_tile.hpp"
#include "sparsity/pruning.hpp"
#include "sparsity/rowwise_transform.hpp"

namespace vegeta::sim {

AnalyticalCell
AnalyticalCell::text(std::string text)
{
    AnalyticalCell cell;
    cell.label = std::move(text);
    return cell;
}

AnalyticalCell
AnalyticalCell::number(double value, int precision)
{
    VEGETA_ASSERT(precision >= 0, "negative cell precision");
    AnalyticalCell cell;
    cell.value = value;
    cell.precision = precision;
    return cell;
}

std::string
AnalyticalCell::render() const
{
    return isNumber() ? formatDouble(value, precision) : label;
}

double
AnalyticalRequest::param(const std::string &name, double fallback) const
{
    const auto it = params.find(name);
    return it == params.end() ? fallback : it->second;
}

std::string
AnalyticalRequest::option(const std::string &name,
                          std::string fallback) const
{
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
}

std::vector<AnalyticalCell> &
AnalyticalResult::row()
{
    rows.emplace_back();
    return rows.back();
}

std::size_t
AnalyticalResult::columnIndex(const std::string &column) const
{
    for (std::size_t c = 0; c < columns.size(); ++c)
        if (columns[c] == column)
            return c;
    VEGETA_ASSERT(false, "unknown analytical column ", column);
    return 0;
}

double
AnalyticalResult::number(std::size_t row,
                         const std::string &column) const
{
    VEGETA_ASSERT(row < rows.size(), "analytical row out of range");
    const AnalyticalCell &cell = rows[row][columnIndex(column)];
    VEGETA_ASSERT(cell.isNumber(), "cell ", column, " is not numeric");
    return cell.value;
}

const std::string &
AnalyticalResult::text(std::size_t row, const std::string &column) const
{
    VEGETA_ASSERT(row < rows.size(), "analytical row out of range");
    const AnalyticalCell &cell = rows[row][columnIndex(column)];
    VEGETA_ASSERT(!cell.isNumber(), "cell ", column, " is not text");
    return cell.label;
}

Table
AnalyticalResult::table() const
{
    Table out(columns);
    for (const auto &cells : rows) {
        out.row();
        for (const auto &cell : cells)
            out.cell(cell.render());
    }
    return out;
}

void
writeJson(std::ostream &os, const AnalyticalResult &result)
{
    os << "{\n  \"model\": \"" << jsonEscape(result.model)
       << "\",\n  \"columns\": [";
    for (std::size_t c = 0; c < result.columns.size(); ++c)
        os << (c ? ", " : "") << '"' << jsonEscape(result.columns[c])
           << '"';
    os << "],\n  \"rows\": [\n";
    for (std::size_t r = 0; r < result.rows.size(); ++r) {
        const auto &cells = result.rows[r];
        os << "    {";
        for (std::size_t c = 0;
             c < cells.size() && c < result.columns.size(); ++c) {
            os << (c ? ", " : "") << '"'
               << jsonEscape(result.columns[c]) << "\": ";
            if (cells[c].isNumber())
                os << formatDouble(cells[c].value,
                                   std::max(cells[c].precision, 6));
            else
                os << '"' << jsonEscape(cells[c].label) << '"';
        }
        os << "}" << (r + 1 < result.rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"notes\": [";
    for (std::size_t n = 0; n < result.notes.size(); ++n)
        os << (n ? ", " : "") << '"' << jsonEscape(result.notes[n])
           << '"';
    os << "]\n}\n";
}

void
writeCsv(std::ostream &os, const AnalyticalResult &result)
{
    result.table().printCsv(os);
}

AnalyticalRegistry &
AnalyticalRegistry::add(const std::string &name,
                        const std::string &description, Backend backend)
{
    for (auto &entry : entries_) {
        if (entry.name == name) {
            entry.description = description;
            entry.backend = std::move(backend);
            return *this;
        }
    }
    entries_.push_back({name, description, std::move(backend)});
    return *this;
}

bool
AnalyticalRegistry::contains(const std::string &name) const
{
    return find(name) != nullptr;
}

const AnalyticalRegistry::Backend *
AnalyticalRegistry::find(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.name == name)
            return &entry.backend;
    return nullptr;
}

std::vector<std::string>
AnalyticalRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.name);
    return out;
}

std::string
AnalyticalRegistry::description(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.name == name)
            return entry.description;
    return "";
}

namespace {

/** Resolve the request's workloads, or @p group when none are named. */
std::vector<kernels::Workload>
resolveWorkloads(const Session &simulator,
                 const AnalyticalRequest &request,
                 const std::string &group)
{
    if (request.workloads.empty())
        return simulator.workloads().group(group);
    std::vector<kernels::Workload> out;
    out.reserve(request.workloads.size());
    for (const auto &name : request.workloads) {
        const auto workload = simulator.workloads().find(name);
        VEGETA_ASSERT(workload.has_value(), "unregistered workload ",
                      name);
        out.push_back(*workload);
    }
    return out;
}

/** Resolve the request's engines, or the Table III rows when none. */
std::vector<engine::EngineConfig>
resolveEngines(const Session &simulator,
               const AnalyticalRequest &request)
{
    if (request.engines.empty())
        return simulator.engines().tableIIIConfigs();
    std::vector<engine::EngineConfig> out;
    out.reserve(request.engines.size());
    for (const auto &name : request.engines) {
        const auto config = simulator.engines().find(name);
        VEGETA_ASSERT(config.has_value(), "unregistered engine ",
                      name);
        out.push_back(*config);
    }
    return out;
}

/** The one engine a single-engine backend operates on. */
engine::EngineConfig
resolveEngine(const Session &simulator,
              const AnalyticalRequest &request,
              const std::string &fallback)
{
    const std::string name =
        request.engines.empty() ? fallback : request.engines.front();
    const auto config = simulator.engines().find(name);
    VEGETA_ASSERT(config.has_value(), "unregistered engine ", name);
    return *config;
}

/**
 * Per-engine micro-latencies of one tile-compute instruction: the
 * WL/FF/FS/DR stage split, the isolated (unpipelined) latency, and
 * the back-to-back initiation interval -- the Section V-C numbers
 * bench_table3_designs and bench_micro previously derived by wiring
 * engine::PipelineModel directly.
 */
AnalyticalResult
microLatencyBackend(const Session &simulator,
                    const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"engine", "WL", "FF",
                      "FS",     "DR", "isolated_latency",
                      "initiation_interval"};

    const std::string op = request.option("op", "gemm");
    VEGETA_ASSERT(op == "gemm" || op == "spmm_u" || op == "spmm_v",
                  "unknown micro-latency op ", op);
    for (const auto &config : resolveEngines(simulator, request)) {
        isa::Instruction instr;
        if (op == "spmm_u")
            instr = isa::makeTileSpmmU(isa::treg(5), isa::treg(4),
                                       isa::ureg(0));
        else if (op == "spmm_v")
            instr = isa::makeTileSpmmV(isa::treg(5), isa::treg(4),
                                       isa::vreg(0));
        else
            instr = isa::makeTileGemm(isa::treg(5), isa::treg(4),
                                      isa::treg(0));
        if (!config.supportsOpcode(instr.op))
            continue;
        engine::PipelineModel model(config);
        const auto lat = model.stages(instr);
        auto &row = result.row();
        row.push_back(AnalyticalCell::text(config.name));
        row.push_back(AnalyticalCell::number(double(lat.wl), 0));
        row.push_back(AnalyticalCell::number(double(lat.ff), 0));
        row.push_back(AnalyticalCell::number(double(lat.fs), 0));
        row.push_back(AnalyticalCell::number(double(lat.dr), 0));
        row.push_back(AnalyticalCell::number(
            double(engine::isolatedLatency(config, instr)), 0));
        row.push_back(AnalyticalCell::number(
            double(engine::initiationInterval(config)), 0));
    }
    result.notes.push_back(
        "engine cycles; isolated latency = WL+FF+FS+DR with no "
        "overlap (Section V-C)");
    return result;
}

AnalyticalResult
rooflineBackend(const Session &, const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"density_%", "dense_vector", "sparse_vector",
                      "dense_matrix", "sparse_matrix"};

    model::RooflineParams params;
    params.vectorGflops =
        request.param("vector_gflops", params.vectorGflops);
    params.matrixGflops =
        request.param("matrix_gflops", params.matrixGflops);
    params.memoryGBs = request.param("memory_gbs", params.memoryGBs);

    const std::vector<double> densities = {
        0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50,
        0.60, 0.70, 0.80, 0.90, 0.95, 1.00};
    const kernels::ConvDims layer{64, 64, 56, 56, 3, 3};
    for (const auto &p :
         model::figure3Series(params, layer, densities)) {
        auto &row = result.row();
        row.push_back(AnalyticalCell::number(p.density * 100.0, 0));
        row.push_back(AnalyticalCell::number(p.denseVectorTflops, 4));
        row.push_back(AnalyticalCell::number(p.sparseVectorTflops, 4));
        row.push_back(AnalyticalCell::number(p.denseMatrixTflops, 4));
        row.push_back(AnalyticalCell::number(p.sparseMatrixTflops, 4));
    }
    result.notes = {
        "at 100% density dense == sparse per engine class",
        "sparse matrix plateaus at 0.512 TFLOPS until memory bound",
        "sparse engines >> dense engines at low density"};
    return result;
}

AnalyticalResult
vectorVsMatrixBackend(const Session &,
                      const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"dim",           "vector_instrs", "matrix_instrs",
                      "instr_ratio",   "vector_cycles", "matrix_cycles",
                      "runtime_ratio"};

    for (const auto &p : model::figure4Series({32, 64, 128})) {
        auto &row = result.row();
        row.push_back(AnalyticalCell::number(p.dim, 0));
        row.push_back(
            AnalyticalCell::number(double(p.vectorInstructions), 0));
        row.push_back(
            AnalyticalCell::number(double(p.matrixInstructions), 0));
        row.push_back(AnalyticalCell::number(p.instructionRatio(), 1));
        row.push_back(
            AnalyticalCell::number(double(p.vectorCycles), 0));
        row.push_back(
            AnalyticalCell::number(double(p.matrixCycles), 0));
        row.push_back(AnalyticalCell::number(p.runtimeRatio(), 1));
    }
    result.notes = {"paper reports both ratios in the ~20-60 band, "
                    "growing with the dimension"};
    return result;
}

AnalyticalResult
pipeliningBackend(const Session &simulator,
                  const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"instr", "WL", "FF", "FS",
                      "DR",    "start", "finish"};

    const engine::EngineConfig config =
        resolveEngine(simulator, request, "VEGETA-S-16-2");
    const bool dependent = request.param("dependent", 0) != 0;
    const bool of = request.param("output_forwarding", 0) != 0;
    const u32 count =
        static_cast<u32>(request.param("instructions", 4));
    const std::string op = request.option("op", "gemm");
    VEGETA_ASSERT(op == "gemm" || op == "spmm_u",
                  "unknown pipelining op ", op);

    engine::PipelineModel model(config, of);
    const u8 dsts_indep[4] = {1, 2, 3, 5};
    for (u32 i = 0; i < count; ++i) {
        const u8 dst = dependent ? 5 : dsts_indep[i % 4];
        const isa::Instruction instr =
            op == "spmm_u"
                ? isa::makeTileSpmmU(isa::treg(dst), isa::treg(4),
                                     isa::ureg(0))
                : isa::makeTileGemm(isa::treg(dst), isa::treg(4),
                                    isa::treg(0));
        const auto lat = model.stages(instr);
        const auto scheduled = model.issue(instr, 0);
        auto range = [](Cycles a, Cycles b) {
            return std::to_string(a) + "-" + std::to_string(b);
        };
        Cycles t = scheduled.start;
        auto &row = result.row();
        std::string label = "#";
        label += std::to_string(i);
        label += " C=treg";
        label += std::to_string(dst);
        row.push_back(AnalyticalCell::text(std::move(label)));
        row.push_back(AnalyticalCell::text(range(t, t + lat.wl)));
        t += lat.wl;
        row.push_back(AnalyticalCell::text(range(t, t + lat.ff)));
        t += lat.ff;
        row.push_back(AnalyticalCell::text(range(t, t + lat.fs)));
        t += lat.fs;
        row.push_back(AnalyticalCell::text(range(t, t + lat.dr)));
        row.push_back(
            AnalyticalCell::number(double(scheduled.start), 0));
        row.push_back(
            AnalyticalCell::number(double(scheduled.finish), 0));
    }
    return result;
}

AnalyticalResult
areaPowerBackend(const Session &simulator,
                 const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"engine", "norm_area", "norm_power",
                      "max_freq_GHz"};

    const auto configs = resolveEngines(simulator, request);
    for (const auto &row_data : engine::figure14Series(configs)) {
        auto &row = result.row();
        row.push_back(AnalyticalCell::text(row_data.name));
        row.push_back(
            AnalyticalCell::number(row_data.normalizedArea, 3));
        row.push_back(
            AnalyticalCell::number(row_data.normalizedPower, 3));
        row.push_back(
            AnalyticalCell::number(row_data.maxFrequencyGhz, 2));
    }
    result.notes = {
        "paper targets: worst sparse overhead ~6% (S-1-2); "
        "S-8-2/S-16-2 below RASA-SM; power overheads 17/8/4/3/1% for "
        "alpha 1/2/4/8/16; all designs meet the evaluation clock"};
    return result;
}

AnalyticalResult
areaBreakdownBackend(const Session &simulator,
                     const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"engine",        "MACs",          "PE_overhead",
                      "input_buffers", "sparse_extras", "total"};

    const u32 block_size =
        static_cast<u32>(request.param("block_size", 4));
    for (const auto &cfg : resolveEngines(simulator, request)) {
        const auto est = engine::estimatePhysical(cfg, block_size);
        auto &row = result.row();
        row.push_back(AnalyticalCell::text(cfg.name));
        row.push_back(AnalyticalCell::number(est.macArea, 1));
        row.push_back(AnalyticalCell::number(est.peOverheadArea, 1));
        row.push_back(AnalyticalCell::number(est.inputBufferArea, 1));
        row.push_back(AnalyticalCell::number(est.sparseExtrasArea, 1));
        row.push_back(AnalyticalCell::number(est.areaUnits, 1));
    }
    return result;
}

AnalyticalResult
unstructuredBackend(const Session &simulator,
                    const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"degree_%",        "dense",    "layer-wise",
                      "tile-wise",       "pseudo-row-wise", "row-wise",
                      "SIGMA-like"};

    const auto workloads =
        resolveWorkloads(simulator, request, "tableIV");
    const u64 seed =
        static_cast<u64>(request.param("seed", double(0xf15f15)));
    // A "degree" parameter narrows the series to one sparsity degree
    // (the headline's unstructured-95% row); the default sweeps the
    // paper's 60%..95% range.
    std::vector<double> degrees;
    if (request.params.count("degree"))
        degrees.push_back(request.param("degree", 0.95));
    for (const auto &p :
         model::figure15Series(workloads, degrees, seed)) {
        auto &row = result.row();
        row.push_back(AnalyticalCell::number(p.degree * 100.0, 0));
        row.push_back(AnalyticalCell::number(p.dense, 2));
        row.push_back(AnalyticalCell::number(p.layerWise, 2));
        row.push_back(AnalyticalCell::number(p.tileWise, 2));
        row.push_back(AnalyticalCell::number(p.pseudoRowWise, 2));
        row.push_back(AnalyticalCell::number(p.rowWise, 2));
        row.push_back(AnalyticalCell::number(p.sigmaLike, 2));
    }
    result.notes = {
        "paper anchors: row-wise 2.36x @ 90% and 3.28x @ 95%; "
        "layer-wise barely beats dense; SIGMA-like overtakes row-wise "
        "only beyond ~95%"};
    return result;
}

AnalyticalResult
blockSizeCoverageBackend(const Session &,
                         const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"degree_%", "M=4", "M=8", "M=16"};

    const u32 rows = static_cast<u32>(request.param("rows", 128));
    const u32 cols = static_cast<u32>(request.param("cols", 1024));
    const int trials =
        static_cast<int>(request.param("trials", 4));
    VEGETA_ASSERT(rows > 0 && cols > 0 && trials > 0,
                  "degenerate coverage study");

    for (double degree : {0.70, 0.80, 0.90, 0.95}) {
        double sums[3] = {0, 0, 0};
        const u32 ms[3] = {4, 8, 16};
        for (int t = 0; t < trials; ++t) {
            Rng rng(900 + t);
            const MatrixBF16 base = randomMatrixBF16(rows, cols, rng);
            Rng mask_rng(17 * t + static_cast<u64>(degree * 1000));
            const MatrixBF16 m =
                maskUnstructuredBernoulli(base, degree, mask_rng);
            for (int i = 0; i < 3; ++i)
                sums[i] += rowWiseSpeedupForBlockSize(m, ms[i]);
        }
        auto &row = result.row();
        row.push_back(AnalyticalCell::number(degree * 100.0, 0));
        for (double s : sums)
            row.push_back(AnalyticalCell::number(s / trials, 2));
    }
    return result;
}

AnalyticalResult
blockSizeHardwareBackend(const Session &simulator,
                         const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"M",
                      "norm_area",
                      "norm_power",
                      "max_freq_GHz",
                      "metadata_bits/value",
                      "input_elems/PE"};

    const engine::EngineConfig config =
        resolveEngine(simulator, request, "VEGETA-S-2-2");
    const std::string baseline_name =
        request.option("baseline", "VEGETA-D-1-1");
    const auto baseline_config =
        simulator.engines().find(baseline_name);
    VEGETA_ASSERT(baseline_config.has_value(), "unregistered engine ",
                  baseline_name);
    const auto baseline = engine::estimatePhysical(*baseline_config);

    for (u32 m : {4u, 8u, 16u}) {
        const auto est = engine::estimatePhysical(config, m);
        auto &row = result.row();
        row.push_back(AnalyticalCell::number(m, 0));
        row.push_back(AnalyticalCell::number(
            est.areaUnits / baseline.areaUnits, 3));
        row.push_back(AnalyticalCell::number(
            est.powerUnits / baseline.powerUnits, 3));
        row.push_back(
            AnalyticalCell::number(est.maxFrequencyGhz, 2));
        row.push_back(AnalyticalCell::number(
            double(indexBitsForBlockSize(m)), 0));
        row.push_back(AnalyticalCell::number(double(2 * m), 0));
    }
    return result;
}

/**
 * Section III-B network study: layer-wise vs network-wise N:M
 * execution of whole sparse networks -- the study bench_network used
 * to wire against kernels/network directly.  The "network" option
 * picks one reference network ("resnet-front" / "bert-encoder");
 * the default runs both.
 */
AnalyticalResult
networkPolicyBackend(const Session &simulator,
                     const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"network", "engine", "layer_wise_cycles",
                      "network_wise_cycles", "network_wise_slowdown"};

    const std::string which = request.option("network", "all");
    std::vector<kernels::Network> networks;
    if (which == "resnet-front" || which == "all")
        networks.push_back(kernels::resnetFrontNetwork());
    if (which == "bert-encoder" || which == "all")
        networks.push_back(kernels::bertEncoderNetwork());
    VEGETA_ASSERT(!networks.empty(), "unknown network ", which,
                  " (expected resnet-front, bert-encoder, or all)");

    // Representative design points by default: the dense baseline, a
    // single-pattern STC-like engine, and two flexible sparse ones.
    std::vector<engine::EngineConfig> engines;
    if (request.engines.empty()) {
        for (const char *name : {"VEGETA-D-1-2", "STC-like",
                                 "VEGETA-S-2-2", "VEGETA-S-16-2"}) {
            const auto config = simulator.engines().find(name);
            VEGETA_ASSERT(config.has_value(), "unregistered engine ",
                          name);
            engines.push_back(*config);
        }
    } else {
        engines = resolveEngines(simulator, request);
    }

    const bool of = request.param("output_forwarding", 1) != 0;
    for (const auto &net : networks) {
        std::ostringstream note;
        note << net.name << ": " << net.layers.size() << " layers, "
             << net.totalMacs() << " MACs, patterns";
        for (const auto &layer : net.layers)
            note << ' ' << layer.layerN << ":4";
        result.notes.push_back(note.str());

        for (const auto &config : engines) {
            const auto lw = kernels::simulateNetwork(
                net, config, kernels::NetworkPolicy::LayerWise, of);
            const auto nw = kernels::simulateNetwork(
                net, config, kernels::NetworkPolicy::NetworkWise, of);
            auto &row = result.row();
            row.push_back(AnalyticalCell::text(net.name));
            row.push_back(AnalyticalCell::text(config.name));
            row.push_back(
                AnalyticalCell::number(double(lw.totalCycles), 0));
            row.push_back(
                AnalyticalCell::number(double(nw.totalCycles), 0));
            row.push_back(AnalyticalCell::number(
                double(nw.totalCycles) / double(lw.totalCycles), 2));
        }
    }
    result.notes.push_back(
        "dense engines see no difference; STC-like gains only where "
        "2:4 covers the mix; flexible engines turn each layer's own "
        "pattern into runtime (Section III-B)");
    return result;
}

/**
 * Section VII dynamic-sparsity study: SAVE-style register-compaction
 * probabilities for 32-lane vector vs 512-lane tile registers -- the
 * model bench_dynamic_sparsity used to wire directly.
 */
AnalyticalResult
dynamicSparsityBackend(const Session &,
                       const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"density_%", "vector_merge_prob",
                      "tile_merge_prob", "vector_compaction",
                      "tile_compaction"};

    const u32 registers =
        static_cast<u32>(request.param("registers", 256));
    const u32 trials = static_cast<u32>(request.param("trials", 2000));
    const u64 seed =
        static_cast<u64>(request.param("seed", double(0xd15c0)));
    VEGETA_ASSERT(registers > 0 && trials > 0,
                  "degenerate compaction study");

    // A "density" parameter narrows the sweep to one point; the
    // default covers the paper's 1%..50% range.
    std::vector<double> densities;
    if (request.params.count("density"))
        densities.push_back(request.param("density", 0.25));

    for (const auto &p :
         model::compactionStudy(densities, registers, trials, seed)) {
        auto &row = result.row();
        row.push_back(AnalyticalCell::number(p.density * 100.0, 0));
        row.push_back(AnalyticalCell::number(p.vectorMergeProb, 4));
        row.push_back(AnalyticalCell::number(p.tileMergeProb, 6));
        row.push_back(AnalyticalCell::number(p.vectorCompaction, 2));
        row.push_back(AnalyticalCell::number(p.tileCompaction, 2));
    }
    result.notes = {
        "vector register = 32 operands, tile register = 512 (16x32 "
        "BF16)",
        "at ReLU-like densities two vector registers still merge with "
        "useful probability; two tile registers essentially never do "
        "(Section VII)"};
    return result;
}

/**
 * The tuner's analytical prefilter: one closed-form cycle/area
 * estimate per (workload, engine) pair at the requested pattern,
 * output-forwarding, kernel, and C-blocking coordinates -- the
 * scoring stage of sim/tune.hpp surfaced as a regular backend so the
 * CLI and benches can inspect what the tuner ranks on.
 */
AnalyticalResult
tunePrefilterBackend(const Session &simulator,
                     const AnalyticalRequest &request)
{
    AnalyticalResult result;
    result.model = request.model;
    result.columns = {"workload",        "engine",
                      "pattern",         "executed",
                      "of",              "kernel",
                      "cblocking",       "instructions",
                      "tile_computes",   "est_core_cycles",
                      "est_cycles_per_mac", "area_units"};

    const u32 pattern = static_cast<u32>(request.param("pattern", 4));
    VEGETA_ASSERT(pattern == 1 || pattern == 2 || pattern == 4,
                  "tune-prefilter pattern must be 1, 2, or 4");
    const bool of = request.param("of", 0) != 0;
    const u32 c_blocking =
        static_cast<u32>(request.param("cblocking", 3));
    VEGETA_ASSERT(c_blocking >= 1 && c_blocking <= 3,
                  "tune-prefilter cblocking must be 1..3");
    const std::string kernel = request.option("kernel", "optimized");
    VEGETA_ASSERT(kernel == "optimized" || kernel == "naive",
                  "tune-prefilter kernel must be optimized or naive");
    const bool naive = kernel == "naive";

    for (const auto &workload :
         resolveWorkloads(simulator, request, "tableIV")) {
        for (const auto &config : resolveEngines(simulator, request)) {
            const PrefilterEstimate est =
                prefilterEstimate(workload.gemm, config, pattern, of,
                                  naive, c_blocking);
            auto &row = result.row();
            row.push_back(AnalyticalCell::text(workload.name));
            row.push_back(AnalyticalCell::text(config.name));
            row.push_back(AnalyticalCell::number(pattern, 0));
            row.push_back(AnalyticalCell::number(est.executedN, 0));
            row.push_back(AnalyticalCell::number(of ? 1 : 0, 0));
            row.push_back(AnalyticalCell::text(kernel));
            row.push_back(AnalyticalCell::number(c_blocking, 0));
            row.push_back(
                AnalyticalCell::number(double(est.instructions), 0));
            row.push_back(
                AnalyticalCell::number(double(est.tileComputes), 0));
            row.push_back(
                AnalyticalCell::number(est.estCoreCycles, 1));
            row.push_back(
                AnalyticalCell::number(est.estCyclesPerMac, 9));
            row.push_back(AnalyticalCell::number(est.areaUnits, 4));
        }
    }
    result.notes = {
        "closed-form: instruction counts mirror the kernel "
        "generator's loop structure; engine term extrapolated from a "
        "PipelineModel steady-state window (sim/tune_space.hpp)",
        "est_cycles_per_mac is the tuner's ranking objective; "
        "replay confirmation decides the final ordering"};
    return result;
}

} // namespace

AnalyticalRegistry
AnalyticalRegistry::builtin()
{
    AnalyticalRegistry registry;
    registry
        .add("fig3-roofline",
             "Figure 3: effective throughput vs weight density "
             "(roofline model)",
             rooflineBackend)
        .add("fig4-vector-vs-matrix",
             "Figure 4: vector vs matrix engine instruction/runtime "
             "ratios on square GEMMs",
             vectorVsMatrixBackend)
        .add("fig10-pipelining",
             "Figure 10: per-stage pipelined schedule of tile "
             "instructions on one engine",
             pipeliningBackend)
        .add("fig14-area-power",
             "Figure 14: area/power normalized to RASA-SM plus max "
             "frequency",
             areaPowerBackend)
        .add("fig14-area-breakdown",
             "Figure 14 companion: component-level area breakdown "
             "per engine",
             areaBreakdownBackend)
        .add("fig15-unstructured",
             "Figure 15: speed-up of sparsity granularities on "
             "unstructured layers",
             unstructuredBackend)
        .add("blocksize-coverage",
             "Block-size ablation: row-wise covering speed-up for "
             "M = 4/8/16",
             blockSizeCoverageBackend)
        .add("blocksize-hardware",
             "Block-size ablation: physical cost of M = 4/8/16 "
             "normalized to RASA-SM",
             blockSizeHardwareBackend)
        .add("micro-latency",
             "Section V-C: per-engine stage latencies, isolated "
             "latency, and initiation interval",
             microLatencyBackend)
        .add("network-policy",
             "Section III-B: layer-wise vs network-wise N:M execution "
             "of whole sparse networks",
             networkPolicyBackend)
        .add("dynamic-sparsity",
             "Section VII: SAVE-style register-compaction probability "
             "for vector vs tile registers",
             dynamicSparsityBackend)
        .add("tune-prefilter",
             "Tuner stage 2: closed-form cycle/area estimate per "
             "(workload, engine) search point",
             tunePrefilterBackend);
    return registry;
}

} // namespace vegeta::sim
