#include "sim/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <unordered_map>

#include "sim/job_io.hpp"
#include "sim/serial.hpp"
#include "sim/wire.hpp"

namespace vegeta::sim {

namespace {

using Clock = std::chrono::steady_clock;

bool
allDigits(const std::string &text)
{
    if (text.empty())
        return false;
    return std::all_of(text.begin(), text.end(), [](char c) {
        return c >= '0' && c <= '9';
    });
}

int
connectOnce(bool use_tcp, const std::string &host_or_path, u32 port,
            std::string *error)
{
    if (!use_tcp) {
        sockaddr_un addr{};
        if (host_or_path.size() >= sizeof(addr.sun_path)) {
            if (error)
                *error = "socket path too long: " + host_or_path;
            return -1;
        }
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            if (error)
                *error = "cannot create unix socket";
            return -1;
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, host_or_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            if (error)
                *error = "cannot connect to unix:" + host_or_path +
                         ": " + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        return fd;
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<unsigned short>(port));
    if (::inet_pton(AF_INET, host_or_path.c_str(), &addr.sin_addr) !=
        1) {
        if (error)
            *error = "bad tcp host (numeric IPv4 only): " +
                     host_or_path;
        return -1;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = "cannot create tcp socket";
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = "cannot connect to tcp:" + host_or_path + ":" +
                     std::to_string(port) + ": " +
                     std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

bool
parseServerAddress(const std::string &address, bool *use_tcp,
                   std::string *host_or_path, u32 *port,
                   std::string *error)
{
    auto fail = [&](const std::string &reason) {
        if (error)
            *error = reason;
        return false;
    };
    *use_tcp = false;
    *port = 0;
    if (address.empty())
        return fail("empty server address");

    if (address.rfind("unix:", 0) == 0) {
        *host_or_path = address.substr(5);
        if (host_or_path->empty())
            return fail("empty unix socket path in: " + address);
        return true;
    }

    std::string tcp_part;
    if (address.rfind("tcp:", 0) == 0)
        tcp_part = address.substr(4);
    else if (allDigits(address))
        tcp_part = "127.0.0.1:" + address;

    if (tcp_part.empty()) {
        // A bare non-numeric string is a unix socket path.
        *host_or_path = address;
        return true;
    }

    const std::size_t colon = tcp_part.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == tcp_part.size())
        return fail("tcp address must be tcp:HOST:PORT, got: " +
                    address);
    u64 parsed = 0;
    if (!serial::parseU64(tcp_part.substr(colon + 1), &parsed) ||
        parsed == 0 || parsed > 65535)
        return fail("bad tcp port in: " + address);
    *use_tcp = true;
    *host_or_path = tcp_part.substr(0, colon);
    *port = static_cast<u32>(parsed);
    return true;
}

SimClient::SimClient(ClientOptions options)
    : options_(std::move(options))
{
}

SimClient::~SimClient()
{
    close();
}

void
SimClient::close()
{
    if (fd_ >= 0) {
        // Best-effort goodbye so the server logs a clean disconnect.
        std::string ignored;
        wire::writeFrame(fd_, wire::FrameType::Bye, "", &ignored);
        ::close(fd_);
        fd_ = -1;
    }
}

bool
SimClient::connect(std::string *error)
{
    auto fail = [&](const std::string &reason) {
        if (error)
            *error = reason;
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        return false;
    };
    if (fd_ >= 0)
        return true;

    bool use_tcp = false;
    std::string host_or_path;
    u32 port = 0;
    if (!parseServerAddress(options_.address, &use_tcp, &host_or_path,
                            &port, error))
        return false;

    // Retry inside the connect budget: a client racing its own
    // freshly-spawned server just waits for the listen socket.
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(std::max(0, options_.connectTimeoutMs));
    std::string attempt_error;
    for (;;) {
        fd_ = connectOnce(use_tcp, host_or_path, port, &attempt_error);
        if (fd_ >= 0)
            break;
        if (Clock::now() +
                std::chrono::milliseconds(options_.retryDelayMs) >=
            deadline)
            return fail(attempt_error);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.retryDelayMs));
    }

    // Handshake: refuse to exchange work with a mismatched build.
    const int hs_timeout = options_.connectTimeoutMs > 0
                               ? options_.connectTimeoutMs
                               : 5'000;
    std::string wire_error;
    if (!wire::writeFrame(fd_, wire::FrameType::Hello,
                          wire::helloPayload(), &wire_error))
        return fail("handshake send failed: " + wire_error);
    wire::Frame ack;
    if (!wire::readFrame(fd_, &ack, hs_timeout, &wire_error))
        return fail("handshake failed: " + wire_error);
    if (ack.type == wire::FrameType::Error)
        return fail("server refused: " + ack.payload);
    if (ack.type != wire::FrameType::HelloAck ||
        ack.payload != wire::helloPayload())
        return fail("wire version mismatch: this build speaks '" +
                    wire::helloPayload() + "', server answered '" +
                    ack.payload.substr(0, 120) + "'");
    return true;
}

std::optional<ClientRun>
SimClient::runBatch(const std::vector<Job> &jobs, std::string *error)
{
    auto fail = [&](const std::string &reason) -> std::optional<ClientRun> {
        if (error)
            *error = reason;
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        return std::nullopt;
    };
    if (fd_ < 0)
        return fail("not connected");

    std::string wire_error;
    if (!wire::writeFrame(fd_, wire::FrameType::Batch,
                          encodeJobBatch(jobs), &wire_error))
        return fail("send failed: " + wire_error);
    wire::Frame reply;
    if (!wire::readFrame(fd_, &reply, options_.requestTimeoutMs,
                         &wire_error))
        return fail("no reply: " + wire_error);
    if (reply.type == wire::FrameType::Error) {
        // The server rejected the batch but the connection is fine.
        if (error)
            *error = "server: " + reply.payload;
        return std::nullopt;
    }
    if (reply.type != wire::FrameType::Results)
        return fail(std::string("unexpected reply frame: ") +
                    wire::frameTypeName(reply.type));
    auto output = decodeWorkerOutput(reply.payload, &wire_error);
    if (!output)
        return fail("corrupt results: " + wire_error);

    // The reply carries one record per unique canonical key; fan the
    // results back out to this batch's job order, exactly like
    // runBatch's dedupe does locally.
    std::unordered_map<std::string, const JobResult *> by_key;
    by_key.reserve(output->results.size());
    for (const auto &[key, result] : output->results)
        by_key.emplace(key, &result);
    ClientRun run;
    run.simulationsPerformed = output->simulationsPerformed;
    run.analysesPerformed = output->analysesPerformed;
    run.results.reserve(jobs.size());
    for (const auto &job : jobs) {
        const auto it = by_key.find(jobKey(job));
        if (it == by_key.end())
            return fail("server reply is missing a result for: " +
                        jobKey(job));
        run.results.push_back(*it->second);
    }
    return run;
}

std::optional<std::string>
SimClient::fetchStats(std::string *error)
{
    auto fail =
        [&](const std::string &reason) -> std::optional<std::string> {
        if (error)
            *error = reason;
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        return std::nullopt;
    };
    if (fd_ < 0)
        return fail("not connected");

    std::string wire_error;
    if (!wire::writeFrame(fd_, wire::FrameType::Stats, "",
                          &wire_error))
        return fail("send failed: " + wire_error);
    wire::Frame reply;
    if (!wire::readFrame(fd_, &reply, options_.requestTimeoutMs,
                         &wire_error))
        return fail("no reply: " + wire_error);
    if (reply.type == wire::FrameType::Error)
        return fail("server: " + reply.payload);
    if (reply.type != wire::FrameType::Stats)
        return fail(std::string("unexpected reply frame: ") +
                    wire::frameTypeName(reply.type));
    return reply.payload;
}

} // namespace vegeta::sim
