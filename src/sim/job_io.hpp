/**
 * @file
 * Versioned job/result files: how the process pool ships work.
 *
 * The pool parent writes each worker's shard as a job file (every
 * `Job` field serialized, so the worker reconstructs exactly the work
 * the parent described -- same canonical field spellings as jobKey),
 * and each worker writes its results back as a result file keyed by
 * canonical job key, with doubles round-tripped through raw bit
 * patterns so a merged pooled batch is bit-for-bit identical to a
 * single-process one.
 *
 * Both formats are corruption-checked end to end: a version header, a
 * per-record checksum, and a checksummed `end` footer carrying the
 * record count.  A truncated or tampered file parses to a clean error
 * (the pool fails that worker), never to missing or wrong results.
 */

#ifndef VEGETA_SIM_JOB_IO_HPP
#define VEGETA_SIM_JOB_IO_HPP

#include <optional>
#include <string>
#include <vector>

#include "sim/job.hpp"
#include "sim/telemetry.hpp"

namespace vegeta::sim {

/** Version header of a pool job (shard) file. */
const char *jobFileHeader();

/** Version header of a pool result file. */
const char *resultFileHeader();

/** One job as a checksummed record line (kind-tagged). */
std::string serializeJob(const Job &job);

/** Parse a serializeJob line (nullopt on any corruption). */
std::optional<Job> parseJob(const std::string &line);

/**
 * A job batch as one self-delimiting text block: the job-file header,
 * one record per job, and the checksummed end-count footer.  This is
 * both the byte content of a pool shard file and the payload of a
 * wire `batch` frame -- the two transports ship identical bytes.
 */
std::string encodeJobBatch(const std::vector<Job> &jobs);

/**
 * Decode an encodeJobBatch block.  Any defect -- wrong header,
 * corrupt or truncated record, bad footer count -- yields nullopt
 * with a one-line reason in @p error.
 */
std::optional<std::vector<Job>>
decodeJobBatch(const std::string &text, std::string *error);

/** Write a shard of jobs; false when the file cannot be written. */
bool writeJobFile(const std::string &path,
                  const std::vector<Job> &jobs);

/**
 * Read a shard back.  Any defect -- missing file, wrong header,
 * corrupt or truncated record, bad footer count -- yields nullopt
 * with a one-line reason in @p error.
 */
std::optional<std::vector<Job>>
readJobFile(const std::string &path, std::string *error);

/** What one pool worker hands back to the parent. */
struct WorkerOutput
{
    /** Canonical job key -> result, in shard order. */
    std::vector<std::pair<std::string, JobResult>> results;

    /** Core-model simulations the worker actually performed. */
    u64 simulationsPerformed = 0;

    /** Analytical backends the worker actually evaluated. */
    u64 analysesPerformed = 0;

    /**
     * The worker's cumulative telemetry snapshot at encode time
     * (v2 `metric` records).  The pool parent absorbs these into its
     * own registry for merged post-run reports; the service replaces
     * its per-worker copy on every results frame.  Always empty in a
     * `VEGETA_NO_TELEMETRY` build -- the records stay decodable, so
     * the two builds read each other's files.
     */
    std::vector<telemetry::MetricRecord> metrics;
};

/**
 * A worker's output as one self-delimiting text block (result-file
 * header, key+result records, counter footer) -- the byte content of
 * a pool result file and the payload of a wire `results` frame.
 */
std::string encodeWorkerOutput(const WorkerOutput &output);

/** Decode an encodeWorkerOutput block (error contract as above). */
std::optional<WorkerOutput>
decodeWorkerOutput(const std::string &text, std::string *error);

/** Write a worker's results; false when the file cannot be written. */
bool writeResultFile(const std::string &path,
                     const WorkerOutput &output);

/** Read a result file back (same error contract as readJobFile). */
std::optional<WorkerOutput>
readResultFile(const std::string &path, std::string *error);

} // namespace vegeta::sim

#endif // VEGETA_SIM_JOB_IO_HPP
