#include "sim/request.hpp"

#include <cstdio>
#include <sstream>

namespace vegeta::sim {

const char *
kernelVariantName(KernelVariant variant)
{
    return variant == KernelVariant::Naive ? "naive" : "optimized";
}

std::optional<kernels::GemmDims>
parseGemmSpec(const std::string &spec)
{
    unsigned m = 0, n = 0, k = 0;
    char trailing = '\0';
    // %c after the dims catches trailing garbage ("256x256x2048x9").
    const int matched = std::sscanf(spec.c_str(), "%ux%ux%u%c", &m, &n,
                                    &k, &trailing);
    if (matched != 3 || m == 0 || n == 0 || k == 0)
        return std::nullopt;
    return kernels::GemmDims{m, n, k};
}

std::optional<u32>
parseU32(const std::string &text)
{
    if (text.empty() || text.size() > 10)
        return std::nullopt;
    u64 value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return std::nullopt;
        value = value * 10 + static_cast<u64>(c - '0');
    }
    if (value > 0xffffffffULL)
        return std::nullopt;
    return static_cast<u32>(value);
}

RequestBuilder::RequestBuilder(const EngineRegistry &engines,
                               const WorkloadRegistry &workloads)
    : engines_(engines), workloads_(workloads)
{
}

RequestBuilder &
RequestBuilder::workload(const std::string &name)
{
    const auto found = workloads_.find(name);
    if (!found) {
        fail("unknown workload: " + name);
        return *this;
    }
    request_.label = found->name;
    request_.gemm = found->gemm;
    have_target_ = true;
    return *this;
}

RequestBuilder &
RequestBuilder::gemm(const kernels::GemmDims &dims)
{
    if (dims.m == 0 || dims.n == 0 || dims.k == 0) {
        fail("GEMM dimensions must be non-zero");
        return *this;
    }
    std::ostringstream label;
    label << dims.m << "x" << dims.n << "x" << dims.k;
    request_.label = label.str();
    request_.gemm = dims;
    have_target_ = true;
    return *this;
}

RequestBuilder &
RequestBuilder::gemm(const std::string &spec)
{
    const auto dims = parseGemmSpec(spec);
    if (!dims) {
        fail("bad GEMM spec (expected MxNxK): " + spec);
        return *this;
    }
    return gemm(*dims);
}

RequestBuilder &
RequestBuilder::engine(const std::string &name)
{
    if (!engines_.contains(name)) {
        fail("unknown engine: " + name);
        return *this;
    }
    request_.engine = name;
    return *this;
}

RequestBuilder &
RequestBuilder::pattern(u32 layer_n)
{
    if (layer_n != 1 && layer_n != 2 && layer_n != 4) {
        fail("pattern must be 1, 2, or 4 (got " +
             std::to_string(layer_n) + ")");
        return *this;
    }
    request_.patternN = layer_n;
    return *this;
}

RequestBuilder &
RequestBuilder::outputForwarding(bool enabled)
{
    request_.outputForwarding = enabled;
    return *this;
}

RequestBuilder &
RequestBuilder::kernel(KernelVariant variant)
{
    request_.kernel = variant;
    return *this;
}

RequestBuilder &
RequestBuilder::cBlocking(u32 c_tiles)
{
    if (c_tiles < 1 || c_tiles > 3) {
        fail("cBlocking must be 1..3 (got " +
             std::to_string(c_tiles) + ")");
        return *this;
    }
    request_.cBlocking = c_tiles;
    return *this;
}

RequestBuilder &
RequestBuilder::core(const cpu::CoreConfig &config)
{
    request_.core = config;
    return *this;
}

std::optional<SimulationRequest>
RequestBuilder::build()
{
    if (error_.empty() && !have_target_)
        fail("no workload or GEMM dimensions given");
    if (error_.empty() && request_.engine.empty())
        fail("no engine given");
    if (!error_.empty())
        return std::nullopt;
    return request_;
}

void
RequestBuilder::fail(const std::string &message)
{
    if (error_.empty())
        error_ = message;
}

} // namespace vegeta::sim
