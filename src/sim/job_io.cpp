#include "sim/job_io.hpp"

#include <fstream>
#include <functional>
#include <sstream>

#include "sim/serial.hpp"

namespace vegeta::sim {

namespace {

using serial::FieldReader;
using serial::FieldWriter;

/** Record kind tags, the first field of job and result records. */
constexpr const char *kSimTag = "S";
constexpr const char *kAnaTag = "A";

/**
 * First field of a worker-telemetry record in a v2 result file.
 * Result records start with a canonical job key, and every job key
 * is prefixed ("sim|", "ana|"), so the bare token can never collide.
 */
constexpr const char *kMetricTag = "metric";

void
appendMetricRecord(FieldWriter &writer,
                   const telemetry::MetricRecord &metric)
{
    writer.raw(kMetricTag)
        .str(metric.name)
        .num(metric.kind == telemetry::MetricKind::Timer ? 1 : 0)
        .num(metric.count)
        .num(metric.sumNs)
        .num(metric.minNs)
        .num(metric.maxNs);
}

bool
readMetricRecord(FieldReader &reader,
                 telemetry::MetricRecord *metric)
{
    metric->name = reader.str();
    const u64 kind = reader.num();
    metric->kind = kind == 1 ? telemetry::MetricKind::Timer
                             : telemetry::MetricKind::Counter;
    metric->count = reader.num();
    metric->sumNs = reader.num();
    metric->minNs = reader.num();
    metric->maxNs = reader.num();
    return reader.done() && kind <= 1 && !metric->name.empty();
}

/**
 * A SimulationRequest, every field in jobKey's canonical spelling
 * (kernelVariantName for the variant, the full core and L1
 * configuration) so a worker reruns exactly what the parent keyed.
 */
void
appendSimulationRequest(FieldWriter &writer,
                        const SimulationRequest &request)
{
    const cpu::CoreConfig &core = request.core;
    const cpu::CacheConfig &l1 = core.cache;
    writer.str(request.label)
        .num(request.gemm.m)
        .num(request.gemm.n)
        .num(request.gemm.k)
        .str(request.engine)
        .num(request.patternN)
        .num(request.outputForwarding ? 1 : 0)
        .str(kernelVariantName(request.kernel))
        .num(request.cBlocking)
        .num(core.fetchWidth)
        .num(core.retireWidth)
        .num(core.robEntries)
        .num(core.loadBufferEntries)
        .num(core.frontEndDepth)
        .num(core.numAlus)
        .num(core.numLsuPorts)
        .num(core.numVectorFus)
        .num(core.vectorFmaLatency)
        .num(core.engineClockDivider)
        .num(core.outputForwarding ? 1 : 0)
        .num(l1.lineBytes)
        .num(l1.l1Sets)
        .num(l1.l1Ways)
        .num(l1.l1Latency)
        .num(l1.l2Latency);
}

bool
readSimulationRequest(FieldReader &reader, SimulationRequest *request)
{
    request->label = reader.str();
    request->gemm.m = reader.num32();
    request->gemm.n = reader.num32();
    request->gemm.k = reader.num32();
    request->engine = reader.str();
    request->patternN = reader.num32();
    const u64 of = reader.num();
    request->outputForwarding = of != 0;
    const std::string kernel = reader.str();
    if (kernel == kernelVariantName(KernelVariant::Optimized))
        request->kernel = KernelVariant::Optimized;
    else if (kernel == kernelVariantName(KernelVariant::Naive))
        request->kernel = KernelVariant::Naive;
    else
        return false;
    request->cBlocking = reader.num32();
    cpu::CoreConfig &core = request->core;
    core.fetchWidth = reader.num32();
    core.retireWidth = reader.num32();
    core.robEntries = reader.num32();
    core.loadBufferEntries = reader.num32();
    core.frontEndDepth = reader.num32();
    core.numAlus = reader.num32();
    core.numLsuPorts = reader.num32();
    core.numVectorFus = reader.num32();
    core.vectorFmaLatency = reader.num();
    core.engineClockDivider = reader.num32();
    const u64 core_of = reader.num();
    core.outputForwarding = core_of != 0;
    cpu::CacheConfig &l1 = core.cache;
    l1.lineBytes = reader.num32();
    l1.l1Sets = reader.num32();
    l1.l1Ways = reader.num32();
    l1.l1Latency = reader.num();
    l1.l2Latency = reader.num();
    return reader.ok() && of <= 1 && core_of <= 1;
}

void
appendAnalyticalRequest(FieldWriter &writer,
                        const AnalyticalRequest &request)
{
    writer.str(request.model);
    writer.num(request.workloads.size());
    for (const auto &name : request.workloads)
        writer.str(name);
    writer.num(request.engines.size());
    for (const auto &name : request.engines)
        writer.str(name);
    writer.num(request.params.size());
    for (const auto &[name, value] : request.params)
        writer.str(name).bits(value);
    writer.num(request.options.size());
    for (const auto &[name, value] : request.options)
        writer.str(name).str(value);
}

bool
readAnalyticalRequest(FieldReader &reader, AnalyticalRequest *request)
{
    request->model = reader.str();
    const u64 workloads = reader.num();
    if (!reader.ok() || workloads > reader.remaining())
        return false;
    for (u64 i = 0; i < workloads; ++i)
        request->workloads.push_back(reader.str());
    const u64 engines = reader.num();
    if (!reader.ok() || engines > reader.remaining())
        return false;
    for (u64 i = 0; i < engines; ++i)
        request->engines.push_back(reader.str());
    const u64 params = reader.num();
    if (!reader.ok() || params > reader.remaining() / 2)
        return false;
    for (u64 i = 0; i < params; ++i) {
        const std::string name = reader.str();
        request->params[name] = reader.bits();
    }
    const u64 options = reader.num();
    if (!reader.ok() || options > reader.remaining() / 2)
        return false;
    for (u64 i = 0; i < options; ++i) {
        const std::string name = reader.str();
        request->options[name] = reader.str();
    }
    return reader.ok();
}

void
appendJobResult(FieldWriter &writer, const JobResult &result)
{
    if (result.kind == JobKind::Analysis) {
        writer.raw(kAnaTag);
        serial::appendAnalyticalResult(writer, result.analysis);
    } else {
        writer.raw(kSimTag);
        serial::appendSimulationResult(writer, result.simulation);
    }
}

bool
readJobResult(FieldReader &reader, JobResult *result)
{
    const std::string kind = reader.raw();
    if (kind == kAnaTag) {
        result->kind = JobKind::Analysis;
        return serial::readAnalyticalResult(reader, &result->analysis);
    }
    if (kind == kSimTag) {
        result->kind = JobKind::Simulation;
        return serial::readSimulationResult(reader,
                                            &result->simulation);
    }
    return false;
}

/** The one kind-tag dispatch for job records (parse + file read). */
bool
readJob(FieldReader &reader, Job *job)
{
    const std::string kind = reader.raw();
    if (kind == kAnaTag) {
        job->kind = JobKind::Analysis;
        if (!readAnalyticalRequest(reader, &job->analysis))
            return false;
    } else if (kind == kSimTag) {
        job->kind = JobKind::Simulation;
        if (!readSimulationRequest(reader, &job->simulation))
            return false;
    } else {
        return false;
    }
    return reader.done();
}

/** A checksummed "end <count> ..." footer line. */
std::string
footerLine(const std::vector<u64> &numbers)
{
    FieldWriter writer;
    writer.raw("end");
    for (const u64 n : numbers)
        writer.num(n);
    return writer.line();
}

/**
 * Shared line-structured reader: verifies the header, hands every
 * checksum-valid record to @p on_record, and requires a checksummed
 * "end" footer whose first number matches the record count.  Extra
 * footer numbers are returned through @p footer_numbers.
 */
bool
readRecordStream(std::istream &is, const char *header,
                 const std::function<bool(FieldReader &)> &on_record,
                 std::vector<u64> *footer_numbers, std::string *error)
{
    auto fail = [&](const std::string &reason) {
        if (error)
            *error = reason;
        return false;
    };

    std::string line;
    if (!std::getline(is, line) || line != header)
        return fail("bad or missing header");

    u64 records = 0;
    bool saw_footer = false;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        if (saw_footer)
            return fail("content after footer");
        auto fields = serial::checkedFields(line);
        if (!fields)
            return fail("corrupt record (checksum)");
        FieldReader reader(std::move(*fields));
        if (reader.remaining() > 0 &&
            line.compare(0, 4, "end\t") == 0) {
            if (reader.raw() != "end")
                return fail("corrupt footer");
            std::vector<u64> numbers;
            while (reader.remaining() > 0)
                numbers.push_back(reader.num());
            if (!reader.ok() || numbers.empty())
                return fail("corrupt footer");
            if (numbers[0] != records)
                return fail("record count mismatch");
            if (footer_numbers)
                *footer_numbers = std::move(numbers);
            saw_footer = true;
            continue;
        }
        if (!on_record(reader))
            return fail("corrupt record");
        ++records;
    }
    if (!saw_footer)
        return fail("truncated (no footer)");
    return true;
}

/** readRecordStream over a file, errors prefixed with the path. */
bool
readRecordFile(const std::string &path, const char *header,
               const std::function<bool(FieldReader &)> &on_record,
               std::vector<u64> *footer_numbers, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = path + ": cannot open";
        return false;
    }
    std::string reason;
    if (!readRecordStream(is, header, on_record, footer_numbers,
                          &reason)) {
        if (error)
            *error = path + ": " + reason;
        return false;
    }
    return true;
}

} // namespace

const char *
jobFileHeader()
{
    return "vegeta-job-file v1";
}

const char *
resultFileHeader()
{
    // v2 added optional "metric" records (worker-side telemetry);
    // result records themselves are unchanged from v1.
    return "vegeta-result-file v2";
}

std::string
serializeJob(const Job &job)
{
    FieldWriter writer;
    if (job.kind == JobKind::Analysis) {
        writer.raw(kAnaTag);
        appendAnalyticalRequest(writer, job.analysis);
    } else {
        writer.raw(kSimTag);
        appendSimulationRequest(writer, job.simulation);
    }
    return writer.line();
}

std::optional<Job>
parseJob(const std::string &line)
{
    auto fields = serial::checkedFields(line);
    if (!fields)
        return std::nullopt;
    FieldReader reader(std::move(*fields));
    Job job;
    if (!readJob(reader, &job))
        return std::nullopt;
    return job;
}

std::string
encodeJobBatch(const std::vector<Job> &jobs)
{
    std::string text = jobFileHeader();
    text += '\n';
    for (const auto &job : jobs) {
        text += serializeJob(job);
        text += '\n';
    }
    text += footerLine({jobs.size()});
    text += '\n';
    return text;
}

std::optional<std::vector<Job>>
decodeJobBatch(const std::string &text, std::string *error)
{
    std::istringstream is(text);
    std::vector<Job> jobs;
    const bool ok = readRecordStream(
        is, jobFileHeader(),
        [&](FieldReader &reader) {
            Job job;
            if (!readJob(reader, &job))
                return false;
            jobs.push_back(std::move(job));
            return true;
        },
        nullptr, error);
    if (!ok)
        return std::nullopt;
    return jobs;
}

bool
writeJobFile(const std::string &path, const std::vector<Job> &jobs)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    os << encodeJobBatch(jobs);
    os.flush();
    return static_cast<bool>(os);
}

std::optional<std::vector<Job>>
readJobFile(const std::string &path, std::string *error)
{
    std::vector<Job> jobs;
    const bool ok = readRecordFile(
        path, jobFileHeader(),
        [&](FieldReader &reader) {
            Job job;
            if (!readJob(reader, &job))
                return false;
            jobs.push_back(std::move(job));
            return true;
        },
        nullptr, error);
    if (!ok)
        return std::nullopt;
    return jobs;
}

std::string
encodeWorkerOutput(const WorkerOutput &output)
{
    std::string text = resultFileHeader();
    text += '\n';
    for (const auto &[key, result] : output.results) {
        FieldWriter writer;
        writer.str(key);
        appendJobResult(writer, result);
        text += writer.line();
        text += '\n';
    }
    for (const auto &metric : output.metrics) {
        FieldWriter writer;
        appendMetricRecord(writer, metric);
        text += writer.line();
        text += '\n';
    }
    // The footer count covers every record, metrics included.
    text += footerLine({output.results.size() +
                            output.metrics.size(),
                        output.simulationsPerformed,
                        output.analysesPerformed});
    text += '\n';
    return text;
}

namespace {

/** The shared record/footer half of the WorkerOutput decoders. */
bool
readWorkerOutputStream(std::istream &is, WorkerOutput *output,
                       std::string *error)
{
    std::vector<u64> footer;
    const bool ok = readRecordStream(
        is, resultFileHeader(),
        [&](FieldReader &reader) {
            const std::string first = reader.raw();
            if (first == kMetricTag) {
                telemetry::MetricRecord metric;
                if (!readMetricRecord(reader, &metric))
                    return false;
                output->metrics.push_back(std::move(metric));
                return true;
            }
            std::string key;
            if (!serial::unescape(first, &key))
                return false;
            JobResult result;
            if (!readJobResult(reader, &result) || !reader.done())
                return false;
            output->results.emplace_back(key, std::move(result));
            return true;
        },
        &footer, error);
    if (!ok)
        return false;
    if (footer.size() != 3) {
        if (error)
            *error = "corrupt footer";
        return false;
    }
    output->simulationsPerformed = footer[1];
    output->analysesPerformed = footer[2];
    return true;
}

} // namespace

std::optional<WorkerOutput>
decodeWorkerOutput(const std::string &text, std::string *error)
{
    std::istringstream is(text);
    WorkerOutput output;
    if (!readWorkerOutputStream(is, &output, error))
        return std::nullopt;
    return output;
}

bool
writeResultFile(const std::string &path, const WorkerOutput &output)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    os << encodeWorkerOutput(output);
    os.flush();
    return static_cast<bool>(os);
}

std::optional<WorkerOutput>
readResultFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = path + ": cannot open";
        return std::nullopt;
    }
    WorkerOutput output;
    std::string reason;
    if (!readWorkerOutputStream(is, &output, &reason)) {
        if (error)
            *error = path + ": " + reason;
        return std::nullopt;
    }
    return output;
}

} // namespace vegeta::sim
