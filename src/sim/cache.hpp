/**
 * @file
 * Request-keyed result caching.
 *
 * Simulation is a pure function of the request: the same
 * SimulationRequest always produces the same SimulationResult.  The
 * ResultCache exploits that to make repeated sweeps cheap -- the
 * Figure 13 grid followed by the geomean speed-up summaries replays
 * dozens of identical requests, and every `geomeanSpeedup` ratio
 * re-simulates the shared dense baseline.
 *
 * Keys are a canonical serialization of every result-affecting request
 * field (cacheKey); two requests with equal keys are guaranteed to
 * produce bit-identical results, so consulting the cache never changes
 * an answer -- only how often the simulator actually runs.
 *
 * The cache is sharded by key hash with one mutex per shard so
 * SweepRunner worker threads do not serialize on a single lock
 * ("When More Cores Hurts"-style contention is the failure mode this
 * avoids); hit/miss/insert counters are lock-free atomics.
 */

#ifndef VEGETA_SIM_CACHE_HPP
#define VEGETA_SIM_CACHE_HPP

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/request.hpp"
#include "sim/result.hpp"

namespace vegeta::sim {

/**
 * Canonical cache key of a request: every field that can influence the
 * produced SimulationResult (label echo, GEMM dims, engine, pattern,
 * OF, kernel variant, C blocking, and the full core configuration),
 * joined with '|' in a fixed order.  Version-prefixed so persisted
 * keys can never collide across format changes.
 */
std::string cacheKey(const SimulationRequest &request);

/** Lock-free snapshot of cache traffic. */
struct CacheStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0;
};

/**
 * Thread-safe, sharded map from canonical request keys to results.
 * Safe for concurrent find/insert from any number of SweepRunner
 * workers; inserting an existing key is a no-op (the first result
 * wins, and equal keys imply equal results anyway).
 */
class ResultCache
{
  public:
    explicit ResultCache(std::size_t shards = 16);

    /** The cached result for key, or nullopt (counts a hit/miss). */
    std::optional<SimulationResult> find(const std::string &key) const;

    /** Cache a result under key (first insert wins). */
    void insert(const std::string &key, const SimulationResult &result);

    /** Number of cached results. */
    std::size_t size() const;

    /** Drop every entry (counters are preserved). */
    void clear();

    CacheStats stats() const;

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<std::string, SimulationResult> entries;
    };

    Shard &shardFor(const std::string &key) const;

    std::vector<std::unique_ptr<Shard>> shards_;
    mutable std::atomic<u64> hits_{0};
    mutable std::atomic<u64> misses_{0};
    std::atomic<u64> insertions_{0};
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_CACHE_HPP
