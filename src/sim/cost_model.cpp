#include "sim/cost_model.hpp"

#include <cmath>

#include "sim/cache.hpp"
#include "sim/disk_cache.hpp"
#include "sim/request.hpp"
#include "sim/session.hpp"

namespace vegeta::sim {

namespace {

double
log2Safe(double value)
{
    return std::log2(value < 1.0 ? 1.0 : value);
}

std::vector<std::string>
splitFields(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

} // namespace

std::array<double, kCostFeatureCount>
CostModel::features(const kernels::GemmDims &gemm,
                    const engine::EngineConfig &engine, u32 pattern_n,
                    bool output_forwarding, bool naive, u32 c_blocking)
{
    const PrefilterEstimate est = prefilterEstimate(
        gemm, engine, pattern_n, output_forwarding, naive,
        c_blocking);
    std::array<double, kCostFeatureCount> x{};
    x[0] = 1.0;
    x[1] = log2Safe(double(gemm.m));
    x[2] = log2Safe(double(gemm.n));
    x[3] = log2Safe(double(gemm.k));
    x[4] = double(est.executedN);
    x[5] = log2Safe(double(engine.alpha));
    x[6] = log2Safe(double(engine.beta));
    x[7] = engine.sparse ? 1.0 : 0.0;
    x[8] = (output_forwarding && engine.sparse) ? 1.0 : 0.0;
    x[9] = double(naive ? 1 : c_blocking);
    x[10] = naive ? 1.0 : 0.0;
    x[11] = log2Safe(est.estCoreCycles);
    return x;
}

std::optional<CostModel>
CostModel::fit(const std::vector<CostSample> &samples, double lambda)
{
    if (samples.empty())
        return std::nullopt;
    constexpr u32 n = kCostFeatureCount;

    // Normal equations A w = b with A = X'X + lambda I (bias term
    // unpenalized).
    std::array<std::array<double, n + 1>, n> m{};
    for (const auto &sample : samples) {
        for (u32 i = 0; i < n; ++i) {
            for (u32 j = 0; j < n; ++j)
                m[i][j] +=
                    sample.features[i] * sample.features[j];
            m[i][n] += sample.features[i] * sample.log2Cycles;
        }
    }
    for (u32 i = 1; i < n; ++i)
        m[i][i] += lambda;

    // Gaussian elimination with partial pivoting; every comparison
    // is on exact doubles, so the factorization (and therefore the
    // model) is a pure function of the sample set.
    for (u32 col = 0; col < n; ++col) {
        u32 pivot = col;
        for (u32 row = col + 1; row < n; ++row)
            if (std::fabs(m[row][col]) > std::fabs(m[pivot][col]))
                pivot = row;
        if (std::fabs(m[pivot][col]) < 1e-12)
            return std::nullopt;
        std::swap(m[col], m[pivot]);
        for (u32 row = 0; row < n; ++row) {
            if (row == col)
                continue;
            const double factor = m[row][col] / m[col][col];
            for (u32 j = col; j <= n; ++j)
                m[row][j] -= factor * m[col][j];
        }
    }

    CostModel model;
    for (u32 i = 0; i < n; ++i)
        model.weights_[i] = m[i][n] / m[i][i];
    model.samples_ = samples.size();

    double sq_err = 0.0;
    for (const auto &sample : samples) {
        const double err = model.predictLog2Cycles(sample.features) -
                           sample.log2Cycles;
        sq_err += err * err;
    }
    model.rmse_ = std::sqrt(sq_err / double(samples.size()));
    return model;
}

double
CostModel::predictLog2Cycles(
    const std::array<double, kCostFeatureCount> &x) const
{
    double sum = 0.0;
    for (u32 i = 0; i < kCostFeatureCount; ++i)
        sum += weights_[i] * x[i];
    return sum;
}

std::optional<CostSample>
costSampleFromCacheEntry(const Session &session,
                         const std::string &key,
                         const SimulationResult &result)
{
    const auto fields = splitFields(key, '|');
    if (fields.size() != 10 || fields[0] != "v1")
        return std::nullopt;

    SimulationRequest request;
    request.label = fields[1];
    const auto gemm = parseGemmSpec(fields[2]);
    if (!gemm)
        return std::nullopt;
    request.gemm = *gemm;
    request.engine = fields[3];
    const auto pattern = parseU32(fields[4]);
    if (!pattern)
        return std::nullopt;
    request.patternN = *pattern;
    if (fields[5] != "0" && fields[5] != "1")
        return std::nullopt;
    request.outputForwarding = fields[5] == "1";
    if (fields[6] == "optimized")
        request.kernel = KernelVariant::Optimized;
    else if (fields[6] == "naive")
        request.kernel = KernelVariant::Naive;
    else
        return std::nullopt; // trace replays carry no loop structure
    const auto c_blocking = parseU32(fields[7]);
    if (!c_blocking || *c_blocking < 1 || *c_blocking > 3)
        return std::nullopt;
    request.cBlocking = *c_blocking;

    // Round-trip check: a record simulated under core/cache overrides
    // serializes differently from the default-core request rebuilt
    // here, and must be skipped rather than mis-featurized.
    if (cacheKey(request) != key)
        return std::nullopt;

    const auto config = session.engines().find(request.engine);
    if (!config || result.coreCycles == 0)
        return std::nullopt;
    if (request.patternN != 1 && request.patternN != 2 &&
        request.patternN != 4)
        return std::nullopt;

    CostSample sample;
    sample.features = CostModel::features(
        request.gemm, *config, request.patternN,
        request.outputForwarding,
        request.kernel == KernelVariant::Naive, request.cBlocking);
    sample.log2Cycles = log2Safe(double(result.coreCycles));
    return sample;
}

std::vector<CostSample>
harvestCostSamples(const Session &session,
                   const DiskResultCache &cache)
{
    std::vector<CostSample> samples;
    for (const auto &[key, result] : cache.simulationEntries())
        if (auto sample =
                costSampleFromCacheEntry(session, key, result))
            samples.push_back(std::move(*sample));
    return samples;
}

} // namespace vegeta::sim
