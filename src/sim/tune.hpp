/**
 * @file
 * sim::Tuner -- budgeted design-space search over the model.
 *
 * The tuner answers "which (engine, kernel blocking, sparsity
 * pattern) point is fastest for these workloads" without replaying
 * the whole cross product.  Points flow through a three-stage funnel:
 *
 *  1. validity -- every raw point of the TuneSpace passes the cheap
 *     structural predicates of sim/tune_space.hpp; infeasible points
 *     are rejected with a reason and cost a few integer checks.
 *  2. analytical prefilter -- surviving points are scored through the
 *     registered "tune-prefilter" analytical backend (the closed-form
 *     estimator of sim/tune_space.hpp) and ranked by estimated cycles
 *     per MAC.  When a persistent cache holds enough prior
 *     simulations (sim/cost_model.hpp), a ridge cost model trained on
 *     those records re-ranks the estimates.
 *  3. replay confirmation -- only the top-ranked points, strictly
 *     bounded by TuneBudget::replays, run the real cycle model via
 *     Session::runBatch (inheriting lane batching and both caches) or
 *     via a SimClient when an address is configured.
 *
 * Two search strategies share this funnel: CappedExhaustive scores
 * every valid point before confirming, RandomHalving samples a seeded
 * random pool and spends the replay budget over successive-halving
 * rounds, recalibrating the analytical ranking against measurements
 * between rounds.
 *
 * Determinism contract: for a fixed space, options, and persistent
 * cache state, run() -- and the byte stream of writeJson/writeCsv --
 * is identical for any thread count, lane width, and execution path
 * (local or service), because replay itself is bit-deterministic and
 * every ranking step sorts with a total order (ties broken by
 * tunePointKey).
 */

#ifndef VEGETA_SIM_TUNE_HPP
#define VEGETA_SIM_TUNE_HPP

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "sim/tune_space.hpp"

namespace vegeta::sim {

class Session;

/** How the tuner spends its budget. */
enum class TuneStrategy
{
    /** Score every valid point, replay the top of the ranking. */
    CappedExhaustive,

    /** Seeded random pool + successive-halving replay rounds. */
    RandomHalving,
};

const char *tuneStrategyName(TuneStrategy strategy);

/** Parse a strategy name ("exhaustive" / "halving"). */
std::optional<TuneStrategy>
parseTuneStrategy(const std::string &name);

/** Explicit evaluation budget; replays are the scarce resource. */
struct TuneBudget
{
    /** Max cycle-model confirmations (strictly honored). */
    u32 replays = 8;

    /** Max analytical scorings; 0 = every valid point. */
    u64 analyses = 0;
};

/** Everything run() needs besides the space. */
struct TuneOptions
{
    TuneStrategy strategy = TuneStrategy::CappedExhaustive;
    TuneBudget budget;

    /** PRNG seed (RandomHalving pool sampling). */
    u64 seed = 1;

    /** Replay batch threads (0 = hardware concurrency). */
    u32 threads = 0;

    /** Replay lane width (0 = Session::defaultLaneWidth()). */
    u32 laneWidth = 0;

    /** When non-empty, confirm replays on this sim service address. */
    std::string connectAddress;

    /**
     * Consult the cache-trained cost model when the session's
     * persistent cache holds >= kMinCostSamples eligible records.
     */
    bool useCostModel = true;
};

/** One scored (and possibly confirmed) search point. */
struct TuneCandidate
{
    TunePoint point;

    /** Closed-form prefilter estimate (stage 2). */
    double estCyclesPerMac = 0.0;

    /** Cost-model re-ranked estimate (= est when model unused). */
    double predictedCyclesPerMac = 0.0;

    double areaUnits = 0.0;

    /** True once the point was confirmed on the cycle model. */
    bool replayed = false;
    u64 measuredCoreCycles = 0;
    double measuredCyclesPerMac = 0.0;
    double measuredMacUtilization = 0.0;
};

/** The full, serializable outcome of one search. */
struct TuneReport
{
    TuneStrategy strategy = TuneStrategy::CappedExhaustive;
    u64 seed = 1;
    TuneBudget budget;

    u64 rawPoints = 0;      ///< |space cross product|
    u64 validPoints = 0;    ///< survived the validity predicates
    u64 rejectedPoints = 0; ///< rawPoints - validPoints
    u64 analyzedPoints = 0; ///< analytically scored (stage 2)
    u64 replayedPoints = 0; ///< cycle-model confirmations (stage 3)

    /**
     * Wall-clock milliseconds spent per funnel stage.  Deliberately
     * NOT serialized by writeJson/writeCsv: the rendered report is
     * byte-identical across runs (pinned by CI), so timings live only
     * here and on the `tune.*` telemetry timers.
     */
    double validityMs = 0.0;
    double analyzeMs = 0.0;
    double replayMs = 0.0;

    bool costModelUsed = false;
    u64 costModelSamples = 0; ///< harvested cache records
    double costModelRmse = 0.0;

    /**
     * Replayed candidates, best (lowest measured cycles/MAC) first,
     * ties broken by tunePointKey.  best() is confirmed.front().
     */
    std::vector<TuneCandidate> confirmed;

    /**
     * The measured area/performance Pareto front: confirmed points no
     * other confirmed point beats on both cycles/MAC and area,
     * ascending by area.
     */
    std::vector<TuneCandidate> paretoFront;

    /** The winner (confirmed.front()); nullopt when nothing ran. */
    const TuneCandidate *best() const
    {
        return confirmed.empty() ? nullptr : &confirmed.front();
    }
};

/** Render a report as one JSON object (stable field order). */
void writeJson(std::ostream &os, const TuneReport &report);

/** Render the confirmed candidates as CSV with a header row. */
void writeCsv(std::ostream &os, const TuneReport &report);

/** The budgeted searcher; borrows the session for its lifetime. */
class Tuner
{
  public:
    Tuner(const Session &session, TuneOptions options);

    /**
     * Run the three-stage funnel over @p space and return the report.
     * The space must name at least one registered workload and engine
     * (figure13()/full() guarantee this).
     */
    TuneReport run(const TuneSpace &space) const;

  private:
    std::vector<TuneCandidate>
    scoreCandidates(const TuneSpace &space,
                    const std::vector<TunePoint> &valid,
                    u64 analysis_cap, TuneReport &report) const;

    void replayCandidates(std::vector<TuneCandidate *> &picks) const;

    const Session &session_;
    TuneOptions options_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_TUNE_HPP
