/**
 * @file
 * Wire framing for the simulation service: how a SimClient talks to a
 * SimServer, and how the server feeds its persistent workers.
 *
 * One frame is an ASCII header line followed by an opaque payload:
 *
 *   vgw1 <type> <payload-bytes> <fnv1a-checksum-hex16>\n
 *   <payload-bytes bytes of payload>
 *
 * The header is strict (fixed magic, known type token, bounded
 * decimal length, 16-hex-digit checksum) and the checksum covers the
 * payload, so a torn, truncated, or corrupted frame parses to a clean
 * error, never to a wrong batch.  Payloads reuse the persistent
 * formats verbatim: a `batch` frame carries encodeJobBatch() bytes
 * and a `results` frame carries encodeWorkerOutput() bytes
 * (sim/job_io), which in turn ride on the checksummed sim/serial
 * records -- the socket speaks exactly the dialect the shard files
 * already spoke.
 *
 * Sessions open with a hello handshake: the client sends `hello`
 * whose payload names the wire version AND the job/result record
 * format versions; the server answers `helloack` with its own.  Any
 * disagreement -- a newer wire revision, a rebuilt record format --
 * fails the connection cleanly before any work is exchanged, so
 * mismatched builds can never exchange silently-misread records.
 *
 * The same framing runs over the server's worker pipes: frames are
 * transport-agnostic byte streams, readable from any fd.
 */

#ifndef VEGETA_SIM_WIRE_HPP
#define VEGETA_SIM_WIRE_HPP

#include <string>

#include "common/types.hpp"

namespace vegeta::sim::wire {

/** Hard ceiling on one frame's payload (rejects garbage lengths). */
constexpr u64 kMaxFramePayload = 256ull << 20;

/** What a frame carries. */
enum class FrameType
{
    Hello,    ///< client -> server: version handshake
    HelloAck, ///< server -> client: handshake accepted
    Batch,    ///< a job batch (encodeJobBatch payload)
    Results,  ///< batch results (encodeWorkerOutput payload)
    Stats,    ///< client: request (empty) / server: live stats JSON
    Error,    ///< one-line human-readable failure; connection closes
    Bye,      ///< clean goodbye (empty payload)
};

/** The header token of a frame type. */
const char *frameTypeName(FrameType type);

/** One parsed frame. */
struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

/**
 * The handshake payload this build speaks: the wire revision plus the
 * record-format versions the payloads are encoded with.  Builds must
 * agree on the WHOLE string to talk.
 */
std::string helloPayload();

/** A frame as bytes (header line + payload). */
std::string encodeFrame(FrameType type, const std::string &payload);

/**
 * Write one frame to @p fd (handles short writes; sockets are
 * written with MSG_NOSIGNAL so a dead peer is an error, not a
 * SIGPIPE).  False with a one-line reason on failure.
 */
bool writeFrame(int fd, FrameType type, const std::string &payload,
                std::string *error);

/**
 * Read one frame from @p fd.  @p timeout_ms < 0 blocks indefinitely;
 * otherwise the WHOLE frame must arrive within the timeout.  Returns
 * false on timeout, corruption, or EOF; when the peer closed before
 * the first header byte (a clean goodbye-by-close), @p clean_eof is
 * set so callers can tell disconnect from damage.
 */
bool readFrame(int fd, Frame *frame, int timeout_ms,
               std::string *error, bool *clean_eof = nullptr);

} // namespace vegeta::sim::wire

#endif // VEGETA_SIM_WIRE_HPP
