#include "sim/job.hpp"

#include <iomanip>
#include <sstream>

namespace vegeta::sim {

const char *
jobKindName(JobKind kind)
{
    return kind == JobKind::Analysis ? "analysis" : "simulation";
}

Job
Job::simulate(SimulationRequest request)
{
    Job job;
    job.kind = JobKind::Simulation;
    job.simulation = std::move(request);
    return job;
}

Job
Job::analyze(AnalyticalRequest request)
{
    Job job;
    job.kind = JobKind::Analysis;
    job.analysis = std::move(request);
    return job;
}

std::string
analyticalKey(const AnalyticalRequest &request)
{
    std::ostringstream key;
    // max_digits10 keeps distinct doubles distinct in the key, so
    // equal keys imply bit-identical requests.
    key << std::setprecision(17);
    key << "v1|" << request.model << '|';
    for (const auto &name : request.workloads)
        key << name << ',';
    key << '|';
    for (const auto &name : request.engines)
        key << name << ',';
    key << '|';
    for (const auto &[name, value] : request.params)
        key << name << '=' << value << ';';
    key << '|';
    for (const auto &[name, value] : request.options)
        key << name << '=' << value << ';';
    return key.str();
}

std::string
jobKey(const Job &job)
{
    if (job.kind == JobKind::Analysis)
        return "ana|" + analyticalKey(job.analysis);
    return "sim|" + cacheKey(job.simulation);
}

JobBuilder::JobBuilder(const EngineRegistry &engines,
                       const WorkloadRegistry &workloads,
                       const AnalyticalRegistry &analytics)
    : engines_(engines), workloads_(workloads), analytics_(analytics)
{
}

JobBuilder &
JobBuilder::workload(const std::string &name)
{
    if (!workloads_.contains(name)) {
        fail("unknown workload: " + name);
        return *this;
    }
    workload_names_.push_back(name);
    return *this;
}

JobBuilder &
JobBuilder::gemm(const kernels::GemmDims &dims)
{
    if (dims.m == 0 || dims.n == 0 || dims.k == 0) {
        fail("GEMM dimensions must be non-zero");
        return *this;
    }
    gemm_ = dims;
    return *this;
}

JobBuilder &
JobBuilder::gemm(const std::string &spec)
{
    const auto dims = parseGemmSpec(spec);
    if (!dims) {
        fail("bad GEMM spec (expected MxNxK): " + spec);
        return *this;
    }
    return gemm(*dims);
}

JobBuilder &
JobBuilder::engine(const std::string &name)
{
    if (!engines_.contains(name)) {
        fail("unknown engine: " + name);
        return *this;
    }
    engine_names_.push_back(name);
    return *this;
}

JobBuilder &
JobBuilder::pattern(u32 layer_n)
{
    if (layer_n != 1 && layer_n != 2 && layer_n != 4) {
        fail("pattern must be 1, 2, or 4 (got " +
             std::to_string(layer_n) + ")");
        return *this;
    }
    pattern_ = layer_n;
    have_sim_knob_ = true;
    return *this;
}

JobBuilder &
JobBuilder::outputForwarding(bool enabled)
{
    output_forwarding_ = enabled;
    have_sim_knob_ = true;
    return *this;
}

JobBuilder &
JobBuilder::kernel(KernelVariant variant)
{
    kernel_ = variant;
    have_sim_knob_ = true;
    return *this;
}

JobBuilder &
JobBuilder::cBlocking(u32 c_tiles)
{
    if (c_tiles < 1 || c_tiles > 3) {
        fail("cBlocking must be 1..3 (got " + std::to_string(c_tiles) +
             ")");
        return *this;
    }
    c_blocking_ = c_tiles;
    have_sim_knob_ = true;
    return *this;
}

JobBuilder &
JobBuilder::core(const cpu::CoreConfig &config)
{
    core_ = config;
    have_sim_knob_ = true;
    return *this;
}

JobBuilder &
JobBuilder::model(const std::string &name)
{
    if (!analytics_.contains(name)) {
        fail("unknown analytical model: " + name);
        return *this;
    }
    model_ = name;
    return *this;
}

JobBuilder &
JobBuilder::param(const std::string &name, double value)
{
    params_[name] = value;
    return *this;
}

JobBuilder &
JobBuilder::option(const std::string &name, std::string value)
{
    options_[name] = std::move(value);
    return *this;
}

std::optional<Job>
JobBuilder::build()
{
    if (!error_.empty())
        return std::nullopt;

    if (!model_.empty()) {
        // Analysis job: list-valued workloads/engines, no trace knobs.
        if (gemm_)
            fail("a GEMM target only applies to simulation jobs");
        else if (have_sim_knob_)
            fail("pattern/outputForwarding/kernel/cBlocking/core only "
                 "apply to simulation jobs");
        if (!error_.empty())
            return std::nullopt;
        AnalyticalRequest request;
        request.model = model_;
        request.workloads = workload_names_;
        request.engines = engine_names_;
        request.params = params_;
        request.options = options_;
        return Job::analyze(std::move(request));
    }

    // Simulation job: the old RequestBuilder contract.
    if (!params_.empty() || !options_.empty())
        fail("param/option require an analytical model()");
    else if (workload_names_.size() > 1)
        fail("a simulation job takes exactly one workload");
    else if (engine_names_.size() > 1)
        fail("a simulation job takes exactly one engine");
    else if (gemm_ && !workload_names_.empty())
        fail("give either a workload or GEMM dimensions, not both");
    else if (!gemm_ && workload_names_.empty())
        fail("no workload or GEMM dimensions given");
    else if (engine_names_.empty())
        fail("no engine given");
    if (!error_.empty())
        return std::nullopt;

    SimulationRequest request;
    if (gemm_) {
        std::ostringstream label;
        label << gemm_->m << "x" << gemm_->n << "x" << gemm_->k;
        request.label = label.str();
        request.gemm = *gemm_;
    } else {
        const auto found = workloads_.find(workload_names_.front());
        request.label = found->name;
        request.gemm = found->gemm;
    }
    request.engine = engine_names_.front();
    request.patternN = pattern_;
    request.outputForwarding = output_forwarding_;
    request.kernel = kernel_;
    request.cBlocking = c_blocking_;
    request.core = core_;
    return Job::simulate(std::move(request));
}

void
JobBuilder::fail(const std::string &message)
{
    if (error_.empty())
        error_ = message;
}

} // namespace vegeta::sim
