/**
 * @file
 * Deprecated shim: the Simulator facade is now the Session.
 *
 * The Session/Job API (sim/session.hpp) subsumes everything the
 * Simulator did -- same registries, same request/result types, same
 * run/replay/analyze contracts -- and adds polymorphic jobs, batch
 * execution, and the persistent result cache.  `Simulator` is kept
 * as an alias so code (and tests) written against the old name keeps
 * compiling unchanged; new code should say Session.
 */

#ifndef VEGETA_SIM_SIMULATOR_HPP
#define VEGETA_SIM_SIMULATOR_HPP

#include "sim/deprecated.hpp"
#include "sim/session.hpp"

VEGETA_SIM_DEPRECATION_NOTE(
    "sim/simulator.hpp is a deprecated shim: include sim/session.hpp "
    "and spell the facade Session (define "
    "VEGETA_SIM_SILENCE_DEPRECATION to silence)")

namespace vegeta::sim {

/** Deprecated name for Session; prefer Session in new code. */
using Simulator = Session;

} // namespace vegeta::sim

#endif // VEGETA_SIM_SIMULATOR_HPP
