/**
 * @file
 * The Simulator facade: the one public entry point for running the
 * VEGETA model.
 *
 * A Simulator owns an engine registry, a workload registry, and an
 * analytical-model registry, and turns validated SimulationRequests
 * into SimulationResults (and AnalyticalRequests into
 * AnalyticalResults).  It wraps the whole seed flow -- kernel
 * generation (optimized or Listing-1 naive), layer-wise effective-N
 * resolution, the trace-driven core model -- replays pre-recorded
 * traces so a trace captured once can be measured across engine
 * configs, and optionally memoizes results in a request-keyed
 * ResultCache.
 *
 * Everything above this layer (CLI, benches, sweeps) speaks only
 * requests and results; nothing above it wires engines, workloads, or
 * kernels by hand.
 */

#ifndef VEGETA_SIM_SIMULATOR_HPP
#define VEGETA_SIM_SIMULATOR_HPP

#include <memory>

#include "sim/analytical.hpp"
#include "sim/cache.hpp"
#include "sim/request.hpp"
#include "sim/result.hpp"

namespace vegeta::sim {

/** Facade over kernel generation + the trace-driven CPU model. */
class Simulator
{
  public:
    /** A simulator over the paper's builtin design/workload space. */
    Simulator();

    Simulator(EngineRegistry engines, WorkloadRegistry workloads);

    Simulator(EngineRegistry engines, WorkloadRegistry workloads,
              AnalyticalRegistry analytics);

    const EngineRegistry &engines() const { return engines_; }
    const WorkloadRegistry &workloads() const { return workloads_; }
    const AnalyticalRegistry &analytics() const { return analytics_; }

    /** A builder bound to this simulator's registries. */
    RequestBuilder request() const;

    /**
     * Attach a result cache consulted by run() (and, through it, by
     * every sweep).  Caching never changes an answer -- equal cache
     * keys imply bit-identical results -- it only skips re-simulating
     * requests already seen.  Pass nullptr to disable.  The cache may
     * be shared between simulators with identical registries.
     */
    void setCache(std::shared_ptr<ResultCache> cache);

    /** Convenience: attach a fresh cache and return it. */
    std::shared_ptr<ResultCache> enableCache();

    /** The attached cache (nullptr when caching is off). */
    const std::shared_ptr<ResultCache> &cache() const { return cache_; }

    /**
     * Run one request end to end: generate the kernel trace for the
     * engine's effective N and simulate it on the core model.
     * The request must name a registered engine (builders guarantee
     * this); unknown names abort via VEGETA_ASSERT.  When
     * @p trace_out is non-null the generated trace is copied into it
     * (for saving to disk) without a second generation pass.
     */
    SimulationResult run(const SimulationRequest &request,
                         cpu::Trace *trace_out = nullptr) const;

    /**
     * Why @p trace cannot replay on the request's engine (a trace
     * generated for a sparse executed-N contains TILE_SPMM ops a
     * dense engine has no datapath for), or nullopt if it can.
     */
    std::optional<std::string>
    replayError(const cpu::Trace &trace,
                const SimulationRequest &request) const;

    /**
     * Replay a pre-recorded trace under a request's engine and core
     * configuration (the kernel variant and GEMM dims of the request
     * are ignored; the result's kernel field reads "replay").  The
     * trace must be replayable (see replayError).
     */
    SimulationResult replay(const cpu::Trace &trace,
                            const SimulationRequest &request) const;

    /**
     * Why an analytical request cannot run (unknown model, engine, or
     * workload name), or nullopt if it is valid.
     */
    std::optional<std::string>
    analyzeError(const AnalyticalRequest &request) const;

    /**
     * Evaluate one registered analytical model.  The request must be
     * valid (see analyzeError); invalid names abort via VEGETA_ASSERT,
     * matching run()'s contract.
     */
    AnalyticalResult analyze(const AnalyticalRequest &request) const;

  private:
    static cpu::CoreConfig coreFor(const SimulationRequest &request,
                                   const engine::EngineConfig &engine);

    static SimulationResult
    fromSimResult(const cpu::SimResult &sim,
                  const engine::EngineConfig &engine,
                  const SimulationRequest &request,
                  const char *kernel_label, u32 executed_n,
                  u64 tile_computes);

    SimulationResult measure(const cpu::Trace &trace,
                             const engine::EngineConfig &engine,
                             const SimulationRequest &request,
                             const char *kernel_label,
                             u32 executed_n, u64 tile_computes) const;

    SimulationResult runUncached(const SimulationRequest &request,
                                 cpu::Trace *trace_out) const;

    EngineRegistry engines_;
    WorkloadRegistry workloads_;
    AnalyticalRegistry analytics_;
    std::shared_ptr<ResultCache> cache_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_SIMULATOR_HPP
