/**
 * @file
 * The Simulator facade: the one public entry point for running the
 * VEGETA model.
 *
 * A Simulator owns an engine registry and a workload registry and
 * turns validated SimulationRequests into SimulationResults.  It
 * wraps the whole seed flow -- kernel generation (optimized or
 * Listing-1 naive), layer-wise effective-N resolution, the
 * trace-driven core model -- and also replays pre-recorded traces so
 * a trace captured once can be measured across engine configs.
 *
 * Everything above this layer (CLI, benches, sweeps) speaks only
 * requests and results; nothing above it wires engines, workloads, or
 * kernels by hand.
 */

#ifndef VEGETA_SIM_SIMULATOR_HPP
#define VEGETA_SIM_SIMULATOR_HPP

#include "sim/request.hpp"
#include "sim/result.hpp"

namespace vegeta::sim {

/** Facade over kernel generation + the trace-driven CPU model. */
class Simulator
{
  public:
    /** A simulator over the paper's builtin design/workload space. */
    Simulator();

    Simulator(EngineRegistry engines, WorkloadRegistry workloads);

    const EngineRegistry &engines() const { return engines_; }
    const WorkloadRegistry &workloads() const { return workloads_; }

    /** A builder bound to this simulator's registries. */
    RequestBuilder request() const;

    /**
     * Run one request end to end: generate the kernel trace for the
     * engine's effective N and simulate it on the core model.
     * The request must name a registered engine (builders guarantee
     * this); unknown names abort via VEGETA_ASSERT.  When
     * @p trace_out is non-null the generated trace is copied into it
     * (for saving to disk) without a second generation pass.
     */
    SimulationResult run(const SimulationRequest &request,
                         cpu::Trace *trace_out = nullptr) const;

    /**
     * Why @p trace cannot replay on the request's engine (a trace
     * generated for a sparse executed-N contains TILE_SPMM ops a
     * dense engine has no datapath for), or nullopt if it can.
     */
    std::optional<std::string>
    replayError(const cpu::Trace &trace,
                const SimulationRequest &request) const;

    /**
     * Replay a pre-recorded trace under a request's engine and core
     * configuration (the kernel variant and GEMM dims of the request
     * are ignored; the result's kernel field reads "replay").  The
     * trace must be replayable (see replayError).
     */
    SimulationResult replay(const cpu::Trace &trace,
                            const SimulationRequest &request) const;

  private:
    SimulationResult measure(const cpu::Trace &trace,
                             const engine::EngineConfig &engine,
                             const SimulationRequest &request,
                             const char *kernel_label,
                             u32 executed_n, u64 tile_computes) const;

    EngineRegistry engines_;
    WorkloadRegistry workloads_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_SIMULATOR_HPP
