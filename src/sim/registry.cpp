#include "sim/registry.hpp"

#include "common/logging.hpp"

namespace vegeta::sim {

EngineRegistry &
EngineRegistry::add(Factory factory, bool table_iii)
{
    VEGETA_ASSERT(factory, "null engine factory");
    const engine::EngineConfig probe = factory();
    VEGETA_ASSERT(!probe.name.empty(), "engine config without a name");
    for (auto &entry : entries_) {
        if (entry.name == probe.name) {
            entry.factory = std::move(factory);
            entry.tableIII = table_iii;
            return *this;
        }
    }
    entries_.push_back({probe.name, std::move(factory), table_iii});
    return *this;
}

EngineRegistry &
EngineRegistry::add(const engine::EngineConfig &config, bool table_iii)
{
    return add([config]() { return config; }, table_iii);
}

bool
EngineRegistry::contains(const std::string &name) const
{
    return find(name).has_value();
}

std::optional<engine::EngineConfig>
EngineRegistry::find(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.name == name)
            return entry.factory();
    return std::nullopt;
}

std::vector<std::string>
EngineRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.name);
    return out;
}

std::vector<engine::EngineConfig>
EngineRegistry::configs() const
{
    std::vector<engine::EngineConfig> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.factory());
    return out;
}

std::vector<engine::EngineConfig>
EngineRegistry::tableIIIConfigs() const
{
    std::vector<engine::EngineConfig> out;
    for (const auto &entry : entries_)
        if (entry.tableIII)
            out.push_back(entry.factory());
    return out;
}

EngineRegistry
EngineRegistry::builtin()
{
    // allEvaluatedConfigs() order (Figure 13 row order): the eight
    // Table III rows with STC-like spliced in after VEGETA-S-1-2.
    EngineRegistry reg;
    const std::string stc_name = engine::stcLike().name;
    for (const auto &cfg : engine::allEvaluatedConfigs())
        reg.add(cfg, /*table_iii=*/cfg.name != stc_name);
    return reg;
}

WorkloadRegistry &
WorkloadRegistry::add(const kernels::Workload &workload,
                      const std::string &group)
{
    VEGETA_ASSERT(!workload.name.empty(), "workload without a name");
    for (auto &entry : entries_) {
        if (entry.workload.name == workload.name) {
            entry.workload = workload;
            entry.group = group;
            return *this;
        }
    }
    entries_.push_back({workload, group});
    return *this;
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    return find(name).has_value();
}

std::optional<kernels::Workload>
WorkloadRegistry::find(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.workload.name == name)
            return entry.workload;
    return std::nullopt;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.workload.name);
    return out;
}

std::vector<kernels::Workload>
WorkloadRegistry::workloads() const
{
    std::vector<kernels::Workload> out;
    out.reserve(entries_.size());
    for (const auto &entry : entries_)
        out.push_back(entry.workload);
    return out;
}

std::vector<kernels::Workload>
WorkloadRegistry::group(const std::string &group) const
{
    std::vector<kernels::Workload> out;
    for (const auto &entry : entries_)
        if (entry.group == group)
            out.push_back(entry.workload);
    return out;
}

WorkloadRegistry
WorkloadRegistry::builtin()
{
    WorkloadRegistry reg;
    for (const auto &w : kernels::tableIVWorkloads())
        reg.add(w, "tableIV");
    for (const auto &w : kernels::quickWorkloads())
        reg.add(w, "quick");
    return reg;
}

} // namespace vegeta::sim
