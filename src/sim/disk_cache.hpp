/**
 * @file
 * Persistent (on-disk) result caching.
 *
 * The in-memory ResultCache dies with the process; the DiskResultCache
 * persists results across runs so a warm sweep replays nothing.  Both
 * halves of the evaluation are persisted: simulation results keyed by
 * the canonical cacheKey serialization and analytical results keyed by
 * analyticalKey, stored as type-tagged records (one per line) in a
 * version-headed text file under the cache directory.
 *
 * The load path is corruption-tolerant by construction: a missing
 * file is an empty cache, a version-mismatched header (including a v1
 * file from before analytical records existed) invalidates the whole
 * file (it is rewritten on the next insert), and a truncated or
 * corrupt record -- including silent bit rot inside a value field,
 * caught by a per-record checksum -- is skipped, so a damaged cache
 * can only cause misses, never wrong results.  Doubles round-trip
 * through their raw bit pattern so persisted results stay bit-for-bit
 * identical to freshly computed ones.
 *
 * Appends take an exclusive flock() on the backing file, so any
 * number of concurrent writer processes (pool workers sharing one
 * --cache-dir) interleave whole records, never torn ones; combined
 * with first-insert-wins load semantics, concurrent writers are safe
 * by construction.  The append-only file can be bounded with prune():
 * keep the most-recently-appended entries under a byte and/or entry
 * budget and compact the file in place.
 */

#ifndef VEGETA_SIM_DISK_CACHE_HPP
#define VEGETA_SIM_DISK_CACHE_HPP

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/analytical.hpp"
#include "sim/result.hpp"

namespace vegeta::sim {

/** Traffic and load-time health counters of a DiskResultCache. */
struct DiskCacheStats
{
    u64 hits = 0;   ///< simulation + analysis hits
    u64 misses = 0; ///< simulation + analysis misses
    u64 insertions = 0; ///< records appended by this process
    u64 loaded = 0;     ///< valid records read from disk on open
    u64 rejected = 0;   ///< corrupt/truncated records skipped on open
    bool versionMismatch = false; ///< whole file ignored on open

    u64 simulationEntries = 0; ///< cached simulation results
    u64 analysisEntries = 0;   ///< cached analytical results
    u64 fileBytes = 0;         ///< current size of the backing file

    /** Bytes the most recent prune() reclaimed (persisted in the
     *  cache directory, so it survives across processes). */
    u64 lastPruneBytes = 0;

    /** hits / (hits + misses) of this process (0 with no traffic). */
    double hitRate() const
    {
        const u64 total = hits + misses;
        return total == 0 ? 0.0
                          : double(hits) / double(total);
    }
};

/** What prune() kept and dropped. */
struct DiskCachePrune
{
    u64 kept = 0;
    u64 dropped = 0;
    u64 fileBytes = 0;      ///< backing-file size after compaction
    u64 reclaimedBytes = 0; ///< backing-file bytes freed
};

/** What one mergeFrom() call added and skipped. */
struct DiskCacheMerge
{
    u64 added = 0;   ///< entries new to the destination
    u64 skipped = 0; ///< entries the destination already had
};

/**
 * Thread-safe persistent map from canonical request keys to results,
 * backed by `<directory>/results.vgc`.  The file is read once on
 * construction and appended to on insert, so sessions (and pool
 * worker processes) pointed at the same directory share results.
 * First insert wins, matching ResultCache.
 */
class DiskResultCache
{
  public:
    /**
     * Open (creating the directory and file as needed) the cache
     * under @p directory.  Check ok() before relying on persistence;
     * a cache that failed to open still works as an in-memory map.
     */
    explicit DiskResultCache(const std::string &directory);

    /** False when the directory/file could not be created or read. */
    bool ok() const { return ok_; }

    const std::string &directory() const { return directory_; }

    /** Full path of the backing file. */
    const std::string &filePath() const { return file_; }

    /** The cached result for key, or nullopt (counts a hit/miss). */
    std::optional<SimulationResult> find(const std::string &key) const;

    /** Persist a result under key (first insert wins, flushed). */
    void insert(const std::string &key,
                const SimulationResult &result);

    /** The cached analytical result for key, or nullopt. */
    std::optional<AnalyticalResult>
    findAnalysis(const std::string &key) const;

    /** Persist an analytical result (first insert wins, flushed). */
    void insertAnalysis(const std::string &key,
                        const AnalyticalResult &result);

    /** Total cached entries (simulation + analysis). */
    std::size_t size() const;

    /**
     * Every cached simulation entry as (canonical cacheKey, result)
     * pairs, in append order -- the deterministic training harvest
     * of the tuner's cost model (sim/cost_model.hpp).
     */
    std::vector<std::pair<std::string, SimulationResult>>
    simulationEntries() const;

    /** Drop every entry and truncate the backing file. */
    void clear();

    /**
     * Bound the cache: keep the most-recently-appended entries whose
     * records fit under @p max_bytes (backing-file bytes, header
     * included) and @p max_entries, drop the rest, and compact the
     * backing file.  Nullopt means unbounded in that dimension.
     */
    DiskCachePrune prune(std::optional<u64> max_bytes,
                         std::optional<u64> max_entries);

    /**
     * Union another cache into this one, first-insert-wins: every
     * entry of @p source whose key this cache does not hold yet is
     * appended (in the source's append order); keys already present
     * keep THIS cache's result, exactly like a concurrent writer
     * losing the insert race.  Persisted with one locked append.
     */
    DiskCacheMerge mergeFrom(const DiskResultCache &source);

    DiskCacheStats stats() const;

    /** The on-disk format version tag this build reads and writes. */
    static const char *formatHeader();

  private:
    enum class RecordKind
    {
        Simulation,
        Analysis,
    };

    void load();
    void loadLastPrune();
    void saveLastPruneLocked(u64 reclaimed);
    bool rewriteLocked();
    bool appendRecordLocked(const std::string &record);
    std::string formatEntryLocked(RecordKind kind,
                                  const std::string &key) const;
    u64 fileBytesLocked() const;

    std::string directory_;
    std::string file_;
    std::string prune_note_file_;
    bool ok_ = false;
    bool needs_rewrite_ = false;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, SimulationResult> entries_;
    std::unordered_map<std::string, AnalyticalResult> analyses_;

    /** Append order (oldest first) -- what prune() evicts from. */
    std::vector<std::pair<RecordKind, std::string>> order_;

    mutable u64 hits_ = 0;
    mutable u64 misses_ = 0;
    u64 last_prune_bytes_ = 0;
    u64 insertions_ = 0;
    u64 loaded_ = 0;
    u64 rejected_ = 0;
    bool version_mismatch_ = false;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_DISK_CACHE_HPP
