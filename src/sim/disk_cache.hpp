/**
 * @file
 * Persistent (on-disk) result caching.
 *
 * The in-memory ResultCache dies with the process; the DiskResultCache
 * persists simulation results across runs so a warm sweep replays
 * nothing.  Entries are keyed by the same canonical cacheKey
 * serialization as the in-memory cache (equal keys imply bit-identical
 * results), stored one record per line in a version-headed text file
 * under the cache directory.
 *
 * The load path is corruption-tolerant by construction: a missing
 * file is an empty cache, a version-mismatched header invalidates the
 * whole file (it is rewritten on the next insert), and a truncated or
 * corrupt record -- including silent bit rot inside a value field,
 * caught by a per-record checksum -- is skipped, so a damaged cache
 * can only cause misses, never wrong results.  macUtilization
 * round-trips through its raw bit pattern so persisted results stay
 * bit-for-bit identical to freshly simulated ones.
 */

#ifndef VEGETA_SIM_DISK_CACHE_HPP
#define VEGETA_SIM_DISK_CACHE_HPP

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/result.hpp"

namespace vegeta::sim {

/** Traffic and load-time health counters of a DiskResultCache. */
struct DiskCacheStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 insertions = 0; ///< records appended by this process
    u64 loaded = 0;     ///< valid records read from disk on open
    u64 rejected = 0;   ///< corrupt/truncated records skipped on open
    bool versionMismatch = false; ///< whole file ignored on open
};

/**
 * Thread-safe persistent map from canonical request keys to
 * SimulationResults, backed by `<directory>/results.vgc`.  The file
 * is read once on construction and appended to on insert, so two
 * sequential Sessions pointed at the same directory share results
 * across processes.  First insert wins, matching ResultCache.
 */
class DiskResultCache
{
  public:
    /**
     * Open (creating the directory and file as needed) the cache
     * under @p directory.  Check ok() before relying on persistence;
     * a cache that failed to open still works as an in-memory map.
     */
    explicit DiskResultCache(const std::string &directory);

    /** False when the directory/file could not be created or read. */
    bool ok() const { return ok_; }

    const std::string &directory() const { return directory_; }

    /** Full path of the backing file. */
    const std::string &filePath() const { return file_; }

    /** The cached result for key, or nullopt (counts a hit/miss). */
    std::optional<SimulationResult> find(const std::string &key) const;

    /** Persist a result under key (first insert wins, flushed). */
    void insert(const std::string &key,
                const SimulationResult &result);

    std::size_t size() const;

    /** Drop every entry and truncate the backing file. */
    void clear();

    DiskCacheStats stats() const;

    /** The on-disk format version tag this build reads and writes. */
    static const char *formatHeader();

  private:
    void load();
    bool rewriteLocked();
    bool appendLocked(const std::string &key,
                      const SimulationResult &result);

    std::string directory_;
    std::string file_;
    bool ok_ = false;
    bool needs_rewrite_ = false;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, SimulationResult> entries_;
    mutable u64 hits_ = 0;
    mutable u64 misses_ = 0;
    u64 insertions_ = 0;
    u64 loaded_ = 0;
    u64 rejected_ = 0;
    bool version_mismatch_ = false;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_DISK_CACHE_HPP
