/**
 * @file
 * Polymorphic jobs: one description type for both halves of the
 * evaluation.
 *
 * The facade used to expose two parallel entry paths -- a
 * SimulationRequest for trace replay and an AnalyticalRequest for the
 * closed-form models -- so sweeps, caching, and dedupe only covered
 * the first.  A Job is the tagged union of the two: a batch can mix
 * trace simulations and analytical queries freely and
 * Session::runBatch treats them uniformly (keyed dedupe, thread pool,
 * deterministic output order).
 *
 * JobBuilder subsumes RequestBuilder validation: every name is
 * checked against the session's registries, errors are collected
 * first-wins, and build() only returns a Job that the Session is
 * guaranteed to run.
 */

#ifndef VEGETA_SIM_JOB_HPP
#define VEGETA_SIM_JOB_HPP

#include "sim/analytical.hpp"
#include "sim/cache.hpp"
#include "sim/request.hpp"
#include "sim/result.hpp"

namespace vegeta::sim {

/** What a Job asks the Session to do. */
enum class JobKind
{
    Simulation, ///< generate + replay a kernel trace (cycle model)
    Analysis,   ///< evaluate a registered analytical model
};

const char *jobKindName(JobKind kind);

/** One unit of Session work: a trace simulation OR an analysis. */
struct Job
{
    JobKind kind = JobKind::Simulation;

    /** Valid when kind == Simulation. */
    SimulationRequest simulation;

    /** Valid when kind == Analysis. */
    AnalyticalRequest analysis;

    static Job simulate(SimulationRequest request);
    static Job analyze(AnalyticalRequest request);
};

/**
 * Canonical serialization of an analytical request: model, workload
 * and engine lists, and every parameter/option, in a fixed order with
 * full double precision.  Version-prefixed like cacheKey.
 */
std::string analyticalKey(const AnalyticalRequest &request);

/**
 * Canonical key of a job, kind-prefixed so a simulation and an
 * analysis can never collide.  Simulation jobs reuse cacheKey, so a
 * Job keyed for batch dedupe and a request keyed for the result
 * caches agree about what "the same work" means.
 */
std::string jobKey(const Job &job);

/** The result of one Job, tagged like the job that produced it. */
struct JobResult
{
    JobKind kind = JobKind::Simulation;

    /** Valid when kind == Simulation. */
    SimulationResult simulation;

    /** Valid when kind == Analysis. */
    AnalyticalResult analysis;
};

/**
 * Fluent, validating builder for both job kinds.  Calling model()
 * makes the job analytical; otherwise build() produces a simulation
 * job under exactly the old RequestBuilder rules.  Name lookups fail
 * eagerly (first error wins); cross-kind constraints (a pattern on an
 * analytical job, a param on a simulation job) are checked at
 * build().
 *
 *   auto job = session.job()
 *                  .workload("BERT-L1")
 *                  .engine("VEGETA-S-16-2")
 *                  .pattern(2)
 *                  .build();              // simulation job
 *
 *   auto study = session.job()
 *                    .model("fig15-unstructured")
 *                    .workload("BERT-L1")
 *                    .param("degree", 0.95)
 *                    .build();            // analysis job
 */
class JobBuilder
{
  public:
    JobBuilder(const EngineRegistry &engines,
               const WorkloadRegistry &workloads,
               const AnalyticalRegistry &analytics);

    /** Target workload (repeatable for analysis jobs). */
    JobBuilder &workload(const std::string &name);

    /** Explicit GEMM dimensions (simulation jobs only). */
    JobBuilder &gemm(const kernels::GemmDims &dims);

    /** A "MxNxK" spec string (simulation jobs only). */
    JobBuilder &gemm(const std::string &spec);

    /** Engine design point (repeatable for analysis jobs). */
    JobBuilder &engine(const std::string &name);

    // --- Simulation-only knobs ---------------------------------------
    JobBuilder &pattern(u32 layer_n);
    JobBuilder &outputForwarding(bool enabled);
    JobBuilder &kernel(KernelVariant variant);
    JobBuilder &cBlocking(u32 c_tiles);
    JobBuilder &core(const cpu::CoreConfig &config);

    // --- Analysis-only knobs -----------------------------------------
    /** Select a registered analytical model (makes the job one). */
    JobBuilder &model(const std::string &name);
    JobBuilder &param(const std::string &name, double value);
    JobBuilder &option(const std::string &name, std::string value);

    /** The job, or nullopt if any setter failed validation. */
    std::optional<Job> build();

    /** First validation error ("" while the builder is clean). */
    const std::string &error() const { return error_; }

  private:
    void fail(const std::string &message);

    const EngineRegistry &engines_;
    const WorkloadRegistry &workloads_;
    const AnalyticalRegistry &analytics_;

    std::vector<std::string> workload_names_;
    std::vector<std::string> engine_names_;
    std::optional<kernels::GemmDims> gemm_;

    std::string model_;
    std::map<std::string, double> params_;
    std::map<std::string, std::string> options_;

    u32 pattern_ = 4;
    bool output_forwarding_ = false;
    KernelVariant kernel_ = KernelVariant::Optimized;
    u32 c_blocking_ = 3;
    cpu::CoreConfig core_;
    bool have_sim_knob_ = false; ///< any simulation-only setter used

    std::string error_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_JOB_HPP
