#include "sim/telemetry.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <ostream>
#include <unordered_map>

#include "common/logging.hpp"

namespace vegeta::telemetry {

namespace {

/** JSON string escape for metric/span names (control chars, \, "). */
std::string
jsonEscapeName(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace

u64
nowNs()
{
    // One anchor per process: trace timestamps and timer samples all
    // share it, so spans from different threads line up.
    static const auto anchor = std::chrono::steady_clock::now();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - anchor)
            .count());
}

const MetricRecord *
MetricsSnapshot::find(const std::string &name) const
{
    for (const auto &record : metrics)
        if (record.name == name)
            return &record;
    return nullptr;
}

u64
MetricsSnapshot::counter(const std::string &name) const
{
    const MetricRecord *record = find(name);
    return record ? record->count : 0;
}

#ifndef VEGETA_NO_TELEMETRY

namespace {

/** Registered-name ceiling; ids are asserted below it. */
constexpr u32 kMaxMetrics = 512;

/** Per-process ceiling on recorded spans (overflow is dropped). */
constexpr u64 kMaxTraceEvents = 1u << 20;

/** Sentinel for a timer that has no samples yet. */
constexpr u64 kNoMin = std::numeric_limits<u64>::max();

/**
 * One thread's private metric storage.  The owning thread is the
 * only writer (plain load+store on relaxed atomics); snapshot()
 * reads the atomics from other threads without tearing.
 */
struct Slab
{
    std::array<std::atomic<u64>, kMaxMetrics> counts{};
    std::array<std::atomic<u64>, kMaxMetrics> sums{};
    std::array<std::atomic<u64>, kMaxMetrics> mins{};
    std::array<std::atomic<u64>, kMaxMetrics> maxs{};

    Slab()
    {
        for (auto &m : mins)
            m.store(kNoMin, std::memory_order_relaxed);
    }
};

/** Retired totals: plain integers, only touched under the mutex. */
struct Totals
{
    std::array<u64, kMaxMetrics> counts{};
    std::array<u64, kMaxMetrics> sums{};
    std::array<u64, kMaxMetrics> mins{};
    std::array<u64, kMaxMetrics> maxs{};

    Totals() { mins.fill(kNoMin); }
};

/** One recorded complete span. */
struct TraceEvent
{
    const char *name;
    u32 tid;
    u64 startNs;
    u64 durNs;
    u64 arg;
    bool hasArg;
};

/** One thread's span buffer. */
struct TraceBuffer
{
    u32 tid = 0;
    std::vector<TraceEvent> events;
};

/**
 * The process-wide registry.  The mutex guards the name table, the
 * slab/buffer lists, and the retired totals -- all cold paths; the
 * hot path touches only the calling thread's slab.
 */
struct Registry
{
    std::mutex mutex;
    std::vector<std::string> names;
    std::vector<MetricKind> kinds;
    std::unordered_map<std::string, MetricId> index;
    std::vector<Slab *> slabs;
    Totals retired;
    std::vector<TraceBuffer *> buffers;
    std::vector<TraceEvent> retiredEvents;
    u32 nextTid = 1;
    std::atomic<u64> eventCount{0};
    std::atomic<bool> traceOn{false};

    static Registry &instance()
    {
        // Leaked on purpose: thread-exit hooks may run after static
        // destructors, and a telemetry registry must outlive both.
        static Registry *registry = new Registry();
        return *registry;
    }

    MetricId intern(const char *name, MetricKind kind)
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = index.find(name);
        if (it != index.end())
            return it->second;
        VEGETA_ASSERT(names.size() < kMaxMetrics,
                      "telemetry metric table full (%u names)",
                      kMaxMetrics);
        const MetricId id = static_cast<MetricId>(names.size());
        names.emplace_back(name);
        kinds.push_back(kind);
        index.emplace(names.back(), id);
        return id;
    }
};

/**
 * Thread-local slab + span buffer, registered on first use and
 * folded into the retired totals when the thread exits (so a joined
 * worker's counts never vanish from later snapshots).
 */
struct ThreadState
{
    Slab *slab = nullptr;
    TraceBuffer *buffer = nullptr;

    ~ThreadState()
    {
        Registry &registry = Registry::instance();
        std::lock_guard<std::mutex> lock(registry.mutex);
        if (slab) {
            for (u32 id = 0; id < kMaxMetrics; ++id)
                foldSlabLocked(registry, *slab, id);
            registry.slabs.erase(
                std::remove(registry.slabs.begin(),
                            registry.slabs.end(), slab),
                registry.slabs.end());
            delete slab;
        }
        if (buffer) {
            registry.retiredEvents.insert(
                registry.retiredEvents.end(), buffer->events.begin(),
                buffer->events.end());
            registry.buffers.erase(
                std::remove(registry.buffers.begin(),
                            registry.buffers.end(), buffer),
                registry.buffers.end());
            delete buffer;
        }
    }

    static void foldSlabLocked(Registry &registry, const Slab &slab,
                               u32 id)
    {
        const u64 count =
            slab.counts[id].load(std::memory_order_relaxed);
        if (count == 0)
            return;
        Totals &totals = registry.retired;
        totals.counts[id] += count;
        totals.sums[id] +=
            slab.sums[id].load(std::memory_order_relaxed);
        totals.mins[id] = std::min(
            totals.mins[id],
            slab.mins[id].load(std::memory_order_relaxed));
        totals.maxs[id] = std::max(
            totals.maxs[id],
            slab.maxs[id].load(std::memory_order_relaxed));
    }
};

thread_local ThreadState tls;

Slab *
localSlab()
{
    if (!tls.slab) {
        tls.slab = new Slab();
        Registry &registry = Registry::instance();
        std::lock_guard<std::mutex> lock(registry.mutex);
        registry.slabs.push_back(tls.slab);
    }
    return tls.slab;
}

TraceBuffer *
localBuffer()
{
    if (!tls.buffer) {
        tls.buffer = new TraceBuffer();
        Registry &registry = Registry::instance();
        std::lock_guard<std::mutex> lock(registry.mutex);
        tls.buffer->tid = registry.nextTid++;
        registry.buffers.push_back(tls.buffer);
    }
    return tls.buffer;
}

/** Single-writer add: no lock prefix needed on the thread's slab. */
void
slabAdd(std::atomic<u64> &cell, u64 delta)
{
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
}

} // namespace

MetricId
counterId(const char *name)
{
    return Registry::instance().intern(name, MetricKind::Counter);
}

MetricId
timerId(const char *name)
{
    return Registry::instance().intern(name, MetricKind::Timer);
}

void
add(MetricId id, u64 delta)
{
    Slab *slab = localSlab();
    slabAdd(slab->counts[id], delta);
}

void
recordNs(MetricId id, u64 ns)
{
    Slab *slab = localSlab();
    slabAdd(slab->counts[id], 1);
    slabAdd(slab->sums[id], ns);
    if (ns < slab->mins[id].load(std::memory_order_relaxed))
        slab->mins[id].store(ns, std::memory_order_relaxed);
    if (ns > slab->maxs[id].load(std::memory_order_relaxed))
        slab->maxs[id].store(ns, std::memory_order_relaxed);
}

MetricsSnapshot
snapshot()
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> lock(registry.mutex);

    Totals merged = registry.retired;
    for (const Slab *slab : registry.slabs) {
        for (u32 id = 0; id < registry.names.size(); ++id) {
            const u64 count =
                slab->counts[id].load(std::memory_order_relaxed);
            if (count == 0)
                continue;
            merged.counts[id] += count;
            merged.sums[id] +=
                slab->sums[id].load(std::memory_order_relaxed);
            merged.mins[id] = std::min(
                merged.mins[id],
                slab->mins[id].load(std::memory_order_relaxed));
            merged.maxs[id] = std::max(
                merged.maxs[id],
                slab->maxs[id].load(std::memory_order_relaxed));
        }
    }

    MetricsSnapshot result;
    for (u32 id = 0; id < registry.names.size(); ++id) {
        if (merged.counts[id] == 0)
            continue;
        MetricRecord record;
        record.name = registry.names[id];
        record.kind = registry.kinds[id];
        record.count = merged.counts[id];
        record.sumNs = merged.sums[id];
        record.minNs =
            merged.mins[id] == kNoMin ? 0 : merged.mins[id];
        record.maxNs = merged.maxs[id];
        result.metrics.push_back(std::move(record));
    }
    std::sort(result.metrics.begin(), result.metrics.end(),
              [](const MetricRecord &a, const MetricRecord &b) {
                  return a.name < b.name;
              });
    return result;
}

void
absorb(const std::vector<MetricRecord> &records)
{
    Registry &registry = Registry::instance();
    for (const MetricRecord &record : records) {
        const MetricId id =
            registry.intern(record.name.c_str(), record.kind);
        std::lock_guard<std::mutex> lock(registry.mutex);
        Totals &totals = registry.retired;
        totals.counts[id] += record.count;
        totals.sums[id] += record.sumNs;
        if (record.count > 0) {
            totals.mins[id] =
                std::min(totals.mins[id], record.minNs);
            totals.maxs[id] =
                std::max(totals.maxs[id], record.maxNs);
        }
    }
}

void
resetMetrics()
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.retired = Totals();
    for (Slab *slab : registry.slabs) {
        for (u32 id = 0; id < kMaxMetrics; ++id) {
            slab->counts[id].store(0, std::memory_order_relaxed);
            slab->sums[id].store(0, std::memory_order_relaxed);
            slab->mins[id].store(kNoMin, std::memory_order_relaxed);
            slab->maxs[id].store(0, std::memory_order_relaxed);
        }
    }
}

bool
traceEnabled()
{
    return Registry::instance().traceOn.load(
        std::memory_order_relaxed);
}

void
setTraceEnabled(bool enabled)
{
    Registry::instance().traceOn.store(enabled,
                                       std::memory_order_relaxed);
}

void
clearTrace()
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.retiredEvents.clear();
    for (TraceBuffer *buffer : registry.buffers)
        buffer->events.clear();
    registry.eventCount.store(0, std::memory_order_relaxed);
}

u64
traceSpanCount(const char *name)
{
    Registry &registry = Registry::instance();
    std::lock_guard<std::mutex> lock(registry.mutex);
    u64 count = 0;
    auto matches = [&](const TraceEvent &event) {
        return !name || std::strcmp(event.name, name) == 0;
    };
    for (const TraceEvent &event : registry.retiredEvents)
        if (matches(event))
            ++count;
    for (const TraceBuffer *buffer : registry.buffers)
        for (const TraceEvent &event : buffer->events)
            if (matches(event))
                ++count;
    return count;
}

Span::Span(const char *name)
{
    if (!traceEnabled())
        return;
    name_ = name;
    startNs_ = nowNs();
    armed_ = true;
}

Span::Span(const char *name, u64 arg) : Span(name)
{
    arg_ = arg;
    hasArg_ = true;
}

Span::~Span()
{
    close();
}

void
Span::close()
{
    if (!armed_)
        return;
    armed_ = false;
    Registry &registry = Registry::instance();
    if (registry.eventCount.fetch_add(
            1, std::memory_order_relaxed) >= kMaxTraceEvents)
        return;
    TraceBuffer *buffer = localBuffer();
    buffer->events.push_back(TraceEvent{
        name_, buffer->tid, startNs_, nowNs() - startNs_, arg_,
        hasArg_});
}

#endif // VEGETA_NO_TELEMETRY

void
writeMetricsJson(std::ostream &os, const MetricsSnapshot &snapshot)
{
    os << "{\n  \"metrics\": [";
    for (std::size_t i = 0; i < snapshot.metrics.size(); ++i) {
        const MetricRecord &m = snapshot.metrics[i];
        os << (i ? ",\n    " : "\n    ");
        os << "{\"name\": \"" << jsonEscapeName(m.name) << "\", ";
        if (m.kind == MetricKind::Counter) {
            os << "\"kind\": \"counter\", \"value\": " << m.count;
        } else {
            os << "\"kind\": \"timer\", \"count\": " << m.count
               << ", \"sum_ns\": " << m.sumNs
               << ", \"min_ns\": " << m.minNs
               << ", \"max_ns\": " << m.maxNs;
        }
        os << "}";
    }
    os << (snapshot.metrics.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

bool
writeMetricsFile(const std::string &path)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    writeMetricsJson(os, snapshot());
    os.flush();
    return static_cast<bool>(os);
}

void
writeTraceJson(std::ostream &os)
{
#ifndef VEGETA_NO_TELEMETRY
    Registry &registry = Registry::instance();
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(registry.mutex);
        events = registry.retiredEvents;
        for (const TraceBuffer *buffer : registry.buffers)
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.startNs < b.startNs;
              });

    const long pid = static_cast<long>(::getpid());
    os << "{\"traceEvents\": [";
    char buf[64];
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &event = events[i];
        os << (i ? ",\n" : "\n");
        os << "{\"name\": \"" << jsonEscapeName(event.name)
           << "\", \"ph\": \"X\", \"pid\": " << pid
           << ", \"tid\": " << event.tid;
        std::snprintf(buf, sizeof(buf), "%.3f",
                      double(event.startNs) / 1e3);
        os << ", \"ts\": " << buf;
        std::snprintf(buf, sizeof(buf), "%.3f",
                      double(event.durNs) / 1e3);
        os << ", \"dur\": " << buf;
        if (event.hasArg)
            os << ", \"args\": {\"n\": " << event.arg << "}";
        os << "}";
    }
    os << (events.empty() ? "]}\n" : "\n]}\n");
#else
    os << "{\"traceEvents\": []}\n";
#endif
}

bool
writeTraceFile(const std::string &path)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        return false;
    writeTraceJson(os);
    os.flush();
    return static_cast<bool>(os);
}

} // namespace vegeta::telemetry
