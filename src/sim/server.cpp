#include "sim/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/job_io.hpp"
#include "sim/session.hpp"
#include "sim/telemetry.hpp"
#include "sim/wire.hpp"

namespace vegeta::sim {

namespace {

/** A pre-forked persistent worker and its feeding pipes. */
struct ServiceWorker
{
    pid_t pid = -1;
    int inFd = -1;  ///< parent writes batches here
    int outFd = -1; ///< parent reads results here
};

/** One queued batch plus when it entered the queue. */
struct PendingBatch
{
    std::vector<Job> jobs;
    u64 enqueuedNs = 0;
};

/** One connected client. */
struct ClientConn
{
    int fd = -1;
    std::thread reader;
    std::mutex writeMutex; ///< reader (errors) vs dispatcher (results)
    std::deque<PendingBatch> queue; ///< guarded by Impl::mutex
    bool done = false; ///< reader exited; guarded by Impl::mutex
};

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

/** Bounded sample ring for stats percentiles (keeps the newest). */
constexpr std::size_t kLatencyRingCap = 512;

void
pushRing(std::vector<u64> &ring, u64 &next, u64 value)
{
    if (ring.size() < kLatencyRingCap)
        ring.push_back(value);
    else
        ring[next % kLatencyRingCap] = value;
    ++next;
}

/** The p-quantile of the ring's samples, in milliseconds. */
double
ringPercentileMs(const std::vector<u64> &ring, double p)
{
    if (ring.empty())
        return 0.0;
    std::vector<u64> sorted = ring;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        p * double(sorted.size() - 1) + 0.5);
    return double(sorted[idx]) / 1e6;
}

/** A named counter's value inside one metric snapshot (0 absent). */
u64
snapshotCounter(const std::vector<telemetry::MetricRecord> &records,
                const char *name)
{
    for (const auto &record : records)
        if (record.name == name)
            return record.count;
    return 0;
}

/** A snapshot counter summed over per-worker metric snapshots. */
u64
sumWorkerCounter(
    const std::vector<std::vector<telemetry::MetricRecord>> &workers,
    const char *name)
{
    u64 total = 0;
    for (const auto &records : workers)
        total += snapshotCounter(records, name);
    return total;
}

} // namespace

struct SimServer::Impl
{
    explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

    ServerOptions options;

    Session session; ///< warm across every request (in-process mode)

    int listenFd = -1;
    u32 boundPort = 0;
    std::string boundAddress;
    /** True once WE bound the unix socket path: only then may stop()
     *  unlink it (a failed start must not delete a live server's
     *  socket file). */
    bool ownsSocketFile = false;
    int wakePipe[2] = {-1, -1}; ///< unblocks the accept poll on stop

    std::vector<ServiceWorker> workers;
    u32 workerThreads = 0;

    std::thread acceptThread;
    std::thread dispatchThread;

    mutable std::mutex mutex;
    std::condition_variable workCv;  ///< dispatcher: work arrived
    std::condition_variable spaceCv; ///< readers: queue slot freed
    std::vector<std::shared_ptr<ClientConn>> conns;
    std::size_t rrCursor = 0; ///< round-robin scan position
    bool stopping = false;
    bool started = false;

    ServerStats statsData; ///< guarded by mutex

    // --- live-stats state (all guarded by mutex) ---
    u64 startNs = 0; ///< telemetry::nowNs() at start()
    std::vector<u64> dispatchRing; ///< recent batch execute ns
    u64 dispatchNext = 0;
    std::vector<u64> waitRing; ///< recent batch queue-wait ns
    u64 waitNext = 0;
    /** Trailing (completionNs, jobs) pairs for the recent rate. */
    std::deque<std::pair<u64, u64>> recentBatches;
    /** Latest cumulative metric snapshot per service worker. */
    std::vector<std::vector<telemetry::MetricRecord>> workerMetrics;
    /** Unique jobs each service worker has answered. */
    std::vector<u64> workerJobs;

    bool start(std::string *error);
    void stop();

    /** The live stats document a `stats` frame answers with. */
    std::string statsJson();

    void acceptLoop();
    void readerLoop(std::shared_ptr<ClientConn> conn);
    void dispatchLoop();

    bool forkWorkers(std::string *error);
    bool bindSocket(std::string *error);

    struct ExecOutcome
    {
        bool ok = false;
        std::string error;
        WorkerOutput output;
    };
    ExecOutcome executeBatch(const std::vector<Job> &jobs);

    void sendError(ClientConn &conn, const std::string &message);
};

// --- lifecycle --------------------------------------------------------

SimServer::SimServer(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options)))
{
}

SimServer::~SimServer()
{
    stop();
}

bool
SimServer::start(std::string *error)
{
    return impl_->start(error);
}

void
SimServer::stop()
{
    impl_->stop();
}

bool
SimServer::running() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->started && !impl_->stopping;
}

std::string
SimServer::address() const
{
    return impl_->boundAddress;
}

u32
SimServer::port() const
{
    return impl_->boundPort;
}

ServerStats
SimServer::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    return impl_->statsData;
}

bool
SimServer::Impl::start(std::string *error)
{
    auto fail = [&](const std::string &reason) {
        if (error)
            *error = reason;
        return false;
    };
    if (started)
        return fail("server already started");
    if (options.queueDepth == 0)
        return fail("queue depth must be at least 1");
    if (!options.socketPath.empty() && options.useTcp)
        return fail("choose a unix socket OR tcp, not both");

    // Writes to dead clients/workers must be errors, not process
    // death; sockets use MSG_NOSIGNAL but the worker pipes cannot.
    ::signal(SIGPIPE, SIG_IGN);

    // Fork the persistent workers FIRST: this process has no threads
    // yet, so the children are plain single-threaded copies.
    if (!forkWorkers(error))
        return false;

    if (!bindSocket(error)) {
        stop();
        return false;
    }

    if (::pipe(wakePipe) != 0) {
        stop();
        return fail("cannot create wake pipe");
    }

    // In-process execution wants warm caches; worker mode only uses
    // this session to validate batches (workers own their caches).
    if (options.serviceWorkers == 0) {
        session.enableCache();
        if (!options.cacheDir.empty()) {
            const auto disk = session.attachDiskCache(options.cacheDir);
            if (!disk->ok()) {
                stop();
                return fail("cannot open cache dir: " +
                            options.cacheDir);
            }
        }
    }

    startNs = telemetry::nowNs();
    workerMetrics.assign(workers.size(), {});
    workerJobs.assign(workers.size(), 0);

    started = true;
    stopping = false;
    acceptThread = std::thread([this]() { acceptLoop(); });
    dispatchThread = std::thread([this]() { dispatchLoop(); });
    return true;
}

bool
SimServer::Impl::forkWorkers(std::string *error)
{
    for (u32 w = 0; w < options.serviceWorkers; ++w) {
        int to_child[2], to_parent[2];
        if (::pipe(to_child) != 0)
            goto pipe_error;
        if (::pipe(to_parent) != 0) {
            ::close(to_child[0]);
            ::close(to_child[1]);
            goto pipe_error;
        }
        {
            const pid_t pid = ::fork();
            if (pid < 0) {
                ::close(to_child[0]);
                ::close(to_child[1]);
                ::close(to_parent[0]);
                ::close(to_parent[1]);
                if (error)
                    *error = "cannot fork service worker";
                return false;
            }
            if (pid == 0) {
                // Child: keep only this worker's two pipe ends.
                ::close(to_child[1]);
                ::close(to_parent[0]);
                for (const auto &other : workers) {
                    ::close(other.inFd);
                    ::close(other.outFd);
                }
                u32 threads = options.threads;
                if (threads == 0) {
                    const unsigned hw =
                        std::thread::hardware_concurrency();
                    threads = std::max(
                        1u, static_cast<u32>(hw) /
                                options.serviceWorkers);
                }
                ::_exit(serviceWorkerLoop(to_child[0], to_parent[1],
                                          options.cacheDir, threads));
            }
            ::close(to_child[0]);
            ::close(to_parent[1]);
            workers.push_back({pid, to_child[1], to_parent[0]});
        }
        continue;
    pipe_error:
        if (error)
            *error = "cannot create service worker pipes";
        return false;
    }
    return true;
}

bool
SimServer::Impl::bindSocket(std::string *error)
{
    auto fail = [&](const std::string &reason) {
        if (error)
            *error = reason;
        return false;
    };

    if (!options.socketPath.empty()) {
        if (options.socketPath.size() >= sizeof(sockaddr_un{}.sun_path))
            return fail("socket path too long: " + options.socketPath);
        listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("cannot create unix socket");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, options.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            if (errno != EADDRINUSE)
                return fail("cannot bind " + options.socketPath +
                            ": " + std::strerror(errno));
            // A stale socket file from a dead server binds again
            // after an unlink; a LIVE server answers a probe connect
            // and is an error.
            const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            const bool live =
                probe >= 0 &&
                ::connect(probe,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof(addr)) == 0;
            if (probe >= 0)
                ::close(probe);
            if (live)
                return fail("a server is already listening on " +
                            options.socketPath);
            ::unlink(options.socketPath.c_str());
            if (::bind(listenFd,
                       reinterpret_cast<const sockaddr *>(&addr),
                       sizeof(addr)) != 0)
                return fail("cannot bind " + options.socketPath +
                            ": " + std::strerror(errno));
        }
        ownsSocketFile = true;
        boundAddress = "unix:" + options.socketPath;
    } else {
        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd < 0)
            return fail("cannot create tcp socket");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<unsigned short>(options.port));
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::bind(listenFd,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            return fail("cannot bind 127.0.0.1:" +
                        std::to_string(options.port) + ": " +
                        std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(listenFd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort = ntohs(bound.sin_port);
        boundAddress =
            "tcp:127.0.0.1:" + std::to_string(boundPort);
    }
    if (::listen(listenFd, 64) != 0)
        return fail("cannot listen on " + boundAddress);
    return true;
}

void
SimServer::Impl::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping && !started)
            return;
        stopping = true;
    }
    workCv.notify_all();
    spaceCv.notify_all();
    if (wakePipe[1] >= 0) {
        const char byte = 'x';
        [[maybe_unused]] const ssize_t n =
            ::write(wakePipe[1], &byte, 1);
    }
    if (acceptThread.joinable())
        acceptThread.join();
    closeFd(listenFd);
    if (ownsSocketFile) {
        ::unlink(options.socketPath.c_str());
        ownsSocketFile = false;
    }

    // Wake readers blocked in readFrame, then wait for everything
    // in flight; only then is it safe to close the descriptors.
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto &conn : conns)
            if (conn->fd >= 0)
                ::shutdown(conn->fd, SHUT_RDWR);
    }
    if (dispatchThread.joinable())
        dispatchThread.join();
    std::vector<std::shared_ptr<ClientConn>> drained;
    {
        std::lock_guard<std::mutex> lock(mutex);
        drained.swap(conns);
    }
    for (const auto &conn : drained) {
        if (conn->reader.joinable())
            conn->reader.join();
        closeFd(conn->fd);
    }

    // EOF on the feed pipe is a worker's shutdown signal; reap every
    // child so no zombie or orphan outlives the server.
    for (auto &worker : workers) {
        closeFd(worker.inFd);
        closeFd(worker.outFd);
    }
    for (auto &worker : workers) {
        if (worker.pid > 0) {
            int status = 0;
            ::waitpid(worker.pid, &status, 0);
            worker.pid = -1;
        }
    }
    workers.clear();
    closeFd(wakePipe[0]);
    closeFd(wakePipe[1]);
    {
        std::lock_guard<std::mutex> lock(mutex);
        started = false;
    }
}

// --- accept / read / dispatch ----------------------------------------

void
SimServer::Impl::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{listenFd, POLLIN, 0},
                         {wakePipe[0], POLLIN, 0}};
        const int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (stopping)
                return;
        }
        if (!(fds[0].revents & POLLIN))
            continue;
        const int client = ::accept(listenFd, nullptr, nullptr);
        if (client < 0)
            continue;
        auto conn = std::make_shared<ClientConn>();
        conn->fd = client;
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (stopping) {
                ::close(client);
                return;
            }
            ++statsData.connections;
            conns.push_back(conn);
        }
        conn->reader =
            std::thread([this, conn]() { readerLoop(conn); });
    }
}

void
SimServer::Impl::sendError(ClientConn &conn,
                           const std::string &message)
{
    std::lock_guard<std::mutex> lock(conn.writeMutex);
    std::string ignored;
    wire::writeFrame(conn.fd, wire::FrameType::Error, message,
                     &ignored);
}

void
SimServer::Impl::readerLoop(std::shared_ptr<ClientConn> conn)
{
    auto finish = [&]() {
        std::lock_guard<std::mutex> lock(mutex);
        conn->done = true;
        workCv.notify_all(); // let the dispatcher reap
    };
    auto protocolError = [&](const std::string &message) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            ++statsData.protocolErrors;
        }
        sendError(*conn, message);
        finish();
    };

    // Handshake: both sides must speak the same wire revision AND
    // record formats before any batch crosses the connection.
    wire::Frame hello;
    std::string error;
    if (!wire::readFrame(conn->fd, &hello, options.clientTimeoutMs,
                         &error)) {
        protocolError("handshake failed: " + error);
        return;
    }
    if (hello.type != wire::FrameType::Hello ||
        hello.payload != wire::helloPayload()) {
        std::string got = hello.payload.substr(0, 120);
        protocolError("wire version mismatch: server speaks '" +
                      wire::helloPayload() + "', client sent '" + got +
                      "'");
        return;
    }
    {
        std::lock_guard<std::mutex> lock(conn->writeMutex);
        if (!wire::writeFrame(conn->fd, wire::FrameType::HelloAck,
                              wire::helloPayload(), &error)) {
            finish();
            return;
        }
    }

    for (;;) {
        wire::Frame frame;
        bool clean_eof = false;
        if (!wire::readFrame(conn->fd, &frame, -1, &error,
                             &clean_eof)) {
            if (clean_eof)
                finish();
            else
                protocolError("bad frame: " + error);
            return;
        }
        if (frame.type == wire::FrameType::Bye) {
            finish();
            return;
        }
        if (frame.type == wire::FrameType::Stats) {
            // Answered inline by the reader (never queued), so a
            // stats probe sees the live state even while every
            // dispatch slot is busy.
            const std::string body = statsJson();
            std::lock_guard<std::mutex> lock(conn->writeMutex);
            if (!wire::writeFrame(conn->fd, wire::FrameType::Stats,
                                  body, &error)) {
                finish();
                return;
            }
            continue;
        }
        if (frame.type != wire::FrameType::Batch) {
            protocolError(std::string("unexpected frame: ") +
                          wire::frameTypeName(frame.type));
            return;
        }
        auto jobs = decodeJobBatch(frame.payload, &error);
        if (!jobs) {
            protocolError("corrupt batch: " + error);
            return;
        }
        for (std::size_t i = 0; i < jobs->size(); ++i) {
            if (const auto bad = session.jobError((*jobs)[i])) {
                sendError(*conn, "job " + std::to_string(i) + ": " +
                                     *bad);
                jobs.reset();
                break;
            }
        }
        if (!jobs)
            continue; // rejected batch; the connection stays usable

        // Bounded queue: when this client already has queueDepth
        // batches pending the reader parks here, which stops reading
        // its socket -- backpressure, not unbounded buffering.
        {
            std::unique_lock<std::mutex> lock(mutex);
            spaceCv.wait(lock, [&]() {
                return stopping ||
                       conn->queue.size() < options.queueDepth;
            });
            if (stopping) {
                conn->done = true;
                return;
            }
            statsData.jobs += jobs->size();
            conn->queue.push_back(
                PendingBatch{std::move(*jobs), telemetry::nowNs()});
        }
        workCv.notify_all();
    }
}

void
SimServer::Impl::dispatchLoop()
{
    static const telemetry::MetricId wait_timer =
        telemetry::timerId("service.queue.wait");
    static const telemetry::MetricId dispatch_timer =
        telemetry::timerId("service.dispatch");
    for (;;) {
        std::shared_ptr<ClientConn> conn;
        std::vector<Job> jobs;
        u64 enqueued_ns = 0;
        {
            std::unique_lock<std::mutex> lock(mutex);
            for (;;) {
                if (stopping)
                    return;
                // Reap connections whose reader is gone and whose
                // queue is drained (a daemon must not accumulate
                // dead clients).
                for (std::size_t i = 0; i < conns.size();) {
                    if (conns[i]->done && conns[i]->queue.empty()) {
                        if (conns[i]->reader.joinable())
                            conns[i]->reader.join();
                        closeFd(conns[i]->fd);
                        conns.erase(conns.begin() +
                                    static_cast<std::ptrdiff_t>(i));
                        if (rrCursor > i)
                            --rrCursor;
                    } else {
                        ++i;
                    }
                }
                // Round-robin: resume the scan one past the client
                // served last, so a client with a deep queue cannot
                // starve the others.
                if (!conns.empty()) {
                    for (std::size_t step = 0; step < conns.size();
                         ++step) {
                        const std::size_t i =
                            (rrCursor + step) % conns.size();
                        if (!conns[i]->queue.empty()) {
                            conn = conns[i];
                            jobs = std::move(
                                conns[i]->queue.front().jobs);
                            enqueued_ns =
                                conns[i]->queue.front().enqueuedNs;
                            conns[i]->queue.pop_front();
                            rrCursor = (i + 1) % conns.size();
                            break;
                        }
                    }
                }
                if (conn)
                    break;
                workCv.wait(lock);
            }
        }
        spaceCv.notify_all();

        const u64 dispatch_start = telemetry::nowNs();
        const u64 wait_ns = dispatch_start > enqueued_ns
                                ? dispatch_start - enqueued_ns
                                : 0;
        telemetry::recordNs(wait_timer, wait_ns);
        ExecOutcome outcome;
        {
            telemetry::Span dispatch_span("service.dispatch",
                                          jobs.size());
            outcome = executeBatch(jobs);
        }
        const u64 dispatch_ns =
            telemetry::nowNs() - dispatch_start;
        telemetry::recordNs(dispatch_timer, dispatch_ns);
        {
            std::lock_guard<std::mutex> lock(mutex);
            ++statsData.batches;
            statsData.simulationsPerformed +=
                outcome.output.simulationsPerformed;
            statsData.analysesPerformed +=
                outcome.output.analysesPerformed;
            pushRing(waitRing, waitNext, wait_ns);
            pushRing(dispatchRing, dispatchNext, dispatch_ns);
            const u64 now = telemetry::nowNs();
            recentBatches.emplace_back(now, jobs.size());
            while (!recentBatches.empty() &&
                   now - recentBatches.front().first >
                       10'000'000'000ull)
                recentBatches.pop_front();
        }
        std::string error;
        std::lock_guard<std::mutex> lock(conn->writeMutex);
        if (outcome.ok)
            wire::writeFrame(conn->fd, wire::FrameType::Results,
                             encodeWorkerOutput(outcome.output),
                             &error);
        else
            wire::writeFrame(conn->fd, wire::FrameType::Error,
                             outcome.error, &error);
        // A failed write means the client vanished; its reader will
        // notice the close and the connection gets reaped above.
    }
}

SimServer::Impl::ExecOutcome
SimServer::Impl::executeBatch(const std::vector<Job> &jobs)
{
    ExecOutcome outcome;

    // Dedupe by canonical key exactly like runBatch/ProcessPool: the
    // response carries one record per unique key (sorted, so worker
    // sharding is a pure function of the batch) and the client fans
    // results back out to its own job order.
    std::map<std::string, std::size_t> unique;
    for (std::size_t i = 0; i < jobs.size(); ++i)
        unique.emplace(jobKey(jobs[i]), i);

    if (workers.empty()) {
        const u64 sims0 = session.simulationsPerformed();
        const u64 anas0 = session.analysesPerformed();
        const auto results =
            session.runBatch(jobs, options.threads);
        outcome.output.simulationsPerformed =
            session.simulationsPerformed() - sims0;
        outcome.output.analysesPerformed =
            session.analysesPerformed() - anas0;
        outcome.output.results.reserve(unique.size());
        for (const auto &[key, index] : unique)
            outcome.output.results.emplace_back(key, results[index]);
        outcome.ok = true;
        return outcome;
    }

    // Persistent-worker mode: deal the sorted unique keys
    // round-robin over the pre-forked workers and feed each its
    // slice as ONE wire frame down its pipe -- no files, no forks.
    const u32 used = std::min<u32>(
        static_cast<u32>(workers.size()),
        static_cast<u32>(std::max<std::size_t>(1, unique.size())));
    std::vector<std::vector<Job>> slices(used);
    std::vector<std::vector<std::string>> slice_keys(used);
    {
        u32 next = 0;
        for (const auto &[key, index] : unique) {
            slices[next].push_back(jobs[index]);
            slice_keys[next].push_back(key);
            next = (next + 1) % used;
        }
    }
    std::string error;
    for (u32 w = 0; w < used; ++w) {
        if (!wire::writeFrame(workers[w].inFd,
                              wire::FrameType::Batch,
                              encodeJobBatch(slices[w]), &error)) {
            outcome.error =
                "service worker " + std::to_string(w) +
                " unreachable: " + error;
            return outcome;
        }
    }
    std::unordered_map<std::string, JobResult> by_key;
    by_key.reserve(unique.size());
    for (u32 w = 0; w < used; ++w) {
        wire::Frame frame;
        if (!wire::readFrame(workers[w].outFd, &frame, -1, &error)) {
            outcome.error = "service worker " + std::to_string(w) +
                            " died: " + error;
            return outcome;
        }
        if (frame.type == wire::FrameType::Error) {
            outcome.error = "service worker " + std::to_string(w) +
                            ": " + frame.payload;
            return outcome;
        }
        if (frame.type != wire::FrameType::Results) {
            outcome.error = "service worker " + std::to_string(w) +
                            ": unexpected frame";
            return outcome;
        }
        auto output = decodeWorkerOutput(frame.payload, &error);
        if (!output) {
            outcome.error = "service worker " + std::to_string(w) +
                            ": " + error;
            return outcome;
        }
        {
            // The worker ships its whole-process cumulative snapshot
            // on every results frame: REPLACE the latest copy (an
            // absorb per frame would double count).
            std::lock_guard<std::mutex> lock(mutex);
            if (w < workerMetrics.size()) {
                workerMetrics[w] = std::move(output->metrics);
                workerJobs[w] += output->results.size();
            }
        }
        outcome.output.simulationsPerformed +=
            output->simulationsPerformed;
        outcome.output.analysesPerformed +=
            output->analysesPerformed;
        for (auto &[key, result] : output->results)
            by_key.emplace(key, std::move(result));
        for (const auto &key : slice_keys[w]) {
            if (!by_key.count(key)) {
                outcome.error = "service worker " +
                                std::to_string(w) +
                                ": missing result";
                return outcome;
            }
        }
    }
    outcome.output.results.reserve(unique.size());
    for (const auto &[key, index] : unique) {
        (void)index;
        outcome.output.results.emplace_back(
            key, std::move(by_key.find(key)->second));
    }
    outcome.ok = true;
    return outcome;
}

std::string
SimServer::Impl::statsJson()
{
    // Process-local cache counters (in-process mode the server's own
    // session does the work; worker mode sums the latest per-worker
    // snapshots instead).
    const telemetry::MetricsSnapshot local = telemetry::snapshot();

    std::ostringstream os;
    os.setf(std::ios::fixed);
    std::lock_guard<std::mutex> lock(mutex);

    const u64 now = telemetry::nowNs();
    const double uptime_s =
        double(now > startNs ? now - startNs : 0) / 1e9;

    u64 cache_hits = 0, cache_misses = 0;
    if (workerMetrics.empty()) {
        cache_hits = local.counter("session.cache.hit.memory") +
                     local.counter("session.cache.hit.disk");
        cache_misses = local.counter("session.cache.miss");
    } else {
        cache_hits =
            sumWorkerCounter(workerMetrics,
                             "session.cache.hit.memory") +
            sumWorkerCounter(workerMetrics,
                             "session.cache.hit.disk");
        cache_misses =
            sumWorkerCounter(workerMetrics, "session.cache.miss");
    }
    const u64 cache_total = cache_hits + cache_misses;

    u64 recent_jobs = 0;
    for (const auto &[ns, count] : recentBatches) {
        (void)ns;
        recent_jobs += count;
    }
    const double recent_window_s =
        std::min(uptime_s > 0.0 ? uptime_s : 1.0, 10.0);

    os.precision(3);
    os << "{\n";
    os << "  \"uptime_s\": " << uptime_s << ",\n";
    os << "  \"connections\": {\"total\": " << statsData.connections
       << ", \"active\": " << conns.size()
       << ", \"queue_depths\": [";
    for (std::size_t i = 0; i < conns.size(); ++i)
        os << (i ? ", " : "") << conns[i]->queue.size();
    os << "]},\n";
    os << "  \"batches\": " << statsData.batches << ",\n";
    os << "  \"jobs\": " << statsData.jobs << ",\n";
    os << "  \"simulations\": " << statsData.simulationsPerformed
       << ",\n";
    os << "  \"analyses\": " << statsData.analysesPerformed << ",\n";
    os << "  \"protocol_errors\": " << statsData.protocolErrors
       << ",\n";
    os << "  \"jobs_per_s\": {\"lifetime\": "
       << (uptime_s > 0.0 ? double(statsData.jobs) / uptime_s : 0.0)
       << ", \"recent_10s\": "
       << double(recent_jobs) / recent_window_s << "},\n";
    os << "  \"latency_ms\": {\"dispatch\": {\"p50\": "
       << ringPercentileMs(dispatchRing, 0.5) << ", \"p99\": "
       << ringPercentileMs(dispatchRing, 0.99) << ", \"samples\": "
       << dispatchRing.size() << "}, \"queue_wait\": {\"p50\": "
       << ringPercentileMs(waitRing, 0.5) << ", \"p99\": "
       << ringPercentileMs(waitRing, 0.99) << ", \"samples\": "
       << waitRing.size() << "}},\n";
    os.precision(4);
    os << "  \"cache\": {\"hits\": " << cache_hits
       << ", \"misses\": " << cache_misses << ", \"hit_rate\": "
       << (cache_total > 0 ? double(cache_hits) / double(cache_total)
                           : 0.0)
       << "},\n";
    os << "  \"workers\": {\"count\": " << workerMetrics.size()
       << ", \"per_worker\": [";
    for (std::size_t w = 0; w < workerMetrics.size(); ++w) {
        const u64 w_hits =
            snapshotCounter(workerMetrics[w],
                            "session.cache.hit.memory") +
            snapshotCounter(workerMetrics[w],
                            "session.cache.hit.disk");
        const u64 w_misses = snapshotCounter(workerMetrics[w],
                                             "session.cache.miss");
        const u64 w_total = w_hits + w_misses;
        os << (w ? ", " : "") << "{\"jobs\": " << workerJobs[w]
           << ", \"cache_hits\": " << w_hits
           << ", \"cache_misses\": " << w_misses
           << ", \"cache_hit_rate\": "
           << (w_total > 0 ? double(w_hits) / double(w_total) : 0.0)
           << "}";
    }
    os << "]}\n";
    os << "}\n";
    return os.str();
}

// --- the persistent worker -------------------------------------------

int
serviceWorkerLoop(int in_fd, int out_fd, const std::string &cache_dir,
                  u32 threads)
{
    Session session;
    session.enableCache();
    if (!cache_dir.empty()) {
        const auto disk = session.attachDiskCache(cache_dir);
        if (!disk->ok()) {
            std::cerr << "service worker: cannot open cache dir: "
                      << cache_dir << "\n";
            return 4;
        }
    }

    for (;;) {
        wire::Frame frame;
        std::string error;
        bool clean_eof = false;
        if (!wire::readFrame(in_fd, &frame, -1, &error,
                             &clean_eof)) {
            if (clean_eof)
                return 0; // parent closed the feed: clean shutdown
            std::cerr << "service worker: " << error << "\n";
            return 3;
        }
        if (frame.type == wire::FrameType::Bye)
            return 0;
        if (frame.type != wire::FrameType::Batch) {
            std::cerr << "service worker: unexpected frame\n";
            return 3;
        }
        auto jobs = decodeJobBatch(frame.payload, &error);
        bool bad_job = false;
        if (jobs) {
            for (const auto &job : *jobs) {
                if (const auto reason = session.jobError(job)) {
                    error = "bad job: " + *reason;
                    bad_job = true;
                    break;
                }
            }
        }
        if (!jobs || bad_job) {
            // One frame in, one frame out: the pipe stays aligned
            // even for a rejected batch.
            if (!wire::writeFrame(out_fd, wire::FrameType::Error,
                                  error, &error))
                return 3;
            continue;
        }

        const u64 sims0 = session.simulationsPerformed();
        const u64 anas0 = session.analysesPerformed();
        const auto results = session.runBatch(*jobs, threads);

        WorkerOutput output;
        output.results.reserve(results.size());
        for (std::size_t i = 0; i < results.size(); ++i)
            output.results.emplace_back(jobKey((*jobs)[i]),
                                        results[i]);
        output.simulationsPerformed =
            session.simulationsPerformed() - sims0;
        output.analysesPerformed =
            session.analysesPerformed() - anas0;
        // Cumulative whole-process snapshot on EVERY frame: the
        // server keeps only the latest copy per worker, so this is
        // idempotent, never double counted.
        output.metrics = telemetry::snapshot().metrics;
        if (!wire::writeFrame(out_fd, wire::FrameType::Results,
                              encodeWorkerOutput(output), &error)) {
            std::cerr << "service worker: " << error << "\n";
            return 3;
        }
    }
}

// --- CLI entry --------------------------------------------------------

namespace {

volatile sig_atomic_t g_signal_seen = 0;
int g_signal_pipe_wr = -1;

void
onStopSignal(int sig)
{
    g_signal_seen = sig;
    if (g_signal_pipe_wr >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(g_signal_pipe_wr, &byte, 1);
    }
}

} // namespace

int
SimServer::serveMain(const ServerOptions &options)
{
    int signal_pipe[2];
    if (::pipe(signal_pipe) != 0) {
        std::cerr << "serve: cannot create signal pipe\n";
        return 2;
    }
    g_signal_pipe_wr = signal_pipe[1];
    g_signal_seen = 0;

    struct sigaction action = {};
    action.sa_handler = onStopSignal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    SimServer server(options);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "serve: " << error << "\n";
        ::close(signal_pipe[0]);
        ::close(signal_pipe[1]);
        g_signal_pipe_wr = -1;
        return 2;
    }
    std::cerr << "serve: listening on " << server.address()
              << " (service workers: " << options.serviceWorkers
              << ", cache: "
              << (options.cacheDir.empty() ? std::string("off")
                                           : options.cacheDir)
              << ")\n";

    // Sleep until SIGTERM/SIGINT; the self-pipe makes the wakeup
    // race-free even when the signal lands before the poll.
    for (;;) {
        pollfd pfd{signal_pipe[0], POLLIN, 0};
        const int rc = ::poll(&pfd, 1, -1);
        if (rc > 0 || (rc < 0 && errno != EINTR))
            break;
        if (g_signal_seen != 0)
            break;
    }

    const auto stats = server.stats();
    server.stop();
    std::cerr << "serve: shut down cleanly ("
              << stats.connections << " connections, "
              << stats.batches << " batches, " << stats.jobs
              << " jobs, " << stats.simulationsPerformed
              << " simulations performed)\n";
    ::close(signal_pipe[0]);
    ::close(signal_pipe[1]);
    g_signal_pipe_wr = -1;
    return 0;
}

} // namespace vegeta::sim
