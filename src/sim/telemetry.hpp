/**
 * @file
 * Process-wide telemetry: named metrics and span tracing.
 *
 * Two independent facilities share this header:
 *
 *  - A **metrics registry** of named monotonic counters and
 *    min/max/sum/count timers.  The hot path is lock-free and
 *    allocation-free: each thread owns a private slab of relaxed
 *    atomics (single writer, so increments are plain load+store),
 *    registered once under a mutex on first use and merged only when
 *    a snapshot is taken.  Metric ids are interned from string
 *    literals once per call site (`static` at the site), so steady
 *    state never touches the name table.
 *
 *  - **Span tracing**: RAII scopes that record wall-clock extents
 *    into per-thread buffers and serialize to Chrome `trace_event`
 *    JSON (load the file in chrome://tracing or ui.perfetto.dev).
 *    Recording is off by default; `setTraceEnabled(true)` arms it,
 *    and a disarmed Span costs one relaxed atomic load.
 *
 * Everything here observes and never steers: no simulation state ever
 * reads a telemetry value, so instrumented and uninstrumented runs
 * are bit-identical (pinned by the golden-cycle and service
 * byte-identity tests).  Under `VEGETA_NO_TELEMETRY` the recording
 * API compiles to no-ops; the snapshot/serialization types stay real
 * so persistent formats (sim/job_io result files) parse identically
 * in both builds.
 */

#ifndef VEGETA_SIM_TELEMETRY_HPP
#define VEGETA_SIM_TELEMETRY_HPP

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vegeta::telemetry {

/** What a named metric accumulates. */
enum class MetricKind : u8
{
    Counter, ///< monotonic count (count field; ns fields unused)
    Timer,   ///< duration samples: count, sum/min/max nanoseconds
};

/** One merged metric as read out of a snapshot. */
struct MetricRecord
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    u64 count = 0; ///< counter value, or timer sample count
    u64 sumNs = 0;
    u64 minNs = 0;
    u64 maxNs = 0;
};

/** A point-in-time merge of every slab, sorted by metric name. */
struct MetricsSnapshot
{
    std::vector<MetricRecord> metrics;

    /** The record for @p name, or nullptr when never recorded. */
    const MetricRecord *find(const std::string &name) const;

    /** A counter's value (0 when never recorded). */
    u64 counter(const std::string &name) const;
};

/** Opaque handle to a registered metric (intern once per site). */
using MetricId = u32;

/** Nanoseconds since the process-wide monotonic anchor. */
u64 nowNs();

#ifndef VEGETA_NO_TELEMETRY

/** Intern a counter name (cold; cache the id in a static). */
MetricId counterId(const char *name);

/** Intern a timer name (cold; cache the id in a static). */
MetricId timerId(const char *name);

/** Add @p delta to a counter (lock-free, allocation-free). */
void add(MetricId id, u64 delta);

/** Record one duration sample on a timer (lock-free). */
void recordNs(MetricId id, u64 ns);

/** Merge every live and retired slab into one sorted snapshot. */
MetricsSnapshot snapshot();

/**
 * Fold an external snapshot (a pool worker's result file, a remote
 * peer) into this process's totals: counters and timer counts/sums
 * add, timer min/max widen.  Unknown names are registered.
 */
void absorb(const std::vector<MetricRecord> &records);

/** Zero every metric (test/bench isolation; not thread-cheap). */
void resetMetrics();

/** Whether spans are currently being recorded. */
bool traceEnabled();

/** Arm or disarm span recording (events persist until clear). */
void setTraceEnabled(bool enabled);

/** Drop every recorded span. */
void clearTrace();

/** Recorded span count, optionally for one name only. */
u64 traceSpanCount(const char *name = nullptr);

/** RAII traced scope; records one complete event when armed. */
class Span
{
  public:
    explicit Span(const char *name);

    /** A span carrying one integer payload ("n" in the args). */
    Span(const char *name, u64 arg);

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span();

    /** End the span now instead of at scope exit (idempotent). */
    void close();

  private:
    const char *name_ = nullptr;
    u64 startNs_ = 0;
    u64 arg_ = 0;
    bool hasArg_ = false;
    bool armed_ = false;
};

/** RAII timer sample: records scope duration on destruction. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(MetricId id) : id_(id), startNs_(nowNs()) {}
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;
    ~ScopedTimer() { recordNs(id_, nowNs() - startNs_); }

  private:
    MetricId id_;
    u64 startNs_;
};

#else // VEGETA_NO_TELEMETRY: same API, all recording compiled out.

inline MetricId
counterId(const char *)
{
    return 0;
}

inline MetricId
timerId(const char *)
{
    return 0;
}

inline void
add(MetricId, u64)
{
}

inline void
recordNs(MetricId, u64)
{
}

inline MetricsSnapshot
snapshot()
{
    return {};
}

inline void
absorb(const std::vector<MetricRecord> &)
{
}

inline void
resetMetrics()
{
}

inline bool
traceEnabled()
{
    return false;
}

inline void
setTraceEnabled(bool)
{
}

inline void
clearTrace()
{
}

inline u64
traceSpanCount(const char * = nullptr)
{
    return 0;
}

class Span
{
  public:
    explicit Span(const char *) {}
    Span(const char *, u64) {}
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    // User-provided (non-trivial) so an unused named Span does not
    // trip -Wunused-variable in this configuration.
    ~Span() {}
    void close() {}
};

class ScopedTimer
{
  public:
    explicit ScopedTimer(MetricId) {}
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;
    ~ScopedTimer() {}
};

#endif // VEGETA_NO_TELEMETRY

/**
 * The snapshot as a metrics JSON document: `{"metrics": [{"name":
 * ..., "kind": "counter", "value": N} | {"kind": "timer", "count":
 * ..., "sum_ns": ..., "min_ns": ..., "max_ns": ...}]}`.
 */
void writeMetricsJson(std::ostream &os,
                      const MetricsSnapshot &snapshot);

/** writeMetricsJson of the live snapshot to a file (false = IO). */
bool writeMetricsFile(const std::string &path);

/**
 * Every recorded span as Chrome trace_event JSON (`{"traceEvents":
 * [...]}`, complete "X" events with microsecond timestamps) --
 * loadable in chrome://tracing and ui.perfetto.dev.
 */
void writeTraceJson(std::ostream &os);

/** writeTraceJson to a file (false when it cannot be written). */
bool writeTraceFile(const std::string &path);

} // namespace vegeta::telemetry

#endif // VEGETA_SIM_TELEMETRY_HPP
