#include "sim/pool.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <thread>
#include <unordered_map>

#include "sim/job_io.hpp"
#include "sim/session.hpp"
#include "sim/telemetry.hpp"

namespace vegeta::sim {

namespace {

namespace fs = std::filesystem;

struct Shard
{
    std::vector<Job> jobs;
    std::vector<std::string> keys;
    std::string jobFile;
    std::string resultFile;
    pid_t pid = -1;
};

/** mkdtemp under the system temp dir ("" on failure). */
std::string
freshWorkDir()
{
    std::error_code ec;
    fs::path base = fs::temp_directory_path(ec);
    if (ec)
        base = "/tmp";
    std::string pattern =
        (base / "vegeta-pool-XXXXXX").string();
    if (!mkdtemp(pattern.data()))
        return "";
    return pattern;
}

/** fork/exec one worker; returns the pid (or -1). */
pid_t
spawnWorker(const std::vector<std::string> &command)
{
    std::vector<char *> argv;
    argv.reserve(command.size() + 1);
    for (const auto &arg : command)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        execv(argv[0], argv.data());
        // exec failed: report on the inherited stderr and die with
        // the shell's "command not found" convention.
        std::cerr << "vegeta pool worker: cannot exec " << command[0]
                  << ": " << std::strerror(errno) << "\n";
        _exit(127);
    }
    return pid;
}

} // namespace

std::string
currentExecutablePath()
{
    char buf[4096];
    const ssize_t len = readlink("/proc/self/exe", buf,
                                 sizeof(buf) - 1);
    if (len <= 0)
        return "";
    buf[len] = '\0';
    return buf;
}

u32
defaultPoolCrossoverJobs()
{
    // Re-read off the committed BENCH_replay trajectory (entry
    // "pr7-lane-replay"): its pool_crossover_measured_jobs row is 0,
    // meaning the bench's probe over 2..16 unique jobs never found a
    // batch size where the process pool beat the in-process fallback
    // (fork/exec plus shard-file costs dominate every probed size),
    // and its pool_crossover_unique_jobs row records 128 as the
    // default that was in effect.  With no measured win below the
    // probe ceiling, the crossover stays at 128 -- the low-hundreds
    // scale where per-worker setup provably amortizes -- and is
    // conservative on purpose: the in-process fallback is never
    // slower on batches this size, and both paths are bit-identical.
    return 128;
}

ProcessPool::ProcessPool(PoolOptions options)
    : options_(std::move(options))
{
}

PoolRun
ProcessPool::run(const Session &session,
                 const std::vector<Job> &jobs) const
{
    PoolRun out;
    telemetry::Span run_span("pool.run", jobs.size());
    auto fail = [&](const std::string &reason) {
        out.ok = false;
        out.results.clear();
        out.error = reason;
        return out;
    };

    if (options_.workers == 0)
        return fail("pool needs at least one worker");

    out.results.resize(jobs.size());
    if (jobs.empty()) {
        out.ok = true;
        return out;
    }

    // Validate up front: a bad job is the caller's bug, not a worker
    // failure, and must be reported before any process spawns.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (const auto error = session.jobError(jobs[i]))
            return fail("job " + std::to_string(i) + ": " + *error);
    }

    // Dedupe by canonical key (first occurrence carries the job),
    // then shard the SORTED key set round-robin: the assignment is a
    // pure function of the batch contents, independent of argument
    // order, timing, or worker count.  Keys are serialized once per
    // job and reused by the merge below.
    std::vector<std::string> keys;
    keys.reserve(jobs.size());
    std::map<std::string, std::size_t> unique; // sorted by key
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        keys.push_back(jobKey(jobs[i]));
        unique.emplace(keys.back(), i);
    }
    out.stats.uniqueJobs = unique.size();

    // Batch-size planner: small batches skip the process pool
    // entirely.  A fresh builtin Session with the same caches the
    // workers would attach keeps the result (and the cache file)
    // bit-identical to the sharded path.
    const u32 min_pooled = options_.minPooledJobs == 0
                               ? defaultPoolCrossoverJobs()
                               : options_.minPooledJobs;
    if (unique.size() < min_pooled) {
        static const telemetry::MetricId fallback_id =
            telemetry::counterId("pool.fallback");
        telemetry::add(fallback_id, 1);
        Session local;
        local.enableCache();
        if (!options_.cacheDir.empty()) {
            const auto disk =
                local.attachDiskCache(options_.cacheDir);
            if (!disk->ok())
                return fail("cannot open cache dir: " +
                            options_.cacheDir);
        }
        out.results = local.runBatch(jobs, options_.threadsPerWorker,
                                     options_.laneWidth);
        out.stats.simulationsPerformed = local.simulationsPerformed();
        out.stats.analysesPerformed = local.analysesPerformed();
        out.stats.usedProcessPool = false;
        out.ok = true;
        return out;
    }

    const u32 workers = std::min<u32>(
        options_.workers, static_cast<u32>(unique.size()));

    std::vector<std::string> command = options_.workerCommand;
    if (command.empty()) {
        const std::string self = currentExecutablePath();
        if (self.empty())
            return fail("cannot resolve own executable for workers");
        command = {self, "worker"};
    }

    std::string work_dir = options_.workDir;
    bool own_work_dir = false;
    if (work_dir.empty()) {
        work_dir = freshWorkDir();
        own_work_dir = true;
        if (work_dir.empty())
            return fail("cannot create pool work directory");
    } else {
        std::error_code ec;
        fs::create_directories(work_dir, ec);
        if (ec || !fs::is_directory(work_dir))
            return fail("cannot create pool work directory: " +
                        work_dir);
    }
    // Deal the sorted keys round-robin into shards.
    std::vector<Shard> shards(workers);
    auto cleanup = [&]() {
        if (options_.keepFiles)
            return;
        std::error_code ec;
        if (own_work_dir) {
            fs::remove_all(work_dir, ec);
            return;
        }
        for (const auto &shard : shards) {
            fs::remove(shard.jobFile, ec);
            fs::remove(shard.resultFile, ec);
        }
    };
    {
        u32 next = 0;
        for (const auto &[key, index] : unique) {
            shards[next].keys.push_back(key);
            shards[next].jobs.push_back(jobs[index]);
            next = (next + 1) % workers;
        }
    }

    static const telemetry::MetricId shards_id =
        telemetry::counterId("pool.shards");
    telemetry::add(shards_id, workers);

    // Write every shard file before spawning anything: a write
    // failure must not leave half a pool running.
    {
        telemetry::Span write_span("pool.shard.write", workers);
        for (u32 w = 0; w < workers; ++w) {
            const fs::path base = fs::path(work_dir);
            shards[w].jobFile =
                (base / ("shard-" + std::to_string(w) + ".jobs"))
                    .string();
            shards[w].resultFile =
                (base / ("shard-" + std::to_string(w) + ".results"))
                    .string();
            if (!writeJobFile(shards[w].jobFile, shards[w].jobs)) {
                cleanup();
                return fail("cannot write shard file: " +
                            shards[w].jobFile);
            }
        }
    }

    // Default worker thread count divides the machine instead of
    // letting every worker claim all of it (N workers x hardware
    // threads would oversubscribe the CPU N-fold).
    u32 worker_threads = options_.threadsPerWorker;
    if (worker_threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        worker_threads = std::max(1u, static_cast<u32>(hw) / workers);
    }

    telemetry::Span spawn_span("pool.spawn", workers);
    for (u32 w = 0; w < workers; ++w) {
        std::vector<std::string> argv = command;
        argv.insert(argv.end(), {"--jobs", shards[w].jobFile, "--out",
                                 shards[w].resultFile});
        if (!options_.cacheDir.empty())
            argv.insert(argv.end(),
                        {"--cache-dir", options_.cacheDir});
        argv.insert(argv.end(),
                    {"--threads", std::to_string(worker_threads)});
        if (options_.laneWidth > 0)
            argv.insert(argv.end(),
                        {"--lanes",
                         std::to_string(options_.laneWidth)});
        shards[w].pid = spawnWorker(argv);
        if (shards[w].pid < 0) {
            // Reap whatever already started before reporting.
            for (u32 prev = 0; prev < w; ++prev) {
                int status = 0;
                waitpid(shards[prev].pid, &status, 0);
            }
            cleanup();
            return fail("cannot fork worker " + std::to_string(w));
        }
    }
    out.stats.workersSpawned = workers;
    spawn_span.close();

    // Collect every worker before judging any: no zombie is left
    // behind even when an early worker failed.  The wait span covers
    // the full worker lifetime as the parent sees it: every shard's
    // fork -> load -> replay -> encode happens inside it, and the
    // worker-side phase timers ride back in the shard files.
    telemetry::Span wait_span("pool.shard.wait", workers);
    std::string worker_error;
    for (u32 w = 0; w < workers; ++w) {
        int status = 0;
        if (waitpid(shards[w].pid, &status, 0) < 0) {
            if (worker_error.empty())
                worker_error =
                    "worker " + std::to_string(w) + ": wait failed";
            continue;
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            if (worker_error.empty())
                worker_error =
                    "worker " + std::to_string(w) +
                    " failed (exit status " +
                    std::to_string(WIFEXITED(status)
                                       ? WEXITSTATUS(status)
                                       : -1) +
                    ")";
        }
    }
    wait_span.close();
    if (!worker_error.empty()) {
        cleanup();
        return fail(worker_error);
    }

    // Merge: every shard key must come back exactly once; the output
    // vector is filled in original batch order through the dedupe
    // map, so the merge is bit-for-bit the single-process answer.
    telemetry::Span merge_span("pool.merge", workers);
    std::unordered_map<std::string, JobResult> by_key;
    by_key.reserve(unique.size());
    for (u32 w = 0; w < workers; ++w) {
        std::string error;
        auto output = readResultFile(shards[w].resultFile, &error);
        if (!output) {
            cleanup();
            return fail("worker " + std::to_string(w) + ": " + error);
        }
        out.stats.simulationsPerformed += output->simulationsPerformed;
        out.stats.analysesPerformed += output->analysesPerformed;
        // Fold each worker's cumulative snapshot into this process so
        // a post-run metrics report covers the whole pool.  Workers
        // are fresh processes, so one absorb per shard never double
        // counts.
        telemetry::absorb(output->metrics);
        for (auto &[key, result] : output->results) {
            if (!by_key.emplace(key, std::move(result)).second) {
                cleanup();
                return fail("worker " + std::to_string(w) +
                            ": duplicate result key");
            }
        }
        for (const auto &key : shards[w].keys) {
            if (!by_key.count(key)) {
                cleanup();
                return fail("worker " + std::to_string(w) +
                            ": missing result for a shard job");
            }
        }
    }
    cleanup();

    for (std::size_t i = 0; i < jobs.size(); ++i)
        out.results[i] = by_key.find(keys[i])->second;
    out.ok = true;
    return out;
}

int
poolWorkerMain(const std::vector<std::string> &args)
{
    std::string jobs_path, out_path, cache_dir;
    u32 threads = 0;
    u32 lanes = 0;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&]() -> const std::string * {
            if (i + 1 >= args.size()) {
                std::cerr << "pool worker: " << arg
                          << " needs a value\n";
                return nullptr;
            }
            return &args[++i];
        };
        if (arg == "--jobs") {
            const auto *v = value();
            if (!v)
                return 2;
            jobs_path = *v;
        } else if (arg == "--out") {
            const auto *v = value();
            if (!v)
                return 2;
            out_path = *v;
        } else if (arg == "--cache-dir") {
            const auto *v = value();
            if (!v)
                return 2;
            cache_dir = *v;
        } else if (arg == "--threads") {
            const auto *v = value();
            if (!v)
                return 2;
            const auto parsed = parseU32(*v);
            if (!parsed) {
                std::cerr << "pool worker: bad --threads value '"
                          << *v << "'\n";
                return 2;
            }
            threads = *parsed;
        } else if (arg == "--lanes") {
            const auto *v = value();
            if (!v)
                return 2;
            const auto parsed = parseU32(*v);
            if (!parsed || *parsed == 0) {
                std::cerr << "pool worker: bad --lanes value '" << *v
                          << "'\n";
                return 2;
            }
            lanes = *parsed;
        } else {
            std::cerr << "pool worker: unknown option " << arg << "\n";
            return 2;
        }
    }
    if (jobs_path.empty() || out_path.empty()) {
        std::cerr << "pool worker: --jobs and --out are required\n";
        return 2;
    }

    static const telemetry::MetricId load_timer =
        telemetry::timerId("worker.load");
    static const telemetry::MetricId replay_timer =
        telemetry::timerId("worker.replay");
    static const telemetry::MetricId encode_timer =
        telemetry::timerId("worker.encode");

    std::string error;
    const u64 load_start = telemetry::nowNs();
    const auto jobs = readJobFile(jobs_path, &error);
    if (!jobs) {
        std::cerr << "pool worker: " << error << "\n";
        return 3;
    }
    telemetry::recordNs(load_timer,
                        telemetry::nowNs() - load_start);

    Session session;
    session.enableCache();
    if (!cache_dir.empty()) {
        const auto disk = session.attachDiskCache(cache_dir);
        if (!disk->ok()) {
            std::cerr << "pool worker: cannot open cache dir: "
                      << cache_dir << "\n";
            return 4;
        }
    }
    for (const auto &job : *jobs) {
        if (const auto job_error = session.jobError(job)) {
            std::cerr << "pool worker: bad job: " << *job_error
                      << "\n";
            return 5;
        }
    }

    const u64 replay_start = telemetry::nowNs();
    const auto results = session.runBatch(*jobs, threads, lanes);
    telemetry::recordNs(replay_timer,
                        telemetry::nowNs() - replay_start);

    WorkerOutput output;
    output.results.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        output.results.emplace_back(jobKey((*jobs)[i]), results[i]);
    output.simulationsPerformed = session.simulationsPerformed();
    output.analysesPerformed = session.analysesPerformed();
#ifndef VEGETA_NO_TELEMETRY
    // Sample the encode cost on a dry run first, so the snapshot
    // shipped in the file covers every worker phase (load, replay,
    // encode); the real write below re-encodes with metrics attached.
    {
        const u64 encode_start = telemetry::nowNs();
        const std::string probe = encodeWorkerOutput(output);
        telemetry::recordNs(encode_timer,
                            telemetry::nowNs() - encode_start);
    }
    output.metrics = telemetry::snapshot().metrics;
#else
    (void)encode_timer;
#endif
    if (!writeResultFile(out_path, output)) {
        std::cerr << "pool worker: cannot write " << out_path << "\n";
        return 6;
    }
    return 0;
}

} // namespace vegeta::sim
