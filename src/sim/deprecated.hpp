/**
 * @file
 * The single compile-time deprecation path for facade shims.
 *
 * Every deprecated spelling (sim/simulator.hpp's `Simulator`,
 * sim/sweep.hpp's `SweepRunner`) announces itself through the one
 * macro below, so "how do shims warn" has exactly one answer and one
 * off switch: define VEGETA_SIM_SILENCE_DEPRECATION before including
 * a shim header (or with -D) to silence the notes, e.g. in the tests
 * that deliberately pin shim behavior.
 */

#ifndef VEGETA_SIM_DEPRECATED_HPP
#define VEGETA_SIM_DEPRECATED_HPP

#if defined(VEGETA_SIM_SILENCE_DEPRECATION)
#define VEGETA_SIM_DEPRECATION_NOTE(message_text)
#else
#define VEGETA_SIM_STRINGIFY_IMPL_(x) #x
#define VEGETA_SIM_DEPRECATION_NOTE(message_text)                      \
    _Pragma(VEGETA_SIM_STRINGIFY_IMPL_(message(message_text)))
#endif

#endif // VEGETA_SIM_DEPRECATED_HPP
