/**
 * @file
 * The Session: the one public entry point for running the VEGETA
 * model.
 *
 * A Session owns the engine, workload, and analytical-model
 * registries, the in-memory ResultCache, and an optional persistent
 * DiskResultCache, and turns validated work descriptions into
 * results.  It speaks two levels of API:
 *
 *  - the typed pair level (SimulationRequest -> SimulationResult,
 *    AnalyticalRequest -> AnalyticalResult) kept from the original
 *    Simulator facade, and
 *  - the polymorphic Job level: a Job is a tagged variant of the two,
 *    runBatch() executes mixed job vectors on a worker pool with
 *    canonical-key dedupe, and the output is bit-for-bit identical
 *    for any thread count, with or without either cache attached.
 *
 * Everything above this layer (CLI, benches, sweeps) speaks only jobs
 * or request/result pairs; nothing above it wires engines, workloads,
 * or kernels by hand.  `Simulator` and `SweepRunner` remain as thin
 * deprecated shims over this class.
 */

#ifndef VEGETA_SIM_SESSION_HPP
#define VEGETA_SIM_SESSION_HPP

#include <atomic>
#include <memory>

#include "sim/cache.hpp"
#include "sim/disk_cache.hpp"
#include "sim/job.hpp"
#include "sim/pool.hpp"
#include "sim/request.hpp"
#include "sim/result.hpp"

namespace vegeta::sim {

/** Facade over kernel generation + the trace-driven CPU model. */
class Session
{
  public:
    /** A session over the paper's builtin design/workload space. */
    Session();

    Session(EngineRegistry engines, WorkloadRegistry workloads);

    Session(EngineRegistry engines, WorkloadRegistry workloads,
            AnalyticalRegistry analytics);

    const EngineRegistry &engines() const { return engines_; }
    const WorkloadRegistry &workloads() const { return workloads_; }
    const AnalyticalRegistry &analytics() const { return analytics_; }

    /** A request builder bound to this session's registries. */
    RequestBuilder request() const;

    /** A job builder bound to this session's registries. */
    JobBuilder job() const;

    /**
     * Attach an in-memory result cache consulted by run() (and,
     * through it, by every batch).  Caching never changes an answer
     * -- equal cache keys imply bit-identical results -- it only
     * skips re-simulating requests already seen.  Pass nullptr to
     * disable.  The cache may be shared between sessions with
     * identical registries.
     */
    void setCache(std::shared_ptr<ResultCache> cache);

    /** Convenience: attach a fresh in-memory cache and return it. */
    std::shared_ptr<ResultCache> enableCache();

    /** The attached cache (nullptr when caching is off). */
    const std::shared_ptr<ResultCache> &cache() const { return cache_; }

    /**
     * Attach a persistent cache under @p directory (created as
     * needed), keyed by the same canonical serialization as the
     * in-memory cache and consulted after it.  Results survive the
     * process: a second Session attached to the same directory
     * replays nothing the first one already simulated.  Returns the
     * cache so callers can read stats(); check ok() on it if
     * persistence matters.
     */
    std::shared_ptr<DiskResultCache>
    attachDiskCache(const std::string &directory);

    /** Attach a (possibly shared) persistent cache, or nullptr. */
    void setDiskCache(std::shared_ptr<DiskResultCache> cache);

    /** The attached persistent cache (nullptr when off). */
    const std::shared_ptr<DiskResultCache> &diskCache() const
    {
        return disk_cache_;
    }

    /**
     * Run one request end to end: generate the kernel trace for the
     * engine's effective N and simulate it on the core model.
     * The request must name a registered engine (builders guarantee
     * this); unknown names abort via VEGETA_ASSERT.  When
     * @p trace_out is non-null the generated trace is copied into it
     * (for saving to disk) without a second generation pass.
     */
    SimulationResult run(const SimulationRequest &request,
                         cpu::Trace *trace_out = nullptr) const;

    /**
     * Why @p trace cannot replay on the request's engine (a trace
     * generated for a sparse executed-N contains TILE_SPMM ops a
     * dense engine has no datapath for), or nullopt if it can.
     */
    std::optional<std::string>
    replayError(const cpu::Trace &trace,
                const SimulationRequest &request) const;

    /**
     * Replay a pre-recorded trace under a request's engine and core
     * configuration (the kernel variant and GEMM dims of the request
     * are ignored; the result's kernel field reads "replay").  The
     * trace must be replayable (see replayError).
     */
    SimulationResult replay(const cpu::Trace &trace,
                            const SimulationRequest &request) const;

    /**
     * Why an analytical request cannot run (unknown model, engine, or
     * workload name), or nullopt if it is valid.
     */
    std::optional<std::string>
    analyzeError(const AnalyticalRequest &request) const;

    /**
     * Evaluate one registered analytical model.  The request must be
     * valid (see analyzeError); invalid names abort via VEGETA_ASSERT,
     * matching run()'s contract.
     */
    AnalyticalResult analyze(const AnalyticalRequest &request) const;

    /** Why @p job cannot run, or nullopt if it is valid. */
    std::optional<std::string> jobError(const Job &job) const;

    /** Run one job of either kind (must be valid, see jobError). */
    JobResult run(const Job &job) const;

    /**
     * Run every job on a pool of @p threads workers (0 picks the
     * hardware concurrency); `results[i]` corresponds to `jobs[i]`.
     * Jobs that repeat within the batch (equal canonical job keys)
     * run once and fan their result out to every duplicate slot.
     *
     * @p lane_width groups the batch's uncached simulation jobs into
     * packs replayed lane-batched on one struct-of-arrays LaneReplayer
     * (cpu/lane_replayer.hpp) instead of one TraceCpu each; 0 picks
     * defaultLaneWidth() and 1 keeps plain single-stream execution.
     *
     * Deterministic: the batch output is bit-for-bit identical for
     * any thread count and any lane width (the replayer's lanes share
     * no state -- see the bit-exactness contract), with or without
     * the in-memory or persistent caches attached.
     */
    std::vector<JobResult> runBatch(const std::vector<Job> &jobs,
                                    u32 threads = 0,
                                    u32 lane_width = 0) const;

    /** Trace-only convenience overload of runBatch. */
    std::vector<SimulationResult>
    runBatch(const std::vector<SimulationRequest> &requests,
             u32 threads = 0, u32 lane_width = 0) const;

    /**
     * The lane width runBatch uses when the caller passes 0, chosen
     * from the committed BENCH_replay trajectory's lane_replay rows
     * (bench/bench_replay_throughput.cpp re-measures them per commit).
     */
    static u32 defaultLaneWidth();

    /**
     * Run a batch sharded over worker PROCESSES (see sim/pool.hpp):
     * jobs are deduped by canonical key, dealt round-robin over the
     * sorted key set to options.workers forked workers, and merged
     * back in original batch order -- bit-for-bit identical to
     * runBatch for any worker count.  Workers share the persistent
     * cache under options.cacheDir, so a warm pooled sweep performs
     * zero replays across all workers.  This session is used only to
     * validate the batch; workers run fresh builtin-registry
     * sessions.
     */
    PoolRun runBatchPooled(const std::vector<Job> &jobs,
                           const PoolOptions &options) const;

    /**
     * Core-model simulations this session actually performed (cache
     * hits and batch dedupe excluded).  A warm persistent cache makes
     * a repeated sweep keep this at zero.
     */
    u64 simulationsPerformed() const
    {
        return simulations_.load(std::memory_order_relaxed);
    }

    /**
     * Analytical backends this session actually evaluated (persistent
     * cache hits excluded, batch dedupe excluded).
     */
    u64 analysesPerformed() const
    {
        return analyses_.load(std::memory_order_relaxed);
    }

  private:
    static cpu::CoreConfig coreFor(const SimulationRequest &request,
                                   const engine::EngineConfig &engine);

    static SimulationResult
    fromSimResult(const cpu::SimResult &sim,
                  const engine::EngineConfig &engine,
                  const SimulationRequest &request,
                  const char *kernel_label, u32 executed_n,
                  u64 tile_computes);

    SimulationResult measure(const cpu::Trace &trace,
                             const engine::EngineConfig &engine,
                             const SimulationRequest &request,
                             const char *kernel_label,
                             u32 executed_n, u64 tile_computes) const;

    SimulationResult runUncached(const SimulationRequest &request,
                                 cpu::Trace *trace_out) const;

    /**
     * Run the simulation jobs at @p pack (indices into @p jobs) as
     * one lane pack: cache hits fill their slots directly, and the
     * misses' traces are materialized and replayed lane-batched on
     * one LaneReplayer (sub-packs bounded by a trace-memory budget).
     * results[i] is bit-identical to run(jobs[i]) for every slot.
     */
    void runSimPack(const std::vector<Job> &jobs,
                    const std::vector<std::size_t> &pack,
                    std::vector<JobResult> &results) const;

    EngineRegistry engines_;
    WorkloadRegistry workloads_;
    AnalyticalRegistry analytics_;
    std::shared_ptr<ResultCache> cache_;
    std::shared_ptr<DiskResultCache> disk_cache_;
    mutable std::atomic<u64> simulations_{0};
    mutable std::atomic<u64> analyses_{0};
};

/**
 * The Figure 13 grid over this session's registries: for each
 * workload x pattern x engine, one no-OF request, plus an OF request
 * for sparse engines (matching the paper's evaluated variants).
 * Row-major in (workload, pattern, engine) order.
 */
std::vector<SimulationRequest>
figure13Grid(const Session &session,
             const std::vector<std::string> &workload_names,
             const std::vector<std::string> &engine_names,
             const std::vector<u32> &patterns = {4, 2, 1});

/**
 * Geometric-mean speed-up of `engine_name` (with optional OF) over
 * `baseline_name` across the named workloads at one layer pattern --
 * the abstract's 1.09x / 2.20x / 3.74x numbers when the baseline is
 * the RASA-DM dense engine.  Both sides of every ratio run through
 * one (parallel, deduplicated) session batch.
 */
double geomeanSpeedup(const Session &session,
                      const std::vector<std::string> &workload_names,
                      u32 layer_n, const std::string &engine_name,
                      bool output_forwarding,
                      const std::string &baseline_name =
                          "VEGETA-D-1-2",
                      u32 threads = 0);

} // namespace vegeta::sim

#endif // VEGETA_SIM_SESSION_HPP
