/**
 * @file
 * Declarative description of the tuner's search space and the cheap
 * structural validity predicates that guard it.
 *
 * A TuneSpace is a set of axes (workloads, engines, patterns, output
 * forwarding, kernel variants, C blocking) whose cross product is the
 * raw candidate set; a TunePoint is one coordinate of that product.
 * Before any analytical scoring or replay, every point passes through
 * invalidReason() -- the isaac-gemm `is_invalid_impl` idiom: reject
 * structurally infeasible or aliased configurations (output
 * forwarding on an engine with no forwarding path, blocking knobs the
 * naive kernel ignores, broken engine geometry, an area budget the
 * design exceeds) with a one-line reason, at a cost of a few integer
 * checks per point.  The predicates are conservative by contract:
 * they never reject any configuration the figure13Grid / Table IV
 * evaluation actually runs (tests/test_tune.cpp pins this).
 *
 * The space can optionally extend the engine axis beyond the
 * registered Table III designs with candidateEngineConfigs():
 * parametric (alpha, beta, sparse, minN) geometries that keep the
 * paper's invariant of 512 total MACs.
 */

#ifndef VEGETA_SIM_TUNE_SPACE_HPP
#define VEGETA_SIM_TUNE_SPACE_HPP

#include <optional>
#include <string>
#include <vector>

#include "engine/config.hpp"
#include "sim/request.hpp"

namespace vegeta::sim {

class Session;

/** One coordinate of the search space. */
struct TunePoint
{
    std::string workload;
    std::string engine;
    u32 patternN = 4;
    bool outputForwarding = false;
    KernelVariant kernel = KernelVariant::Optimized;
    u32 cBlocking = 3;
};

/**
 * Canonical one-line serialization of a point: the tuner's sort key,
 * dedupe key, and report identifier.  Pure function of the point.
 */
std::string tunePointKey(const TunePoint &point);

/** The declarative axes whose cross product is the candidate set. */
struct TuneSpace
{
    /** Registered workload names (empty = invalid space). */
    std::vector<std::string> workloads;

    /** Registered engine names (empty = invalid space). */
    std::vector<std::string> engines;

    std::vector<u32> patterns = {4, 2, 1};

    /** Output-forwarding settings to explore. */
    std::vector<bool> outputForwarding = {false, true};

    std::vector<KernelVariant> kernels = {KernelVariant::Optimized};

    /** C-register blocking factors for the optimized kernel. */
    std::vector<u32> cBlockings = {1, 2, 3};

    /** Optional area budget (engine::PhysicalEstimate units). */
    std::optional<double> maxAreaUnits;

    /** |workloads x engines x patterns x OF x kernels x cBlockings|. */
    u64 rawSize() const;

    /**
     * Every raw point, row-major in axis declaration order --
     * deterministic, so equal spaces always enumerate identically.
     */
    std::vector<TunePoint> enumerate() const;

    /**
     * The space the Figure 13 evaluation grid lives in: every
     * registered engine, all three patterns, both OF settings, the
     * optimized kernel at full C blocking.  Restricting the replayed
     * subset of this space to valid points reproduces figure13Grid
     * exactly.
     */
    static TuneSpace figure13(const Session &session,
                              std::vector<std::string> workload_names);

    /**
     * The tuner's default space: figure13 axes widened with the
     * kernel-blocking axis (cBlocking 1..3).
     */
    static TuneSpace full(const Session &session,
                          std::vector<std::string> workload_names);
};

/**
 * Why @p point is structurally infeasible in @p space (checked
 * against @p session's registries), or nullopt if it must be scored.
 * Cheap by contract -- name lookups and integer checks only, no
 * kernel generation and no simulation.
 */
std::optional<std::string>
invalidReason(const Session &session, const TuneSpace &space,
              const TunePoint &point);

/**
 * Closed-form cycle estimate of one point -- the scoring half of the
 * analytical prefilter (surfaced through the AnalyticalRegistry as
 * the "tune-prefilter" backend).  Instruction and tile-op counts
 * mirror the kernel generator's loop structure exactly;
 * the engine-bound term replays a small steady-state window of
 * compute instructions on engine::PipelineModel (the same scheduler
 * the cycle model delegates to) and extrapolates, so engine-side
 * ranking inherits the real stage/forwarding rules.  Cost: a few
 * dozen PipelineModel::issue calls per point, no trace generation.
 */
struct PrefilterEstimate
{
    u32 executedN = 4;
    u64 instructions = 0;
    u64 tileComputes = 0;
    u64 tileLoads = 0;
    u64 tileStores = 0;
    double engineBoundCoreCycles = 0.0;
    double frontendBoundCoreCycles = 0.0;
    double estCoreCycles = 0.0;

    /** estCoreCycles / logical (unpadded) MACs -- the tuner's
     *  workload-comparable objective. */
    double estCyclesPerMac = 0.0;

    double areaUnits = 0.0;
};

PrefilterEstimate
prefilterEstimate(const kernels::GemmDims &gemm,
                  const engine::EngineConfig &engine, u32 pattern_n,
                  bool output_forwarding, bool naive, u32 c_blocking,
                  const cpu::CoreConfig &core = {});

/**
 * Parametric engine-design candidates beyond the registered Table III
 * rows: every (sparse, alpha, beta, minN) geometry that preserves the
 * 512-MAC invariant (dense sweeps beta over divisors of 32; sparse
 * keeps the paper's beta = 2 and sweeps minSupportedN over {1, 2}),
 * minus any geometry a builtin registry entry already covers.  Names
 * are "CAND-D-<alpha>-<beta>" / "CAND-S-<alpha>-2[-N2]".
 */
std::vector<engine::EngineConfig> candidateEngineConfigs();

} // namespace vegeta::sim

#endif // VEGETA_SIM_TUNE_SPACE_HPP
