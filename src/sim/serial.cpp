#include "sim/serial.hpp"

#include <bit>
#include <cstdio>

namespace vegeta::sim::serial {

u64
checksum(const std::string &text)
{
    u64 hash = 0xcbf29ce484222325ull;
    for (const char c : text)
        hash = (hash ^ static_cast<unsigned char>(c)) *
               0x100000001b3ull;
    return hash;
}

bool
parseU64(const std::string &text, u64 *out)
{
    if (text.empty() || text.size() > 20)
        return false;
    u64 value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        const u64 next = value * 10 + static_cast<u64>(c - '0');
        if (next < value)
            return false;
        value = next;
    }
    *out = value;
    return true;
}

bool
parseHexU64(const std::string &text, u64 *out)
{
    if (text.empty() || text.size() > 16)
        return false;
    u64 value = 0;
    for (const char c : text) {
        u64 digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<u64>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<u64>(c - 'a') + 10;
        else
            return false;
        value = (value << 4) | digit;
    }
    *out = value;
    return true;
}

bool
parseI64(const std::string &text, i64 *out)
{
    const bool negative = !text.empty() && text[0] == '-';
    u64 magnitude;
    if (!parseU64(negative ? text.substr(1) : text, &magnitude))
        return false;
    if (negative) {
        if (magnitude > 0x8000000000000000ull)
            return false;
        // Negate in unsigned space: -INT64_MIN would overflow i64.
        *out = static_cast<i64>(~magnitude + 1);
    } else {
        if (magnitude > 0x7fffffffffffffffull)
            return false;
        *out = static_cast<i64>(magnitude);
    }
    return true;
}

std::string
hex16(u64 value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
doubleBits(double value)
{
    return hex16(std::bit_cast<u64>(value));
}

bool
parseDoubleBits(const std::string &text, double *out)
{
    u64 bits;
    if (!parseHexU64(text, &bits))
        return false;
    *out = std::bit_cast<double>(bits);
    return true;
}

std::string
escape(const std::string &text)
{
    std::string escaped;
    escaped.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '%':
            escaped += "%25";
            break;
          case '\t':
            escaped += "%09";
            break;
          case '\n':
            escaped += "%0a";
            break;
          case '\r':
            escaped += "%0d";
            break;
          default:
            escaped += c;
        }
    }
    return escaped;
}

bool
unescape(const std::string &text, std::string *out)
{
    std::string plain;
    plain.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '%') {
            plain += text[i];
            continue;
        }
        if (i + 2 >= text.size())
            return false;
        u64 code;
        if (!parseHexU64(text.substr(i + 1, 2), &code))
            return false;
        plain += static_cast<char>(code);
        i += 2;
    }
    *out = std::move(plain);
    return true;
}

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (;;) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

// --- FieldReader -----------------------------------------------------

std::string
FieldReader::raw()
{
    if (!ok_ || next_ >= fields_.size()) {
        fail();
        return "";
    }
    return fields_[next_++];
}

std::string
FieldReader::str()
{
    std::string plain;
    if (!unescape(raw(), &plain))
        fail();
    return ok_ ? plain : "";
}

u64
FieldReader::num()
{
    u64 value = 0;
    if (!parseU64(raw(), &value))
        fail();
    return value;
}

i64
FieldReader::signedNum()
{
    i64 value = 0;
    if (!parseI64(raw(), &value))
        fail();
    return value;
}

u64
FieldReader::hex()
{
    u64 value = 0;
    if (!parseHexU64(raw(), &value))
        fail();
    return value;
}

double
FieldReader::bits()
{
    double value = 0;
    if (!parseDoubleBits(raw(), &value))
        fail();
    return value;
}

u32
FieldReader::num32()
{
    const u64 value = num();
    if (value > 0xffffffffull)
        fail();
    return static_cast<u32>(value);
}

// --- FieldWriter -----------------------------------------------------

FieldWriter &
FieldWriter::raw(const std::string &text)
{
    if (!first_)
        body_ += '\t';
    first_ = false;
    body_ += text;
    return *this;
}

FieldWriter &
FieldWriter::str(const std::string &text)
{
    return raw(escape(text));
}

FieldWriter &
FieldWriter::num(u64 value)
{
    return raw(std::to_string(value));
}

FieldWriter &
FieldWriter::signedNum(i64 value)
{
    return raw(std::to_string(value));
}

FieldWriter &
FieldWriter::hex(u64 value)
{
    return raw(hex16(value));
}

FieldWriter &
FieldWriter::bits(double value)
{
    return raw(doubleBits(value));
}

std::string
FieldWriter::line() const
{
    return body_ + '\t' + hex16(checksum(body_));
}

// --- Result bodies ---------------------------------------------------

void
appendSimulationResult(FieldWriter &writer,
                       const SimulationResult &result)
{
    writer.str(result.workload)
        .str(result.engine)
        .num(result.layerN)
        .num(result.executedN)
        .num(result.outputForwarding ? 1 : 0)
        .str(result.kernel)
        .num(result.coreCycles)
        .num(result.instructions)
        .num(result.engineInstructions)
        .num(result.tileComputes)
        .bits(result.macUtilization)
        .num(result.cacheHits)
        .num(result.cacheMisses);
}

bool
readSimulationResult(FieldReader &reader, SimulationResult *result)
{
    result->workload = reader.str();
    result->engine = reader.str();
    result->layerN = reader.num32();
    result->executedN = reader.num32();
    const u64 of = reader.num();
    result->outputForwarding = of != 0;
    result->kernel = reader.str();
    result->coreCycles = reader.num();
    result->instructions = reader.num();
    result->engineInstructions = reader.num();
    result->tileComputes = reader.num();
    result->macUtilization = reader.bits();
    result->cacheHits = reader.num();
    result->cacheMisses = reader.num();
    return reader.ok() && of <= 1;
}

void
appendAnalyticalResult(FieldWriter &writer,
                       const AnalyticalResult &result)
{
    writer.str(result.model);
    writer.num(result.columns.size());
    for (const auto &column : result.columns)
        writer.str(column);
    writer.num(result.rows.size());
    for (const auto &row : result.rows) {
        writer.num(row.size());
        for (const auto &cell : row)
            writer.str(cell.label)
                .bits(cell.value)
                .signedNum(cell.precision);
    }
    writer.num(result.notes.size());
    for (const auto &note : result.notes)
        writer.str(note);
}

bool
readAnalyticalResult(FieldReader &reader, AnalyticalResult *result)
{
    result->model = reader.str();
    const u64 columns = reader.num();
    if (!reader.ok() || columns > reader.remaining())
        return false;
    result->columns.clear();
    result->columns.reserve(columns);
    for (u64 c = 0; c < columns; ++c)
        result->columns.push_back(reader.str());
    const u64 rows = reader.num();
    if (!reader.ok() || rows > reader.remaining())
        return false;
    result->rows.clear();
    result->rows.reserve(rows);
    for (u64 r = 0; r < rows; ++r) {
        const u64 cells = reader.num();
        // 3 fields per cell: an impossible count fails fast instead
        // of looping on a corrupt length.
        if (!reader.ok() || cells > reader.remaining() / 3)
            return false;
        auto &row = result->rows.emplace_back();
        row.reserve(cells);
        for (u64 c = 0; c < cells; ++c) {
            AnalyticalCell cell;
            cell.label = reader.str();
            cell.value = reader.bits();
            const i64 precision = reader.signedNum();
            if (precision < -0x80000000ll || precision > 0x7fffffffll)
                return false;
            cell.precision = static_cast<int>(precision);
            row.push_back(std::move(cell));
        }
    }
    const u64 notes = reader.num();
    if (!reader.ok() || notes > reader.remaining())
        return false;
    result->notes.clear();
    result->notes.reserve(notes);
    for (u64 n = 0; n < notes; ++n)
        result->notes.push_back(reader.str());
    return reader.ok();
}

std::optional<std::vector<std::string>>
checkedFields(const std::string &line)
{
    auto fields = splitTabs(line);
    if (fields.size() < 2)
        return std::nullopt;
    u64 sum;
    if (!parseHexU64(fields.back(), &sum))
        return std::nullopt;
    const std::size_t body_len =
        line.size() - fields.back().size() - 1; // minus "\t<sum>"
    if (sum != checksum(line.substr(0, body_len)))
        return std::nullopt;
    fields.pop_back();
    return fields;
}

} // namespace vegeta::sim::serial
