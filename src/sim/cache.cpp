#include "sim/cache.hpp"

#include <functional>
#include <sstream>

namespace vegeta::sim {

std::string
cacheKey(const SimulationRequest &request)
{
    const cpu::CoreConfig &core = request.core;
    const cpu::CacheConfig &l1 = core.cache;
    std::ostringstream key;
    key << "v1|" << request.label << '|' << request.gemm.m << 'x'
        << request.gemm.n << 'x' << request.gemm.k << '|'
        << request.engine << '|' << request.patternN << '|'
        << (request.outputForwarding ? 1 : 0) << '|'
        << kernelVariantName(request.kernel) << '|' << request.cBlocking
        << '|' << core.fetchWidth << ',' << core.retireWidth << ','
        << core.robEntries << ',' << core.loadBufferEntries << ','
        << core.frontEndDepth << ',' << core.numAlus << ','
        << core.numLsuPorts << ',' << core.numVectorFus << ','
        << core.vectorFmaLatency << ',' << core.engineClockDivider
        << ',' << (core.outputForwarding ? 1 : 0) << '|' << l1.lineBytes
        << ',' << l1.l1Sets << ',' << l1.l1Ways << ',' << l1.l1Latency
        << ',' << l1.l2Latency;
    return key.str();
}

ResultCache::ResultCache(std::size_t shards)
{
    if (shards == 0)
        shards = 1;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shards_.push_back(std::make_unique<Shard>());
}

ResultCache::Shard &
ResultCache::shardFor(const std::string &key) const
{
    const std::size_t hash = std::hash<std::string>{}(key);
    return *shards_[hash % shards_.size()];
}

std::optional<SimulationResult>
ResultCache::find(const std::string &key) const
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
ResultCache::insert(const std::string &key,
                    const SimulationResult &result)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.entries.emplace(key, result).second)
        insertions_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t
ResultCache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->entries.size();
    }
    return total;
}

void
ResultCache::clear()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->entries.clear();
    }
}

CacheStats
ResultCache::stats() const
{
    CacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.insertions = insertions_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace vegeta::sim
