#include "sim/tune.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "sim/client.hpp"
#include "sim/cost_model.hpp"
#include "sim/session.hpp"
#include "sim/telemetry.hpp"

namespace vegeta::sim {

namespace {

/** Fixed-format double for byte-stable reports. */
std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

bool
candidateScoreLess(const TuneCandidate &a, const TuneCandidate &b)
{
    if (a.predictedCyclesPerMac != b.predictedCyclesPerMac)
        return a.predictedCyclesPerMac < b.predictedCyclesPerMac;
    return tunePointKey(a.point) < tunePointKey(b.point);
}

bool
candidateMeasuredLess(const TuneCandidate &a, const TuneCandidate &b)
{
    if (a.measuredCyclesPerMac != b.measuredCyclesPerMac)
        return a.measuredCyclesPerMac < b.measuredCyclesPerMac;
    return tunePointKey(a.point) < tunePointKey(b.point);
}

/** Calibration group: points the estimator errs on the same way. */
std::string
calibrationGroup(const TunePoint &point)
{
    return point.engine + "|" + std::to_string(point.patternN) + "|" +
           (point.outputForwarding ? "1" : "0") + "|" +
           kernelVariantName(point.kernel);
}

SimulationRequest
requestFor(const Session &session, const TunePoint &point)
{
    auto builder = session.request();
    auto request = builder.workload(point.workload)
                       .engine(point.engine)
                       .pattern(point.patternN)
                       .outputForwarding(point.outputForwarding)
                       .kernel(point.kernel)
                       .cBlocking(point.cBlocking)
                       .build();
    VEGETA_ASSERT(request.has_value(), "tuner replayed invalid point: %s",
                  builder.error().c_str());
    return *request;
}

/** The measured Pareto front: ascending area, strictly better speed. */
std::vector<TuneCandidate>
paretoFrontOf(std::vector<TuneCandidate> confirmed)
{
    std::sort(confirmed.begin(), confirmed.end(),
              [](const TuneCandidate &a, const TuneCandidate &b) {
                  if (a.areaUnits != b.areaUnits)
                      return a.areaUnits < b.areaUnits;
                  return candidateMeasuredLess(a, b);
              });
    std::vector<TuneCandidate> front;
    for (const auto &candidate : confirmed)
        if (front.empty() || candidate.measuredCyclesPerMac <
                                 front.back().measuredCyclesPerMac)
            front.push_back(candidate);
    return front;
}

void
writeCandidateJson(std::ostream &os, const TuneCandidate &c)
{
    os << "{\"workload\": \"" << jsonEscape(c.point.workload)
       << "\", \"engine\": \"" << jsonEscape(c.point.engine)
       << "\", \"pattern\": " << c.point.patternN
       << ", \"output_forwarding\": "
       << (c.point.outputForwarding ? "true" : "false")
       << ", \"kernel\": \"" << kernelVariantName(c.point.kernel)
       << "\", \"c_blocking\": " << c.point.cBlocking
       << ", \"est_cycles_per_mac\": " << formatDouble(c.estCyclesPerMac)
       << ", \"predicted_cycles_per_mac\": "
       << formatDouble(c.predictedCyclesPerMac)
       << ", \"area_units\": " << formatDouble(c.areaUnits)
       << ", \"replayed\": " << (c.replayed ? "true" : "false")
       << ", \"measured_core_cycles\": " << c.measuredCoreCycles
       << ", \"measured_cycles_per_mac\": "
       << formatDouble(c.measuredCyclesPerMac)
       << ", \"mac_utilization\": "
       << formatDouble(c.measuredMacUtilization) << "}";
}

} // namespace

const char *
tuneStrategyName(TuneStrategy strategy)
{
    switch (strategy) {
    case TuneStrategy::CappedExhaustive:
        return "exhaustive";
    case TuneStrategy::RandomHalving:
        return "halving";
    }
    return "unknown";
}

std::optional<TuneStrategy>
parseTuneStrategy(const std::string &name)
{
    if (name == "exhaustive")
        return TuneStrategy::CappedExhaustive;
    if (name == "halving")
        return TuneStrategy::RandomHalving;
    return std::nullopt;
}

Tuner::Tuner(const Session &session, TuneOptions options)
    : session_(session), options_(std::move(options))
{
}

std::vector<TuneCandidate>
Tuner::scoreCandidates(const TuneSpace &space,
                       const std::vector<TunePoint> &valid,
                       u64 analysis_cap, TuneReport &report) const
{
    (void)space;

    // Train the optional cost model off the persistent cache once per
    // search.  Below the sample threshold the prefilter rules alone.
    std::optional<CostModel> model;
    if (options_.useCostModel && session_.diskCache()) {
        const auto samples =
            harvestCostSamples(session_, *session_.diskCache());
        report.costModelSamples = samples.size();
        if (samples.size() >= kMinCostSamples)
            model = CostModel::fit(samples);
    }
    report.costModelUsed = model.has_value();
    if (model)
        report.costModelRmse = model->trainRmse();

    std::vector<TuneCandidate> scored;
    for (const auto &point : valid) {
        if (scored.size() >= analysis_cap)
            break;
        AnalyticalRequest request;
        request.model = "tune-prefilter";
        request.workloads = {point.workload};
        request.engines = {point.engine};
        request.params["pattern"] = double(point.patternN);
        request.params["of"] = point.outputForwarding ? 1.0 : 0.0;
        request.params["cblocking"] = double(point.cBlocking);
        request.options["kernel"] = kernelVariantName(point.kernel);
        const AnalyticalResult result = session_.analyze(request);
        VEGETA_ASSERT(result.rows.size() == 1,
                      "tune-prefilter returned %zu rows for one point",
                      result.rows.size());

        TuneCandidate candidate;
        candidate.point = point;
        candidate.estCyclesPerMac =
            result.number(0, "est_cycles_per_mac");
        candidate.areaUnits = result.number(0, "area_units");
        candidate.predictedCyclesPerMac = candidate.estCyclesPerMac;

        if (model) {
            const auto workload =
                session_.workloads().find(point.workload);
            const auto engine = session_.engines().find(point.engine);
            VEGETA_ASSERT(workload && engine,
                          "scored point lost its registry entries");
            const auto x = CostModel::features(
                workload->gemm, *engine, point.patternN,
                point.outputForwarding,
                point.kernel == KernelVariant::Naive,
                point.cBlocking);
            candidate.predictedCyclesPerMac =
                std::exp2(model->predictLog2Cycles(x)) /
                double(workload->gemm.macs());
        }
        scored.push_back(std::move(candidate));
    }
    report.analyzedPoints = scored.size();
    return scored;
}

void
Tuner::replayCandidates(std::vector<TuneCandidate *> &picks) const
{
    if (picks.empty())
        return;
    std::vector<SimulationRequest> requests;
    requests.reserve(picks.size());
    for (const TuneCandidate *candidate : picks)
        requests.push_back(requestFor(session_, candidate->point));

    std::vector<SimulationResult> results;
    if (!options_.connectAddress.empty()) {
        ClientOptions client_options;
        client_options.address = options_.connectAddress;
        SimClient client(client_options);
        std::string error;
        std::vector<Job> jobs;
        jobs.reserve(requests.size());
        for (const auto &request : requests)
            jobs.push_back(Job::simulate(request));
        if (client.connect(&error)) {
            if (const auto run = client.runBatch(jobs, &error)) {
                for (const auto &job_result : run->results)
                    results.push_back(job_result.simulation);
            }
        }
        if (results.empty())
            VEGETA_WARN("tune: service %s unavailable (%s); "
                        "confirming locally",
                        options_.connectAddress.c_str(),
                        error.c_str());
    }
    if (results.empty())
        results = session_.runBatch(requests, options_.threads,
                                    options_.laneWidth);

    VEGETA_ASSERT(results.size() == picks.size(),
                  "replay batch size mismatch");
    for (std::size_t i = 0; i < picks.size(); ++i) {
        const auto workload =
            session_.workloads().find(picks[i]->point.workload);
        VEGETA_ASSERT(workload.has_value(),
                      "replayed point lost its workload");
        picks[i]->replayed = true;
        picks[i]->measuredCoreCycles = results[i].coreCycles;
        picks[i]->measuredCyclesPerMac =
            double(results[i].coreCycles) /
            double(workload->gemm.macs());
        picks[i]->measuredMacUtilization = results[i].macUtilization;
    }
}

TuneReport
Tuner::run(const TuneSpace &space) const
{
    TuneReport report;
    report.strategy = options_.strategy;
    report.seed = options_.seed;
    report.budget = options_.budget;
    report.rawPoints = space.rawSize();

    static const telemetry::MetricId validity_timer =
        telemetry::timerId("tune.validity");
    static const telemetry::MetricId analyze_timer =
        telemetry::timerId("tune.analyze");
    static const telemetry::MetricId replay_timer =
        telemetry::timerId("tune.replay");

    // Stage 1: validity.  Canonical key order makes every later
    // ranking (and therefore the report bytes) independent of
    // enumeration details.
    const u64 validity_start = telemetry::nowNs();
    std::vector<TunePoint> valid;
    {
        telemetry::Span span("tune.validity", report.rawPoints);
        for (auto &point : space.enumerate())
            if (!invalidReason(session_, space, point))
                valid.push_back(std::move(point));
        std::sort(valid.begin(), valid.end(),
                  [](const TunePoint &a, const TunePoint &b) {
                      return tunePointKey(a) < tunePointKey(b);
                  });
    }
    const u64 validity_ns = telemetry::nowNs() - validity_start;
    telemetry::recordNs(validity_timer, validity_ns);
    report.validityMs = double(validity_ns) / 1e6;
    report.validPoints = valid.size();
    report.rejectedPoints = report.rawPoints - report.validPoints;

    const u64 analysis_cap = options_.budget.analyses == 0
                                 ? u64(valid.size())
                                 : options_.budget.analyses;

    // Stage 2 candidate set: everything (exhaustive) or a seeded
    // random pool sized to the replay budget (halving).
    const u64 analyze_start = telemetry::nowNs();
    telemetry::Span analyze_span("tune.analyze", valid.size());
    std::vector<TuneCandidate> scored;
    if (options_.strategy == TuneStrategy::RandomHalving &&
        !valid.empty()) {
        const u64 pool_target =
            std::min<u64>(valid.size(),
                          std::max<u64>(1, options_.budget.replays) * 8);
        Rng rng(options_.seed);
        const auto picks =
            rng.choose(u32(valid.size()), u32(pool_target));
        std::vector<TunePoint> pool;
        pool.reserve(picks.size());
        for (u32 index : picks)
            pool.push_back(valid[index]);
        scored = scoreCandidates(space, pool, analysis_cap, report);
    } else {
        scored = scoreCandidates(space, valid, analysis_cap, report);
    }
    analyze_span.close();
    const u64 analyze_ns = telemetry::nowNs() - analyze_start;
    telemetry::recordNs(analyze_timer, analyze_ns);
    report.analyzeMs = double(analyze_ns) / 1e6;

    // Stage 3: replay confirmation, strictly bounded by the budget.
    const u64 replay_start = telemetry::nowNs();
    telemetry::Span replay_span("tune.replay",
                                options_.budget.replays);
    u32 replays_left = options_.budget.replays;
    if (options_.strategy == TuneStrategy::CappedExhaustive) {
        std::sort(scored.begin(), scored.end(), candidateScoreLess);
        std::vector<TuneCandidate *> picks;
        for (auto &candidate : scored) {
            if (picks.size() >= replays_left)
                break;
            picks.push_back(&candidate);
        }
        replayCandidates(picks);
        report.replayedPoints = picks.size();
    } else {
        // Successive halving: spend the budget over shrinking rounds
        // (R/2, R/4, ..., 1), recalibrating the analytical ranking
        // against each round's measurements so later rounds chase the
        // estimator's corrected ordering, not its raw one.
        std::map<std::string, std::pair<double, u64>> group_ratio;
        double global_ratio_sum = 0.0;
        u64 global_ratio_count = 0;
        while (replays_left > 0) {
            std::vector<TuneCandidate *> unreplayed;
            for (auto &candidate : scored)
                if (!candidate.replayed)
                    unreplayed.push_back(&candidate);
            if (unreplayed.empty())
                break;
            std::sort(unreplayed.begin(), unreplayed.end(),
                      [](const TuneCandidate *a,
                         const TuneCandidate *b) {
                          return candidateScoreLess(*a, *b);
                      });
            const u32 round = std::min<u32>(
                u32(unreplayed.size()),
                std::max<u32>(1, replays_left / 2));
            std::vector<TuneCandidate *> picks(
                unreplayed.begin(), unreplayed.begin() + round);
            replayCandidates(picks);
            replays_left -= round;
            report.replayedPoints += round;

            for (const TuneCandidate *candidate : picks) {
                if (candidate->estCyclesPerMac <= 0.0)
                    continue;
                const double ratio = candidate->measuredCyclesPerMac /
                                     candidate->estCyclesPerMac;
                auto &entry =
                    group_ratio[calibrationGroup(candidate->point)];
                entry.first += ratio;
                entry.second += 1;
                global_ratio_sum += ratio;
                global_ratio_count += 1;
            }
            if (global_ratio_count == 0)
                continue;
            const double global_ratio =
                global_ratio_sum / double(global_ratio_count);
            for (auto &candidate : scored) {
                if (candidate.replayed)
                    continue;
                const auto entry =
                    group_ratio.find(calibrationGroup(candidate.point));
                const double ratio = entry != group_ratio.end()
                                         ? entry->second.first /
                                               double(entry->second.second)
                                         : global_ratio;
                candidate.predictedCyclesPerMac =
                    candidate.estCyclesPerMac * ratio;
            }
        }
    }

    replay_span.close();
    const u64 replay_ns = telemetry::nowNs() - replay_start;
    telemetry::recordNs(replay_timer, replay_ns);
    report.replayMs = double(replay_ns) / 1e6;

    for (auto &candidate : scored)
        if (candidate.replayed)
            report.confirmed.push_back(candidate);
    std::sort(report.confirmed.begin(), report.confirmed.end(),
              candidateMeasuredLess);
    report.paretoFront = paretoFrontOf(report.confirmed);
    return report;
}

void
writeJson(std::ostream &os, const TuneReport &report)
{
    os << "{\n";
    os << "  \"strategy\": \"" << tuneStrategyName(report.strategy)
       << "\",\n";
    os << "  \"seed\": " << report.seed << ",\n";
    os << "  \"budget\": {\"replays\": " << report.budget.replays
       << ", \"analyses\": " << report.budget.analyses << "},\n";
    os << "  \"raw_points\": " << report.rawPoints << ",\n";
    os << "  \"valid_points\": " << report.validPoints << ",\n";
    os << "  \"rejected_points\": " << report.rejectedPoints << ",\n";
    os << "  \"analyzed_points\": " << report.analyzedPoints << ",\n";
    os << "  \"replayed_points\": " << report.replayedPoints << ",\n";
    os << "  \"cost_model\": {\"used\": "
       << (report.costModelUsed ? "true" : "false")
       << ", \"samples\": " << report.costModelSamples
       << ", \"train_rmse\": " << formatDouble(report.costModelRmse)
       << "},\n";
    os << "  \"best\": ";
    if (const TuneCandidate *best = report.best())
        writeCandidateJson(os, *best);
    else
        os << "null";
    os << ",\n";
    os << "  \"pareto_front\": [";
    for (std::size_t i = 0; i < report.paretoFront.size(); ++i) {
        os << (i ? ", " : "");
        writeCandidateJson(os, report.paretoFront[i]);
    }
    os << "],\n";
    os << "  \"confirmed\": [";
    for (std::size_t i = 0; i < report.confirmed.size(); ++i) {
        os << (i ? ", " : "");
        writeCandidateJson(os, report.confirmed[i]);
    }
    os << "]\n";
    os << "}\n";
}

void
writeCsv(std::ostream &os, const TuneReport &report)
{
    os << "workload,engine,pattern,output_forwarding,kernel,"
          "c_blocking,est_cycles_per_mac,predicted_cycles_per_mac,"
          "area_units,measured_core_cycles,measured_cycles_per_mac,"
          "mac_utilization\n";
    for (const auto &c : report.confirmed) {
        os << c.point.workload << "," << c.point.engine << ","
           << c.point.patternN << ","
           << (c.point.outputForwarding ? 1 : 0) << ","
           << kernelVariantName(c.point.kernel) << ","
           << c.point.cBlocking << ","
           << formatDouble(c.estCyclesPerMac) << ","
           << formatDouble(c.predictedCyclesPerMac) << ","
           << formatDouble(c.areaUnits) << "," << c.measuredCoreCycles
           << "," << formatDouble(c.measuredCyclesPerMac) << ","
           << formatDouble(c.measuredMacUtilization) << "\n";
    }
}

} // namespace vegeta::sim
