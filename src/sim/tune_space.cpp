#include "sim/tune_space.hpp"

#include <algorithm>
#include <sstream>

#include "engine/area_model.hpp"
#include "engine/pipeline.hpp"
#include "sim/session.hpp"

namespace vegeta::sim {

std::string
tunePointKey(const TunePoint &point)
{
    std::ostringstream key;
    key << point.workload << '|' << point.engine << '|'
        << point.patternN << '|' << (point.outputForwarding ? 1 : 0)
        << '|' << kernelVariantName(point.kernel) << '|'
        << point.cBlocking;
    return key.str();
}

u64
TuneSpace::rawSize() const
{
    return u64{workloads.size()} * engines.size() * patterns.size() *
           outputForwarding.size() * kernels.size() *
           cBlockings.size();
}

std::vector<TunePoint>
TuneSpace::enumerate() const
{
    std::vector<TunePoint> points;
    points.reserve(rawSize());
    for (const auto &workload : workloads)
        for (const auto &engine : engines)
            for (const u32 pattern : patterns)
                for (const bool of : outputForwarding)
                    for (const KernelVariant kernel : kernels)
                        for (const u32 cb : cBlockings) {
                            TunePoint p;
                            p.workload = workload;
                            p.engine = engine;
                            p.patternN = pattern;
                            p.outputForwarding = of;
                            p.kernel = kernel;
                            p.cBlocking = cb;
                            points.push_back(std::move(p));
                        }
    return points;
}

TuneSpace
TuneSpace::figure13(const Session &session,
                    std::vector<std::string> workload_names)
{
    TuneSpace space;
    space.workloads = std::move(workload_names);
    space.engines = session.engines().names();
    space.patterns = {4, 2, 1};
    space.outputForwarding = {false, true};
    space.kernels = {KernelVariant::Optimized};
    space.cBlockings = {3};
    return space;
}

TuneSpace
TuneSpace::full(const Session &session,
                std::vector<std::string> workload_names)
{
    TuneSpace space =
        figure13(session, std::move(workload_names));
    space.cBlockings = {1, 2, 3};
    return space;
}

std::optional<std::string>
invalidReason(const Session &session, const TuneSpace &space,
              const TunePoint &point)
{
    if (!session.workloads().contains(point.workload))
        return "unknown workload: " + point.workload;
    const auto config = session.engines().find(point.engine);
    if (!config)
        return "unknown engine: " + point.engine;

    if (point.patternN != 1 && point.patternN != 2 &&
        point.patternN != 4)
        return "pattern must be 1, 2, or 4";
    if (point.cBlocking < 1 || point.cBlocking > 3)
        return "cBlocking must be 1..3 (C tiles live in tregs 5-7)";

    // The naive (Listing 1) kernel reloads C inside the k loop and
    // has no blocking knob: cBlocking > 1 would alias the cBlocking=1
    // point under a different key, so only one spelling is feasible.
    if (point.kernel == KernelVariant::Naive && point.cBlocking != 1)
        return "the naive kernel has no C blocking (cBlocking must "
               "be 1)";

    // Output forwarding is a sparse-PE datapath feature (Section
    // V-C); a dense engine has no forwarding path, and the request
    // would alias the no-OF point.
    if (point.outputForwarding && !config->sparse)
        return "output forwarding needs a sparse engine (no "
               "forwarding path on " +
               point.engine + ")";

    // Structural geometry checks, cheap-predicate style: every legal
    // design keeps the paper's 512-MAC invariant with integral grid
    // dimensions.  Registered Table III rows satisfy these by
    // construction; generated candidates must too.
    if (config->alpha == 0 || config->beta == 0)
        return "engine geometry: alpha and beta must be positive";
    if (engine::kMacsPerOutput % config->beta != 0)
        return "engine geometry: beta must divide " +
               std::to_string(engine::kMacsPerOutput);
    const u32 rows = config->nRows();
    if (engine::kTotalMacs % (rows * config->alpha * config->beta) !=
        0)
        return "engine geometry: grid does not tile " +
               std::to_string(engine::kTotalMacs) + " MACs";
    if (rows * config->nCols() * config->alpha * config->beta !=
        engine::kTotalMacs)
        return "engine geometry: grid is not " +
               std::to_string(engine::kTotalMacs) + " MACs";
    if (!config->sparse && config->minSupportedN != 4)
        return "engine geometry: a dense engine executes 4:4 only";
    if (config->sparse && config->minSupportedN != 1 &&
        config->minSupportedN != 2)
        return "engine geometry: sparse minSupportedN must be 1 or 2";

    if (space.maxAreaUnits) {
        const auto physical = engine::estimatePhysical(*config);
        if (physical.areaUnits > *space.maxAreaUnits) {
            std::ostringstream reason;
            reason << "area budget: " << physical.areaUnits
                   << " units exceeds " << *space.maxAreaUnits;
            return reason.str();
        }
    }
    return std::nullopt;
}

namespace {

/** The tile-compute instruction an executed pattern N:4 issues. */
isa::Instruction
computeInstruction(u32 executed_n, u32 c_slot)
{
    const auto c = isa::treg(static_cast<u8>(5 + c_slot));
    const auto a = isa::treg(4);
    switch (executed_n) {
      case 4:
        return isa::makeTileGemm(c, a, isa::treg(0));
      case 2:
        return isa::makeTileSpmmU(c, a, isa::ureg(0));
      default:
        return isa::makeTileSpmmV(c, a, isa::vreg(0));
    }
}

/**
 * Steady-state engine cycles one k-loop round of @p group compute
 * instructions takes: replay a short window of rounds on the real
 * PipelineModel (C registers rotating over tregs 5..5+group-1, the
 * accumulate chain and output forwarding exactly as the cycle model
 * schedules them) and difference the second half of the window.
 */
double
engineRoundCycles(const engine::EngineConfig &config,
                  bool output_forwarding, u32 executed_n, u32 group)
{
    engine::PipelineModel model(config, output_forwarding);
    constexpr u32 kWarmupRounds = 4;
    constexpr u32 kMeasuredRounds = 4;
    Cycles warm = 0;
    for (u32 round = 0; round < kWarmupRounds + kMeasuredRounds;
         ++round) {
        for (u32 s = 0; s < group; ++s)
            model.issue(computeInstruction(executed_n, s), 0);
        if (round + 1 == kWarmupRounds)
            warm = model.busyUntil();
    }
    return double(model.busyUntil() - warm) / kMeasuredRounds;
}

} // namespace

PrefilterEstimate
prefilterEstimate(const kernels::GemmDims &gemm,
                  const engine::EngineConfig &engine, u32 pattern_n,
                  bool output_forwarding, bool naive, u32 c_blocking,
                  const cpu::CoreConfig &core)
{
    PrefilterEstimate est;
    est.executedN = engine.effectiveN(pattern_n);
    const u32 tk = kernels::kTileForN(est.executedN);
    const kernels::GemmDims p =
        kernels::padProblem(gemm, est.executedN);
    const u64 mt = p.m / 16, nt = p.n / 16, kt = p.k / tk;
    const kernels::KernelOptions defaults;

    const u32 unroll =
        naive ? 1 : std::min<u32>(c_blocking, u32(nt ? nt : 1));
    const u64 full_groups = nt / unroll;
    const u32 remainder = u32(nt % unroll);
    const u64 groups_per_i = full_groups + (remainder ? 1 : 0);
    const bool sparse_exec = est.executedN < 4;

    // --- Instruction counts: the generator's loop structure in
    // closed form (prologue; per (i, j-group): setup + hoisted C
    // traffic; per k: A (+metadata) load and per slot a B load and a
    // compute, the naive kernel adding C load/store per compute).
    est.tileComputes = mt * nt * kt;
    const u64 a_loads = mt * groups_per_i * kt;
    const u64 md_loads = sparse_exec ? a_loads : 0;
    const u64 b_loads = mt * kt * nt;
    const u64 c_loads = naive ? est.tileComputes : mt * nt;
    const u64 c_stores = naive ? est.tileComputes : mt * nt;
    est.tileLoads = a_loads + md_loads + b_loads + c_loads;
    est.tileStores = c_stores;
    const u64 tile_ops =
        est.tileLoads + est.tileStores + est.tileComputes;
    const u64 loop_ends = mt * groups_per_i * (kt + 1) + mt;
    const u64 scalars = defaults.prologueAlu +
                        defaults.prologueAlu / 2 +
                        mt * groups_per_i * defaults.tileSetupAlu +
                        tile_ops * defaults.scalarOpsPerTileOp +
                        loop_ends * defaults.loopOverheadAlu;
    est.instructions = scalars + loop_ends + tile_ops;

    // --- Engine occupancy (engine cycles -> core cycles).  The
    // optimized kernel's steady state comes from the PipelineModel
    // window; the naive kernel's C register is renamed by the
    // per-iteration C load, so its chain is compute -> store -> load
    // -> compute: one isolated latency plus the L1 round trip.
    const bool of_effective = output_forwarding && engine.sparse;
    const auto instr = computeInstruction(est.executedN, 0);
    engine::PipelineModel stage_model(engine, of_effective);
    const auto stages = stage_model.stages(instr);
    double engine_cycles;
    if (naive) {
        const double round =
            double(stages.total()) +
            2.0 * double(core.cache.l1Latency) /
                core.engineClockDivider;
        engine_cycles = double(mt * nt * kt) * round;
    } else {
        engine_cycles =
            double(mt * kt) *
            (double(full_groups) *
                 engineRoundCycles(engine, of_effective,
                                   est.executedN, unroll) +
             (remainder ? engineRoundCycles(engine, of_effective,
                                            est.executedN, remainder)
                        : 0.0));
    }
    engine_cycles += double(stages.total()); // fill/drain tail
    est.engineBoundCoreCycles =
        engine_cycles * core.engineClockDivider;

    // --- Core-side bounds: retire width, scalar ALU ports, LSU
    // ports for the tile memory traffic.
    const double retire =
        double(est.instructions) / core.retireWidth;
    const double alu = double(scalars) / core.numAlus;
    const double lsu = double(est.tileLoads + est.tileStores) /
                       core.numLsuPorts;
    est.frontendBoundCoreCycles = std::max({retire, alu, lsu});

    est.estCoreCycles = std::max(est.engineBoundCoreCycles,
                                 est.frontendBoundCoreCycles) +
                        core.frontEndDepth;
    est.estCyclesPerMac =
        est.estCoreCycles / double(gemm.macs() ? gemm.macs() : 1);
    est.areaUnits = engine::estimatePhysical(engine).areaUnits;
    return est;
}

std::vector<engine::EngineConfig>
candidateEngineConfigs()
{
    // Geometries the builtin registry already covers, as
    // (sparse, alpha, beta, minN) tuples.
    const auto covered = [](bool sparse, u32 alpha, u32 beta,
                            u32 min_n) {
        if (!sparse)
            return (alpha == 1 && beta == 1) ||
                   (alpha == 1 && beta == 2) ||
                   (alpha == 16 && beta == 1);
        if (beta != 2)
            return false;
        const bool table_alpha = alpha == 1 || alpha == 2 ||
                                 alpha == 4 || alpha == 8 ||
                                 alpha == 16;
        if (min_n == 1)
            return table_alpha; // VEGETA-S-alpha-2 rows
        return alpha == 1 && min_n == 2; // the STC-like config
    };

    std::vector<engine::EngineConfig> candidates;
    const u32 alphas[] = {1, 2, 4, 8, 16};

    // Dense sweep: beta over the divisors of kMacsPerOutput (Nrows =
    // 32/beta stays integral); Ncols = 16/alpha is integral for every
    // alpha in the sweep, preserving the 512-MAC invariant.
    const u32 betas[] = {1, 2, 4, 8, 16, 32};
    for (const u32 beta : betas) {
        for (const u32 alpha : alphas) {
            if (covered(false, alpha, beta, 4))
                continue;
            engine::EngineConfig config;
            config.name = "CAND-D-" + std::to_string(alpha) + "-" +
                          std::to_string(beta);
            config.sparse = false;
            config.alpha = alpha;
            config.beta = beta;
            config.minSupportedN = 4;
            config.priorWorkLabel = "tuner candidate";
            candidates.push_back(std::move(config));
        }
    }

    // Sparse sweep: the paper fixes beta = M/2 = 2 (Section V-A);
    // minSupportedN = 2 generalizes the STC-like restriction to
    // every alpha.
    for (const u32 min_n : {1u, 2u}) {
        for (const u32 alpha : alphas) {
            if (covered(true, alpha, 2, min_n))
                continue;
            engine::EngineConfig config;
            config.name = "CAND-S-" + std::to_string(alpha) + "-2";
            if (min_n == 2)
                config.name += "-N2";
            config.sparse = true;
            config.alpha = alpha;
            config.beta = 2;
            config.minSupportedN = min_n;
            config.priorWorkLabel = "tuner candidate";
            candidates.push_back(std::move(config));
        }
    }
    return candidates;
}

} // namespace vegeta::sim
