#include "sim/disk_cache.hpp"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace vegeta::sim {

namespace {

/** Record fields, in file order (after the key, with checksum). */
constexpr std::size_t kFieldCount = 15;

/** FNV-1a over a record's pre-checksum text. */
u64
recordChecksum(const std::string &text)
{
    u64 hash = 0xcbf29ce484222325ull;
    for (const char c : text)
        hash = (hash ^ static_cast<unsigned char>(c)) *
               0x100000001b3ull;
    return hash;
}

/** Strict u64 parse: decimal digits only, no sign, no garbage. */
bool
parseU64Field(const std::string &text, u64 *out)
{
    if (text.empty() || text.size() > 20)
        return false;
    u64 value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        const u64 next = value * 10 + static_cast<u64>(c - '0');
        if (next < value)
            return false;
        value = next;
    }
    *out = value;
    return true;
}

/** Strict hex u64 parse (the macUtilization bit pattern). */
bool
parseHexField(const std::string &text, u64 *out)
{
    if (text.empty() || text.size() > 16)
        return false;
    u64 value = 0;
    for (const char c : text) {
        u64 digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<u64>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<u64>(c - 'a') + 10;
        else
            return false;
        value = (value << 4) | digit;
    }
    *out = value;
    return true;
}

std::vector<std::string>
splitTabs(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (;;) {
        const std::size_t tab = line.find('\t', start);
        if (tab == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

/** One record as a line: key + result fields, tab-separated. */
std::string
formatRecord(const std::string &key, const SimulationResult &r)
{
    std::ostringstream os;
    char util[24];
    std::snprintf(util, sizeof(util), "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<u64>(r.macUtilization)));
    os << key << '\t' << r.workload << '\t' << r.engine << '\t'
       << r.layerN << '\t' << r.executedN << '\t'
       << (r.outputForwarding ? 1 : 0) << '\t' << r.kernel << '\t'
       << r.coreCycles << '\t' << r.instructions << '\t'
       << r.engineInstructions << '\t' << r.tileComputes << '\t'
       << util << '\t' << r.cacheHits << '\t' << r.cacheMisses;
    // Trailing checksum: bit rot inside a value field must reject
    // the record (a miss), never surface as a wrong cached result.
    char sum[24];
    std::snprintf(sum, sizeof(sum), "%016llx",
                  static_cast<unsigned long long>(
                      recordChecksum(os.str())));
    os << '\t' << sum;
    return os.str();
}

/** Parse one record line; false (and no side effects) on corruption. */
bool
parseRecord(const std::string &line, std::string *key,
            SimulationResult *result)
{
    const auto fields = splitTabs(line);
    if (fields.size() != kFieldCount || fields[0].empty())
        return false;

    u64 checksum;
    if (!parseHexField(fields[14], &checksum))
        return false;
    const std::size_t body_len =
        line.size() - fields[14].size() - 1; // minus "\t<sum>"
    if (checksum != recordChecksum(line.substr(0, body_len)))
        return false;

    u64 layer_n, executed_n, of, core_cycles, instructions;
    u64 engine_instructions, tile_computes, util_bits, hits, misses;
    if (!parseU64Field(fields[3], &layer_n) ||
        !parseU64Field(fields[4], &executed_n) ||
        !parseU64Field(fields[5], &of) || of > 1 ||
        !parseU64Field(fields[7], &core_cycles) ||
        !parseU64Field(fields[8], &instructions) ||
        !parseU64Field(fields[9], &engine_instructions) ||
        !parseU64Field(fields[10], &tile_computes) ||
        !parseHexField(fields[11], &util_bits) ||
        !parseU64Field(fields[12], &hits) ||
        !parseU64Field(fields[13], &misses))
        return false;
    if (layer_n > 0xffffffffULL || executed_n > 0xffffffffULL)
        return false;

    *key = fields[0];
    result->workload = fields[1];
    result->engine = fields[2];
    result->layerN = static_cast<u32>(layer_n);
    result->executedN = static_cast<u32>(executed_n);
    result->outputForwarding = of != 0;
    result->kernel = fields[6];
    result->coreCycles = core_cycles;
    result->instructions = instructions;
    result->engineInstructions = engine_instructions;
    result->tileComputes = tile_computes;
    result->macUtilization = std::bit_cast<double>(util_bits);
    result->cacheHits = hits;
    result->cacheMisses = misses;
    return true;
}

} // namespace

const char *
DiskResultCache::formatHeader()
{
    return "vegeta-result-cache v1";
}

DiskResultCache::DiskResultCache(const std::string &directory)
    : directory_(directory)
{
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    file_ = (std::filesystem::path(directory_) / "results.vgc")
                .string();
    ok_ = !ec && std::filesystem::is_directory(directory_);
    if (ok_)
        load();
}

void
DiskResultCache::load()
{
    std::ifstream is(file_);
    if (!is)
        return; // no file yet: an empty cache, created on insert

    std::string line;
    if (!std::getline(is, line) || line != formatHeader()) {
        // Unknown or future format: never guess at its records.  The
        // file is rewritten wholesale on the next insert.
        version_mismatch_ = true;
        needs_rewrite_ = true;
        return;
    }
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::string key;
        SimulationResult result;
        if (!parseRecord(line, &key, &result)) {
            ++rejected_; // truncated tail or bit rot: a miss, not an
            continue;    // error -- the entry just re-simulates
        }
        if (entries_.emplace(std::move(key), std::move(result)).second)
            ++loaded_;
    }
}

std::optional<SimulationResult>
DiskResultCache::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
DiskResultCache::insert(const std::string &key,
                        const SimulationResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_.emplace(key, result).second)
        return;
    ++insertions_;
    if (needs_rewrite_) {
        if (rewriteLocked())
            needs_rewrite_ = false;
    } else {
        appendLocked(key, result);
    }
}

bool
DiskResultCache::rewriteLocked()
{
    std::ofstream os(file_, std::ios::trunc);
    if (!os)
        return false;
    os << formatHeader() << '\n';
    for (const auto &[key, result] : entries_)
        os << formatRecord(key, result) << '\n';
    os.flush();
    return static_cast<bool>(os);
}

bool
DiskResultCache::appendLocked(const std::string &key,
                              const SimulationResult &result)
{
    const bool fresh = !std::filesystem::exists(file_);
    std::ofstream os(file_, std::ios::app);
    if (!os)
        return false;
    if (fresh)
        os << formatHeader() << '\n';
    os << formatRecord(key, result) << '\n';
    os.flush();
    return static_cast<bool>(os);
}

std::size_t
DiskResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
DiskResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    // If truncation fails the stale file still holds every record:
    // keep the rewrite pending so the next insert retries it rather
    // than appending to (and thereby resurrecting) the old contents.
    needs_rewrite_ = !rewriteLocked();
}

DiskCacheStats
DiskResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    DiskCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.insertions = insertions_;
    stats.loaded = loaded_;
    stats.rejected = rejected_;
    stats.versionMismatch = version_mismatch_;
    return stats;
}

} // namespace vegeta::sim
