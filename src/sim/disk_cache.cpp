#include "sim/disk_cache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "sim/serial.hpp"
#include "sim/telemetry.hpp"

namespace vegeta::sim {

namespace {

// Disk-cache traffic counters (distinct from the session-level
// probe counters: these count every call into THIS cache object).
void
countCacheHit()
{
    static const telemetry::MetricId id =
        telemetry::counterId("cache.disk.hit");
    telemetry::add(id, 1);
}

void
countCacheMiss()
{
    static const telemetry::MetricId id =
        telemetry::counterId("cache.disk.miss");
    telemetry::add(id, 1);
}

void
countCacheInsert()
{
    static const telemetry::MetricId id =
        telemetry::counterId("cache.disk.insert");
    telemetry::add(id, 1);
}

/** Record type tags, the first field of every v2 line. */
constexpr const char *kSimTag = "S";
constexpr const char *kAnaTag = "A";

/** One simulation record as a line: tag, key, result, checksum. */
std::string
formatSimRecord(const std::string &key, const SimulationResult &r)
{
    serial::FieldWriter writer;
    writer.raw(kSimTag).str(key);
    serial::appendSimulationResult(writer, r);
    return writer.line();
}

/** One analytical record as a line: tag, key, result, checksum. */
std::string
formatAnaRecord(const std::string &key, const AnalyticalResult &r)
{
    serial::FieldWriter writer;
    writer.raw(kAnaTag).str(key);
    serial::appendAnalyticalResult(writer, r);
    return writer.line();
}

/**
 * RAII exclusive flock over the backing file, creating it as needed.
 * Concurrent writer processes (pool workers sharing one cache dir)
 * serialize on this lock, so records are appended whole -- the
 * explicit spelling of the "concurrent first-insert-wins appends are
 * safe" guarantee.
 */
class LockedFile
{
  public:
    explicit LockedFile(const std::string &path)
    {
        fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
        if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~LockedFile()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    bool ok() const { return fd_ >= 0; }

    /** Size of the locked file (0 on error). */
    u64 size() const
    {
        struct stat st = {};
        if (::fstat(fd_, &st) != 0)
            return 0;
        return static_cast<u64>(st.st_size);
    }

    /** Append the whole text at the end (short writes retried). */
    bool append(const std::string &text)
    {
        if (::lseek(fd_, 0, SEEK_END) < 0)
            return false;
        return writeAll(text);
    }

    /** Replace the whole contents with text. */
    bool replace(const std::string &text)
    {
        if (::ftruncate(fd_, 0) != 0 ||
            ::lseek(fd_, 0, SEEK_SET) < 0)
            return false;
        return writeAll(text);
    }

  private:
    bool writeAll(const std::string &text)
    {
        const char *data = text.data();
        std::size_t left = text.size();
        while (left > 0) {
            const ssize_t n = ::write(fd_, data, left);
            if (n <= 0)
                return false;
            data += n;
            left -= static_cast<std::size_t>(n);
        }
        return true;
    }

    int fd_ = -1;
};

} // namespace

const char *
DiskResultCache::formatHeader()
{
    return "vegeta-result-cache v2";
}

DiskResultCache::DiskResultCache(const std::string &directory)
    : directory_(directory)
{
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    file_ = (std::filesystem::path(directory_) / "results.vgc")
                .string();
    prune_note_file_ =
        (std::filesystem::path(directory_) / "last_prune.vgc")
            .string();
    ok_ = !ec && std::filesystem::is_directory(directory_);
    if (ok_) {
        load();
        loadLastPrune();
    }
}

void
DiskResultCache::loadLastPrune()
{
    std::ifstream is(prune_note_file_);
    if (!is)
        return; // never pruned: 0
    std::string line;
    if (!std::getline(is, line))
        return;
    auto fields = serial::checkedFields(line);
    if (!fields)
        return; // corrupt note degrades to 0, never to an error
    serial::FieldReader reader(std::move(*fields));
    if (reader.raw() != "lastprune")
        return;
    const u64 bytes = reader.num();
    if (reader.done())
        last_prune_bytes_ = bytes;
}

void
DiskResultCache::saveLastPruneLocked(u64 reclaimed)
{
    last_prune_bytes_ = reclaimed;
    std::ofstream os(prune_note_file_, std::ios::trunc);
    if (!os)
        return; // stats fall back to this process's value
    serial::FieldWriter writer;
    writer.raw("lastprune").num(reclaimed);
    os << writer.line() << '\n';
}

void
DiskResultCache::load()
{
    std::ifstream is(file_);
    if (!is)
        return; // no file yet: an empty cache, created on insert

    std::string line;
    if (!std::getline(is, line) || line != formatHeader()) {
        // Unknown, old, or future format: never guess at its
        // records.  The file is rewritten wholesale on the next
        // insert.
        version_mismatch_ = true;
        needs_rewrite_ = true;
        return;
    }
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        auto fields = serial::checkedFields(line);
        if (!fields) {
            ++rejected_; // truncated tail or bit rot: a miss, not an
            continue;    // error -- the entry just re-simulates
        }
        serial::FieldReader reader(std::move(*fields));
        const std::string tag = reader.raw();
        const std::string key = reader.str();
        if (!reader.ok() || key.empty()) {
            ++rejected_;
            continue;
        }
        if (tag == kSimTag) {
            SimulationResult result;
            if (!serial::readSimulationResult(reader, &result) ||
                !reader.done()) {
                ++rejected_;
                continue;
            }
            if (entries_.emplace(key, std::move(result)).second) {
                order_.emplace_back(RecordKind::Simulation, key);
                ++loaded_;
            }
        } else if (tag == kAnaTag) {
            AnalyticalResult result;
            if (!serial::readAnalyticalResult(reader, &result) ||
                !reader.done()) {
                ++rejected_;
                continue;
            }
            if (analyses_.emplace(key, std::move(result)).second) {
                order_.emplace_back(RecordKind::Analysis, key);
                ++loaded_;
            }
        } else {
            ++rejected_;
        }
    }
}

std::optional<SimulationResult>
DiskResultCache::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        countCacheMiss();
        return std::nullopt;
    }
    ++hits_;
    countCacheHit();
    return it->second;
}

void
DiskResultCache::insert(const std::string &key,
                        const SimulationResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!entries_.emplace(key, result).second)
        return;
    order_.emplace_back(RecordKind::Simulation, key);
    ++insertions_;
    countCacheInsert();
    if (needs_rewrite_) {
        if (rewriteLocked())
            needs_rewrite_ = false;
    } else {
        appendRecordLocked(formatSimRecord(key, result));
    }
}

std::optional<AnalyticalResult>
DiskResultCache::findAnalysis(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = analyses_.find(key);
    if (it == analyses_.end()) {
        ++misses_;
        countCacheMiss();
        return std::nullopt;
    }
    ++hits_;
    countCacheHit();
    return it->second;
}

void
DiskResultCache::insertAnalysis(const std::string &key,
                                const AnalyticalResult &result)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!analyses_.emplace(key, result).second)
        return;
    order_.emplace_back(RecordKind::Analysis, key);
    ++insertions_;
    countCacheInsert();
    if (needs_rewrite_) {
        if (rewriteLocked())
            needs_rewrite_ = false;
    } else {
        appendRecordLocked(formatAnaRecord(key, result));
    }
}

std::string
DiskResultCache::formatEntryLocked(RecordKind kind,
                                   const std::string &key) const
{
    if (kind == RecordKind::Simulation)
        return formatSimRecord(key, entries_.at(key));
    return formatAnaRecord(key, analyses_.at(key));
}

bool
DiskResultCache::rewriteLocked()
{
    std::string text = formatHeader();
    text += '\n';
    for (const auto &[kind, key] : order_) {
        text += formatEntryLocked(kind, key);
        text += '\n';
    }
    LockedFile file(file_);
    return file.ok() && file.replace(text);
}

bool
DiskResultCache::appendRecordLocked(const std::string &record)
{
    LockedFile file(file_);
    if (!file.ok())
        return false;
    // The header check happens under the lock, so of N concurrent
    // writer processes racing to create the file exactly one writes
    // the header.
    std::string text;
    if (file.size() == 0)
        text = std::string(formatHeader()) + '\n';
    text += record;
    text += '\n';
    return file.append(text);
}

std::size_t
DiskResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size() + analyses_.size();
}

std::vector<std::pair<std::string, SimulationResult>>
DiskResultCache::simulationEntries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, SimulationResult>> out;
    out.reserve(entries_.size());
    // Walk the append order, not the hash map: the harvest must be
    // deterministic for a given cache file so cost-model training
    // (and therefore tuner ranking) is reproducible.
    for (const auto &[kind, key] : order_) {
        if (kind != RecordKind::Simulation)
            continue;
        const auto it = entries_.find(key);
        if (it != entries_.end())
            out.emplace_back(key, it->second);
    }
    return out;
}

void
DiskResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    analyses_.clear();
    order_.clear();
    // If truncation fails the stale file still holds every record:
    // keep the rewrite pending so the next insert retries it rather
    // than appending to (and thereby resurrecting) the old contents.
    needs_rewrite_ = !rewriteLocked();
}

DiskCachePrune
DiskResultCache::prune(std::optional<u64> max_bytes,
                       std::optional<u64> max_entries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    DiskCachePrune pruned;
    const u64 bytes_before = fileBytesLocked();

    // Walk newest-to-oldest accumulating record sizes; the kept set
    // is the longest most-recent suffix fitting both budgets.
    const u64 header_bytes =
        static_cast<u64>(std::string(formatHeader()).size()) + 1;
    u64 bytes = header_bytes;
    std::size_t keep_from = order_.size();
    while (keep_from > 0) {
        const auto &[kind, key] = order_[keep_from - 1];
        const u64 record_bytes =
            static_cast<u64>(formatEntryLocked(kind, key).size()) + 1;
        const u64 kept_count = order_.size() - keep_from + 1;
        if (max_entries && kept_count > *max_entries)
            break;
        if (max_bytes && bytes + record_bytes > *max_bytes)
            break;
        bytes += record_bytes;
        --keep_from;
    }

    pruned.dropped = keep_from;
    pruned.kept = order_.size() - keep_from;
    for (std::size_t i = 0; i < keep_from; ++i) {
        const auto &[kind, key] = order_[i];
        if (kind == RecordKind::Simulation)
            entries_.erase(key);
        else
            analyses_.erase(key);
    }
    order_.erase(order_.begin(),
                 order_.begin() +
                     static_cast<std::ptrdiff_t>(keep_from));
    // Compact also when nothing was dropped but the physical file is
    // bigger than the kept set -- duplicate lines from concurrent
    // appenders or rejected records would otherwise keep the file
    // over a byte budget the entries themselves fit in.
    if (keep_from > 0 || fileBytesLocked() > bytes)
        needs_rewrite_ = !rewriteLocked();
    pruned.fileBytes = fileBytesLocked();
    pruned.reclaimedBytes = bytes_before > pruned.fileBytes
                                ? bytes_before - pruned.fileBytes
                                : 0;
    saveLastPruneLocked(pruned.reclaimedBytes);
    return pruned;
}

DiskCacheMerge
DiskResultCache::mergeFrom(const DiskResultCache &source)
{
    // Snapshot the source under ITS lock, then merge under ours --
    // the two locks are never held together, so two caches merging
    // from each other cannot deadlock.
    std::vector<std::pair<RecordKind, std::string>> src_order;
    std::unordered_map<std::string, SimulationResult> src_entries;
    std::unordered_map<std::string, AnalyticalResult> src_analyses;
    {
        std::lock_guard<std::mutex> lock(source.mutex_);
        src_order = source.order_;
        src_entries = source.entries_;
        src_analyses = source.analyses_;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    DiskCacheMerge merge;
    std::string appended;
    for (const auto &[kind, key] : src_order) {
        bool inserted = false;
        if (kind == RecordKind::Simulation) {
            const auto it = src_entries.find(key);
            if (it == src_entries.end())
                continue;
            inserted = entries_.emplace(key, it->second).second;
        } else {
            const auto it = src_analyses.find(key);
            if (it == src_analyses.end())
                continue;
            inserted = analyses_.emplace(key, it->second).second;
        }
        if (!inserted) {
            ++merge.skipped;
            continue;
        }
        order_.emplace_back(kind, key);
        ++merge.added;
        ++insertions_;
        appended += formatEntryLocked(kind, key);
        appended += '\n';
    }
    if (merge.added == 0)
        return merge;
    if (needs_rewrite_) {
        if (rewriteLocked())
            needs_rewrite_ = false;
        return merge;
    }
    LockedFile file(file_);
    if (file.ok()) {
        std::string text;
        if (file.size() == 0)
            text = std::string(formatHeader()) + '\n';
        text += appended;
        file.append(text);
    }
    return merge;
}

u64
DiskResultCache::fileBytesLocked() const
{
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(file_, ec);
    return ec ? 0 : static_cast<u64>(bytes);
}

DiskCacheStats
DiskResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    DiskCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.insertions = insertions_;
    stats.loaded = loaded_;
    stats.rejected = rejected_;
    stats.versionMismatch = version_mismatch_;
    stats.simulationEntries = entries_.size();
    stats.analysisEntries = analyses_.size();
    stats.fileBytes = fileBytesLocked();
    stats.lastPruneBytes = last_prune_bytes_;
    return stats;
}

} // namespace vegeta::sim
