/**
 * @file
 * Parallel request sweeps.
 *
 * The paper's evaluation is a grid: engines x workloads x layer-wise
 * patterns x OF variants (Figure 13 alone is 12 x 9 x 3 with sparse
 * OF doubling).  SweepRunner executes any request batch on a pool of
 * worker threads; each request is independent and results land in
 * their request's slot, so the output order -- and every value in it
 * -- is identical for 1 thread and N threads.
 *
 * Grid helpers build the paper's standard batches so callers never
 * hand-roll the nested loops.
 */

#ifndef VEGETA_SIM_SWEEP_HPP
#define VEGETA_SIM_SWEEP_HPP

#include "sim/simulator.hpp"

namespace vegeta::sim {

/** Thread-pooled executor for independent request batches. */
class SweepRunner
{
  public:
    /**
     * @param simulator  facade to run requests on (borrowed; must
     *                   outlive the runner)
     * @param threads    worker count; 0 picks the hardware
     *                   concurrency
     */
    explicit SweepRunner(const Simulator &simulator, u32 threads = 0);

    /**
     * Run every request; `results[i]` corresponds to `requests[i]`.
     * Requests that repeat within the batch (equal canonical cache
     * keys) simulate once and fan their result out to every duplicate
     * slot.  Deterministic: the batch output is bit-for-bit identical
     * for any thread count, with or without a ResultCache attached to
     * the simulator.
     */
    std::vector<SimulationResult>
    run(const std::vector<SimulationRequest> &requests) const;

    u32 threads() const { return threads_; }

  private:
    const Simulator &simulator_;
    u32 threads_;
};

/**
 * The Figure 13 grid over this simulator's registries: for each
 * workload x pattern x engine, one no-OF request, plus an OF request
 * for sparse engines (matching the paper's evaluated variants).
 * Row-major in (workload, pattern, engine) order.
 */
std::vector<SimulationRequest>
figure13Grid(const Simulator &simulator,
             const std::vector<std::string> &workload_names,
             const std::vector<std::string> &engine_names,
             const std::vector<u32> &patterns = {4, 2, 1});

/**
 * Geometric-mean speed-up of `engine_name` (with optional OF) over
 * `baseline_name` across the named workloads at one layer pattern --
 * the abstract's 1.09x / 2.20x / 3.74x numbers when the baseline is
 * the RASA-DM dense engine.  Both sides of every ratio run through
 * the (parallel) sweep.
 */
double geomeanSpeedup(const Simulator &simulator,
                      const std::vector<std::string> &workload_names,
                      u32 layer_n, const std::string &engine_name,
                      bool output_forwarding,
                      const std::string &baseline_name =
                          "VEGETA-D-1-2",
                      u32 threads = 0);

} // namespace vegeta::sim

#endif // VEGETA_SIM_SWEEP_HPP
