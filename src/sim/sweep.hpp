/**
 * @file
 * Deprecated shim: parallel request sweeps are now Session::runBatch.
 *
 * SweepRunner predates the Session/Job API; it is kept because its
 * construct-then-run shape is pinned by tests and convenient for
 * callers that sweep the same session repeatedly.  It adds nothing
 * over Session::runBatch -- run() forwards straight to it, so the
 * determinism and dedupe guarantees are the Session's.  The Figure 13
 * grid helpers moved to sim/session.hpp (re-exported here).
 */

#ifndef VEGETA_SIM_SWEEP_HPP
#define VEGETA_SIM_SWEEP_HPP

#include "sim/deprecated.hpp"
#include "sim/simulator.hpp"

VEGETA_SIM_DEPRECATION_NOTE(
    "sim/sweep.hpp is a deprecated shim: SweepRunner forwards to "
    "Session::runBatch (define VEGETA_SIM_SILENCE_DEPRECATION to "
    "silence)")

namespace vegeta::sim {

/** Deprecated thread-pooled executor; prefer Session::runBatch. */
class SweepRunner
{
  public:
    /**
     * @param session  facade to run requests on (borrowed; must
     *                 outlive the runner)
     * @param threads  worker count; 0 picks the hardware
     *                 concurrency
     */
    explicit SweepRunner(const Session &session, u32 threads = 0);

    /**
     * Run every request; `results[i]` corresponds to `requests[i]`.
     * Forwards to Session::runBatch: deduplicated, deterministic,
     * bit-for-bit identical for any thread count.
     */
    std::vector<SimulationResult>
    run(const std::vector<SimulationRequest> &requests) const;

    u32 threads() const { return threads_; }

  private:
    const Session &session_;
    u32 threads_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_SWEEP_HPP
