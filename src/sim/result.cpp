#include "sim/result.hpp"

#include <cstdio>
#include <ostream>

namespace vegeta::sim {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

Table
buildTable(const std::vector<SimulationResult> &results)
{
    Table table({"workload", "engine", "pattern", "executed", "OF",
                 "kernel", "core_cycles", "instructions",
                 "engine_instrs", "tile_computes", "mac_util",
                 "runtime_ms"});
    for (const auto &r : results) {
        table.row()
            .cell(r.workload)
            .cell(r.engine)
            .cell(std::to_string(r.layerN) + ":4")
            .cell(std::to_string(r.executedN) + ":4")
            .cell(r.outputForwarding ? "on" : "off")
            .cell(r.kernel)
            .cell(static_cast<unsigned long long>(r.coreCycles))
            .cell(static_cast<unsigned long long>(r.instructions))
            .cell(static_cast<unsigned long long>(
                r.engineInstructions))
            .cell(static_cast<unsigned long long>(r.tileComputes))
            .cell(r.macUtilization, 4)
            .cell(r.runtimeMs(), 4);
    }
    return table;
}

} // namespace

double
SimulationResult::runtimeMs() const
{
    return static_cast<double>(coreCycles) / 2e9 * 1e3;
}

Table
resultsTable(const std::vector<SimulationResult> &results)
{
    return buildTable(results);
}

void
writeCsv(std::ostream &os,
         const std::vector<SimulationResult> &results)
{
    buildTable(results).printCsv(os);
}

void
writeJson(std::ostream &os,
          const std::vector<SimulationResult> &results)
{
    os << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "  {\"workload\": \"" << jsonEscape(r.workload)
           << "\", \"engine\": \"" << jsonEscape(r.engine)
           << "\", \"pattern_n\": " << r.layerN
           << ", \"executed_n\": " << r.executedN
           << ", \"output_forwarding\": "
           << (r.outputForwarding ? "true" : "false")
           << ", \"kernel\": \"" << jsonEscape(r.kernel)
           << "\", \"core_cycles\": " << r.coreCycles
           << ", \"instructions\": " << r.instructions
           << ", \"engine_instructions\": " << r.engineInstructions
           << ", \"tile_computes\": " << r.tileComputes
           << ", \"mac_utilization\": "
           << formatDouble(r.macUtilization, 6)
           << ", \"cache_hits\": " << r.cacheHits
           << ", \"cache_misses\": " << r.cacheMisses
           << ", \"runtime_ms\": " << formatDouble(r.runtimeMs(), 6)
           << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "]\n";
}

} // namespace vegeta::sim
