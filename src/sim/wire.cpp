#include "sim/wire.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "sim/job_io.hpp"
#include "sim/serial.hpp"

namespace vegeta::sim::wire {

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char *kMagic = "vgw1";

/** Longest legal header line (magic + type + len + checksum + \n). */
constexpr std::size_t kMaxHeaderBytes = 64;

/** poll() until fd is readable or the deadline passes. */
bool
waitReadable(int fd, const Clock::time_point *deadline,
             std::string *error)
{
    for (;;) {
        int timeout_ms = -1;
        if (deadline) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(*deadline - Clock::now());
            if (left.count() <= 0) {
                if (error)
                    *error = "read timed out";
                return false;
            }
            timeout_ms = static_cast<int>(left.count());
        }
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return true;
        if (rc == 0) {
            if (error)
                *error = "read timed out";
            return false;
        }
        if (errno == EINTR)
            continue;
        if (error)
            *error = std::string("poll failed: ") +
                     std::strerror(errno);
        return false;
    }
}

/**
 * Read exactly @p size bytes.  Returns the byte count read; a short
 * count means EOF (0 bytes on a clean close), negative means error
 * or timeout.
 */
ssize_t
readFull(int fd, char *data, std::size_t size,
         const Clock::time_point *deadline, std::string *error)
{
    std::size_t got = 0;
    while (got < size) {
        if (!waitReadable(fd, deadline, error))
            return -1;
        const ssize_t n = ::read(fd, data + got, size - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("read failed: ") +
                         std::strerror(errno);
            return -1;
        }
        if (n == 0)
            return static_cast<ssize_t>(got);
        got += static_cast<std::size_t>(n);
    }
    return static_cast<ssize_t>(got);
}

/** Write all bytes; sockets use send(MSG_NOSIGNAL), pipes write(). */
bool
writeFull(int fd, const char *data, std::size_t size,
          std::string *error)
{
    bool use_send = true;
    while (size > 0) {
        ssize_t n;
        if (use_send) {
            n = ::send(fd, data, size, MSG_NOSIGNAL);
            if (n < 0 && errno == ENOTSOCK) {
                use_send = false;
                continue;
            }
        } else {
            n = ::write(fd, data, size);
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("write failed: ") +
                         std::strerror(errno);
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
parseFrameType(const std::string &token, FrameType *type)
{
    for (const FrameType t :
         {FrameType::Hello, FrameType::HelloAck, FrameType::Batch,
          FrameType::Results, FrameType::Stats, FrameType::Error,
          FrameType::Bye}) {
        if (token == frameTypeName(t)) {
            *type = t;
            return true;
        }
    }
    return false;
}

} // namespace

const char *
frameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::Hello:
        return "hello";
      case FrameType::HelloAck:
        return "helloack";
      case FrameType::Batch:
        return "batch";
      case FrameType::Results:
        return "results";
      case FrameType::Stats:
        return "stats";
      case FrameType::Error:
        return "error";
      case FrameType::Bye:
        return "bye";
    }
    return "error";
}

std::string
helloPayload()
{
    // The wire revision AND both record-format versions: bumping any
    // persistent format automatically fails old<->new handshakes.
    std::string payload = "vegeta-wire v1";
    payload += '\t';
    payload += jobFileHeader();
    payload += '\t';
    payload += resultFileHeader();
    return payload;
}

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    std::string frame = kMagic;
    frame += ' ';
    frame += frameTypeName(type);
    frame += ' ';
    frame += std::to_string(payload.size());
    frame += ' ';
    frame += serial::hex16(serial::checksum(payload));
    frame += '\n';
    frame += payload;
    return frame;
}

bool
writeFrame(int fd, FrameType type, const std::string &payload,
           std::string *error)
{
    const std::string frame = encodeFrame(type, payload);
    return writeFull(fd, frame.data(), frame.size(), error);
}

bool
readFrame(int fd, Frame *frame, int timeout_ms, std::string *error,
          bool *clean_eof)
{
    if (clean_eof)
        *clean_eof = false;
    Clock::time_point deadline_storage;
    const Clock::time_point *deadline = nullptr;
    if (timeout_ms >= 0) {
        deadline_storage =
            Clock::now() + std::chrono::milliseconds(timeout_ms);
        deadline = &deadline_storage;
    }

    auto fail = [&](const std::string &reason) {
        if (error)
            *error = reason;
        return false;
    };

    // Header: byte-at-a-time up to the newline (it is tiny and this
    // never reads past the frame into the next one).
    std::string header;
    for (;;) {
        char c;
        const ssize_t n = readFull(fd, &c, 1, deadline, error);
        if (n < 0)
            return false;
        if (n == 0) {
            if (header.empty() && clean_eof)
                *clean_eof = true;
            return fail(header.empty() ? "connection closed"
                                       : "truncated frame header");
        }
        if (c == '\n')
            break;
        header += c;
        if (header.size() > kMaxHeaderBytes)
            return fail("oversized frame header");
    }

    // Strict "vgw1 <type> <len> <checksum>" parse.
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= header.size()) {
        const std::size_t space = header.find(' ', start);
        if (space == std::string::npos) {
            tokens.push_back(header.substr(start));
            break;
        }
        tokens.push_back(header.substr(start, space - start));
        start = space + 1;
    }
    if (tokens.size() != 4 || tokens[0] != kMagic)
        return fail("malformed frame header");
    FrameType type;
    if (!parseFrameType(tokens[1], &type))
        return fail("unknown frame type: " + tokens[1]);
    u64 length = 0;
    if (!serial::parseU64(tokens[2], &length) ||
        length > kMaxFramePayload)
        return fail("bad frame length");
    u64 sum = 0;
    if (tokens[3].size() != 16 ||
        !serial::parseHexU64(tokens[3], &sum))
        return fail("bad frame checksum field");

    std::string payload(length, '\0');
    if (length > 0) {
        const ssize_t n = readFull(fd, payload.data(), payload.size(),
                                   deadline, error);
        if (n < 0)
            return false;
        if (static_cast<u64>(n) != length)
            return fail("truncated frame payload");
    }
    if (serial::checksum(payload) != sum)
        return fail("frame payload checksum mismatch");

    frame->type = type;
    frame->payload = std::move(payload);
    return true;
}

} // namespace vegeta::sim::wire
