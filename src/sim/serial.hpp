/**
 * @file
 * Shared record-serialization helpers for the persistent formats.
 *
 * The persistent result cache (sim/disk_cache) and the pool shard
 * files (sim/job_io) speak the same dialect: tab-separated records,
 * one per line, strings percent-escaped so a field can never contain
 * a tab or newline, doubles round-tripped through their raw bit
 * pattern (persisted values stay bit-for-bit identical to computed
 * ones), and a trailing FNV-1a checksum per record so silent bit rot
 * is rejected instead of surfacing as a wrong value.
 *
 * Every parser here is strict by construction -- no atoi, no partial
 * reads, no sign surprises -- because these formats are the trust
 * boundary between processes: a corrupt record must degrade to a
 * miss or a clean error, never to wrong results.
 */

#ifndef VEGETA_SIM_SERIAL_HPP
#define VEGETA_SIM_SERIAL_HPP

#include <optional>
#include <string>
#include <vector>

#include "sim/analytical.hpp"
#include "sim/result.hpp"

namespace vegeta::sim::serial {

/** FNV-1a over a record's pre-checksum text. */
u64 checksum(const std::string &text);

/** Strict u64 parse: decimal digits only, no sign, no garbage. */
bool parseU64(const std::string &text, u64 *out);

/** Strict hex u64 parse (raw double bit patterns, checksums). */
bool parseHexU64(const std::string &text, u64 *out);

/** Strict i64 parse: optional leading '-', digits, no garbage. */
bool parseI64(const std::string &text, i64 *out);

/** A u64 as fixed-width 16-digit lowercase hex. */
std::string hex16(u64 value);

/** A double's raw bit pattern as hex (bit-exact round trip). */
std::string doubleBits(double value);

/** Parse a doubleBits field back (false on malformed hex). */
bool parseDoubleBits(const std::string &text, double *out);

/** Percent-escape '%', tab, newline, and CR (identity otherwise). */
std::string escape(const std::string &text);

/** Undo escape(); false on a malformed %XX sequence. */
bool unescape(const std::string &text, std::string *out);

/** Split a record line on tabs (no unescaping). */
std::vector<std::string> splitTabs(const std::string &line);

/**
 * Field-cursor over one split record: strict typed reads that fail
 * sticky-once so callers can chain reads and check ok() at the end.
 */
class FieldReader
{
  public:
    explicit FieldReader(std::vector<std::string> fields)
        : fields_(std::move(fields))
    {
    }

    bool ok() const { return ok_; }

    /** Every field consumed (a record with trailing junk is bad). */
    bool done() const { return ok_ && next_ == fields_.size(); }

    std::size_t remaining() const { return fields_.size() - next_; }

    std::string raw();
    std::string str(); ///< unescaped string field
    u64 num();         ///< strict decimal u64
    i64 signedNum();   ///< strict decimal i64
    u64 hex();         ///< strict hex u64
    double bits();     ///< double from raw bit pattern
    u32 num32();       ///< strict u64 that must fit in u32

  private:
    void fail() { ok_ = false; }

    std::vector<std::string> fields_;
    std::size_t next_ = 0;
    bool ok_ = true;
};

/**
 * Record assembler: append typed fields, then line() yields the
 * tab-joined record with its trailing checksum field.
 */
class FieldWriter
{
  public:
    FieldWriter &raw(const std::string &text);
    FieldWriter &str(const std::string &text); ///< escaped
    FieldWriter &num(u64 value);
    FieldWriter &signedNum(i64 value);
    FieldWriter &hex(u64 value);
    FieldWriter &bits(double value);

    /** The record with its checksum appended. */
    std::string line() const;

    /** The record without a checksum (for footers etc.). */
    const std::string &body() const { return body_; }

  private:
    std::string body_;
    bool first_ = true;
};

/** Append a SimulationResult's fields (13 of them) to a record. */
void appendSimulationResult(FieldWriter &writer,
                            const SimulationResult &result);

/** Read the fields appendSimulationResult wrote. */
bool readSimulationResult(FieldReader &reader,
                          SimulationResult *result);

/** Append an AnalyticalResult (variable length, count-prefixed). */
void appendAnalyticalResult(FieldWriter &writer,
                            const AnalyticalResult &result);

/** Read the fields appendAnalyticalResult wrote. */
bool readAnalyticalResult(FieldReader &reader,
                          AnalyticalResult *result);

/**
 * Verify and strip a record line's trailing checksum field; returns
 * the split pre-checksum fields, or nullopt when the line is
 * malformed or the checksum disagrees.
 */
std::optional<std::vector<std::string>>
checkedFields(const std::string &line);

} // namespace vegeta::sim::serial

#endif // VEGETA_SIM_SERIAL_HPP
