/**
 * @file
 * Process-pool sweep executor: sharded multi-process runBatch.
 *
 * Session::runBatch parallelizes over threads inside one process; the
 * ProcessPool shards one job batch over N worker *processes*, the
 * scaling regime where thread-level parallelism stops paying (per-core
 * scaling cliffs and shared-allocator/LLC contention -- "When More
 * Cores Hurts") and where the streaming replayer's flat per-process
 * memory makes workers cheap.
 *
 * The contract mirrors runBatch exactly: the merged result vector is
 * in original batch order and bit-for-bit identical to a
 * single-process run for ANY worker count.  That falls out of the
 * design:
 *
 *   - jobs are deduped by canonical jobKey, the deduped key set is
 *     sorted, and keys are dealt round-robin to workers -- the shard
 *     assignment is a pure function of the batch, never of timing;
 *   - each shard ships through a versioned, checksummed job file
 *     (sim/job_io) and comes back as a result file keyed by jobKey,
 *     with doubles as raw bit patterns;
 *   - workers attach the shared --cache-dir, so a warm pool performs
 *     zero replays and a cold pool populates the cache once across
 *     all workers (the disk cache's locked first-insert-wins append
 *     keeps concurrent writers safe).
 *
 * Workers are fork/exec of the pool's own binary re-entering through
 * a hidden `worker` argv token (simulate_cli wires this up as the
 * hidden `simulate_cli worker` subcommand; test and bench binaries
 * dispatch to poolWorkerMain from their own main()).  Worker failures
 * -- non-zero exit, corrupt or truncated shard/result files, missing
 * keys -- surface as one clean per-worker error, never as wrong or
 * silently missing results.
 */

#ifndef VEGETA_SIM_POOL_HPP
#define VEGETA_SIM_POOL_HPP

#include <string>
#include <vector>

#include "sim/job.hpp"

namespace vegeta::sim {

class Session;

/** How a ProcessPool runs one batch. */
struct PoolOptions
{
    /** Worker processes to spawn (capped at the unique-job count). */
    u32 workers = 2;

    /** Shared persistent result-cache directory ("" = no cache). */
    std::string cacheDir;

    /**
     * runBatch threads inside each worker.  0 divides the machine:
     * each worker gets max(1, hardware_concurrency / workers)
     * threads, so the pool's default never oversubscribes the CPU
     * workers-fold.
     */
    u32 threadsPerWorker = 0;

    /**
     * argv prefix of the worker command.  Empty picks the default:
     * this process's own executable plus the hidden "worker" token,
     * which is correct for any binary whose main() routes that token
     * to poolWorkerMain (simulate_cli, the pool tests, the bench).
     */
    std::vector<std::string> workerCommand;

    /** Directory for shard/result files ("" = a fresh temp dir). */
    std::string workDir;

    /** Keep the shard/result files for debugging. */
    bool keepFiles = false;

    /**
     * Lane width each worker's runBatch uses for lane-batched replay
     * (Session::runBatch lane packs).  0 keeps the session default
     * (Session::defaultLaneWidth()); either way the merged results
     * are bit-identical.
     */
    u32 laneWidth = 0;

    /**
     * Batch-size planner: batches with fewer UNIQUE jobs than this
     * run on an in-process fallback (a fresh builtin Session with
     * the same caches the workers would attach) instead of paying
     * fork/exec + shard-file overhead that the committed trajectory
     * shows losing on small batches.  0 picks the measured default
     * crossover (defaultPoolCrossoverJobs()); 1 means "always use
     * the process pool" -- what an explicit user demand for workers
     * should pass.  Either path returns bit-identical results.
     */
    u32 minPooledJobs = 0;
};

/** What one pooled batch did (aggregated across workers). */
struct PoolStats
{
    u32 workersSpawned = 0;
    u64 uniqueJobs = 0;

    /** False when the batch-size planner ran the batch in-process
     *  instead of sharding it over worker processes. */
    bool usedProcessPool = true;

    /** Core-model simulations actually performed (cache hits and
     *  dedupe excluded) -- zero on a warm shared cache. */
    u64 simulationsPerformed = 0;

    /** Analytical backends actually evaluated. */
    u64 analysesPerformed = 0;
};

/** Outcome of one pooled batch. */
struct PoolRun
{
    bool ok = false;

    /** `results[i]` corresponds to `jobs[i]`; empty when !ok. */
    std::vector<JobResult> results;

    /** One-line reason when !ok ("" otherwise). */
    std::string error;

    PoolStats stats;
};

/** Shards job batches over worker processes. */
class ProcessPool
{
  public:
    explicit ProcessPool(PoolOptions options);

    /**
     * Run @p jobs to completion across the pool.  @p session is used
     * only to validate the batch up front (workers build their own
     * Session over the builtin registries, so jobs must not depend on
     * names registered only in a custom parent session).
     */
    PoolRun run(const Session &session,
                const std::vector<Job> &jobs) const;

    const PoolOptions &options() const { return options_; }

  private:
    PoolOptions options_;
};

/**
 * The worker half: parse `--jobs FILE --out FILE [--cache-dir DIR]
 * [--threads N]`, run the shard on a fresh builtin Session, write the
 * result file.  Returns a process exit code (0 on success); any
 * binary that may act as a pool worker routes its hidden "worker"
 * argv token here.
 */
int poolWorkerMain(const std::vector<std::string> &args);

/** This process's executable path (/proc/self/exe; "" on failure). */
std::string currentExecutablePath();

/**
 * The built-in planner crossover: below this many unique jobs a
 * pooled batch is cheaper to run in-process than to shard over
 * fork/exec'd workers (PoolOptions::minPooledJobs == 0 uses this).
 * The service bench records the value alongside its timings so a
 * future re-measurement has the old figure next to the new one.
 */
u32 defaultPoolCrossoverJobs();

} // namespace vegeta::sim

#endif // VEGETA_SIM_POOL_HPP
