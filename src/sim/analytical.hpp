/**
 * @file
 * Analytical-model backends behind the facade.
 *
 * Half of the paper's evaluation is not trace simulation but closed
 * analytical models: the Figure 3 roofline, the Figure 4
 * vector-vs-matrix comparison, the Figure 10 pipelining schedules, the
 * Figure 14 area/power/frequency model, the Figure 15 unstructured
 * granularity study, and the block-size ablation.  These follow the
 * same registry/request/result pattern as trace simulation: an
 * AnalyticalRegistry resolves model names to backends, an
 * AnalyticalRequest carries the parameters (validated against the
 * simulator's engine/workload registries), and every backend returns a
 * uniform AnalyticalResult -- a typed table benches print directly and
 * tools consume cell by cell.
 *
 * Nothing above the facade wires src/model or src/engine by hand; new
 * analytical studies become one `add()` call on the registry.
 */

#ifndef VEGETA_SIM_ANALYTICAL_HPP
#define VEGETA_SIM_ANALYTICAL_HPP

#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/types.hpp"

namespace vegeta::sim {

class Session;

/** One table cell: either text or a number with print precision. */
struct AnalyticalCell
{
    std::string label;   ///< set for text cells
    double value = 0.0;  ///< set for number cells
    int precision = -1;  ///< < 0 marks a text cell

    static AnalyticalCell text(std::string text);
    static AnalyticalCell number(double value, int precision = 3);

    bool isNumber() const { return precision >= 0; }

    /** The cell as it prints (text, or the formatted number). */
    std::string render() const;
};

/**
 * One analytical-model evaluation: which registered model, over which
 * registered workloads/engines (empty lists pick the backend's paper
 * defaults), with numeric and string parameters.
 */
struct AnalyticalRequest
{
    std::string model;

    /** Workload names, resolved against the WorkloadRegistry. */
    std::vector<std::string> workloads;

    /** Engine names, resolved against the EngineRegistry. */
    std::vector<std::string> engines;

    std::map<std::string, double> params;
    std::map<std::string, std::string> options;

    double param(const std::string &name, double fallback) const;
    std::string option(const std::string &name,
                       std::string fallback) const;
};

/** Uniform output of every analytical backend: a typed table. */
struct AnalyticalResult
{
    std::string model;
    std::vector<std::string> columns;
    std::vector<std::vector<AnalyticalCell>> rows;

    /** Human-readable footnotes (paper anchors, sanity checks). */
    std::vector<std::string> notes;

    /** Start a new row and return it. */
    std::vector<AnalyticalCell> &row();

    /** Index of a named column; asserts the name exists. */
    std::size_t columnIndex(const std::string &column) const;

    /** Numeric cell accessors; assert on range or cell type. */
    double number(std::size_t row, const std::string &column) const;
    const std::string &text(std::size_t row,
                            const std::string &column) const;

    /** Render as an aligned text table (common/table). */
    Table table() const;
};

/**
 * Render as a JSON object: model, columns, one object per row keyed
 * by column name (numbers stay numbers), and notes.
 */
void writeJson(std::ostream &os, const AnalyticalResult &result);

/** Render as CSV with a header row (cells as they print). */
void writeCsv(std::ostream &os, const AnalyticalResult &result);

/**
 * Named analytical backends, in registration order.  A backend maps
 * a validated request to a result using the session's registries
 * for engine/workload resolution; re-registering a name replaces the
 * previous entry (keeping its position).
 */
class AnalyticalRegistry
{
  public:
    using Backend = std::function<AnalyticalResult(
        const Session &, const AnalyticalRequest &)>;

    AnalyticalRegistry &add(const std::string &name,
                            const std::string &description,
                            Backend backend);

    bool contains(const std::string &name) const;

    /** The backend for a model name (nullptr if unknown). */
    const Backend *find(const std::string &name) const;

    std::vector<std::string> names() const;

    /** One-line description of a model ("" if unknown). */
    std::string description(const std::string &name) const;

    std::size_t size() const { return entries_.size(); }

    /**
     * The paper's analytical models: fig3-roofline,
     * fig4-vector-vs-matrix, fig10-pipelining, fig14-area-power,
     * fig14-area-breakdown, fig15-unstructured, blocksize-coverage,
     * blocksize-hardware, micro-latency, network-policy,
     * dynamic-sparsity, and the tuner's tune-prefilter estimator.
     */
    static AnalyticalRegistry builtin();

  private:
    struct Entry
    {
        std::string name;
        std::string description;
        Backend backend;
    };

    std::vector<Entry> entries_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_ANALYTICAL_HPP
