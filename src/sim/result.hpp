/**
 * @file
 * Structured simulation results and their serializations.
 *
 * Every Simulator run produces one SimulationResult: the request echo
 * (so a result is self-describing inside a batch) plus the
 * measurements the benches and the paper figures consume.  Batches
 * serialize to an aligned text table or CSV (via common/table) and to
 * a JSON array for downstream tooling.
 */

#ifndef VEGETA_SIM_RESULT_HPP
#define VEGETA_SIM_RESULT_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/types.hpp"

namespace vegeta::sim {

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string jsonEscape(const std::string &text);

/** One simulator run, request echo + measurements. */
struct SimulationResult
{
    // --- Request echo -------------------------------------------------
    std::string workload;
    std::string engine;
    u32 layerN = 4;    ///< the layer's pruned pattern N:4
    u32 executedN = 4; ///< N the engine actually executed
    bool outputForwarding = false;
    std::string kernel; ///< "optimized" / "naive" / "replay"

    // --- Measurements -------------------------------------------------
    Cycles coreCycles = 0; ///< core cycles until last retirement
    u64 instructions = 0;  ///< retired trace ops
    u64 engineInstructions = 0;
    u64 tileComputes = 0; ///< 0 for trace replays
    double macUtilization = 0.0;
    u64 cacheHits = 0;
    u64 cacheMisses = 0;

    /** Wall-clock runtime at the paper's 2 GHz core clock. */
    double runtimeMs() const;
};

/** Batch rendered as an aligned text table (one row per result). */
Table resultsTable(const std::vector<SimulationResult> &results);

/** Batch rendered as CSV with a header row. */
void writeCsv(std::ostream &os,
              const std::vector<SimulationResult> &results);

/** Batch rendered as a JSON array of objects. */
void writeJson(std::ostream &os,
               const std::vector<SimulationResult> &results);

} // namespace vegeta::sim

#endif // VEGETA_SIM_RESULT_HPP
