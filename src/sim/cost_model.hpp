/**
 * @file
 * Cache-trained cost model: a small ridge regressor over cached
 * simulation results that re-ranks the tuner's analytical prefilter.
 *
 * Every sweep that ever ran with a --cache-dir left canonical
 * (cacheKey, SimulationResult) records behind; harvestCostSamples()
 * parses those keys back into search-space coordinates and turns each
 * record into one training sample.  The regression target is
 * log2(coreCycles) and the features include the closed-form prefilter
 * estimate, so the model is a *residual corrector*: with no data it
 * cannot be consulted (the tuner falls back to the prefilter), and
 * with data it learns exactly the systematic errors the closed form
 * makes on this machine's corpus -- the random-forest-predictor idea
 * of the isaac/triton autotuner in its smallest deterministic form.
 *
 * Everything here is closed-form and order-stable: the harvest walks
 * the cache's append order, the fit is a fixed-pivot Gaussian
 * elimination of the normal equations, and equal cache files always
 * produce bit-identical models.
 */

#ifndef VEGETA_SIM_COST_MODEL_HPP
#define VEGETA_SIM_COST_MODEL_HPP

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "sim/result.hpp"
#include "sim/tune_space.hpp"

namespace vegeta::sim {

class DiskResultCache;

/** Regression feature count (leading bias term included). */
inline constexpr u32 kCostFeatureCount = 12;

/** Samples below this leave the model untrusted (prefilter rules). */
inline constexpr u64 kMinCostSamples = 32;

/** One training sample: features + log2(core cycles) target. */
struct CostSample
{
    std::array<double, kCostFeatureCount> features{};
    double log2Cycles = 0.0;
};

/** Ridge regressor over log2(core cycles). */
class CostModel
{
  public:
    /**
     * The feature vector of one search point: bias, log2 GEMM dims,
     * executed N, log2 engine geometry, sparsity/forwarding/kernel
     * flags, C blocking, and log2 of the closed-form prefilter
     * estimate (the residual-learning anchor).
     */
    static std::array<double, kCostFeatureCount>
    features(const kernels::GemmDims &gemm,
             const engine::EngineConfig &engine, u32 pattern_n,
             bool output_forwarding, bool naive, u32 c_blocking);

    /**
     * Closed-form ridge fit (normal equations, penalty @p lambda on
     * every non-bias weight).  Nullopt when @p samples is empty or
     * the system is numerically singular.
     */
    static std::optional<CostModel>
    fit(const std::vector<CostSample> &samples, double lambda = 1e-3);

    double predictLog2Cycles(
        const std::array<double, kCostFeatureCount> &x) const;

    u64 sampleCount() const { return samples_; }

    /** Training-set RMSE in log2 cycles (fit diagnostics). */
    double trainRmse() const { return rmse_; }

  private:
    std::array<double, kCostFeatureCount> weights_{};
    u64 samples_ = 0;
    double rmse_ = 0.0;
};

/**
 * Parse one canonical v1 cacheKey back into the tune coordinates it
 * encodes, validated against @p session's engine registry and
 * round-tripped through cacheKey() so records with non-default core
 * configurations (or replay records, or unknown engines) are skipped
 * rather than mis-featurized.  Returns the ready sample.
 */
std::optional<CostSample>
costSampleFromCacheEntry(const Session &session,
                         const std::string &key,
                         const SimulationResult &result);

/**
 * Harvest every eligible cached simulation record of @p cache into
 * training samples, in the cache's append order (deterministic for a
 * given cache file).
 */
std::vector<CostSample>
harvestCostSamples(const Session &session,
                   const DiskResultCache &cache);

} // namespace vegeta::sim

#endif // VEGETA_SIM_COST_MODEL_HPP
