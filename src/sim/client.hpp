/**
 * @file
 * The thin client side of the simulation service.
 *
 * A SimClient connects to a running SimServer (unix socket or
 * 127.0.0.1 TCP), performs the wire hello handshake, and then runs
 * job batches by RPC: one `batch` frame out, one `results` frame
 * back.  Results are bit-for-bit identical to a local
 * Session::runBatch of the same jobs -- the server executes the same
 * deterministic Session code and every double crosses the wire as
 * its raw bit pattern -- so callers can swap local and remote
 * execution freely.
 */

#ifndef VEGETA_SIM_CLIENT_HPP
#define VEGETA_SIM_CLIENT_HPP

#include <optional>
#include <string>
#include <vector>

#include "sim/job.hpp"

namespace vegeta::sim {

/** How a SimClient reaches its server. */
struct ClientOptions
{
    /**
     * Server address: "unix:PATH", "tcp:HOST:PORT", a bare decimal
     * port (TCP on 127.0.0.1), or a bare filesystem path (unix
     * socket).
     */
    std::string address;

    /**
     * Total budget for reaching the server, milliseconds; connection
     * attempts retry with short sleeps until it is spent (covers the
     * race of a client starting just before its server listens).
     */
    int connectTimeoutMs = 5'000;

    /** Per-request reply timeout, milliseconds (< 0 blocks). */
    int requestTimeoutMs = -1;

    /** Sleep between failed connect attempts, milliseconds. */
    int retryDelayMs = 50;
};

/** One remote batch: results plus what the server had to compute. */
struct ClientRun
{
    /** `results[i]` answers `jobs[i]`, exactly like runBatch. */
    std::vector<JobResult> results;

    /** Simulations the server performed for THIS batch (0 = all
     *  answered from its warm caches). */
    u64 simulationsPerformed = 0;

    /** Analytical evaluations the server performed for this batch. */
    u64 analysesPerformed = 0;
};

/** A connection to a SimServer. */
class SimClient
{
  public:
    explicit SimClient(ClientOptions options);

    ~SimClient();

    SimClient(const SimClient &) = delete;
    SimClient &operator=(const SimClient &) = delete;

    /**
     * Connect (retrying within connectTimeoutMs) and handshake.
     * False with a one-line reason when the server is unreachable or
     * speaks a different wire/format version.
     */
    bool connect(std::string *error);

    void close();

    bool connected() const { return fd_ >= 0; }

    /**
     * Run @p jobs on the server.  Jobs must be valid for the builtin
     * registries (the server validates and rejects bad batches).
     * Returns nullopt with a reason on any transport or server
     * failure; the connection is then closed.
     */
    std::optional<ClientRun> runBatch(const std::vector<Job> &jobs,
                                      std::string *error);

    /**
     * Fetch the server's live stats document (one `stats` frame out,
     * one back; the JSON payload is returned verbatim).  Nullopt with
     * a reason on any transport failure; the connection then closes.
     */
    std::optional<std::string> fetchStats(std::string *error);

  private:
    ClientOptions options_;
    int fd_ = -1;
};

/**
 * Parse a ClientOptions::address string.  Returns false (with a
 * reason) on a malformed tcp address; never touches the network.
 */
bool parseServerAddress(const std::string &address, bool *use_tcp,
                        std::string *host_or_path, u32 *port,
                        std::string *error);

} // namespace vegeta::sim

#endif // VEGETA_SIM_CLIENT_HPP
