#include "sim/session.hpp"

#include <thread>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "cpu/lane_replayer.hpp"
#include "sim/telemetry.hpp"

namespace vegeta::sim {

namespace {

// Cache-probe outcome counters, shared by run() and runSimPack() so
// the two probe sequences report identically.
void
countMemoryHit()
{
    static const telemetry::MetricId id =
        telemetry::counterId("session.cache.hit.memory");
    telemetry::add(id, 1);
}

void
countDiskHit()
{
    static const telemetry::MetricId id =
        telemetry::counterId("session.cache.hit.disk");
    telemetry::add(id, 1);
}

void
countMiss()
{
    static const telemetry::MetricId id =
        telemetry::counterId("session.cache.miss");
    telemetry::add(id, 1);
}

} // namespace

Session::Session()
    : Session(EngineRegistry::builtin(), WorkloadRegistry::builtin())
{
}

Session::Session(EngineRegistry engines, WorkloadRegistry workloads)
    : Session(std::move(engines), std::move(workloads),
              AnalyticalRegistry::builtin())
{
}

Session::Session(EngineRegistry engines, WorkloadRegistry workloads,
                 AnalyticalRegistry analytics)
    : engines_(std::move(engines)), workloads_(std::move(workloads)),
      analytics_(std::move(analytics))
{
}

RequestBuilder
Session::request() const
{
    return RequestBuilder(engines_, workloads_);
}

JobBuilder
Session::job() const
{
    return JobBuilder(engines_, workloads_, analytics_);
}

void
Session::setCache(std::shared_ptr<ResultCache> cache)
{
    cache_ = std::move(cache);
}

std::shared_ptr<ResultCache>
Session::enableCache()
{
    cache_ = std::make_shared<ResultCache>();
    return cache_;
}

std::shared_ptr<DiskResultCache>
Session::attachDiskCache(const std::string &directory)
{
    disk_cache_ = std::make_shared<DiskResultCache>(directory);
    return disk_cache_;
}

void
Session::setDiskCache(std::shared_ptr<DiskResultCache> cache)
{
    disk_cache_ = std::move(cache);
}

SimulationResult
Session::run(const SimulationRequest &request,
             cpu::Trace *trace_out) const
{
    if (!cache_ && !disk_cache_)
        return runUncached(request, trace_out);

    const std::string key = cacheKey(request);
    // Callers wanting the generated trace always pay the generation
    // pass -- a cache hit has no trace to hand back -- but their
    // result still warms the caches for later trace-less runs.
    if (!trace_out) {
        if (cache_) {
            if (auto hit = cache_->find(key)) {
                countMemoryHit();
                return *hit;
            }
        }
        if (disk_cache_) {
            if (auto hit = disk_cache_->find(key)) {
                // Promote: later repeats hit memory, not the disk
                // map.
                countDiskHit();
                if (cache_)
                    cache_->insert(key, *hit);
                return *hit;
            }
        }
        countMiss();
    }
    const SimulationResult result = runUncached(request, trace_out);
    if (cache_)
        cache_->insert(key, result);
    if (disk_cache_)
        disk_cache_->insert(key, result);
    return result;
}

SimulationResult
Session::runUncached(const SimulationRequest &request,
                     cpu::Trace *trace_out) const
{
    const auto engine = engines_.find(request.engine);
    VEGETA_ASSERT(engine.has_value(), "unregistered engine ",
                  request.engine);
    simulations_.fetch_add(1, std::memory_order_relaxed);
    static const telemetry::MetricId sims_id =
        telemetry::counterId("session.simulations");
    telemetry::add(sims_id, 1);

    const u32 executed_n = engine->effectiveN(request.patternN);
    kernels::KernelOptions opts;
    opts.optimized = request.kernel == KernelVariant::Optimized;
    opts.cBlocking = request.cBlocking;
    opts.traceOnly = true;

    if (trace_out) {
        // The caller wants the trace itself (to save or replay), so
        // this path has to materialize it anyway -- but only once:
        // move it out instead of copying a potentially huge vector.
        kernels::KernelRun kernel_run =
            kernels::runSpmmKernel(request.gemm, executed_n, opts);
        *trace_out = std::move(kernel_run.trace);
        return measure(*trace_out, *engine, request,
                       kernelVariantName(request.kernel), executed_n,
                       kernel_run.tileComputes);
    }

    // Streaming replay: the kernel generator emits uops straight into
    // the scheduler, so peak memory is independent of trace length.
    cpu::TraceCpu cpu_model(coreFor(request, *engine), *engine);
    const kernels::KernelStats stats =
        kernels::streamSpmmKernel(request.gemm, executed_n, opts,
                                  cpu_model);
    return fromSimResult(cpu_model.finish(), *engine, request,
                         kernelVariantName(request.kernel), executed_n,
                         stats.tileComputes);
}

std::optional<std::string>
Session::replayError(const cpu::Trace &trace,
                     const SimulationRequest &request) const
{
    const auto engine = engines_.find(request.engine);
    if (!engine)
        return "unregistered engine: " + request.engine;
    for (const auto &op : trace) {
        if (op.kind == cpu::UopKind::TileCompute &&
            !engine->supportsOpcode(op.tile.op))
            return engine->name + " cannot execute " +
                   std::string(isa::opcodeName(op.tile.op));
    }
    return std::nullopt;
}

SimulationResult
Session::replay(const cpu::Trace &trace,
                const SimulationRequest &request) const
{
    const auto engine = engines_.find(request.engine);
    VEGETA_ASSERT(engine.has_value(), "unregistered engine ",
                  request.engine);
    simulations_.fetch_add(1, std::memory_order_relaxed);
    return measure(trace, *engine, request, "replay",
                   engine->effectiveN(request.patternN),
                   /*tile_computes=*/0);
}

std::optional<std::string>
Session::analyzeError(const AnalyticalRequest &request) const
{
    if (!analytics_.contains(request.model))
        return "unknown analytical model: " + request.model;
    for (const auto &name : request.engines)
        if (!engines_.contains(name))
            return "unknown engine: " + name;
    for (const auto &name : request.workloads)
        if (!workloads_.contains(name))
            return "unknown workload: " + name;
    return std::nullopt;
}

AnalyticalResult
Session::analyze(const AnalyticalRequest &request) const
{
    const auto error = analyzeError(request);
    VEGETA_ASSERT(!error.has_value(), "bad analytical request: ",
                  error.value_or(""));
    const AnalyticalRegistry::Backend *backend =
        analytics_.find(request.model);
    static const telemetry::MetricId analyses_id =
        telemetry::counterId("session.analyses");
    if (!disk_cache_) {
        analyses_.fetch_add(1, std::memory_order_relaxed);
        telemetry::add(analyses_id, 1);
        return (*backend)(*this, request);
    }
    // Analytical results persist like simulation results: equal
    // canonical keys imply bit-identical tables (backends are pure
    // functions of the request), so a warm cache skips the backend.
    const std::string key = analyticalKey(request);
    if (auto hit = disk_cache_->findAnalysis(key)) {
        countDiskHit();
        return *hit;
    }
    analyses_.fetch_add(1, std::memory_order_relaxed);
    telemetry::add(analyses_id, 1);
    countMiss();
    AnalyticalResult result = (*backend)(*this, request);
    disk_cache_->insertAnalysis(key, result);
    return result;
}

std::optional<std::string>
Session::jobError(const Job &job) const
{
    if (job.kind == JobKind::Analysis)
        return analyzeError(job.analysis);
    if (!engines_.contains(job.simulation.engine))
        return "unknown engine: " + job.simulation.engine;
    if (job.simulation.gemm.m == 0 || job.simulation.gemm.n == 0 ||
        job.simulation.gemm.k == 0)
        return std::string("GEMM dimensions must be non-zero");
    return std::nullopt;
}

JobResult
Session::run(const Job &job) const
{
    // One "session.job" span per job materialized here; runSimPack
    // emits the same span for pack members, so a trace's span count
    // equals the batch's unique job count.
    telemetry::Span span("session.job");
    JobResult result;
    result.kind = job.kind;
    if (job.kind == JobKind::Analysis)
        result.analysis = analyze(job.analysis);
    else
        result.simulation = run(job.simulation);
    return result;
}

u32
Session::defaultLaneWidth()
{
    // Chosen from the committed BENCH_replay trajectory's lane_replay
    // rows: on the benchmarking host, lane-interleaved replay runs at
    // 0.75-0.9x of back-to-back single-stream replays for every
    // measured K (the workload's dependence chains are short enough
    // that the host pipeline is already full with one stream), so
    // batches default to plain single-stream execution.  The knob
    // pays on hosts where a single stream leaves the out-of-order
    // window idle; raise it (--lanes / laneWidth) after measuring
    // bench_replay_throughput's lane_replay rows on the target.
    return 1;
}

void
Session::runSimPack(const std::vector<Job> &jobs,
                    const std::vector<std::size_t> &pack,
                    std::vector<JobResult> &results) const
{
    // One miss's materialized trace in flight per lane; sub-packs
    // flush at this many buffered uops (~192 MB at 48 B/op) so a pack
    // of huge traces cannot hold the whole batch in memory at once.
    static constexpr u64 kPackUopBudget = u64{4} * 1024 * 1024;

    struct Miss
    {
        std::size_t index = 0;
        std::string key;
        engine::EngineConfig engine;
        u32 executedN = 0;
        u64 tileComputes = 0;
        cpu::Trace trace;
    };

    // Cache probes first, exactly as run() would consult them; only
    // the misses replay.
    std::vector<std::size_t> missing;
    for (const std::size_t i : pack) {
        telemetry::Span span("session.job");
        results[i].kind = JobKind::Simulation;
        if (!cache_ && !disk_cache_) {
            missing.push_back(i);
            continue;
        }
        const std::string key = cacheKey(jobs[i].simulation);
        if (cache_) {
            if (auto hit = cache_->find(key)) {
                countMemoryHit();
                results[i].simulation = *hit;
                continue;
            }
        }
        if (disk_cache_) {
            if (auto hit = disk_cache_->find(key)) {
                countDiskHit();
                if (cache_)
                    cache_->insert(key, *hit);
                results[i].simulation = *hit;
                continue;
            }
        }
        countMiss();
        missing.push_back(i);
    }
    if (missing.empty())
        return;

    auto publish = [&](const std::size_t i, const std::string &key,
                       SimulationResult result) {
        if (cache_)
            cache_->insert(key, result);
        if (disk_cache_)
            disk_cache_->insert(key, result);
        results[i].simulation = std::move(result);
    };

    if (missing.size() == 1) {
        // A lone miss keeps the streaming path: the kernel emits uops
        // straight into the scheduler, no trace is materialized.
        const std::size_t i = missing[0];
        publish(i, cacheKey(jobs[i].simulation),
                runUncached(jobs[i].simulation, nullptr));
        return;
    }

    // Lane-batched replay: materialize each miss's trace, then replay
    // the sub-pack on one struct-of-arrays LaneReplayer.  Lanes share
    // no state, so each lane's result is bit-identical to the
    // streaming single-stream run (the golden equivalence tests pin
    // this per K).
    std::vector<Miss> lanes;
    u64 buffered_uops = 0;
    auto flush = [&]() {
        if (lanes.empty())
            return;
        telemetry::Span span("session.pack.replay", lanes.size());
        std::vector<cpu::LaneReplayer::LaneSpec> specs;
        std::vector<const cpu::Trace *> traces;
        specs.reserve(lanes.size());
        traces.reserve(lanes.size());
        for (const Miss &miss : lanes) {
            specs.push_back(
                {coreFor(jobs[miss.index].simulation, miss.engine),
                 miss.engine});
            traces.push_back(&miss.trace);
        }
        cpu::LaneReplayer replayer(specs);
        const auto sims = replayer.replay(traces);
        for (std::size_t lane = 0; lane < lanes.size(); ++lane) {
            Miss &miss = lanes[lane];
            const SimulationRequest &request =
                jobs[miss.index].simulation;
            simulations_.fetch_add(1, std::memory_order_relaxed);
            publish(miss.index, miss.key,
                    fromSimResult(sims[lane], miss.engine, request,
                                  kernelVariantName(request.kernel),
                                  miss.executedN, miss.tileComputes));
        }
        lanes.clear();
        buffered_uops = 0;
    };

    telemetry::Span assemble_span("session.pack.assemble",
                                  missing.size());
    for (const std::size_t i : missing) {
        if (!lanes.empty() && buffered_uops >= kPackUopBudget)
            flush();
        const SimulationRequest &request = jobs[i].simulation;
        const auto engine = engines_.find(request.engine);
        VEGETA_ASSERT(engine.has_value(), "unregistered engine ",
                      request.engine);
        Miss miss;
        miss.index = i;
        miss.key = (cache_ || disk_cache_)
                       ? cacheKey(request)
                       : std::string();
        miss.engine = *engine;
        miss.executedN = engine->effectiveN(request.patternN);
        kernels::KernelOptions opts;
        opts.optimized = request.kernel == KernelVariant::Optimized;
        opts.cBlocking = request.cBlocking;
        opts.traceOnly = true;
        kernels::KernelRun kernel_run = kernels::runSpmmKernel(
            request.gemm, miss.executedN, opts);
        miss.tileComputes = kernel_run.tileComputes;
        miss.trace = std::move(kernel_run.trace);
        buffered_uops += miss.trace.size();
        lanes.push_back(std::move(miss));
    }
    flush();
}

std::vector<JobResult>
Session::runBatch(const std::vector<Job> &jobs, u32 threads,
                  u32 lane_width) const
{
    std::vector<JobResult> results(jobs.size());
    if (jobs.empty())
        return results;

    static const telemetry::MetricId batches_id =
        telemetry::counterId("session.batches");
    static const telemetry::MetricId jobs_id =
        telemetry::counterId("session.batch.jobs");
    static const telemetry::MetricId unique_id =
        telemetry::counterId("session.batch.unique");
    static const telemetry::MetricId batch_timer =
        telemetry::timerId("session.batch");
    telemetry::add(batches_id, 1);
    telemetry::add(jobs_id, jobs.size());
    telemetry::ScopedTimer batch_scope(batch_timer);

    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : static_cast<u32>(hw);
    }
    if (lane_width == 0)
        lane_width = defaultLaneWidth();

    // Batch-level dedupe before dispatch: jobs with equal canonical
    // keys are guaranteed to produce bit-identical results, so only
    // the first occurrence runs; duplicates copy its slot afterwards.
    // The output is therefore identical to running every job -- for
    // any thread count, caches on or off.
    std::vector<std::size_t> unique;
    std::vector<std::size_t> source(jobs.size());
    {
        telemetry::Span plan_span("session.batch.plan", jobs.size());
        std::unordered_map<std::string, std::size_t> first;
        first.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const auto [it, inserted] =
                first.emplace(jobKey(jobs[i]), i);
            source[i] = it->second;
            if (inserted)
                unique.push_back(i);
        }
    }
    telemetry::add(unique_id, unique.size());

    // The work units: every unique job on its own at lane_width 1;
    // otherwise unique simulation jobs chunk into packs of up to
    // lane_width (in batch order), each replayed lane-batched, while
    // analysis jobs stay singleton tasks.
    std::vector<std::vector<std::size_t>> tasks;
    if (lane_width <= 1) {
        tasks.reserve(unique.size());
        for (const std::size_t i : unique)
            tasks.push_back({i});
    } else {
        std::vector<std::size_t> sims;
        for (const std::size_t i : unique) {
            if (jobs[i].kind == JobKind::Analysis) {
                tasks.push_back({i});
                continue;
            }
            sims.push_back(i);
            if (sims.size() >= lane_width) {
                tasks.push_back(std::move(sims));
                sims.clear();
            }
        }
        if (!sims.empty())
            tasks.push_back(std::move(sims));
    }

    auto runTask = [&](const std::vector<std::size_t> &task) {
        if (task.size() == 1 && lane_width <= 1) {
            results[task[0]] = run(jobs[task[0]]);
        } else if (task.size() == 1 &&
                   jobs[task[0]].kind == JobKind::Analysis) {
            results[task[0]] = run(jobs[task[0]]);
        } else {
            runSimPack(jobs, task, results);
        }
    };

    const u32 workers =
        std::min<u32>(threads, static_cast<u32>(tasks.size()));
    if (workers <= 1) {
        for (const auto &task : tasks)
            runTask(task);
    } else {
        // Work-stealing by atomic index: each worker claims the next
        // unclaimed task and writes into its slots, so the result
        // vector is independent of scheduling.
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (;;) {
                const std::size_t t =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (t >= tasks.size())
                    return;
                runTask(tasks[t]);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (u32 t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
    }

    for (std::size_t i = 0; i < jobs.size(); ++i)
        if (source[i] != i)
            results[i] = results[source[i]];
    return results;
}

PoolRun
Session::runBatchPooled(const std::vector<Job> &jobs,
                        const PoolOptions &options) const
{
    return ProcessPool(options).run(*this, jobs);
}

std::vector<SimulationResult>
Session::runBatch(const std::vector<SimulationRequest> &requests,
                  u32 threads, u32 lane_width) const
{
    std::vector<Job> jobs;
    jobs.reserve(requests.size());
    for (const auto &request : requests)
        jobs.push_back(Job::simulate(request));
    auto job_results = runBatch(jobs, threads, lane_width);
    std::vector<SimulationResult> results;
    results.reserve(job_results.size());
    for (auto &r : job_results)
        results.push_back(std::move(r.simulation));
    return results;
}

cpu::CoreConfig
Session::coreFor(const SimulationRequest &request,
                 const engine::EngineConfig &engine)
{
    cpu::CoreConfig core = request.core;
    core.outputForwarding = request.outputForwarding && engine.sparse;
    return core;
}

SimulationResult
Session::measure(const cpu::Trace &trace,
                 const engine::EngineConfig &engine,
                 const SimulationRequest &request,
                 const char *kernel_label, u32 executed_n,
                 u64 tile_computes) const
{
    cpu::TraceCpu cpu_model(coreFor(request, engine), engine);
    return fromSimResult(cpu_model.run(trace), engine, request,
                         kernel_label, executed_n, tile_computes);
}

SimulationResult
Session::fromSimResult(const cpu::SimResult &sim,
                       const engine::EngineConfig &engine,
                       const SimulationRequest &request,
                       const char *kernel_label, u32 executed_n,
                       u64 tile_computes)
{
    SimulationResult result;
    result.workload = request.label;
    result.engine = engine.name;
    result.layerN = request.patternN;
    result.executedN = executed_n;
    result.outputForwarding =
        request.outputForwarding && engine.sparse;
    result.kernel = kernel_label;
    result.coreCycles = sim.totalCycles;
    result.instructions = sim.retiredOps;
    result.engineInstructions = sim.engineInstructions;
    result.tileComputes = tile_computes;
    result.macUtilization = sim.macUtilization;
    result.cacheHits = sim.cacheHits;
    result.cacheMisses = sim.cacheMisses;
    return result;
}

std::vector<SimulationRequest>
figure13Grid(const Session &session,
             const std::vector<std::string> &workload_names,
             const std::vector<std::string> &engine_names,
             const std::vector<u32> &patterns)
{
    std::vector<SimulationRequest> grid;
    for (const auto &workload : workload_names) {
        for (const u32 pattern : patterns) {
            for (const auto &engine : engine_names) {
                const auto config = session.engines().find(engine);
                VEGETA_ASSERT(config.has_value(),
                              "unregistered engine ", engine);
                auto base = session.request()
                                .workload(workload)
                                .engine(engine)
                                .pattern(pattern);
                auto no_of = base;
                const auto request =
                    no_of.outputForwarding(false).build();
                VEGETA_ASSERT(request.has_value(), "bad grid request: ",
                              no_of.error());
                grid.push_back(*request);
                if (config->sparse) {
                    const auto of_request =
                        base.outputForwarding(true).build();
                    VEGETA_ASSERT(of_request.has_value(),
                                  "bad grid request: ", base.error());
                    grid.push_back(*of_request);
                }
            }
        }
    }
    return grid;
}

double
geomeanSpeedup(const Session &session,
               const std::vector<std::string> &workload_names,
               u32 layer_n, const std::string &engine_name,
               bool output_forwarding,
               const std::string &baseline_name, u32 threads)
{
    VEGETA_ASSERT(!workload_names.empty(),
                  "geomeanSpeedup over no workloads");

    // Baseline requests first, then the engine under test, so
    // results[i] / results[i + n] pair up per workload.
    std::vector<SimulationRequest> requests;
    requests.reserve(workload_names.size() * 2);
    for (const bool test : {false, true}) {
        for (const auto &workload : workload_names) {
            auto builder =
                session.request()
                    .workload(workload)
                    .engine(test ? engine_name : baseline_name)
                    .pattern(layer_n)
                    .outputForwarding(test && output_forwarding);
            const auto request = builder.build();
            VEGETA_ASSERT(request.has_value(),
                          "bad speedup request: ", builder.error());
            requests.push_back(*request);
        }
    }

    const auto results = session.runBatch(requests, threads);
    const std::size_t n = workload_names.size();
    std::vector<double> speedups;
    speedups.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        VEGETA_ASSERT(results[i + n].coreCycles > 0,
                      "zero-cycle simulation");
        speedups.push_back(
            static_cast<double>(results[i].coreCycles) /
            static_cast<double>(results[i + n].coreCycles));
    }
    return geomean(speedups);
}

} // namespace vegeta::sim
