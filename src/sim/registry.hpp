/**
 * @file
 * Engine and workload registries: the single place names are resolved.
 *
 * The seed wired engine and workload string tables into every binary
 * (`configByName` loops in the CLI, `allEvaluatedConfigs()` calls in
 * each bench).  The registries centralize that: binaries ask the
 * registry, and new design points or layers become one `add()` call --
 * including user-defined ones that never touch Table III/IV.
 */

#ifndef VEGETA_SIM_REGISTRY_HPP
#define VEGETA_SIM_REGISTRY_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "engine/config.hpp"
#include "kernels/workloads.hpp"

namespace vegeta::sim {

/**
 * Named engine design points, in registration order.  Entries are
 * factories so a lookup always returns a fresh, unaliased config.
 */
class EngineRegistry
{
  public:
    using Factory = std::function<engine::EngineConfig()>;

    /**
     * Register a design point under the name its factory produces.
     * Re-registering a name replaces the previous entry (keeping its
     * position).  @p table_iii marks official Table III rows.
     */
    EngineRegistry &add(Factory factory, bool table_iii = false);

    /** Register a fixed config (wrapped into a copying factory). */
    EngineRegistry &add(const engine::EngineConfig &config,
                        bool table_iii = false);

    bool contains(const std::string &name) const;

    /** Look up a config by name (nullopt if unknown). */
    std::optional<engine::EngineConfig>
    find(const std::string &name) const;

    std::vector<std::string> names() const;

    /** Every registered config, in registration order. */
    std::vector<engine::EngineConfig> configs() const;

    /** Only the configs registered as Table III rows. */
    std::vector<engine::EngineConfig> tableIIIConfigs() const;

    std::size_t size() const { return entries_.size(); }

    /**
     * The paper's evaluated design space: the eight Table III rows
     * plus the STC-like restricted config (the Figure 13 engine set).
     */
    static EngineRegistry builtin();

  private:
    struct Entry
    {
        std::string name;
        Factory factory;
        bool tableIII = false;
    };

    std::vector<Entry> entries_;
};

/**
 * Named evaluation layers, in registration order, partitioned into
 * groups ("tableIV", "quick", ...).
 */
class WorkloadRegistry
{
  public:
    /**
     * Register a workload under @p group.  Re-registering a name
     * replaces the previous entry (keeping its position).
     */
    WorkloadRegistry &add(const kernels::Workload &workload,
                          const std::string &group = "custom");

    bool contains(const std::string &name) const;

    /** Look up a workload by name (nullopt if unknown). */
    std::optional<kernels::Workload>
    find(const std::string &name) const;

    std::vector<std::string> names() const;

    /** Every registered workload, in registration order. */
    std::vector<kernels::Workload> workloads() const;

    /** The workloads of one group, in registration order. */
    std::vector<kernels::Workload>
    group(const std::string &group) const;

    std::size_t size() const { return entries_.size(); }

    /**
     * The paper's layers: the twelve Table IV layers under group
     * "tableIV" and the reduced regression layers under "quick".
     */
    static WorkloadRegistry builtin();

  private:
    struct Entry
    {
        kernels::Workload workload;
        std::string group;
    };

    std::vector<Entry> entries_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_REGISTRY_HPP
