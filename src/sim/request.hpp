/**
 * @file
 * Typed simulation requests.
 *
 * A SimulationRequest is the full description of one simulator run:
 * what to simulate (a registered workload or explicit GEMM dims),
 * where (engine design point), and how (layer-wise N:4 pattern,
 * output forwarding, kernel variant, core overrides).  Requests are
 * plain data so they can be stored, compared, and sharded across
 * threads; RequestBuilder validates against the registries so every
 * request handed to the Simulator is known-runnable.
 */

#ifndef VEGETA_SIM_REQUEST_HPP
#define VEGETA_SIM_REQUEST_HPP

#include <optional>
#include <string>

#include "cpu/trace_cpu.hpp"
#include "kernels/gemm_kernels.hpp"
#include "sim/registry.hpp"

namespace vegeta::sim {

/** Software kernel variant to generate the trace with. */
enum class KernelVariant
{
    Optimized, ///< C register-blocked across the k loop (evaluation)
    Naive,     ///< Listing 1: C loaded/stored inside the k loop
};

const char *kernelVariantName(KernelVariant variant);

/** One fully-specified simulator run. */
struct SimulationRequest
{
    /** Display label: the workload name or "MxNxK" for raw dims. */
    std::string label;
    kernels::GemmDims gemm;

    std::string engine;

    /** The layer's pruned pattern N:4 (1, 2, or 4). */
    u32 patternN = 4;

    /** Request OF; only takes effect on sparse engines. */
    bool outputForwarding = false;

    KernelVariant kernel = KernelVariant::Optimized;

    /** C tile registers blocked over the j loop (1..3, optimized). */
    u32 cBlocking = 3;

    /** Core model overrides (OF flag is set from the request). */
    cpu::CoreConfig core;
};

/**
 * Strict "MxNxK" parser (rejects trailing garbage and zero dims),
 * shared by the CLI and the builder.
 */
std::optional<kernels::GemmDims>
parseGemmSpec(const std::string &spec);

/**
 * Strict decimal u32 parser for CLI flags: digits only (no sign, no
 * trailing garbage, no empty string) and the value must fit in u32.
 * Unlike atoi, garbage and negatives are errors, not silent zeros.
 */
std::optional<u32> parseU32(const std::string &text);

/**
 * Fluent, validating builder.  Errors (unknown engine or workload,
 * bad pattern, bad GEMM spec) are collected as they happen;
 * `build()` returns the request only if everything resolved.
 *
 *   auto req = RequestBuilder(engines, workloads)
 *                  .workload("BERT-L1")
 *                  .engine("VEGETA-S-16-2")
 *                  .pattern(2)
 *                  .outputForwarding(true)
 *                  .build();
 *   if (!req) { ... builder.error() ... }
 */
class RequestBuilder
{
  public:
    RequestBuilder(const EngineRegistry &engines,
                   const WorkloadRegistry &workloads);

    /** Simulate a registered workload. */
    RequestBuilder &workload(const std::string &name);

    /** Simulate explicit GEMM dimensions. */
    RequestBuilder &gemm(const kernels::GemmDims &dims);

    /** Simulate a "MxNxK" spec string. */
    RequestBuilder &gemm(const std::string &spec);

    RequestBuilder &engine(const std::string &name);
    RequestBuilder &pattern(u32 layer_n);
    RequestBuilder &outputForwarding(bool enabled);
    RequestBuilder &kernel(KernelVariant variant);
    RequestBuilder &cBlocking(u32 c_tiles);
    RequestBuilder &core(const cpu::CoreConfig &config);

    /** The request, or nullopt if any setter failed validation. */
    std::optional<SimulationRequest> build();

    /** First validation error ("" while the builder is clean). */
    const std::string &error() const { return error_; }

  private:
    void fail(const std::string &message);

    const EngineRegistry &engines_;
    const WorkloadRegistry &workloads_;
    SimulationRequest request_;
    bool have_target_ = false;
    std::string error_;
};

} // namespace vegeta::sim

#endif // VEGETA_SIM_REQUEST_HPP
