/**
 * @file
 * The long-lived simulation service: a SimServer daemon that keeps
 * one Session warm across requests from many concurrent clients.
 *
 * Every CLI invocation used to pay full process startup -- registry
 * construction, reloading the persistent DiskResultCache -- and the
 * process pool paid it per SWEEP: fork/exec of every worker plus a
 * shard-file round trip for every batch (the committed trajectory
 * shows that overhead model losing: pool_sweep slows DOWN as workers
 * grow on small batches).  The server inverts both costs:
 *
 *  - registries and both caches are built once and stay warm; a
 *    repeated sweep from any client performs zero simulations;
 *  - worker processes are pre-forked ONCE at startup and fed job
 *    batches incrementally over pipes speaking the same wire frames
 *    as the socket (sim/wire), replacing one-shot shard files;
 *  - each client connection gets a bounded request queue, and a
 *    single dispatcher drains the queues round-robin, so one greedy
 *    client cannot starve the rest.
 *
 * Results are bit-for-bit identical to a local Session::runBatch of
 * the same jobs: execution is the same deterministic Session code,
 * and every double crosses the wire as its raw bit pattern.
 */

#ifndef VEGETA_SIM_SERVER_HPP
#define VEGETA_SIM_SERVER_HPP

#include <memory>
#include <string>

#include "sim/job.hpp"

namespace vegeta::sim {

/** How a SimServer listens and executes. */
struct ServerOptions
{
    /** Unix-domain socket path ("" = listen on TCP instead). */
    std::string socketPath;

    /** TCP port on 127.0.0.1 (0 = ephemeral; see SimServer::port). */
    u32 port = 0;

    /** Listen on TCP even when port is 0 (ephemeral). */
    bool useTcp = false;

    /**
     * Persistent worker processes, pre-forked at start() and fed
     * over pipes.  0 executes batches in-process on the server's own
     * warm Session.
     */
    u32 serviceWorkers = 0;

    /** runBatch threads (in-process mode) / per worker.  0 = auto. */
    u32 threads = 0;

    /** Pending batches allowed per client before its reader blocks
     *  (socket backpressure); must be >= 1. */
    u32 queueDepth = 4;

    /** Shared persistent result-cache directory ("" = off). */
    std::string cacheDir;

    /** Handshake/read timeout for client sockets, milliseconds. */
    int clientTimeoutMs = 10'000;
};

/** Aggregate service counters (monotonic over the server's life). */
struct ServerStats
{
    u64 connections = 0;
    u64 batches = 0;
    u64 jobs = 0;
    u64 simulationsPerformed = 0;
    u64 analysesPerformed = 0;
    u64 protocolErrors = 0;
};

/** The daemon: accepts framed job batches, answers framed results. */
class SimServer
{
  public:
    explicit SimServer(ServerOptions options);

    /** Stops and reaps everything still running. */
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /**
     * Fork the persistent workers (before any thread exists), bind
     * the socket, and start the accept/dispatch threads.  False with
     * a one-line reason on failure.
     */
    bool start(std::string *error);

    /**
     * Shut down cleanly: stop accepting, close client connections,
     * join every thread, close the worker pipes (workers exit on
     * EOF) and reap every worker process.  Idempotent.
     */
    void stop();

    bool running() const;

    /** The connect address ("unix:PATH" or "tcp:127.0.0.1:PORT"). */
    std::string address() const;

    /** The bound TCP port (resolves port 0; 0 for unix sockets). */
    u32 port() const;

    ServerStats stats() const;

    /**
     * CLI entry: start(), serve until SIGTERM/SIGINT, stop(), return
     * a process exit code.  Prints one line on start and shutdown to
     * stderr.
     */
    static int serveMain(const ServerOptions &options);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The persistent-worker half: a fresh builtin Session with the
 * in-memory cache (and @p cache_dir when non-empty), looping on
 * `batch` frames from @p in_fd and answering `results` frames on
 * @p out_fd until EOF or a `bye` frame.  Returns a process exit
 * code; the server's pre-forked children run exactly this.
 */
int serviceWorkerLoop(int in_fd, int out_fd,
                      const std::string &cache_dir, u32 threads);

} // namespace vegeta::sim

#endif // VEGETA_SIM_SERVER_HPP
