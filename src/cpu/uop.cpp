#include "cpu/uop.hpp"

namespace vegeta::cpu {

const char *
uopKindName(UopKind kind)
{
    switch (kind) {
      case UopKind::Alu:
        return "alu";
      case UopKind::Branch:
        return "branch";
      case UopKind::Load:
        return "load";
      case UopKind::Store:
        return "store";
      case UopKind::VectorFma:
        return "vector_fma";
      case UopKind::TileLoad:
        return "tile_load";
      case UopKind::TileStore:
        return "tile_store";
      case UopKind::TileCompute:
        return "tile_compute";
    }
    return "?";
}

u64
countKind(const Trace &trace, UopKind kind)
{
    u64 count = 0;
    for (const auto &op : trace)
        if (op.kind == kind)
            ++count;
    return count;
}

} // namespace vegeta::cpu
