/**
 * @file
 * Streaming trace consumption.
 *
 * A TraceSink receives trace micro-ops one at a time, in program
 * order, as they are produced.  Kernels emit directly into a sink, so
 * a trace-only simulation never materializes the full multi-hundred-MB
 * cpu::Trace: the generator's emit() calls feed the replayer's step()
 * directly.  TraceCollector is the batch adapter -- a sink that
 * appends into an in-memory Trace for callers that want the whole
 * thing (serialization, replay across engines, tests).
 */

#ifndef VEGETA_CPU_TRACE_SINK_HPP
#define VEGETA_CPU_TRACE_SINK_HPP

#include "cpu/uop.hpp"

namespace vegeta::cpu {

/** Consumer of a stream of trace ops in program order. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Consume the next op of the stream. */
    virtual void emit(const TraceOp &op) = 0;
};

/** Sink that materializes the stream into an in-memory Trace. */
class TraceCollector final : public TraceSink
{
  public:
    TraceCollector() = default;

    void
    emit(const TraceOp &op) override
    {
        trace_.push_back(op);
    }

    Trace &trace() { return trace_; }
    const Trace &trace() const { return trace_; }

    /** Move the collected trace out (leaves the collector empty). */
    Trace
    take()
    {
        return std::move(trace_);
    }

  private:
    Trace trace_;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_TRACE_SINK_HPP
