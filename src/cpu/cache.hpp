/**
 * @file
 * Simple data-cache latency model.
 *
 * The Figure 13 experiments assume the working set is prefetched into
 * the L2 cache (Section VI-B), so the model is a set-associative L1D
 * with LRU backed by an always-hitting L2: the first touch of a line
 * pays the L2 hit latency, re-references within L1 residency pay the
 * L1 latency.
 *
 * Tags live in one contiguous array of l1Sets x l1Ways entries kept in
 * MRU-first order per set (exact LRU: the victim is the last entry),
 * so an access is a short linear scan plus an in-place rotate over at
 * most 96 bytes -- no allocation after construction (the seed's
 * per-set std::list LRU paid a node allocation per fill and a pointer
 * chase per probe, the hottest path of the whole replayer).
 */

#ifndef VEGETA_CPU_CACHE_HPP
#define VEGETA_CPU_CACHE_HPP

#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace vegeta::cpu {

struct CacheConfig
{
    u32 lineBytes = 64;     ///< must be a power of two
    u32 l1Sets = 64;        ///< must be a power of two
    u32 l1Ways = 12;        ///< 48 KB L1D
    Cycles l1Latency = 4;
    Cycles l2Latency = 14;  ///< all misses hit in the prefetched L2
};

/** L1-with-L2-backing latency model. */
class CacheModel
{
  public:
    explicit CacheModel(CacheConfig config = {});

    /**
     * Access one line-aligned address; returns the load-use latency.
     * Defined inline: this is called once per touched cache line by
     * the replay loop, the hottest call site in the simulator.
     */
    Cycles
    accessLine(Addr addr)
    {
        // lineBytes / l1Sets are powers of two (checked at
        // construction): shift + mask instead of runtime div/mod,
        // which would otherwise dominate the per-line cost.
        const u64 line = addr >> line_shift_;
        const u32 ways = config_.l1Ways;
        u64 *set = tags_.data() + (line & set_mask_) * ways;

        // Branchless fixed-length scan (a tag can match at most one
        // way; empty ways hold kInvalidTag and never match): the only
        // data-dependent branch left is the single hit/miss test,
        // instead of two exits per way.
        u32 hit_way = ways;
        for (u32 w = 0; w < ways; ++w)
            if (set[w] == line)
                hit_way = w;

        if (hit_way == ways) {
            // Miss: every way shifts down one slot; the LRU tail
            // drops off.
            ++misses_;
            std::memmove(set + 1, set, (ways - 1) * sizeof(u64));
            set[0] = line;
            return config_.l2Latency;
        }

        // Hit at depth hit_way: rotate it to the MRU front.
        ++hits_;
        std::memmove(set + 1, set, hit_way * sizeof(u64));
        set[0] = line;
        return config_.l1Latency;
    }

    /** Aggregate of one multi-line range access. */
    struct RangeAccess
    {
        Cycles maxLatency = 0; ///< slowest touched line
        u32 lines = 0;         ///< cache lines the range spans
    };

    /**
     * Access every line of [addr, addr + bytes) in ascending order;
     * returns the aggregate (no per-call allocation).
     */
    RangeAccess accessRange(Addr addr, u32 bytes);

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }

    void reset();

    const CacheConfig &config() const { return config_; }

  private:
    static constexpr u64 kInvalidTag = ~u64{0};

    CacheConfig config_;
    u32 line_shift_ = 6; ///< log2(lineBytes)
    u64 set_mask_ = 63;  ///< l1Sets - 1
    /** l1Sets x l1Ways line tags, MRU first (kInvalidTag = empty). */
    std::vector<u64> tags_;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_CACHE_HPP
