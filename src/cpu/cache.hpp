/**
 * @file
 * Simple data-cache latency model.
 *
 * The Figure 13 experiments assume the working set is prefetched into
 * the L2 cache (Section VI-B), so the model is a set-associative L1D
 * with LRU backed by an always-hitting L2: the first touch of a line
 * pays the L2 hit latency, re-references within L1 residency pay the
 * L1 latency.
 *
 * Tags live in one contiguous array of l1Sets x l1Ways entries kept in
 * MRU-first order per set (exact LRU: the victim is the last entry),
 * so an access is a short linear scan plus an in-place rotate over at
 * most 96 bytes -- no allocation after construction (the seed's
 * per-set std::list LRU paid a node allocation per fill and a pointer
 * chase per probe).  A timestamp-LRU variant (scan + one stamp store)
 * was measured and rejected: the GEMM streams miss almost always, and
 * its miss path chains a second serial min-scan for the victim where
 * the MRU order gives the victim for free (the tail), costing ~1.6x
 * per access on the real line streams.
 */

#ifndef VEGETA_CPU_CACHE_HPP
#define VEGETA_CPU_CACHE_HPP

#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace vegeta::cpu {

struct CacheConfig
{
    u32 lineBytes = 64;     ///< must be a power of two
    u32 l1Sets = 64;        ///< must be a power of two
    u32 l1Ways = 12;        ///< 48 KB L1D
    Cycles l1Latency = 4;
    Cycles l2Latency = 14;  ///< all misses hit in the prefetched L2
};

/** L1-with-L2-backing latency model. */
class CacheModel
{
  public:
    explicit CacheModel(CacheConfig config = {});

    /**
     * Access one line-aligned address; returns the load-use latency.
     * Defined inline: this is called once per touched cache line by
     * the replay loop, the hottest call site in the simulator.
     */
    Cycles
    accessLine(Addr addr)
    {
        // lineBytes / l1Sets are powers of two (checked at
        // construction): shift + mask instead of runtime div/mod,
        // which would otherwise dominate the per-line cost.
        const u64 line = addr >> line_shift_;
        const u32 ways = config_.l1Ways;
        u64 *set = tags_.data() + (line & set_mask_) * ways;

        // Branchless fixed-length scan (a tag can match at most one
        // way; empty ways hold kInvalidTag and never match): the only
        // data-dependent branch left is the single hit/miss test,
        // instead of two exits per way.
        u32 hit_way = ways;
        for (u32 w = 0; w < ways; ++w)
            if (set[w] == line)
                hit_way = w;

        if (hit_way == ways) {
            // Miss: every way shifts down one slot; the LRU tail
            // drops off.
            ++misses_;
            rotateToFront(set, ways - 1, line);
            return config_.l2Latency;
        }

        // Hit at depth hit_way: rotate it to the MRU front.
        ++hits_;
        rotateToFront(set, hit_way, line);
        return config_.l1Latency;
    }

    /**
     * Shift set[0..depth) down one slot and install @p line at the MRU
     * front.  An open-coded backward copy: the shift is 0..11 words,
     * where a variable-length memmove costs more in libc dispatch than
     * the move itself (this runs once per line access, the hottest
     * loop of the replayer).
     */
    static void
    rotateToFront(u64 *set, u32 depth, u64 line)
    {
        for (u32 w = depth; w > 0; --w)
            set[w] = set[w - 1];
        set[0] = line;
    }

    /** Aggregate of one multi-line range access. */
    struct RangeAccess
    {
        Cycles maxLatency = 0; ///< slowest touched line
        u32 lines = 0;         ///< cache lines the range spans
    };

    /**
     * Access every line of [addr, addr + bytes) in ascending order;
     * returns the aggregate (no per-call allocation).
     */
    RangeAccess accessRange(Addr addr, u32 bytes);

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }

    void reset();

    const CacheConfig &config() const { return config_; }

  private:
    static constexpr u64 kInvalidTag = ~u64{0};

    CacheConfig config_;
    u32 line_shift_ = 6; ///< log2(lineBytes)
    u64 set_mask_ = 63;  ///< l1Sets - 1
    /** l1Sets x l1Ways line tags, MRU first (kInvalidTag = empty). */
    std::vector<u64> tags_;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

/**
 * Lane-banked variant of CacheModel for the struct-of-arrays replay
 * core: one contiguous tag array holds every lane's bank back to back,
 * with the per-lane geometry (shift, mask, ways, latencies, bank base)
 * in parallel arrays indexed by lane.  Lanes may have heterogeneous
 * configurations (sweep packs mix engines and cores); each bank
 * behaves bit-identically to a standalone CacheModel with that lane's
 * CacheConfig.
 *
 * Unlike CacheModel, each set is a *circular* MRU list: a per-set head
 * index marks the MRU slot and logical recency position d lives at
 * physical slot (head + d) % ways.  A miss then inserts by stepping
 * the head back and overwriting the tail in place -- one store --
 * where the flat MRU array shifted ways-1 words per miss; the GEMM
 * streams miss almost always, so the miss path is the one that pays.
 * Hits rotate the short logical prefix like the flat layout.  The
 * hit/miss sequence (exact LRU) is identical either way.
 */
class LaneCacheModel
{
  public:
    explicit LaneCacheModel(const std::vector<CacheConfig> &configs);

    /** Access one line-aligned address in @p lane's bank; returns the
     *  load-use latency.  Inline: the hottest replay call site. */
    Cycles
    accessLine(u32 lane, Addr addr)
    {
        const u64 line = addr >> line_shift_[lane];
        const u32 ways = ways_[lane];
        const u64 set_idx = line & set_mask_[lane];
        u64 *set = tags_.data() + bank_base_[lane] + set_idx * ways;
        u32 *head = heads_.data() + head_base_[lane] + set_idx;

        // Branchless fixed-length scan over the physical slots (a tag
        // can match at most one way; recency order does not affect
        // matching).
        u32 hit_way = ways;
        for (u32 w = 0; w < ways; ++w)
            if (set[w] == line)
                hit_way = w;

        if (hit_way == ways) {
            // Miss: step the head back onto the LRU tail and
            // overwrite it in place -- the one-store eviction the
            // circular layout exists for.
            ++misses_[lane];
            const u32 h = *head == 0 ? ways - 1 : *head - 1;
            set[h] = line;
            *head = h;
            return l2_latency_[lane];
        }

        // Hit at logical depth d: rotate the logical prefix [0, d)
        // one step so the line becomes MRU (d is usually small when
        // hits happen at all).
        ++hits_[lane];
        const u32 h = *head;
        u32 d = hit_way >= h ? hit_way - h : hit_way + ways - h;
        for (; d > 0; --d) {
            const u32 to = h + d >= ways ? h + d - ways : h + d;
            const u32 from = to == 0 ? ways - 1 : to - 1;
            set[to] = set[from];
        }
        set[h] = line;
        return l1_latency_[lane];
    }

    /**
     * Probe @p count lines in one call: out[i] receives exactly what
     * accessLine(lane, addr + i * stride) would return, in order.
     * The replayer batch-hoists each op's line probes through this:
     * the bank geometry loads hoist out of the loop and the scan +
     * eviction bodies run with a compile-time way count (specialized
     * for the common associativities), neither of which the compiler
     * can do for repeated accessLine calls.
     */
    void probeSpan(u32 lane, Addr addr, u64 stride, u64 count,
                   Cycles *out);

    u64 hits(u32 lane) const { return hits_[lane]; }
    u64 misses(u32 lane) const { return misses_[lane]; }

    /** Invalidate one lane's bank and zero its counters. */
    void resetLane(u32 lane);
    /** Reset every lane. */
    void reset();

    const CacheConfig &config(u32 lane) const { return configs_[lane]; }

  private:
    static constexpr u64 kInvalidTag = ~u64{0};

    std::vector<CacheConfig> configs_;
    // Per-lane geometry, parallel arrays indexed by lane.
    std::vector<u32> line_shift_;
    std::vector<u32> ways_;
    std::vector<u64> set_mask_;
    std::vector<Cycles> l1_latency_;
    std::vector<Cycles> l2_latency_;
    std::vector<std::size_t> bank_base_; ///< lane's offset into tags_
    std::vector<std::size_t> bank_size_;
    std::vector<std::size_t> head_base_; ///< lane's offset into heads_
    /** All lanes' tag banks, back to back. */
    std::vector<u64> tags_;
    /** Per-set MRU slot index (circular recency order). */
    std::vector<u32> heads_;
    std::vector<u64> hits_;
    std::vector<u64> misses_;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_CACHE_HPP
