/**
 * @file
 * Simple data-cache latency model.
 *
 * The Figure 13 experiments assume the working set is prefetched into
 * the L2 cache (Section VI-B), so the model is a set-associative L1D
 * with LRU backed by an always-hitting L2: the first touch of a line
 * pays the L2 hit latency, re-references within L1 residency pay the
 * L1 latency.
 */

#ifndef VEGETA_CPU_CACHE_HPP
#define VEGETA_CPU_CACHE_HPP

#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace vegeta::cpu {

struct CacheConfig
{
    u32 lineBytes = 64;
    u32 l1Sets = 64;
    u32 l1Ways = 12;        ///< 48 KB L1D
    Cycles l1Latency = 4;
    Cycles l2Latency = 14;  ///< all misses hit in the prefetched L2
};

/** L1-with-L2-backing latency model. */
class CacheModel
{
  public:
    explicit CacheModel(CacheConfig config = {});

    /** Access one line-aligned address; returns the load-use latency. */
    Cycles accessLine(Addr addr);

    /**
     * Access [addr, addr + bytes); returns per-line latencies (one
     * entry per touched cache line).
     */
    std::vector<Cycles> accessRange(Addr addr, u32 bytes);

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }

    void reset();

    const CacheConfig &config() const { return config_; }

  private:
    struct Set
    {
        std::list<u64> lru; ///< front = most recent line tag
    };

    CacheConfig config_;
    std::vector<Set> sets_;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_CACHE_HPP
