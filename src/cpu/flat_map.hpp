/**
 * @file
 * Open-addressed u64 -> Cycles map for the replay hot loop.
 *
 * The scheduler keys store-to-load line dependences by cache-line
 * index and vector-FMA accumulator chains by chain id.  Both live on
 * the per-op critical path, where std::unordered_map's node
 * allocation and pointer chasing dominate the profile.  FlatCycleMap
 * is a power-of-two open-addressed table with linear probing: one
 * contiguous allocation, no per-insert allocation, and lookups that
 * touch a single cache line in the common case.  clear() keeps the
 * capacity, so a reused TraceCpu allocates nothing after warm-up.
 *
 * Capacity grows only with the number of *distinct* keys (data
 * footprint), never with trace length.
 */

#ifndef VEGETA_CPU_FLAT_MAP_HPP
#define VEGETA_CPU_FLAT_MAP_HPP

#include <vector>

#include "common/types.hpp"

namespace vegeta::cpu {

class FlatCycleMap
{
  public:
    explicit FlatCycleMap(std::size_t initial_capacity = 1024)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap *= 2;
        slots_.resize(cap);
    }

    /** Value for @p key, or nullptr if absent. */
    const Cycles *
    find(u64 key) const
    {
        const u64 stored = key + 1; // 0 marks an empty slot
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            if (slots_[i].key == stored)
                return &slots_[i].value;
            if (slots_[i].key == 0)
                return nullptr;
        }
    }

    void
    insertOrAssign(u64 key, Cycles value)
    {
        const u64 stored = key + 1;
        const std::size_t mask = slots_.size() - 1;
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            if (slots_[i].key == stored) {
                slots_[i].value = value;
                return;
            }
            if (slots_[i].key == 0) {
                slots_[i] = {stored, value};
                if (++size_ * 4 > slots_.size() * 3)
                    grow();
                return;
            }
        }
    }

    std::size_t size() const { return size_; }

    /** Drop every entry but keep the table allocation. */
    void
    clear()
    {
        if (size_ == 0)
            return;
        for (auto &slot : slots_)
            slot.key = 0;
        size_ = 0;
    }

  private:
    struct Slot
    {
        u64 key = 0; ///< stored key + 1; 0 = empty
        Cycles value = 0;
    };

    static u64
    hash(u64 key)
    {
        // Fibonacci multiplicative hash: line indices and chain ids
        // are sequential, which a plain mask would cluster.
        return (key * 0x9e3779b97f4a7c15ull) >> 16;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, {});
        const std::size_t mask = slots_.size() - 1;
        for (const auto &slot : old) {
            if (slot.key == 0)
                continue;
            std::size_t i = hash(slot.key - 1) & mask;
            while (slots_[i].key != 0)
                i = (i + 1) & mask;
            slots_[i] = slot;
        }
    }

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_FLAT_MAP_HPP
