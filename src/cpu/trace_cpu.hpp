/**
 * @file
 * Trace-driven out-of-order CPU model with an integrated VEGETA engine
 * (the MacSim substitute of Section VI-A/B).
 *
 * Modeled per the paper's configuration: 4-wide fetch/issue/retire,
 * 16-stage front end, 97-entry ROB, 96-entry load buffer, data
 * prefetched into L2, core at 2 GHz with matrix engines at 0.5 GHz
 * (engine cycles are 4 core cycles in the Figure 13 setup).
 *
 * The model schedules each trace op analytically: dispatch is limited
 * by fetch width and ROB occupancy, issue by operand readiness and
 * functional-unit ports, retirement is in order.  Tile registers are
 * renamed: dependencies are RAW-only, and tile-compute scheduling
 * (stage pipelining + output forwarding) is delegated to
 * engine::PipelineModel.
 */

#ifndef VEGETA_CPU_TRACE_CPU_HPP
#define VEGETA_CPU_TRACE_CPU_HPP

#include <map>
#include <unordered_map>

#include "cpu/cache.hpp"
#include "cpu/uop.hpp"
#include "engine/pipeline.hpp"

namespace vegeta::cpu {

/** Core parameters (defaults follow Section VI-B). */
struct CoreConfig
{
    u32 fetchWidth = 4;
    u32 retireWidth = 4;
    u32 robEntries = 97;
    u32 loadBufferEntries = 96;
    u32 frontEndDepth = 16; ///< 16-stage pipeline fill
    u32 numAlus = 4;
    u32 numLsuPorts = 2;
    u32 numVectorFus = 2;
    Cycles vectorFmaLatency = 4;
    /** Core-to-engine clock ratio (2 GHz core / 0.5 GHz engine). */
    u32 engineClockDivider = 4;
    bool outputForwarding = false;
    CacheConfig cache;
};

/** Simulation outputs. */
struct SimResult
{
    Cycles totalCycles = 0; ///< core cycles until last retirement
    u64 retiredOps = 0;
    std::map<UopKind, u64> kindCounts;
    u64 engineInstructions = 0;
    Cycles engineLastFinish = 0; ///< core cycle of last engine finish
    u64 cacheHits = 0;
    u64 cacheMisses = 0;

    /** Engine MAC utilization over the whole run (0..1). */
    double macUtilization = 0.0;
};

/** The trace-driven core. */
class TraceCpu
{
  public:
    TraceCpu(CoreConfig core, engine::EngineConfig engine);

    /** Simulate a trace from a cold pipeline; returns statistics. */
    SimResult run(const Trace &trace);

    const CoreConfig &coreConfig() const { return core_; }
    const engine::EngineConfig &engineConfig() const
    {
        return engine_config_;
    }

  private:
    /** N identical fully-pipelined units; each issue occupies 1 cycle. */
    class ResourcePool
    {
      public:
        explicit ResourcePool(u32 units) : next_free_(units, 0) {}

        Cycles
        acquire(Cycles earliest)
        {
            u32 best = 0;
            for (u32 u = 1; u < next_free_.size(); ++u)
                if (next_free_[u] < next_free_[best])
                    best = u;
            const Cycles start = std::max(earliest, next_free_[best]);
            next_free_[best] = start + 1;
            return start;
        }

        void
        reset()
        {
            std::fill(next_free_.begin(), next_free_.end(), 0);
        }

      private:
        std::vector<Cycles> next_free_;
    };

    struct RegInfo
    {
        Cycles ready = 0;
        bool engineProduced = false;
    };

    Cycles toEngineCycles(Cycles core) const;
    Cycles toCoreCycles(Cycles engine) const;

    CoreConfig core_;
    engine::EngineConfig engine_config_;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_TRACE_CPU_HPP
