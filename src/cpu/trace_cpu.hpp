/**
 * @file
 * Trace-driven out-of-order CPU model with an integrated VEGETA engine
 * (the MacSim substitute of Section VI-A/B).
 *
 * Modeled per the paper's configuration: 4-wide fetch/issue/retire,
 * 16-stage front end, 97-entry ROB, 96-entry load buffer, data
 * prefetched into L2, core at 2 GHz with matrix engines at 0.5 GHz
 * (engine cycles are 4 core cycles in the Figure 13 setup).
 *
 * The model schedules each trace op analytically: dispatch is limited
 * by fetch width and ROB occupancy, issue by operand readiness and
 * functional-unit ports, retirement is in order.  Tile registers are
 * renamed: dependencies are RAW-only, and tile-compute scheduling
 * (stage pipelining + output forwarding) is delegated to
 * engine::PipelineModel.
 *
 * The replayer is a streaming consumer: feed ops one at a time with
 * step() (or as a TraceSink via emit()) and collect statistics with
 * finish().  Kernels can therefore emit uops straight into the model
 * with no intermediate cpu::Trace, and the per-op state is all O(1):
 * dispatch/retire windows and the load buffer are fixed-size rings,
 * register renaming is a 16-entry array, and store-line / FMA-chain
 * dependences live in open-addressed flat maps.  Nothing on the
 * per-op path allocates.
 */

#ifndef VEGETA_CPU_TRACE_CPU_HPP
#define VEGETA_CPU_TRACE_CPU_HPP

#include <array>
#include <map>

#include "cpu/cache.hpp"
#include "cpu/flat_map.hpp"
#include "cpu/trace_sink.hpp"
#include "engine/pipeline.hpp"

namespace vegeta::cpu {

/** Core parameters (defaults follow Section VI-B). */
struct CoreConfig
{
    u32 fetchWidth = 4;
    u32 retireWidth = 4;
    u32 robEntries = 97;
    u32 loadBufferEntries = 96;
    u32 frontEndDepth = 16; ///< 16-stage pipeline fill
    u32 numAlus = 4;
    u32 numLsuPorts = 2;
    u32 numVectorFus = 2;
    Cycles vectorFmaLatency = 4;
    /** Core-to-engine clock ratio (2 GHz core / 0.5 GHz engine). */
    u32 engineClockDivider = 4;
    bool outputForwarding = false;
    CacheConfig cache;
};

/** Simulation outputs. */
struct SimResult
{
    Cycles totalCycles = 0; ///< core cycles until last retirement
    u64 retiredOps = 0;
    std::map<UopKind, u64> kindCounts;
    u64 engineInstructions = 0;
    Cycles engineLastFinish = 0; ///< core cycle of last engine finish
    u64 cacheHits = 0;
    u64 cacheMisses = 0;

    /** Engine MAC utilization over the whole run (0..1). */
    double macUtilization = 0.0;
};

/** The trace-driven core: a streaming replayer. */
class TraceCpu final : public TraceSink
{
  public:
    TraceCpu(CoreConfig core, engine::EngineConfig engine);

    /**
     * Begin a fresh simulation from a cold pipeline, discarding any
     * partially-stepped stream.  Keeps every allocation.
     */
    void reset();

    /** Schedule the next op of the stream. */
    void step(const TraceOp &op);

    /** TraceSink: kernels emit uops straight into the scheduler. */
    void
    emit(const TraceOp &op) override
    {
        step(op);
    }

    /**
     * Statistics of the stream stepped since the last reset; leaves
     * the model reset for the next stream.
     */
    SimResult finish();

    /** Batch convenience: reset, step every op, finish. */
    SimResult run(const Trace &trace);

    const CoreConfig &coreConfig() const { return core_; }
    const engine::EngineConfig &engineConfig() const
    {
        return engine_config_;
    }

  private:
    /** Line size memory traffic splits at (Section V-F). */
    static constexpr u32 kLineBytes = 64;

    /** N identical fully-pipelined units; each issue occupies 1 cycle. */
    class ResourcePool
    {
      public:
        static constexpr u32 kMaxUnits = 16;

        explicit ResourcePool(u32 units) : units_(units)
        {
            VEGETA_ASSERT(units > 0 && units <= kMaxUnits,
                          "resource pool supports 1..16 units, got ",
                          units);
            next_free_.fill(0);
        }

        Cycles
        acquire(Cycles earliest)
        {
            u32 best = 0;
            for (u32 u = 1; u < units_; ++u)
                if (next_free_[u] < next_free_[best])
                    best = u;
            const Cycles start = std::max(earliest, next_free_[best]);
            next_free_[best] = start + 1;
            return start;
        }

        void
        reset()
        {
            next_free_.fill(0);
        }

      private:
        u32 units_;
        /** Inline storage: acquire() runs once per op / line fill. */
        std::array<Cycles, kMaxUnits> next_free_;
    };

    struct RegInfo
    {
        Cycles ready = 0;
        bool engineProduced = false;
    };

    Cycles toEngineCycles(Cycles core) const;
    Cycles toCoreCycles(Cycles engine) const;

    /** Issue [addr, addr+bytes) line by line; returns completion. */
    Cycles issueLineRange(Cycles earliest, Addr addr, u64 bytes);
    /** Mark every line of [addr, addr+bytes) store-owned. */
    void recordStoreRange(Cycles data_ready, Addr addr, u64 bytes);

    CoreConfig core_;
    engine::EngineConfig engine_config_;

    CacheModel cache_;
    engine::PipelineModel engine_;
    ResourcePool alus_;
    ResourcePool lsu_;
    ResourcePool vectors_;

    // Dispatch/retire windows: the scheduler looks back at most
    // max(fetchWidth, retireWidth, robEntries) ops, so the full-trace
    // vectors of the seed collapse into two rings of that depth.
    std::vector<Cycles> dispatch_ring_;
    std::vector<Cycles> retire_ring_;
    u64 ring_mask_ = 0; ///< rings are power-of-two sized

    /** Completion times of the last loadBufferEntries line fills. */
    std::vector<Cycles> load_buffer_;
    u64 load_buffer_fills_ = 0;
    u32 load_buffer_cursor_ = 0; ///< fills % entries, kept by wrap

    /** Rename table over the 16-entry physical dep-id space. */
    std::array<RegInfo, isa::kNumDepRegs> rename_{};

    FlatCycleMap vector_chains_;
    /** Store-to-load memory dependence at cache-line granularity. */
    FlatCycleMap store_line_ready_;
    // Bounding box of all stored lines: loads outside it (the bulk of
    // A/B tile traffic, which lives in regions never stored to) skip
    // the dependence probe entirely.
    u64 stored_line_min_ = ~u64{0};
    u64 stored_line_max_ = 0;

    u64 ops_ = 0;
    Cycles last_retire_ = 0;
    std::array<u64, 8> kind_counts_{};
    u64 engine_instructions_ = 0;
    Cycles engine_last_finish_ = 0;
    u64 effectual_macs_ = 0;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_TRACE_CPU_HPP
