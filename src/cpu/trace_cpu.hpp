/**
 * @file
 * Trace-driven out-of-order CPU model with an integrated VEGETA engine
 * (the MacSim substitute of Section VI-A/B).
 *
 * Modeled per the paper's configuration: 4-wide fetch/issue/retire,
 * 16-stage front end, 97-entry ROB, 96-entry load buffer, data
 * prefetched into L2, core at 2 GHz with matrix engines at 0.5 GHz
 * (engine cycles are 4 core cycles in the Figure 13 setup).
 *
 * The model schedules each trace op analytically: dispatch is limited
 * by fetch width and ROB occupancy, issue by operand readiness and
 * functional-unit ports, retirement is in order.  Tile registers are
 * renamed: dependencies are RAW-only, and tile-compute scheduling
 * (stage pipelining + output forwarding) is delegated to
 * engine::PipelineModel.
 *
 * The replayer is a streaming consumer: feed ops one at a time with
 * step() (or as a TraceSink via emit()) and collect statistics with
 * finish().  The scheduler itself lives in cpu::LaneReplayer
 * (lane_replayer.hpp), the struct-of-arrays core that replays K
 * independent traces in interleaved lanes; TraceCpu is its one-lane
 * facade, so single-stream and lane-batched replay share every line
 * of scheduling code and cannot drift apart (CoreConfig and SimResult
 * are defined alongside the core).  Nothing on the per-op path
 * allocates.
 */

#ifndef VEGETA_CPU_TRACE_CPU_HPP
#define VEGETA_CPU_TRACE_CPU_HPP

#include "cpu/lane_replayer.hpp"

namespace vegeta::cpu {

/** The trace-driven core: a streaming replayer (one lane). */
class TraceCpu final : public TraceSink
{
  public:
    TraceCpu(CoreConfig core, engine::EngineConfig engine);

    /**
     * Begin a fresh simulation from a cold pipeline, discarding any
     * partially-stepped stream.  Keeps every allocation.
     */
    void
    reset()
    {
        lanes_.resetLane(0);
    }

    /** Schedule the next op of the stream. */
    void
    step(const TraceOp &op)
    {
        lanes_.step(0, op);
    }

    /** TraceSink: kernels emit uops straight into the scheduler. */
    void
    emit(const TraceOp &op) override
    {
        lanes_.step(0, op);
    }

    /**
     * Statistics of the stream stepped since the last reset; leaves
     * the model reset for the next stream.
     */
    SimResult
    finish()
    {
        return lanes_.finishLane(0);
    }

    /** Batch convenience: reset, step every op, finish. */
    SimResult run(const Trace &trace);

    const CoreConfig &coreConfig() const
    {
        return lanes_.coreConfig(0);
    }
    const engine::EngineConfig &engineConfig() const
    {
        return lanes_.engineConfig(0);
    }

  private:
    LaneReplayer lanes_;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_TRACE_CPU_HPP
