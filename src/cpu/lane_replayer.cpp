#include "cpu/lane_replayer.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "sim/telemetry.hpp"

namespace vegeta::cpu {

namespace {

u64
ringSize(u64 min_entries)
{
    u64 size = 1;
    while (size < min_entries)
        size *= 2;
    return size;
}

std::vector<CacheConfig>
cacheConfigs(const std::vector<LaneReplayer::LaneSpec> &lanes)
{
    std::vector<CacheConfig> configs;
    configs.reserve(lanes.size());
    for (const auto &lane : lanes)
        configs.push_back(lane.core.cache);
    return configs;
}

} // namespace

LaneReplayer::LaneReplayer(const std::vector<LaneSpec> &lanes)
    : num_lanes_(static_cast<u32>(lanes.size())),
      cache_(cacheConfigs(lanes))
{
    VEGETA_ASSERT(!lanes.empty(),
                  "lane replayer needs at least 1 lane");

    cores_.reserve(num_lanes_);
    engine_configs_.reserve(num_lanes_);
    engines_.reserve(num_lanes_);
    sinks_.reserve(num_lanes_);

    u64 max_window = 0;
    u32 max_lb = 0;
    for (const LaneSpec &lane : lanes) {
        const CoreConfig &core = lane.core;
        VEGETA_ASSERT(core.fetchWidth > 0 && core.retireWidth > 0 &&
                          core.robEntries > 0,
                      "degenerate core configuration");
        VEGETA_ASSERT(core.loadBufferEntries > 0,
                      "degenerate load buffer");
        VEGETA_ASSERT(core.numAlus > 0 && core.numAlus <= kMaxUnits &&
                          core.numLsuPorts > 0 &&
                          core.numLsuPorts <= kMaxUnits &&
                          core.numVectorFus > 0 &&
                          core.numVectorFus <= kMaxUnits,
                      "resource pools support 1..16 units");
        max_window = std::max<u64>(
            max_window, std::max<u64>({core.fetchWidth,
                                       core.retireWidth,
                                       core.robEntries}));
        max_lb = std::max(max_lb, core.loadBufferEntries);

        cores_.push_back(core);
        engine_configs_.push_back(lane.engine);
        engines_.emplace_back(lane.engine, core.outputForwarding);

        alu_units_.push_back(core.numAlus);
        lsu_units_.push_back(core.numLsuPorts);
        vec_units_.push_back(core.numVectorFus);
        fetch_width_.push_back(core.fetchWidth);
        retire_width_.push_back(core.retireWidth);
        rob_entries_.push_back(core.robEntries);
        front_end_depth_.push_back(core.frontEndDepth);
        vector_fma_latency_.push_back(core.vectorFmaLatency);
        engine_clock_divider_.push_back(core.engineClockDivider);
        lb_entries_.push_back(core.loadBufferEntries);
    }

    // One stride for every lane: a ring larger than a lane's own
    // window is behaviourally identical (slots are rewritten before
    // the op-index guards let them be read again).
    ring_stride_ = ringSize(max_window + 1);
    ring_mask_ = ring_stride_ - 1;
    dispatch_ring_.assign(std::size_t{ring_stride_} * num_lanes_, 0);
    retire_ring_.assign(std::size_t{ring_stride_} * num_lanes_, 0);

    lb_stride_ = max_lb;
    load_buffer_.assign(std::size_t{lb_stride_} * num_lanes_, 0);
    lb_fills_.assign(num_lanes_, 0);
    lb_cursor_.assign(num_lanes_, 0);

    alu_free_.assign(std::size_t{kMaxUnits} * num_lanes_, 0);
    lsu_free_.assign(std::size_t{kMaxUnits} * num_lanes_, 0);
    vec_free_.assign(std::size_t{kMaxUnits} * num_lanes_, 0);

    rename_ready_.assign(std::size_t{isa::kNumDepRegs} * num_lanes_,
                         0);
    rename_engine_.assign(std::size_t{isa::kNumDepRegs} * num_lanes_,
                          0);

    vector_chains_.resize(num_lanes_);
    store_line_ready_.resize(num_lanes_);
    stored_line_min_.assign(num_lanes_, ~u64{0});
    stored_line_max_.assign(num_lanes_, 0);

    ops_.assign(num_lanes_, 0);
    last_retire_.assign(num_lanes_, 0);
    kind_counts_.assign(std::size_t{8} * num_lanes_, 0);
    engine_instructions_.assign(num_lanes_, 0);
    engine_last_finish_.assign(num_lanes_, 0);
    effectual_macs_.assign(num_lanes_, 0);

    for (u32 lane = 0; lane < num_lanes_; ++lane)
        sinks_.emplace_back(this, lane);
}

Cycles
LaneReplayer::toEngineCycles(u32 lane, Cycles core) const
{
    // Round up: an engine instruction can begin at the next engine
    // clock edge at or after the core-cycle issue.
    const u32 div = engine_clock_divider_[lane];
    return (core + div - 1) / div;
}

Cycles
LaneReplayer::toCoreCycles(u32 lane, Cycles eng) const
{
    return eng * engine_clock_divider_[lane];
}

Cycles
LaneReplayer::acquireUnit(std::vector<Cycles> &pool, u32 lane,
                          u32 units, Cycles earliest)
{
    Cycles *strip = pool.data() + std::size_t{lane} * kMaxUnits;
    u32 best = 0;
    for (u32 u = 1; u < units; ++u)
        if (strip[u] < strip[best])
            best = u;
    const Cycles start = std::max(earliest, strip[best]);
    strip[best] = start + 1;
    return start;
}

bool
LaneReplayer::probeRange(u32 lane, u64 first, u64 count, Cycles *out)
{
    // Cache probes take no input from the port/load-buffer chain, so
    // issuing all of a range's probes here, in range order, evolves
    // the cache state exactly as the serial issue loop would -- but
    // as one specialized span (probeSpan) instead of a chain of tag
    // scans threaded through the issue serialization.  Most of the
    // replay's time is these probes.  Only the scratch size bounds
    // the batch; oversized ranges (no real kernel emits one) fall
    // back to probing inside the serial loop.
    if (count > kProbeBatch)
        return false;
    cache_.probeSpan(lane, first * u64{kLineBytes}, kLineBytes, count,
                     out);
    return true;
}

Cycles
LaneReplayer::issueLineRange(u32 lane, Cycles earliest, Addr addr,
                             u64 bytes)
{
    // Span from the first to the last touched line: a 64 B load at
    // line offset 32 touches two lines, which a ceil(bytes / 64)
    // would undercount for unaligned addresses.
    const u64 first = addr / kLineBytes;
    const u64 last = (addr + std::max<u64>(bytes, 1) - 1) / kLineBytes;
    const bool may_alias_store = first <= stored_line_max_[lane] &&
                                 last >= stored_line_min_[lane];

    // Phase 1: cache probes, independent of the issue serialization.
    Cycles probe[kProbeBatch];
    const bool batched = probeRange(lane, first, last - first + 1,
                                    probe);

    // Load-buffer ring state lives in locals across the range loop:
    // the member stores would otherwise force a reload per line (a
    // tile load is up to 64 of them).
    const u32 lb_entries = lb_entries_[lane];
    u64 lb_fills = lb_fills_[lane];
    u32 lb_cursor = lb_cursor_[lane];
    Cycles *lb = load_buffer_.data() + std::size_t{lane} * lb_stride_;
    const FlatCycleMap &stores = store_line_ready_[lane];
    const u32 lsu_units = lsu_units_[lane];

    // Phase 2: the serial issue loop (port contention + load-buffer
    // occupancy + store forwarding).
    Cycles complete = earliest;
    for (u64 line = first; line <= last; ++line) {
        // A new line fill needs a free load-buffer entry: wait for
        // the entry allocated lb_entries fills ago, whose completion
        // time still sits in the ring slot about to be overwritten.
        Cycles line_earliest = earliest;
        if (lb_fills >= lb_entries)
            line_earliest = std::max(line_earliest, lb[lb_cursor]);
        if (may_alias_store) {
            if (const Cycles *st = stores.find(line))
                line_earliest = std::max(line_earliest, *st);
        }
        const Cycles port =
            acquireUnit(lsu_free_, lane, lsu_units, line_earliest);
        const Cycles latency =
            batched ? probe[line - first]
                    : cache_.accessLine(lane, line * u64{kLineBytes});
        const Cycles line_done = port + latency;
        lb[lb_cursor] = line_done;
        if (++lb_cursor == lb_entries)
            lb_cursor = 0;
        ++lb_fills;
        complete = std::max(complete, line_done);
    }
    lb_fills_[lane] = lb_fills;
    lb_cursor_[lane] = lb_cursor;
    return complete;
}

void
LaneReplayer::recordStoreRange(u32 lane, Cycles data_ready, Addr addr,
                               u64 bytes)
{
    const u64 first = addr / kLineBytes;
    const u64 last = (addr + std::max<u64>(bytes, 1) - 1) / kLineBytes;
    stored_line_min_[lane] = std::min(stored_line_min_[lane], first);
    stored_line_max_[lane] = std::max(stored_line_max_[lane], last);
    FlatCycleMap &stores = store_line_ready_[lane];
    for (u64 line = first; line <= last; ++line)
        stores.insertOrAssign(line, data_ready);
}

void
LaneReplayer::resetLane(u32 lane)
{
    cache_.resetLane(lane);
    engines_[lane].reset();
    std::fill_n(alu_free_.begin() + std::size_t{lane} * kMaxUnits,
                kMaxUnits, 0);
    std::fill_n(lsu_free_.begin() + std::size_t{lane} * kMaxUnits,
                kMaxUnits, 0);
    std::fill_n(vec_free_.begin() + std::size_t{lane} * kMaxUnits,
                kMaxUnits, 0);
    // The rings and load buffer need no clearing: every slot is
    // written before the op-index guards allow it to be read again.
    lb_fills_[lane] = 0;
    lb_cursor_[lane] = 0;
    std::fill_n(rename_ready_.begin() +
                    std::size_t{lane} * isa::kNumDepRegs,
                isa::kNumDepRegs, 0);
    std::fill_n(rename_engine_.begin() +
                    std::size_t{lane} * isa::kNumDepRegs,
                isa::kNumDepRegs, u8{0});
    vector_chains_[lane].clear();
    store_line_ready_[lane].clear();
    stored_line_min_[lane] = ~u64{0};
    stored_line_max_[lane] = 0;
    ops_[lane] = 0;
    last_retire_[lane] = 0;
    std::fill_n(kind_counts_.begin() + std::size_t{lane} * 8, 8,
                u64{0});
    engine_instructions_[lane] = 0;
    engine_last_finish_[lane] = 0;
    effectual_macs_[lane] = 0;
}

void
LaneReplayer::reset()
{
    for (u32 lane = 0; lane < num_lanes_; ++lane)
        resetLane(lane);
}

Cycles
LaneReplayer::dispatchOp(u32 lane, const TraceOp &op)
{
    // The entry point of every op, however it reaches the scheduler:
    // reject ops that would index outside the fixed kind/register
    // tables (step() is a public sink fed by arbitrary producers).
    VEGETA_ASSERT(static_cast<u32>(op.kind) < 8,
                  "trace op with invalid kind");
    VEGETA_ASSERT(lane < num_lanes_, "lane index out of range");
    const u64 i = ops_[lane]++;
    ++kind_counts_[std::size_t{lane} * 8 + static_cast<u32>(op.kind)];

    Cycles *dispatch = dispatch_ring_.data() +
                       std::size_t{lane} * ring_stride_;
    const Cycles *retire = retire_ring_.data() +
                           std::size_t{lane} * ring_stride_;

    // Dispatch: fetch width, program order, ROB space.
    Cycles d = front_end_depth_[lane];
    if (i > 0)
        d = std::max(d, dispatch[(i - 1) & ring_mask_]);
    if (i >= fetch_width_[lane])
        d = std::max(d,
                     dispatch[(i - fetch_width_[lane]) & ring_mask_] +
                         1);
    if (i >= rob_entries_[lane])
        d = std::max(d, retire[(i - rob_entries_[lane]) & ring_mask_]);
    dispatch[i & ring_mask_] = d;
    return d;
}

void
LaneReplayer::retireOp(u32 lane, u64 i, Cycles complete)
{
    Cycles *retire = retire_ring_.data() +
                     std::size_t{lane} * ring_stride_;

    // In-order retirement, retireWidth per cycle.
    Cycles r = complete;
    if (i > 0)
        r = std::max(r, retire[(i - 1) & ring_mask_]);
    if (i >= retire_width_[lane])
        r = std::max(
            r, retire[(i - retire_width_[lane]) & ring_mask_] + 1);
    retire[i & ring_mask_] = r;
    last_retire_[lane] = r;
}

void
LaneReplayer::step(u32 lane, const TraceOp &op)
{
    const Cycles d = dispatchOp(lane, op);
    const u64 i = ops_[lane] - 1;

    Cycles *rename_ready = rename_ready_.data() +
                           std::size_t{lane} * isa::kNumDepRegs;
    u8 *rename_engine = rename_engine_.data() +
                        std::size_t{lane} * isa::kNumDepRegs;

    Cycles complete = d;
    switch (op.kind) {
      case UopKind::Alu:
      case UopKind::Branch: {
        complete =
            acquireUnit(alu_free_, lane, alu_units_[lane], d) + 1;
        break;
      }
      case UopKind::Load: {
        complete = issueLineRange(lane, d, op.addr, op.bytes);
        break;
      }
      case UopKind::Store: {
        // Stores retire from the store queue post-commit; occupy a
        // port for address generation only.
        complete =
            acquireUnit(lsu_free_, lane, lsu_units_[lane], d) + 1;
        recordStoreRange(lane, complete, op.addr, op.bytes);
        break;
      }
      case UopKind::VectorFma: {
        Cycles ready = d;
        if (op.chain != 0) {
            if (const Cycles *it = vector_chains_[lane].find(op.chain))
                ready = std::max(ready, *it);
        }
        complete = acquireUnit(vec_free_, lane, vec_units_[lane],
                               ready) +
                   vector_fma_latency_[lane];
        if (op.chain != 0)
            vector_chains_[lane].insertOrAssign(op.chain, complete);
        break;
      }
      case UopKind::TileLoad: {
        const u32 bytes =
            op.tile.op == isa::Opcode::TileLoadM
                ? isa::kMregBytes + isa::kMregDescBytes
                : isa::regClassBytes(op.tile.dst.cls);
        complete = issueLineRange(lane, d, op.tile.addr, bytes);
        for (u32 reg : op.tile.writeRegList()) {
            rename_ready[reg] = complete;
            rename_engine[reg] = 0;
            engines_[lane].invalidateReg(reg);
        }
        break;
      }
      case UopKind::TileStore: {
        Cycles ready = d;
        for (u32 reg : op.tile.readRegList()) {
            Cycles reg_ready = rename_ready[reg];
            if (rename_engine[reg])
                reg_ready = std::max(
                    reg_ready,
                    toCoreCycles(lane,
                                 engines_[lane].regReadyFull(reg)));
            ready = std::max(ready, reg_ready);
        }
        complete =
            issueLineRange(lane, ready, op.tile.addr, isa::kTregBytes);
        recordStoreRange(lane, complete, op.tile.addr,
                         isa::kTregBytes);
        break;
      }
      case UopKind::TileCompute: {
        // Non-engine (load-produced) operand readiness; engine-
        // produced operands are sequenced inside PipelineModel,
        // including output forwarding on the accumulator.
        Cycles ready = d;
        for (u32 reg : op.tile.readRegList()) {
            if (!rename_engine[reg])
                ready = std::max(ready, rename_ready[reg]);
        }
        const engine::ScheduledOp sched = engines_[lane].issue(
            op.tile, toEngineCycles(lane, ready));
        complete = toCoreCycles(lane, sched.finish);
        for (u32 reg : op.tile.writeRegList()) {
            rename_ready[reg] = complete;
            rename_engine[reg] = 1;
        }
        ++engine_instructions_[lane];
        engine_last_finish_[lane] =
            std::max(engine_last_finish_[lane], complete);
        effectual_macs_[lane] += isa::effectualMacs(op.tile.op);
        break;
      }
    }

    retireOp(lane, i, complete);
}

void
LaneReplayer::beginLineOp(u32 lane, const TraceOp &op, LineJob &job)
{
    const Cycles d = dispatchOp(lane, op);

    job.lane = lane;
    job.kind = op.kind;
    job.op = &op;

    // Per-kind operand readiness and range, exactly as step() computes
    // them before its issueLineRange call.
    Cycles earliest = d;
    Addr addr = 0;
    u64 bytes = 1;
    switch (op.kind) {
      case UopKind::Load: {
        addr = op.addr;
        bytes = op.bytes;
        break;
      }
      case UopKind::TileLoad: {
        addr = op.tile.addr;
        bytes = op.tile.op == isa::Opcode::TileLoadM
                    ? isa::kMregBytes + isa::kMregDescBytes
                    : isa::regClassBytes(op.tile.dst.cls);
        break;
      }
      case UopKind::TileStore: {
        const Cycles *rename_ready =
            rename_ready_.data() + std::size_t{lane} * isa::kNumDepRegs;
        const u8 *rename_engine =
            rename_engine_.data() +
            std::size_t{lane} * isa::kNumDepRegs;
        for (u32 reg : op.tile.readRegList()) {
            Cycles reg_ready = rename_ready[reg];
            if (rename_engine[reg])
                reg_ready = std::max(
                    reg_ready,
                    toCoreCycles(lane,
                                 engines_[lane].regReadyFull(reg)));
            earliest = std::max(earliest, reg_ready);
        }
        addr = op.tile.addr;
        bytes = isa::kTregBytes;
        break;
      }
      default:
        VEGETA_ASSERT(false, "beginLineOp on a non-line-range op");
    }

    job.line = addr / kLineBytes;
    job.first = job.line;
    job.last = (addr + std::max<u64>(bytes, 1) - 1) / kLineBytes;
    job.earliest = earliest;
    job.complete = earliest;
    job.may_alias = job.line <= stored_line_max_[lane] &&
                    job.last >= stored_line_min_[lane];
    job.lb_fills = lb_fills_[lane];
    job.lb_cursor = lb_cursor_[lane];
    job.lb_entries = lb_entries_[lane];
    // Batch the range's cache probes up front (they commute with the
    // serial issue loop, see probeRange): the parked job then carries
    // its line latencies, and the strip loop is free of tag scans.
    job.batched =
        probeRange(lane, job.first, job.last - job.first + 1,
                   job.probe);
}

void
LaneReplayer::lineStep(LineJob &job)
{
    // One iteration of issueLineRange's loop, with the load-buffer
    // ring state carried in the job (no other op of the lane can run
    // while it is parked, so the members stay coherent).
    const u32 lane = job.lane;
    Cycles *lb = load_buffer_.data() + std::size_t{lane} * lb_stride_;

    Cycles line_earliest = job.earliest;
    if (job.lb_fills >= job.lb_entries)
        line_earliest = std::max(line_earliest, lb[job.lb_cursor]);
    if (job.may_alias) {
        if (const Cycles *st = store_line_ready_[lane].find(job.line))
            line_earliest = std::max(line_earliest, *st);
    }
    const Cycles port =
        acquireUnit(lsu_free_, lane, lsu_units_[lane], line_earliest);
    const Cycles latency =
        job.batched
            ? job.probe[job.line - job.first]
            : cache_.accessLine(lane, job.line * u64{kLineBytes});
    const Cycles line_done = port + latency;
    lb[job.lb_cursor] = line_done;
    if (++job.lb_cursor == job.lb_entries)
        job.lb_cursor = 0;
    ++job.lb_fills;
    job.complete = std::max(job.complete, line_done);
    ++job.line;
}

void
LaneReplayer::lineRun(LineJob &job)
{
    // issueLineRange's serial loop over the job's remaining lines,
    // with the ring state in locals.  Used when a job is the only one
    // left in the strip (K = 1 packs and every pack's tail): stepping
    // it one line per pass would pay the per-line job loads/stores
    // with no other lane's work to overlap.
    const u32 lane = job.lane;
    Cycles *lb = load_buffer_.data() + std::size_t{lane} * lb_stride_;
    const FlatCycleMap &stores = store_line_ready_[lane];
    const u32 lsu_units = lsu_units_[lane];
    const u32 lb_entries = job.lb_entries;
    u64 lb_fills = job.lb_fills;
    u32 lb_cursor = job.lb_cursor;
    Cycles complete = job.complete;
    for (u64 line = job.line; line <= job.last; ++line) {
        Cycles line_earliest = job.earliest;
        if (lb_fills >= lb_entries)
            line_earliest = std::max(line_earliest, lb[lb_cursor]);
        if (job.may_alias) {
            if (const Cycles *st = stores.find(line))
                line_earliest = std::max(line_earliest, *st);
        }
        const Cycles port =
            acquireUnit(lsu_free_, lane, lsu_units, line_earliest);
        const Cycles latency =
            job.batched
                ? job.probe[line - job.first]
                : cache_.accessLine(lane, line * u64{kLineBytes});
        const Cycles line_done = port + latency;
        lb[lb_cursor] = line_done;
        if (++lb_cursor == lb_entries)
            lb_cursor = 0;
        ++lb_fills;
        complete = std::max(complete, line_done);
    }
    job.lb_fills = lb_fills;
    job.lb_cursor = lb_cursor;
    job.complete = complete;
    job.line = job.last + 1;
}

void
LaneReplayer::finishLineOp(LineJob &job)
{
    const u32 lane = job.lane;
    const TraceOp &op = *job.op;
    lb_fills_[lane] = job.lb_fills;
    lb_cursor_[lane] = job.lb_cursor;

    switch (job.kind) {
      case UopKind::TileLoad: {
        Cycles *rename_ready =
            rename_ready_.data() + std::size_t{lane} * isa::kNumDepRegs;
        u8 *rename_engine = rename_engine_.data() +
                            std::size_t{lane} * isa::kNumDepRegs;
        for (u32 reg : op.tile.writeRegList()) {
            rename_ready[reg] = job.complete;
            rename_engine[reg] = 0;
            engines_[lane].invalidateReg(reg);
        }
        break;
      }
      case UopKind::TileStore: {
        recordStoreRange(lane, job.complete, op.tile.addr,
                         isa::kTregBytes);
        break;
      }
      default:
        break;
    }

    // Safe to use ops_[lane] - 1: the op was dispatched by beginLineOp
    // and no other op of this lane has run since.
    retireOp(lane, ops_[lane] - 1, job.complete);
}

void
LaneReplayer::runLineJobs(std::vector<LineJob> &slots,
                          std::vector<u32> &strip)
{
    // Strip execution: one line per parked lane per pass, so each
    // lane's serial issue chain (load-buffer wait, port acquire)
    // overlaps the other lanes' in the host's OoO window.  Jobs stay
    // in their fixed per-lane slot; the strip is an index list and
    // compaction moves 4-byte lane ids, never the jobs.
    std::size_t active = strip.size();
    while (active > 0) {
        if (active == 1) {
            // A lone job has no one to overlap with: finish it in the
            // inline serial loop instead of per-line passes.
            LineJob &job = slots[strip[0]];
            lineRun(job);
            finishLineOp(job);
            return;
        }
        std::size_t keep = 0;
        for (std::size_t j = 0; j < active; ++j) {
            LineJob &job = slots[strip[j]];
            lineStep(job);
            if (job.line <= job.last)
                strip[keep++] = strip[j];
            else
                finishLineOp(job);
        }
        active = keep;
    }
}

SimResult
LaneReplayer::finishLane(u32 lane)
{
    SimResult result;
    if (ops_[lane] > 0) {
        result.totalCycles = last_retire_[lane];
        result.retiredOps = ops_[lane];
        const u64 *counts = kind_counts_.data() + std::size_t{lane} * 8;
        for (u32 k = 0; k < 8; ++k)
            if (counts[k] > 0)
                result.kindCounts[static_cast<UopKind>(k)] = counts[k];
        result.engineInstructions = engine_instructions_[lane];
        result.engineLastFinish = engine_last_finish_[lane];
        result.cacheHits = cache_.hits(lane);
        result.cacheMisses = cache_.misses(lane);
        if (result.totalCycles > 0) {
            const double engine_cycles =
                static_cast<double>(result.totalCycles) /
                engine_clock_divider_[lane];
            result.macUtilization =
                static_cast<double>(effectual_macs_[lane]) /
                (engine_cycles * engine::kTotalMacs);
        }
    }
    resetLane(lane);
    return result;
}

std::vector<SimResult>
LaneReplayer::replay(const std::vector<const Trace *> &traces)
{
    VEGETA_ASSERT(traces.size() == num_lanes_,
                  "replay needs exactly one trace per lane, got ",
                  traces.size(), " traces for ", num_lanes_,
                  " lanes");

    // Coarse telemetry only, outside the hot loop: one timer sample
    // and two counter adds per replay() call, nothing per uop.
    u64 total_uops = 0;
    for (const Trace *trace : traces)
        total_uops += trace->size();
    static const telemetry::MetricId replays_id =
        telemetry::counterId("lane.replays");
    static const telemetry::MetricId uops_id =
        telemetry::counterId("lane.uops");
    static const telemetry::MetricId timer_id =
        telemetry::timerId("lane.replay");
    telemetry::add(replays_id, 1);
    telemetry::add(uops_id, total_uops);
    telemetry::ScopedTimer replay_scope(timer_id);
    telemetry::Span replay_span("lane.replay", total_uops);

    // Park-and-strip interleaving.  Per round, every unfinished lane
    // advances through its cheap ops (step()) until it reaches a
    // line-range op (Load / TileLoad / TileStore), which is dispatched
    // and *parked* as a LineJob; the parked jobs' per-line loops then
    // run as an interleaved strip, one line per lane per pass
    // (runLineJobs).  The line loops are where replay spends most of
    // its time, and a single op's loop is serial -- load-buffer wait,
    // port acquire, tag probe -- so interleaving at op granularity
    // would leave each loop's chain unoverlapped.  Per-lane op order
    // is exactly program order throughout, and lanes share no state,
    // so results stay bit-identical to sequential single-stream runs.
    std::vector<u32> active;
    std::vector<std::size_t> cursor(num_lanes_, 0);
    std::vector<LineJob> slots(num_lanes_);
    std::vector<u32> strip;
    active.reserve(num_lanes_);
    strip.reserve(num_lanes_);
    for (u32 lane = 0; lane < num_lanes_; ++lane) {
        resetLane(lane);
        if (!traces[lane]->empty())
            active.push_back(lane);
    }

    while (!active.empty()) {
        strip.clear();
        std::size_t keep = 0;
        for (std::size_t a = 0; a < active.size(); ++a) {
            const u32 lane = active[a];
            const Trace &trace = *traces[lane];
            while (cursor[lane] < trace.size()) {
                const TraceOp &op = trace[cursor[lane]++];
                if (isLineRangeOp(op.kind)) {
                    beginLineOp(lane, op, slots[lane]);
                    strip.push_back(lane);
                    break;
                }
                step(lane, op);
            }
            if (cursor[lane] < trace.size())
                active[keep++] = lane;
        }
        active.resize(keep);
        runLineJobs(slots, strip);
    }

    std::vector<SimResult> results;
    results.reserve(num_lanes_);
    for (u32 lane = 0; lane < num_lanes_; ++lane)
        results.push_back(finishLane(lane));
    return results;
}

std::vector<SimResult>
LaneReplayer::replay(const std::vector<Trace> &traces)
{
    std::vector<const Trace *> pointers;
    pointers.reserve(traces.size());
    for (const Trace &trace : traces)
        pointers.push_back(&trace);
    return replay(pointers);
}

} // namespace vegeta::cpu
