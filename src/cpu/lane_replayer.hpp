/**
 * @file
 * Struct-of-arrays replay core: K independent traces per core in
 * interleaved lanes.
 *
 * The single-stream replayer (TraceCpu) is limited by its dependence
 * chains, not by work: every op's dispatch reads the previous op's
 * dispatch, the cache probe chases the tag bank, the rename array and
 * cycle maps are serial loads.  One trace cannot fill a modern host
 * core.  LaneReplayer restructures the whole per-op state as parallel
 * arrays indexed by lane -- dispatch/retire rings, the flat rename
 * array, load-buffer ring, resource pools, FlatCycleMap probes, and
 * the cache tag banks (LaneCacheModel) all live in contiguous
 * lane-major storage -- and round-robins K *independent* traces
 * through one hot loop.  Each lane's dependent loads then overlap the
 * other lanes' work in the host's out-of-order window, which is where
 * the throughput comes from; no cross-lane state exists at all.
 *
 * Bit-exactness contract: a lane is a faithful port of TraceCpu's
 * scheduler over lane-indexed state, and lanes share nothing, so
 * replaying K traces lane-batched produces results bit-identical to K
 * sequential single-stream replays -- for every K, every interleaving
 * order, and heterogeneous per-lane core/engine configurations
 * (golden-cycle and equivalence tests pin this, including hex-float
 * macUtilization).  TraceCpu itself is a thin wrapper over a one-lane
 * LaneReplayer, so the single-stream path cannot drift.
 */

#ifndef VEGETA_CPU_LANE_REPLAYER_HPP
#define VEGETA_CPU_LANE_REPLAYER_HPP

#include <array>
#include <map>
#include <vector>

#include "cpu/cache.hpp"
#include "cpu/flat_map.hpp"
#include "cpu/trace_sink.hpp"
#include "engine/pipeline.hpp"

namespace vegeta::cpu {

/** Core parameters (defaults follow Section VI-B). */
struct CoreConfig
{
    u32 fetchWidth = 4;
    u32 retireWidth = 4;
    u32 robEntries = 97;
    u32 loadBufferEntries = 96;
    u32 frontEndDepth = 16; ///< 16-stage pipeline fill
    u32 numAlus = 4;
    u32 numLsuPorts = 2;
    u32 numVectorFus = 2;
    Cycles vectorFmaLatency = 4;
    /** Core-to-engine clock ratio (2 GHz core / 0.5 GHz engine). */
    u32 engineClockDivider = 4;
    bool outputForwarding = false;
    CacheConfig cache;
};

/** Simulation outputs. */
struct SimResult
{
    Cycles totalCycles = 0; ///< core cycles until last retirement
    u64 retiredOps = 0;
    std::map<UopKind, u64> kindCounts;
    u64 engineInstructions = 0;
    Cycles engineLastFinish = 0; ///< core cycle of last engine finish
    u64 cacheHits = 0;
    u64 cacheMisses = 0;

    /** Engine MAC utilization over the whole run (0..1). */
    double macUtilization = 0.0;
};

/** K-lane struct-of-arrays trace replayer. */
class LaneReplayer
{
  public:
    /** One lane's configuration; lanes may be heterogeneous. */
    struct LaneSpec
    {
        CoreConfig core;
        engine::EngineConfig engine;
    };

    explicit LaneReplayer(const std::vector<LaneSpec> &lanes);

    /** Number of lanes (fixed at construction). */
    u32 lanes() const { return num_lanes_; }

    /** Schedule the next op of @p lane's stream. */
    void step(u32 lane, const TraceOp &op);

    /**
     * Statistics of the stream @p lane stepped since its last reset;
     * leaves the lane reset for its next stream.
     */
    SimResult finishLane(u32 lane);

    /** Reset one lane to a cold pipeline, discarding partial state. */
    void resetLane(u32 lane);

    /** Reset every lane. */
    void reset();

    /**
     * The lane's streaming facade: kernels emit uops straight into
     * lane contexts through the TraceSink interface.
     */
    TraceSink &sink(u32 lane) { return sinks_[lane]; }

    /**
     * Replay traces[i] on lane i (one trace per lane) by round-robin
     * interleaving: each pass steps one ready op per unfinished lane,
     * so every lane's dependence chains overlap the others'.  Lanes
     * that finish early drop out of the rotation.  results[i] is
     * bit-identical to TraceCpu(lanes[i]).run(*traces[i]).
     */
    std::vector<SimResult>
    replay(const std::vector<const Trace *> &traces);

    /** Convenience overload over owned traces. */
    std::vector<SimResult> replay(const std::vector<Trace> &traces);

    const CoreConfig &coreConfig(u32 lane) const
    {
        return cores_[lane];
    }
    const engine::EngineConfig &engineConfig(u32 lane) const
    {
        return engine_configs_[lane];
    }

  private:
    /** Line size memory traffic splits at (Section V-F). */
    static constexpr u32 kLineBytes = 64;
    /** Widest supported functional-unit pool (flattened stride). */
    static constexpr u32 kMaxUnits = 16;
    /** Longest line range whose cache probes are batch-hoisted. */
    static constexpr u32 kProbeBatch = 64;

    class LaneSink final : public TraceSink
    {
      public:
        LaneSink() = default;
        LaneSink(LaneReplayer *owner, u32 lane)
            : owner_(owner), lane_(lane)
        {
        }

        void
        emit(const TraceOp &op) override
        {
            owner_->step(lane_, op);
        }

      private:
        LaneReplayer *owner_ = nullptr;
        u32 lane_ = 0;
    };

    /**
     * One parked line-range op (Load / TileLoad / TileStore) whose
     * per-line loop is being executed in the interleaved strip: the
     * replay driver advances every lane to its next line-range op,
     * then steps the parked jobs one line per lane per pass, so each
     * lane's serial acquire/probe/tag chain overlaps the others'.
     */
    struct LineJob
    {
        u32 lane = 0;
        UopKind kind = UopKind::Load;
        const TraceOp *op = nullptr;
        u64 line = 0;  ///< next line index to issue
        u64 first = 0; ///< first line of the range (probe[] base)
        u64 last = 0;  ///< final line index of the range
        Cycles earliest = 0;
        Cycles complete = 0;
        bool may_alias = false;
        bool batched = false; ///< probe[] holds the line latencies
        // Lane's load-buffer ring state, carried in the job while it
        // is parked (no other op of the lane can run in between).
        u64 lb_fills = 0;
        u32 lb_cursor = 0;
        u32 lb_entries = 0;
        /** Batch-hoisted cache latencies, indexed by line - first. */
        Cycles probe[kProbeBatch];
    };

    Cycles toEngineCycles(u32 lane, Cycles core) const;
    Cycles toCoreCycles(u32 lane, Cycles eng) const;

    /** Dispatch accounting shared by step() and the strip driver. */
    Cycles dispatchOp(u32 lane, const TraceOp &op);
    /** Retirement accounting shared by step() and the strip driver. */
    void retireOp(u32 lane, u64 i, Cycles complete);

    /** True for kinds whose execution is a cache-line range loop. */
    static bool
    isLineRangeOp(UopKind kind)
    {
        return kind == UopKind::Load || kind == UopKind::TileLoad ||
               kind == UopKind::TileStore;
    }

    /** Dispatch + operand readiness of one line-range op. */
    void beginLineOp(u32 lane, const TraceOp &op, LineJob &job);
    /** One line iteration of a parked job. */
    void lineStep(LineJob &job);
    /** Every remaining line of a parked job in one tight loop. */
    void lineRun(LineJob &job);
    /** Post-range bookkeeping (rename/store-range) + retirement. */
    void finishLineOp(LineJob &job);
    /** Interleaved strip execution of the parked jobs in @p strip. */
    void runLineJobs(std::vector<LineJob> &slots,
                     std::vector<u32> &strip);

    /**
     * Cache-probe every line of [first, first + count) into out[];
     * returns false (leaving the cache untouched) when the range is
     * too long for the probes to commute with the serial loop.
     */
    bool probeRange(u32 lane, u64 first, u64 count, Cycles *out);

    /**
     * Acquire the earliest-free unit of one lane's strip in a
     * flattened pool ([lane * kMaxUnits + unit]); each issue occupies
     * the unit for 1 cycle.
     */
    Cycles acquireUnit(std::vector<Cycles> &pool, u32 lane, u32 units,
                       Cycles earliest);

    /** Issue [addr, addr+bytes) line by line; returns completion. */
    Cycles issueLineRange(u32 lane, Cycles earliest, Addr addr,
                          u64 bytes);
    /** Mark every line of [addr, addr+bytes) store-owned. */
    void recordStoreRange(u32 lane, Cycles data_ready, Addr addr,
                          u64 bytes);

    u32 num_lanes_ = 0;
    std::vector<CoreConfig> cores_;
    std::vector<engine::EngineConfig> engine_configs_;

    /** All lanes' L1 tag banks in one contiguous array. */
    LaneCacheModel cache_;
    /** One engine scheduler per lane (its reg state is flat arrays). */
    std::vector<engine::PipelineModel> engines_;

    // Functional-unit pools, flattened lane-major with a kMaxUnits
    // stride; unit counts per lane ride in parallel arrays.
    std::vector<Cycles> alu_free_;
    std::vector<Cycles> lsu_free_;
    std::vector<Cycles> vec_free_;
    std::vector<u32> alu_units_;
    std::vector<u32> lsu_units_;
    std::vector<u32> vec_units_;

    // Hot per-lane scheduler parameters, copied out of cores_[lane]
    // into parallel arrays so the step loop never chases the config
    // struct.
    std::vector<u32> fetch_width_;
    std::vector<u32> retire_width_;
    std::vector<u32> rob_entries_;
    std::vector<Cycles> front_end_depth_;
    std::vector<Cycles> vector_fma_latency_;
    std::vector<u32> engine_clock_divider_;

    // Dispatch/retire windows: per lane, the scheduler looks back at
    // most max(fetchWidth, retireWidth, robEntries) ops.  All lanes
    // share one power-of-two stride (the widest lane's ring size), so
    // slot (lane, i) lives at [lane * ring_stride_ + (i & ring_mask_)].
    std::vector<Cycles> dispatch_ring_;
    std::vector<Cycles> retire_ring_;
    u64 ring_stride_ = 0;
    u64 ring_mask_ = 0;

    // Load-buffer rings, lane-major with a uniform stride of the
    // widest lane's loadBufferEntries; each lane wraps at its own
    // entry count.
    std::vector<Cycles> load_buffer_;
    u32 lb_stride_ = 0;
    std::vector<u32> lb_entries_;
    std::vector<u64> lb_fills_;
    std::vector<u32> lb_cursor_;

    // Rename table over the 16-entry physical dep-id space, flattened
    // lane-major ([lane * isa::kNumDepRegs + reg]) and split into
    // parallel ready/engine-produced arrays.
    std::vector<Cycles> rename_ready_;
    std::vector<u8> rename_engine_;

    std::vector<FlatCycleMap> vector_chains_;
    /** Store-to-load memory dependence at cache-line granularity. */
    std::vector<FlatCycleMap> store_line_ready_;
    // Per-lane bounding box of all stored lines: loads outside it
    // (the bulk of A/B tile traffic) skip the dependence probe.
    std::vector<u64> stored_line_min_;
    std::vector<u64> stored_line_max_;

    // Per-lane statistics; kind counts flattened lane-major with a
    // stride of 8 (the UopKind space).
    std::vector<u64> ops_;
    std::vector<Cycles> last_retire_;
    std::vector<u64> kind_counts_;
    std::vector<u64> engine_instructions_;
    std::vector<Cycles> engine_last_finish_;
    std::vector<u64> effectual_macs_;

    std::vector<LaneSink> sinks_;
};

} // namespace vegeta::cpu

#endif // VEGETA_CPU_LANE_REPLAYER_HPP
