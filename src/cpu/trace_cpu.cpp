#include "cpu/trace_cpu.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::cpu {

namespace {

u64
ringSize(u64 min_entries)
{
    u64 size = 1;
    while (size < min_entries)
        size *= 2;
    return size;
}

} // namespace

TraceCpu::TraceCpu(CoreConfig core, engine::EngineConfig engine)
    : core_(core), engine_config_(std::move(engine)),
      cache_(core_.cache),
      engine_(engine_config_, core_.outputForwarding),
      alus_(core_.numAlus), lsu_(core_.numLsuPorts),
      vectors_(core_.numVectorFus),
      load_buffer_(core_.loadBufferEntries, 0)
{
    VEGETA_ASSERT(core_.fetchWidth > 0 && core_.retireWidth > 0 &&
                      core_.robEntries > 0,
                  "degenerate core configuration");
    VEGETA_ASSERT(core_.loadBufferEntries > 0,
                  "degenerate load buffer");
    const u64 window = std::max<u64>(
        {core_.fetchWidth, core_.retireWidth, core_.robEntries});
    const u64 entries = ringSize(window + 1);
    dispatch_ring_.assign(entries, 0);
    retire_ring_.assign(entries, 0);
    ring_mask_ = entries - 1;
}

Cycles
TraceCpu::toEngineCycles(Cycles core) const
{
    // Round up: an engine instruction can begin at the next engine
    // clock edge at or after the core-cycle issue.
    const u32 div = core_.engineClockDivider;
    return (core + div - 1) / div;
}

Cycles
TraceCpu::toCoreCycles(Cycles eng) const
{
    return eng * core_.engineClockDivider;
}

Cycles
TraceCpu::issueLineRange(Cycles earliest, Addr addr, u64 bytes)
{
    // Span from the first to the last touched line: a 64 B load at
    // line offset 32 touches two lines, which the seed's
    // ceil(bytes / 64) undercounted for unaligned addresses.
    const u64 first = addr / kLineBytes;
    const u64 last = (addr + std::max<u64>(bytes, 1) - 1) / kLineBytes;
    const bool may_alias_store =
        first <= stored_line_max_ && last >= stored_line_min_;

    // Load-buffer ring state lives in locals across the range loop:
    // the member stores would otherwise force a reload per line (a
    // tile load is up to 64 of them).
    const u32 lb_entries = core_.loadBufferEntries;
    u64 lb_fills = load_buffer_fills_;
    u32 lb_cursor = load_buffer_cursor_;
    Cycles *lb = load_buffer_.data();

    Cycles complete = earliest;
    for (u64 line = first; line <= last; ++line) {
        // A new line fill needs a free load-buffer entry: wait for
        // the entry allocated lb_entries fills ago, whose completion
        // time still sits in the ring slot about to be overwritten.
        Cycles line_earliest = earliest;
        if (lb_fills >= lb_entries)
            line_earliest = std::max(line_earliest, lb[lb_cursor]);
        if (may_alias_store) {
            if (const Cycles *st = store_line_ready_.find(line))
                line_earliest = std::max(line_earliest, *st);
        }
        const Cycles port = lsu_.acquire(line_earliest);
        const Cycles latency =
            cache_.accessLine(line * u64{kLineBytes});
        const Cycles line_done = port + latency;
        lb[lb_cursor] = line_done;
        if (++lb_cursor == lb_entries)
            lb_cursor = 0;
        ++lb_fills;
        complete = std::max(complete, line_done);
    }
    load_buffer_fills_ = lb_fills;
    load_buffer_cursor_ = lb_cursor;
    return complete;
}

void
TraceCpu::recordStoreRange(Cycles data_ready, Addr addr, u64 bytes)
{
    const u64 first = addr / kLineBytes;
    const u64 last = (addr + std::max<u64>(bytes, 1) - 1) / kLineBytes;
    stored_line_min_ = std::min(stored_line_min_, first);
    stored_line_max_ = std::max(stored_line_max_, last);
    for (u64 line = first; line <= last; ++line)
        store_line_ready_.insertOrAssign(line, data_ready);
}

void
TraceCpu::reset()
{
    cache_.reset();
    engine_.reset();
    alus_.reset();
    lsu_.reset();
    vectors_.reset();
    // The rings and load buffer need no clearing: every slot is
    // written before the op-index guards allow it to be read again.
    load_buffer_fills_ = 0;
    load_buffer_cursor_ = 0;
    rename_.fill({});
    vector_chains_.clear();
    store_line_ready_.clear();
    stored_line_min_ = ~u64{0};
    stored_line_max_ = 0;
    ops_ = 0;
    last_retire_ = 0;
    kind_counts_.fill(0);
    engine_instructions_ = 0;
    engine_last_finish_ = 0;
    effectual_macs_ = 0;
}

void
TraceCpu::step(const TraceOp &op)
{
    // step() is a public sink fed by arbitrary producers: reject ops
    // that would index outside the fixed kind/register tables (the
    // seed's map-based structures tolerated any key silently).
    VEGETA_ASSERT(static_cast<u32>(op.kind) < kind_counts_.size(),
                  "trace op with invalid kind");
    const u64 i = ops_++;
    ++kind_counts_[static_cast<u32>(op.kind)];

    // Dispatch: fetch width, program order, ROB space.
    Cycles d = core_.frontEndDepth;
    if (i > 0)
        d = std::max(d, dispatch_ring_[(i - 1) & ring_mask_]);
    if (i >= core_.fetchWidth)
        d = std::max(
            d, dispatch_ring_[(i - core_.fetchWidth) & ring_mask_] + 1);
    if (i >= core_.robEntries)
        d = std::max(d,
                     retire_ring_[(i - core_.robEntries) & ring_mask_]);
    dispatch_ring_[i & ring_mask_] = d;

    Cycles complete = d;
    switch (op.kind) {
      case UopKind::Alu:
      case UopKind::Branch: {
        complete = alus_.acquire(d) + 1;
        break;
      }
      case UopKind::Load: {
        complete = issueLineRange(d, op.addr, op.bytes);
        break;
      }
      case UopKind::Store: {
        // Stores retire from the store queue post-commit; occupy a
        // port for address generation only.
        complete = lsu_.acquire(d) + 1;
        recordStoreRange(complete, op.addr, op.bytes);
        break;
      }
      case UopKind::VectorFma: {
        Cycles ready = d;
        if (op.chain != 0) {
            if (const Cycles *it = vector_chains_.find(op.chain))
                ready = std::max(ready, *it);
        }
        complete = vectors_.acquire(ready) + core_.vectorFmaLatency;
        if (op.chain != 0)
            vector_chains_.insertOrAssign(op.chain, complete);
        break;
      }
      case UopKind::TileLoad: {
        const u32 bytes =
            op.tile.op == isa::Opcode::TileLoadM
                ? isa::kMregBytes + isa::kMregDescBytes
                : isa::regClassBytes(op.tile.dst.cls);
        complete = issueLineRange(d, op.tile.addr, bytes);
        for (u32 reg : op.tile.writeRegList()) {
            rename_[reg] = {complete, false};
            engine_.invalidateReg(reg);
        }
        break;
      }
      case UopKind::TileStore: {
        Cycles ready = d;
        for (u32 reg : op.tile.readRegList()) {
            const RegInfo &info = rename_[reg];
            Cycles reg_ready = info.ready;
            if (info.engineProduced)
                reg_ready = std::max(
                    reg_ready, toCoreCycles(engine_.regReadyFull(reg)));
            ready = std::max(ready, reg_ready);
        }
        complete = issueLineRange(ready, op.tile.addr, isa::kTregBytes);
        recordStoreRange(complete, op.tile.addr, isa::kTregBytes);
        break;
      }
      case UopKind::TileCompute: {
        // Non-engine (load-produced) operand readiness; engine-
        // produced operands are sequenced inside PipelineModel,
        // including output forwarding on the accumulator.
        Cycles ready = d;
        for (u32 reg : op.tile.readRegList()) {
            const RegInfo &info = rename_[reg];
            if (!info.engineProduced)
                ready = std::max(ready, info.ready);
        }
        const engine::ScheduledOp sched =
            engine_.issue(op.tile, toEngineCycles(ready));
        complete = toCoreCycles(sched.finish);
        for (u32 reg : op.tile.writeRegList())
            rename_[reg] = {complete, true};
        ++engine_instructions_;
        engine_last_finish_ =
            std::max(engine_last_finish_, complete);
        effectual_macs_ += isa::effectualMacs(op.tile.op);
        break;
      }
    }

    // In-order retirement, retireWidth per cycle.
    Cycles r = complete;
    if (i > 0)
        r = std::max(r, retire_ring_[(i - 1) & ring_mask_]);
    if (i >= core_.retireWidth)
        r = std::max(
            r, retire_ring_[(i - core_.retireWidth) & ring_mask_] + 1);
    retire_ring_[i & ring_mask_] = r;
    last_retire_ = r;
}

SimResult
TraceCpu::finish()
{
    SimResult result;
    if (ops_ > 0) {
        result.totalCycles = last_retire_;
        result.retiredOps = ops_;
        for (u32 k = 0; k < kind_counts_.size(); ++k)
            if (kind_counts_[k] > 0)
                result.kindCounts[static_cast<UopKind>(k)] =
                    kind_counts_[k];
        result.engineInstructions = engine_instructions_;
        result.engineLastFinish = engine_last_finish_;
        result.cacheHits = cache_.hits();
        result.cacheMisses = cache_.misses();
        if (result.totalCycles > 0) {
            const double engine_cycles =
                static_cast<double>(result.totalCycles) /
                core_.engineClockDivider;
            result.macUtilization =
                static_cast<double>(effectual_macs_) /
                (engine_cycles * engine::kTotalMacs);
        }
    }
    reset();
    return result;
}

SimResult
TraceCpu::run(const Trace &trace)
{
    reset();
    for (const TraceOp &op : trace)
        step(op);
    return finish();
}

} // namespace vegeta::cpu
