#include "cpu/trace_cpu.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::cpu {

TraceCpu::TraceCpu(CoreConfig core, engine::EngineConfig engine)
    : core_(core), engine_config_(std::move(engine))
{
    VEGETA_ASSERT(core_.fetchWidth > 0 && core_.retireWidth > 0 &&
                      core_.robEntries > 0,
                  "degenerate core configuration");
}

Cycles
TraceCpu::toEngineCycles(Cycles core) const
{
    // Round up: an engine instruction can begin at the next engine
    // clock edge at or after the core-cycle issue.
    const u32 div = core_.engineClockDivider;
    return (core + div - 1) / div;
}

Cycles
TraceCpu::toCoreCycles(Cycles eng) const
{
    return eng * core_.engineClockDivider;
}

SimResult
TraceCpu::run(const Trace &trace)
{
    SimResult result;
    if (trace.empty())
        return result;

    CacheModel cache(core_.cache);
    engine::PipelineModel engine(engine_config_, core_.outputForwarding);

    ResourcePool alus(core_.numAlus);
    ResourcePool lsu(core_.numLsuPorts);
    ResourcePool vectors(core_.numVectorFus);

    // Per-op retire times (for ROB occupancy and in-order retirement).
    std::vector<Cycles> retire(trace.size(), 0);
    std::vector<Cycles> dispatch(trace.size(), 0);

    // Sliding completion window of line-fill load-buffer entries.
    std::vector<Cycles> load_buffer;
    load_buffer.reserve(4096);

    std::unordered_map<u32, RegInfo> rename;
    std::unordered_map<u32, Cycles> vector_chains;
    // Store-to-load memory dependence at cache-line granularity: a
    // load of a line must wait for the youngest older store to it.
    std::unordered_map<u64, Cycles> store_line_ready;

    u64 effectual_macs = 0;

    auto lb_constraint = [&]() -> Cycles {
        // A new line fill needs a free load-buffer entry: wait for the
        // entry allocated loadBufferEntries fills ago to complete.
        if (load_buffer.size() < core_.loadBufferEntries)
            return 0;
        return load_buffer[load_buffer.size() - core_.loadBufferEntries];
    };

    auto issue_line_accesses = [&](Cycles earliest, Addr addr,
                                   u32 lines) -> Cycles {
        Cycles complete = earliest;
        for (u32 l = 0; l < lines; ++l) {
            const Addr line_addr = addr + l * 64ull;
            Cycles line_earliest = std::max(earliest, lb_constraint());
            auto st = store_line_ready.find(line_addr / 64);
            if (st != store_line_ready.end())
                line_earliest = std::max(line_earliest, st->second);
            const Cycles port = lsu.acquire(line_earliest);
            const Cycles latency = cache.accessLine(line_addr);
            const Cycles line_done = port + latency;
            load_buffer.push_back(line_done);
            complete = std::max(complete, line_done);
        }
        return complete;
    };

    auto record_store_lines = [&](Cycles data_ready, Addr addr,
                                  u32 lines) {
        for (u32 l = 0; l < lines; ++l)
            store_line_ready[(addr + l * 64ull) / 64] = data_ready;
    };

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceOp &op = trace[i];
        ++result.kindCounts[op.kind];

        // Dispatch: fetch width, program order, ROB space.
        Cycles d = core_.frontEndDepth;
        if (i > 0)
            d = std::max(d, dispatch[i - 1]);
        if (i >= core_.fetchWidth)
            d = std::max(d, dispatch[i - core_.fetchWidth] + 1);
        if (i >= core_.robEntries)
            d = std::max(d, retire[i - core_.robEntries]);
        dispatch[i] = d;

        Cycles complete = d;
        switch (op.kind) {
          case UopKind::Alu:
          case UopKind::Branch: {
            complete = alus.acquire(d) + 1;
            break;
          }
          case UopKind::Load: {
            const u32 lines = std::max<u32>(1, (op.bytes + 63) / 64);
            complete = issue_line_accesses(d, op.addr, lines);
            break;
          }
          case UopKind::Store: {
            // Stores retire from the store queue post-commit; occupy a
            // port for address generation only.
            complete = lsu.acquire(d) + 1;
            record_store_lines(complete,
                               op.addr, std::max<u32>(1, (op.bytes + 63) / 64));
            break;
          }
          case UopKind::VectorFma: {
            Cycles ready = d;
            if (op.chain != 0) {
                auto it = vector_chains.find(op.chain);
                if (it != vector_chains.end())
                    ready = std::max(ready, it->second);
            }
            complete = vectors.acquire(ready) + core_.vectorFmaLatency;
            if (op.chain != 0)
                vector_chains[op.chain] = complete;
            break;
          }
          case UopKind::TileLoad: {
            const u32 bytes =
                op.tile.op == isa::Opcode::TileLoadM
                    ? isa::kMregBytes + isa::kMregDescBytes
                    : isa::regClassBytes(op.tile.dst.cls);
            const u32 lines = (bytes + 63) / 64;
            complete = issue_line_accesses(d, op.tile.addr, lines);
            for (u32 reg : op.tile.writeRegs()) {
                rename[reg] = {complete, false};
                engine.invalidateReg(reg);
            }
            break;
          }
          case UopKind::TileStore: {
            Cycles ready = d;
            for (u32 reg : op.tile.readRegs()) {
                auto it = rename.find(reg);
                if (it == rename.end())
                    continue;
                Cycles reg_ready = it->second.ready;
                if (it->second.engineProduced)
                    reg_ready = std::max(
                        reg_ready,
                        toCoreCycles(engine.regReadyFull(reg)));
                ready = std::max(ready, reg_ready);
            }
            const u32 lines = (isa::kTregBytes + 63) / 64;
            complete = issue_line_accesses(ready, op.tile.addr, lines);
            record_store_lines(complete, op.tile.addr, lines);
            break;
          }
          case UopKind::TileCompute: {
            // Non-engine (load-produced) operand readiness; engine-
            // produced operands are sequenced inside PipelineModel,
            // including output forwarding on the accumulator.
            Cycles ready = d;
            for (u32 reg : op.tile.readRegs()) {
                auto it = rename.find(reg);
                if (it != rename.end() && !it->second.engineProduced)
                    ready = std::max(ready, it->second.ready);
            }
            const engine::ScheduledOp sched =
                engine.issue(op.tile, toEngineCycles(ready));
            complete = toCoreCycles(sched.finish);
            for (u32 reg : op.tile.writeRegs())
                rename[reg] = {complete, true};
            ++result.engineInstructions;
            result.engineLastFinish =
                std::max(result.engineLastFinish, complete);
            effectual_macs += isa::effectualMacs(op.tile.op);
            break;
          }
        }

        // In-order retirement, retireWidth per cycle.
        Cycles r = complete;
        if (i > 0)
            r = std::max(r, retire[i - 1]);
        if (i >= core_.retireWidth)
            r = std::max(r, retire[i - core_.retireWidth] + 1);
        retire[i] = r;
    }

    result.totalCycles = retire.back();
    result.retiredOps = trace.size();
    result.cacheHits = cache.hits();
    result.cacheMisses = cache.misses();

    if (result.totalCycles > 0) {
        const double engine_cycles =
            static_cast<double>(result.totalCycles) /
            core_.engineClockDivider;
        result.macUtilization =
            static_cast<double>(effectual_macs) /
            (engine_cycles * engine::kTotalMacs);
    }
    return result;
}

} // namespace vegeta::cpu
