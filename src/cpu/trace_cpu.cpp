#include "cpu/trace_cpu.hpp"

namespace vegeta::cpu {

TraceCpu::TraceCpu(CoreConfig core, engine::EngineConfig engine)
    : lanes_({LaneReplayer::LaneSpec{std::move(core),
                                     std::move(engine)}})
{
}

SimResult
TraceCpu::run(const Trace &trace)
{
    reset();
    for (const TraceOp &op : trace)
        step(op);
    return finish();
}

} // namespace vegeta::cpu
