#include "cpu/cache.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vegeta::cpu {

CacheModel::CacheModel(CacheConfig config) : config_(config)
{
    VEGETA_ASSERT(config_.l1Sets > 0 && config_.l1Ways > 0 &&
                      config_.lineBytes > 0,
                  "degenerate cache configuration");
    sets_.resize(config_.l1Sets);
}

Cycles
CacheModel::accessLine(Addr addr)
{
    const u64 line = addr / config_.lineBytes;
    Set &set = sets_[line % config_.l1Sets];

    auto it = std::find(set.lru.begin(), set.lru.end(), line);
    if (it != set.lru.end()) {
        set.lru.erase(it);
        set.lru.push_front(line);
        ++hits_;
        return config_.l1Latency;
    }

    ++misses_;
    set.lru.push_front(line);
    if (set.lru.size() > config_.l1Ways)
        set.lru.pop_back();
    return config_.l2Latency;
}

std::vector<Cycles>
CacheModel::accessRange(Addr addr, u32 bytes)
{
    VEGETA_ASSERT(bytes > 0, "zero-length access");
    std::vector<Cycles> latencies;
    const u64 first = addr / config_.lineBytes;
    const u64 last = (addr + bytes - 1) / config_.lineBytes;
    for (u64 line = first; line <= last; ++line)
        latencies.push_back(accessLine(line * config_.lineBytes));
    return latencies;
}

void
CacheModel::reset()
{
    for (auto &set : sets_)
        set.lru.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace vegeta::cpu
